(** Discrete-event simulation core: a time-ordered queue of thunks.
    Events at equal times run in scheduling order, so simulations are
    deterministic. *)

type t

(** An empty event queue at simulated time 0. *)
val create : unit -> t
val now : t -> float
val pending : t -> int
val executed : t -> int

(** Schedule at an absolute time (clamped to now). *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** Schedule after a delay in simulated seconds. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** Run the earliest event; false when the queue is empty. *)
val step : t -> bool

(** Drain the queue. [max_events] bounds runaway simulations.
    @raise Failure if the budget is exhausted with events pending. *)
val run : ?max_events:int -> t -> unit
