(** Distributed Pequod (§2.4) over the discrete-event simulator.

    A cluster is a set of {e base} nodes — home servers that absorb writes,
    partitioned by a key-range function — and {e compute} nodes that run
    cache joins in response to client reads. When a compute node needs a
    base range it does not hold, it sends a [Fetch] RPC to the range's home
    server; the home server returns the data {e and installs a
    subscription}, after which every update to the range is pushed to the
    subscriber with the network latency — giving the paper's
    eventually-consistent replication. All inter-server traffic crosses the
    wire codec, so message and byte counts are real.

    Per-node CPU work is accounted as store operations plus per-message and
    per-byte costs; the Fig 10 throughput model divides client operations
    by the busiest node's accumulated work (the paper's observed bottleneck
    is compute-server CPU). *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Interval_map = Pequod_store.Interval_map

type kind = Base | Compute

type node = {
  id : int;
  kind : kind;
  server : Server.t;
  (* home-server subscriptions: source range -> subscriber node id *)
  subs : (string, int Interval_map.t) Hashtbl.t;
  (* traffic tallies live in the node's own registry (one per server, so
     per-node figures come for free); recorded with [force_add] because
     they feed the Fig 10 measurements, not just observability *)
  m_msgs : Obs.Counter.t; (* sim.msgs_sent *)
  m_server_bytes : Obs.Counter.t; (* sim.server_bytes: inter-server traffic *)
  m_client_bytes : Obs.Counter.t; (* sim.client_bytes: client-facing traffic *)
  mutable work_epoch : int; (* store-op snapshot at epoch start *)
  mutable msg_work : int; (* message-handling work units since epoch *)
  (* outgoing subscription updates, coalesced per destination until the
     end of the current simulated instant: one Notify_batch per
     (destination, flush) instead of one message per key *)
  pending_notify : (int, (string * string option) list) Hashtbl.t; (* dst -> rev items *)
  mutable pending_order : int list; (* destinations, reverse first-enqueue order *)
  mutable flush_scheduled : bool;
}

(* Which base node is home for a key range of a partitioned table;
   [None] means the table is not partitioned (computed locally). *)
type partition = table:string -> lo:string -> int option

type t = {
  event : Event.t;
  nodes : node array;
  base_ids : int list;
  compute_ids : int list;
  partition : partition;
  latency : float;
  mutable scans_done : int;
  mutable fetch_rounds : int;
}

(* work units charged per message handled and per KiB moved; calibrated so
   messaging is comparable to a few tree operations, as on a fast LAN *)
let msg_units = 4
let byte_units_per_kb = 2

let node t id = t.nodes.(id)

let make_node ~id ~kind ?config () =
  let server = Server.create ?config () in
  let obs = Server.obs server in
  {
    id;
    kind;
    server;
    subs = Hashtbl.create 8;
    m_msgs = Obs.counter obs "sim.msgs_sent";
    m_server_bytes = Obs.counter obs "sim.server_bytes";
    m_client_bytes = Obs.counter obs "sim.client_bytes";
    work_epoch = 0;
    msg_work = 0;
    pending_notify = Hashtbl.create 8;
    pending_order = [];
    flush_scheduled = false;
  }

let create ~event ~nbase ~ncompute ~partition ?(latency = 0.0001) ?config () =
  if nbase < 1 || ncompute < 1 then invalid_arg "Cluster.create: need base and compute nodes";
  let nodes =
    Array.init (nbase + ncompute) (fun id ->
        let config = match config with Some f -> Some (f ()) | None -> None in
        make_node ~id ~kind:(if id < nbase then Base else Compute) ?config ())
  in
  let t =
    {
      event;
      nodes;
      base_ids = List.init nbase (fun i -> i);
      compute_ids = List.init ncompute (fun i -> nbase + i);
      partition;
      latency;
      scans_done = 0;
      fetch_rounds = 0;
    }
  in
  (* compute nodes resolve partitioned tables through fetches *)
  Array.iter
    (fun n ->
      match n.kind with
      | Base -> ()
      | Compute ->
        Server.set_resolver n.server (fun ~table ~lo ~hi ->
            ignore hi;
            match partition ~table ~lo with
            | Some home when home <> n.id -> Server.Deferred
            | _ -> Server.Local))
    t.nodes;
  t

let base_ids t = t.base_ids
let compute_ids t = t.compute_ids

(** Install a cache join on every compute node (base nodes are plain
    stores, as in the §5.5 setup). *)
let add_join t text =
  List.iter
    (fun id ->
      match Server.add_join_text t.nodes.(id).server text with
      | Ok () -> ()
      | Error msg -> invalid_arg msg)
    t.compute_ids

(* account one message from [src] to [dst]; returns the wire size *)
let account_msg t ~src ~dst wire =
  let n = String.length wire in
  Obs.Counter.force_add t.nodes.(src).m_msgs 1;
  Obs.Counter.force_add t.nodes.(src).m_server_bytes n;
  Obs.Counter.force_add t.nodes.(dst).m_server_bytes n;
  let units = msg_units + (n * byte_units_per_kb / 1024) in
  t.nodes.(src).msg_work <- t.nodes.(src).msg_work + units;
  t.nodes.(dst).msg_work <- t.nodes.(dst).msg_work + units;
  n

let subs_for node table =
  match Hashtbl.find_opt node.subs table with
  | Some im -> im
  | None ->
    let im = Interval_map.create () in
    Hashtbl.add node.subs table im;
    im

(* Send one buffered Notify_batch to every destination with pending
   updates. Consecutive puts at the receiver take the engine's batched
   path; removes keep their place so same-key put/remove order is
   preserved. *)
let flush_notifications t home =
  let n = t.nodes.(home) in
  n.flush_scheduled <- false;
  let order = List.rev n.pending_order in
  n.pending_order <- [];
  List.iter
    (fun dst ->
      match Hashtbl.find_opt n.pending_notify dst with
      | None | Some [] -> ()
      | Some rev_items ->
        Hashtbl.remove n.pending_notify dst;
        let items = List.rev rev_items in
        (* stamp trailer: the pushed keys' ranges are current at these
           versions once the items are applied (session consistency) *)
        let stamps = Server.stamps_for_keys n.server (List.map fst items) in
        let wire = Message.encode_request (Message.Notify_batch { items; stamps }) in
        ignore (account_msg t ~src:home ~dst wire);
        Event.schedule t.event ~delay:t.latency (fun () ->
            match Message.decode_request wire with
            | Message.Notify_batch { items; stamps } ->
              let srv = t.nodes.(dst).server in
              let apply acc = if acc <> [] then Server.put_batch srv (List.rev acc) in
              let acc =
                List.fold_left
                  (fun acc (k, v) ->
                    match v with
                    | Some v -> (k, v) :: acc
                    | None ->
                      apply acc;
                      Server.remove srv k;
                      [])
                  [] items
              in
              apply acc;
              List.iter
                (fun (table, lo, hi, s) -> Server.set_range_stamp srv ~table ~lo ~hi s)
                stamps
            | _ -> assert false))
    order

(* Push an update to every subscriber of [key]'s range (§2.4). Updates
   are buffered per (home, destination) and flushed at the end of the
   current simulated instant — events at equal times run in scheduling
   order, so the flush sees every notification this instant produced,
   and delivery still lands one latency after the write, exactly as the
   unbatched protocol's did. *)
let push_notifications t home key value_opt =
  let table = Pequod_store.Store.table_name_of key in
  match Hashtbl.find_opt t.nodes.(home).subs table with
  | None -> ()
  | Some im ->
    let targets = ref [] in
    Interval_map.stab im key (fun e -> targets := Interval_map.handle_data e :: !targets);
    let n = t.nodes.(home) in
    List.iter
      (fun dst ->
        let prev =
          match Hashtbl.find_opt n.pending_notify dst with
          | Some items -> items
          | None ->
            n.pending_order <- dst :: n.pending_order;
            []
        in
        Hashtbl.replace n.pending_notify dst ((key, value_opt) :: prev))
      (List.sort_uniq compare !targets);
    if (not n.flush_scheduled) && n.pending_order <> [] then begin
      n.flush_scheduled <- true;
      Event.schedule t.event ~delay:0.0 (fun () -> flush_notifications t home)
    end

(** Write a base pair: routed to its home server, then pushed to
    subscribers. [via] applies the write at a compute node first
    (read-your-own-writes for that node's clients, §2.4). *)
let client_put ?via t key value =
  let table = Pequod_store.Store.table_name_of key in
  let home =
    match t.partition ~table ~lo:key with
    | Some h -> h
    | None -> invalid_arg ("client_put: table " ^ table ^ " is not partitioned")
  in
  (match via with
  | Some c when c <> home -> Server.put t.nodes.(c).server key value
  | _ -> ());
  let n = t.nodes.(home) in
  Obs.Counter.force_add n.m_client_bytes (String.length key + String.length value + 16);
  Event.schedule t.event ~delay:t.latency (fun () ->
      Server.put n.server key value;
      push_notifications t home key (Some value))

let client_remove t key =
  let table = Pequod_store.Store.table_name_of key in
  match t.partition ~table ~lo:key with
  | None -> invalid_arg "client_remove: unpartitioned table"
  | Some home ->
    Event.schedule t.event ~delay:t.latency (fun () ->
        Server.remove t.nodes.(home).server key;
        push_notifications t home key None)

(* fetch a missing range from its home server, then continue [k] *)
let fetch_range t ~requester ~table ~lo ~hi k =
  t.fetch_rounds <- t.fetch_rounds + 1;
  let home =
    match t.partition ~table ~lo with
    | Some h -> h
    | None -> invalid_arg ("fetch: no home for table " ^ table)
  in
  let req = Message.Fetch { table; lo; hi; subscriber = string_of_int requester } in
  let wire = Message.encode_request req in
  ignore (account_msg t ~src:requester ~dst:home wire);
  Event.schedule t.event ~delay:t.latency (fun () ->
      match Message.decode_request wire with
      | Message.Fetch { table; lo; hi; subscriber } ->
        let subscriber = int_of_string subscriber in
        let hnode = t.nodes.(home) in
        (* §2.4: the home server installs the subscription first, then
           snapshots — a write landing in between is pushed as well, and
           the duplicate application is idempotent *)
        ignore (Interval_map.add (subs_for hnode table) ~lo ~hi subscriber);
        let pairs = Server.scan hnode.server ~lo ~hi in
        let stamp = Server.range_stamp hnode.server ~table ~lo ~hi in
        let resp_wire = Message.encode_response (Message.Subscribed { stamp; pairs }) in
        ignore (account_msg t ~src:home ~dst:subscriber resp_wire);
        Event.schedule t.event ~delay:t.latency (fun () ->
            match Message.decode_response resp_wire with
            | Message.Subscribed { stamp; pairs } ->
              Server.feed_base t.nodes.(subscriber).server ~table ~lo ~hi pairs;
              Server.set_range_stamp t.nodes.(subscriber).server ~table ~lo ~hi stamp;
              k ()
            | _ -> assert false)
      | _ -> assert false)

(** Issue a scan at compute node [via]; [callback] fires (in simulated
    time) once every missing base range has been fetched. *)
let client_scan t ~via ~lo ~hi callback =
  let n = t.nodes.(via) in
  let rec attempt () =
    match Server.scan_result n.server ~lo ~hi with
    | `Ok pairs ->
      t.scans_done <- t.scans_done + 1;
      Obs.Counter.force_add n.m_client_bytes
        (24 + List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v) 0 pairs);
      callback pairs
    | `Missing missing ->
      List.iter
        (fun (table, flo, fhi) -> fetch_range t ~requester:via ~table ~lo:flo ~hi:fhi attempt)
        (match missing with [] -> assert false | m :: _ -> [ m ])
  in
  attempt ()

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

(** Reset every node's work epoch (call after warm-up). *)
let mark_epoch t =
  Array.iter
    (fun n ->
      n.work_epoch <- Server.store_ops n.server;
      n.msg_work <- 0)
    t.nodes

(** Work units a node has performed since the epoch. *)
let node_work t id =
  let n = t.nodes.(id) in
  Server.store_ops n.server - n.work_epoch + n.msg_work

(** The cluster's bottleneck work: max over compute nodes (§5.5 observes
    the bottleneck is compute-server CPU). *)
let bottleneck_work t =
  List.fold_left (fun acc id -> max acc (node_work t id)) 1 t.compute_ids

let total_memory t ids =
  List.fold_left (fun acc id -> acc + Server.memory_bytes t.nodes.(id).server) 0 ids

(** One node's traffic tallies (also visible in its registry snapshot as
    [sim.msgs_sent] / [sim.server_bytes] / [sim.client_bytes]). *)
let node_msgs_sent n = Obs.Counter.value n.m_msgs

let node_server_bytes n = Obs.Counter.value n.m_server_bytes
let node_client_bytes n = Obs.Counter.value n.m_client_bytes

let server_bytes t =
  Array.fold_left (fun acc n -> acc + node_server_bytes n) 0 t.nodes / 2 (* counted at both ends *)

let client_bytes t = Array.fold_left (fun acc n -> acc + node_client_bytes n) 0 t.nodes

let subscription_count t =
  Array.fold_left
    (fun acc n -> acc + Hashtbl.fold (fun _ im a -> a + Interval_map.size im) n.subs 0)
    0 t.nodes

let scans_done t = t.scans_done
let fetch_rounds t = t.fetch_rounds
