(** Semantics of the cache-join source operators over string values.

    [count] and [sum] treat values as decimal integers; [min]/[max] compare
    values lexicographically (use {!Strkey.encode_int} for numeric order).
    Each aggregate supports both from-scratch folding and incremental
    reaction to one source change (§3.2); [min]/[max] must ask for a
    recomputation when their current extremum disappears, since the
    remaining extremum is not derivable from the change alone. *)

module Joinspec = Pequod_pattern.Joinspec

type change = Insert | Update | Remove

(** From-scratch aggregate of the given source values. [None] when there
    are no inputs (the aggregate output key is then absent). *)
let fold_aggregate (op : Joinspec.operator) values =
  match (op, values) with
  | _, [] -> None
  | Joinspec.Count, vs -> Some (string_of_int (List.length vs))
  | Joinspec.Sum, vs ->
    Some (string_of_int (List.fold_left (fun acc v -> acc + int_of_string v) 0 vs))
  | Joinspec.Min, v :: vs -> Some (List.fold_left Strkey.min_str v vs)
  | Joinspec.Max, v :: vs -> Some (List.fold_left Strkey.max_str v vs)
  | (Joinspec.Copy | Joinspec.Check), _ -> invalid_arg "Operator.fold_aggregate: not an aggregate"

(** Incremental update of an aggregate output value in response to one
    source change.

    [current] is the aggregate's present value ([None] if the output key
    does not exist yet). Returns what to do to the output key. *)
type action =
  | Set of string (* store this value *)
  | Delete (* remove the output key *)
  | Recompute (* fold from scratch over the source range *)
  | Nothing

let incremental (op : Joinspec.operator) ~current ~change ~old_value ~new_value =
  let as_int = function
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
    | None -> 0
  in
  match op with
  | Joinspec.Count -> (
    match (change, current) with
    | Insert, None -> Set "1"
    | Insert, Some c -> Set (string_of_int (as_int (Some c) + 1))
    | Remove, Some c ->
      let n = as_int (Some c) - 1 in
      if n <= 0 then Delete else Set (string_of_int n)
    | Remove, None -> Nothing
    | Update, _ -> Nothing)
  | Joinspec.Sum -> (
    let delta =
      match change with
      | Insert -> as_int new_value
      | Remove -> -as_int old_value
      | Update -> as_int new_value - as_int old_value
    in
    match (current, change) with
    | None, Remove -> Nothing
    | None, _ -> Set (string_of_int delta)
    | Some c, Remove ->
      (* a running total of 0 is ambiguous: the group may be empty (the
         output key must go) or hold inputs summing to zero (keep "0");
         only a from-scratch fold can tell the two apart *)
      let n = as_int (Some c) + delta in
      if n = 0 then Recompute else Set (string_of_int n)
    | Some c, _ -> Set (string_of_int (as_int (Some c) + delta)))
  | Joinspec.Min -> (
    match (change, current, new_value) with
    | Insert, None, Some v -> Set v
    | Insert, Some c, Some v -> if String.compare v c < 0 then Set v else Nothing
    | (Remove | Update), Some c, _ when old_value = Some c -> Recompute
    | Update, Some c, Some v -> if String.compare v c < 0 then Set v else Nothing
    | Remove, _, _ -> Nothing
    | _, _, None -> Nothing
    | Update, None, Some _ -> Recompute)
  | Joinspec.Max -> (
    match (change, current, new_value) with
    | Insert, None, Some v -> Set v
    | Insert, Some c, Some v -> if String.compare v c > 0 then Set v else Nothing
    | (Remove | Update), Some c, _ when old_value = Some c -> Recompute
    | Update, Some c, Some v -> if String.compare v c > 0 then Set v else Nothing
    | Remove, _, _ -> Nothing
    | _, _, None -> Nothing
    | Update, None, Some _ -> Recompute)
  | Joinspec.Copy | Joinspec.Check -> invalid_arg "Operator.incremental: not an aggregate"
