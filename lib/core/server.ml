(** The Pequod cache engine: an ordered key-value store with cache joins.

    One [Server.t] is one cache server. It supports the four client
    operations ([get], [put], [remove], [scan]) plus [add_join] (§2), and
    implements:

    - forward query execution with slot sets and containing ranges
      (§3.1, Figs 3 and 5), with dynamic materialization: join output is
      computed on first demand for a range, then kept fresh;
    - incremental maintenance (§3.2): eager updaters for value sources,
      lazy invalidation (partial logs, escalating to complete
      invalidation) for check sources, updater combining, output hints,
      and value sharing;
    - pull and snapshot maintenance annotations (§3.4);
    - missing-data resolution hooks (§3.3): a resolver callback loads
      base ranges from a backing database or a remote home server; an
      asynchronous resolver makes [scan_nb] return the set of ranges to
      fetch so the host can fetch them in parallel and retry (the restart
      behaviour: completed covers stay valid and are not recomputed);
    - LRU eviction of computed ranges under a memory limit (§2.5).

    The store itself is schema-free; bookkeeping lives beside the data:
    a {e status} range map per table records which output ranges are
    fresh, and an {e updater} interval tree per table reacts to writes. *)

module Table = Pequod_store.Table
module Store = Pequod_store.Store
module Interval_map = Pequod_store.Interval_map
module Range_map = Pequod_store.Range_map
module Lru = Pequod_store.Lru
module Pattern = Pequod_pattern.Pattern
module Joinspec = Pequod_pattern.Joinspec

type change = Operator.change = Insert | Update | Remove

(* Stored value plus the bytes charged against the memory budget (copy
   joins with value sharing enabled charge only a pointer). *)
type cell = { data : string; charged : int }

let pointer_cost = 8

type join = { jid : int; spec : Joinspec.t }

(* A partial-invalidation log entry: a logged check-source change to be
   applied when the output range is next queried (§3.2, [29]). *)
type log_entry = {
  le_join : join;
  le_source : int;
  le_key : string;
  le_change : change;
  le_bindings : string option array;
  le_residual : Pattern.residual option;
}

type st_state =
  | Valid of { expires : float option } (* snapshot joins carry an expiry *)
  | Invalid (* complete invalidation: recompute from scratch *)
  | Pending of log_entry list (* partial invalidation, newest first *)

type status = { mutable state : st_state }

(* A cover is one materialized execution of one join over one output
   range: it owns the updaters installed during that execution, the
   output hint, and an LRU slot for eviction. *)
type cover = {
  co_join : join;
  co_lo : string;
  co_hi : string;
  mutable co_handles : updater Interval_map.handle list;
  co_installed : (string, unit) Hashtbl.t; (* dedup of (entry, context) installs *)
  co_handle_keys : (string, updater Interval_map.handle) Hashtbl.t;
  (* entry keys already in co_handles, with the handle registered *)
  mutable co_hint : cell Table.handle option;
  mutable co_lru : cover Lru.entry option;
}

and updater = {
  up_join : join;
  up_source : int;
  up_kind : [ `Eager | `Invalidate ];
  mutable up_contexts : context list;
}

and context = {
  cx_bindings : string option array;
  cx_residual : Pattern.residual option;
  cx_cover : cover;
}

type tbl_meta = {
  status : status Range_map.t;
  updaters : updater Interval_map.t;
  (* O(1) updater-combining lookup: "jid/src/kind/lo/hi" -> entry *)
  combine_index : (string, updater Interval_map.handle) Hashtbl.t;
  mutable present : unit Range_map.t option; (* Some when a resolver governs this table *)
  (* the subset of [present] installed by [mark_present] (home-partition
     ownership). Only these ranges are durable: resolver-fetched presence
     is cache state, refetchable, and must NOT survive a restart — a
     recovered range without its subscription would serve frozen data *)
  mutable owned : unit Range_map.t option;
  (* per-range version stamps (session consistency, docs/SESSIONS.md):
     on ranges this server is authoritative for, a counter bumped once
     per public mutation; on fetched ranges, the owner's stamp as
     recorded from [Subscribed] snapshots and [Notify] push trailers.
     One map serves both roles — a migration flips a range from fetched
     to owned and the counter continues where the feed left it *)
  mutable stamps : int Range_map.t option;
  (* bumped whenever an entry enters or leaves [updaters]: put_batch
     prefetches one overlap list per key run and must notice when firing
     an updater installs or retracts entries mid-run *)
  mutable gen : int;
}

(* Resolver answers for a missing base range (§3.3). *)
type resolve_result =
  | Resolved of (string * string) list (* pairs now available *)
  | Deferred (* fetch started; retry later *)
  | Local (* this table is not backed; treat as present *)

type resolver = table:string -> lo:string -> hi:string -> resolve_result

(* Every scan produces one of these: pairs, or the base ranges to fetch
   before retrying. *)
type scan_result =
  [ `Ok of (string * string) list
  | `Missing of (string * string * string) list ]

(* Client-level state transitions, as seen by the durability subsystem
   (lib/persist). Only API-level mutations are reported: writes the engine
   derives itself (join materialization) are recomputed on recovery, not
   replayed. *)
type mutation =
  | M_put of string * string
  | M_remove of string
  | M_put_batch of (string * string) list (* one client batch, argument order *)
  | M_add_join of string (* canonical join text *)
  | M_present of string * string * string (* table, lo, hi now locally owned *)

exception Need_fetch of (string * string * string) (* table, lo, hi *)
exception Join_cycle of string

(* Pre-resolved registry handles for the engine's hot paths: recording an
   event is one field load and one gated store, never a name lookup. The
   counter names are the registry's public catalogue (docs/OBSERVABILITY.md). *)
type metrics = {
  puts : Obs.Counter.t; (* store.put *)
  removes : Obs.Counter.t; (* store.remove *)
  updater_runs : Obs.Counter.t; (* updater.run *)
  scans : Obs.Counter.t; (* op.scan *)
  scans_fast : Obs.Counter.t; (* op.scan_fast *)
  gets : Obs.Counter.t; (* op.get *)
  invalidations : Obs.Counter.t; (* updater.invalidate *)
  eager_value : Obs.Counter.t; (* updater.eager_value *)
  eager_check : Obs.Counter.t; (* updater.eager_check *)
  agg_recompute : Obs.Counter.t; (* aggregate.recompute *)
  combined : Obs.Counter.t; (* updater.combined *)
  installed : Obs.Counter.t; (* updater.installed *)
  exec_runs : Obs.Counter.t; (* exec.run *)
  resolver_fetch : Obs.Counter.t; (* resolver.fetch *)
  resolver_deferred : Obs.Counter.t; (* resolver.deferred *)
  recomputes : Obs.Counter.t; (* exec.recompute_region *)
  apply_logs : Obs.Counter.t; (* exec.apply_log *)
  evictions : Obs.Counter.t; (* evict.cover *)
  pulls : Obs.Counter.t; (* exec.pull *)
  put_batches : Obs.Counter.t; (* op.put_batch *)
  coalesced_stabs : Obs.Counter.t; (* updater.coalesced_stabs *)
  scan_ns : Obs.Histogram.t; (* op.scan.ns *)
  scan_pairs : Obs.Histogram.t; (* op.scan.pairs *)
  put_bytes : Obs.Histogram.t; (* store.put.bytes *)
  put_batch_size : Obs.Histogram.t; (* op.put_batch.size *)
}

let make_metrics obs =
  {
    puts = Obs.counter obs "store.put";
    removes = Obs.counter obs "store.remove";
    updater_runs = Obs.counter obs "updater.run";
    scans = Obs.counter obs "op.scan";
    scans_fast = Obs.counter obs "op.scan_fast";
    gets = Obs.counter obs "op.get";
    invalidations = Obs.counter obs "updater.invalidate";
    eager_value = Obs.counter obs "updater.eager_value";
    eager_check = Obs.counter obs "updater.eager_check";
    agg_recompute = Obs.counter obs "aggregate.recompute";
    combined = Obs.counter obs "updater.combined";
    installed = Obs.counter obs "updater.installed";
    exec_runs = Obs.counter obs "exec.run";
    resolver_fetch = Obs.counter obs "resolver.fetch";
    resolver_deferred = Obs.counter obs "resolver.deferred";
    recomputes = Obs.counter obs "exec.recompute_region";
    apply_logs = Obs.counter obs "exec.apply_log";
    evictions = Obs.counter obs "evict.cover";
    pulls = Obs.counter obs "exec.pull";
    put_batches = Obs.counter obs "op.put_batch";
    coalesced_stabs = Obs.counter obs "updater.coalesced_stabs";
    scan_ns = Obs.histogram obs "op.scan.ns";
    scan_pairs = Obs.histogram obs "op.scan.pairs";
    put_bytes = Obs.histogram obs "store.put.bytes";
    put_batch_size = Obs.histogram obs "op.put_batch.size";
  }

type t = {
  store : cell Store.t;
  obs : Obs.t; (* per-server metrics registry + trace ring *)
  hot : metrics;
  config : Config.t;
  mutable joins : join list; (* install order *)
  meta : (string, tbl_meta) Hashtbl.t;
  covers : (int, cover Range_map.t) Hashtbl.t; (* join id -> disjoint covers *)
  lru : cover Lru.t;
  mutable value_bytes : int;
  mutable next_jid : int;
  mutable resolver : resolver option;
  mutable on_mutation : (mutation -> unit) option; (* durability hook *)
  (* When a scan runs in collect mode, every [Deferred] source range is
     recorded here instead of aborting the scan at the first miss
     ([Need_fetch]); the scan returns the full deduplicated set so an
     asynchronous host can fetch all of it as one burst. [None] outside
     collect mode (and in blocking deployments). *)
  mutable deferred_acc : (string * string * string) list ref option;
}

let create ?config () =
  let config = match config with Some c -> c | None -> Config.default () in
  let obs = Obs.create () in
  {
    store = Store.create ~table_config:(fun name -> config.Config.table_config name)
        ~dummy:{ data = ""; charged = 0 } ();
    obs;
    hot = make_metrics obs;
    config;
    joins = [];
    meta = Hashtbl.create 16;
    covers = Hashtbl.create 16;
    lru = Lru.create ();
    value_bytes = 0;
    next_jid = 0;
    resolver = None;
    on_mutation = None;
    deferred_acc = None;
  }

let config t = t.config
let obs t = t.obs

(* True while a collect-mode scan is running: a resolver that fetches
   asynchronously answers [Deferred] here (the miss set comes back via
   [`Missing]) but must fall back to a blocking fetch outside it (updater
   firings have no retry loop above them). *)
let collecting t = t.deferred_acc <> None
let counter t name = Obs.counter_value t.obs name
let set_resolver t r = t.resolver <- Some r
let set_mutation_hook t f = t.on_mutation <- Some f
let clear_mutation_hook t = t.on_mutation <- None
let emit t m = match t.on_mutation with Some f -> f m | None -> ()

let meta t name =
  match Hashtbl.find_opt t.meta name with
  | Some m -> m
  | None ->
    let m = { status = Range_map.create ~dup:(fun st -> { state = st.state }) ();
              updaters = Interval_map.create ();
              combine_index = Hashtbl.create 64;
              present = None;
              owned = None;
              stamps = None;
              gen = 0 }
    in
    Hashtbl.add t.meta name m;
    m

let covers_of t jid =
  match Hashtbl.find_opt t.covers jid with
  | Some rm -> rm
  | None ->
    let rm = Range_map.create () in
    Hashtbl.add t.covers jid rm;
    rm

(** Total approximate resident bytes: keys, nodes, values. *)
let memory_bytes t = Store.memory_bytes t.store + t.value_bytes

let store_ops t = Store.total_ops t.store

let now t = t.config.Config.now ()

let in_cover cover key =
  String.compare cover.co_lo key <= 0 && String.compare key cover.co_hi < 0

(* ------------------------------------------------------------------ *)
(* Join installation                                                   *)

(** Install a cache join. Rejects joins that would make the dependency
    graph between tables cyclic (§3's recursion check, extended to
    indirect cycles through chained joins). *)
let add_join t spec =
  let out_table = Pattern.table (Joinspec.output spec) in
  let deps j =
    List.map (fun s -> Pattern.table s.Joinspec.pattern) (Joinspec.sources j)
  in
  (* edge: out table of join -> source tables; a cycle means recursion *)
  let edges =
    (out_table, deps spec)
    :: List.map (fun j -> (Pattern.table (Joinspec.output j.spec), deps j.spec)) t.joins
  in
  let rec reachable src visited =
    if List.mem src visited then visited
    else
      let visited = src :: visited in
      List.fold_left
        (fun acc (o, ds) -> if String.equal o src then List.fold_left (fun a d -> reachable d a) acc ds else acc)
        visited edges
  in
  let closure = List.concat_map (fun d -> reachable d []) (deps spec) in
  if List.mem out_table closure then
    Error (Printf.sprintf "join on table %s creates a dependency cycle" out_table)
  else begin
    let join = { jid = t.next_jid; spec } in
    t.next_jid <- t.next_jid + 1;
    t.joins <- t.joins @ [ join ];
    emit t (M_add_join (Joinspec.to_string spec));
    Ok ()
  end

let add_join_text t text =
  match Joinspec.parse text with
  | Error msg -> Error msg
  | Ok spec -> add_join t spec

let add_join_exn t text =
  match add_join_text t text with Ok () -> () | Error msg -> invalid_arg msg

let joins t = List.map (fun j -> j.spec) t.joins

(* ------------------------------------------------------------------ *)
(* The mutually recursive engine core                                  *)

let source_array spec = Joinspec.sources_array spec

(* Union of two binding arrays; [None] on any conflicting slot. *)
let merge_bindings a b =
  let n = max (Array.length a) (Array.length b) in
  let out = Array.make n None in
  let ok = ref true in
  for i = 0 to n - 1 do
    let va = if i < Array.length a then a.(i) else None in
    let vb = if i < Array.length b then b.(i) else None in
    match (va, vb) with
    | Some x, Some y when not (String.equal x y) -> ok := false
    | Some x, _ -> out.(i) <- Some x
    | None, v -> out.(i) <- v
  done;
  if !ok then Some out else None

(* Does [sub]'s every binding also appear, equal, in [sup]? *)
let bindings_subsume ~sub ~sup =
  let n = min (Array.length sub) (Array.length sup) in
  let ok = ref true in
  for i = 0 to n - 1 do
    match (sub.(i), sup.(i)) with
    | Some a, Some b when not (String.equal a b) -> ok := false
    | Some _, None -> ok := false
    | _ -> ()
  done;
  Array.iteri (fun i v -> if i >= n && v <> None then ok := false) sub;
  !ok

(* merge adjacent Valid status pieces so warm reads see one piece *)
let coalesce_valid m ~lo ~hi =
  Range_map.coalesce m.status ~lo ~hi ~eq:(fun a b ->
      match (a.state, b.state) with
      | Valid { expires = None }, Valid { expires = None } -> true
      | Valid { expires = Some x }, Valid { expires = Some y } -> x = y
      | _ -> false)

(* High-water mark of the collect-mode deferral list: a region whose
   execution recorded new misses must not be marked Valid, or output
   computed from absent sources would freeze as fresh. *)
let deferred_mark t = match t.deferred_acc with Some acc -> List.length !acc | None -> 0

let rec apply_put ?hint ?(shared = false) t key data =
  Obs.Counter.incr t.hot.puts;
  Obs.Histogram.observe t.hot.put_bytes (String.length data);
  Strkey.validate key;
  let tbl = Store.table_of_key t.store key in
  let charged =
    if shared && t.config.Config.value_sharing then pointer_cost else String.length data
  in
  let data = if shared && not t.config.Config.value_sharing then String.sub data 0 (String.length data) else data in
  let handle, old = Table.put ?hint tbl key { data; charged } in
  (match old with Some oc -> t.value_bytes <- t.value_bytes - oc.charged | None -> ());
  t.value_bytes <- t.value_bytes + charged;
  let change = if old = None then Insert else Update in
  notify t key ~old_value:(Option.map (fun c -> c.data) old) ~new_value:(Some data) ~change;
  handle

and apply_remove t key =
  let tbl = Store.table_of_key t.store key in
  match Table.remove tbl key with
  | None -> ()
  | Some cell ->
    Obs.Counter.incr t.hot.removes;
    t.value_bytes <- t.value_bytes - cell.charged;
    notify t key ~old_value:(Some cell.data) ~new_value:None ~change:Remove

(* Every write runs the updaters stabbing the key (§3.2). *)
and notify t key ~old_value ~new_value ~change =
  let m = meta t (Store.table_name_of key) in
  if Interval_map.size m.updaters > 0 then begin
    let hits = ref [] in
    Interval_map.stab m.updaters key (fun e -> hits := Interval_map.handle_data e :: !hits);
    List.iter
      (fun up ->
        List.iter
          (fun cx -> run_context t up cx key ~old_value ~new_value ~change)
          up.up_contexts)
      !hits
  end

and run_context t up cx key ~old_value ~new_value ~change =
  Obs.Counter.incr t.hot.updater_runs;
  let src = (source_array up.up_join.spec).(up.up_source) in
  match Pattern.match_key src.Joinspec.pattern key ~bindings:cx.cx_bindings with
  | None -> ()
  | Some b -> (
    match up.up_kind with
    | `Eager ->
      if up.up_source = Joinspec.value_source_index up.up_join.spec then
        eager_value_apply t up cx b ~old_value ~new_value ~change
      else eager_check_apply t up cx b ~change
    | `Invalidate -> invalidate_apply t up cx b key ~change)

(* Eager reaction on the value source: copy or adjust an aggregate. *)
and eager_value_apply t up cx b ~old_value ~new_value ~change =
  Obs.Counter.incr t.hot.eager_value;
  let join = up.up_join in
  let out = Joinspec.output join.spec in
  match Pattern.build_key out b with
  | exception Invalid_argument _ -> ()
  | okey ->
    if in_cover cx.cx_cover okey then begin
      match Joinspec.value_op join.spec with
      | Joinspec.Copy -> (
        match change with
        | Insert | Update -> (
          match new_value with
          | Some v -> put_output t cx.cx_cover okey v ~shared:true
          | None -> ())
        | Remove -> apply_remove t okey)
      | Joinspec.Count | Joinspec.Sum | Joinspec.Min | Joinspec.Max -> (
        let op = Joinspec.value_op join.spec in
        let current = Option.map (fun c -> c.data) (Store.get t.store okey) in
        match Operator.incremental op ~current ~change ~old_value ~new_value with
        | Operator.Set v -> put_output t cx.cx_cover okey v ~shared:false
        | Operator.Delete -> apply_remove t okey
        | Operator.Recompute -> recompute_aggregate t join cx b okey
        | Operator.Nothing -> ())
      | Joinspec.Check -> assert false
    end

(* Eager reaction on a check source (the non-default policy, used by the
   maintenance-policy ablation): recompute the binding immediately. *)
and eager_check_apply t up cx b ~change =
  Obs.Counter.incr t.hot.eager_check;
  match change with
  | Update -> () (* check values are not interesting *)
  | Insert ->
    exec_sources t ~active:[] up.up_join ~bindings:b ~residual:cx.cx_residual
      ~out_range:(cx.cx_cover.co_lo, cx.cx_cover.co_hi)
      ~mode:(`Materialize cx.cx_cover) ~skip_source:up.up_source
  | Remove ->
    retract_binding t up.up_join b ~lo:cx.cx_cover.co_lo ~hi:cx.cx_cover.co_hi

(* Lazy reaction on a check source: log a partial invalidation against the
   affected output subrange, escalating to complete invalidation when the
   log grows too long (§3.2). *)
and invalidate_apply t up cx b key ~change =
  if change <> Update then begin
    let join = up.up_join in
    let out = Joinspec.output join.spec in
    let clo, chi = Pattern.containing_range out ~bindings:b ~residual:cx.cx_residual in
    match Strkey.range_inter (clo, chi) (cx.cx_cover.co_lo, cx.cx_cover.co_hi) with
    | None -> ()
    | Some (lo, hi) ->
      Obs.Counter.incr t.hot.invalidations;
      let m = meta t (Pattern.table out) in
      let entry =
        { le_join = join; le_source = up.up_source; le_key = key; le_change = change;
          le_bindings = cx.cx_bindings; le_residual = cx.cx_residual }
      in
      let limit = t.config.Config.pending_log_limit in
      Range_map.update_range m.status ~lo ~hi (fun _ _ stv ->
          match stv with
          | None -> None (* unknown: nothing materialized to invalidate *)
          | Some st ->
            (match st.state with
            | Valid _ -> st.state <- Pending [ entry ]
            | Pending log when List.length log >= limit -> st.state <- Invalid
            | Pending log -> st.state <- Pending (entry :: log)
            | Invalid -> ());
            Some st)
  end

(* Remove the outputs and value-source updater contexts a vanished check
   binding was supporting (subscription removal), restricted to the output
   region [lo, hi) being repaired — other regions carry their own log
   entries and repair themselves when queried. *)
and retract_binding t join b ~lo ~hi =
  let out = Joinspec.output join.spec in
  let olo, ohi = Pattern.containing_range out ~bindings:b ~residual:None in
  let olo = Strkey.max_str olo lo and ohi = Strkey.min_str ohi hi in
  if String.compare olo ohi < 0 then begin
    let doomed =
      Store.fold_range t.store ~lo:olo ~hi:ohi ~init:[] (fun acc k _ ->
          match Pattern.match_key out k ~bindings:b with Some _ -> k :: acc | None -> acc)
    in
    List.iter (fun k -> apply_remove t k) doomed;
    (* prune value-source updater contexts subsumed by this binding, for
       covers that overlap the repaired region *)
    let vs = Joinspec.value_source join.spec in
    let slo, shi = Pattern.containing_range vs.Joinspec.pattern ~bindings:b ~residual:None in
    let m = meta t (Pattern.table vs.Joinspec.pattern) in
    let stale = ref [] in
    Interval_map.iter_overlapping m.updaters ~lo:slo ~hi:shi (fun e ->
        let up = Interval_map.handle_data e in
        if up.up_join.jid = join.jid && up.up_source = Joinspec.value_source_index join.spec
        then begin
          let elo, ehi = Interval_map.handle_range e in
          let ckey =
            combine_key join ~source_idx:up.up_source ~kind:up.up_kind ~slo:elo ~shi:ehi
          in
          let keep cx =
            let doomed =
              bindings_subsume ~sub:b ~sup:cx.cx_bindings
              && Strkey.range_overlaps (cx.cx_cover.co_lo, cx.cx_cover.co_hi) (lo, hi)
            in
            if doomed then
              (* allow a later heal to reinstall this binding *)
              Hashtbl.remove cx.cx_cover.co_installed
                (install_fingerprint ~ckey ~bindings:cx.cx_bindings);
            not doomed
          in
          up.up_contexts <- List.filter keep up.up_contexts;
          if up.up_contexts = [] then stale := e :: !stale
        end);
    List.iter (fun e -> delete_updater_entry t m e) !stale
  end

(* unlink an updater entry from both the interval tree and the combine
   index (which must never point at a removed entry) *)
and delete_updater_entry t m e =
  ignore t;
  m.gen <- m.gen + 1;
  Interval_map.remove m.updaters e;
  let up = Interval_map.handle_data e in
  let slo, shi = Interval_map.handle_range e in
  let ckey = combine_key up.up_join ~source_idx:up.up_source ~kind:up.up_kind ~slo ~shi in
  match Hashtbl.find_opt m.combine_index ckey with
  | Some e' when e' == e -> Hashtbl.remove m.combine_index ckey
  | _ -> ()

and put_output t cover okey data ~shared =
  let hint = if t.config.Config.output_hints then cover.co_hint else None in
  let handle = apply_put ?hint ~shared t okey data in
  if t.config.Config.output_hints then cover.co_hint <- Some handle

(* Recompute one aggregate group from scratch (min/max retraction). *)
and recompute_aggregate t join cx b okey =
  Obs.Counter.incr t.hot.agg_recompute;
  let vs = Joinspec.value_source join.spec in
  (* restrict to the group key's slots: the aggregate refolds over every
     source key of the group, not just the one that changed *)
  let out_slots = Pattern.slots (Joinspec.output join.spec) in
  let b = Array.mapi (fun i v -> if List.mem i out_slots then v else None) b in
  let slo, shi = Pattern.containing_range vs.Joinspec.pattern ~bindings:b ~residual:None in
  let values =
    Store.fold_range t.store ~lo:slo ~hi:shi ~init:[] (fun acc k cell ->
        match Pattern.match_key vs.Joinspec.pattern k ~bindings:b with
        | Some _ -> cell.data :: acc
        | None -> acc)
  in
  match Operator.fold_aggregate (Joinspec.value_op join.spec) (List.rev values) with
  | Some v -> put_output t cx.cx_cover okey v ~shared:false
  | None -> apply_remove t okey

and install_fingerprint ~ckey ~bindings =
  let buf = Buffer.create 64 in
  Buffer.add_string buf ckey;
  Array.iter
    (fun v ->
      Buffer.add_char buf '\x01';
      match v with Some x -> Buffer.add_string buf x | None -> ())
    bindings;
  Buffer.contents buf

(* Install (or combine, §3.2) an updater for [source_idx] of [join] over
   source range [slo, shi), maintaining [cover]. *)
and combine_key join ~source_idx ~kind ~slo ~shi =
  String.concat "/"
    [ string_of_int join.jid; string_of_int source_idx;
      (match kind with `Eager -> "e" | `Invalidate -> "i"); slo; shi ]

and install_updater t join ~source_idx ~kind ~slo ~shi ~cx =
  if String.compare slo shi < 0 then begin
    let cover = cx.cx_cover in
    let ckey = combine_key join ~source_idx ~kind ~slo ~shi in
    (* one context per (entry, cover, binding): repeated lazy heals of the
       same subscription must not accumulate duplicates *)
    let fp = install_fingerprint ~ckey ~bindings:cx.cx_bindings in
    if not (Hashtbl.mem cover.co_installed fp) then begin
      Hashtbl.replace cover.co_installed fp ();
      let src = (source_array join.spec).(source_idx) in
      let m = meta t (Pattern.table src.Joinspec.pattern) in
      let existing =
        if t.config.Config.combine_updaters then Hashtbl.find_opt m.combine_index ckey else None
      in
      let register e =
        (* co_handle_keys maps entry key -> handle: if the entry was
           re-created since, register the fresh handle too *)
        match Hashtbl.find_opt cover.co_handle_keys ckey with
        | Some e' when e' == e -> ()
        | _ ->
          Hashtbl.replace cover.co_handle_keys ckey e;
          cover.co_handles <- e :: cover.co_handles
      in
      match existing with
      | Some e ->
        Obs.Counter.incr t.hot.combined;
        let up = Interval_map.handle_data e in
        up.up_contexts <- cx :: up.up_contexts;
        register e
      | None ->
        Obs.Counter.incr t.hot.installed;
        let up = { up_join = join; up_source = source_idx; up_kind = kind; up_contexts = [ cx ] } in
        m.gen <- m.gen + 1;
        let e = Interval_map.add m.updaters ~lo:slo ~hi:shi up in
        if t.config.Config.combine_updaters then Hashtbl.replace m.combine_index ckey e;
        register e
    end
  end

(* The nested-loop executor (Figs 3 and 5). [skip_source] marks a source
   already bound by the caller (log application / eager check insert).
   [mode] is [`Materialize cover] (install results, updaters, hints) or
   [`Collect acc] (pull joins: just produce pairs). *)
and exec_sources t ~active join ~bindings ~residual ~out_range ~mode ~skip_source =
  Obs.Counter.incr t.hot.exec_runs;
  let spec = join.spec in
  let sources = source_array spec in
  let nsources = Array.length sources in
  let vs_idx = Joinspec.value_source_index spec in
  let vop = Joinspec.value_op spec in
  let out = Joinspec.output spec in
  let olo, ohi = out_range in
  let install = match mode with
    | `Materialize _ when Joinspec.maintenance spec = Joinspec.Push -> true
    | _ -> false
  in
  let agg = if Joinspec.is_aggregate vop then Some (Hashtbl.create 16) else None in
  (* copy emissions are buffered and flushed in key order, so the output
     hint turns materialization into sequential appends *)
  let copy_buf = ref [] in
  let emit b value =
    match Pattern.build_key out b with
    | exception Invalid_argument _ -> ()
    | okey ->
      if String.compare olo okey <= 0 && String.compare okey ohi < 0 then begin
        match agg with
        | Some groups ->
          let prev = match Hashtbl.find_opt groups okey with Some l -> l | None -> [] in
          Hashtbl.replace groups okey (value :: prev)
        | None -> (
          match mode with
          | `Materialize _ -> copy_buf := (okey, value) :: !copy_buf
          | `Collect acc -> acc := (okey, value) :: !acc)
      end
  in
  let rec loop i b value =
    if i >= nsources then (match value with Some v -> emit b v | None -> ())
    else if i = skip_source then
      (* pre-bound source; its key contributed bindings already, and check
         sources contribute no value *)
      loop (i + 1) b value
    else begin
      let src = sources.(i) in
      let slo, shi = Pattern.containing_range src.Joinspec.pattern ~bindings:b ~residual in
      if String.compare slo shi < 0 then begin
        ensure_source_ready t ~active (Pattern.table src.Joinspec.pattern) ~lo:slo ~hi:shi;
        (if install then
           match mode with
           | `Materialize cover ->
             let kind =
               if src.Joinspec.op = Joinspec.Check && t.config.Config.lazy_checks then `Invalidate
               else `Eager
             in
             (* install over the canonical residual-free range: updaters
                from different queried subranges then combine into one
                entry instead of piling up overlapping intervals *)
             let ilo, ihi =
               if residual = None then (slo, shi)
               else Pattern.containing_range src.Joinspec.pattern ~bindings:b ~residual:None
             in
             install_updater t join ~source_idx:i ~kind ~slo:ilo ~shi:ihi
               ~cx:{ cx_bindings = b; cx_residual = residual; cx_cover = cover }
           | `Collect _ -> ());
        (* safe to iterate live: emissions are buffered until the loop
           finishes, so no store mutation happens during iteration *)
        Store.iter_range t.store ~lo:slo ~hi:shi (fun k cell ->
            match Pattern.match_key src.Joinspec.pattern k ~bindings:b with
            | Some b' ->
              let value = if i = vs_idx then Some cell.data else value in
              loop (i + 1) b' value
            | None -> ())
      end
    end
  in
  loop 0 bindings None;
  (match (mode, !copy_buf) with
  | `Materialize cover, (_ :: _ as buf) ->
    (* stable sort keeps last-wins order for ambiguous joins *)
    List.iter
      (fun (okey, v) -> put_output t cover okey v ~shared:true)
      (List.stable_sort (fun (a, _) (b, _) -> String.compare a b) (List.rev buf))
  | _ -> ());
  match agg with
  | None -> ()
  | Some groups ->
    let groups = Hashtbl.fold (fun k vs acc -> (k, List.rev vs) :: acc) groups [] in
    List.iter
      (fun (okey, values) ->
        match Operator.fold_aggregate vop values with
        | Some v -> (
          match mode with
          | `Materialize cover -> put_output t cover okey v ~shared:false
          | `Collect acc -> acc := (okey, v) :: !acc)
        | None -> ())
      (List.sort compare groups)

(* Make a base/source range available locally, resolving through other
   joins (§3.3 case 1) or the resolver (cases 2 and 3). *)
and ensure_source_ready t ~active table ~lo ~hi =
  (* chained joins: if any join outputs into this table, validate first *)
  let feeds =
    List.exists
      (fun j ->
        Joinspec.maintenance j.spec <> Joinspec.Pull
        && String.equal (Pattern.table (Joinspec.output j.spec)) table)
      t.joins
  in
  if feeds then validate_range t ~active ~lo ~hi;
  match t.resolver with
  | None -> ()
  | Some resolve ->
    let m = meta t table in
    let present =
      match m.present with
      | Some p -> p
      | None ->
        let p = Range_map.create () in
        m.present <- Some p;
        p
    in
    let missing = ref [] in
    Range_map.iter_cover present ~lo ~hi (fun plo phi v ->
        if v = None then missing := (plo, phi) :: !missing);
    List.iter
      (fun (plo, phi) ->
        match resolve ~table ~lo:plo ~hi:phi with
        (* resolver-fetched presence and pairs are cache, not client
           state: nothing is emitted to the durability hook, so recovery
           refetches (and re-subscribes) instead of serving a frozen copy *)
        | Local -> Range_map.set present ~lo:plo ~hi:phi ()
        | Resolved pairs ->
          Obs.Counter.incr t.hot.resolver_fetch;
          Range_map.set present ~lo:plo ~hi:phi ();
          List.iter (fun (k, v) -> ignore (apply_put t k v)) pairs
        | Deferred -> (
          Obs.Counter.incr t.hot.resolver_deferred;
          (* collect mode: record the miss and keep scanning so one pass
             surfaces every missing range; the range stays absent (not
             marked present) and its region is left not-Valid, so the
             retry after the fetch recomputes it with real data *)
          match t.deferred_acc with
          | Some acc -> acc := (table, plo, phi) :: !acc
          | None -> raise (Need_fetch (table, plo, phi))))
      (List.rev !missing)

(* Bring every push/snapshot join's output in [lo, hi) up to date:
   compute unknown ranges, recompute invalid ones, apply pending logs. *)
and validate_range t ~active ~lo ~hi =
  (* per-join cover of the request *)
  let jcovers =
    List.filter_map
      (fun j ->
        if Joinspec.maintenance j.spec = Joinspec.Pull then None
        else
          let out = Joinspec.output j.spec in
          match Pattern.bind_range out ~lo ~hi ~nslots:(Joinspec.nslots j.spec) with
          | None -> None
          | Some (b0, residual) ->
            let clo, chi = Pattern.containing_range out ~bindings:b0 ~residual in
            (match Strkey.range_inter (clo, chi) (lo, hi) with
            | None -> None
            | Some cov -> Some (j, b0, residual, cov)))
      t.joins
  in
  if jcovers <> [] then begin
    (* group by output table *)
    let tables =
      List.sort_uniq String.compare
        (List.map (fun (j, _, _, _) -> Pattern.table (Joinspec.output j.spec)) jcovers)
    in
    List.iter
      (fun table ->
        let m = meta t table in
        let mine = List.filter (fun (j, _, _, _) -> String.equal (Pattern.table (Joinspec.output j.spec)) table) jcovers in
        let span_lo = List.fold_left (fun acc (_, _, _, (l, _)) -> Strkey.min_str acc l) hi mine in
        let span_hi = List.fold_left (fun acc (_, _, _, (_, h)) -> Strkey.max_str acc h) lo mine in
        if String.compare span_lo span_hi < 0 then begin
          let pieces = ref [] in
          Range_map.iter_cover m.status ~lo:span_lo ~hi:span_hi (fun plo phi st ->
              pieces := (plo, phi, st) :: !pieces);
          List.iter
            (fun (plo, phi, st) ->
              let involved =
                List.filter (fun (_, _, _, cov) -> Strkey.range_overlaps cov (plo, phi)) mine
              in
              if involved <> [] then begin
                match st with
                | Some { state = Valid { expires = None } } -> touch_covers t involved
                | Some { state = Valid { expires = Some e } } when now t < e ->
                  touch_covers t involved
                | Some { state = Pending log } ->
                  (* re-read state: an earlier piece's work may have changed it *)
                  apply_log t ~active m ~plo ~phi (List.rev log)
                | Some { state = Valid _ } (* expired snapshot *)
                | Some { state = Invalid } | None ->
                  recompute_region t ~active m table ~plo ~phi
              end)
            (List.rev !pieces)
        end)
      tables
  end

and touch_covers t involved =
  if t.config.Config.memory_limit <> None then
  List.iter
    (fun (j, _, _, (clo, chi)) ->
      List.iter
        (fun (_, _, c) -> match c.co_lru with Some e -> Lru.touch t.lru e | None -> ())
        (Range_map.overlapping (covers_of t j.jid) ~lo:clo ~hi:chi))
    involved

(* Recompute a region from scratch: expand to whole covers, tear them
   down, clear their outputs, re-execute every overlapping join, and mark
   the region valid. *)
and recompute_region t ~active m table ~plo ~phi =
  Obs.Counter.incr t.hot.recomputes;
  let dmark = deferred_mark t in
  let t0 = Obs.tick () in
  (* expand to cover boundaries (fixpoint) so updater teardown is whole *)
  let lo = ref plo and hi = ref phi in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun j ->
        if String.equal (Pattern.table (Joinspec.output j.spec)) table then
          List.iter
            (fun (_, _, c) ->
              if String.compare c.co_lo !lo < 0 then begin lo := c.co_lo; changed := true end;
              if String.compare c.co_hi !hi > 0 then begin hi := c.co_hi; changed := true end)
            (Range_map.overlapping (covers_of t j.jid) ~lo:!lo ~hi:!hi))
      t.joins
  done;
  let lo = !lo and hi = !hi in
  (* which joins can output here? *)
  let involved =
    List.filter_map
      (fun j ->
        if
          Joinspec.maintenance j.spec = Joinspec.Pull
          || not (String.equal (Pattern.table (Joinspec.output j.spec)) table)
        then None
        else
          match Pattern.bind_range (Joinspec.output j.spec) ~lo ~hi ~nslots:(Joinspec.nslots j.spec) with
          | None -> None
          | Some (b0, residual) -> Some (j, b0, residual))
      t.joins
  in
  (* cycle guard for chained joins *)
  List.iter
    (fun (j, _, _) ->
      if List.mem j.jid active then
        raise (Join_cycle (Printf.sprintf "cyclic evaluation through %s" (Joinspec.to_string j.spec))))
    involved;
  (* teardown existing covers in the region *)
  List.iter (fun (j, _, _) -> teardown_covers t j ~lo ~hi) involved;
  (* drop stale outputs of the involved joins *)
  List.iter
    (fun (j, _, _) ->
      let out = Joinspec.output j.spec in
      let nb = Array.make (Joinspec.nslots j.spec) None in
      let doomed =
        Store.fold_range t.store ~lo ~hi ~init:[] (fun acc k _ ->
            match Pattern.match_key out k ~bindings:nb with Some _ -> k :: acc | None -> acc)
      in
      List.iter (fun k -> apply_remove t k) doomed)
    involved;
  (* re-execute each join over its cover within the region *)
  let expiry = ref None in
  List.iter
    (fun (j, b0, residual) ->
      let out = Joinspec.output j.spec in
      let clo, chi = Pattern.containing_range out ~bindings:b0 ~residual in
      match Strkey.range_inter (clo, chi) (lo, hi) with
      | None -> ()
      | Some (covlo, covhi) ->
        let cover =
          { co_join = j; co_lo = covlo; co_hi = covhi; co_handles = [];
            co_installed = Hashtbl.create 16; co_handle_keys = Hashtbl.create 16;
            co_hint = None; co_lru = None }
        in
        (try
           exec_sources t ~active:(j.jid :: active) j ~bindings:b0 ~residual
             ~out_range:(covlo, covhi) ~mode:(`Materialize cover) ~skip_source:(-1)
         with e ->
           (* roll back the partial execution's updaters *)
           List.iter (fun h -> remove_handle t cover h) cover.co_handles;
           cover.co_handles <- [];
           raise e);
        Range_map.set (covers_of t j.jid) ~lo:covlo ~hi:covhi cover;
        cover.co_lru <- Some (Lru.add t.lru cover);
        (match Joinspec.maintenance j.spec with
        | Joinspec.Snapshot secs ->
          let e = now t +. secs in
          expiry := Some (match !expiry with Some e0 -> Float.min e0 e | None -> e)
        | Joinspec.Push | Joinspec.Pull -> ()))
    involved;
  (* a clean region is fresh; one that deferred stays not-Valid so the
     post-fetch retry recomputes it (completed covers remain, §3.3) *)
  if deferred_mark t = dmark then begin
    Range_map.set m.status ~lo ~hi { state = Valid { expires = !expiry } };
    coalesce_valid m ~lo ~hi
  end;
  Obs.trace t.obs ~kind:"recompute" ~table ~lo ~hi ~dur_ns:(Obs.tock t0) ()

(* Release one cover's stake in an updater entry: combined updaters
   (§3.2) carry contexts from several covers, so only this cover's
   contexts go; the entry disappears when its last context does. *)
and remove_handle t cover h =
  let up = Interval_map.handle_data h in
  up.up_contexts <- List.filter (fun cx -> cx.cx_cover != cover) up.up_contexts;
  if up.up_contexts = [] then begin
    let src = (source_array up.up_join.spec).(up.up_source) in
    let m = meta t (Pattern.table src.Joinspec.pattern) in
    delete_updater_entry t m h
  end

and teardown_covers t j ~lo ~hi =
  let cm = covers_of t j.jid in
  let doomed = List.map (fun (_, _, c) -> c) (Range_map.overlapping cm ~lo ~hi) in
  let doomed = ref doomed in
  List.iter
    (fun c ->
      List.iter (fun h -> remove_handle t c h) c.co_handles;
      c.co_handles <- [];
      (match c.co_lru with Some e -> Lru.remove t.lru e | None -> ());
      Range_map.clear_range cm ~lo:c.co_lo ~hi:c.co_hi)
    !doomed

(* Apply a partial-invalidation log to one status piece (§3.2): each
   logged check-source change is joined against the other sources,
   restricted to the piece. *)
and apply_log t ~active m ~plo ~phi entries =
  Obs.Counter.incr t.hot.apply_logs;
  let dmark = deferred_mark t in
  List.iter
    (fun e ->
      let join = e.le_join in
      let src = (source_array join.spec).(e.le_source) in
      match Pattern.match_key src.Joinspec.pattern e.le_key ~bindings:e.le_bindings with
      | None -> ()
      | Some b -> (
        match e.le_change with
        | Update -> ()
        | Insert -> (
          (* find the cover this piece belongs to *)
          match Range_map.find (covers_of t join.jid) plo with
          | Some (_, _, cover) ->
            let olo = Strkey.max_str plo cover.co_lo and ohi = Strkey.min_str phi cover.co_hi in
            if String.compare olo ohi < 0 then begin
              (* derive the slot set from the piece itself so source scans
                 are narrowed to exactly the queried range — the essence of
                 partial invalidation: "only those tweets strictly required
                 by queries" (§3.2) *)
              match
                Pattern.bind_range (Joinspec.output join.spec) ~lo:olo ~hi:ohi
                  ~nslots:(Joinspec.nslots join.spec)
              with
              | None -> ()
              | Some (b0, residual_piece) -> (
                match merge_bindings b b0 with
                | None -> () (* the logged binding cannot output in this piece *)
                | Some merged ->
                  exec_sources t ~active join ~bindings:merged ~residual:residual_piece
                    ~out_range:(olo, ohi) ~mode:(`Materialize cover) ~skip_source:e.le_source)
            end
          | None ->
            (* cover vanished (evicted): recompute wholesale *)
            recompute_region t ~active m (Pattern.table (Joinspec.output join.spec)) ~plo ~phi)
        | Remove ->
          (* retract outputs of this binding, restricted to the piece *)
          let out = Joinspec.output join.spec in
          let olo, ohi = Pattern.containing_range out ~bindings:b ~residual:e.le_residual in
          ignore out;
          let olo = Strkey.max_str olo plo and ohi = Strkey.min_str ohi phi in
          if String.compare olo ohi < 0 then retract_binding t join b ~lo:olo ~hi:ohi))
    entries;
  if deferred_mark t = dmark then begin
    Range_map.update_range m.status ~lo:plo ~hi:phi (fun _ _ stv ->
        match stv with
        | Some st ->
          (match st.state with Pending _ -> st.state <- Valid { expires = None } | _ -> ());
          Some st
        | None -> None);
    coalesce_valid m ~lo:plo ~hi:phi
  end
  else
    (* the log was replayed against absent sources: downgrade to Invalid
       so the retry recomputes wholesale instead of re-playing a log we
       have already consumed *)
    Range_map.update_range m.status ~lo:plo ~hi:phi (fun _ _ stv ->
        match stv with
        | Some st ->
          (match st.state with Pending _ -> st.state <- Invalid | _ -> ());
          Some st
        | None -> None)

(* LRU eviction of computed covers under memory pressure (§2.5). *)
and maybe_evict t =
  match t.config.Config.memory_limit with
  | None -> ()
  | Some limit ->
    let guard = ref 0 in
    while memory_bytes t > limit && Lru.length t.lru > 0 && !guard < 10_000 do
      incr guard;
      match Lru.pop_lru t.lru with
      | None -> ()
      | Some c ->
        Obs.Counter.incr t.hot.evictions;
        c.co_lru <- None;
        evict_cover t c
    done

and evict_cover t c =
  let j = c.co_join in
  Obs.trace t.obs ~kind:"evict"
    ~table:(Pattern.table (Joinspec.output j.spec))
    ~lo:c.co_lo ~hi:c.co_hi ();
  List.iter (fun h -> remove_handle t c h) c.co_handles;
  c.co_handles <- [];
  Range_map.clear_range (covers_of t j.jid) ~lo:c.co_lo ~hi:c.co_hi;
  (* remove this join's outputs and forget the range's freshness *)
  let out = Joinspec.output j.spec in
  let nb = Array.make (Joinspec.nslots j.spec) None in
  let doomed =
    Store.fold_range t.store ~lo:c.co_lo ~hi:c.co_hi ~init:[] (fun acc k _ ->
        match Pattern.match_key out k ~bindings:nb with Some _ -> k :: acc | None -> acc)
  in
  List.iter (fun k -> apply_remove t k) doomed;
  let m = meta t (Pattern.table out) in
  Range_map.clear_range m.status ~lo:c.co_lo ~hi:c.co_hi

(* ------------------------------------------------------------------ *)
(* Per-range version stamps (session consistency, docs/SESSIONS.md)    *)

let stamps_map m =
  match m.stamps with
  | Some s -> s
  | None ->
    let s = Range_map.create () in
    m.stamps <- Some s;
    s

(* highest stamp recorded anywhere in [lo, hi); 0 when none *)
let stamp_over m ~lo ~hi =
  match m.stamps with
  | None -> 0
  | Some s ->
    List.fold_left (fun acc (_, _, v) -> max acc v) 0 (Range_map.overlapping s ~lo ~hi)

(* lowest stamp over [lo, hi), counting unrecorded gaps as 0 *)
let stamp_floor m ~lo ~hi =
  match m.stamps with
  | None -> 0
  | Some s ->
    let got = ref max_int in
    Range_map.iter_cover s ~lo ~hi (fun _ _ sv ->
        got := min !got (match sv with Some v -> v | None -> 0));
    if !got = max_int then 0 else !got

let owned_piece_of m key =
  match m.owned with
  | None -> None
  | Some o -> (
    match Range_map.find o key with Some (lo, hi, ()) -> Some (lo, hi) | None -> None)

(* Bump the version stamp of every owned piece containing one of [keys]
   (all in table [tname]), once per piece per public mutation. A table no
   partition layer governs ([present = None]) is implicitly owned whole:
   a standalone or flag-mode home server is authoritative for everything
   it stores. Nothing reaches the durability hook — WAL replay re-runs
   the same public mutations in order and reproduces the stamps. *)
let bump_stamps t tname keys =
  let m = meta t tname in
  match m.present with
  | None ->
    let lo = tname ^ "|" and hi = tname ^ "}" in
    Range_map.set (stamps_map m) ~lo ~hi (stamp_over m ~lo ~hi + 1)
  | Some _ ->
    let seen = ref [] in
    List.iter
      (fun key ->
        match owned_piece_of m key with
        | None -> () (* not authoritative here: no stamp to offer *)
        | Some (lo, hi) ->
          if not (List.mem (lo, hi) !seen) then begin
            seen := (lo, hi) :: !seen;
            Range_map.set (stamps_map m) ~lo ~hi (stamp_over m ~lo ~hi + 1)
          end)
      keys

(** The stamp vector acknowledging a write of [keys]: one
    [(table, lo, hi, stamp)] entry per written key, clamped to the key
    itself — a demand built from it can only ever gate the keys the
    session actually wrote, never unrelated ranges that happen to share
    an owned piece (or another home's slice of the same table). Keys this
    server is not authoritative for yield no entry. *)
let stamps_for_keys t keys =
  List.filter_map
    (fun key ->
      let tname = Store.table_name_of key in
      match Hashtbl.find_opt t.meta tname with
      | None -> None
      | Some m ->
        let authoritative =
          match m.present with None -> true | Some _ -> owned_piece_of m key <> None
        in
        if not authoritative then None
        else
          let hi = Strkey.key_after key in
          (match stamp_over m ~lo:key ~hi with
          | 0 -> None
          | s -> Some (tname, key, hi, s)))
    keys

(** Record that this server's copy of [\[lo, hi)] reflects the owner's
    version [stamp] (a [Subscribed] snapshot or a [Notify] push trailer).
    Monotone: only ever raises recorded stamps. Fetched freshness is
    cache state, like fetched presence — nothing reaches the durability
    hook; the restore path reuses this entry point because raising from
    zero is exact. *)
let set_range_stamp t ~table ~lo ~hi stamp =
  if stamp > 0 && String.compare lo hi < 0 then begin
    let m = meta t table in
    let s = stamps_map m in
    Range_map.update_range s ~lo ~hi (fun _ _ v ->
        match v with Some v when v >= stamp -> Some v | _ -> Some stamp);
    Range_map.coalesce s ~lo ~hi ~eq:Int.equal
  end

(** The stamp a [Fetch]/[Subscribed] answer carries for [\[lo, hi)]: the
    lowest stamp over the range — conservative when the clamp spans
    pieces at different versions (a too-low stamp causes at worst a
    spurious refetch, never a stale read). *)
let range_stamp t ~table ~lo ~hi =
  match Hashtbl.find_opt t.meta table with
  | None -> 0
  | Some m -> stamp_floor m ~lo ~hi

(** The sub-ranges of [demands] ([(table, lo, hi, min_stamp)] entries)
    whose local copy is present but too old: fetched pieces whose
    recorded stamp is below the demand. Owned and ungoverned pieces
    satisfy any demand (this server is the authority that produced every
    stamp a client can hold for them), and so do absent pieces (the
    scan's resolver fetches a fresh copy, at least as new as any acked
    stamp). An empty result means a scan served now meets the demand. *)
let stamp_unsatisfied t demands =
  let acc = ref [] in
  List.iter
    (fun (table, dlo, dhi, want) ->
      if want > 0 then
        match Hashtbl.find_opt t.meta table with
        | None -> () (* nothing resident: any needed fetch serves fresh data *)
        | Some { present = None; _ } -> () (* ungoverned: authoritative *)
        | Some m -> (
          match m.present with
          | None -> ()
          | Some p ->
            Range_map.iter_cover p ~lo:dlo ~hi:dhi (fun plo phi c ->
                let owned =
                  match owned_piece_of m plo with
                  | Some (_, ohi) -> String.compare phi ohi <= 0
                  | None -> false
                in
                if not owned then
                  match c with
                  | None ->
                    (* a gap in a governed table: the server holds no
                       copy, so it cannot prove the demanded version —
                       and data *derived* from an earlier copy (a join
                       output whose source was dropped) may still be
                       resident and stale. Only an actual refetch, which
                       re-records the owner's stamp, discharges this. *)
                    acc := (table, plo, phi, want) :: !acc
                  | Some _ ->
                    if stamp_floor m ~lo:plo ~hi:phi < want then
                      acc := (table, plo, phi, want) :: !acc)))
    demands;
  List.rev !acc

(** Authoritative stamps to persist in a snapshot: owned pieces, plus the
    whole-table stamps of ungoverned tables. Recorded fetched stamps are
    cache state and deliberately excluded — the refetch after recovery
    re-records them against live data. *)
let stamp_ranges t =
  let acc = ref [] in
  Hashtbl.iter
    (fun name m ->
      match m.stamps with
      | None -> ()
      | Some s -> (
        match m.present with
        | None ->
          Range_map.iter s (fun lo hi v -> if v > 0 then acc := (name, lo, hi, v) :: !acc)
        | Some _ -> (
          match m.owned with
          | None -> ()
          | Some o ->
            Range_map.iter o (fun olo ohi () ->
                Range_map.iter_cover s ~lo:olo ~hi:ohi (fun lo hi sv ->
                    match sv with
                    | Some v when v > 0 -> acc := (name, lo, hi, v) :: !acc
                    | _ -> ())))))
    t.meta;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Client operations                                                   *)

let put t key value =
  ignore (apply_put t key value);
  bump_stamps t (Store.table_name_of key) [ key ];
  maybe_evict t;
  emit t (M_put (key, value))

let remove t key =
  apply_remove t key;
  bump_stamps t (Store.table_name_of key) [ key ];
  emit t (M_remove key)

(* One contiguous run of a batch: every key lives in table [tname],
   ascending. The table and its meta are resolved once; insertion hints
   thread from each put to the next (sorted runs hit the §4.2 O(1)
   append path); and instead of stabbing the updater interval tree per
   key, the overlap list for the whole run is fetched once and filtered
   by containment per key. Filtering an in-order [iter_overlapping] list
   reproduces [notify]'s stab order exactly; [m.gen] detects updater
   installs/retractions caused by the firing itself, forcing a refetch
   so no key fires against a stale list. *)
let apply_batch_run t tname run =
  let tbl = Store.table t.store tname in
  let m = meta t tname in
  let hint = ref None in
  let put_cell key data =
    Obs.Counter.incr t.hot.puts;
    Obs.Histogram.observe t.hot.put_bytes (String.length data);
    let handle, old = Table.put ?hint:!hint tbl key { data; charged = String.length data } in
    hint := Some handle;
    (match old with Some oc -> t.value_bytes <- t.value_bytes - oc.charged | None -> ());
    t.value_bytes <- t.value_bytes + String.length data;
    old
  in
  (* A run into a table with no updaters needs none of the overlap-list
     bookkeeping below, and nothing can install an updater mid-run (only
     an updater firing can): the whole run is hinted tree appends. The
     bulk-load case — and what the sorted put_batch microbenchmark
     measures. *)
  if Interval_map.size m.updaters = 0 then
    List.iter (fun (key, data) -> ignore (put_cell key data)) run
  else begin
  let run_lo = fst (List.hd run) in
  let run_hi =
    Strkey.key_after (List.fold_left (fun _ (k, _) -> k) run_lo run)
  in
  let snap_gen = ref (-1) in
  let overlaps = ref [] in
  let refetch () =
    snap_gen := m.gen;
    let acc = ref [] in
    Interval_map.iter_overlapping m.updaters ~lo:run_lo ~hi:run_hi (fun e -> acc := e :: !acc);
    overlaps := List.rev !acc
  in
  List.iter
    (fun (key, data) ->
      let old = put_cell key data in
      if Interval_map.size m.updaters > 0 then begin
        if !snap_gen = m.gen then Obs.Counter.incr t.hot.coalesced_stabs else refetch ();
        let change = if old = None then Insert else Update in
        let old_value = Option.map (fun c -> c.data) old in
        let hits = ref [] in
        List.iter
          (fun e ->
            let elo, ehi = Interval_map.handle_range e in
            if String.compare elo key <= 0 && String.compare key ehi < 0 then
              hits := Interval_map.handle_data e :: !hits)
          !overlaps;
        List.iter
          (fun up ->
            List.iter
              (fun cx -> run_context t up cx key ~old_value ~new_value:(Some data) ~change)
              up.up_contexts)
          !hits
      end)
    run
  end

(** Batched write. Equivalent to the same puts applied one at a time in
    ascending key order (duplicate keys keep their argument order, so the
    last occurrence wins), but pays the per-key costs once per contiguous
    run: table resolution, updater stabs, insertion descents, and — at
    the callers' layers — wire framing and WAL fsyncs. Eviction runs once
    after the whole batch. Atomic with respect to validation: every key
    is checked before any store mutation. *)
let put_batch t pairs =
  if pairs <> [] then begin
    List.iter (fun (k, _) -> Strkey.validate k) pairs;
    Obs.Counter.incr t.hot.put_batches;
    Obs.Histogram.observe t.hot.put_batch_size (List.length pairs);
    (* bulk loads usually arrive presorted: a linear check then costs
       n-1 compares where the merge sort would pay n log n (comparable
       to the tree descents the batch exists to avoid). [<=] keeps
       duplicate keys in argument order, exactly like the stable sort. *)
    let rec is_sorted = function
      | (a, _) :: ((b, _) :: _ as rest) -> String.compare a b <= 0 && is_sorted rest
      | _ -> true
    in
    let sorted =
      if is_sorted pairs then pairs
      else List.stable_sort (fun (a, _) (b, _) -> String.compare a b) pairs
    in
    let rec split_run tname acc = function
      | ((k, _) as p) :: rest when String.equal (Store.table_name_of k) tname ->
        split_run tname (p :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let rec by_table = function
      | [] -> ()
      | (k, _) :: _ as l ->
        let tname = Store.table_name_of k in
        let run, rest = split_run tname [] l in
        apply_batch_run t tname run;
        bump_stamps t tname (List.map fst run);
        by_table rest
    in
    by_table sorted;
    maybe_evict t;
    emit t (M_put_batch pairs)
  end

(* Pull joins are recomputed on every query and never cached (§3.4). *)
let pull_results t ~lo ~hi =
  let acc = ref [] in
  List.iter
    (fun j ->
      if Joinspec.maintenance j.spec = Joinspec.Pull then begin
        let out = Joinspec.output j.spec in
        match Pattern.bind_range out ~lo ~hi ~nslots:(Joinspec.nslots j.spec) with
        | None -> ()
        | Some (b0, residual) ->
          let clo, chi = Pattern.containing_range out ~bindings:b0 ~residual in
          (match Strkey.range_inter (clo, chi) (lo, hi) with
          | None -> ()
          | Some (covlo, covhi) ->
            Obs.Counter.incr t.hot.pulls;
            exec_sources t ~active:[ j.jid ] j ~bindings:b0 ~residual
              ~out_range:(covlo, covhi) ~mode:(`Collect acc) ~skip_source:(-1))
      end)
    t.joins;
  List.sort_uniq compare !acc

let has_pull_joins t =
  List.exists (fun j -> Joinspec.maintenance j.spec = Joinspec.Pull) t.joins

(* Fast path for the common warm read: the request stays in one table and
   one unexpired Valid status piece covers all of it, so every overlapping
   join's output is already fresh in the store. *)
let warm_fast_path t ~lo ~hi =
  (not (has_pull_joins t))
  && String.equal (Store.table_name_of lo) (Store.table_name_of hi)
  &&
  match Hashtbl.find_opt t.meta (Store.table_name_of lo) with
  | None -> false
  | Some m -> (
    match Range_map.find m.status lo with
    | Some (_, phi, { state = Valid { expires } }) ->
      String.compare hi phi <= 0
      && (match expires with None -> true | Some e -> now t < e)
    | _ -> false)

(** Non-blocking scan for asynchronous deployments: either the results, or
    the base ranges that must be fetched before retrying (§3.3). One pass
    collects every missing range it can see (a check join fans out over
    all bound value ranges at once) and completed covers stay valid, so
    the retry never recomputes finished work. With [~may_defer:false] the
    scan never enters collect mode: a [Deferred] resolver answer aborts at
    the first miss, for callers with no retry loop above them. *)
(* first [n] elements of [l] (all of [l] when shorter) *)
let rec take n l =
  match l with x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> []

let scan_result ?limit ?(may_defer = true) t ~lo ~hi =
  Obs.Counter.incr t.hot.scans;
  let t0 = Obs.tick () in
  (* duration/size recording and tracing, skipped entirely when recording
     is off (the [List.length] below must not run on the disabled path) *)
  let finish pairs =
    if !Obs.enabled then begin
      let d = Obs.tock t0 in
      Obs.Histogram.observe t.hot.scan_ns d;
      Obs.Histogram.observe t.hot.scan_pairs (List.length pairs);
      Obs.trace t.obs ~kind:"scan" ~table:(Store.table_name_of lo) ~lo ~hi ~dur_ns:d ()
    end;
    `Ok pairs
  in
  (* resident pairs in [lo, hi), stopping the tree walk at [limit] rather
     than materializing the full range *)
  let bounded_stored () =
    match limit with
    | None ->
      List.rev (Store.fold_range t.store ~lo ~hi ~init:[] (fun acc k c -> (k, c.data) :: acc))
    | Some n when n <= 0 -> []
    | Some n ->
      let _, acc =
        Store.fold_range_stop t.store ~lo ~hi ~init:(0, []) (fun (cnt, acc) k c ->
            let st = (cnt + 1, (k, c.data) :: acc) in
            if cnt + 1 >= n then `Stop st else `Continue st)
      in
      List.rev acc
  in
  if warm_fast_path t ~lo ~hi then begin
    Obs.Counter.incr t.hot.scans_fast;
    finish (bounded_stored ())
  end
  else begin
    (* collect mode: resolver misses accumulate here instead of aborting
       the scan at the first one, so `Missing carries the full set and an
       asynchronous host can fetch it as one burst. Saved/restored rather
       than assumed-None for re-entrancy (a resolver or hook that scans). *)
    let saved = t.deferred_acc in
    let acc = ref [] in
    if may_defer then t.deferred_acc <- Some acc;
    match
      Fun.protect ~finally:(fun () -> t.deferred_acc <- saved) (fun () ->
          validate_range t ~active:[] ~lo ~hi;
          pull_results t ~lo ~hi)
    with
    | pulled when !acc <> [] ->
      ignore pulled;
      (* first-discovery order, deduplicated: the same gap can surface
         once per join source that reads it *)
      let seen = Hashtbl.create 8 in
      `Missing
        (List.filter
           (fun r ->
             if Hashtbl.mem seen r then false
             else begin
               Hashtbl.add seen r ();
               true
             end)
           (List.rev !acc))
    | pulled ->
      let stored = bounded_stored () in
      (* merge, preferring materialized values on key collisions. The
         truncated stored list is safe under a limit: the n smallest stored
         keys are all present, so after the merged sort the first n
         elements are exactly the true bounded result. *)
      let merged =
        if pulled = [] then stored
        else begin
          let stored_keys = List.map fst stored in
          let extra = List.filter (fun (k, _) -> not (List.mem k stored_keys)) pulled in
          let all = List.sort (fun (a, _) (b, _) -> String.compare a b) (stored @ extra) in
          match limit with None -> all | Some n -> take n all
        end
      in
      (* evict only after the response is assembled: a cover computed for
         this very scan must not vanish under the read *)
      maybe_evict t;
      finish merged
    | exception Need_fetch (table, flo, fhi) -> `Missing [ (table, flo, fhi) ]
  end

(** Ordered scan of [\[lo, hi)], computing and freshening any overlapping
    cache-join output first. Thin wrapper over {!scan_result} for callers
    that know every needed range is local or synchronously resolvable. *)
let scan ?limit t ~lo ~hi =
  (* blocking wrapper: no retry loop above, so let a blocking-fallback
     resolver fetch inline rather than collecting deferrals *)
  match scan_result ?limit ~may_defer:false t ~lo ~hi with
  | `Ok pairs -> pairs
  | `Missing ((table, flo, fhi) :: _) ->
    failwith (Printf.sprintf "Pequod.scan: unresolved fetch %s [%s, %s)" table flo fhi)
  | `Missing [] -> assert false

let get t key =
  Obs.Counter.incr t.hot.gets;
  match scan t ~lo:key ~hi:(Strkey.key_after key) with
  | (k, v) :: _ when String.equal k key -> Some v
  | _ -> None

let present_map m =
  match m.present with
  | Some p -> p
  | None ->
    let p = Range_map.create () in
    m.present <- Some p;
    p

(** Feed base data fetched by the host (distributed mode): installs the
    pairs as the authoritative content of [\[lo, hi)] — any resident key
    the feed no longer contains is removed through the updaters, so a
    refetch after recovery or a lost subscription heals stale state and
    the joins computed from it — and marks the range present. Fetched
    presence and pairs are cache, not client state: nothing reaches the
    durability hook (recovery refetches instead). *)
let feed_base t ~table ~lo ~hi pairs =
  Range_map.set (present_map (meta t table)) ~lo ~hi ();
  (* reconcile only pure base tables: a table some local join outputs
     into (a chained join's middle table) mixes fetched pairs with
     locally derived ones, which a backing copy must not delete *)
  let join_fed =
    List.exists
      (fun j ->
        Joinspec.maintenance j.spec <> Joinspec.Pull
        && String.equal (Pattern.table (Joinspec.output j.spec)) table)
      t.joins
  in
  if not join_fed then begin
    let incoming = Hashtbl.create (max 16 (List.length pairs)) in
    List.iter (fun (k, _) -> Hashtbl.replace incoming k ()) pairs;
    let stale =
      Store.fold_range t.store ~lo ~hi ~init:[] (fun acc k _ ->
          if Hashtbl.mem incoming k then acc else k :: acc)
    in
    List.iter (fun k -> apply_remove t k) stale
  end;
  List.iter (fun (k, v) -> ignore (apply_put t k v)) pairs

(** Mark a base range as locally owned (home-server partitions). Unlike
    fetched presence, ownership is durable: it reaches the mutation hook
    and {!present_ranges}. *)
let mark_present t ~table ~lo ~hi =
  let m = meta t table in
  Range_map.set (present_map m) ~lo ~hi ();
  let owned =
    match m.owned with
    | Some o -> o
    | None ->
      let o = Range_map.create () in
      m.owned <- Some o;
      o
  in
  Range_map.set owned ~lo ~hi ();
  emit t (M_present (table, lo, hi))

(** Forget any presence of [\[lo, hi)] (fetched or owned): the next scan
    needing the range consults the resolver again. The healing path for a
    compute server whose subscription the home dropped. *)
let unmark_present t ~table ~lo ~hi =
  match Hashtbl.find_opt t.meta table with
  | None -> ()
  | Some m ->
    Option.iter (fun p -> Range_map.clear_range p ~lo ~hi) m.present;
    Option.iter (fun o -> Range_map.clear_range o ~lo ~hi) m.owned

(** Number of key-value pairs resident (all tables). *)
let size t = Store.size t.store

(* ------------------------------------------------------------------ *)
(* Durability exports (lib/persist)                                    *)

(** Every resident pair, in table order. Includes materialized join
    output; snapshot writers skip {!sink_tables} to store base data
    only. *)
let iter_pairs t f =
  List.iter (fun tbl -> Table.iter tbl (fun k cell -> f k cell.data)) (Store.tables t.store)

(** Output tables of the installed push/snapshot joins — the tables whose
    contents are derived state, recomputable on demand after recovery. *)
let sink_tables t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun j ->
         if Joinspec.maintenance j.spec = Joinspec.Pull then None
         else Some (Pattern.table (Joinspec.output j.spec)))
       t.joins)

(** Base ranges {e owned} by this server ({!mark_present} home-partition
    ownership). Restoring these on recovery is safe; fetched presence is
    deliberately excluded — a restored fetched range would have no live
    subscription behind it and would serve frozen data. *)
let present_ranges t =
  let acc = ref [] in
  Hashtbl.iter
    (fun name m ->
      match m.owned with
      | None -> ()
      | Some o -> Range_map.iter o (fun lo hi () -> acc := (name, lo, hi) :: !acc))
    t.meta;
  List.sort compare !acc

(** Installed joins as canonical re-parsable text, in install order. *)
let join_texts t = List.map (fun j -> Joinspec.to_string j.spec) t.joins

(* Mirror values maintained outside the registry (memory ledgers, store
   layer statistics) into it. Gauge.set / Counter.set are not gated on
   [Obs.enabled], so measurement-critical figures (memory.bytes drives the
   paper's Fig 8 experiment) survive with recording off. *)
let sync_registry t =
  let g name v = Obs.Gauge.set (Obs.gauge t.obs name) v in
  g "memory.bytes" (memory_bytes t);
  g "memory.value_bytes" t.value_bytes;
  g "memory.store_bytes" (Store.memory_bytes t.store);
  g "store.size" (size t);
  g "store.tables" (List.length (Store.tables t.store));
  g "lru.covers" (Lru.length t.lru);
  let s = Store.stats_totals t.store in
  let c name v = Obs.Counter.set (Obs.counter t.obs name) v in
  c "table.lookups" s.Table.lookups;
  c "table.inserts" s.Table.inserts;
  c "table.removes" s.Table.removes;
  c "table.steps" s.Table.steps

(** Full registry snapshot (counters, gauges, histograms), with the
    mirrored gauges freshly synced. *)
let metrics_snapshot t =
  sync_registry t;
  Obs.snapshot t.obs

let stats_snapshot t =
  sync_registry t;
  Obs.int_snapshot t.obs

(** Whole-engine invariant checks, cheap enough to run after every
    operation of a model-based test: every store-layer structure
    revalidates (red-black trees, range maps, interval trees), including
    the §3.3 present-range bookkeeping, and every memory ledger must
    agree with a fresh walk of the resident pairs — the value-bytes
    ledger and each table's key-bytes/pair-count ledger (the figures
    {!memory_bytes}, and therefore [--stats], report). Raises [Failure]
    on the first violation. *)
let check_invariants t =
  Store.validate t.store;
  Hashtbl.iter
    (fun _ m ->
      Range_map.validate m.status;
      Interval_map.validate m.updaters;
      (match m.present with Some p -> Range_map.validate p | None -> ());
      (match m.stamps with Some s -> Range_map.validate s | None -> ());
      match m.owned with Some o -> Range_map.validate o | None -> ())
    t.meta;
  Hashtbl.iter (fun _ cm -> Range_map.validate cm) t.covers;
  let resident = ref 0 in
  List.iter
    (fun tbl ->
      let key_bytes = ref 0 and pairs = ref 0 in
      Table.iter tbl (fun k c ->
          resident := !resident + c.charged;
          key_bytes := !key_bytes + String.length k;
          incr pairs);
      if !pairs <> Table.size tbl then
        failwith
          (Printf.sprintf "Server.check_invariants: table %s counts %d pairs, walk found %d"
             (Table.name tbl) (Table.size tbl) !pairs);
      let expected = !key_bytes + (!pairs * Table.node_overhead) in
      if Table.memory_bytes tbl <> expected then
        failwith
          (Printf.sprintf
             "Server.check_invariants: table %s key ledger reports %d bytes, walk expects %d"
             (Table.name tbl) (Table.memory_bytes tbl) expected))
    (Store.tables t.store);
  if !resident <> t.value_bytes then
    failwith
      (Printf.sprintf "Server.check_invariants: value ledger %d bytes <> resident %d bytes"
         t.value_bytes !resident)

let validate = check_invariants
