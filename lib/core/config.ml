(** Server configuration knobs.

    The optimization toggles exist so the §4 ablation experiments can
    measure each mechanism: output hints (§4.2), value sharing (§4.3),
    updater combining (§3.2), subtables (§4.1, via [table_config]) and the
    check-source maintenance policy (§3.2). Production use keeps the
    defaults, which match the paper's prototype. *)

(** When to force the write-ahead log to stable storage. *)
type sync_mode =
  | Sync_always (* fsync after every appended record *)
  | Sync_interval of float (* fsync at most every [n] seconds *)
  | Sync_never (* leave it to the OS page cache *)

(** Durability knobs consumed by [Pequod_persist.Persist] (the engine
    itself never reads them; they live here so one [Config.t] describes a
    whole server). *)
type persist = {
  p_dir : string; (* data directory: wal-*.pql + snap-*.pqs *)
  mutable p_sync : sync_mode;
  mutable p_snapshot_every : int; (* log records between snapshots; 0 = only
                                     when the log outgrows [p_wal_max_bytes] *)
  mutable p_wal_max_bytes : int; (* rotate + compact past this log size *)
}

let default_persist ~dir =
  { p_dir = dir; p_sync = Sync_interval 1.0; p_snapshot_every = 0;
    p_wal_max_bytes = 64 * 1024 * 1024 }

let sync_mode_of_string = function
  | "always" -> Some Sync_always
  | "interval" -> Some (Sync_interval 1.0)
  | "never" -> Some Sync_never
  | _ -> None

let sync_mode_to_string = function
  | Sync_always -> "always"
  | Sync_interval _ -> "interval"
  | Sync_never -> "never"

type t = {
  mutable output_hints : bool; (* O(1) appends via last-update pointer *)
  mutable value_sharing : bool; (* copy joins share the source string *)
  mutable combine_updaters : bool; (* merge same-range updaters *)
  mutable lazy_checks : bool; (* check sources invalidate lazily (paper default) *)
  mutable pending_log_limit : int; (* partial-invalidation log cap; beyond it
                                      escalate to complete invalidation *)
  mutable memory_limit : int option; (* eviction high-water mark, bytes *)
  mutable now : unit -> float; (* clock, for snapshot joins *)
  mutable table_config : string -> int option; (* table -> subtable depth *)
  mutable persist : persist option; (* durability; None = pure in-memory *)
}

let default () =
  {
    output_hints = true;
    value_sharing = true;
    combine_updaters = true;
    lazy_checks = true;
    pending_log_limit = 64;
    memory_limit = None;
    now = Unix.gettimeofday;
    table_config = (fun _ -> None);
    persist = None;
  }
