(** The Pequod cache engine: an ordered key-value store with cache joins.

    One [Server.t] is one cache server. It supports the paper's four
    client operations plus join installation (§2), and implements forward
    query execution with dynamic materialization (§3.1), incremental
    maintenance with eager updaters and lazy invalidation logs (§3.2),
    missing-data resolution (§3.3), the pull/snapshot maintenance
    annotations (§3.4), LRU eviction (§2.5), and the §4 optimizations
    (subtables, output hints, value sharing, updater combining), each
    controlled by {!Config.t}.

    Keys are ['|']-separated byte strings without [0xff]
    ({!Strkey.validate}); the first component names the table. *)

module Joinspec = Pequod_pattern.Joinspec

type t

(** Resolver answers for a missing base range (§3.3). *)
type resolve_result =
  | Resolved of (string * string) list  (** pairs now available *)
  | Deferred  (** fetch started (or failed); retry later via {!scan_result} *)
  | Local  (** this table is not backed; treat as present *)

type resolver = table:string -> lo:string -> hi:string -> resolve_result

(** Client-level state transitions, as reported to the durability
    subsystem ({!set_mutation_hook}). Only API-level mutations appear;
    engine-derived writes (join materialization) are recomputed on
    recovery, never replayed. *)
type mutation =
  | M_put of string * string
  | M_remove of string
  | M_put_batch of (string * string) list
      (** one client batch, in argument order; recovery replays it through
          {!put_batch} *)
  | M_add_join of string  (** canonical join text *)
  | M_present of string * string * string
      (** table, lo, hi now locally owned ({!mark_present} only — presence
          installed by {!feed_base} or a resolver is refetchable cache and
          is never reported, so it cannot be persisted) *)

(** Raised when chained joins evaluate cyclically at runtime. *)
exception Join_cycle of string

(** A fresh engine; [config] defaults to {!Config.default}[ ()]. *)
val create : ?config:Config.t -> unit -> t

val config : t -> Config.t

(** Install a cache join. Rejects joins that would make the dependency
    graph between tables cyclic (the §3 recursion check, extended to
    indirect cycles through chained joins). *)
val add_join : t -> Joinspec.t -> (unit, string) result

val add_join_text : t -> string -> (unit, string) result
val add_join_exn : t -> string -> unit
val joins : t -> Joinspec.t list

(** Store a pair; every applicable updater runs (§3.2). *)
val put : t -> string -> string -> unit

(** Batched write — the hot path for bulk loads and grouped client
    traffic. Equivalent to the same puts applied one at a time in
    ascending key order (duplicate keys keep their argument order, so
    the last occurrence wins), but pays the per-key costs once per
    contiguous same-table key run: table resolution, updater interval
    stabs (see the [updater.coalesced_stabs] counter), and tree descents
    (insertion hints thread across the run). Every key is validated
    before any store mutation; eviction runs once after the batch. *)
val put_batch : t -> (string * string) list -> unit

val remove : t -> string -> unit

(** Fetch one key, computing and freshening overlapping join output
    first. *)
val get : t -> string -> string option

(** Every scan produces one of these: the ordered pairs, or the base
    ranges ([table, lo, hi] triples) that must be fetched — via
    {!feed_base} or a retried resolver — before the scan can complete.
    One pass collects {e every} missing range it can currently see (a
    check join fans out over all bound value ranges at once), in
    first-discovery order without duplicates, so an asynchronous host
    can issue the whole set as one fetch burst. Completed covers stay
    valid across retries (§3.3 restart behaviour), so a retry never
    recomputes finished work — though a retry may surface ranges that
    were unreachable before the first feed (a check source gates which
    value ranges are scanned). *)
type scan_result =
  [ `Ok of (string * string) list
  | `Missing of (string * string * string) list ]

(** Ordered scan of [\[lo, hi)], computing and freshening any overlapping
    cache-join output first. Pull-join results are merged in without
    being cached. [limit] bounds the result to its first [limit] pairs;
    the store walk stops there instead of materializing the whole range
    (maintenance of the range still runs in full, so freshness
    bookkeeping is identical with and without a limit).

    [may_defer] (default [true]) controls collect mode: with
    [~may_defer:false] a [Deferred] resolver answer aborts the scan at
    the first miss instead of being collected — for callers with no
    retry loop above them, whose resolver should fetch inline (see
    {!collecting}). *)
val scan_result :
  ?limit:int -> ?may_defer:bool -> t -> lo:string -> hi:string -> scan_result

(** True while a collect-mode {!scan_result} is running. An
    asynchronous resolver consults this to pick its answer: [Deferred]
    inside a collect-mode scan (the host fetches the [`Missing] set as
    one burst and retries), a blocking inline fetch everywhere else —
    updater firings and {!scan}/{!get} have no retry loop above them. *)
val collecting : t -> bool

(** Thin convenience wrapper over {!scan_result} for callers that know
    every needed range is local or synchronously resolvable; fails on
    [`Missing]. [limit] as in {!scan_result}. *)
val scan : ?limit:int -> t -> lo:string -> hi:string -> (string * string) list

(** Hook consulted when a base range is first needed (§3.3): a database
    backing store or a remote home server. *)
val set_resolver : t -> resolver -> unit

(** Install fetched base data as the authoritative content of
    [\[lo, hi)] and mark the range present (distributed deployments feed
    [Fetch] responses through this). Resident keys the feed no longer
    contains are removed through the updaters, so refetching a range —
    after recovery, eviction, or a lost subscription — heals stale base
    data and the join output computed from it. *)
val feed_base : t -> table:string -> lo:string -> hi:string -> (string * string) list -> unit

(** Mark a base range as locally owned (home-server partitions). Unlike
    fetched presence, ownership reaches the mutation hook and
    {!present_ranges}, so it survives recovery. *)
val mark_present : t -> table:string -> lo:string -> hi:string -> unit

(** Forget any presence of [\[lo, hi)]: the next scan needing the range
    consults the resolver again. Healing path for a compute server whose
    subscription the home dropped. *)
val unmark_present : t -> table:string -> lo:string -> hi:string -> unit

(** {2 Per-range version stamps (session consistency)}

    Every range this server is authoritative for — an owned piece, or
    any range of a table no partition layer governs — carries a version
    stamp bumped once per public mutation ({!put}, {!remove},
    {!put_batch}). Fetched copies record the owner's stamp from
    [Subscribed] snapshots and [Notify] push trailers. Stamps of
    authoritative ranges persist through snapshots (and reproduce under
    WAL replay, which re-runs the same mutations); recorded fetched
    stamps are cache state and do not survive. See docs/SESSIONS.md. *)

(** Stamp vector acknowledging a write of [keys]: one
    [(table, lo, hi, stamp)] entry per key this server is authoritative
    for, clamped to the key itself. *)
val stamps_for_keys : t -> string list -> (string * string * string * int) list

(** Record that the local copy of [\[lo, hi)] reflects the owner's
    version [stamp]. Monotone (only raises); also the snapshot-restore
    entry point. *)
val set_range_stamp : t -> table:string -> lo:string -> hi:string -> int -> unit

(** The stamp a [Fetch]/[Subscribed] answer carries for [\[lo, hi)]: the
    lowest stamp over the range (conservative across pieces), 0 when
    nothing was ever stamped. *)
val range_stamp : t -> table:string -> lo:string -> hi:string -> int

(** The sub-ranges of [demands] this server cannot prove are at the
    demanded stamp: fetched pieces a push has not yet caught up, and
    gaps in a governed table (no copy means no proof — derived data
    computed from a dropped copy may still be resident). Owned pieces
    and ungoverned tables satisfy any demand (authority), as do tables
    with nothing resident at all. Empty: a scan served now meets the
    demand. *)
val stamp_unsatisfied :
  t -> (string * string * string * int) list -> (string * string * string * int) list

(** Authoritative stamps for snapshot writers, sorted: owned pieces plus
    whole-table stamps of ungoverned tables. *)
val stamp_ranges : t -> (string * string * string * int) list

(** Approximate resident bytes: keys, nodes, values (§4.3-aware). *)
val memory_bytes : t -> int

(** Number of resident key-value pairs. *)
val size : t -> int

(** Cumulative store operations (tree lookups/inserts/removes/steps) —
    the distributed simulator's CPU cost model. *)
val store_ops : t -> int

(** {2 Observability}

    Each server owns a metrics registry ({!Obs.t}); every subsystem
    attached to it (persist, net, sim node) records into the same one,
    so one snapshot covers the whole process. The catalogue of metric
    names lives in [docs/OBSERVABILITY.md]. *)

(** This server's metrics registry and trace ring. *)
val obs : t -> Obs.t

(** Current total of one registry counter by name; 0 when absent.
    Convenience for tests and tools — hot paths use pre-resolved
    handles. *)
val counter : t -> string -> int

(** Full typed registry snapshot (counters, gauges, histograms), with
    the mirrored gauges — memory ledgers, store-layer op totals —
    freshly synced. The [Stats_full] RPC returns exactly this. *)
val metrics_snapshot : t -> (string * Obs.value) list

(** {!metrics_snapshot} flattened to integers (histograms expand to
    [.count]/[.sum]/[.min]/[.max]/[.p50]/[.p95]/[.p99] entries), for
    text tables and in-process consumers. Not on the wire: the RPC
    surface carries only the typed {!metrics_snapshot} ([Stats_full]). *)
val stats_snapshot : t -> (string * int) list

(** {2 Durability hooks (lib/persist)} *)

(** Observe every client-level mutation, after it is applied. One hook at
    a time; the write-ahead log is the intended subscriber. *)
val set_mutation_hook : t -> (mutation -> unit) -> unit

val clear_mutation_hook : t -> unit

(** Every resident pair in table order (includes materialized join
    output; snapshot writers skip {!sink_tables}). *)
val iter_pairs : t -> (string -> string -> unit) -> unit

(** Output tables of installed push/snapshot joins: derived state,
    recomputed on demand after recovery. *)
val sink_tables : t -> string list

(** Base ranges {e owned} via {!mark_present}. Fetched presence is
    excluded deliberately: restoring it on recovery would serve a frozen
    copy with no subscription keeping it fresh — recovery refetches
    instead. *)
val present_ranges : t -> (string * string * string) list

(** Installed joins as canonical re-parsable text, in install order. *)
val join_texts : t -> string list

(** Whole-engine invariant checks: store-layer [validate]s on every
    table (trees, range maps, interval trees, present-range maps) plus
    the value-bytes ledger. Cheap enough that model-based tests run it
    after every operation; raises [Failure] on the first violation. *)
val check_invariants : t -> unit

(** Historical name for {!check_invariants}. *)
val validate : t -> unit
