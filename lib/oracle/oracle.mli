(** The reference oracle: a deliberately naive model of the Pequod
    client API against which the optimized engine is differentially
    tested.

    Base pairs live in one plain sorted map. Nothing is ever cached,
    invalidated, or maintained: every read recomputes every installed
    join from scratch by nested-loop evaluation over the current base
    data, to a fixpoint for chained joins. The implementation shares
    only the pattern/joinspec vocabulary with the engine — none of the
    engine's execution, maintenance, or storage code — so an agreement
    bug requires the same mistake twice in two very different shapes.

    Semantics notes (mirrored by the fuzzer, see [test/fuzz/fuzz.ml]):
    - [push] and [pull] joins are always fresh here. The engine matches
      this by construction ([push]) or by recomputing per read ([pull]).
    - [snapshot T] joins are modelled as always-fresh too; a driver
      comparing against the engine must advance the engine's logical
      clock past [T] before each read so expired snapshots recompute.
    - Writing base data into a join's output table is out of scope
      (undefined results in the paper); generators must avoid it. *)

module Joinspec = Pequod_pattern.Joinspec

type t

(** A fresh, empty oracle. *)
val create : unit -> t

(** Re-validates the key like the engine does.
    @raise Strkey.Invalid_key on keys containing [0xff]. *)
val put : t -> string -> string -> unit

val remove : t -> string -> unit
val add_join : t -> Joinspec.t -> unit
val add_join_text : t -> string -> (unit, string) result
val joins : t -> Joinspec.t list

(** Ordered pairs of [\[lo, hi)] over the fully fresh view: base data
    plus every join's from-scratch output (pull joins included, losing
    to stored keys on collision, as in the engine). *)
val scan : t -> lo:string -> hi:string -> (string * string) list

val count : t -> lo:string -> hi:string -> int
val get : t -> string -> string option

(** The base pairs only, as last written. *)
val base_pairs : t -> (string * string) list
