(** The reference oracle: a deliberately naive model of the Pequod
    client API. See the interface for the contract.

    Evaluation strategy, chosen for obviousness over speed:

    - one [Map.Make(String)] holds the base pairs;
    - a read rebuilds the whole derived view: starting from the base
      map, every non-pull join is re-evaluated by nested loops over the
      current view and its outputs merged in, repeated until the view
      stops changing (chained joins converge because installation
      rejects cycles);
    - aggregates are folded from scratch over their group's inputs;
    - pull joins are evaluated last, against the settled view, and
      contribute only keys the view does not already hold (the engine
      prefers materialized values on collision).

    Nothing here is incremental, so the model cannot share a
    maintenance bug with the engine. *)

module Pattern = Pequod_pattern.Pattern
module Joinspec = Pequod_pattern.Joinspec
module Smap = Map.Make (String)

type t = {
  mutable base : string Smap.t;
  mutable joins : Joinspec.t list; (* install order *)
}

let create () = { base = Smap.empty; joins = [] }

let put t key value =
  Strkey.validate key;
  t.base <- Smap.add key value t.base

let remove t key = t.base <- Smap.remove key t.base
let add_join t spec = t.joins <- t.joins @ [ spec ]

let add_join_text t text =
  match Joinspec.parse text with
  | Error msg -> Error msg
  | Ok spec ->
    add_join t spec;
    Ok ()

let joins t = t.joins

(* From-scratch aggregate folds, independent of the engine's
   [Operator]: count of inputs, integer sum, lexicographic extrema. *)
let fold_aggregate op values =
  match (op, values) with
  | _, [] -> None
  | Joinspec.Count, vs -> Some (string_of_int (List.length vs))
  | Joinspec.Sum, vs ->
    let add acc v = acc + (match int_of_string_opt v with Some n -> n | None -> 0) in
    Some (string_of_int (List.fold_left add 0 vs))
  | Joinspec.Min, v :: vs -> Some (List.fold_left Strkey.min_str v vs)
  | Joinspec.Max, v :: vs -> Some (List.fold_left Strkey.max_str v vs)
  | (Joinspec.Copy | Joinspec.Check), _ -> invalid_arg "Oracle.fold_aggregate"

(* Evaluate one join over [view] by nested loops in source order,
   binding slots as the paper's Fig 3 does; returns the join's complete
   output map. *)
let eval_join spec view =
  let sources = Joinspec.sources_array spec in
  let nsources = Array.length sources in
  let out = Joinspec.output spec in
  let vs_idx = Joinspec.value_source_index spec in
  let vop = Joinspec.value_op spec in
  let groups = Hashtbl.create 16 in (* output key -> source values, reversed *)
  let emit b value =
    match Pattern.build_key out b with
    | exception Invalid_argument _ -> ()
    | okey ->
      let prev = match Hashtbl.find_opt groups okey with Some vs -> vs | None -> [] in
      Hashtbl.replace groups okey (value :: prev)
  in
  let rec loop i b value =
    if i >= nsources then (match value with Some v -> emit b v | None -> ())
    else
      Smap.iter
        (fun k v ->
          match Pattern.match_key sources.(i).Joinspec.pattern k ~bindings:b with
          | Some b' -> loop (i + 1) b' (if i = vs_idx then Some v else value)
          | None -> ())
        view
  in
  loop 0 (Array.make (Joinspec.nslots spec) None) None;
  Hashtbl.fold
    (fun okey values acc ->
      match vop with
      | Joinspec.Copy -> (
        (* unambiguous joins produce one tuple per output key *)
        match values with v :: _ -> Smap.add okey v acc | [] -> acc)
      | _ -> (
        match fold_aggregate vop (List.rev values) with
        | Some v -> Smap.add okey v acc
        | None -> acc))
    groups Smap.empty

let is_pull spec = Joinspec.maintenance spec = Joinspec.Pull

(* The fully fresh view: base plus non-pull join outputs to fixpoint,
   then pull outputs for keys still absent. *)
let full_view t =
  let cached = List.filter (fun j -> not (is_pull j)) t.joins in
  let step view =
    List.fold_left
      (fun acc j -> Smap.union (fun _ _ derived -> Some derived) acc (eval_join j view))
      t.base cached
  in
  let view = ref t.base in
  let settled = ref false in
  (* cycle-free chains of n joins settle in <= n rounds; the +1 pass
     just observes the fixpoint *)
  let rounds = List.length cached + 1 in
  for _ = 1 to rounds do
    if not !settled then begin
      let next = step !view in
      if Smap.equal String.equal next !view then settled := true else view := next
    end
  done;
  List.fold_left
    (fun acc j ->
      if is_pull j then
        Smap.union (fun _ stored _pulled -> Some stored) acc (eval_join j acc)
      else acc)
    !view t.joins

let scan t ~lo ~hi =
  full_view t |> Smap.bindings
  |> List.filter (fun (k, _) -> Strkey.in_range ~lo ~hi k)

let count t ~lo ~hi = List.length (scan t ~lo ~hi)

let get t key =
  match scan t ~lo:key ~hi:(Strkey.key_after key) with
  | (k, v) :: _ when String.equal k key -> Some v
  | _ -> None

let base_pairs t = Smap.bindings t.base
