(** Live-cluster topology for the load harness.

    The harness owns its cluster: it forks [homes] plain [pequod_server]
    processes each owning a contiguous user-id slice of the base tables
    ([s] subscriptions, [p] posts), plus [computes] servers running the
    Twip timeline join with [--partition] routes at the homes. Ports are
    ephemeral ([--port 0], read back from the server's "listening on
    port N" line), so any number of harness runs coexist on one box.

    Key routing mirrors the servers' range routes arithmetically: user
    [u] of [n] lives on home [u*homes/n], and reads for [u]'s timeline
    go to compute [u mod computes], so every compute materializes a
    disjoint slice of timelines. *)

module Social_graph = Pequod_apps.Social_graph
module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

type topology = {
  nusers : int;
  nhomes : int;
  ncomputes : int;
  chunk : int array;  (** home h owns users [chunk.(h), chunk.(h+1)) *)
  home_addrs : string array;
  compute_addrs : string array;
}

let chunk_bounds ~nusers ~nhomes = Array.init (nhomes + 1) (fun h -> h * nusers / nhomes)

let home_of topo u = min (topo.nhomes - 1) (u * topo.nhomes / topo.nusers)
let compute_of topo u = u mod topo.ncomputes

(** [--partition] specs for one compute server: each home's user slice
    of tables [s] and [p]; the first slice opens at [T|] and the last
    closes at [T}] so the routes cover the whole table (a gap would
    surface as [Deferred] scans). *)
let partition_specs ~nusers ~home_addrs =
  let nhomes = Array.length home_addrs in
  let chunk = chunk_bounds ~nusers ~nhomes in
  List.concat_map
    (fun table ->
      List.init nhomes (fun h ->
          let lo =
            if h = 0 then table ^ "|" else table ^ "|" ^ Social_graph.user_name chunk.(h)
          in
          let hi =
            if h = nhomes - 1 then table ^ "}"
            else table ^ "|" ^ Social_graph.user_name chunk.(h + 1)
          in
          Printf.sprintf "%s:%s:%s@%s" table lo hi home_addrs.(h)))
    [ "s"; "p" ]

(** The same placement as {!partition_specs}, as partition-directory
    entries for a directory-mode cluster (seeded at epoch 1). *)
let directory_entries ~nusers ~home_addrs =
  let nhomes = Array.length home_addrs in
  let chunk = chunk_bounds ~nusers ~nhomes in
  List.concat_map
    (fun table ->
      List.init nhomes (fun h ->
          { Message.de_table = table;
            de_lo =
              (if h = 0 then table ^ "|"
               else table ^ "|" ^ Social_graph.user_name chunk.(h));
            de_hi =
              (if h = nhomes - 1 then table ^ "}"
               else table ^ "|" ^ Social_graph.user_name chunk.(h + 1));
            de_home = home_addrs.(h); de_replicas = [] }))
    [ "s"; "p" ]

(* ------------------------------------------------------------------ *)
(* Server processes                                                    *)

type cluster = {
  topology : topology;
  procs : (int * Unix.file_descr) list;  (* pid, stdout pipe *)
}

let default_server_exe () =
  (* pequod_load and pequod_server are built into the same bin/ dir *)
  let beside = Filename.concat (Filename.dirname Sys.executable_name) "pequod_server.exe" in
  let candidates =
    [ beside; "_build/default/bin/pequod_server.exe"; "bin/pequod_server.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> failwith "pequod_server.exe not found; build it or pass --server-exe"

let spawn_server exe args =
  let r, w = Unix.pipe () in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin w Unix.stderr in
  Unix.close w;
  (pid, r)

let digits_after s prefix =
  let rec find i =
    if i + String.length prefix > String.length s then None
    else if String.sub s i (String.length prefix) = prefix then Some (i + String.length prefix)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while !stop < String.length s && (match s.[!stop] with '0' .. '9' -> true | _ -> false) do
      incr stop
    done;
    if !stop > start then int_of_string_opt (String.sub s start (!stop - start)) else None

let read_port fd =
  let acc = Buffer.create 256 in
  let b = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    match digits_after (Buffer.contents acc) "listening on port " with
    | Some port -> port
    | None ->
      if Unix.gettimeofday () > deadline then failwith "server did not report its port";
      (match Unix.select [ fd ] [] [] 1.0 with
      | [ _ ], _, _ ->
        let n = Unix.read fd b 0 (Bytes.length b) in
        if n = 0 then failwith "server exited before reporting its port";
        Buffer.add_subbytes acc b 0 n
      | _ -> ());
      go ()
  in
  go ()

let timeline_join =
  "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

(** [--shard-cut] points for a shard-per-core server: the same per-user
    arithmetic that slices the homes, expressed in component space (the
    fixed-width user-name format sorts lexicographically like the ids,
    and every table keyed by user shares the cut). *)
let shard_cuts ~nusers ~shards =
  List.init (shards - 1) (fun i -> Social_graph.user_name ((i + 1) * nusers / shards))

(** Fork the cluster and wait for every server to report its port.
    [memory_limit] is passed to the compute servers only (homes are the
    system of record for this run).

    With [~shards:n > 0] the topology is one shard-per-core server
    instead: a single [pequod_server --shards n] owning the whole
    keyspace and running the timeline join, with cut points derived
    from the user-name format so user slices balance. [nhomes] and
    [ncomputes] are ignored — the public port is both the write and the
    read destination ([--shards] is incompatible with [--partition]).

    With [~directory:true] the cluster is directory-routed instead of
    flag-routed: home 0 boots as the seed ([--dir-host], epoch 0), the
    other homes and every compute join it as [--directory] followers,
    the harness pushes the {!partition_specs} placement as a
    [Dir_update] at epoch 1, and [start] returns only once every server
    reports epoch >= 1 over [Dir_get] — so a following migration (see
    [Coord] [migrate_mid_run]) starts from a converged directory. *)
let start ?server_exe ?memory_limit ?(shards = 0) ?(directory = false) ~nusers ~nhomes
    ~ncomputes () =
  if nhomes < 1 || ncomputes < 1 then failwith "need at least one home and one compute";
  if shards > nusers then failwith "--shards must not exceed --users";
  let exe = match server_exe with Some e -> e | None -> default_server_exe () in
  let procs = ref [] in
  let boot args =
    let pid, out = spawn_server exe args in
    procs := (pid, out) :: !procs;
    read_port out
  in
  if shards > 0 then begin
    let args =
      [ "--port"; "0"; "--join"; timeline_join; "--shards"; string_of_int shards ]
      @ List.concat_map (fun c -> [ "--shard-cut"; c ]) (shard_cuts ~nusers ~shards)
      @ (match memory_limit with
        | Some b -> [ "--memory-limit"; string_of_int b ]
        | None -> [])
    in
    let addr = Printf.sprintf "127.0.0.1:%d" (boot args) in
    let topology =
      { nusers; nhomes = 1; ncomputes = 1; chunk = chunk_bounds ~nusers ~nhomes:1;
        home_addrs = [| addr |]; compute_addrs = [| addr |] }
    in
    { topology; procs = !procs }
  end
  else if directory then begin
    let client_of addr =
      match String.rindex_opt addr ':' with
      | Some i ->
        Net_client.create ~host:(String.sub addr 0 i)
          ~port:(int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)))
          ()
      | None -> invalid_arg ("bad server address " ^ addr)
    in
    (* the seed boots first (epoch 0), the remaining homes follow it *)
    let seed_addr = Printf.sprintf "127.0.0.1:%d" (boot [ "--port"; "0"; "--dir-host" ]) in
    let home_addrs =
      Array.init nhomes (fun h ->
          if h = 0 then seed_addr
          else
            Printf.sprintf "127.0.0.1:%d" (boot [ "--port"; "0"; "--directory"; seed_addr ]))
    in
    (* push the placement as epoch 1 *)
    let entries = directory_entries ~nusers ~home_addrs in
    let seedc = client_of seed_addr in
    (match Net_client.call seedc (Message.Dir_update { epoch = 1; entries }) with
    | Message.Done -> ()
    | Message.Error msg -> failwith ("directory seeding failed: " ^ msg)
    | _ -> failwith "directory seeding: unexpected response");
    Net_client.close seedc;
    let compute_addrs =
      Array.init ncomputes (fun _ ->
          let args =
            [ "--port"; "0"; "--join"; timeline_join; "--sub-check-every"; "10";
              "--directory"; seed_addr ]
            @ (match memory_limit with
              | Some b -> [ "--memory-limit"; string_of_int b ]
              | None -> [])
          in
          Printf.sprintf "127.0.0.1:%d" (boot args))
    in
    (* preloading before the placement converges would freeze ranges at
       the wrong home; block until every server reports epoch >= 1 *)
    let wait_epoch addr =
      let c = client_of addr in
      let deadline = Unix.gettimeofday () +. 20.0 in
      let rec go () =
        let epoch =
          match Net_client.call c Message.Dir_get with
          | Message.Dir_state { epoch; _ } -> epoch
          | _ -> 0
          | exception Net_client.Net_error _ -> 0
        in
        if epoch < 1 then
          if Unix.gettimeofday () > deadline then
            failwith (addr ^ " never adopted the seeded directory")
          else begin
            Unix.sleepf 0.1;
            go ()
          end
      in
      go ();
      Net_client.close c
    in
    Array.iter wait_epoch home_addrs;
    Array.iter wait_epoch compute_addrs;
    let topology =
      { nusers; nhomes; ncomputes; chunk = chunk_bounds ~nusers ~nhomes; home_addrs;
        compute_addrs }
    in
    { topology; procs = !procs }
  end
  else begin
  let home_addrs =
    Array.init nhomes (fun _ -> Printf.sprintf "127.0.0.1:%d" (boot [ "--port"; "0" ]))
  in
  let specs = partition_specs ~nusers ~home_addrs in
  let compute_addrs =
    Array.init ncomputes (fun _ ->
        let args =
          [ "--port"; "0"; "--join"; timeline_join;
            (* the heartbeat costs the homes a walk of the compute's
               live subscriptions, which grow with the working set *)
            "--sub-check-every"; "10" ]
          @ List.concat_map (fun spec -> [ "--partition"; spec ]) specs
          @ (match memory_limit with
            | Some b -> [ "--memory-limit"; string_of_int b ]
            | None -> [])
        in
        Printf.sprintf "127.0.0.1:%d" (boot args))
  in
  let topology =
    { nusers; nhomes; ncomputes; chunk = chunk_bounds ~nusers ~nhomes; home_addrs;
      compute_addrs }
  in
  { topology; procs = !procs }
  end

let shutdown cluster =
  List.iter
    (fun (pid, out) ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Unix.close out with Unix.Unix_error _ -> ())
    cluster.procs
