(** Worker → coordinator result channel.

    Each load worker is a forked process; when its op quota is done it
    writes one plain-text report down its inherited pipe and exits. The
    format is line-oriented and self-delimiting:

    {v
    elapsed <seconds>
    counter <name> <total>
    hist <name> <dense histogram, Obs.Histogram.dense_to_string>
    end
    v}

    Counters are summed across workers; histograms are shipped at full
    bucket resolution so the coordinator's merge yields the percentiles
    of the pooled samples ({!Obs.Histogram.merge}). *)

type t = {
  rp_elapsed : float;  (** worker wall time over its op loop, seconds *)
  rp_counters : (string * int) list;
  rp_hists : (string * Obs.Histogram.dense) list;
  rp_error : string option;  (** a worker that died reports why *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(** Serialize the worker's registry (counters and histograms; gauges
    are point-in-time noise for a finished worker) plus its elapsed
    wall time. *)
let write fd ~elapsed obs =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "elapsed %.6f\n" elapsed;
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Counter n -> Printf.bprintf buf "counter %s %d\n" name n
      | Obs.Gauge _ | Obs.Histogram _ -> ())
    (Obs.snapshot obs);
  List.iter
    (fun (name, h) ->
      Printf.bprintf buf "hist %s %s\n" name
        (Obs.Histogram.dense_to_string (Obs.Histogram.dense h)))
    (Obs.histograms obs);
  Buffer.add_string buf "end\n";
  write_all fd (Buffer.contents buf)

(** Report a worker that failed outright. *)
let write_error fd msg =
  write_all fd
    (Printf.sprintf "error %s\nend\n" (String.map (fun c -> if c = '\n' then ' ' else c) msg))

(** Read one worker's report (to EOF or the [end] marker). Malformed
    lines fail loudly — a truncated report means a worker crashed
    mid-write and the run's numbers would be silently wrong. *)
let read fd =
  let buf = Buffer.create 1024 in
  let b = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd b 0 (Bytes.length b) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf b 0 n;
      drain ()
  in
  drain ();
  let elapsed = ref 0.0 in
  let counters = ref [] in
  let hists = ref [] in
  let error = ref None in
  let seen_end = ref false in
  List.iter
    (fun line ->
      if line <> "" && not !seen_end then
        match String.index_opt line ' ' with
        | None when line = "end" -> seen_end := true
        | None -> failwith (Printf.sprintf "Load report: bad line %S" line)
        | Some sp -> (
          let tag = String.sub line 0 sp in
          let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
          match tag with
          | "elapsed" -> elapsed := float_of_string rest
          | "error" -> error := Some rest
          | "counter" -> (
            match String.split_on_char ' ' rest with
            | [ name; v ] -> counters := (name, int_of_string v) :: !counters
            | _ -> failwith (Printf.sprintf "Load report: bad counter %S" line))
          | "hist" -> (
            match String.index_opt rest ' ' with
            | Some i ->
              let name = String.sub rest 0 i in
              let dense =
                Obs.Histogram.dense_of_string
                  (String.sub rest (i + 1) (String.length rest - i - 1))
              in
              hists := (name, dense) :: !hists
            | None -> failwith (Printf.sprintf "Load report: bad hist %S" line))
          | _ -> failwith (Printf.sprintf "Load report: bad tag %S" line)))
    (String.split_on_char '\n' (Buffer.contents buf));
  if not !seen_end then failwith "Load report: truncated (worker died mid-write?)";
  { rp_elapsed = !elapsed; rp_counters = List.rev !counters; rp_hists = List.rev !hists;
    rp_error = !error }
