(** One load worker: an open-loop, deadline-paced client of the live
    cluster.

    The worker draws ops on demand from a seeded {!Workload.stream}
    (worker [i] of [n] uses [Rng.stream ~seed ~index:i], so the fleet's
    op sequence is a pure function of [seed] and [n]) and maps each op
    onto the wire:

    - [Login]/[Check] → [Scan] of the user's timeline on the compute
      server owning that user ([u mod computes]);
    - [Subscribe]/[Post] → [Put] on the home server owning the written
      key's user slice.

    Pacing is open-loop: op [i]'s send deadline is [t0 + i/rate], fixed
    in advance; when the cluster falls behind, the backlog shows up as
    latency instead of silently slowing the arrival process (no
    coordinated omission). Consecutive due ops are pipelined per
    destination, bounded by [w_window]. With [w_rate = 0] the worker is
    closed-loop at pipeline depth [w_window] — as fast as the cluster
    will answer.

    Latency per op is measured from its deadline (or from the pipeline
    write, when unpaced) to the arrival of its response batch, into the
    per-class log histograms [load.login.us], [load.check.us],
    [load.subscribe.us] and [load.post.us] of the worker's registry.
    [load.ops] counts answered ops, [load.errors] [Error] responses
    (e.g. a scan across a dead home's range), [load.failed] ops lost to
    connection failures.

    Freshness is validated on every timeline read: a check that misses
    a timeline entry implied by one of this worker's own {e acked}
    posts counts in [load.stale_reads] (seen entries in
    [load.fresh_reads]) — the read-your-writes anomaly measured
    identically with and without [w_sessions], so the two runs'
    [derived.stale_read_rate] difference is exactly what the stamp
    vector buys. *)

module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload
module Twip = Pequod_apps.Twip
module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client
module Session = Pequod_server_lib.Session

type config = {
  w_index : int;  (** this worker's rank *)
  w_nworkers : int;
  w_seed : int;
  w_quota : int;  (** ops this worker must complete *)
  w_rate : float;  (** target ops/sec for this worker; 0 = closed-loop *)
  w_window : int;  (** pipeline depth *)
  w_login_window : int;  (** logical time a Login scans back *)
  w_active : float;
  w_sessions : bool;
      (** thread a {!Session} stamp vector through every worker
          connection: write acks accumulate, reads go out as [Scan_at]
          demanding the vector (read-your-writes) *)
}

let base_time = 1_000_000

let classes = [| "load.login.us"; "load.check.us"; "load.subscribe.us"; "load.post.us" |]

let class_of = function
  | Workload.Login _ -> 0
  | Workload.Check _ -> 1
  | Workload.Subscribe _ -> 2
  | Workload.Post _ -> 3

(* What one answered op means for session bookkeeping: a post remembers
   its (poster, time) so later checks expect it on follower timelines; a
   check carries the timeline keys this worker's own acked posts must
   have produced. Freshness validation is identical in both modes — the
   [--sessions] flag changes only whether reads demand the stamp vector,
   so the measured stale-read rate isolates what sessions buy. *)
type op_info =
  | I_post of int * int  (* poster, time: ack promotes to "must be visible" *)
  | I_check of string list  (* timeline keys an acked own-post implies *)
  | I_other

let run cfg ~(topo : Spawn.topology) ~graph obs =
  let nusers = Social_graph.nusers graph in
  let rng = Rng.stream ~seed:cfg.w_seed ~index:cfg.w_index in
  let st =
    Workload.stream ~rng ~graph ~active_fraction:cfg.w_active
      ~first_time:(base_time + cfg.w_index) ~time_stride:cfg.w_nworkers ()
  in
  let client_of addr =
    match String.rindex_opt addr ':' with
    | Some i ->
      Net_client.create ~obs ~host:(String.sub addr 0 i)
        ~port:(int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)))
        ()
    | None -> invalid_arg ("bad server address " ^ addr)
  in
  (* destination table: homes first, computes after *)
  let clients = Array.map client_of (Array.append topo.home_addrs topo.compute_addrs) in
  let ndests = Array.length clients in
  let hists = Array.map (Obs.histogram obs) classes in
  let ops_done = Obs.counter obs "load.ops" in
  let errors = Obs.counter obs "load.errors" in
  let failed = Obs.counter obs "load.failed" in
  let entries = Obs.counter obs "load.entries" in
  let stale_reads = Obs.counter obs "load.stale_reads" in
  let fresh_reads = Obs.counter obs "load.fresh_reads" in
  let last_seen = Array.make nusers 0 in
  (* read-your-writes bookkeeping: the newest own post per poster whose
     ack arrived (0 = none); a later check of a follower must see it *)
  let own_post = Array.make nusers 0 in
  (* one session per worker: the vector accumulates across every
     destination, because the anomaly under test is exactly a write
     through one server read back through another. The pipelined
     requests are built/folded by hand around the session's vector
     (Session.stamp / with_at_least) to keep the batching. *)
  let session = Session.create ~max_entries:512 clients.(0) in
  let clock = ref base_time in
  (* Demand narrowing: a scan of [u]'s timeline is affected only by
     writes to its join sources — u's own subscription slice and the
     post slices of users u follows. Demanding the session's full
     vector is equally sound but pays wire and stamp-check cost
     proportional to every write this worker ever made; the narrowed
     demand is equivalent for this read, because entries outside the
     sources cannot change the scanned pairs. *)
  let relevant_stamp u =
    match Session.stamp session with
    | [] -> []
    | stamp ->
      let user = Social_graph.user_name u in
      let s_lo = "s|" ^ user ^ "|" and s_hi = "s|" ^ user ^ "}" in
      let post_slices = ref [] in
      Social_graph.iter_following graph u (fun p ->
          if own_post.(p) > 0 then begin
            let name = Social_graph.user_name p in
            post_slices := ("p|" ^ name ^ "|", "p|" ^ name ^ "}") :: !post_slices
          end);
      let inter lo hi lo' hi' =
        String.compare lo hi' < 0 && String.compare lo' hi < 0
      in
      List.filter
        (fun (table, lo, hi, _) ->
          match table with
          | "s" -> inter lo hi s_lo s_hi
          | "p" -> List.exists (fun (lo', hi') -> inter lo hi lo' hi') !post_slices
          | _ -> true)
        stamp
  in
  let stamped_scan u lo hi =
    if not cfg.w_sessions then Message.Scan { lo; hi }
    else
      match relevant_stamp u with
      | [] -> Message.Scan { lo; hi }
      | min -> Message.Scan_at { lo; hi; min }
  in
  let scan_user u ~since =
    let user = Social_graph.user_name u in
    let lo = Printf.sprintf "t|%s|%s" user (Strkey.encode_time since) in
    (topo.nhomes + Spawn.compute_of topo u, stamped_scan u lo (Printf.sprintf "t|%s}" user))
  in
  (* timeline keys of this worker's acked posts that a scan of [u]'s
     timeline from [since] must include: u's preloaded follows only *)
  let expected_keys u ~since =
    let user = Social_graph.user_name u in
    let acc = ref [] in
    Social_graph.iter_following graph u (fun p ->
        let t = own_post.(p) in
        if t >= since then
          acc :=
            Printf.sprintf "t|%s|%s|%s" user (Strkey.encode_time t)
              (Social_graph.user_name p)
            :: !acc);
    !acc
  in
  let request_of op =
    match op with
    | Workload.Login u ->
      let since = max 0 (!clock - cfg.w_login_window) in
      let dest, req = scan_user u ~since in
      (dest, req, I_check (expected_keys u ~since))
    | Workload.Check u ->
      let since = last_seen.(u) + 1 in
      let dest, req = scan_user u ~since in
      last_seen.(u) <- !clock;
      (dest, req, I_check (expected_keys u ~since))
    | Workload.Subscribe (u, p) ->
      ( Spawn.home_of topo u,
        Message.Put
          (Printf.sprintf "s|%s|%s" (Social_graph.user_name u) (Social_graph.user_name p), "1"),
        I_other )
    | Workload.Post (p, time) ->
      clock := max !clock time;
      let poster = Social_graph.user_name p in
      ( Spawn.home_of topo p,
        Message.Put
          ( Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time),
            Twip.tweet_text poster time ),
        I_post (p, time) )
  in
  (* per-destination batch buffers, reused across rounds *)
  let dest_reqs = Array.make ndests [] in
  let dest_meta = Array.make ndests [] in
  let t0 = Unix.gettimeofday () in
  let issued = ref 0 in
  while !issued < cfg.w_quota do
    (* sleep to the next deadline, then gather everything already due *)
    let due i = t0 +. (float_of_int i /. cfg.w_rate) in
    if cfg.w_rate > 0.0 then begin
      let wait = due !issued -. Unix.gettimeofday () in
      if wait > 0.0 then Unix.sleepf wait
    end;
    let now = Unix.gettimeofday () in
    Array.fill dest_reqs 0 ndests [];
    Array.fill dest_meta 0 ndests [];
    let n = ref 0 in
    while
      !issued < cfg.w_quota && !n < cfg.w_window
      && (!n = 0 || cfg.w_rate <= 0.0 || due !issued <= now)
    do
      let op = Workload.next st in
      let dest, req, info = request_of op in
      let deadline = if cfg.w_rate > 0.0 then due !issued else now in
      dest_reqs.(dest) <- req :: dest_reqs.(dest);
      dest_meta.(dest) <- (class_of op, deadline, info) :: dest_meta.(dest);
      incr issued;
      incr n
    done;
    for dest = 0 to ndests - 1 do
      match List.rev dest_reqs.(dest) with
      | [] -> ()
      | reqs -> (
        let meta = List.rev dest_meta.(dest) in
        let t_send = Unix.gettimeofday () in
        match Net_client.pipeline clients.(dest) reqs with
        | responses ->
          let t_resp = Unix.gettimeofday () in
          List.iter2
            (fun (cls, deadline, info) resp ->
              let start = if cfg.w_rate > 0.0 then deadline else t_send in
              Obs.Histogram.observe hists.(cls)
                (int_of_float ((t_resp -. start) *. 1e6));
              Obs.Counter.incr ops_done;
              match resp with
              | Message.Error _ -> Obs.Counter.incr errors
              | Message.Stale _ ->
                (* the server's bounded wait expired: an honest typed
                   failure where baseline mode would have served stale *)
                Obs.Counter.incr stale_reads
              | Message.Stamps acked ->
                (match info with
                | I_post (p, time) -> own_post.(p) <- max own_post.(p) time
                | I_check _ | I_other -> ());
                if cfg.w_sessions then Session.with_at_least session acked
              | Message.Done ->
                (match info with
                | I_post (p, time) -> own_post.(p) <- max own_post.(p) time
                | I_check _ | I_other -> ())
              | Message.Pairs pairs ->
                Obs.Counter.add entries (List.length pairs);
                (match info with
                | I_check expected ->
                  List.iter
                    (fun key ->
                      if List.mem_assoc key pairs then Obs.Counter.incr fresh_reads
                      else Obs.Counter.incr stale_reads)
                    expected
                | I_post _ | I_other -> ())
              | _ -> ())
            meta responses
        | exception Net_client.Net_error _ ->
          (* connection-level loss: the ops got no answer; the client
             reconnects with backoff on the next round *)
          Obs.Counter.add failed (List.length reqs))
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iter Net_client.close clients;
  elapsed
