(** One load worker: an open-loop, deadline-paced client of the live
    cluster.

    The worker draws ops on demand from a seeded {!Workload.stream}
    (worker [i] of [n] uses [Rng.stream ~seed ~index:i], so the fleet's
    op sequence is a pure function of [seed] and [n]) and maps each op
    onto the wire:

    - [Login]/[Check] → [Scan] of the user's timeline on the compute
      server owning that user ([u mod computes]);
    - [Subscribe]/[Post] → [Put] on the home server owning the written
      key's user slice.

    Pacing is open-loop: op [i]'s send deadline is [t0 + i/rate], fixed
    in advance; when the cluster falls behind, the backlog shows up as
    latency instead of silently slowing the arrival process (no
    coordinated omission). Consecutive due ops are pipelined per
    destination, bounded by [w_window]. With [w_rate = 0] the worker is
    closed-loop at pipeline depth [w_window] — as fast as the cluster
    will answer.

    Latency per op is measured from its deadline (or from the pipeline
    write, when unpaced) to the arrival of its response batch, into the
    per-class log histograms [load.login.us], [load.check.us],
    [load.subscribe.us] and [load.post.us] of the worker's registry.
    [load.ops] counts answered ops, [load.errors] [Error] responses
    (e.g. a scan across a dead home's range), [load.failed] ops lost to
    connection failures. *)

module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload
module Twip = Pequod_apps.Twip
module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

type config = {
  w_index : int;  (** this worker's rank *)
  w_nworkers : int;
  w_seed : int;
  w_quota : int;  (** ops this worker must complete *)
  w_rate : float;  (** target ops/sec for this worker; 0 = closed-loop *)
  w_window : int;  (** pipeline depth *)
  w_login_window : int;  (** logical time a Login scans back *)
  w_active : float;
}

let base_time = 1_000_000

let classes = [| "load.login.us"; "load.check.us"; "load.subscribe.us"; "load.post.us" |]

let class_of = function
  | Workload.Login _ -> 0
  | Workload.Check _ -> 1
  | Workload.Subscribe _ -> 2
  | Workload.Post _ -> 3

let run cfg ~(topo : Spawn.topology) ~graph obs =
  let nusers = Social_graph.nusers graph in
  let rng = Rng.stream ~seed:cfg.w_seed ~index:cfg.w_index in
  let st =
    Workload.stream ~rng ~graph ~active_fraction:cfg.w_active
      ~first_time:(base_time + cfg.w_index) ~time_stride:cfg.w_nworkers ()
  in
  let client_of addr =
    match String.rindex_opt addr ':' with
    | Some i ->
      Net_client.create ~obs ~host:(String.sub addr 0 i)
        ~port:(int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)))
        ()
    | None -> invalid_arg ("bad server address " ^ addr)
  in
  (* destination table: homes first, computes after *)
  let clients = Array.map client_of (Array.append topo.home_addrs topo.compute_addrs) in
  let ndests = Array.length clients in
  let hists = Array.map (Obs.histogram obs) classes in
  let ops_done = Obs.counter obs "load.ops" in
  let errors = Obs.counter obs "load.errors" in
  let failed = Obs.counter obs "load.failed" in
  let entries = Obs.counter obs "load.entries" in
  let last_seen = Array.make nusers 0 in
  let clock = ref base_time in
  let scan_user u ~since =
    let user = Social_graph.user_name u in
    let lo = Printf.sprintf "t|%s|%s" user (Strkey.encode_time since) in
    (topo.nhomes + Spawn.compute_of topo u, Message.Scan { lo; hi = Printf.sprintf "t|%s}" user })
  in
  let request_of op =
    match op with
    | Workload.Login u -> scan_user u ~since:(max 0 (!clock - cfg.w_login_window))
    | Workload.Check u ->
      let r = scan_user u ~since:(last_seen.(u) + 1) in
      last_seen.(u) <- !clock;
      r
    | Workload.Subscribe (u, p) ->
      ( Spawn.home_of topo u,
        Message.Put
          (Printf.sprintf "s|%s|%s" (Social_graph.user_name u) (Social_graph.user_name p), "1")
      )
    | Workload.Post (p, time) ->
      clock := max !clock time;
      let poster = Social_graph.user_name p in
      ( Spawn.home_of topo p,
        Message.Put
          ( Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time),
            Twip.tweet_text poster time ) )
  in
  (* per-destination batch buffers, reused across rounds *)
  let dest_reqs = Array.make ndests [] in
  let dest_meta = Array.make ndests [] in
  let t0 = Unix.gettimeofday () in
  let issued = ref 0 in
  while !issued < cfg.w_quota do
    (* sleep to the next deadline, then gather everything already due *)
    let due i = t0 +. (float_of_int i /. cfg.w_rate) in
    if cfg.w_rate > 0.0 then begin
      let wait = due !issued -. Unix.gettimeofday () in
      if wait > 0.0 then Unix.sleepf wait
    end;
    let now = Unix.gettimeofday () in
    Array.fill dest_reqs 0 ndests [];
    Array.fill dest_meta 0 ndests [];
    let n = ref 0 in
    while
      !issued < cfg.w_quota && !n < cfg.w_window
      && (!n = 0 || cfg.w_rate <= 0.0 || due !issued <= now)
    do
      let op = Workload.next st in
      let dest, req = request_of op in
      let deadline = if cfg.w_rate > 0.0 then due !issued else now in
      dest_reqs.(dest) <- req :: dest_reqs.(dest);
      dest_meta.(dest) <- (class_of op, deadline) :: dest_meta.(dest);
      incr issued;
      incr n
    done;
    for dest = 0 to ndests - 1 do
      match List.rev dest_reqs.(dest) with
      | [] -> ()
      | reqs -> (
        let meta = List.rev dest_meta.(dest) in
        let t_send = Unix.gettimeofday () in
        match Net_client.pipeline clients.(dest) reqs with
        | responses ->
          let t_resp = Unix.gettimeofday () in
          List.iter2
            (fun (cls, deadline) resp ->
              let start = if cfg.w_rate > 0.0 then deadline else t_send in
              Obs.Histogram.observe hists.(cls)
                (int_of_float ((t_resp -. start) *. 1e6));
              Obs.Counter.incr ops_done;
              match resp with
              | Message.Error _ -> Obs.Counter.incr errors
              | Message.Pairs pairs -> Obs.Counter.add entries (List.length pairs)
              | _ -> ())
            meta responses
        | exception Net_client.Net_error _ ->
          (* connection-level loss: the ops got no answer; the client
             reconnects with backoff on the next round *)
          Obs.Counter.add failed (List.length reqs))
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iter Net_client.close clients;
  elapsed
