(** The load-harness coordinator: owns the cluster, the graph, the
    worker fleet and the aggregation, and emits [BENCH_cluster.json].

    Phases:

    + generate the CSR social graph (1M+ users fit: flat int arrays);
    + spawn the [homes + computes] server cluster ({!Spawn});
    + preload the subscription table (and optionally a post corpus)
      into the homes with pipelined [Put_batch] frames;
    + fork [workers] driver processes ({!Driver}), each with an
      independent [Rng.stream] substream and a report pipe;
    + reap the workers, merge their counter totals and full-resolution
      latency histograms ({!Obs.Histogram.merge}) into one registry;
    + read the servers' [peer.*] counters over [Stats_full] to compute
      the subscription-traffic share;
    + stamp and write [BENCH_cluster.json] ({!Benchstamp}) and print a
      summary table.

    The op quota can be clamped by the [PEQUOD_LOAD_QUOTA] environment
    variable, which is how CI runs the whole path in seconds
    ([make cluster-smoke]) while [make cluster-bench] runs the full
    configured scale. *)

module Social_graph = Pequod_apps.Social_graph
module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

type config = {
  users : int;
  ops : int;  (** total, split across workers; PEQUOD_LOAD_QUOTA overrides *)
  workers : int;
  homes : int;
  computes : int;
  shards : int;
      (** > 0 replaces the homes+computes topology with one
          shard-per-core server ([pequod_server --shards N]); >= 2 also
          runs a [--shards 1] pass first for the speedup baseline *)
  avg_follows : int;
  active : float;
  rate : float;  (** total target ops/sec; 0 = closed loop *)
  window : int;  (** per-worker pipeline depth *)
  login_window : int;
  seed : int;
  preload_posts : int;
  memory_limit : int option;  (** compute-server eviction cap *)
  migrate_mid_run : bool;
      (** spawn the cluster directory-routed and live-migrate home 0's
          [p] slice to home 1 mid-run, probing read latency through the
          handoff (needs [homes >= 2], incompatible with [shards]) *)
  sessions : bool;
      (** workers thread a {!Session} stamp vector: reads demand the
          worker's accumulated write stamps ([derived.stale_read_rate]
          must come out 0; the unstamped baseline measures whatever
          push lag produces) *)
  out : string;
  server_exe : string option;
}

let default =
  { users = 1_000_000; ops = 1_000_000; workers = 4; homes = 2; computes = 2; shards = 0;
    avg_follows = 8; active = 0.7; rate = 0.0; window = 16; login_window = 1_000;
    seed = 42; preload_posts = 0; memory_limit = None; migrate_mid_run = false;
    sessions = false; out = "BENCH_cluster.json"; server_exe = None }

let quota_env = "PEQUOD_LOAD_QUOTA"

let effective_ops cfg =
  match Sys.getenv_opt quota_env with
  | Some s -> (
    match int_of_string_opt s with
    | Some q when q > 0 -> min q cfg.ops
    | _ -> cfg.ops)
  | None -> cfg.ops

let client_of ?obs ?config addr =
  match String.rindex_opt addr ':' with
  | Some i ->
    Net_client.create ?obs ?config ~host:(String.sub addr 0 i)
      ~port:(int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)))
      ()
  | None -> invalid_arg ("bad server address " ^ addr)

(* ------------------------------------------------------------------ *)
(* Preload                                                             *)

let batch_size = 1_000

(** Bulk-load the social graph's subscription rows (and an optional
    pre-experiment post corpus with times [0..preload_posts)) into the
    owning homes, one pipelined [Put_batch] per [batch_size] rows.
    Returns total rows loaded. *)
let preload cfg ~(topo : Spawn.topology) ~graph =
  let clients = Array.map (fun a -> client_of a) topo.home_addrs in
  let pending = Array.make topo.nhomes [] in
  let counts = Array.make topo.nhomes 0 in
  let total = ref 0 in
  let flush h =
    if counts.(h) > 0 then begin
      (match Net_client.call clients.(h) (Message.Put_batch (List.rev pending.(h))) with
      | Message.Done | Message.Stamps _ -> ()
      | Message.Error msg -> failwith ("preload put_batch failed: " ^ msg)
      | _ -> failwith "preload: unexpected put_batch response");
      total := !total + counts.(h);
      pending.(h) <- [];
      counts.(h) <- 0
    end
  in
  let put h k v =
    pending.(h) <- (k, v) :: pending.(h);
    counts.(h) <- counts.(h) + 1;
    if counts.(h) >= batch_size then flush h
  in
  for u = 0 to Social_graph.nusers graph - 1 do
    let user = Social_graph.user_name u in
    let h = Spawn.home_of topo u in
    Social_graph.iter_following graph u (fun p ->
        put h (Printf.sprintf "s|%s|%s" user (Social_graph.user_name p)) "1")
  done;
  if cfg.preload_posts > 0 then begin
    let rng = Rng.stream ~seed:cfg.seed ~index:(max_int asr 1) in
    let posting = Rng.Alias.create (Social_graph.posting_weights graph) in
    for time = 0 to cfg.preload_posts - 1 do
      let p = Rng.Alias.sample posting rng in
      let poster = Social_graph.user_name p in
      put (Spawn.home_of topo p)
        (Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time))
        (Pequod_apps.Twip.tweet_text poster time)
    done
  end;
  Array.iteri (fun h _ -> flush h) clients;
  Array.iter Net_client.close clients;
  !total

(* ------------------------------------------------------------------ *)
(* Worker fleet                                                        *)

let fork_workers cfg ~ops ~topo ~graph =
  let per = ops / cfg.workers in
  List.init cfg.workers (fun i ->
      let quota = if i = 0 then per + (ops mod cfg.workers) else per in
      let wcfg =
        { Driver.w_index = i; w_nworkers = cfg.workers; w_seed = cfg.seed; w_quota = quota;
          w_rate = cfg.rate /. float_of_int cfg.workers; w_window = cfg.window;
          w_login_window = cfg.login_window; w_active = cfg.active;
          w_sessions = cfg.sessions }
      in
      let r, w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        Unix.close r;
        let obs = Obs.create () in
        (try
           let elapsed = Driver.run wcfg ~topo ~graph obs in
           Report.write w ~elapsed obs
         with e -> Report.write_error w (Printexc.to_string e));
        (try Unix.close w with Unix.Unix_error _ -> ());
        Unix._exit 0
      | pid ->
        Unix.close w;
        (pid, r))

(* ------------------------------------------------------------------ *)
(* Mid-run migration                                                   *)

type migrate_stats = {
  mg_keys_moved : int;
  mg_delta_replayed : int;
  mg_probe_errors : int;
  mg_phases : (string * Obs.Histogram.snapshot) list;
      (** probe-latency snapshots keyed ["before"], ["during"], ["after"] *)
}

(* probes bracketing the handoff on each side, and their spacing *)
let probes_per_phase = 50
let probe_gap = 0.01
let migrate_deadline = 600.0

let mlog fmt = Printf.eprintf ("pequod-load: " ^^ fmt ^^ "\n%!")

(** Live-migrate home 0's [p] slice to home 1 while the workers drive
    load, measuring what a reader of the moving range sees. Probes are
    short-timeout [Scan]s of user 0's posts sent to the {e source} home
    — the worst-cased reader: during the copy it talks to the blocked
    owner, and after the epoch flip it pays the forward to the
    destination. The migration itself is a blocking [Migrate] call (it
    returns only once the handoff completes) run in a forked child so
    probing continues; the child ships [keys_moved]/[delta_replayed]
    back over a pipe. *)
let run_migration ~(topo : Spawn.topology) =
  let cut = Social_graph.user_name topo.chunk.(1) in
  let probe_lo = "p|" ^ Social_graph.user_name 0 ^ "|" in
  let probe_hi = "p|" ^ Social_graph.user_name 0 ^ "}" in
  let source = topo.home_addrs.(0) and dest = topo.home_addrs.(1) in
  let obs = Obs.create () in
  let errors = ref 0 in
  let probec = client_of source in
  let probe hist =
    let t0 = Unix.gettimeofday () in
    (match
       Net_client.call ~timeout:5.0 probec (Message.Scan { lo = probe_lo; hi = probe_hi })
     with
    | Message.Pairs _ ->
      Obs.Histogram.observe hist (int_of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.))
    | _ -> incr errors
    | exception Net_client.Net_error _ -> incr errors);
    Unix.sleepf probe_gap
  in
  let phase name n =
    let hist = Obs.histogram obs (Printf.sprintf "probe.%s.us" name) in
    for _ = 1 to n do
      probe hist
    done
  in
  phase "before" probes_per_phase;
  mlog "migrating p slice [p| .. p|%s) from %s to %s mid-run..." cut source dest;
  let r, w = Unix.pipe () in
  let mig_pid = Unix.fork () in
  if mig_pid = 0 then begin
    Unix.close r;
    let reply =
      try
        let c =
          client_of
            ~config:{ Net_client.default_config with call_timeout = migrate_deadline }
            source
        in
        match
          Net_client.call c (Message.Migrate { table = "p"; lo = "p|"; hi = "p|" ^ cut; dest })
        with
        | Message.Pairs stats ->
          Printf.sprintf "ok %s %s"
            (Option.value (List.assoc_opt "keys_moved" stats) ~default:"0")
            (Option.value (List.assoc_opt "delta_replayed" stats) ~default:"0")
        | Message.Error msg -> "err " ^ msg
        | _ -> "err unexpected migrate response"
      with e -> "err " ^ Printexc.to_string e
    in
    (try ignore (Unix.write_substring w reply 0 (String.length reply))
     with Unix.Unix_error _ -> ());
    Unix._exit 0
  end;
  Unix.close w;
  let during = Obs.histogram obs "probe.during.us" in
  let deadline = Unix.gettimeofday () +. migrate_deadline in
  let rec pump () =
    match Unix.waitpid [ Unix.WNOHANG ] mig_pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill mig_pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] mig_pid);
        failwith "mid-run migration did not complete in time"
      end;
      probe during;
      pump ()
    | _ -> ()
  in
  pump ();
  let buf = Bytes.create 4096 in
  let n = try Unix.read r buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0 in
  Unix.close r;
  let reply = Bytes.sub_string buf 0 n in
  let keys_moved, delta_replayed =
    match String.split_on_char ' ' reply with
    | [ "ok"; km; dr ] ->
      ( Option.value (int_of_string_opt km) ~default:0,
        Option.value (int_of_string_opt dr) ~default:0 )
    | _ -> failwith ("mid-run migration failed: " ^ reply)
  in
  mlog "migration done: %d keys moved, %d delta notifications replayed" keys_moved
    delta_replayed;
  phase "after" probes_per_phase;
  Net_client.close probec;
  { mg_keys_moved = keys_moved; mg_delta_replayed = delta_replayed;
    mg_probe_errors = !errors;
    mg_phases =
      List.map
        (fun ph -> (ph, Obs.Histogram.snapshot (Obs.histogram obs ("probe." ^ ph ^ ".us"))))
        [ "before"; "during"; "after" ] }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

let full_metrics addr =
  let c = client_of addr in
  Fun.protect
    ~finally:(fun () -> try Net_client.close c with _ -> ())
    (fun () ->
      match Net_client.call c Message.Stats_full with
      | Message.Metrics metrics -> metrics
      | _ -> [])

let counter_value metrics name =
  List.fold_left
    (fun acc (n, v) -> match v with Obs.Counter c when n = name -> acc + c | _ -> acc)
    0 metrics

(* One histogram pooled across the servers' Stats_full replies. The
   wire carries only percentile snapshots, not buckets, so cross-server
   percentiles are approximated by count-weighting each server's own
   percentile — exact with one reporting server, and a documented
   approximation (not a true pooled quantile) with several. *)
let hist_pooled metrics name =
  (* the sharded server exposes per-shard histograms as
     shard.<i>.<name>; pool those too *)
  let suffix = "." ^ name in
  let matches n =
    n = name
    || (String.length n > String.length suffix
       && String.equal suffix
            (String.sub n (String.length n - String.length suffix) (String.length suffix)))
  in
  let snaps =
    List.filter_map
      (fun (n, v) ->
        match v with
        | Obs.Histogram s when matches n && s.Obs.Histogram.count > 0 -> Some s
        | _ -> None)
      metrics
  in
  let total = List.fold_left (fun a s -> a + s.Obs.Histogram.count) 0 snaps in
  if total = 0 then None
  else
    let wavg f =
      List.fold_left
        (fun a s -> a +. (float_of_int (f s) *. float_of_int s.Obs.Histogram.count))
        0.0 snaps
      /. float_of_int total
    in
    Some
      ( total,
        wavg (fun s -> s.Obs.Histogram.p50),
        wavg (fun s -> s.Obs.Histogram.p95),
        wavg (fun s -> s.Obs.Histogram.p99) )

(* requests each shard's loop dispatched, off the sharded server's
   merged Stats_full (shard.<i>.ops). A single shard runs no router and
   publishes no shard.* split, so its whole net.rpcs is the one entry. *)
let per_shard_ops metrics ~shards =
  if shards <= 0 then [||]
  else if shards = 1 then [| counter_value metrics "net.rpcs" |]
  else Array.init shards (fun i -> counter_value metrics (Printf.sprintf "shard.%d.ops" i))

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)

let hist_json snap =
  let open Obs.Histogram in
  Benchstamp.Obj
    [ ("count", Benchstamp.Int snap.count); ("min", Benchstamp.Int snap.min);
      ("max", Benchstamp.Int snap.max); ("p50", Benchstamp.Int snap.p50);
      ("p95", Benchstamp.Int snap.p95); ("p99", Benchstamp.Int snap.p99) ]

let log fmt = Printf.eprintf (fmt ^^ "\n%!")

(* everything one measured pass produces; [run] compares passes *)
type pass = {
  ps_preload_rows : int;
  ps_wall : float;
  ps_worker_max : float;
  ps_qps : float;
  ps_agg : Obs.t;  (* merged worker registries *)
  ps_fetch_in : int;
  ps_notify_out : int;
  ps_notify_in : int;
  ps_sub_lost : int;
  ps_scan_parked : int;  (* scans parked on missing ranges (async read path) *)
  ps_fetch_coalesced : int;  (* fetches shared by single-flight coalescing *)
  ps_session_reads : int;  (* server-side stamped reads served *)
  ps_stale_waits : int;  (* reads that had to wait/heal for a demanded stamp *)
  ps_stale_errors : int;  (* reads that hit the Stale deadline *)
  (* pooled resolver.fetch.wait_ns: count, ~p50, ~p95, ~p99 (ns) *)
  ps_fetch_wait : (int * float * float * float) option;
  ps_share : float;
  ps_per_shard_ops : int array;  (* empty outside shard-per-core mode *)
  ps_migrate : migrate_stats option;  (* set by [migrate_mid_run] passes *)
}

(** One measured pass: spawn the topology ([shards = 0] is the classic
    homes+computes cluster, [> 0] one shard-per-core server), preload,
    drive the op quota, merge the worker reports and read the servers'
    counters back. The cluster is torn down before returning, so passes
    never share cache state. *)
let run_pass cfg ~graph ~ops ~shards =
  let directory = cfg.migrate_mid_run && shards = 0 in
  let cluster =
    Spawn.start ?server_exe:cfg.server_exe ?memory_limit:cfg.memory_limit ~shards ~directory
      ~nusers:cfg.users ~nhomes:cfg.homes ~ncomputes:cfg.computes ()
  in
  Fun.protect
    ~finally:(fun () -> Spawn.shutdown cluster)
    (fun () ->
      let topo = cluster.Spawn.topology in
      if shards > 0 then
        log "pequod-load: shard-per-core server up (%d shards); preloading graph..." shards
      else
        log "pequod-load: cluster up (%d homes, %d computes%s); preloading graph..." cfg.homes
          cfg.computes
          (if directory then ", directory-routed" else "");
      let t_pre = Unix.gettimeofday () in
      let preload_rows = preload cfg ~topo ~graph in
      log "pequod-load: preloaded %d rows in %.1fs; driving %d ops over %d workers%s..."
        preload_rows
        (Unix.gettimeofday () -. t_pre)
        ops cfg.workers
        (if cfg.rate > 0.0 then Printf.sprintf " at %.0f ops/s" cfg.rate else " (closed loop)");
      let t0 = Unix.gettimeofday () in
      let workers = fork_workers cfg ~ops ~topo ~graph in
      let migrate = if directory then Some (run_migration ~topo) else None in
      let reports =
        List.map
          (fun (pid, r) ->
            let report = Report.read r in
            Unix.close r;
            ignore (Unix.waitpid [] pid);
            report)
          workers
      in
      let wall = Unix.gettimeofday () -. t0 in
      List.iter
        (fun rp ->
          match rp.Report.rp_error with
          | Some msg -> failwith ("load worker failed: " ^ msg)
          | None -> ())
        reports;
      (* merge: counters sum; histograms pool at bucket resolution *)
      let agg = Obs.create () in
      List.iter
        (fun rp ->
          List.iter
            (fun (name, v) -> Obs.Counter.force_add (Obs.counter agg name) v)
            rp.Report.rp_counters;
          List.iter
            (fun (name, d) -> Obs.Histogram.absorb (Obs.histogram agg name) d)
            rp.Report.rp_hists)
        reports;
      let total_ops = Obs.counter_value agg "load.ops" in
      let qps = if wall > 0.0 then float_of_int total_ops /. wall else 0.0 in
      (* server-side counters: one Stats_full per distinct server (the
         sharded server's reply is already merged across its shards).
         peer.* is the §2.4 protocol work — fetches served +
         notifications pushed — between homes and computes, or between
         sibling shards *)
      let stats_addrs =
        if shards > 0 then Array.to_list topo.compute_addrs
        else Array.to_list (Array.append topo.home_addrs topo.compute_addrs)
      in
      let metrics = List.concat_map full_metrics stats_addrs in
      let fetch_in = counter_value metrics "peer.fetch.in" in
      let notify_out = counter_value metrics "peer.notify.out" in
      let peer_msgs = fetch_in + notify_out in
      let share =
        if peer_msgs + total_ops = 0 then 0.0
        else float_of_int peer_msgs /. float_of_int (peer_msgs + total_ops)
      in
      let max_elapsed =
        List.fold_left (fun acc rp -> Float.max acc rp.Report.rp_elapsed) 0.0 reports
      in
      { ps_preload_rows = preload_rows; ps_wall = wall; ps_worker_max = max_elapsed;
        ps_qps = qps; ps_agg = agg; ps_fetch_in = fetch_in; ps_notify_out = notify_out;
        ps_notify_in = counter_value metrics "peer.notify.in";
        ps_sub_lost = counter_value metrics "peer.sub.lost";
        ps_scan_parked = counter_value metrics "scan.parked";
        ps_fetch_coalesced = counter_value metrics "fetch.coalesced";
        ps_session_reads = counter_value metrics "session.reads";
        ps_stale_waits = counter_value metrics "session.stale_waits";
        ps_stale_errors = counter_value metrics "session.stale_errors";
        ps_fetch_wait = hist_pooled metrics "resolver.fetch.wait_ns"; ps_share = share;
        ps_per_shard_ops = per_shard_ops metrics ~shards; ps_migrate = migrate })

let run cfg =
  let ops = effective_ops cfg in
  log "pequod-load: generating %d-user graph (seed %d)..." cfg.users cfg.seed;
  let graph =
    Social_graph.generate ~rng:(Rng.create cfg.seed) ~nusers:cfg.users
      ~avg_follows:cfg.avg_follows ()
  in
  log "pequod-load: %d users, %d edges (%d KiB CSR)" cfg.users (Social_graph.edge_count graph)
    (Social_graph.memory_words graph * Sys.word_size / 8 / 1024);
  (* a multi-shard run earns its headline as a speedup over the same
     binary at --shards 1, measured back to back on the same box *)
  let baseline =
    if cfg.shards >= 2 then begin
      log "pequod-load: measuring the --shards 1 baseline first...";
      Some (run_pass cfg ~graph ~ops ~shards:1)
    end
    else None
  in
  let p = run_pass cfg ~graph ~ops ~shards:cfg.shards in
  let total_ops = Obs.counter_value p.ps_agg "load.ops" in
  let peer_msgs = p.ps_fetch_in + p.ps_notify_out in
  let class_snaps =
    List.map
      (fun name ->
        let short =
          (* "load.login.us" -> "login" *)
          match String.split_on_char '.' name with
          | [ _; cls; _ ] -> cls
          | _ -> name
        in
        (short, Obs.Histogram.snapshot (Obs.histogram p.ps_agg name)))
      (Array.to_list Driver.classes)
  in
  let migrate_p99 m ph =
    match List.assoc_opt ph m.mg_phases with
    | Some s -> s.Obs.Histogram.p99
    | None -> 0
  in
  (* remote fetches per timeline read: how much §2.4 traffic one check
     costs after batching and coalescing (the seed run paid ~0.7) *)
  let checks =
    match List.assoc_opt "check" class_snaps with
    | Some s -> s.Obs.Histogram.count
    | None -> 0
  in
  let fetch_per_read =
    if checks = 0 then 0.0 else float_of_int p.ps_fetch_in /. float_of_int checks
  in
  let fw_p50, fw_p95, fw_p99 =
    match p.ps_fetch_wait with
    | Some (_, p50, p95, p99) -> (p50 /. 1e3, p95 /. 1e3, p99 /. 1e3)
    | None -> (0.0, 0.0, 0.0)
  in
  (* read-your-writes anomaly rate over the timeline reads that had an
     acked own-post to validate against (0 when none did); a session
     run must record exactly 0 *)
  let stale = Obs.counter_value p.ps_agg "load.stale_reads" in
  let fresh = Obs.counter_value p.ps_agg "load.fresh_reads" in
  let stale_read_rate =
    if stale + fresh = 0 then 0.0 else float_of_int stale /. float_of_int (stale + fresh)
  in
  let derived =
    [ ("qps", p.ps_qps); ("subscription_share", p.ps_share);
      ("fetch_per_read", fetch_per_read); ("stale_read_rate", stale_read_rate);
      (* parked-scan fetch wait, microseconds (approximate pooling across
         servers; see [hist_pooled]) *)
      ("fetch_wait_p50_us", fw_p50); ("fetch_wait_p95_us", fw_p95);
      ("fetch_wait_p99_us", fw_p99) ]
    @ (match baseline with
      | Some b when b.ps_qps > 0.0 -> [ ("shard_speedup", p.ps_qps /. b.ps_qps) ]
      | _ -> [])
    @
    match p.ps_migrate with
    | Some m ->
      [ ("migrate_keys_moved", float_of_int m.mg_keys_moved);
        ("migrate_delta_replayed", float_of_int m.mg_delta_replayed);
        ("migrate_probe_p99_before_us", float_of_int (migrate_p99 m "before"));
        ("migrate_probe_p99_during_us", float_of_int (migrate_p99 m "during"));
        ("migrate_probe_p99_after_us", float_of_int (migrate_p99 m "after")) ]
    | None -> []
  in
  Benchstamp.write_file ~path:cfg.out ~benchmark:"cluster" ~derived
    ([ ( "config",
         Benchstamp.Obj
           [ ("users", Benchstamp.Int cfg.users); ("ops", Benchstamp.Int ops);
             ("workers", Benchstamp.Int cfg.workers); ("homes", Benchstamp.Int cfg.homes);
             ("computes", Benchstamp.Int cfg.computes);
             ("shards", Benchstamp.Int cfg.shards);
             ("nproc", Benchstamp.Int (Domain.recommended_domain_count ()));
             ("avg_follows", Benchstamp.Int cfg.avg_follows);
             ("active_fraction", Benchstamp.Float cfg.active);
             ("rate", Benchstamp.Float cfg.rate); ("pipeline", Benchstamp.Int cfg.window);
             ("seed", Benchstamp.Int cfg.seed);
             ("edges", Benchstamp.Int (Social_graph.edge_count graph));
             ("preload_rows", Benchstamp.Int p.ps_preload_rows) ] );
       ( "results",
         Benchstamp.Obj
           ([ ("qps", Benchstamp.Float p.ps_qps); ("wall_s", Benchstamp.Float p.ps_wall);
              ("worker_max_s", Benchstamp.Float p.ps_worker_max);
              ("ops_completed", Benchstamp.Int total_ops);
              ("errors", Benchstamp.Int (Obs.counter_value p.ps_agg "load.errors"));
              ("failed", Benchstamp.Int (Obs.counter_value p.ps_agg "load.failed"));
              ("entries_read", Benchstamp.Int (Obs.counter_value p.ps_agg "load.entries"));
              ("subscription_share", Benchstamp.Float p.ps_share);
              ("peer_fetch_in", Benchstamp.Int p.ps_fetch_in);
              ("peer_notify_out", Benchstamp.Int p.ps_notify_out);
              ("peer_notify_in", Benchstamp.Int p.ps_notify_in);
              ("peer_sub_lost", Benchstamp.Int p.ps_sub_lost);
              ("scan_parked", Benchstamp.Int p.ps_scan_parked);
              ("fetch_coalesced", Benchstamp.Int p.ps_fetch_coalesced);
              ("sessions", Benchstamp.Int (if cfg.sessions then 1 else 0));
              ("stale_reads", Benchstamp.Int stale);
              ("fresh_reads", Benchstamp.Int fresh);
              ("session_reads", Benchstamp.Int p.ps_session_reads);
              ("session_stale_waits", Benchstamp.Int p.ps_stale_waits);
              ("session_stale_errors", Benchstamp.Int p.ps_stale_errors) ]
           @
           if cfg.shards > 0 then
             [ ( "per_shard_ops",
                 Benchstamp.Arr
                   (List.map (fun n -> Benchstamp.Int n)
                      (Array.to_list p.ps_per_shard_ops)) ) ]
           else []) ) ]
    @ (match p.ps_migrate with
      | Some m ->
        [ ( "migrate",
            Benchstamp.Obj
              ([ ("keys_moved", Benchstamp.Int m.mg_keys_moved);
                 ("delta_replayed", Benchstamp.Int m.mg_delta_replayed);
                 ("probe_errors", Benchstamp.Int m.mg_probe_errors) ]
              @ List.map (fun (ph, s) -> ("probe_" ^ ph ^ "_us", hist_json s)) m.mg_phases)
          ) ]
      | None -> [])
    @ (match baseline with
      | Some b ->
        [ ( "baseline_shards1",
            Benchstamp.Obj
              [ ("qps", Benchstamp.Float b.ps_qps); ("wall_s", Benchstamp.Float b.ps_wall);
                ("ops_completed", Benchstamp.Int (Obs.counter_value b.ps_agg "load.ops"));
                ("subscription_share", Benchstamp.Float b.ps_share) ] ) ]
      | None -> [])
    @ [ ( "latency_us",
          Benchstamp.Obj (List.map (fun (cls, snap) -> (cls, hist_json snap)) class_snaps) )
      ]);
  (* human summary *)
  let nservers = if cfg.shards > 0 then 1 else cfg.homes + cfg.computes in
  let tbl =
    Tablefmt.create
      ~title:
        (Printf.sprintf "Cluster load: %d users, %d ops, %d servers%s, %d workers"
           cfg.users total_ops nservers
           (if cfg.shards > 0 then Printf.sprintf " (%d shards)" cfg.shards else "")
           cfg.workers)
      ~headers:[ "op class"; "count"; "p50 us"; "p95 us"; "p99 us" ]
      ~aligns:[ Tablefmt.Left; Right; Right; Right; Right ]
  in
  List.iter
    (fun (cls, snap) ->
      let open Obs.Histogram in
      Tablefmt.add_row tbl
        [ cls; string_of_int snap.count; string_of_int snap.p50; string_of_int snap.p95;
          string_of_int snap.p99 ])
    class_snaps;
  Tablefmt.print tbl;
  Printf.printf
    "qps %.1f  subscription share %.3f (peer msgs %d / client ops %d)  errors %d\n"
    p.ps_qps p.ps_share peer_msgs total_ops
    (Obs.counter_value p.ps_agg "load.errors");
  Printf.printf
    "%s: stale read rate %.4f (%d stale / %d validated; server stamped reads %d, waits \
     %d, stale errors %d)\n"
    (if cfg.sessions then "sessions" else "baseline")
    stale_read_rate stale (stale + fresh) p.ps_session_reads p.ps_stale_waits
    p.ps_stale_errors;
  (match baseline with
  | Some b when b.ps_qps > 0.0 ->
    Printf.printf "shards=%d qps %.1f vs shards=1 qps %.1f: speedup %.2fx\n" cfg.shards
      p.ps_qps b.ps_qps (p.ps_qps /. b.ps_qps)
  | _ -> ());
  (match p.ps_migrate with
  | Some m ->
    Printf.printf
      "migration: %d keys moved, %d delta replayed; probe p99 us before/during/after \
       %d/%d/%d (probe errors %d)\n"
      m.mg_keys_moved m.mg_delta_replayed (migrate_p99 m "before") (migrate_p99 m "during")
      (migrate_p99 m "after") m.mg_probe_errors
  | None -> ());
  Printf.printf "(wrote %s)\n" cfg.out;
  0
