(** CRC-32 (IEEE 802.3, reflected, polynomial [0xEDB88320]) — the checksum
    guarding every durability-log and snapshot record against torn writes
    and bit rot. *)

(** Checksum of a substring. [pos] defaults to 0, [len] to the rest. *)
val string : ?pos:int -> ?len:int -> string -> int32

(** Big-endian 4-byte encoding, appended to [Buffer.t] record payloads. *)
val add_be : Buffer.t -> int32 -> unit

(** Read a big-endian [int32] at [pos]; raises [Invalid_argument] when
    fewer than 4 bytes remain. *)
val get_be : string -> int -> int32
