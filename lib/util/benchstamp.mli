(** Provenance-stamped benchmark JSON files.

    Every recorded perf artifact ([BENCH_micro.json] from the
    microbenchmarks, [BENCH_cluster.json] from the live-cluster load
    harness) goes through this one writer, so they share a schema spine
    that cannot drift: a ["benchmark"] name, the ["commit"] that
    produced the numbers, an ISO-8601 ["date"], an optional ["derived"]
    object of headline ratios, and then benchmark-specific members.
    Regression tooling can diff any two stamped files knowing where the
    provenance lives. *)

(** [git describe --always --dirty] of the working tree, or ["unknown"]
    outside a repository. *)
val git_commit : unit -> string

(** Current UTC time, ISO 8601 ([2026-01-31T12:34:56Z]). *)
val iso_date : unit -> string

(** Escape a string for inclusion inside JSON quotes. *)
val json_escape : string -> string

(** The JSON subset benchmark files need. [Raw] splices an
    already-encoded value verbatim (e.g. an {!Obs.json_of_snapshot}
    line). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Obj of (string * json) list
  | Arr of json list
  | Raw of string

(** Render a value, floats as shortest-faithful [%.6g]. *)
val to_string : json -> string

(** Write [{"benchmark": name, "commit": .., "date": .., "derived":
    {..}, members..}] to [path], pretty-printed two-space-indented at
    the top level. [derived] is omitted when empty. *)
val write_file :
  path:string -> benchmark:string -> ?derived:(string * float) list ->
  (string * json) list -> unit
