(** Deterministic pseudo-random numbers for workload generation.

    A self-contained xoshiro256++ generator seeded through splitmix64, so
    that every experiment is reproducible from a single integer seed and
    independent streams can be derived for independent workload components.
    Includes the skewed samplers the Twip workload needs: Zipf ranks for the
    follower distribution and an alias table for log-weighted posting. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(** [stream ~seed ~index] is the [index]-th member of a family of
    independent generators derived from one seed — a pure function of
    [(seed, index)], unlike {!split}, which advances the parent. The
    load harness gives worker [i] of [n] the stream [~index:i]; the same
    seed and worker count therefore reproduce identical per-worker op
    sequences across runs and machines. *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: negative index";
  let state = ref (Int64.of_int seed) in
  let hashed = splitmix64 state in
  (* jump the splitmix sequence by a per-index multiple of the golden
     gamma so distinct indices land in well-separated subsequences *)
  let state =
    ref (Int64.add hashed (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L))
  in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(** Derive an independent stream: used to give each workload component its
    own generator so adding draws to one does not perturb another. *)
let split t =
  let state = ref (Int64.logxor t.s0 0x5851F42D4C957F2DL) in
  t.s0 <- splitmix64 state;
  create (Int64.to_int (splitmix64 state))

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(** Uniform integer in [\[0, bound)]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  x mod bound

(** Uniform float in [\[0, 1)]. *)
let float t =
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int x /. 9007199254740992.0

let bool t p = float t < p

(** Uniformly chosen element of a non-empty array. *)
let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty";
  arr.(int t (Array.length arr))

(** In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Zipf(s) sampler over ranks [1..n] by inversion on the generalized
    harmonic CDF, precomputed once. Sampling is O(log n). *)
module Zipf = struct
  type dist = { cdf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n <= 0";
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
      cdf.(i) <- !total
    done;
    let norm = !total in
    Array.iteri (fun i v -> cdf.(i) <- v /. norm) cdf;
    { cdf }

  (** Sample a rank in [\[0, n)] (0 = most popular). *)
  let sample dist t =
    let u = float t in
    let cdf = dist.cdf in
    let n = Array.length cdf in
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bs (mid + 1) hi else bs lo mid
    in
    min (bs 0 (n - 1)) (n - 1)
end

(** O(1) sampling from an arbitrary discrete distribution (Vose's alias
    method). Used for "users post proportionally to log(follower count)". *)
module Alias = struct
  type dist = { prob : float array; alias : int array }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Alias.create: empty";
    let total = Array.fold_left ( +. ) 0.0 weights in
    if total <= 0.0 then invalid_arg "Alias.create: zero total weight";
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 0.0 and alias = Array.make n 0 in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri (fun i p -> Queue.push i (if p < 1.0 then small else large)) scaled;
    while not (Queue.is_empty small || Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      Queue.push l (if scaled.(l) < 1.0 then small else large)
    done;
    Queue.iter (fun i -> prob.(i) <- 1.0) small;
    Queue.iter (fun i -> prob.(i) <- 1.0) large;
    { prob; alias }

  let sample dist t =
    let i = int t (Array.length dist.prob) in
    if float t < dist.prob.(i) then i else dist.alias.(i)
end
