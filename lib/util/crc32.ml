(* CRC-32 (IEEE), table-driven, one byte per step. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let string ?(pos = 0) ?len s =
  let len = match len with Some n -> n | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.string";
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let add_be buf v =
  let b shift = Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v shift) 0xFFl)) in
  Buffer.add_char buf (b 24);
  Buffer.add_char buf (b 16);
  Buffer.add_char buf (b 8);
  Buffer.add_char buf (b 0)

let get_be s pos =
  if pos < 0 || pos + 4 > String.length s then invalid_arg "Crc32.get_be";
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
