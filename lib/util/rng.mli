(** Deterministic pseudo-random numbers for workload generation:
    xoshiro256++ seeded via splitmix64, plus the skewed samplers the Twip
    workload needs. Every experiment is reproducible from one seed. *)

type t

(** A generator seeded from one integer (via splitmix64). *)
val create : int -> t

(** Derive an independent stream (advances the parent). *)
val split : t -> t

(** [stream ~seed ~index] is the [index]-th of a family of independent
    generators derived from one seed — a pure function of the pair, so
    per-worker streams are reproducible across runs regardless of the
    order workers start in. Raises [Invalid_argument] on a negative
    index. *)
val stream : seed:int -> index:int -> t

val next_int64 : t -> int64

(** Uniform integer in [\[0, bound)]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

val pick : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Zipf(s) ranks by inversion on the generalized harmonic CDF. *)
module Zipf : sig
  type dist

  val create : n:int -> s:float -> dist

  (** A rank in [\[0, n)]; 0 is the most popular. *)
  val sample : dist -> t -> int
end

(** O(1) sampling from an arbitrary discrete distribution (Vose's alias
    method) — "users post proportionally to log(follower count)". *)
module Alias : sig
  type dist

  val create : float array -> dist
  val sample : dist -> t -> int
end
