(* Stamped benchmark JSON: shared by bench/micro.ml (BENCH_micro.json)
   and the cluster load harness (BENCH_cluster.json). See the .mli. *)

let git_commit () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "unknown" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown")

let iso_date () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Obj of (string * json) list
  | Arr of json list
  | Raw of string

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float v -> Buffer.add_string buf (float_str v)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (json_escape s);
    Buffer.add_char buf '"'
  | Raw s -> Buffer.add_string buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add_json buf item)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (json_escape name);
        Buffer.add_string buf "\":";
        add_json buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_json buf v;
  Buffer.contents buf

(* top level is pretty-printed one member per line, nested values are
   compact: the files stay diffable without a JSON reformatter *)
let write_file ~path ~benchmark ?(derived = []) members =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n";
      let all =
        [ ("benchmark", String benchmark); ("commit", String (git_commit ()));
          ("date", String (iso_date ())) ]
        @ (if derived = [] then []
           else [ ("derived", Obj (List.map (fun (n, v) -> (n, Float v)) derived)) ])
        @ members
      in
      let n = List.length all in
      List.iteri
        (fun i (name, v) ->
          let pretty =
            (* one nested level expanded for the big members (results,
               per-class latencies); deeper values stay compact *)
            match v with
            | Obj inner when inner <> [] ->
              let m = List.length inner in
              "{\n"
              ^ String.concat ""
                  (List.mapi
                     (fun j (k, iv) ->
                       Printf.sprintf "    \"%s\": %s%s\n" (json_escape k) (to_string iv)
                         (if j < m - 1 then "," else ""))
                     inner)
              ^ "  }"
            | v -> to_string v
          in
          Printf.fprintf oc "  \"%s\": %s%s\n" (json_escape name) pretty
            (if i < n - 1 then "," else ""))
        all;
      output_string oc "}\n")
