(** The cache join language (Fig 2).

    {v
    <cachejoin> ::= <key> "=" ["push" | "pull" | "snapshot" <T>] <sources> [";"]
    <sources>   ::= <source> | <sources> <source>
    <source>    ::= <operator> <key>
    <operator>  ::= "copy" | "min" | "max" | "count" | "sum" | "check"
    v}

    Example — the Twip timeline join:
    {[ t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time> ]}

    Slots are written [<name>] and share one namespace across the join's
    patterns. Parsing performs the §3 installation-time checks: exactly one
    non-[check] source (the {e value source}), patterns rooted at table
    literals, no direct self-recursion, and every output slot determinable
    from some source. Ambiguous joins (value-source slots dropped from the
    output under [copy], like the paper's duplicate-timestamp example) are
    accepted but flagged, matching the paper's "users are responsible"
    stance. *)

type operator = Copy | Check | Count | Sum | Min | Max

let operator_to_string = function
  | Copy -> "copy"
  | Check -> "check"
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"

let operator_of_string = function
  | "copy" -> Some Copy
  | "check" -> Some Check
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let is_aggregate = function
  | Count | Sum | Min | Max -> true
  | Copy | Check -> false

(** Maintenance annotation (§3.4): [Push] joins are incrementally
    maintained; [Pull] joins are recomputed on every query and never cached;
    [Snapshot t] joins are recomputed, then cached without updates for [t]
    seconds. *)
type maintenance = Push | Pull | Snapshot of float

type source = { op : operator; pattern : Pattern.t }

type t = {
  output : Pattern.t;
  sources : source list;
  sources_a : source array; (* same contents; avoids per-use conversion *)
  maintenance : maintenance;
  slot_names : string array; (* slot id -> name *)
  value_source : int; (* index into sources of the non-check source *)
  ambiguous : bool; (* copy join that may merge distinct source tuples *)
  text : string;
}

let nslots t = Array.length t.slot_names
let nsources t = Array.length t.sources_a
let source_at t i = t.sources_a.(i)
let sources_array t = t.sources_a
let output t = t.output
let sources t = t.sources
let maintenance t = t.maintenance
let value_source t = List.nth t.sources t.value_source
let value_source_index t = t.value_source
let is_ambiguous t = t.ambiguous
let slot_name t i = t.slot_names.(i)
let to_string t = t.text

(** Operator of the join's value source. *)
let value_op t = (value_source t).op

(** Table the join writes into. *)
let output_table t = Pattern.table t.output

(** Tables the join reads from, deduplicated, in source order. The
    reference oracle and the fuzzer's op generator use this to tell base
    tables from derived ones without walking patterns themselves. *)
let source_tables t =
  List.fold_left
    (fun acc s ->
      let tbl = Pattern.table s.pattern in
      if List.mem tbl acc then acc else acc @ [ tbl ])
    [] t.sources

let parse text =
  let fail msg = Error (Printf.sprintf "cache join %S: %s" text msg) in
  let tokens =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  (* strip a trailing ';' from the last token *)
  let tokens =
    match List.rev tokens with
    | last :: rest when String.length last > 0 && last.[String.length last - 1] = ';' ->
      let trimmed = String.sub last 0 (String.length last - 1) in
      List.rev (if trimmed = "" then rest else trimmed :: rest)
    | _ -> tokens
  in
  let slot_names = ref [] in
  let intern name =
    let rec idx i = function
      | [] ->
        slot_names := !slot_names @ [ name ];
        i
      | n :: rest -> if String.equal n name then i else idx (i + 1) rest
    in
    idx 0 !slot_names
  in
  let parse_pattern s =
    match Pattern.parse ~intern s with
    | p -> Ok p
    | exception Pattern.Parse_error msg -> Error msg
  in
  match tokens with
  | out_text :: "=" :: rest -> (
    let maintenance, rest =
      match rest with
      | "push" :: r -> (Ok Push, r)
      | "pull" :: r -> (Ok Pull, r)
      | "snapshot" :: t :: r -> (
        match float_of_string_opt t with
        | Some secs when secs > 0.0 -> (Ok (Snapshot secs), r)
        | _ -> (Error "snapshot needs a positive duration", r))
      | r -> (Ok Push, r)
    in
    match maintenance with
    | Error msg -> fail msg
    | Ok maintenance -> (
      let rec parse_sources acc = function
        | [] -> Ok (List.rev acc)
        | op_text :: pat_text :: rest -> (
          match operator_of_string op_text with
          | None -> Error (Printf.sprintf "unknown operator %S" op_text)
          | Some op -> (
            match parse_pattern pat_text with
            | Error msg -> Error msg
            | Ok pattern -> parse_sources ({ op; pattern } :: acc) rest))
        | [ tok ] -> Error (Printf.sprintf "dangling token %S" tok)
      in
      match parse_pattern out_text with
      | Error msg -> fail msg
      | Ok output -> (
        match parse_sources [] rest with
        | Error msg -> fail msg
        | Ok [] -> fail "no sources"
        | Ok sources -> (
          (* exactly one non-check source *)
          let value_sources =
            List.mapi (fun i s -> (i, s)) sources |> List.filter (fun (_, s) -> s.op <> Check)
          in
          match value_sources with
          | [] -> fail "no value source (all sources are check)"
          | _ :: _ :: _ -> fail "a join must have exactly one non-check source"
          | [ (value_source, vsource) ] ->
            let slot_names = Array.of_list !slot_names in
            let out_table = Pattern.table output in
            if List.exists (fun s -> String.equal (Pattern.table s.pattern) out_table) sources
            then fail "recursive join: output table used as a source"
            else begin
              (* every output slot must come from some source *)
              let source_slots =
                List.concat_map (fun s -> Pattern.slots s.pattern) sources
              in
              let missing =
                Pattern.slots output |> List.filter (fun i -> not (List.mem i source_slots))
              in
              match missing with
              | i :: _ ->
                fail (Printf.sprintf "output slot <%s> not bound by any source" slot_names.(i))
              | [] ->
                (* a copy join whose value source has slots absent from the
                   output may collapse distinct tuples (paper's example) *)
                let ambiguous =
                  vsource.op = Copy
                  && List.exists
                       (fun i -> not (Pattern.mentions_slot output i))
                       (Pattern.slots vsource.pattern)
                in
                Ok { output; sources; sources_a = Array.of_list sources; maintenance;
                     slot_names; value_source; ambiguous; text }
            end))))
  | _ -> fail "expected: <output-pattern> = [annotation] <op> <pattern> ..."

let parse_exn text =
  match parse text with Ok t -> t | Error msg -> invalid_arg msg
