(** The cache join language (paper Fig 2).

    {v
    <cachejoin> ::= <key> "=" ["push" | "pull" | "snapshot" <T>] <sources> [";"]
    <source>    ::= <operator> <key>
    <operator>  ::= "copy" | "min" | "max" | "count" | "sum" | "check"
    v}

    Example — the Twip timeline join:
    {[ t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time> ]}

    Parsing performs the §3 installation-time checks: exactly one
    non-[check] source (the {e value source}), patterns rooted at table
    literals, no direct self-recursion, every output slot determinable
    from some source. Ambiguous joins (paper's duplicate-timestamp
    example) are accepted but flagged. *)

type operator = Copy | Check | Count | Sum | Min | Max

(** The grammar keyword for an operator ([Copy] is ["copy"], ...). *)
val operator_to_string : operator -> string

val operator_of_string : string -> operator option
val is_aggregate : operator -> bool

(** Maintenance annotation (§3.4): [Push] joins are incrementally
    maintained; [Pull] joins are recomputed on every query and never
    cached; [Snapshot t] joins are recomputed, then cached without updates
    for [t] seconds. *)
type maintenance = Push | Pull | Snapshot of float

type source = { op : operator; pattern : Pattern.t }

type t

(** Parse and validate a join in the Fig 2 grammar; [Error] carries a
    human-readable reason. *)
val parse : string -> (t, string) result

val parse_exn : string -> t

val output : t -> Pattern.t
val sources : t -> source list
val nsources : t -> int
val source_at : t -> int -> source
val sources_array : t -> source array
val maintenance : t -> maintenance

(** Size of the join's shared slot namespace. *)
val nslots : t -> int

val slot_name : t -> int -> string

(** The single non-[check] source and its index. *)
val value_source : t -> source

val value_source_index : t -> int
val value_op : t -> operator

(** Table the join writes into. *)
val output_table : t -> string

(** Tables the join reads from, deduplicated, in source order. *)
val source_tables : t -> string list

(** True when the join may collapse distinct source tuples into one
    output key (§3's undefined-results caveat). *)
val is_ambiguous : t -> bool

val to_string : t -> string
