(** Binary encoding primitives for the wire protocol: LEB128 varints and
    length-prefixed strings. *)

let put_varint buf n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

type reader = { data : string; mutable pos : int; limit : int }

exception Decode_error of string

let reader data = { data; pos = 0; limit = String.length data }

(* A reader over the sub-range [pos, pos+len) of [data]: the zero-copy
   decode path hands the framing layer's receive buffer straight to the
   message decoder without a per-frame String.sub. *)
let reader_view data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Codec.reader_view";
  { data; pos; limit = pos + len }

let get_byte r =
  if r.pos >= r.limit then raise (Decode_error "truncated");
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_varint r =
  let rec go shift acc =
    if shift > 56 then raise (Decode_error "varint too long");
    let b = get_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_string r =
  let n = get_varint r in
  if n > r.limit - r.pos then raise (Decode_error "truncated string");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let at_end r = r.pos >= r.limit

let put_pair_list buf pairs =
  put_varint buf (List.length pairs);
  List.iter
    (fun (k, v) ->
      put_string buf k;
      put_string buf v)
    pairs

let get_pair_list r =
  let n = get_varint r in
  List.init n (fun _ ->
      let k = get_string r in
      let v = get_string r in
      (k, v))
