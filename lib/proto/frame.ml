(** Length-prefixed framing for the TCP transport.

    Each frame is a 4-byte big-endian length followed by the message body.
    The decoder is incremental: feed it whatever bytes arrived and it
    yields every completed frame, keeping the remainder buffered — exactly
    what a readiness-driven event loop needs.

    Two feed paths share one decoder. {!feed} returns frames as fresh
    strings (one copy per frame). {!feed_bytes} is the zero-copy fast
    path: when no partial frame is pending, complete frames are handed to
    the callback as views straight into the caller's receive buffer, and
    only a trailing partial is retained — steady-state pipelined traffic
    (the [Put_batch]/[Notify_batch] firehose) never copies a frame body
    between the socket read and the message decoder. *)

let max_frame = 64 * 1024 * 1024

exception Frame_too_large of int

let encode body =
  let n = String.length body in
  if n > max_frame then raise (Frame_too_large n);
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (n land 0xff);
  Bytes.to_string header ^ body

let add_frame out body =
  let n = String.length body in
  if n > max_frame then raise (Frame_too_large n);
  Buffer.add_char out (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char out (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char out (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char out (Char.chr (n land 0xff));
  Buffer.add_string out body

(* the pending partial frame lives in buf.[start, stop); both bounds move
   so a long run of partial arrivals compacts instead of concatenating *)
type decoder = { mutable buf : Bytes.t; mutable start : int; mutable stop : int }

let decoder () = { buf = Bytes.create 4096; start = 0; stop = 0 }

let buffered t = t.stop - t.start

let header_at b off =
  (Char.code (Bytes.unsafe_get b off) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (off + 3))

(* room for [extra] more bytes at [stop]: compact first (the live span
   slides to offset 0), grow only when compaction is not enough *)
let reserve t extra =
  let live = buffered t in
  if t.start > 0 then begin
    Bytes.blit t.buf t.start t.buf 0 live;
    t.start <- 0;
    t.stop <- live
  end;
  if live + extra > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf * 2) in
    while live + extra > !cap do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit t.buf 0 bigger 0 live;
    t.buf <- bigger
  end

let feed_bytes t src off len ~frame =
  if buffered t = 0 then begin
    (* fast path: complete frames are views into [src]; no copying *)
    let pos = ref off in
    let stop = off + len in
    let continue = ref true in
    while !continue do
      if stop - !pos < 4 then continue := false
      else begin
        let n = header_at src !pos in
        if n > max_frame then raise (Frame_too_large n);
        if stop - !pos < 4 + n then continue := false
        else begin
          frame src ~off:(!pos + 4) ~len:n;
          pos := !pos + 4 + n
        end
      end
    done;
    let rest = stop - !pos in
    if rest > 0 then begin
      t.start <- 0;
      t.stop <- 0;
      reserve t rest;
      Bytes.blit src !pos t.buf 0 rest;
      t.stop <- rest
    end
  end
  else begin
    reserve t len;
    Bytes.blit src off t.buf t.stop len;
    t.stop <- t.stop + len;
    let continue = ref true in
    while !continue do
      if buffered t < 4 then continue := false
      else begin
        let n = header_at t.buf t.start in
        if n > max_frame then raise (Frame_too_large n);
        if buffered t < 4 + n then continue := false
        else begin
          let body_off = t.start + 4 in
          t.start <- t.start + 4 + n;
          frame t.buf ~off:body_off ~len:n
        end
      end
    done;
    if buffered t = 0 then begin
      t.start <- 0;
      t.stop <- 0
    end
  end

let feed t chunk =
  let frames = ref [] in
  feed_bytes t
    (Bytes.unsafe_of_string chunk)
    0 (String.length chunk)
    ~frame:(fun b ~off ~len -> frames := Bytes.sub_string b off len :: !frames);
  List.rev !frames
