(** RPC messages between Pequod clients and servers, and between servers
    (the §2.4 subscription protocol).

    [loopback] drives a handler through a full encode/decode round trip;
    the evaluation harness routes every system's operations through it so
    per-RPC CPU cost is real work rather than a modeled constant. *)

(** Wire protocol version, negotiated by the [Hello] handshake.

    v1 (unversioned): no handshake; [Stats] request (tag [0x09]) and
    [Stat_list] response (tag [0x85]) carried a flattened integer
    snapshot; [Fetch.subscriber] was a numeric simulator node id.

    v2: [Hello]/[Welcome] handshake carries the version; [Fetch] replies
    [Subscribed] and names the subscriber by an opaque callback address
    (["host:port"] on TCP, a stringified node id in the simulator);
    [Sub_check]/[Sub_ranges] let a subscriber audit (and heal) its
    subscriptions against the home; tags [0x09]/[0x85] are retired —
    still reserved, but decoding them fails loudly with a versioned
    error instead of misparsing.

    v3 (session consistency, docs/SESSIONS.md): write acks answer
    [Stamps] (a per-range version-stamp vector) instead of [Done];
    [Get_at]/[Scan_at] carry a minimum-stamp demand and may be refused
    with [Stale]; [Subscribed] gains the fed range's stamp and
    [Notify_batch] a stamp trailer, so fetched copies know their
    version. *)
let protocol_version = 3

(** One row of the partition directory: [table] keys in [[lo,hi)] live
    on home server [de_home]; [de_replicas] are read replicas that also
    fetch+subscribe the range and may serve reads (writes always go to
    the home). Addresses are ["host:port"]. *)
type dir_entry = {
  de_table : string;
  de_lo : string;
  de_hi : string;
  de_home : string;
  de_replicas : string list;
}

(** One entry of a version-stamp vector: the authoritative copy of
    [table] keys in [[lo,hi)] was at version [stamp]. Write acks clamp
    entries to the written keys; a client demands the vector back on
    reads to get read-your-writes (docs/SESSIONS.md). *)
type stamp_entry = string * string * string * int

type request =
  | Hello of { version : int } (* first request on a connection *)
  | Get of string
  | Put of string * string
  | Remove of string
  | Put_batch of (string * string) list (* one framed batch, argument order *)
  | Scan of { lo : string; hi : string }
  | Add_join of string
  (* server-to-server *)
  | Fetch of { table : string; lo : string; hi : string; subscriber : string }
      (* [subscriber] is the callback address the home server pushes
         notifications to after granting the subscription *)
  | Notify_put of string * string
  | Notify_remove of string
  | Notify_batch of {
      items : (string * string option) list;
          (* subscription traffic coalesced per flush: [Some v] is a
             put, [None] a remove, in source-write order *)
      stamps : stamp_entry list;
          (* trailer: after applying [items], the receiver's subscribed
             copies of these ranges are current at these versions *)
    }
  | Sub_check of { subscriber : string }
      (* subscription heartbeat: which ranges does this home still push
         to [subscriber]? A compute server compares the answer against
         what it believes subscribed and refetches anything the home
         dropped (e.g. after a failed push or a home restart). *)
  | Stats_full
  (* partition directory (served by the seed node) *)
  | Dir_get (* answer [Dir_state] unconditionally *)
  | Dir_watch of { epoch : int }
      (* conditional get: [Dir_state] if the directory is newer than
         [epoch], else [Done] — a cheap poll for followers *)
  | Dir_update of { epoch : int; entries : dir_entry list }
      (* replace the directory iff [epoch] is strictly newer; the seed
         answers [Done] or [Error] on a stale/invalid proposal *)
  | Migrate of { table : string; lo : string; hi : string; dest : string }
      (* operator verb, sent to the range's current home: snapshot-feed
         [[lo,hi)] to [dest] via Put_batch, replay the write delta
         accumulated during the copy, then flip the directory epoch.
         Answered (with per-phase stats as [Pairs]) only once the
         handoff is complete. *)
  | Get_at of { key : string; min : stamp_entry list }
      (* [Get] demanding freshness: answer only from a copy whose
         recorded stamps cover [min]; park/refetch otherwise, [Stale]
         past the deadline *)
  | Scan_at of { lo : string; hi : string; min : stamp_entry list }
      (* [Scan] with a minimum-stamp demand, same contract as [Get_at] *)

type response =
  | Done
  | Value of string option
  | Pairs of (string * string) list
  | Metrics of (string * Obs.value) list
  | Welcome of { version : int } (* handshake accepted *)
  | Subscribed of { stamp : int; pairs : (string * string) list }
      (* Fetch granted: the range snapshot (current at version [stamp];
         0 when never stamped), with a subscription installed *)
  | Stamps of stamp_entry list
      (* write acknowledged: the acked keys' ranges are now at these
         versions — the session's read demand going forward *)
  | Stale of stamp_entry list
      (* a [Get_at]/[Scan_at] demand this server could not meet before
         its deadline: the still-unsatisfied entries *)
  | Sub_ranges of (string * string * string) list
      (* Sub_check answer: (table, lo, hi) ranges live for the asking
         subscriber, sorted *)
  | Dir_state of { epoch : int; entries : dir_entry list }
      (* the directory as of [epoch] (Dir_get/Dir_watch answer) *)
  | Error of string

(** Short name of a request's kind, for per-kind RPC counters
    ([rpc.get], [rpc.scan], ...). *)
let request_kind = function
  | Hello _ -> "hello"
  | Get _ -> "get"
  | Put _ -> "put"
  | Remove _ -> "remove"
  | Put_batch _ -> "put_batch"
  | Scan _ -> "scan"
  | Add_join _ -> "add_join"
  | Fetch _ -> "fetch"
  | Notify_put _ -> "notify_put"
  | Notify_remove _ -> "notify_remove"
  | Notify_batch _ -> "notify_batch"
  | Sub_check _ -> "sub_check"
  | Stats_full -> "stats_full"
  | Dir_get -> "dir_get"
  | Dir_watch _ -> "dir_watch"
  | Dir_update _ -> "dir_update"
  | Migrate _ -> "migrate"
  | Get_at _ -> "get_at"
  | Scan_at _ -> "scan_at"

(** One-way requests are applied without sending a response frame.
    Subscription pushes must be one-way: a home server that waited for
    an acknowledgement could deadlock against a compute server blocked
    in a synchronous [Fetch] back to it. *)
let is_oneway = function
  | Notify_put _ | Notify_remove _ | Notify_batch _ -> true
  | Hello _ | Get _ | Put _ | Remove _ | Put_batch _ | Scan _ | Add_join _
  | Fetch _ | Sub_check _ | Stats_full | Dir_get | Dir_watch _ | Dir_update _
  | Migrate _ | Get_at _ | Scan_at _ ->
    false

exception Protocol_error = Codec.Decode_error

let retired tag what =
  raise
    (Protocol_error
       (Printf.sprintf
          "tag %#x (%s) was retired in protocol v%d; use stats_full" tag what
          protocol_version))

let put_dir_entries buf entries =
  Codec.put_varint buf (List.length entries);
  List.iter
    (fun e ->
      Codec.put_string buf e.de_table;
      Codec.put_string buf e.de_lo;
      Codec.put_string buf e.de_hi;
      Codec.put_string buf e.de_home;
      Codec.put_varint buf (List.length e.de_replicas);
      List.iter (Codec.put_string buf) e.de_replicas)
    entries

let get_dir_entries r =
  let n = Codec.get_varint r in
  List.init n (fun _ ->
      let de_table = Codec.get_string r in
      let de_lo = Codec.get_string r in
      let de_hi = Codec.get_string r in
      let de_home = Codec.get_string r in
      let nr = Codec.get_varint r in
      let de_replicas = List.init nr (fun _ -> Codec.get_string r) in
      { de_table; de_lo; de_hi; de_home; de_replicas })

let put_stamps buf stamps =
  Codec.put_varint buf (List.length stamps);
  List.iter
    (fun (table, lo, hi, stamp) ->
      Codec.put_string buf table;
      Codec.put_string buf lo;
      Codec.put_string buf hi;
      Codec.put_varint buf stamp)
    stamps

let get_stamps r =
  let n = Codec.get_varint r in
  List.init n (fun _ ->
      let table = Codec.get_string r in
      let lo = Codec.get_string r in
      let hi = Codec.get_string r in
      let stamp = Codec.get_varint r in
      (table, lo, hi, stamp))

let encode_request req =
  let buf = Buffer.create 64 in
  (match req with
  | Get k ->
    Buffer.add_char buf '\x01';
    Codec.put_string buf k
  | Put (k, v) ->
    Buffer.add_char buf '\x02';
    Codec.put_string buf k;
    Codec.put_string buf v
  | Remove k ->
    Buffer.add_char buf '\x03';
    Codec.put_string buf k
  | Scan { lo; hi } ->
    Buffer.add_char buf '\x04';
    Codec.put_string buf lo;
    Codec.put_string buf hi
  | Add_join text ->
    Buffer.add_char buf '\x05';
    Codec.put_string buf text
  | Fetch { table; lo; hi; subscriber } ->
    Buffer.add_char buf '\x06';
    Codec.put_string buf table;
    Codec.put_string buf lo;
    Codec.put_string buf hi;
    Codec.put_string buf subscriber
  | Notify_put (k, v) ->
    Buffer.add_char buf '\x07';
    Codec.put_string buf k;
    Codec.put_string buf v
  | Notify_remove k ->
    Buffer.add_char buf '\x08';
    Codec.put_string buf k
  | Stats_full -> Buffer.add_char buf '\x0a'
  | Put_batch pairs ->
    Buffer.add_char buf '\x0b';
    Codec.put_pair_list buf pairs
  | Notify_batch { items; stamps } ->
    Buffer.add_char buf '\x0c';
    Codec.put_varint buf (List.length items);
    List.iter
      (fun (k, v) ->
        Codec.put_string buf k;
        match v with
        | Some v ->
          Buffer.add_char buf '\x01';
          Codec.put_string buf v
        | None -> Buffer.add_char buf '\x00')
      items;
    put_stamps buf stamps
  | Hello { version } ->
    Buffer.add_char buf '\x0d';
    Codec.put_varint buf version
  | Sub_check { subscriber } ->
    Buffer.add_char buf '\x0e';
    Codec.put_string buf subscriber
  | Dir_get -> Buffer.add_char buf '\x0f'
  | Dir_watch { epoch } ->
    Buffer.add_char buf '\x10';
    Codec.put_varint buf epoch
  | Dir_update { epoch; entries } ->
    Buffer.add_char buf '\x11';
    Codec.put_varint buf epoch;
    put_dir_entries buf entries
  | Migrate { table; lo; hi; dest } ->
    Buffer.add_char buf '\x12';
    Codec.put_string buf table;
    Codec.put_string buf lo;
    Codec.put_string buf hi;
    Codec.put_string buf dest
  | Get_at { key; min } ->
    Buffer.add_char buf '\x13';
    Codec.put_string buf key;
    put_stamps buf min
  | Scan_at { lo; hi; min } ->
    Buffer.add_char buf '\x14';
    Codec.put_string buf lo;
    Codec.put_string buf hi;
    put_stamps buf min);
  Buffer.contents buf

let decode_request_r r =
  let req =
    match Codec.get_byte r with
    | 0x01 -> Get (Codec.get_string r)
    | 0x02 ->
      let k = Codec.get_string r in
      let v = Codec.get_string r in
      Put (k, v)
    | 0x03 -> Remove (Codec.get_string r)
    | 0x04 ->
      let lo = Codec.get_string r in
      let hi = Codec.get_string r in
      Scan { lo; hi }
    | 0x05 -> Add_join (Codec.get_string r)
    | 0x06 ->
      let table = Codec.get_string r in
      let lo = Codec.get_string r in
      let hi = Codec.get_string r in
      let subscriber = Codec.get_string r in
      Fetch { table; lo; hi; subscriber }
    | 0x07 ->
      let k = Codec.get_string r in
      let v = Codec.get_string r in
      Notify_put (k, v)
    | 0x08 -> Notify_remove (Codec.get_string r)
    | 0x09 -> retired 0x09 "stats"
    | 0x0a -> Stats_full
    | 0x0b -> Put_batch (Codec.get_pair_list r)
    | 0x0c ->
      let n = Codec.get_varint r in
      let items =
        List.init n (fun _ ->
            let k = Codec.get_string r in
            match Codec.get_byte r with
            | 0x01 -> (k, Some (Codec.get_string r))
            | 0x00 -> (k, None)
            | b -> raise (Codec.Decode_error (Printf.sprintf "bad notify item %#x" b)))
      in
      let stamps = get_stamps r in
      Notify_batch { items; stamps }
    | 0x0d -> Hello { version = Codec.get_varint r }
    | 0x0e -> Sub_check { subscriber = Codec.get_string r }
    | 0x0f -> Dir_get
    | 0x10 -> Dir_watch { epoch = Codec.get_varint r }
    | 0x11 ->
      let epoch = Codec.get_varint r in
      let entries = get_dir_entries r in
      Dir_update { epoch; entries }
    | 0x12 ->
      let table = Codec.get_string r in
      let lo = Codec.get_string r in
      let hi = Codec.get_string r in
      let dest = Codec.get_string r in
      Migrate { table; lo; hi; dest }
    | 0x13 ->
      let key = Codec.get_string r in
      let min = get_stamps r in
      Get_at { key; min }
    | 0x14 ->
      let lo = Codec.get_string r in
      let hi = Codec.get_string r in
      let min = get_stamps r in
      Scan_at { lo; hi; min }
    | tag -> raise (Codec.Decode_error (Printf.sprintf "bad request tag %#x" tag))
  in
  if not (Codec.at_end r) then raise (Codec.Decode_error "trailing bytes");
  req

let decode_request data = decode_request_r (Codec.reader data)

(** Decode a request straight out of a framing-layer receive buffer
    ([Frame.feed_bytes] view) with no per-frame copy. The decoded value
    shares nothing with [buf] (keys and values are extracted as fresh
    strings), so it stays valid after the buffer is reused. *)
let decode_request_view buf ~off ~len =
  decode_request_r (Codec.reader_view (Bytes.unsafe_to_string buf) ~pos:off ~len)

let encode_response resp =
  let buf = Buffer.create 64 in
  (match resp with
  | Done -> Buffer.add_char buf '\x81'
  | Value None -> Buffer.add_char buf '\x82'
  | Value (Some v) ->
    Buffer.add_char buf '\x83';
    Codec.put_string buf v
  | Pairs pairs ->
    Buffer.add_char buf '\x84';
    Codec.put_pair_list buf pairs
  | Welcome { version } ->
    Buffer.add_char buf '\x88';
    Codec.put_varint buf version
  | Subscribed { stamp; pairs } ->
    Buffer.add_char buf '\x89';
    Codec.put_varint buf stamp;
    Codec.put_pair_list buf pairs
  | Stamps stamps ->
    Buffer.add_char buf '\x8c';
    put_stamps buf stamps
  | Stale stamps ->
    Buffer.add_char buf '\x8d';
    put_stamps buf stamps
  | Metrics metrics ->
    Buffer.add_char buf '\x87';
    Codec.put_varint buf (List.length metrics);
    List.iter
      (fun (name, v) ->
        Codec.put_string buf name;
        match v with
        | Obs.Counter n ->
          Buffer.add_char buf '\x00';
          Codec.put_varint buf n
        | Obs.Gauge n ->
          Buffer.add_char buf '\x01';
          Codec.put_varint buf n
        | Obs.Histogram h ->
          Buffer.add_char buf '\x02';
          Codec.put_varint buf h.Obs.Histogram.count;
          Codec.put_varint buf h.Obs.Histogram.sum;
          Codec.put_varint buf h.Obs.Histogram.min;
          Codec.put_varint buf h.Obs.Histogram.max;
          Codec.put_varint buf h.Obs.Histogram.p50;
          Codec.put_varint buf h.Obs.Histogram.p95;
          Codec.put_varint buf h.Obs.Histogram.p99)
      metrics
  | Sub_ranges ranges ->
    Buffer.add_char buf '\x8a';
    Codec.put_varint buf (List.length ranges);
    List.iter
      (fun (table, lo, hi) ->
        Codec.put_string buf table;
        Codec.put_string buf lo;
        Codec.put_string buf hi)
      ranges
  | Dir_state { epoch; entries } ->
    Buffer.add_char buf '\x8b';
    Codec.put_varint buf epoch;
    put_dir_entries buf entries
  | Error msg ->
    Buffer.add_char buf '\x86';
    Codec.put_string buf msg);
  Buffer.contents buf

let decode_response data =
  let r = Codec.reader data in
  let resp =
    match Codec.get_byte r with
    | 0x81 -> Done
    | 0x82 -> Value None
    | 0x83 -> Value (Some (Codec.get_string r))
    | 0x84 -> Pairs (Codec.get_pair_list r)
    | 0x85 -> retired 0x85 "stat_list"
    | 0x86 -> Error (Codec.get_string r)
    | 0x87 ->
      let n = Codec.get_varint r in
      Metrics
        (List.init n (fun _ ->
             let name = Codec.get_string r in
             let v =
               match Codec.get_byte r with
               | 0x00 -> Obs.Counter (Codec.get_varint r)
               | 0x01 -> Obs.Gauge (Codec.get_varint r)
               | 0x02 ->
                 let count = Codec.get_varint r in
                 let sum = Codec.get_varint r in
                 let min = Codec.get_varint r in
                 let max = Codec.get_varint r in
                 let p50 = Codec.get_varint r in
                 let p95 = Codec.get_varint r in
                 let p99 = Codec.get_varint r in
                 Obs.Histogram { Obs.Histogram.count; sum; min; max; p50; p95; p99 }
               | tag ->
                 raise (Codec.Decode_error (Printf.sprintf "bad metric kind %#x" tag))
             in
             (name, v)))
    | 0x88 -> Welcome { version = Codec.get_varint r }
    | 0x89 ->
      let stamp = Codec.get_varint r in
      let pairs = Codec.get_pair_list r in
      Subscribed { stamp; pairs }
    | 0x8c -> Stamps (get_stamps r)
    | 0x8d -> Stale (get_stamps r)
    | 0x8a ->
      let n = Codec.get_varint r in
      Sub_ranges
        (List.init n (fun _ ->
             let table = Codec.get_string r in
             let lo = Codec.get_string r in
             let hi = Codec.get_string r in
             (table, lo, hi)))
    | 0x8b ->
      let epoch = Codec.get_varint r in
      let entries = get_dir_entries r in
      Dir_state { epoch; entries }
    | tag -> raise (Codec.Decode_error (Printf.sprintf "bad response tag %#x" tag))
  in
  if not (Codec.at_end r) then raise (Codec.Decode_error "trailing bytes");
  resp

(** Drive [handler] through a full wire round trip (encode request, decode
    at the "server", encode response, decode at the "client"), returning
    the response and the bytes moved in each direction. *)
let loopback handler req =
  let wire_req = encode_request req in
  let resp = handler (decode_request wire_req) in
  let wire_resp = encode_response resp in
  (decode_response wire_resp, String.length wire_req, String.length wire_resp)

(** Apply a request to a Pequod engine (shared by the loopback harness and
    the TCP server). *)
let rec apply_to_server server req =
  let module Server = Pequod_core.Server in
  match req with
  | Hello { version } ->
    if version = protocol_version then Welcome { version = protocol_version }
    else
      Error
        (Printf.sprintf "protocol version mismatch: server speaks v%d, client sent v%d"
           protocol_version version)
  | Get k -> Value (Server.get server k)
  | Put (k, v) ->
    Server.put server k v;
    Stamps (Server.stamps_for_keys server [ k ])
  | Remove k ->
    Server.remove server k;
    Stamps (Server.stamps_for_keys server [ k ])
  | Scan { lo; hi } -> (
    (* no retry loop above this call site (a forwarded sibling scan, a
       scatter segment, a host with no parking): never enter collect
       mode, so an installed async resolver fetches inline instead of
       deferring to a parking continuation that does not exist here *)
    match Server.scan_result ~may_defer:false server ~lo ~hi with
    | `Ok pairs -> Pairs pairs
    | `Missing ranges ->
      let (t, mlo, mhi) = List.hd ranges in
      Error
        (Printf.sprintf "missing base range %s[%s,%s): owning peer unreachable" t
           mlo mhi))
  | Add_join text -> (
    match Server.add_join_text server text with
    | Ok () -> Done
    | Error msg -> Error msg)
  | Put_batch pairs ->
    Server.put_batch server pairs;
    Stamps (Server.stamps_for_keys server (List.map fst pairs))
  | Notify_put (k, v) ->
    Server.put server k v;
    Done
  | Notify_remove k ->
    Server.remove server k;
    Done
  | Notify_batch { items; stamps } ->
    (* apply in source-write order; consecutive puts take the engine's
       batched path *)
    let flush acc = if acc <> [] then Server.put_batch server (List.rev acc) in
    let acc =
      List.fold_left
        (fun acc (k, v) ->
          match v with
          | Some v -> (k, v) :: acc
          | None ->
            flush acc;
            Server.remove server k;
            [])
        [] items
    in
    flush acc;
    (* only after every item is applied: the trailer asserts the pushed
       ranges are current at these versions *)
    List.iter
      (fun (table, lo, hi, stamp) -> Server.set_range_stamp server ~table ~lo ~hi stamp)
      stamps;
    Done
  | Get_at { key; min } -> (
    match Server.stamp_unsatisfied server min with
    | [] -> Value (Server.get server key)
    | unmet -> Stale unmet)
  | Scan_at { lo; hi; min } -> (
    match Server.stamp_unsatisfied server min with
    | [] -> apply_to_server server (Scan { lo; hi })
    | unmet -> Stale unmet)
  | Stats_full -> Metrics (Server.metrics_snapshot server)
  | Fetch _ -> Error "fetch is handled by the cluster layer"
  | Sub_check _ -> Error "sub_check is handled by the cluster layer"
  | Dir_get | Dir_watch _ | Dir_update _ ->
    Error "the partition directory is handled by the cluster layer"
  | Migrate _ -> Error "migrate is handled by the cluster layer"
