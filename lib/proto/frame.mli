(** Length-prefixed framing for the TCP transport: 4-byte big-endian
    length, then the body. The decoder is incremental, as a
    readiness-driven event loop needs. *)

val max_frame : int

exception Frame_too_large of int

(** Prefix a payload with its length. *)
val encode : string -> string

type decoder

(** A fresh decoder with an empty reassembly buffer. *)
val decoder : unit -> decoder

(** Feed arriving bytes; returns every completed frame, keeping the
    remainder buffered. *)
val feed : decoder -> string -> string list

(** Bytes currently buffered awaiting completion. *)
val buffered : decoder -> int
