(** Length-prefixed framing for the TCP transport: 4-byte big-endian
    length, then the body. The decoder is incremental, as a
    readiness-driven event loop needs. *)

val max_frame : int

exception Frame_too_large of int

(** Prefix a payload with its length. *)
val encode : string -> string

(** Append the length header and [body] directly to [out] — one frame,
    no intermediate [header ^ body] string. *)
val add_frame : Buffer.t -> string -> unit

type decoder

(** A fresh decoder with an empty reassembly buffer. *)
val decoder : unit -> decoder

(** Feed arriving bytes; returns every completed frame, keeping the
    remainder buffered. *)
val feed : decoder -> string -> string list

(** Zero-copy feed: [feed_bytes t src off len ~frame] calls
    [frame buf ~off ~len] once per completed frame, in arrival order.
    When the decoder holds no partial frame, the views point straight
    into [src]; otherwise into the decoder's own compacting reassembly
    buffer. Either way a view is valid only for the duration of the
    callback — the buffer is reused as soon as [feed_bytes] is called
    again (in particular, the callback must not trigger a re-entrant
    feed of the same decoder). *)
val feed_bytes :
  decoder -> Bytes.t -> int -> int -> frame:(Bytes.t -> off:int -> len:int -> unit) -> unit

(** Bytes currently buffered awaiting completion. *)
val buffered : decoder -> int
