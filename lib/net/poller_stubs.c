/* epoll(7) bindings for the poller abstraction (lib/net/poller.ml).
 *
 * The OCaml side treats every function as infallible and falls back to
 * the select backend when epoll is unavailable: pequod_epoll_create
 * returns -1 on any non-Linux platform (the whole file compiles to
 * stubs there) or when epoll_create1 itself fails.
 *
 * Unix.file_descr is an immediate int on Unix, so fds cross the FFI as
 * plain Val_int/Int_val with no conversion.
 */

#include <caml/mlvalues.h>
#include <caml/threads.h>

#ifdef __linux__

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value pequod_epoll_create(value vunit)
{
  (void)vunit;
  return Val_int(epoll_create1(0));
}

CAMLprim value pequod_epoll_close(value vep)
{
  close(Int_val(vep));
  return Val_unit;
}

/* op: 0 = add, 1 = modify, 2 = delete; flags: 1 = read, 2 = write.
 * Returns 0 on success, the errno otherwise. */
CAMLprim value pequod_epoll_ctl(value vep, value vop, value vfd, value vflags)
{
  struct epoll_event ev;
  int op, flags = Int_val(vflags);
  memset(&ev, 0, sizeof ev);
  if (flags & 1) ev.events |= EPOLLIN;
  if (flags & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) == 0) return Val_int(0);
  return Val_int(errno);
}

/* Fill [varr] (a flat int array of fd,flags pairs) with up to
 * Wosize/2 ready events; returns the event count, 0 on EINTR, -1 on
 * any other failure. Releases the runtime lock around the blocking
 * wait so sibling shard Domains keep running. */
CAMLprim value pequod_epoll_wait(value vep, value varr, value vtimeout_ms)
{
  struct epoll_event evs[256];
  int ep = Int_val(vep), timeout = Int_val(vtimeout_ms);
  int max = Wosize_val(varr) / 2, n, i;
  if (max > 256) max = 256;
  caml_release_runtime_system();
  n = epoll_wait(ep, evs, max, timeout);
  caml_acquire_runtime_system();
  if (n < 0) return Val_int(errno == EINTR ? 0 : -1);
  for (i = 0; i < n; i++) {
    int flags = 0;
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) flags |= 1;
    if (evs[i].events & EPOLLOUT) flags |= 2;
    Field(varr, 2 * i) = Val_int(evs[i].data.fd);
    Field(varr, 2 * i + 1) = Val_int(flags);
  }
  return Val_int(n);
}

#else /* !__linux__ */

CAMLprim value pequod_epoll_create(value vunit)
{
  (void)vunit;
  return Val_int(-1);
}

CAMLprim value pequod_epoll_close(value vep)
{
  (void)vep;
  return Val_unit;
}

CAMLprim value pequod_epoll_ctl(value vep, value vop, value vfd, value vflags)
{
  (void)vep; (void)vop; (void)vfd; (void)vflags;
  return Val_int(-1);
}

CAMLprim value pequod_epoll_wait(value vep, value varr, value vtimeout_ms)
{
  (void)vep; (void)varr; (void)vtimeout_ms;
  return Val_int(-1);
}

#endif
