(* Wires Net_client into a cache engine as its missing-range resolver:
   the compute-server half of the §2.4 fetch/subscribe protocol. *)

module Server = Pequod_core.Server
module Message = Pequod_proto.Message

let src = Logs.Src.create "pequod.remote"

module Log = (val Logs.src_log src : Logs.LOG)

type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(* TABLE[:LO:HI][@HOST:PORT]; a bare TABLE covers the whole table,
   [T|, T}) in the repo's key order *)
let parse_spec ~peers spec =
  let body, addr =
    match String.index_opt spec '@' with
    | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> (spec, None)
  in
  let addr =
    match (addr, peers) with
    | Some a, _ -> Ok (Some a)
    | None, [] -> Ok None (* no peers: this process is the home *)
    | None, [ p ] -> Ok (Some p)
    | None, _ :: _ :: _ ->
      Error
        (Printf.sprintf
           "partition %S: several --peer addresses; say which owns it with @HOST:PORT"
           spec)
  in
  match addr with
  | Error _ as e -> e
  | Ok r_addr -> (
    match String.split_on_char ':' body with
    | [ table ] when table <> "" ->
      Ok { r_table = table; r_lo = table ^ "|"; r_hi = table ^ "}"; r_addr }
    | [ table; lo; hi ] when table <> "" && String.compare lo hi < 0 ->
      Ok { r_table = table; r_lo = lo; r_hi = hi; r_addr }
    | _ -> Error (Printf.sprintf "partition %S: expected TABLE or TABLE:LO:HI" spec))

let routes_of_specs ~peers specs =
  List.fold_left
    (fun acc spec ->
      match (acc, parse_spec ~peers spec) with
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e
      | Ok rs, Ok r -> Ok (r :: rs))
    (Ok []) specs
  |> Result.map List.rev

let host_port addr =
  match String.rindex_opt addr ':' with
  | Some i -> (
    match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
    | Some p -> (String.sub addr 0 i, p)
    | None -> invalid_arg ("bad peer address: " ^ addr))
  | None -> invalid_arg ("bad peer address: " ^ addr)

(* peer clients, one per owning address, created lazily and registered
   in the engine's own metrics registry ([net.client.retries] etc.) *)
let client_cache ?config ?on_wait obs =
  let cache : (string, Net_client.t) Hashtbl.t = Hashtbl.create 4 in
  fun addr ->
    match Hashtbl.find_opt cache addr with
    | Some c -> c
    | None ->
      let chost, cport = host_port addr in
      let c = Net_client.create ~obs ?config ?on_wait ~host:chost ~port:cport () in
      Hashtbl.add cache addr c;
      c

(* One blocking fetch+subscribe exchange: the §2.4 [Fetch] naming this
   server as the subscriber, answered by a [Subscribed] snapshot. On
   success the granted subscription is recorded in [tracked] (keyed by
   the exact clamp, valued by the granting home) for the healing
   heartbeat to audit. Shared by the static-route and directory
   resolvers and by the asynchronous fetcher's non-collecting fallback,
   so the protocol exchange lives exactly once. *)
let fetch_one ~engine ~client_for ~tracked ~m_fetch_out ~self_addr ~table ~lo ~hi addr =
  Obs.Counter.incr m_fetch_out;
  match
    Net_client.call (client_for addr)
      (Message.Fetch { table; lo; hi; subscriber = self_addr })
  with
  | Message.Subscribed { stamp; pairs } ->
    Hashtbl.replace tracked (table, lo, hi) addr;
    (* record the snapshot's version: stamped reads compare their demand
       against it. Every feed path must go through this — the replica
       warming path used to skip it, leaving a warmed replica unable to
       detect (and heal) its own staleness under a stamped read. *)
    if stamp > 0 then Server.set_range_stamp engine ~table ~lo ~hi stamp;
    Some pairs
  | Message.Error msg ->
    Log.warn (fun m -> m "fetch %s[%s,%s) from %s refused: %s" table lo hi addr msg);
    None
  | _ ->
    Log.warn (fun m -> m "fetch %s[%s,%s) from %s: unexpected response" table lo hi addr);
    None
  | exception Net_client.Net_error msg ->
    Log.warn (fun m -> m "fetch %s[%s,%s) from %s failed: %s" table lo hi addr msg);
    None

(* Which routes serve a missing [lo, hi) of [table]?
   [`Unrouted]: no route mentions the table — it is purely local.
   [`Gap]: routes mention the table but leave part of the range
   uncovered — a partition misconfiguration; treating the gap as
   present-and-empty would silently serve wrong answers.
   [`Fetch clamps]: the (route, clamp_lo, clamp_hi) fetches that cover
   the range, one per overlapping remotely-owned route. *)
(* A wildcard route ([r_table = "*"]) covers a slice of {e every} table:
   its bounds live in component space (the part of the key after "T|"),
   with [r_lo = ""] meaning the table's start and [r_hi = ""] its end.
   The shard layer partitions the whole keyspace this way — one cut
   vector, every table. Instantiating against a concrete table maps the
   bounds back into key space. *)
let instantiate table r =
  if not (String.equal r.r_table "*") then r
  else
    { r with
      r_table = table;
      r_lo = table ^ "|" ^ r.r_lo;
      r_hi = (if r.r_hi = "" then table ^ "}" else table ^ "|" ^ r.r_hi) }

let plan ~routes ~table ~lo ~hi =
  (* a table named by a specific route is governed only by specific
     routes; wildcards partition the tables nothing else claims *)
  let mine =
    match List.filter (fun r -> String.equal r.r_table table) routes with
    | _ :: _ as specific -> specific
    | [] ->
      List.filter_map
        (fun r -> if String.equal r.r_table "*" then Some (instantiate table r) else None)
        routes
  in
  if mine = [] then `Unrouted
  else begin
    let overlapping =
      List.filter
        (fun r -> String.compare r.r_lo hi < 0 && String.compare lo r.r_hi < 0)
        mine
      |> List.sort (fun a b -> String.compare a.r_lo b.r_lo)
    in
    let cursor = ref lo in
    let gap = ref false in
    List.iter
      (fun r ->
        if String.compare !cursor r.r_lo < 0 then gap := true;
        if String.compare !cursor r.r_hi < 0 then cursor := r.r_hi)
      overlapping;
    if !gap || String.compare !cursor hi < 0 then `Gap
    else
      `Fetch
        (List.filter_map
           (fun r ->
             match r.r_addr with
             | None -> None (* locally owned; already present *)
             | Some _ ->
               let flo = if String.compare lo r.r_lo < 0 then r.r_lo else lo in
               let fhi = if String.compare hi r.r_hi < 0 then hi else r.r_hi in
               Some (r, flo, fhi))
           overlapping)
  end

(* directory entries -> routes, from one server's point of view: its
   own ranges become local routes, everything else names the home *)
let routes_of_entries ~self_addr entries =
  List.map
    (fun (e : Message.dir_entry) ->
      { r_table = e.de_table; r_lo = e.de_lo; r_hi = e.de_hi;
        r_addr =
          (if String.equal e.de_home self_addr then None else Some e.de_home) })
    entries

(* The asynchronous fetch engine behind [Net_server]'s parked scans.

   Where the blocking resolver holds the event loop hostage for one
   round-trip per missing range, the fetcher owns its own nonblocking
   peer sockets, driven by the serving loop itself
   ([Net_server.watch_fd]): a parked scan's whole missing-range set is
   planned into per-home clamps and written as one pipelined burst per
   peer, concurrently across peers. Responses are matched to fetches in
   per-connection pipeline order (the wire has no request ids), fed
   into the engine, and the scan retried once the full set has landed.

   Single-flight: an in-flight table keyed by the exact (table, lo, hi)
   clamp means N concurrent parked scans missing the same range share
   one wire [Fetch] and one [feed_base]; the extra joins are counted in
   [fetch.coalesced]. No [Hello] is sent on fetcher sockets — the
   server answers frames without a handshake, and a [Welcome] would
   desynchronise the response-order matching. *)
module Fetcher = struct
  module Frame = Pequod_proto.Frame

  type waiter = {
    mutable w_remaining : int; (* clamps not yet landed *)
    mutable w_failed : bool;
    w_k : ok:bool -> unit;
  }

  type flight = {
    fl_key : string * string * string; (* table, clamp lo, clamp hi *)
    mutable fl_waiters : waiter list;
  }

  type peer = {
    p_addr : string;
    mutable p_fd : Unix.file_descr option;
    mutable p_connecting : bool; (* nonblocking connect pending SO_ERROR *)
    mutable p_decoder : Frame.decoder;
    p_out : Buffer.t; (* encoded frames not yet written *)
    p_flights : flight Queue.t; (* responses match heads in order *)
    mutable p_down_until : float; (* reconnect backoff deadline *)
  }

  type t = {
    f_server : Net_server.t;
    f_engine : Server.t;
    f_self : string;
    (* missing range -> remote clamps, re-planned at fetch time *)
    f_plan :
      table:string -> lo:string -> hi:string ->
      [ `Fail | `Nothing | `Clamps of (string * string * string * string) list ];
    f_tracked : (string * string * string, string) Hashtbl.t;
    f_peers : (string, peer) Hashtbl.t;
    f_inflight : (string * string * string, flight) Hashtbl.t;
    f_buf : Bytes.t;
    m_fetch_out : Obs.Counter.t; (* peer.fetch.out *)
    m_coalesced : Obs.Counter.t; (* fetch.coalesced *)
    m_inflight : Obs.Gauge.t; (* fetch.inflight *)
  }

  let create ~server ~engine ~self_addr ~plan ~tracked =
    let obs = Server.obs engine in
    { f_server = server;
      f_engine = engine;
      f_self = self_addr;
      f_plan = plan;
      f_tracked = tracked;
      f_peers = Hashtbl.create 4;
      f_inflight = Hashtbl.create 16;
      f_buf = Bytes.create 65_536;
      m_fetch_out = Obs.counter obs "peer.fetch.out";
      m_coalesced = Obs.counter obs "fetch.coalesced";
      m_inflight = Obs.gauge obs "fetch.inflight" }

  let peer_of f addr =
    match Hashtbl.find_opt f.f_peers addr with
    | Some p -> p
    | None ->
      let p =
        { p_addr = addr; p_fd = None; p_connecting = false;
          p_decoder = Frame.decoder (); p_out = Buffer.create 256;
          p_flights = Queue.create (); p_down_until = neg_infinity }
      in
      Hashtbl.add f.f_peers addr p;
      p

  let complete_waiter w ~ok =
    if not ok then w.w_failed <- true;
    w.w_remaining <- w.w_remaining - 1;
    if w.w_remaining = 0 then w.w_k ~ok:(not w.w_failed)

  let drop_flight f fl =
    Hashtbl.remove f.f_inflight fl.fl_key;
    Obs.Gauge.set f.m_inflight (Hashtbl.length f.f_inflight)

  (* Tear a peer connection down: every fetch still in its pipeline
     fails (their parked scans answer Error and the client may retry),
     and the peer sits out a short backoff so a dead home is one failed
     [connect] per half second, not per scan. *)
  let fail_peer f peer msg =
    if not (Queue.is_empty peer.p_flights) then
      Log.warn (fun m ->
          m "peer %s: %s; failing %d in-flight fetches" peer.p_addr msg
            (Queue.length peer.p_flights));
    (match peer.p_fd with
    | Some fd ->
      peer.p_fd <- None;
      Net_server.unwatch_fd f.f_server fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    peer.p_connecting <- false;
    peer.p_decoder <- Frame.decoder ();
    Buffer.clear peer.p_out;
    peer.p_down_until <- Unix.gettimeofday () +. 0.5;
    let flights = Queue.fold (fun acc fl -> fl :: acc) [] peer.p_flights in
    Queue.clear peer.p_flights;
    List.iter
      (fun fl ->
        drop_flight f fl;
        let ws = fl.fl_waiters in
        fl.fl_waiters <- [];
        List.iter (fun w -> complete_waiter w ~ok:false) ws)
      (List.rev flights)

  let rec write_some fd data pos len =
    if pos >= len then pos
    else
      match Unix.write_substring fd data pos (len - pos) with
      | n -> write_some fd data (pos + n) len
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_some fd data pos len
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> pos

  (* Nonblocking flush; write interest stays on exactly while bytes
     remain buffered (a level-triggered poller would spin otherwise). *)
  let flush_peer f peer =
    match peer.p_fd with
    | None -> ()
    | Some _ when peer.p_connecting -> ()
    | Some fd -> (
      let data = Buffer.contents peer.p_out in
      Buffer.clear peer.p_out;
      let len = String.length data in
      match write_some fd data 0 len with
      | pos ->
        if pos < len then begin
          Buffer.add_substring peer.p_out data pos (len - pos);
          Net_server.watch_interest f.f_server fd ~read:true ~write:true
        end
        else Net_server.watch_interest f.f_server fd ~read:true ~write:false
      | exception Unix.Unix_error (err, _, _) ->
        fail_peer f peer ("write: " ^ Unix.error_message err))

  (* One response frame = the head of this peer's pipeline. The flight
     leaves the in-flight table before its waiters run: a waiter's
     retry may miss the same range again (eviction raced the feed) and
     must start a fresh fetch, not join a completed one. *)
  let handle_frame f peer frame =
    match Queue.take_opt peer.p_flights with
    | None ->
      fail_peer f peer "unexpected frame with no fetch in flight"
    | Some fl ->
      drop_flight f fl;
      let table, lo, hi = fl.fl_key in
      let ok =
        match Message.decode_response frame with
        | Message.Subscribed { stamp; pairs } ->
          Hashtbl.replace f.f_tracked fl.fl_key peer.p_addr;
          Server.feed_base f.f_engine ~table ~lo ~hi pairs;
          if stamp > 0 then Server.set_range_stamp f.f_engine ~table ~lo ~hi stamp;
          true
        | Message.Error msg ->
          Log.warn (fun m ->
              m "fetch %s[%s,%s) from %s refused: %s" table lo hi peer.p_addr msg);
          false
        | _ ->
          Log.warn (fun m ->
              m "fetch %s[%s,%s) from %s: unexpected response" table lo hi peer.p_addr);
          false
        | exception Message.Protocol_error msg ->
          Log.warn (fun m ->
              m "fetch %s[%s,%s) from %s: protocol error: %s" table lo hi peer.p_addr
                msg);
          false
      in
      let ws = fl.fl_waiters in
      fl.fl_waiters <- [];
      List.iter (fun w -> complete_waiter w ~ok) ws

  let read_peer f peer fd =
    match Unix.read fd f.f_buf 0 (Bytes.length f.f_buf) with
    | 0 -> fail_peer f peer "connection closed"
    | n ->
      List.iter
        (fun frame ->
          (* a completion may tear this peer down re-entrantly (its own
             parked-scan retry failing it); later frames are then stale *)
          if peer.p_fd = Some fd then handle_frame f peer frame)
        (Frame.feed peer.p_decoder (Bytes.sub_string f.f_buf 0 n))
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error (err, _, _) ->
      fail_peer f peer ("read: " ^ Unix.error_message err)

  let peer_ready f peer fd ~readable ~writable =
    if peer.p_fd = Some fd then begin
      if writable then
        if peer.p_connecting then (
          match Unix.getsockopt_error fd with
          | Some err -> fail_peer f peer ("connect: " ^ Unix.error_message err)
          | None ->
            peer.p_connecting <- false;
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            flush_peer f peer)
        else flush_peer f peer;
      if readable && peer.p_fd = Some fd then read_peer f peer fd
    end

  let sockaddr_of addr =
    let host, port = host_port addr in
    let inet =
      match Unix.inet_addr_of_string host with
      | a -> a
      | exception _ -> (
        match (Unix.gethostbyname host).Unix.h_addr_list with
        | [||] -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
        | addrs -> addrs.(0)
        | exception Not_found ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))
    in
    Unix.ADDR_INET (inet, port)

  let ensure_connected f peer =
    if peer.p_fd = None then begin
      match
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.set_nonblock fd
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        (fd, (try Unix.connect fd (sockaddr_of peer.p_addr); `Done with
              | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> `Pending
              | e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e))
      with
      | fd, `Done ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        peer.p_fd <- Some fd;
        peer.p_connecting <- false;
        peer.p_decoder <- Frame.decoder ();
        Net_server.watch_fd f.f_server fd ~read:true ~write:false
          ~on_ready:(fun ~readable ~writable ->
            peer_ready f peer fd ~readable ~writable)
      | fd, `Pending ->
        peer.p_fd <- Some fd;
        peer.p_connecting <- true;
        peer.p_decoder <- Frame.decoder ();
        (* write-ready signals the connect outcome (SO_ERROR) *)
        Net_server.watch_fd f.f_server fd ~read:true ~write:true
          ~on_ready:(fun ~readable ~writable ->
            peer_ready f peer fd ~readable ~writable)
      | exception Unix.Unix_error (err, _, _) ->
        fail_peer f peer ("connect: " ^ Unix.error_message err)
    end

  (* The [Net_server.set_fetcher] entry point: issue one parked scan's
     whole missing-range set, calling [k ~ok] once every clamp has
     landed (or any failed). Completion may run synchronously — every
     clamp already in flight from a down peer — or later from
     [peer_ready]; the caller handles both. *)
  let request f ranges k =
    let now = Unix.gettimeofday () in
    let planned =
      List.fold_left
        (fun acc (table, lo, hi) ->
          match acc with
          | `Fail -> `Fail
          | `Ok clamps -> (
            match f.f_plan ~table ~lo ~hi with
            | `Fail -> `Fail
            | `Nothing ->
              (* the routes moved under the scan (directory epoch, shard
                 re-cut): nothing to fetch; the retry re-plans *)
              `Ok clamps
            | `Clamps cs -> `Ok (List.rev_append cs clamps)))
        (`Ok []) ranges
    in
    match planned with
    | `Fail -> k ~ok:false
    | `Ok [] -> k ~ok:true
    | `Ok clamps ->
      let waiter = { w_remaining = List.length clamps; w_failed = false; w_k = k } in
      let touched = ref [] in
      List.iter
        (fun (table, flo, fhi, home) ->
          let key = (table, flo, fhi) in
          match Hashtbl.find_opt f.f_inflight key with
          | Some fl ->
            (* single-flight: share the wire fetch already under way *)
            Obs.Counter.incr f.m_coalesced;
            fl.fl_waiters <- waiter :: fl.fl_waiters
          | None ->
            let peer = peer_of f home in
            if peer.p_fd = None && now < peer.p_down_until then
              complete_waiter waiter ~ok:false
            else begin
              Obs.Counter.incr f.m_fetch_out;
              let fl = { fl_key = key; fl_waiters = [ waiter ] } in
              Hashtbl.replace f.f_inflight key fl;
              Obs.Gauge.set f.m_inflight (Hashtbl.length f.f_inflight);
              Queue.add fl peer.p_flights;
              Buffer.add_string peer.p_out
                (Net_client.encode_request_frame
                   (Message.Fetch
                      { table; lo = flo; hi = fhi; subscriber = f.f_self }));
              if not (List.memq peer !touched) then touched := peer :: !touched
            end)
        clamps;
      (* one burst per touched peer: connect if needed, then push the
         whole pipeline out in as few writes as the socket allows *)
      List.iter
        (fun peer ->
          ensure_connected f peer;
          flush_peer f peer)
        (List.rev !touched)
end

let attach_directory_impl ?(check_every = 2.0) ?(poll_every = 1.0) ?client_config
    ?on_wait ?seed ~engine ~self_addr ~dir () =
  let obs = Server.obs engine in
  let client_for = client_cache ?config:client_config ?on_wait obs in
  (* a dedicated short-fuse client for the seed poll, so a dead seed
     costs the tick half a second, not the full fetch retry budget *)
  let poll_for =
    client_cache
      ~config:
        { Net_client.connect_timeout = 0.5; call_timeout = 2.0; max_retries = 0;
          backoff = 0.05 }
      ?on_wait obs
  in
  let m_fetch_out = Obs.counter obs "peer.fetch.out" in
  let m_dir_fetch = Obs.counter obs "dir.fetch" in
  let m_epoch = Obs.gauge obs "dir.epoch" in
  let m_sub_lost = Obs.counter obs "peer.sub.lost" in
  let routes = ref [] in
  let applied = ref 0 in
  (* read candidates per directory range: that range's replicas, minus
     this server — the home is always the fallback *)
  let replicas : (string * string * string, string list) Hashtbl.t = Hashtbl.create 8 in
  let tracked : (string * string * string, string) Hashtbl.t = Hashtbl.create 16 in
  let fetch_one = fetch_one ~engine ~client_for ~tracked ~m_fetch_out ~self_addr in
  (* one clamp's fetch: spread reads over the range's replicas (each
     server starts at a different candidate), fall through to the next
     candidate — the home last — when one refuses or is down *)
  let fetch_clamp (r, flo, fhi) =
    let home = Option.get r.r_addr in
    let cands =
      match Hashtbl.find_opt replicas (r.r_table, r.r_lo, r.r_hi) with
      | None | Some [] -> [ home ]
      | Some reps ->
        let all = reps @ [ home ] in
        let n = List.length all in
        let start = Hashtbl.hash self_addr mod n in
        List.init n (fun i -> List.nth all ((start + i) mod n))
    in
    let rec go = function
      | [] -> None
      | addr :: rest -> (
        match fetch_one ~table:r.r_table ~lo:flo ~hi:fhi addr with
        | Some _ as got -> got
        | None -> go rest)
    in
    go cands
  in
  Server.set_resolver engine (fun ~table ~lo ~hi ->
      if !applied = 0 then
        (* no directory yet: resolving [Local] here would mark the range
           present and freeze it empty; defer until the first epoch *)
        Server.Deferred
      else
        match plan ~routes:!routes ~table ~lo ~hi with
        | `Unrouted -> Server.Local (* not a directory table (join outputs) *)
        | `Gap ->
          Log.warn (fun m ->
              m "directory leaves a gap inside %s[%s,%s); check the seed entries" table
                lo hi);
          Server.Deferred
        | `Fetch [] -> Server.Local
        | `Fetch clamps ->
          let rec fetch acc = function
            | [] -> Server.Resolved (List.concat (List.rev acc))
            | clamp :: rest -> (
              match fetch_clamp clamp with
              | Some pairs -> fetch (pairs :: acc) rest
              | None -> Server.Deferred)
          in
          fetch [] clamps);
  let owned_of rs =
    List.filter_map
      (fun r -> if r.r_addr = None then Some (r.r_table, r.r_lo, r.r_hi) else None)
      rs
  in
  (* replica duty waiting to be established: (table, lo, hi, home)
     ranges this server replicates but has not fetch+subscribed yet.
     Retried every tick until the home answers. *)
  let warm_pending = ref [] in
  let warm_replicas () =
    warm_pending :=
      List.filter
        (fun (table, lo, hi, home) ->
          match fetch_one ~table ~lo ~hi home with
          | Some pairs ->
            Server.feed_base engine ~table ~lo ~hi pairs;
            Log.info (fun m -> m "replicating %s[%s,%s) from %s" table lo hi home);
            false
          | None -> true)
        !warm_pending
  in
  (* bring this server in line with the directory version currently in
     [dir]: recompute routes, adjust owned presence, drop subscriptions
     whose granting server the new version no longer names for the
     range, and warm any range this server now serves as a replica *)
  let apply () =
    let epoch = Directory.epoch dir in
    let entries = Directory.entries dir in
    let new_routes = routes_of_entries ~self_addr entries in
    let old_owned = owned_of !routes in
    let new_owned = owned_of new_routes in
    List.iter
      (fun ((table, lo, hi) as k) ->
        if not (List.mem k old_owned) then Server.mark_present engine ~table ~lo ~hi)
      new_owned;
    List.iter
      (fun ((table, lo, hi) as k) ->
        if not (List.mem k new_owned) then Server.unmark_present engine ~table ~lo ~hi)
      old_owned;
    Hashtbl.reset replicas;
    let warm = ref [] in
    List.iter
      (fun (e : Message.dir_entry) ->
        if not (String.equal e.Message.de_home self_addr) then begin
          (match
             List.filter (fun a -> not (String.equal a self_addr)) e.Message.de_replicas
           with
          | [] -> ()
          | others ->
            Hashtbl.replace replicas (e.Message.de_table, e.Message.de_lo, e.Message.de_hi) others);
          if
            List.exists (String.equal self_addr) e.Message.de_replicas
            && not (Hashtbl.mem tracked (e.Message.de_table, e.Message.de_lo, e.Message.de_hi))
          then
            warm :=
              (e.Message.de_table, e.Message.de_lo, e.Message.de_hi, e.Message.de_home)
              :: !warm
        end)
      entries;
    routes := new_routes;
    applied := epoch;
    Obs.Gauge.set m_epoch epoch;
    Log.info (fun m ->
        m "directory epoch %d applied: %d routes, %d owned" epoch
          (List.length new_routes) (List.length new_owned));
    let stale = ref [] in
    Hashtbl.iter
      (fun ((table, lo, hi) as key) addr ->
        let valid =
          match plan ~routes:new_routes ~table ~lo ~hi with
          | `Fetch clamps ->
            List.exists
              (fun (r, _, _) ->
                (match r.r_addr with
                | Some h -> String.equal h addr
                | None -> false)
                ||
                match Hashtbl.find_opt replicas (r.r_table, r.r_lo, r.r_hi) with
                | Some reps -> List.exists (String.equal addr) reps
                | None -> false)
              clamps
          | _ -> false
        in
        if not valid then stale := key :: !stale)
      tracked;
    List.iter
      (fun ((table, lo, hi) as key) ->
        Hashtbl.remove tracked key;
        (* the data moved out from under the subscription: forget the
           presence; the next scan refetches from the current home *)
        Server.unmark_present engine ~table ~lo ~hi)
      !stale;
    (* replica duty: a direct fetch+subscribe from the home feeds the
       copy in (base-table scans never resolve on their own); failures
       stay pending and retry every tick *)
    warm_pending := !warm;
    warm_replicas ()
  in
  if Directory.epoch dir > 0 then apply ();
  let last_poll = ref neg_infinity in
  let poll now =
    match seed with
    | None -> () (* this server is the seed; installs land in [dir] directly *)
    | Some seed_addr ->
      if now -. !last_poll >= poll_every then begin
        last_poll := now;
        match
          Net_client.call (poll_for seed_addr)
            (Message.Dir_watch { epoch = Directory.epoch dir })
        with
        | Message.Dir_state { epoch; entries } ->
          Obs.Counter.incr m_dir_fetch;
          (* a migration flip pushed to this server can race the poll:
             an answer at-or-below the installed epoch is just old news *)
          if epoch > Directory.epoch dir then (
            match Directory.install dir ~epoch ~entries with
            | Ok () -> ()
            | Error msg ->
              Log.warn (fun m -> m "directory update from seed rejected: %s" msg))
        | Message.Done -> Obs.Counter.incr m_dir_fetch (* unchanged *)
        | Message.Error msg ->
          Log.warn (fun m -> m "seed %s refused Dir_watch: %s" seed_addr msg)
        | _ -> ()
        | exception Net_client.Net_error msg ->
          Log.debug (fun m -> m "directory seed %s unreachable: %s" seed_addr msg)
      end
  in
  let last_check = ref neg_infinity in
  let heal now =
    if Hashtbl.length tracked > 0 && now -. !last_check >= check_every then begin
      last_check := now;
      let by_addr = Hashtbl.create 4 in
      Hashtbl.iter
        (fun key addr ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_addr addr) in
          Hashtbl.replace by_addr addr (key :: prev))
        tracked;
      Hashtbl.iter
        (fun addr keys ->
          match
            Net_client.call ~timeout:2.0 (client_for addr)
              (Message.Sub_check { subscriber = self_addr })
          with
          | Message.Sub_ranges live ->
            let live_set = Hashtbl.create (1 + List.length live) in
            List.iter (fun k -> Hashtbl.replace live_set k ()) live;
            List.iter
              (fun ((table, lo, hi) as key) ->
                if not (Hashtbl.mem live_set key) then begin
                  Obs.Counter.force_add m_sub_lost 1;
                  Log.warn (fun m ->
                      m "subscription %s[%s,%s) lost at %s; will refetch" table lo hi
                        addr);
                  Hashtbl.remove tracked key;
                  (* directory mode heals lazily: drop the presence and
                     let the next scan replan — the range may have been
                     migrated to a different home since *)
                  Server.unmark_present engine ~table ~lo ~hi
                end)
              keys
          | _ -> ()
          | exception Net_client.Net_error _ -> ())
        by_addr
    end
  in
  let last_warm = ref neg_infinity in
  fun () ->
    let now = Unix.gettimeofday () in
    poll now;
    if Directory.epoch dir > !applied then apply ();
    if !warm_pending <> [] && now -. !last_warm >= 1.0 then begin
      last_warm := now;
      warm_replicas ()
    end;
    heal now

let attach_static_impl ?(check_every = 2.0) ?client_config ?on_wait
    ?(local_tables = fun _ -> false) ?server ~engine ~self_addr ~routes () =
  List.iter
    (fun r ->
      match r.r_addr with
      (* local wildcard slices cannot be pre-marked (no concrete table);
         they resolve as `Fetch with no remote clamps -> Local instead *)
      | None when not (String.equal r.r_table "*") ->
        Server.mark_present engine ~table:r.r_table ~lo:r.r_lo ~hi:r.r_hi
      | _ -> ())
    routes;
  if List.for_all (fun r -> r.r_addr = None) routes then fun () -> ()
  else begin
    let client_for = client_cache ?config:client_config ?on_wait (Server.obs engine) in
    let m_fetch_out = Obs.counter (Server.obs engine) "peer.fetch.out" in
    (* live subscriptions this server believes it holds: exactly the
       (table, clamp) ranges whose Fetch was granted, keyed to the home
       that granted them. The healing heartbeat audits this against the
       home's own Sub_check answer. *)
    let tracked : (string * string * string, string) Hashtbl.t = Hashtbl.create 16 in
    let fetch_one = fetch_one ~engine ~client_for ~tracked ~m_fetch_out ~self_addr in
    let async =
      match server with
      | None -> false
      | Some srv ->
        (* asynchronous read path: install the fetch engine on the
           serving loop. A parked scan's missing ranges are re-planned
           here into (table, clamp, home) fetches at issue time. *)
        let fplan ~table ~lo ~hi =
          if local_tables table then `Nothing
          else
            match plan ~routes ~table ~lo ~hi with
            | `Unrouted | `Fetch [] -> `Nothing
            | `Gap -> `Fail
            | `Fetch clamps ->
              `Clamps
                (List.map
                   (fun (r, flo, fhi) -> (table, flo, fhi, Option.get r.r_addr))
                   clamps)
        in
        let fetcher = Fetcher.create ~server:srv ~engine ~self_addr ~plan:fplan ~tracked in
        Net_server.set_fetcher srv (Fetcher.request fetcher);
        true
    in
    Server.set_resolver engine (fun ~table ~lo ~hi ->
        (* tables the caller declares always-local — the shard layer's
           join outputs, which every shard recomputes from (fetched,
           subscription-fresh) sources rather than fetching: a fetched
           copy of a join output would freeze, because join-derived
           writes are not client-origin and are never pushed *)
        if local_tables table then Server.Local
        else
        match plan ~routes ~table ~lo ~hi with
        | `Unrouted -> Server.Local
        | `Gap ->
          (* surface the misconfiguration instead of serving the gap as
             present-and-empty: the scan reports the range missing *)
          Log.warn (fun m ->
              m "partition routes leave a gap inside %s[%s,%s); check --partition" table lo
                hi);
          Server.Deferred
        | `Fetch [] -> Server.Local
        | `Fetch clamps ->
          if async && Server.collecting engine then
            (* collect-mode scan under an asynchronous host: report the
               miss and keep collecting; the host parks the scan and the
               fetcher issues the whole missing set as one burst *)
            Server.Deferred
          else begin
            (* blocking path (no async host installed, or a caller with
               no retry loop above it — an updater firing inside a
               feed_base, a bare scan/get): fetch each owning peer's
               clamp inline; all must answer for the range to resolve *)
            let rec fetch acc = function
              | [] -> Server.Resolved (List.concat (List.rev acc))
              | (r, flo, fhi) :: rest -> (
                match fetch_one ~table ~lo:flo ~hi:fhi (Option.get r.r_addr) with
                | Some pairs -> fetch (pairs :: acc) rest
                | None -> Server.Deferred)
            in
            fetch [] clamps
          end);
    (* The healing heartbeat, run from the host's event loop: every
       [check_every] seconds ask each home which of our subscriptions it
       still holds. A range the home dropped (failed push while we were
       blocked or down, home restart) is refetched — feed_base reconciles
       the data and the Fetch re-subscribes — or, if the home is
       unreachable, un-marked present so the next scan goes back through
       the resolver. Without this, a dropped subscription would freeze
       the fetched copy forever with no error. *)
    let m_sub_lost = Obs.counter (Server.obs engine) "peer.sub.lost" in
    let last_check = ref neg_infinity in
    fun () ->
      let now = Unix.gettimeofday () in
      if Hashtbl.length tracked > 0 && now -. !last_check >= check_every then begin
        last_check := now;
        let by_addr = Hashtbl.create 4 in
        Hashtbl.iter
          (fun key addr ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_addr addr) in
            Hashtbl.replace by_addr addr (key :: prev))
          tracked;
        Hashtbl.iter
          (fun addr keys ->
            match
              Net_client.call ~timeout:2.0 (client_for addr)
                (Message.Sub_check { subscriber = self_addr })
            with
            | Message.Sub_ranges live ->
              (* hash the home's answer: a compute tracks one range per
                 fetched timeline piece, so [keys] and [live] both grow
                 with the working set and a List.mem join is quadratic *)
              let live_set = Hashtbl.create (1 + List.length live) in
              List.iter (fun k -> Hashtbl.replace live_set k ()) live;
              List.iter
                (fun ((table, lo, hi) as key) ->
                  if not (Hashtbl.mem live_set key) then begin
                    Obs.Counter.force_add m_sub_lost 1;
                    Log.warn (fun m ->
                        m "subscription %s[%s,%s) lost at %s; refetching" table lo hi addr);
                    Hashtbl.remove tracked key;
                    match fetch_one ~table ~lo ~hi addr with
                    | Some pairs -> Server.feed_base engine ~table ~lo ~hi pairs
                    | None ->
                      (* cannot re-establish now: forget the presence so
                         the next scan retries through the resolver *)
                      Server.unmark_present engine ~table ~lo ~hi
                  end)
                keys
            | _ -> ()
            | exception Net_client.Net_error _ ->
              (* home unreachable: scans surface it; the next heartbeat
                 retries once it returns *)
              ())
          by_addr
      end
  end

(* ------------------------------------------------------------------ *)
(* The single configuration surface: one record, one attach.           *)

module Config = struct
  type routing =
    | Static of route list
    | Directory of { dir : Directory.t; seed : string option; poll_every : float }

  type t = {
    engine : Server.t;
    self_addr : string;
    routing : routing;
    server : Net_server.t option;
    check_every : float;
    client_config : Net_client.config option;
    on_wait : (unit -> unit) option;
    local_tables : string -> bool;
  }

  let make ?(check_every = 2.0) ?client_config ?on_wait
      ?(local_tables = fun _ -> false) ?server ~engine ~self_addr routing =
    { engine; self_addr; routing; server; check_every; client_config; on_wait;
      local_tables }

  let directory ?(poll_every = 1.0) ?seed dir = Directory { dir; seed; poll_every }
end

let attach (cfg : Config.t) =
  match cfg.Config.routing with
  | Config.Static routes ->
    attach_static_impl ~check_every:cfg.Config.check_every
      ?client_config:cfg.Config.client_config ?on_wait:cfg.Config.on_wait
      ~local_tables:cfg.Config.local_tables ?server:cfg.Config.server
      ~engine:cfg.Config.engine ~self_addr:cfg.Config.self_addr ~routes ()
  | Config.Directory { dir; seed; poll_every } ->
    attach_directory_impl ~check_every:cfg.Config.check_every ~poll_every
      ?client_config:cfg.Config.client_config ?on_wait:cfg.Config.on_wait ?seed
      ~engine:cfg.Config.engine ~self_addr:cfg.Config.self_addr ~dir ()

(* deprecated wrappers (one PR of grace); new code goes through
   [Config.make] + [attach] *)
let attach_routes = attach_static_impl
let attach_directory = attach_directory_impl
