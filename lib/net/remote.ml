(* Wires Net_client into a cache engine as its missing-range resolver:
   the compute-server half of the §2.4 fetch/subscribe protocol. *)

module Server = Pequod_core.Server
module Message = Pequod_proto.Message

let src = Logs.Src.create "pequod.remote"

module Log = (val Logs.src_log src : Logs.LOG)

type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(* TABLE[:LO:HI][@HOST:PORT]; a bare TABLE covers the whole table,
   [T|, T}) in the repo's key order *)
let parse_spec ~peers spec =
  let body, addr =
    match String.index_opt spec '@' with
    | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> (spec, None)
  in
  let addr =
    match (addr, peers) with
    | Some a, _ -> Ok (Some a)
    | None, [] -> Ok None (* no peers: this process is the home *)
    | None, [ p ] -> Ok (Some p)
    | None, _ :: _ :: _ ->
      Error
        (Printf.sprintf
           "partition %S: several --peer addresses; say which owns it with @HOST:PORT"
           spec)
  in
  match addr with
  | Error _ as e -> e
  | Ok r_addr -> (
    match String.split_on_char ':' body with
    | [ table ] when table <> "" ->
      Ok { r_table = table; r_lo = table ^ "|"; r_hi = table ^ "}"; r_addr }
    | [ table; lo; hi ] when table <> "" && String.compare lo hi < 0 ->
      Ok { r_table = table; r_lo = lo; r_hi = hi; r_addr }
    | _ -> Error (Printf.sprintf "partition %S: expected TABLE or TABLE:LO:HI" spec))

let routes_of_specs ~peers specs =
  List.fold_left
    (fun acc spec ->
      match (acc, parse_spec ~peers spec) with
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e
      | Ok rs, Ok r -> Ok (r :: rs))
    (Ok []) specs
  |> Result.map List.rev

(* peer clients, one per owning address, created lazily and registered
   in the engine's own metrics registry ([net.client.retries] etc.) *)
let client_cache ?config ?on_wait obs =
  let cache : (string, Net_client.t) Hashtbl.t = Hashtbl.create 4 in
  fun addr ->
    match Hashtbl.find_opt cache addr with
    | Some c -> c
    | None ->
      let chost, cport =
        match String.rindex_opt addr ':' with
        | Some i -> (
          match
            int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1))
          with
          | Some p -> (String.sub addr 0 i, p)
          | None -> invalid_arg ("bad peer address: " ^ addr))
        | None -> invalid_arg ("bad peer address: " ^ addr)
      in
      let c = Net_client.create ~obs ?config ?on_wait ~host:chost ~port:cport () in
      Hashtbl.add cache addr c;
      c

(* Which routes serve a missing [lo, hi) of [table]?
   [`Unrouted]: no route mentions the table — it is purely local.
   [`Gap]: routes mention the table but leave part of the range
   uncovered — a partition misconfiguration; treating the gap as
   present-and-empty would silently serve wrong answers.
   [`Fetch clamps]: the (route, clamp_lo, clamp_hi) fetches that cover
   the range, one per overlapping remotely-owned route. *)
(* A wildcard route ([r_table = "*"]) covers a slice of {e every} table:
   its bounds live in component space (the part of the key after "T|"),
   with [r_lo = ""] meaning the table's start and [r_hi = ""] its end.
   The shard layer partitions the whole keyspace this way — one cut
   vector, every table. Instantiating against a concrete table maps the
   bounds back into key space. *)
let instantiate table r =
  if not (String.equal r.r_table "*") then r
  else
    { r with
      r_table = table;
      r_lo = table ^ "|" ^ r.r_lo;
      r_hi = (if r.r_hi = "" then table ^ "}" else table ^ "|" ^ r.r_hi) }

let plan ~routes ~table ~lo ~hi =
  (* a table named by a specific route is governed only by specific
     routes; wildcards partition the tables nothing else claims *)
  let mine =
    match List.filter (fun r -> String.equal r.r_table table) routes with
    | _ :: _ as specific -> specific
    | [] ->
      List.filter_map
        (fun r -> if String.equal r.r_table "*" then Some (instantiate table r) else None)
        routes
  in
  if mine = [] then `Unrouted
  else begin
    let overlapping =
      List.filter
        (fun r -> String.compare r.r_lo hi < 0 && String.compare lo r.r_hi < 0)
        mine
      |> List.sort (fun a b -> String.compare a.r_lo b.r_lo)
    in
    let cursor = ref lo in
    let gap = ref false in
    List.iter
      (fun r ->
        if String.compare !cursor r.r_lo < 0 then gap := true;
        if String.compare !cursor r.r_hi < 0 then cursor := r.r_hi)
      overlapping;
    if !gap || String.compare !cursor hi < 0 then `Gap
    else
      `Fetch
        (List.filter_map
           (fun r ->
             match r.r_addr with
             | None -> None (* locally owned; already present *)
             | Some _ ->
               let flo = if String.compare lo r.r_lo < 0 then r.r_lo else lo in
               let fhi = if String.compare hi r.r_hi < 0 then hi else r.r_hi in
               Some (r, flo, fhi))
           overlapping)
  end

let attach ?(check_every = 2.0) ?client_config ?on_wait ?(local_tables = fun _ -> false)
    ~engine ~self_addr ~routes () =
  List.iter
    (fun r ->
      match r.r_addr with
      (* local wildcard slices cannot be pre-marked (no concrete table);
         they resolve as `Fetch with no remote clamps -> Local instead *)
      | None when not (String.equal r.r_table "*") ->
        Server.mark_present engine ~table:r.r_table ~lo:r.r_lo ~hi:r.r_hi
      | _ -> ())
    routes;
  if List.for_all (fun r -> r.r_addr = None) routes then fun () -> ()
  else begin
    let client_for = client_cache ?config:client_config ?on_wait (Server.obs engine) in
    let m_fetch_out = Obs.counter (Server.obs engine) "peer.fetch.out" in
    (* live subscriptions this server believes it holds: exactly the
       (table, clamp) ranges whose Fetch was granted, keyed to the home
       that granted them. The healing heartbeat audits this against the
       home's own Sub_check answer. *)
    let tracked : (string * string * string, string) Hashtbl.t = Hashtbl.create 16 in
    let fetch_one ~table ~lo ~hi addr =
      Obs.Counter.incr m_fetch_out;
      match
        Net_client.call (client_for addr)
          (Message.Fetch { table; lo; hi; subscriber = self_addr })
      with
      | Message.Subscribed pairs ->
        Hashtbl.replace tracked (table, lo, hi) addr;
        Some pairs
      | Message.Error msg ->
        Log.warn (fun m -> m "fetch %s[%s,%s) from %s refused: %s" table lo hi addr msg);
        None
      | _ ->
        Log.warn (fun m -> m "fetch %s[%s,%s) from %s: unexpected response" table lo hi addr);
        None
      | exception Net_client.Net_error msg ->
        Log.warn (fun m -> m "fetch %s[%s,%s) from %s failed: %s" table lo hi addr msg);
        None
    in
    Server.set_resolver engine (fun ~table ~lo ~hi ->
        (* tables the caller declares always-local — the shard layer's
           join outputs, which every shard recomputes from (fetched,
           subscription-fresh) sources rather than fetching: a fetched
           copy of a join output would freeze, because join-derived
           writes are not client-origin and are never pushed *)
        if local_tables table then Server.Local
        else
        match plan ~routes ~table ~lo ~hi with
        | `Unrouted -> Server.Local
        | `Gap ->
          (* surface the misconfiguration instead of serving the gap as
             present-and-empty: the scan reports the range missing *)
          Log.warn (fun m ->
              m "partition routes leave a gap inside %s[%s,%s); check --partition" table lo
                hi);
          Server.Deferred
        | `Fetch [] -> Server.Local
        | `Fetch clamps ->
          (* fetch each owning peer's clamp; all must answer for the
             range to resolve *)
          let rec fetch acc = function
            | [] -> Server.Resolved (List.concat (List.rev acc))
            | (r, flo, fhi) :: rest -> (
              match fetch_one ~table ~lo:flo ~hi:fhi (Option.get r.r_addr) with
              | Some pairs -> fetch (pairs :: acc) rest
              | None -> Server.Deferred)
          in
          fetch [] clamps);
    (* The healing heartbeat, run from the host's event loop: every
       [check_every] seconds ask each home which of our subscriptions it
       still holds. A range the home dropped (failed push while we were
       blocked or down, home restart) is refetched — feed_base reconciles
       the data and the Fetch re-subscribes — or, if the home is
       unreachable, un-marked present so the next scan goes back through
       the resolver. Without this, a dropped subscription would freeze
       the fetched copy forever with no error. *)
    let m_sub_lost = Obs.counter (Server.obs engine) "peer.sub.lost" in
    let last_check = ref neg_infinity in
    fun () ->
      let now = Unix.gettimeofday () in
      if Hashtbl.length tracked > 0 && now -. !last_check >= check_every then begin
        last_check := now;
        let by_addr = Hashtbl.create 4 in
        Hashtbl.iter
          (fun key addr ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_addr addr) in
            Hashtbl.replace by_addr addr (key :: prev))
          tracked;
        Hashtbl.iter
          (fun addr keys ->
            match
              Net_client.call ~timeout:2.0 (client_for addr)
                (Message.Sub_check { subscriber = self_addr })
            with
            | Message.Sub_ranges live ->
              (* hash the home's answer: a compute tracks one range per
                 fetched timeline piece, so [keys] and [live] both grow
                 with the working set and a List.mem join is quadratic *)
              let live_set = Hashtbl.create (1 + List.length live) in
              List.iter (fun k -> Hashtbl.replace live_set k ()) live;
              List.iter
                (fun ((table, lo, hi) as key) ->
                  if not (Hashtbl.mem live_set key) then begin
                    Obs.Counter.force_add m_sub_lost 1;
                    Log.warn (fun m ->
                        m "subscription %s[%s,%s) lost at %s; refetching" table lo hi addr);
                    Hashtbl.remove tracked key;
                    match fetch_one ~table ~lo ~hi addr with
                    | Some pairs -> Server.feed_base engine ~table ~lo ~hi pairs
                    | None ->
                      (* cannot re-establish now: forget the presence so
                         the next scan retries through the resolver *)
                      Server.unmark_present engine ~table ~lo ~hi
                  end)
                keys
            | _ -> ()
            | exception Net_client.Net_error _ ->
              (* home unreachable: scans surface it; the next heartbeat
                 retries once it returns *)
              ())
          by_addr
      end
  end
