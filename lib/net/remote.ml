(* Wires Net_client into a cache engine as its missing-range resolver:
   the compute-server half of the §2.4 fetch/subscribe protocol. *)

module Server = Pequod_core.Server
module Message = Pequod_proto.Message

let src = Logs.Src.create "pequod.remote"

module Log = (val Logs.src_log src : Logs.LOG)

type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(* TABLE[:LO:HI][@HOST:PORT]; a bare TABLE covers the whole table,
   [T|, T}) in the repo's key order *)
let parse_spec ~peers spec =
  let body, addr =
    match String.index_opt spec '@' with
    | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> (spec, None)
  in
  let addr =
    match (addr, peers) with
    | Some a, _ -> Ok (Some a)
    | None, [] -> Ok None (* no peers: this process is the home *)
    | None, [ p ] -> Ok (Some p)
    | None, _ :: _ :: _ ->
      Error
        (Printf.sprintf
           "partition %S: several --peer addresses; say which owns it with @HOST:PORT"
           spec)
  in
  match addr with
  | Error _ as e -> e
  | Ok r_addr -> (
    match String.split_on_char ':' body with
    | [ table ] when table <> "" ->
      Ok { r_table = table; r_lo = table ^ "|"; r_hi = table ^ "}"; r_addr }
    | [ table; lo; hi ] when table <> "" && String.compare lo hi < 0 ->
      Ok { r_table = table; r_lo = lo; r_hi = hi; r_addr }
    | _ -> Error (Printf.sprintf "partition %S: expected TABLE or TABLE:LO:HI" spec))

let routes_of_specs ~peers specs =
  List.fold_left
    (fun acc spec ->
      match (acc, parse_spec ~peers spec) with
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e
      | Ok rs, Ok r -> Ok (r :: rs))
    (Ok []) specs
  |> Result.map List.rev

(* peer clients, one per owning address, created lazily and registered
   in the engine's own metrics registry ([net.client.retries] etc.) *)
let client_cache obs =
  let cache : (string, Net_client.t) Hashtbl.t = Hashtbl.create 4 in
  fun addr ->
    match Hashtbl.find_opt cache addr with
    | Some c -> c
    | None ->
      let chost, cport =
        match String.rindex_opt addr ':' with
        | Some i -> (
          match
            int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1))
          with
          | Some p -> (String.sub addr 0 i, p)
          | None -> invalid_arg ("bad peer address: " ^ addr))
        | None -> invalid_arg ("bad peer address: " ^ addr)
      in
      let c = Net_client.create ~obs ~host:chost ~port:cport () in
      Hashtbl.add cache addr c;
      c

let attach ~engine ~self_addr ~routes =
  List.iter
    (fun r ->
      match r.r_addr with
      | None -> Server.mark_present engine ~table:r.r_table ~lo:r.r_lo ~hi:r.r_hi
      | Some _ -> ())
    routes;
  let remote = List.filter (fun r -> r.r_addr <> None) routes in
  if remote <> [] then begin
    let client_for = client_cache (Server.obs engine) in
    Server.set_resolver engine (fun ~table ~lo ~hi ->
        let overlapping =
          List.filter
            (fun r ->
              String.equal r.r_table table
              && String.compare r.r_lo hi < 0
              && String.compare lo r.r_hi < 0)
            remote
        in
        if overlapping = [] then Server.Local
        else
          (* fetch each owning peer's clamp of the missing range; all
             must answer for the range to resolve *)
          let rec fetch acc = function
            | [] -> Server.Resolved (List.concat (List.rev acc))
            | r :: rest -> (
              let flo = if String.compare lo r.r_lo < 0 then r.r_lo else lo in
              let fhi = if String.compare hi r.r_hi < 0 then hi else r.r_hi in
              let addr = Option.get r.r_addr in
              match
                Net_client.call (client_for addr)
                  (Message.Fetch
                     { table; lo = flo; hi = fhi; subscriber = self_addr })
              with
              | Message.Subscribed pairs -> fetch (pairs :: acc) rest
              | Message.Error msg ->
                Log.warn (fun m ->
                    m "fetch %s[%s,%s) from %s refused: %s" table flo fhi addr msg);
                Server.Deferred
              | _ ->
                Log.warn (fun m ->
                    m "fetch %s[%s,%s) from %s: unexpected response" table flo fhi addr);
                Server.Deferred
              | exception Net_client.Net_error msg ->
                Log.warn (fun m ->
                    m "fetch %s[%s,%s) from %s failed: %s" table flo fhi addr msg);
                Server.Deferred)
          in
          fetch [] overlapping)
  end
