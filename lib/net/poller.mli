(** Readiness polling behind one interface: epoll(7) where the platform
    has it, [Unix.select] everywhere else.

    The select loops this replaces carry two scaling hazards: every wait
    is O(registered fds), and any fd number at or above [FD_SETSIZE]
    (1024 almost everywhere) silently corrupts or rejects the set. The
    epoll backend is O(ready) per wait and has no fd-number ceiling, so
    a server can hold thousands of idle connections for the cost of the
    active ones.

    Interest is level-triggered under both backends: a registered fd is
    reported ready on every {!wait} until the condition is consumed, so
    a handler may read less than everything buffered without losing the
    wakeup. Closing a registered fd without {!remove}ing it first is a
    bug (epoll drops it silently; select raises [EBADF]). *)

type t

type backend = [ `Epoll | `Select ]

(** A fresh poller. The backend defaults to epoll when the platform
    provides it, unless the [PEQUOD_POLLER] environment variable says
    [select]; pass [backend] to force one (forcing [`Epoll] on a
    platform without it raises [Failure]). *)
val create : ?backend:backend -> unit -> t

val backend : t -> backend

(** Register interest, or update it for an already-registered fd.
    [read:false write:false] is equivalent to {!remove}. *)
val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit

(** Forget an fd (idempotent). Must happen before the fd is closed. *)
val remove : t -> Unix.file_descr -> unit

(** Wait up to [timeout] seconds (0 polls, negative waits forever) and
    return the ready fds with their readiness. Error/hang-up conditions
    are reported as readable so the owner's next read sees the EOF or
    error. Interrupted waits ([EINTR]) return the empty list. *)
val wait : t -> timeout:float -> (Unix.file_descr * bool * bool) list

(** Release the backend's own resources (the epoll instance); the
    registered fds themselves are untouched. *)
val close : t -> unit
