(** The network-facing Pequod server: a single-threaded, event-driven
    loop (as in the paper's implementation) multiplexing any number of
    client connections over TCP with [Unix.select].

    Clients speak the length-prefixed binary protocol of
    {!Pequod_proto.Message}. The loop is exposed as [step] so tests (and
    embedding applications) can drive it manually; [run] loops forever. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame
module Persist = Pequod_persist.Persist
module Interval_map = Pequod_store.Interval_map

let src = Logs.Src.create "pequod.server"

module Log = (val Logs.src_log src : Logs.LOG)

type client = {
  fd : Unix.file_descr;
  peer : string;
  decoder : Frame.decoder;
  mutable outbuf : string; (* bytes waiting for the socket to accept them *)
}

type t = {
  engine : Server.t;
  listener : Unix.file_descr;
  mutable clients : client list;
  buf : Bytes.t;
  mutable shutdown : bool;
  persist : Persist.t option; (* durability manager, when --data-dir is set *)
  (* home-server subscriptions (§2.4): source table -> subscriber
     callback address per fetched range. Installed by [Fetch], stabbed
     on every client-origin write, dropped when pushes to the address
     stop getting through. *)
  subs : (string, string Interval_map.t) Hashtbl.t;
  peers : (string, Net_client.t) Hashtbl.t; (* subscriber addr -> push client *)
  (* outgoing pushes, coalesced per destination within one read batch:
     one Notify_batch per subscriber per batch, as in the simulator *)
  pending_notify : (string, (string * string option) list) Hashtbl.t; (* dst -> rev items *)
  mutable pending_order : string list; (* destinations, reverse first-enqueue order *)
  (* transport metrics, recorded into the engine's registry so one
     snapshot covers the whole server *)
  m_rpcs : Obs.Counter.t; (* net.rpcs *)
  m_bytes_in : Obs.Counter.t; (* net.bytes_in *)
  m_bytes_out : Obs.Counter.t; (* net.bytes_out *)
  m_req_bytes : Obs.Histogram.t; (* rpc.request.bytes *)
  m_resp_bytes : Obs.Histogram.t; (* rpc.response.bytes *)
  m_fetch_in : Obs.Counter.t; (* peer.fetch.in *)
  m_notify_in : Obs.Counter.t; (* peer.notify.in *)
  m_notify_out : Obs.Counter.t; (* peer.notify.out *)
  metrics_every : float option; (* --metrics-dump period *)
  mutable next_dump : float;
  (* background work run once per event-loop iteration (after I/O), e.g.
     the Remote subscription-healing heartbeat; each callback rate-limits
     itself *)
  mutable tickers : (unit -> unit) list;
}

(** Create a server listening on [port] (0 picks a free port; see {!port})
    with the given cache joins installed. When [config.persist] names a
    data directory, prior state is recovered from it first and every
    mutation is logged; [joins] already present after recovery are not
    re-installed. [metrics_every] makes {!step} print one JSON metrics
    snapshot line to stdout every that-many seconds ([--metrics-dump]). *)
let create ?config ?metrics_every ~port ~joins ~memory_limit () =
  let config = match config with Some c -> c | None -> Config.default () in
  config.Config.memory_limit <- memory_limit;
  let engine = Server.create ~config () in
  let persist = Option.map (Persist.attach engine) config.Config.persist in
  let recovered = Server.join_texts engine in
  List.iter
    (fun j ->
      (* compare canonical forms so a recovered join is not duplicated *)
      let canonical =
        match Pequod_pattern.Joinspec.parse j with
        | Ok spec -> Pequod_pattern.Joinspec.to_string spec
        | Error msg -> failwith msg
      in
      if List.mem canonical recovered then
        Log.info (fun m -> m "join already recovered: %s" j)
      else
        match Server.add_join_text engine j with
        | Ok () -> Log.info (fun m -> m "installed join: %s" j)
        | Error msg -> failwith msg)
    joins;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let obs = Server.obs engine in
  { engine; listener; clients = []; buf = Bytes.create 65_536; shutdown = false;
    persist;
    subs = Hashtbl.create 8;
    peers = Hashtbl.create 8;
    pending_notify = Hashtbl.create 8;
    pending_order = [];
    m_rpcs = Obs.counter obs "net.rpcs";
    m_bytes_in = Obs.counter obs "net.bytes_in";
    m_bytes_out = Obs.counter obs "net.bytes_out";
    m_req_bytes = Obs.histogram obs "rpc.request.bytes";
    m_resp_bytes = Obs.histogram obs "rpc.response.bytes";
    m_fetch_in = Obs.counter obs "peer.fetch.in";
    m_notify_in = Obs.counter obs "peer.notify.in";
    m_notify_out = Obs.counter obs "peer.notify.out";
    metrics_every;
    next_dump =
      (match metrics_every with Some s -> Unix.gettimeofday () +. s | None -> infinity);
    tickers = [] }

let engine t = t.engine
let persist t = t.persist

(** Register background work to run once per {!step} (after I/O); the
    callback is responsible for its own rate limiting. *)
let add_ticker t f = t.tickers <- t.tickers @ [ f ]

(** The port actually bound (useful with [~port:0]). *)
let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Net_server.port"

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (addr, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX path -> path
  | exception _ -> "?"

let drop t client =
  Log.info (fun m -> m "client %s disconnected" client.peer);
  (try Unix.close client.fd with Unix.Unix_error _ -> ());
  t.clients <- List.filter (fun c -> c != client) t.clients

(* try to flush buffered output; keep the rest for the next round *)
let flush_output t client =
  if client.outbuf <> "" then begin
    match Unix.write_substring client.fd client.outbuf 0 (String.length client.outbuf) with
    | n -> client.outbuf <- String.sub client.outbuf n (String.length client.outbuf - n)
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error _ -> drop t client
  end

(* ------------------------------------------------------------------ *)
(* Subscription push (§2.4): the live-cluster version of the
   simulator's coalesced Notify_batch protocol.                        *)

let subs_for t table =
  match Hashtbl.find_opt t.subs table with
  | Some im -> im
  | None ->
    let im = Interval_map.create () in
    Hashtbl.add t.subs table im;
    im

let split_addr addr =
  match String.rindex_opt addr ':' with
  | Some i -> (
    match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
    | Some port -> (String.sub addr 0 i, port)
    | None -> invalid_arg ("bad peer address: " ^ addr))
  | None -> invalid_arg ("bad peer address: " ^ addr)

(* push client for a subscriber address; push mode ([handshake:false])
   and a short fuse — a home server must never stall its event loop on a
   subscriber, not even for the handshake round-trip: a subscriber
   blocked in a synchronous Fetch back to this home cannot answer a
   Welcome until we answer the Fetch. Connecting stays bounded (the OS
   accepts for a busy-but-alive peer without its loop running). *)
let peer_client t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some c -> c
  | None ->
    let chost, cport = split_addr addr in
    let config =
      { Net_client.connect_timeout = 2.0; call_timeout = 5.0; max_retries = 2;
        backoff = 0.05 }
    in
    let c =
      Net_client.create ~obs:(Server.obs t.engine) ~config ~handshake:false ~host:chost
        ~port:cport ()
    in
    Hashtbl.add t.peers addr c;
    c

(* a subscriber stopped taking pushes: forget every subscription it held
   and its client, so one dead peer costs bounded retries once, not per
   write forever. Not silent for a subscriber that is in fact alive: its
   periodic Sub_check no longer lists the dropped ranges, so it refetches
   and resubscribes instead of serving a frozen copy. *)
let drop_subscriber t addr =
  Hashtbl.iter
    (fun _ im ->
      let doomed = ref [] in
      Interval_map.iter im (fun h ->
          if String.equal (Interval_map.handle_data h) addr then doomed := h :: !doomed);
      List.iter (Interval_map.remove im) !doomed)
    t.subs;
  match Hashtbl.find_opt t.peers addr with
  | Some c ->
    Net_client.close c;
    Hashtbl.remove t.peers addr
  | None -> ()

(* queue one update for every subscriber whose fetched range contains
   [key]; flushed once per read batch *)
let buffer_notify t key value_opt =
  if Hashtbl.length t.subs > 0 then
    match Hashtbl.find_opt t.subs (Pequod_store.Store.table_name_of key) with
    | None -> ()
    | Some im ->
      let targets = ref [] in
      Interval_map.stab im key (fun h -> targets := Interval_map.handle_data h :: !targets);
      List.iter
        (fun dst ->
          let prev =
            match Hashtbl.find_opt t.pending_notify dst with
            | Some items -> items
            | None ->
              t.pending_order <- dst :: t.pending_order;
              []
          in
          Hashtbl.replace t.pending_notify dst ((key, value_opt) :: prev))
        (List.sort_uniq compare !targets)

(* one Notify_batch per destination with pending updates, pushed one-way
   (a response-awaiting push could deadlock two servers fetching from
   each other). A push that fails after the client's bounded retries
   drops that subscriber. *)
let flush_notifications t =
  let order = List.rev t.pending_order in
  t.pending_order <- [];
  List.iter
    (fun dst ->
      match Hashtbl.find_opt t.pending_notify dst with
      | None | Some [] -> ()
      | Some rev_items ->
        Hashtbl.remove t.pending_notify dst;
        let items = List.rev rev_items in
        (match Net_client.post (peer_client t dst) (Message.Notify_batch items) with
        | () -> Obs.Counter.incr t.m_notify_out
        | exception Net_client.Net_error msg ->
          Log.warn (fun m -> m "dropping subscriber %s: %s" dst msg);
          drop_subscriber t dst))
    order

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

(* [None] for one-way requests: they produce no response frame *)
let handle_request t request =
  Obs.Counter.incr t.m_rpcs;
  Obs.Histogram.observe t.m_req_bytes (String.length request);
  match Message.decode_request request with
  | req ->
    (* per-kind RPC tally; pequod's whole evaluation counts messages *)
    if !Obs.enabled then
      Obs.Counter.incr (Obs.counter (Server.obs t.engine) ("rpc." ^ Message.request_kind req));
    let resp =
      match req with
      | Message.Fetch { table; lo; hi; subscriber } -> (
        Obs.Counter.incr t.m_fetch_in;
        (* refetches of the same range by the same subscriber (eviction
           pressure, subscription healing) are idempotent on the subs
           table: an identical live entry is reused, never duplicated,
           so a long-lived subscriber cannot grow it without bound *)
        let im = subs_for t table in
        let already = ref false in
        Interval_map.iter_overlapping im ~lo ~hi (fun h ->
            if
              (not !already)
              && Interval_map.handle_range h = (lo, hi)
              && String.equal (Interval_map.handle_data h) subscriber
            then already := true);
        (* install the subscription before snapshotting: a write landing
           in between is pushed as well, and the duplicate application
           at the subscriber is idempotent *)
        let handle =
          if subscriber = "" || !already then None
          else Some (Interval_map.add im ~lo ~hi subscriber)
        in
        match Server.scan_result t.engine ~lo ~hi with
        | `Ok pairs -> Some (Message.Subscribed pairs)
        | `Missing _ ->
          (* this server does not own the range; rescind the subscription *)
          Option.iter (Interval_map.remove (subs_for t table)) handle;
          Some (Message.Error (Printf.sprintf "not the home for %s[%s,%s)" table lo hi))
        | exception e ->
          Option.iter (Interval_map.remove (subs_for t table)) handle;
          Some (Message.Error (Printexc.to_string e)))
      | Message.Sub_check { subscriber } ->
        (* subscription heartbeat: report every range still pushed to
           this subscriber, so it can detect (and heal) a drop *)
        let ranges = ref [] in
        Hashtbl.iter
          (fun table im ->
            Interval_map.iter im (fun h ->
                if String.equal (Interval_map.handle_data h) subscriber then begin
                  let lo, hi = Interval_map.handle_range h in
                  ranges := (table, lo, hi) :: !ranges
                end))
          t.subs;
        Some (Message.Sub_ranges (List.sort compare !ranges))
      | Message.Notify_put (k, v) ->
        ignore (Message.apply_to_server t.engine req);
        Obs.Counter.incr t.m_notify_in;
        buffer_notify t k (Some v);
        None
      | Message.Notify_remove k ->
        ignore (Message.apply_to_server t.engine req);
        Obs.Counter.incr t.m_notify_in;
        buffer_notify t k None;
        None
      | Message.Notify_batch items ->
        ignore (Message.apply_to_server t.engine req);
        Obs.Counter.incr t.m_notify_in;
        List.iter (fun (k, v) -> buffer_notify t k v) items;
        None
      | Message.Put (k, v) ->
        let resp = Message.apply_to_server t.engine req in
        buffer_notify t k (Some v);
        Some resp
      | Message.Remove k ->
        let resp = Message.apply_to_server t.engine req in
        buffer_notify t k None;
        Some resp
      | Message.Put_batch pairs ->
        let resp = Message.apply_to_server t.engine req in
        List.iter (fun (k, v) -> buffer_notify t k (Some v)) pairs;
        Some resp
      | req -> Some (Message.apply_to_server t.engine req)
    in
    resp
  | exception Message.Protocol_error msg -> Some (Message.Error ("protocol error: " ^ msg))
  | exception e -> Some (Message.Error (Printexc.to_string e))

let handle_readable t client =
  match Unix.read client.fd t.buf 0 (Bytes.length t.buf) with
  | 0 -> drop t client
  | n -> (
    Obs.Counter.add t.m_bytes_in n;
    match Frame.feed client.decoder (Bytes.sub_string t.buf 0 n) with
    | frames ->
      (* all responses for one read are accumulated and written with one
         buffer append and one flush: a pipelined batch (e.g. the CLI's
         --load chunks) costs one syscall out, not one per frame *)
      let out = Buffer.create 256 in
      List.iter
        (fun request ->
          match handle_request t request with
          | None -> ()
          | Some response ->
            let wire = Frame.encode (Message.encode_response response) in
            Obs.Counter.add t.m_bytes_out (String.length wire);
            Obs.Histogram.observe t.m_resp_bytes (String.length wire);
            Buffer.add_string out wire)
        frames;
      if Buffer.length out > 0 then begin
        client.outbuf <- client.outbuf ^ Buffer.contents out;
        flush_output t client
      end;
      (* after the whole batch: one coalesced push per subscriber *)
      flush_notifications t
    | exception Frame.Frame_too_large _ -> drop t client)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error _ -> drop t client

let accept_clients t =
  let rec go () =
    match Unix.accept t.listener with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let client = { fd; peer = peer_name fd; decoder = Frame.decoder (); outbuf = "" } in
      Log.info (fun m -> m "client %s connected" client.peer);
      t.clients <- client :: t.clients;
      go ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
  in
  go ()

(* One metrics snapshot as a single JSON line on stdout, timestamped so
   dump streams can be correlated with external logs. *)
let dump_metrics t =
  let now = Unix.gettimeofday () in
  let extra = [ ("ts", Printf.sprintf "%.3f" now) ] in
  print_endline (Obs.json_of_snapshot ~extra (Server.metrics_snapshot t.engine));
  flush stdout

let maybe_dump_metrics t =
  match t.metrics_every with
  | None -> ()
  | Some every ->
    let now = Unix.gettimeofday () in
    if now >= t.next_dump then begin
      t.next_dump <- now +. every;
      dump_metrics t
    end

(** One iteration of the event loop: wait up to [timeout] seconds for
    readiness, then accept/read/write whatever is ready. *)
let step ?(timeout = 1.0) t =
  let reads = t.listener :: List.map (fun c -> c.fd) t.clients in
  let writes = List.filter_map (fun c -> if c.outbuf <> "" then Some c.fd else None) t.clients in
  (match Unix.select reads writes [] timeout with
  | readable, writable, _ ->
    if List.memq t.listener readable then accept_clients t;
    List.iter (fun c -> if List.memq c.fd readable then handle_readable t c) t.clients;
    List.iter (fun c -> if List.memq c.fd writable then flush_output t c) t.clients
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  Option.iter Persist.tick t.persist;
  List.iter (fun f -> f ()) t.tickers;
  maybe_dump_metrics t

(** Serve until {!stop}. *)
let run t =
  while not t.shutdown do
    step t
  done

(** Close the listener, every client connection, and (after a final log
    sync) the durability manager. *)
let stop t =
  t.shutdown <- true;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.clients;
  t.clients <- [];
  Hashtbl.iter (fun _ c -> Net_client.close c) t.peers;
  Hashtbl.reset t.peers;
  Option.iter Persist.close t.persist;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
