(** The network-facing Pequod server: a single-threaded, event-driven
    loop (as in the paper's implementation) multiplexing any number of
    client connections over TCP behind the {!Poller} abstraction —
    epoll(7) where the platform has it, [Unix.select] elsewhere.

    Clients speak the length-prefixed binary protocol of
    {!Pequod_proto.Message}. The loop is exposed as [step] so tests (and
    embedding applications) can drive it manually; [run] loops forever.

    One instance is owned by exactly one domain. The only cross-domain
    entry points are {!inject} (the shard acceptor handing over an
    accepted connection) and {!request_stop}; both go through a mutex
    and a wakeup pipe. Everything else — including {!step} — must be
    called from the owning domain.

    In shard mode ({!set_router}) a request arriving on a connection
    handed over by the acceptor is routed by key ownership: reads and
    writes whose key belongs to a sibling shard are forwarded over the
    sibling's own protocol port, scans and fetches are served locally
    through the engine's resolver (which fetches+subscribes sibling
    slices exactly like a compute server fetches from a home), and
    [Add_join]/[Stats_full] fan out to every shard. Requests arriving on
    this shard's own listener (sibling forwards, sibling fetches,
    subscription pushes) are always applied locally — forwarding them
    again could loop. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame
module Persist = Pequod_persist.Persist
module Interval_map = Pequod_store.Interval_map

let src = Logs.Src.create "pequod.server"

module Log = (val Logs.src_log src : Logs.LOG)

(* Reusable output buffer: the live span slides ([off] advances as the
   socket accepts bytes) and compacts, so backpressure costs a blit at
   worst — never the O(n^2) string rebuild of [outbuf ^ more]. *)
module Outbuf = struct
  type t = { mutable b : Bytes.t; mutable off : int; mutable len : int }

  let create () = { b = Bytes.create 4096; off = 0; len = 0 }
  let length t = t.len

  let reserve t extra =
    if t.off + t.len + extra > Bytes.length t.b then begin
      if t.off > 0 then begin
        Bytes.blit t.b t.off t.b 0 t.len;
        t.off <- 0
      end;
      if t.len + extra > Bytes.length t.b then begin
        let cap = ref (Bytes.length t.b * 2) in
        while t.len + extra > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit t.b 0 bigger 0 t.len;
        t.b <- bigger
      end
    end

  (* append a length-prefixed frame around [body] *)
  let add_frame t body =
    let n = String.length body in
    if n > Frame.max_frame then raise (Frame.Frame_too_large n);
    reserve t (4 + n);
    let p = t.off + t.len in
    Bytes.unsafe_set t.b p (Char.unsafe_chr ((n lsr 24) land 0xff));
    Bytes.unsafe_set t.b (p + 1) (Char.unsafe_chr ((n lsr 16) land 0xff));
    Bytes.unsafe_set t.b (p + 2) (Char.unsafe_chr ((n lsr 8) land 0xff));
    Bytes.unsafe_set t.b (p + 3) (Char.unsafe_chr (n land 0xff));
    Bytes.blit_string body 0 t.b (p + 4) n;
    t.len <- t.len + 4 + n

  (* the socket took [n] bytes *)
  let consumed t n =
    t.off <- t.off + n;
    t.len <- t.len - n;
    if t.len = 0 then begin
      t.off <- 0;
      (* a burst that ballooned the buffer should not pin the memory *)
      if Bytes.length t.b > 1 lsl 20 then t.b <- Bytes.create 4096
    end

  let write t fd = Unix.write fd t.b t.off t.len
end

(* One in-order response slot per request whose reply is not produced
   synchronously (a parked scan): the wire protocol has no request ids,
   so responses must leave in per-connection pipeline order. Slots fill
   out of order; only the ready prefix is flushed. *)
type slot = { mutable sl_wire : string option }

type client = {
  fd : Unix.file_descr;
  peer : string;
  decoder : Frame.decoder;
  out : Outbuf.t;
  mutable want_write : bool; (* current poller write interest *)
  mutable busy : bool; (* mid-request: nested steps must not read from it *)
  injected : bool; (* handed over by the shard acceptor (public traffic) *)
  pending : slot Queue.t; (* unfilled/unflushed response slots, request order *)
  mutable alive : bool; (* false once dropped: late park completions discard *)
}

(* A stamped read ([Get_at]/[Scan_at]) whose demanded versions the local
   copy does not yet satisfy: parked with an in-order response slot and
   re-checked once per step. It waits briefly for the subscription push
   to catch up, then forces a refetch by unmarking the stale pieces,
   then fails with a typed [Stale] at the deadline — never silently
   serving old data (docs/SESSIONS.md). *)
type stamp_wait = {
  sw_client : client;
  sw_slot : slot;
  sw_req : Message.request; (* the original Get_at/Scan_at *)
  sw_min : Message.stamp_entry list;
  sw_t0 : int; (* Obs.now_ns at park *)
  mutable sw_refetched : bool;
  mutable sw_fetching : bool; (* explicit refetch of the unmet ranges in flight *)
  mutable sw_fetch_failed : bool; (* refetch failed: owner unreachable, fail [Stale] *)
}

(* Shard routing, installed by the shard layer (see shard.ml). [rt_call]
   and [rt_post] speak to sibling shard [i] over its own protocol port;
   [rt_stats] aggregates Stats_full across every shard. *)
type router = {
  rt_self : int;
  rt_owner : string -> int;
  rt_route_scan : lo:string -> hi:string -> int option;
      (* Some shard when the whole range lives in one slice; None =
         scatter to every shard and merge *)
  rt_call : int -> Message.request -> Message.response;
  rt_post : int -> Message.request -> unit;
  rt_siblings : int list;
  rt_stats : unit -> (string * Obs.value) list;
  rm_ops : Obs.Counter.t; (* shard.ops: requests handled by this shard *)
  rm_client_ops : Obs.Counter.t; (* shard.client.ops: acceptor-handed requests *)
  rm_forward_out : Obs.Counter.t; (* shard.forward.out: requests sent to siblings *)
  rm_forward_in : Obs.Counter.t; (* shard.forward.in: forwards received *)
}

(* One live range migration (§ docs/PARTITIONING.md): this server is the
   source home handing [mg_table [mg_lo,mg_hi)] to [mg_dest]. The copy
   runs one chunk per event-loop step; writes landing in the range
   during the copy are captured in [mg_delta] and replayed before the
   directory epoch flips, so the destination never becomes the home of
   a range it only half holds. *)
type migration = {
  mg_table : string;
  mg_lo : string;
  mg_hi : string;
  mg_dest : string;
  mutable mg_cursor : string; (* next key to copy *)
  mutable mg_delta : (string * string option) list; (* captured writes, newest first *)
  mutable mg_keys : int;
  mutable mg_deltas : int;
  mg_reply : Unix.file_descr; (* the ctl connection awaiting the answer *)
}

(* Directory-mode state, installed by [set_directory]: this server's
   copy of the partition directory (authoritative when [ds_seed] is
   [None]), plus the migration driver and hotspot read tallies. *)
type dirstate = {
  ds_dir : Directory.t;
  ds_self : string; (* this server's advertised host:port *)
  ds_seed : string option; (* the seed's address; None: this IS the seed *)
  ds_hot_threshold : float; (* reads/s per owned range; 0 disables detection *)
  ds_hot_every : float; (* detection window, seconds *)
  mutable ds_hot_last : float;
  ds_reads : (string * string * string, int ref) Hashtbl.t; (* per-owned-range tallies *)
  mutable ds_mig : migration option; (* at most one migration at a time *)
  ds_calls : (string, Net_client.t) Hashtbl.t; (* call-mode peer clients *)
  ds_m_epoch : Obs.Gauge.t; (* dir.epoch *)
  ds_m_keys : Obs.Counter.t; (* migrate.keys_moved *)
  ds_m_delta : Obs.Counter.t; (* migrate.delta_replayed *)
  ds_m_redirect : Obs.Counter.t; (* migrate.redirects *)
  ds_m_replica_reads : Obs.Counter.t; (* replica.reads *)
  ds_m_hot : Obs.Counter.t; (* hotspot.detected *)
}

type t = {
  engine : Server.t;
  listener : Unix.file_descr;
  poller : Poller.t;
  conns : (Unix.file_descr, client) Hashtbl.t;
  (* free receive buffers: nested steps (serving while blocked on a
     sibling) pop their own so a zero-copy frame view into the outer
     step's buffer is never overwritten mid-decode *)
  mutable read_bufs : Bytes.t list;
  shutdown : bool Atomic.t;
  (* cross-domain handoff: the shard acceptor enqueues accepted fds and
     wakes the loop through the pipe *)
  inj_mu : Mutex.t;
  inj_q : Unix.file_descr Queue.t;
  wakeup_r : Unix.file_descr;
  wakeup_w : Unix.file_descr;
  mutable stepping : bool; (* a step is on the stack: nested steps skip housekeeping *)
  (* an engine call is on the stack (request handling, a parked-scan
     retry): steps taken while it is set must not service external fds,
     whose fetch completions re-enter the engine. A nested step with
     the engine off-stack — a shard blocked forwarding to a sibling —
     services them freely; that is what lets a ring of mutually blocked
     shards finish each other's parked scans instead of deadlocking. *)
  mutable in_engine : bool;
  mutable router : router option;
  mutable dirst : dirstate option; (* directory mode (see [set_directory]) *)
  (* a nested [step] used as the write-forwarding clients' [on_wait]
     hook, bound on the first real step (it cannot be built in [create]
     because [step] is defined later) *)
  mutable nested_step : unit -> unit;
  persist : Persist.t option; (* durability manager, when --data-dir is set *)
  (* home-server subscriptions (§2.4): source table -> subscriber
     callback address per fetched range. Installed by [Fetch], stabbed
     on every client-origin write, dropped when pushes to the address
     stop getting through. *)
  subs : (string, string Interval_map.t) Hashtbl.t;
  peers : (string, Net_client.t) Hashtbl.t; (* subscriber addr -> push client *)
  (* outgoing pushes, coalesced per destination within one read batch:
     one Notify_batch per subscriber per batch, as in the simulator *)
  pending_notify : (string, (string * string option) list) Hashtbl.t; (* dst -> rev items *)
  mutable pending_order : string list; (* destinations, reverse first-enqueue order *)
  (* transport metrics, recorded into the engine's registry so one
     snapshot covers the whole server *)
  m_rpcs : Obs.Counter.t; (* net.rpcs *)
  m_bytes_in : Obs.Counter.t; (* net.bytes_in *)
  m_bytes_out : Obs.Counter.t; (* net.bytes_out *)
  m_req_bytes : Obs.Histogram.t; (* rpc.request.bytes *)
  m_resp_bytes : Obs.Histogram.t; (* rpc.response.bytes *)
  m_fetch_in : Obs.Counter.t; (* peer.fetch.in *)
  m_notify_in : Obs.Counter.t; (* peer.notify.in *)
  m_notify_out : Obs.Counter.t; (* peer.notify.out *)
  m_queue_depth : Obs.Gauge.t; (* shard.queue.depth *)
  m_conns : Obs.Gauge.t; (* shard.conns *)
  metrics_every : float option; (* --metrics-dump period *)
  mutable next_dump : float;
  (* background work run once per event-loop iteration (after I/O), e.g.
     the Remote subscription-healing heartbeat; each callback rate-limits
     itself *)
  mutable tickers : (unit -> unit) list;
  (* asynchronous fetch engine, installed by [Remote.attach ~server]:
     given the full missing-range set of a parked scan, it issues every
     fetch (batched per peer, single-flighted across waiters) and calls
     back once all of them completed. [None]: scans resolve through the
     engine's blocking resolver, as before. *)
  mutable fetcher : ((string * string * string) list -> (ok:bool -> unit) -> unit) option;
  (* non-client fds serviced by this loop: the fetcher's peer sockets *)
  externals : (Unix.file_descr, readable:bool -> writable:bool -> unit) Hashtbl.t;
  m_scan_parked : Obs.Counter.t; (* scan.parked *)
  m_fetch_wait : Obs.Histogram.t; (* resolver.fetch.wait_ns *)
  (* stamped reads parked for freshness, re-checked once per step *)
  mutable stamp_waits : stamp_wait list;
  m_session_reads : Obs.Counter.t; (* session.reads *)
  m_stale_waits : Obs.Counter.t; (* session.stale_waits *)
  m_stale_errors : Obs.Counter.t; (* session.stale_errors *)
  m_stamp_wait : Obs.Histogram.t; (* stamp.wait_ns *)
}

(* placeholder compared by physical equality; see [nested_step] *)
let no_nested = fun () -> ()

(** Create a server listening on [port] (0 picks a free port; see {!port})
    with the given cache joins installed. When [config.persist] names a
    data directory, prior state is recovered from it first and every
    mutation is logged; [joins] already present after recovery are not
    re-installed. [metrics_every] makes {!step} print one JSON metrics
    snapshot line to stdout every that-many seconds ([--metrics-dump]).
    [backend] forces the poller backend (tests exercise both). *)
let create ?config ?metrics_every ?backend ~port ~joins ~memory_limit () =
  let config = match config with Some c -> c | None -> Config.default () in
  config.Config.memory_limit <- memory_limit;
  let engine = Server.create ~config () in
  let persist = Option.map (Persist.attach engine) config.Config.persist in
  let recovered = Server.join_texts engine in
  List.iter
    (fun j ->
      (* compare canonical forms so a recovered join is not duplicated *)
      let canonical =
        match Pequod_pattern.Joinspec.parse j with
        | Ok spec -> Pequod_pattern.Joinspec.to_string spec
        | Error msg -> failwith msg
      in
      if List.mem canonical recovered then
        Log.info (fun m -> m "join already recovered: %s" j)
      else
        match Server.add_join_text engine j with
        | Ok () -> Log.info (fun m -> m "installed join: %s" j)
        | Error msg -> failwith msg)
    joins;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let poller = Poller.create ?backend () in
  Poller.set poller listener ~read:true ~write:false;
  let wakeup_r, wakeup_w = Unix.pipe () in
  Unix.set_nonblock wakeup_r;
  Unix.set_nonblock wakeup_w;
  Poller.set poller wakeup_r ~read:true ~write:false;
  let obs = Server.obs engine in
  { engine; listener; poller;
    conns = Hashtbl.create 16;
    read_bufs = [];
    shutdown = Atomic.make false;
    inj_mu = Mutex.create ();
    inj_q = Queue.create ();
    wakeup_r; wakeup_w;
    stepping = false;
    in_engine = false;
    router = None;
    dirst = None;
    nested_step = no_nested;
    persist;
    subs = Hashtbl.create 8;
    peers = Hashtbl.create 8;
    pending_notify = Hashtbl.create 8;
    pending_order = [];
    m_rpcs = Obs.counter obs "net.rpcs";
    m_bytes_in = Obs.counter obs "net.bytes_in";
    m_bytes_out = Obs.counter obs "net.bytes_out";
    m_req_bytes = Obs.histogram obs "rpc.request.bytes";
    m_resp_bytes = Obs.histogram obs "rpc.response.bytes";
    m_fetch_in = Obs.counter obs "peer.fetch.in";
    m_notify_in = Obs.counter obs "peer.notify.in";
    m_notify_out = Obs.counter obs "peer.notify.out";
    m_queue_depth = Obs.gauge obs "shard.queue.depth";
    m_conns = Obs.gauge obs "shard.conns";
    metrics_every;
    next_dump =
      (match metrics_every with Some s -> Unix.gettimeofday () +. s | None -> infinity);
    tickers = [];
    fetcher = None;
    externals = Hashtbl.create 4;
    m_scan_parked = Obs.counter obs "scan.parked";
    m_fetch_wait = Obs.histogram obs "resolver.fetch.wait_ns";
    stamp_waits = [];
    m_session_reads = Obs.counter obs "session.reads";
    m_stale_waits = Obs.counter obs "session.stale_waits";
    m_stale_errors = Obs.counter obs "session.stale_errors";
    m_stamp_wait = Obs.histogram obs "stamp.wait_ns" }

let engine t = t.engine
let persist t = t.persist
let poller_backend t = Poller.backend t.poller

(** Register background work to run once per {!step} (after I/O); the
    callback is responsible for its own rate limiting. *)
let add_ticker t f = t.tickers <- t.tickers @ [ f ]

(** {2 External fds}

    The asynchronous fetcher owns nonblocking peer sockets that must be
    driven by this server's loop. [watch_fd] registers one: [on_ready]
    runs whenever the fd polls ready and no engine call is on the stack
    (nested steps taken while blocked on a sibling forward qualify), so
    fetch completions (which re-run parked scans through the engine)
    cannot re-enter an engine call already in progress. *)
let watch_fd t fd ~read ~write ~on_ready =
  Hashtbl.replace t.externals fd on_ready;
  Poller.set t.poller fd ~read ~write

(** Adjust poller interest for a watched fd (e.g. write only while the
    fetcher has buffered output — level-triggered pollers spin
    otherwise). *)
let watch_interest t fd ~read ~write = Poller.set t.poller fd ~read ~write

(** Deregister (before closing the fd). *)
let unwatch_fd t fd =
  Hashtbl.remove t.externals fd;
  Poller.remove t.poller fd

(** Install the asynchronous fetch engine (see [Remote.attach ~server]):
    scans missing base ranges park instead of failing, and [fetcher] is
    handed the full missing set plus a completion callback. *)
let set_fetcher t fetcher = t.fetcher <- Some fetcher

(** Install shard routing (see shard.ml); call once, before serving. *)
let set_router t ~self ~owner ~route_scan ~call ~post ~siblings ~stats =
  let obs = Server.obs t.engine in
  t.router <-
    Some
      { rt_self = self; rt_owner = owner; rt_route_scan = route_scan;
        rt_call = call; rt_post = post;
        rt_siblings = siblings; rt_stats = stats;
        rm_ops = Obs.counter obs "shard.ops";
        rm_client_ops = Obs.counter obs "shard.client.ops";
        rm_forward_out = Obs.counter obs "shard.forward.out";
        rm_forward_in = Obs.counter obs "shard.forward.in" }

(* hotspot detection: once per window, compare each owned range's read
   tally against the threshold; a hot range is counted and logged with
   the pequod_ctl command that would replicate it. Replication itself
   stays an operator decision — the directory is shared cluster state. *)
let hotspot_tick _t ds () =
  if ds.ds_hot_threshold > 0. then begin
    let now = Unix.gettimeofday () in
    let dt = now -. ds.ds_hot_last in
    if dt >= ds.ds_hot_every then begin
      ds.ds_hot_last <- now;
      Hashtbl.iter
        (fun (table, lo, hi) r ->
          let rate = float_of_int !r /. dt in
          if rate >= ds.ds_hot_threshold then begin
            Obs.Counter.incr ds.ds_m_hot;
            Log.warn (fun m ->
                m
                  "hot range %s[%s,%s): %.0f reads/s (threshold %.0f); consider: \
                   pequod_ctl replicate %s %s %s %s REPLICA_ADDR"
                  table lo hi rate ds.ds_hot_threshold
                  (Option.value ds.ds_seed ~default:ds.ds_self)
                  table lo hi)
          end;
          r := 0)
        ds.ds_reads
    end
  end

(** Put this server in directory mode: [dir] is its copy of the
    partition directory (the authoritative one when [seed] is [None] —
    the [--dir-host] role — a follower copy polled from [seed]
    otherwise). Enables serving [Dir_get]/[Dir_watch]/[Dir_update],
    the [Migrate] driver, forwarding of writes whose directory home is
    another server, and hotspot detection over the per-owned-range read
    tallies ([hot_threshold] reads/s over [hot_check_every]-second
    windows; 0 disables). Call once, before serving; pair it with
    {!Remote.attach_directory} on the same [dir]. *)
let set_directory t ?seed ?(hot_threshold = 0.) ?(hot_check_every = 5.0) ~dir ~self_addr
    () =
  let obs = Server.obs t.engine in
  let ds =
    { ds_dir = dir; ds_self = self_addr; ds_seed = seed;
      ds_hot_threshold = hot_threshold; ds_hot_every = hot_check_every;
      ds_hot_last = Unix.gettimeofday ();
      ds_reads = Hashtbl.create 16; ds_mig = None; ds_calls = Hashtbl.create 4;
      ds_m_epoch = Obs.gauge obs "dir.epoch";
      ds_m_keys = Obs.counter obs "migrate.keys_moved";
      ds_m_delta = Obs.counter obs "migrate.delta_replayed";
      ds_m_redirect = Obs.counter obs "migrate.redirects";
      ds_m_replica_reads = Obs.counter obs "replica.reads";
      ds_m_hot = Obs.counter obs "hotspot.detected" }
  in
  Obs.Gauge.set ds.ds_m_epoch (Directory.epoch dir);
  t.dirst <- Some ds;
  add_ticker t (hotspot_tick t ds)

(** One nested event-loop step, for threading as the [on_wait] of
    clients owned by this server's loop: while such a client blocks on a
    call, the loop keeps serving peer traffic — which is what makes
    symmetric fetches between directory-mode servers deadlock-free. *)
let on_wait t () = t.nested_step ()

(** The port actually bound (useful with [~port:0]). *)
let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Net_server.port"

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (addr, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX path -> path
  | exception _ -> "?"

let drop t client =
  Log.info (fun m -> m "client %s disconnected" client.peer);
  client.alive <- false;
  Poller.remove t.poller client.fd;
  Hashtbl.remove t.conns client.fd;
  Obs.Gauge.set t.m_conns (Hashtbl.length t.conns);
  try Unix.close client.fd with Unix.Unix_error _ -> ()

(* keep the poller's write interest in sync with pending output *)
let update_interest t client =
  let want = Outbuf.length client.out > 0 in
  if want <> client.want_write then begin
    client.want_write <- want;
    Poller.set t.poller client.fd ~read:true ~write:want
  end

(* try to flush buffered output; keep the rest for the next round *)
let flush_output t client =
  if Outbuf.length client.out > 0 then begin
    match Outbuf.write client.out client.fd with
    | n ->
      Outbuf.consumed client.out n;
      update_interest t client
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
      update_interest t client
    | exception Unix.Unix_error _ -> drop t client
  end

(* move the ready prefix of the slot queue into the output buffer: a
   filled slot behind an unfilled one waits (pipeline order) *)
let flush_ready client =
  let rec go () =
    match Queue.peek_opt client.pending with
    | Some { sl_wire = Some wire } ->
      ignore (Queue.pop client.pending);
      Outbuf.add_frame client.out wire;
      go ()
    | _ -> ()
  in
  go ()

(* queue one encoded response in request order: straight to the output
   buffer unless an earlier request's slot is still unfilled *)
let enqueue_response t client wire =
  Obs.Counter.add t.m_bytes_out (String.length wire + 4);
  Obs.Histogram.observe t.m_resp_bytes (String.length wire + 4);
  if Queue.is_empty client.pending then Outbuf.add_frame client.out wire
  else Queue.add { sl_wire = Some wire } client.pending

(* ------------------------------------------------------------------ *)
(* Subscription push (§2.4): the live-cluster version of the
   simulator's coalesced Notify_batch protocol.                        *)

let subs_for t table =
  match Hashtbl.find_opt t.subs table with
  | Some im -> im
  | None ->
    let im = Interval_map.create () in
    Hashtbl.add t.subs table im;
    im

let split_addr addr =
  match String.rindex_opt addr ':' with
  | Some i -> (
    match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
    | Some port -> (String.sub addr 0 i, port)
    | None -> invalid_arg ("bad peer address: " ^ addr))
  | None -> invalid_arg ("bad peer address: " ^ addr)

(* push client for a subscriber address; push mode ([handshake:false])
   and a short fuse — a home server must never stall its event loop on a
   subscriber, not even for the handshake round-trip: a subscriber
   blocked in a synchronous Fetch back to this home cannot answer a
   Welcome until we answer the Fetch. Connecting stays bounded (the OS
   accepts for a busy-but-alive peer without its loop running). *)
let peer_client t addr =
  match Hashtbl.find_opt t.peers addr with
  | Some c -> c
  | None ->
    let chost, cport = split_addr addr in
    let config =
      { Net_client.connect_timeout = 2.0; call_timeout = 5.0; max_retries = 2;
        backoff = 0.05 }
    in
    let c =
      Net_client.create ~obs:(Server.obs t.engine) ~config ~handshake:false ~host:chost
        ~port:cport ()
    in
    Hashtbl.add t.peers addr c;
    c

(* a subscriber stopped taking pushes: forget every subscription it held
   and its client, so one dead peer costs bounded retries once, not per
   write forever. Not silent for a subscriber that is in fact alive: its
   periodic Sub_check no longer lists the dropped ranges, so it refetches
   and resubscribes instead of serving a frozen copy. *)
let drop_subscriber t addr =
  Hashtbl.iter
    (fun _ im ->
      let doomed = ref [] in
      Interval_map.iter im (fun h ->
          if String.equal (Interval_map.handle_data h) addr then doomed := h :: !doomed);
      List.iter (Interval_map.remove im) !doomed)
    t.subs;
  match Hashtbl.find_opt t.peers addr with
  | Some c ->
    Net_client.close c;
    Hashtbl.remove t.peers addr
  | None -> ()

(* queue one update for every subscriber whose fetched range contains
   [key]; flushed once per read batch *)
let buffer_notify t key value_opt =
  (* a write applied while this server is mid-migration of a range
     containing [key] is part of the handoff delta: the snapshot chunk
     covering it may already have been copied *)
  (match t.dirst with
  | Some { ds_mig = Some mg; _ }
    when String.compare mg.mg_lo key <= 0 && String.compare key mg.mg_hi < 0 ->
    mg.mg_delta <- (key, value_opt) :: mg.mg_delta
  | _ -> ());
  if Hashtbl.length t.subs > 0 then
    match Hashtbl.find_opt t.subs (Pequod_store.Store.table_name_of key) with
    | None -> ()
    | Some im ->
      let targets = ref [] in
      Interval_map.stab im key (fun h -> targets := Interval_map.handle_data h :: !targets);
      List.iter
        (fun dst ->
          let prev =
            match Hashtbl.find_opt t.pending_notify dst with
            | Some items -> items
            | None ->
              t.pending_order <- dst :: t.pending_order;
              []
          in
          Hashtbl.replace t.pending_notify dst ((key, value_opt) :: prev))
        (List.sort_uniq compare !targets)

(* one Notify_batch per destination with pending updates, pushed one-way
   (a response-awaiting push could deadlock two servers fetching from
   each other). A push that fails after the client's bounded retries
   drops that subscriber. *)
let flush_notifications t =
  let order = List.rev t.pending_order in
  t.pending_order <- [];
  List.iter
    (fun dst ->
      match Hashtbl.find_opt t.pending_notify dst with
      | None | Some [] -> ()
      | Some rev_items ->
        Hashtbl.remove t.pending_notify dst;
        let items = List.rev rev_items in
        (* stamp trailer: once [items] are applied, every subscribed
           range of [dst] containing one of the pushed keys is current
           through the stamp recorded here — pushes leave in write order
           per connection, so the floor over the range at flush time is
           a sound promise *)
        let stamps = ref [] in
        List.iter
          (fun (key, _) ->
            let table = Pequod_store.Store.table_name_of key in
            match Hashtbl.find_opt t.subs table with
            | None -> ()
            | Some im ->
              Interval_map.stab im key (fun h ->
                  if String.equal (Interval_map.handle_data h) dst then begin
                    let slo, shi = Interval_map.handle_range h in
                    if
                      not
                        (List.exists
                           (fun (tb, l, h', _) ->
                             String.equal tb table && String.equal l slo
                             && String.equal h' shi)
                           !stamps)
                    then
                      stamps :=
                        ( table, slo, shi,
                          Server.range_stamp t.engine ~table ~lo:slo ~hi:shi )
                        :: !stamps
                  end))
          items;
        let stamps = List.filter (fun (_, _, _, s) -> s > 0) !stamps in
        (match Net_client.post (peer_client t dst) (Message.Notify_batch { items; stamps }) with
        | () -> Obs.Counter.incr t.m_notify_out
        | exception Net_client.Net_error msg ->
          Log.warn (fun m -> m "dropping subscriber %s: %s" dst msg);
          drop_subscriber t dst))
    order

(* ------------------------------------------------------------------ *)
(* Directory mode: write forwarding, read tallies, migration start     *)

(* call-mode client for a peer named by the directory (a write forward's
   destination home). [on_wait] nested-steps this server's own loop so
   two homes forwarding to each other cannot deadlock. *)
let call_client t ds addr =
  match Hashtbl.find_opt ds.ds_calls addr with
  | Some c -> c
  | None ->
    let chost, cport = split_addr addr in
    let config =
      { Net_client.connect_timeout = 2.0; call_timeout = 10.0; max_retries = 2;
        backoff = 0.05 }
    in
    let c =
      Net_client.create ~obs:(Server.obs t.engine) ~config
        ~on_wait:(fun () -> t.nested_step ())
        ~host:chost ~port:cport ()
    in
    Hashtbl.add ds.ds_calls addr c;
    c

(* Where must a client write for [key] be applied? [Some (ds, home)]
   when the directory names another server: after a migration flips a
   range away from this server, stale-routed writers keep sending here —
   forwarding (rather than applying to the no-longer-authoritative local
   copy) is what keeps the handoff divergence-free. *)
let forward_home t key =
  match t.dirst with
  | None -> None
  | Some ds ->
    if Directory.epoch ds.ds_dir = 0 then None (* no directory yet; apply locally *)
    else (
      match Directory.home_of ds.ds_dir ~key with
      | Some h when not (String.equal h ds.ds_self) -> Some (ds, h)
      | _ -> None)

(* Split a Put_batch by directory home, preserving per-target order;
   [None] is the local group. A server with no directory (or no epoch
   yet) yields one local group, so the static path pays one list cell. *)
let split_by_home t pairs =
  match t.dirst with
  | None -> [ (None, pairs) ]
  | Some _ ->
    let groups : (string option, (string * string) list) Hashtbl.t = Hashtbl.create 4 in
    let order = ref [] in
    List.iter
      (fun ((k, _) as p) ->
        let tgt = Option.map (fun (_, h) -> h) (forward_home t k) in
        match Hashtbl.find_opt groups tgt with
        | Some l -> Hashtbl.replace groups tgt (p :: l)
        | None ->
          order := tgt :: !order;
          Hashtbl.add groups tgt [ p ])
      pairs;
    List.rev_map (fun tgt -> (tgt, List.rev (Hashtbl.find groups tgt))) !order

let forward_call t ds dest req =
  Obs.Counter.incr ds.ds_m_redirect;
  match Net_client.call (call_client t ds dest) req with
  | resp -> resp
  | exception Net_client.Net_error msg ->
    Message.Error (Printf.sprintf "home %s: %s" dest msg)

(* Where should a read of [key] be served? [None]: locally — this
   server is the home, a listed replica (whose copy is kept fresh by its
   subscription), or the key is outside the directory (join outputs,
   un-governed tables). Otherwise the ordered candidates to try: the
   range's replicas, rotated by this server's identity so different
   forwarders spread over them, with the home always last. *)
let read_candidates t key =
  match t.dirst with
  | None -> None
  | Some ds ->
    if Directory.epoch ds.ds_dir = 0 then None
    else (
      match Directory.entry_of ds.ds_dir ~key with
      | None -> None
      | Some e ->
        if
          String.equal e.Message.de_home ds.ds_self
          || List.mem ds.ds_self e.Message.de_replicas
        then None
        else
          let cands =
            match e.Message.de_replicas with
            | [] -> [ e.Message.de_home ]
            | reps ->
              let n = List.length reps in
              let start = Hashtbl.hash ds.ds_self mod n in
              List.init n (fun i -> List.nth reps ((start + i) mod n))
              @ [ e.Message.de_home ]
          in
          Some (ds, cands))

(* forward a read, falling through the candidate list (a dead or
   refusing replica costs one hop, not the answer). A [Stale] answer —
   a replica whose copy has not caught up to a stamped read's demand —
   also falls through: the home, always last, is authoritative and can
   never be stale. *)
let read_forward t ds cands req =
  let rec go = function
    | [] -> Message.Error "no reachable server for the range"
    | [ addr ] -> forward_call t ds addr req
    | addr :: rest -> (
      match forward_call t ds addr req with
      | Message.Error _ | Message.Stale _ -> go rest
      | resp -> resp)
  in
  go cands

(* read tallies for hotspot detection (owned ranges) and the
   replica.reads counter (ranges this server replicates) *)
let tally_read t key =
  match t.dirst with
  | None -> ()
  | Some ds -> (
    match Directory.entry_of ds.ds_dir ~key with
    | None -> ()
    | Some e ->
      if String.equal e.Message.de_home ds.ds_self then begin
        if ds.ds_hot_threshold > 0. then begin
          let k = (e.Message.de_table, e.Message.de_lo, e.Message.de_hi) in
          match Hashtbl.find_opt ds.ds_reads k with
          | Some r -> incr r
          | None -> Hashtbl.add ds.ds_reads k (ref 1)
        end
      end
      else if List.mem ds.ds_self e.Message.de_replicas then
        Obs.Counter.incr ds.ds_m_replica_reads)

(* clamp a stamp demand vector to one scan segment: only the entries
   intersecting [lo, hi), each cut down to the intersection *)
let clamp_min min ~lo ~hi =
  List.filter_map
    (fun (table, dlo, dhi, s) ->
      if String.compare dlo hi < 0 && String.compare lo dhi < 0 then
        Some
          ( table,
            (if String.compare lo dlo < 0 then dlo else lo),
            (if String.compare dhi hi < 0 then dhi else hi),
            s )
      else None)
    min

(* A directory-routed scan, served piecewise: segments of [lo, hi)
   homed (or replicated) here scan the local engine, segments homed
   elsewhere forward a clamped [Scan] to a replica or the home, gaps the
   directory does not cover (join outputs, un-governed tables) stay
   local. Segments come back in key order, so concatenation is the
   ordered answer.

   [min] is a stamped read's demand vector ([] for plain scans): local
   segments below a demanded stamp heal synchronously — the stale piece
   is unmarked, so the resolver refetches it from its owner during the
   local scan — and remote segments forward a clamped [Scan_at] so each
   candidate enforces the demand on its own copy (a stale replica
   answers [Stale] and [read_forward] falls through to the home). *)
(* Synchronously re-establish a demand: drop the unprovable copies,
   then touch each dropped range through the engine so a blocking
   resolver refetches it inline and re-records the owner's stamp. The
   serving read need not scan the ranges it demands (a timeline read
   demands its sources), so dropping alone is not enough — derived
   data computed from the dropped copy stays resident and would be
   served stale. Returns the ranges still unmet afterwards: non-empty
   means freshness cannot be proven here (deferred resolver, or the
   owner is unreachable) and the caller must answer the typed [Stale]
   rather than serve data the push never refreshed. *)
let heal_demand t unmet min =
  List.iter
    (fun (table, lo, hi, _) -> Server.unmark_present t.engine ~table ~lo ~hi)
    unmet;
  List.iter
    (fun (_, lo, hi, _) ->
      match Server.scan_result t.engine ~lo ~hi with
      | _ -> ()
      | exception _ -> ())
    unmet;
  Server.stamp_unsatisfied t.engine min

let scan_directory t ds ?(min = []) ~lo ~hi () =
  let still_unmet =
    match min with
    | [] -> []
    | _ -> (
      match Server.stamp_unsatisfied t.engine min with
      | [] -> []
      | unmet ->
        Obs.Counter.incr t.m_stale_waits;
        heal_demand t unmet min)
  in
  match still_unmet with
  | _ :: _ as still ->
    Obs.Counter.incr t.m_stale_errors;
    Message.Stale still
  | [] ->
  let table = Pequod_store.Store.table_name_of lo in
  let overlapping =
    List.filter
      (fun (e : Message.dir_entry) ->
        String.equal e.de_table table
        && String.compare e.de_lo hi < 0
        && String.compare lo e.de_hi < 0)
      (Directory.entries ds.ds_dir)
    (* directory entries are kept sorted by (table, lo) *)
  in
  let segments = ref [] in
  let cursor = ref lo in
  List.iter
    (fun (e : Message.dir_entry) ->
      if String.compare !cursor e.de_lo < 0 then begin
        segments := (None, !cursor, e.de_lo) :: !segments;
        cursor := e.de_lo
      end;
      let shi = if String.compare hi e.de_hi < 0 then hi else e.de_hi in
      if String.compare !cursor shi < 0 then begin
        let tgt =
          match read_candidates t !cursor with
          | None -> None
          | Some (_, cands) -> Some cands
        in
        segments := (tgt, !cursor, shi) :: !segments;
        cursor := shi
      end)
    overlapping;
  if String.compare !cursor hi < 0 then segments := (None, !cursor, hi) :: !segments;
  let segments = List.rev !segments in
  match segments with
  | [ (None, _, _) ] | [] -> Message.apply_to_server t.engine (Message.Scan { lo; hi })
  | segs ->
    let err = ref None in
    let stale = ref [] in
    let fail m = if !err = None then err := Some m in
    let parts =
      List.map
        (fun (tgt, slo, shi) ->
          match tgt with
          | None -> (
            match Server.scan_result t.engine ~lo:slo ~hi:shi with
            | `Ok pairs -> pairs
            | `Missing ((mt, mlo, mhi) :: _) ->
              fail
                (Printf.sprintf "missing base range %s[%s,%s): owning peer unreachable"
                   mt mlo mhi);
              []
            | `Missing [] -> []
            | exception e ->
              fail (Printexc.to_string e);
              [])
          | Some cands -> (
            let seg_req =
              match clamp_min min ~lo:slo ~hi:shi with
              | [] -> Message.Scan { lo = slo; hi = shi }
              | m -> Message.Scan_at { lo = slo; hi = shi; min = m }
            in
            match read_forward t ds cands seg_req with
            | Message.Pairs pairs -> pairs
            | Message.Stale st ->
              stale := st @ !stale;
              []
            | Message.Error m ->
              fail m;
              []
            | _ ->
              fail "unexpected scan response";
              []))
        segs
    in
    (match (!stale, !err) with
    | _ :: _, _ -> Message.Stale !stale
    | [], Some m -> Message.Error m
    | [], None -> Message.Pairs (List.concat parts))

(* start a [Migrate]: validate against the directory, then hand off to
   the per-step pump ([pump_migration]); the requesting connection is
   answered only when the handoff completes (or fails) *)
let start_migration t client ~table ~lo ~hi ~dest =
  match t.dirst with
  | None -> Some (Message.Error "no partition directory on this server")
  | Some ds ->
    if ds.ds_mig <> None then Some (Message.Error "a migration is already in progress")
    else if Directory.epoch ds.ds_dir = 0 then
      Some (Message.Error "no directory epoch yet; seed the directory first")
    else if String.equal dest ds.ds_self then
      Some (Message.Error "destination is this server")
    else begin
      (* dry-run the flip now so a doomed migration fails before any
         data moves: the range must be fully covered, by one home *)
      match Directory.assign (Directory.entries ds.ds_dir) ~table ~lo ~hi ~home:dest with
      | Error msg -> Some (Message.Error msg)
      | Ok _ ->
        if not (Directory.home_of ds.ds_dir ~key:lo = Some ds.ds_self) then
          Some
            (Message.Error
               (Printf.sprintf "this server is not the home of %s[%s,%s)" table lo hi))
        else begin
          Log.app (fun m -> m "migrating %s[%s,%s) to %s" table lo hi dest);
          ds.ds_mig <-
            Some
              { mg_table = table; mg_lo = lo; mg_hi = hi; mg_dest = dest;
                mg_cursor = lo; mg_delta = []; mg_keys = 0; mg_deltas = 0;
                mg_reply = client.fd };
          None (* deferred: the pump answers on completion *)
        end
    end

(* ------------------------------------------------------------------ *)
(* Parked scans: a miss never blocks the loop                          *)

(* a parked scan that keeps discovering new ranges (each feed can unlock
   further check-gated value ranges) retries at most this many times *)
let max_park_retries = 64

let missing_error = function
  | (table, flo, fhi) :: _ ->
    Message.Error
      (Printf.sprintf "missing base range %s[%s,%s): owning peer unreachable" table flo fhi)
  | [] -> Message.Error "missing base range: owning peer unreachable"

(* fill a deferred response slot and flush whatever prefix is ready *)
let fill_slot t client slot response =
  let wire = Message.encode_response response in
  Obs.Counter.add t.m_bytes_out (String.length wire + 4);
  Obs.Histogram.observe t.m_resp_bytes (String.length wire + 4);
  slot.sl_wire <- Some wire;
  if client.alive then begin
    flush_ready client;
    flush_output t client
  end

(* Park a scan whose base ranges are missing: enqueue its in-order
   response slot, hand the full missing set to the fetcher, and retry
   the scan when the fetches land. A retry may surface ranges that were
   unreachable before the feed (a check source gates which value ranges
   are scanned), so the loop runs until the scan completes or the retry
   budget is spent. The connection stays live throughout: later
   pipelined requests are served (their responses queue behind this
   slot) and other connections never notice — the miss no longer
   head-of-line blocks the loop.

   [slot] reuses an already-enqueued response slot: a stamped read that
   parked for freshness first and then found ranges missing keeps its
   pipeline position. *)
let park_scan ?slot t client ~lo ~hi ranges =
  Obs.Counter.incr t.m_scan_parked;
  let fetcher = match t.fetcher with Some f -> f | None -> assert false in
  let slot =
    match slot with
    | Some s -> s
    | None ->
      let s = { sl_wire = None } in
      Queue.add s client.pending;
      s
  in
  let t0 = Obs.now_ns () in
  let tries = ref 0 in
  let finish response =
    Obs.Histogram.observe t.m_fetch_wait (Obs.now_ns () - t0);
    fill_slot t client slot response
  in
  let rec attempt ranges =
    fetcher ranges (fun ~ok ->
        if not ok then finish (missing_error ranges)
        else
          match Server.scan_result t.engine ~lo ~hi with
          | `Ok pairs -> finish (Message.Pairs pairs)
          | `Missing ranges' ->
            incr tries;
            if !tries > max_park_retries then finish (missing_error ranges')
            else attempt ranges'
          | exception e -> finish (Message.Error (Printexc.to_string e)))
  in
  attempt ranges

(* ------------------------------------------------------------------ *)
(* Parked stamped reads: freshness never blocks the loop either        *)

(* The push normally lands within one event-loop step of the write ack
   (the owner flushes notifications in the same cycle as the ack), so a
   short grace is enough; past it a refetch — one fetch round trip — is
   far cheaper than keeping the reader parked. *)
let stamp_refetch_after_ns = 5_000_000 (* give the push 5ms to catch up *)
let stamp_deadline_ns = 2_000_000_000 (* then the read fails [Stale] *)

(* park a stamped read whose demand is not yet satisfied; the per-step
   pump below re-checks it *)
let park_stamped t client req ~min =
  let slot = { sl_wire = None } in
  Queue.add slot client.pending;
  t.stamp_waits <-
    { sw_client = client; sw_slot = slot; sw_req = req; sw_min = min;
      sw_t0 = Obs.now_ns (); sw_refetched = false; sw_fetching = false;
      sw_fetch_failed = false }
    :: t.stamp_waits

(* One pump pass over the parked stamped reads, called once per step:
   a wait whose demand the subscription push has satisfied is served; a
   wait older than [stamp_refetch_after_ns] drops its stale pieces so
   the serve refetches them from their owner; a wait older than
   [stamp_deadline_ns] fails with the typed [Stale] carrying the unmet
   sub-ranges. *)
let pump_stamp_waits t =
  match t.stamp_waits with
  | [] -> ()
  | waits ->
    t.stamp_waits <- [];
    let keep = ref [] in
    List.iter
      (fun w ->
        if w.sw_client.alive then begin
          let serve () =
            (* serving re-enters the engine (and may park on missing
               ranges): flag it like any request handler *)
            let saved = t.in_engine in
            t.in_engine <- true;
            Fun.protect ~finally:(fun () -> t.in_engine <- saved) @@ fun () ->
            Obs.Histogram.observe t.m_stamp_wait (Obs.now_ns () - w.sw_t0);
            match w.sw_req with
            | Message.Get_at { key; _ } ->
              let resp =
                match Server.get t.engine key with
                | v -> Message.Value v
                | exception e -> Message.Error (Printexc.to_string e)
              in
              fill_slot t w.sw_client w.sw_slot resp
            | Message.Scan_at { lo; hi; _ } -> (
              match Server.scan_result t.engine ~lo ~hi with
              | `Ok pairs -> fill_slot t w.sw_client w.sw_slot (Message.Pairs pairs)
              | `Missing ranges when t.fetcher <> None ->
                park_scan ~slot:w.sw_slot t w.sw_client ~lo ~hi ranges
              | `Missing missing -> fill_slot t w.sw_client w.sw_slot (missing_error missing)
              | exception e ->
                fill_slot t w.sw_client w.sw_slot (Message.Error (Printexc.to_string e)))
            | _ -> assert false
          in
          match Server.stamp_unsatisfied t.engine w.sw_min with
          | [] -> serve ()
          | unmet ->
            let waited = Obs.now_ns () - w.sw_t0 in
            if waited >= stamp_deadline_ns then begin
              Obs.Counter.incr t.m_stale_errors;
              Obs.Histogram.observe t.m_stamp_wait waited;
              fill_slot t w.sw_client w.sw_slot (Message.Stale unmet)
            end
            else begin
              if waited >= stamp_refetch_after_ns && not w.sw_refetched then begin
                (* the push is not catching up: drop the stale copies
                   and fetch them back explicitly. The serve need not
                   scan the ranges it demands (a timeline read demands
                   its sources), so dropping alone would let derived
                   data the push never refreshed be served as fresh —
                   only a completed refetch, which re-records the
                   owner's stamp, discharges the demand. *)
                w.sw_refetched <- true;
                List.iter
                  (fun (table, lo, hi, _) -> Server.unmark_present t.engine ~table ~lo ~hi)
                  unmet;
                match t.fetcher with
                | Some fetch ->
                  w.sw_fetching <- true;
                  fetch
                    (List.map (fun (table, lo, hi, _) -> (table, lo, hi)) unmet)
                    (fun ~ok ->
                      w.sw_fetching <- false;
                      if not ok then w.sw_fetch_failed <- true)
                | None ->
                  (* blocking resolver: touch each dropped range so it
                     refetches inline *)
                  List.iter
                    (fun (_, lo, hi, _) ->
                      match Server.scan_result t.engine ~lo ~hi with
                      | _ -> ()
                      | exception _ -> ())
                    unmet
              end;
              if w.sw_fetch_failed then begin
                (* the owner is unreachable: freshness cannot be
                   re-established, so fail honestly and fast *)
                Obs.Counter.incr t.m_stale_errors;
                Obs.Histogram.observe t.m_stamp_wait waited;
                fill_slot t w.sw_client w.sw_slot (Message.Stale unmet)
              end
              else if
                w.sw_refetched && (not w.sw_fetching)
                && Server.stamp_unsatisfied t.engine w.sw_min = []
              then serve ()
              else keep := w :: !keep
            end
        end)
      waits;
    t.stamp_waits <- !keep @ t.stamp_waits

(* Serve a stamped read: answer immediately when the demand is already
   satisfied; otherwise park on the async path (fetcher present), or —
   on the blocking path — heal synchronously by unmarking the stale
   pieces so the engine's resolver refetches them inline during the
   read. *)
let serve_stamped t client ~may_park req ~min =
  let answer () =
    match req with
    | Message.Get_at { key; _ } -> (
      match Server.get t.engine key with
      | v -> Some (Message.Value v)
      | exception e -> Some (Message.Error (Printexc.to_string e)))
    | Message.Scan_at { lo; hi; _ } -> (
      match Server.scan_result t.engine ~lo ~hi with
      | `Ok pairs -> Some (Message.Pairs pairs)
      | `Missing ranges ->
        if t.fetcher <> None && may_park then begin
          park_scan t client ~lo ~hi ranges;
          None
        end
        else Some (missing_error ranges)
      | exception e -> Some (Message.Error (Printexc.to_string e)))
    | _ -> assert false
  in
  match Server.stamp_unsatisfied t.engine min with
  | [] -> answer ()
  | unmet ->
    Obs.Counter.incr t.m_stale_waits;
    if t.fetcher <> None && may_park then begin
      park_stamped t client req ~min;
      None
    end
    else begin
      match heal_demand t unmet min with
      | [] -> answer ()
      | still ->
        Obs.Counter.incr t.m_stale_errors;
        Some (Message.Stale still)
    end

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

(* [None] for one-way requests: they produce no response frame.
   [may_park] marks call sites whose result is returned to [client]
   directly (so a scan may defer its response into a slot); composite
   paths — the shard scatter merge — must get an immediate answer. *)
let rec handle_local ?(may_park = false) t client req =
  let saved = t.in_engine in
  t.in_engine <- true;
  Fun.protect ~finally:(fun () -> t.in_engine <- saved) @@ fun () ->
  handle_local_engine ~may_park t client req

and handle_local_engine ~may_park t client req =
  match req with
  | Message.Fetch { table; lo; hi; subscriber } -> (
    Obs.Counter.incr t.m_fetch_in;
    tally_read t lo;
    match
      (* directory mode: refuse to grant a subscription on a range the
         directory homes elsewhere (unless this server replicates it —
         a replica's copy is subscription-fresh, so middleman serving
         is sound). A post-migration straggler fetching from the old
         home gets an error and replans off its refreshed directory,
         instead of a frozen snapshot. *)
      match t.dirst with
      | Some ds when Directory.epoch ds.ds_dir > 0 -> (
        match Directory.entry_of ds.ds_dir ~key:lo with
        | Some e
          when (not (String.equal e.Message.de_home ds.ds_self))
               && not (List.mem ds.ds_self e.Message.de_replicas) ->
          Some e.Message.de_home
        | _ -> None)
      | _ -> None
    with
    | Some home ->
      Some
        (Message.Error
           (Printf.sprintf "not the home for %s[%s,%s) (directory names %s)" table lo hi
              home))
    | None -> (
    (* refetches of the same range by the same subscriber (eviction
       pressure, subscription healing) are idempotent on the subs
       table: an identical live entry is reused, never duplicated,
       so a long-lived subscriber cannot grow it without bound *)
    let im = subs_for t table in
    let already = ref false in
    Interval_map.iter_overlapping im ~lo ~hi (fun h ->
        if
          (not !already)
          && Interval_map.handle_range h = (lo, hi)
          && String.equal (Interval_map.handle_data h) subscriber
        then already := true);
    (* install the subscription before snapshotting: a write landing
       in between is pushed as well, and the duplicate application
       at the subscriber is idempotent *)
    let handle =
      if subscriber = "" || !already then None
      else Some (Interval_map.add im ~lo ~hi subscriber)
    in
    match Server.scan_result t.engine ~lo ~hi with
    | `Ok pairs ->
      (* the stamp this snapshot is current through: the subscriber
         records it, and session reads demand at least it *)
      Some (Message.Subscribed { stamp = Server.range_stamp t.engine ~table ~lo ~hi; pairs })
    | `Missing _ ->
      (* this server does not own the range; rescind the subscription *)
      Option.iter (Interval_map.remove (subs_for t table)) handle;
      Some (Message.Error (Printf.sprintf "not the home for %s[%s,%s)" table lo hi))
    | exception e ->
      Option.iter (Interval_map.remove (subs_for t table)) handle;
      Some (Message.Error (Printexc.to_string e))))
  | Message.Sub_check { subscriber } ->
    (* subscription heartbeat: report every range still pushed to
       this subscriber, so it can detect (and heal) a drop *)
    let ranges = ref [] in
    Hashtbl.iter
      (fun table im ->
        Interval_map.iter im (fun h ->
            if String.equal (Interval_map.handle_data h) subscriber then begin
              let lo, hi = Interval_map.handle_range h in
              ranges := (table, lo, hi) :: !ranges
            end))
      t.subs;
    Some (Message.Sub_ranges (List.sort compare !ranges))
  | Message.Notify_put (k, v) ->
    ignore (Message.apply_to_server t.engine req);
    Obs.Counter.incr t.m_notify_in;
    buffer_notify t k (Some v);
    None
  | Message.Notify_remove k ->
    ignore (Message.apply_to_server t.engine req);
    Obs.Counter.incr t.m_notify_in;
    buffer_notify t k None;
    None
  | Message.Notify_batch { items; _ } ->
    (* [apply_to_server] applies the items and records the stamp
       trailer, so the freshness promise lands with the data *)
    ignore (Message.apply_to_server t.engine req);
    Obs.Counter.incr t.m_notify_in;
    List.iter (fun (k, v) -> buffer_notify t k v) items;
    None
  | Message.Put (k, v) -> (
    match forward_home t k with
    | Some (ds, dest) -> Some (forward_call t ds dest req)
    | None ->
      let resp = Message.apply_to_server t.engine req in
      buffer_notify t k (Some v);
      Some resp)
  | Message.Remove k -> (
    match forward_home t k with
    | Some (ds, dest) -> Some (forward_call t ds dest req)
    | None ->
      let resp = Message.apply_to_server t.engine req in
      buffer_notify t k None;
      Some resp)
  | Message.Put_batch pairs -> (
    match split_by_home t pairs with
    | [] | [ (None, _) ] ->
      let resp = Message.apply_to_server t.engine req in
      List.iter (fun (k, v) -> buffer_notify t k (Some v)) pairs;
      Some resp
    | groups ->
      let ds = Option.get t.dirst in
      let err = ref None in
      let vec = ref [] in
      List.iter
        (fun (target, sub) ->
          match target with
          | None ->
            (match Message.apply_to_server t.engine (Message.Put_batch sub) with
            | Message.Stamps s -> vec := s :: !vec
            | _ -> ());
            List.iter (fun (k, v) -> buffer_notify t k (Some v)) sub
          | Some dest -> (
            match forward_call t ds dest (Message.Put_batch sub) with
            | Message.Stamps s -> vec := s :: !vec
            | Message.Done -> ()
            | Message.Error m -> if !err = None then err := Some m
            | _ -> if !err = None then err := Some "unexpected forward response"))
        groups;
      Some
        (match !err with
        | None -> Message.Stamps (List.concat (List.rev !vec))
        | Some m -> Message.Error m))
  | Message.Get k -> (
    tally_read t k;
    match read_candidates t k with
    | Some (ds, cands) -> Some (read_forward t ds cands req)
    | None -> Some (Message.apply_to_server t.engine req))
  | Message.Scan { lo; hi } -> (
    tally_read t lo;
    match t.dirst with
    | Some ds when Directory.epoch ds.ds_dir > 0 -> Some (scan_directory t ds ~lo ~hi ())
    | _ -> (
      match t.fetcher with
      | Some _ when may_park -> (
        match Server.scan_result t.engine ~lo ~hi with
        | `Ok pairs -> Some (Message.Pairs pairs)
        | `Missing ranges ->
          park_scan t client ~lo ~hi ranges;
          None
        | exception e -> Some (Message.Error (Printexc.to_string e)))
      | _ -> Some (Message.apply_to_server t.engine req)))
  | Message.Get_at { key; min } -> (
    Obs.Counter.incr t.m_session_reads;
    tally_read t key;
    match read_candidates t key with
    | Some (ds, cands) -> Some (read_forward t ds cands req)
    | None -> serve_stamped t client ~may_park req ~min)
  | Message.Scan_at { lo; hi; min } -> (
    Obs.Counter.incr t.m_session_reads;
    tally_read t lo;
    match t.dirst with
    | Some ds when Directory.epoch ds.ds_dir > 0 -> Some (scan_directory t ds ~min ~lo ~hi ())
    | _ -> serve_stamped t client ~may_park req ~min)
  | Message.Dir_get | Message.Dir_watch _ | Message.Dir_update _ -> (
    match t.dirst with
    | None -> Some (Message.Error "no partition directory on this server")
    | Some ds -> (
      let state () =
        Message.Dir_state
          { epoch = Directory.epoch ds.ds_dir; entries = Directory.entries ds.ds_dir }
      in
      match req with
      | Message.Dir_get -> Some (state ())
      | Message.Dir_watch { epoch } ->
        if Directory.epoch ds.ds_dir > epoch then Some (state ()) else Some Message.Done
      | Message.Dir_update { epoch; entries } -> (
        match Directory.install ds.ds_dir ~epoch ~entries with
        | Ok () ->
          Obs.Gauge.set ds.ds_m_epoch epoch;
          Log.info (fun m ->
              m "directory updated to epoch %d (%d entries)" epoch (List.length entries));
          Some Message.Done
        | Error msg -> Some (Message.Error msg))
      | _ -> assert false))
  | Message.Migrate { table; lo; hi; dest } -> start_migration t client ~table ~lo ~hi ~dest
  | req -> Some (Message.apply_to_server t.engine req)

(* requests whose kind only reaches a shard's own listener as a sibling
   forward (never as fetch/subscription/heartbeat traffic): the
   conservation invariant sum(shard.forward.in) == sum(shard.forward.out)
   across shards counts exactly these *)
let forward_kind = function
  | Message.Get _ | Message.Put _ | Message.Remove _ | Message.Put_batch _
  | Message.Add_join _ | Message.Scan _ | Message.Get_at _ | Message.Scan_at _ ->
    true
  | _ -> false

let sibling_error e =
  match e with
  | Net_client.Net_error msg -> Message.Error ("sibling shard: " ^ msg)
  | e -> Message.Error (Printexc.to_string e)

(* merge two key-sorted pair lists, dropping duplicate keys (a fetched
   copy on one shard duplicates the owner's pair; a join output is
   computed identically on every shard that materialized it). Left
   wins on ties, so the serving shard's freshly computed value is kept. *)
let merge_dedup a b =
  let rec go acc a b =
    match (a, b) with
    | [], l | l, [] -> List.rev_append acc l
    | ((ka, _) as x) :: a', ((kb, _) as y) :: b' ->
      let c = String.compare ka kb in
      if c < 0 then go (x :: acc) a' b
      else if c > 0 then go (y :: acc) a b'
      else go (x :: acc) a' b'
  in
  go [] a b

(* Split [items] by owning shard, preserving per-owner order; returns the
   groups in first-appearance order as (owner, items) pairs. *)
let split_by_owner rt key_of items =
  let groups : (int, 'a list) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun item ->
      let o = rt.rt_owner (key_of item) in
      match Hashtbl.find_opt groups o with
      | Some l -> Hashtbl.replace groups o (item :: l)
      | None ->
        order := o :: !order;
        Hashtbl.add groups o [ item ])
    items;
  List.rev_map (fun o -> (o, List.rev (Hashtbl.find groups o))) !order

(* route one decoded request: only acceptor-handed connections are
   routed; everything arriving on this shard's own listener is local *)
let dispatch t client req =
  match t.router with
  | None -> handle_local ~may_park:true t client req
  | Some rt ->
    Obs.Counter.incr rt.rm_ops;
    if not client.injected then begin
      if forward_kind req then Obs.Counter.incr rt.rm_forward_in;
      (* a sibling forward is answered on this connection in pipeline
         order like any direct client, so its scans may park too *)
      handle_local ~may_park:true t client req
    end
    else begin
      Obs.Counter.incr rt.rm_client_ops;
      match req with
      | Message.Get k | Message.Put (k, _) | Message.Remove k
      | Message.Get_at { key = k; _ } ->
        let o = rt.rt_owner k in
        if o = rt.rt_self then handle_local t client req
        else begin
          Obs.Counter.incr rt.rm_forward_out;
          match rt.rt_call o req with
          | resp -> Some resp
          | exception e -> Some (sibling_error e)
        end
      | Message.Notify_put (k, _) | Message.Notify_remove k ->
        let o = rt.rt_owner k in
        if o = rt.rt_self then handle_local t client req
        else begin
          (try rt.rt_post o req
           with Net_client.Net_error msg ->
             Log.warn (fun m -> m "notify forward to shard %d failed: %s" o msg));
          None
        end
      | Message.Put_batch pairs ->
        let err = ref None in
        let vec = ref [] in
        List.iter
          (fun (o, sub) ->
            if o = rt.rt_self then (
              match handle_local t client (Message.Put_batch sub) with
              | Some (Message.Stamps s) -> vec := s :: !vec
              | _ -> ())
            else begin
              Obs.Counter.incr rt.rm_forward_out;
              match rt.rt_call o (Message.Put_batch sub) with
              | Message.Stamps s -> vec := s :: !vec
              | Message.Done -> ()
              | Message.Error m -> if !err = None then err := Some m
              | _ -> if !err = None then err := Some "unexpected forward response"
              | exception e -> (
                if !err = None then
                  match sibling_error e with
                  | Message.Error m -> err := Some m
                  | _ -> ())
            end)
          (split_by_owner rt fst pairs);
        Some
          (match !err with
          | None -> Message.Stamps (List.concat (List.rev !vec))
          | Some m -> Message.Error m)
      | Message.Notify_batch { items; stamps } ->
        (* items and stamp-trailer entries both split by owning shard;
           a trailer entry with no items for its owner still travels
           (as an item-less batch) so the promise is never dropped *)
        let stamps_for o = List.filter (fun (_, slo, _, _) -> rt.rt_owner slo = o) stamps in
        let groups = split_by_owner rt fst items in
        let covered = List.map fst groups in
        let extra =
          List.sort_uniq compare
            (List.filter_map
               (fun (_, slo, _, _) ->
                 let o = rt.rt_owner slo in
                 if List.mem o covered then None else Some o)
               stamps)
        in
        let send o sub =
          let msg = Message.Notify_batch { items = sub; stamps = stamps_for o } in
          if o = rt.rt_self then ignore (handle_local t client msg)
          else
            try rt.rt_post o msg
            with Net_client.Net_error msg ->
              Log.warn (fun m -> m "notify forward to shard %d failed: %s" o msg)
        in
        List.iter (fun (o, sub) -> send o sub) groups;
        List.iter (fun o -> send o []) extra;
        None
      | Message.Add_join _ -> (
        (* install on every shard: each materializes the join for the
           timeline slices its clients scan *)
        match handle_local t client req with
        | Some Message.Done ->
          let err = ref None in
          List.iter
            (fun o ->
              Obs.Counter.incr rt.rm_forward_out;
              match rt.rt_call o req with
              | Message.Done -> ()
              | Message.Error m -> if !err = None then err := Some m
              | _ -> if !err = None then err := Some "unexpected forward response"
              | exception e -> (
                if !err = None then
                  match sibling_error e with
                  | Message.Error m -> err := Some m
                  | _ -> ()))
            rt.rt_siblings;
          Some (match !err with None -> Message.Done | Some m -> Message.Error m)
        | other -> other)
      | Message.Stats_full -> (
        match rt.rt_stats () with
        | metrics -> Some (Message.Metrics metrics)
        | exception e -> Some (sibling_error e))
      | Message.Scan { lo; hi } -> (
        (* a range confined to one shard's slice is served entirely by
           its owner: the join outputs it covers are computed there from
           source slices that resolve through the engine's resolver
           (fetch+subscribe), so the data arrives — and stays fresh —
           over the same §2.4 path a compute server uses. A range that
           spans slices (or tables) is scattered: every shard reports
           the keys it holds — its owned slice of every table plus any
           fetched copies and computed outputs — and the union, deduped
           by key, is the full answer *)
        match rt.rt_route_scan ~lo ~hi with
        | Some o ->
          if o = rt.rt_self then handle_local ~may_park:true t client req
          else begin
            Obs.Counter.incr rt.rm_forward_out;
            match rt.rt_call o req with
            | resp -> Some resp
            | exception e -> Some (sibling_error e)
          end
        | None -> (
          match handle_local t client req with
          | Some (Message.Pairs local) ->
            let err = ref None in
            let remote =
              List.map
                (fun o ->
                  Obs.Counter.incr rt.rm_forward_out;
                  match rt.rt_call o req with
                  | Message.Pairs ps -> ps
                  | Message.Error m ->
                    if !err = None then err := Some m;
                    []
                  | _ ->
                    if !err = None then err := Some "unexpected scan response";
                    []
                  | exception e ->
                    (if !err = None then
                       match sibling_error e with
                       | Message.Error m -> err := Some m
                       | _ -> ());
                    [])
                rt.rt_siblings
            in
            (match !err with
            | Some m -> Some (Message.Error m)
            | None -> Some (Message.Pairs (List.fold_left merge_dedup local remote)))
          | other -> other))
      | Message.Scan_at { lo; hi; min } -> (
        (* routed like [Scan]; each shard enforces the demand on its own
           slice. The scatter's local leg heals synchronously (the merge
           needs an immediate answer) and siblings answering [Stale]
           make the whole scan [Stale]. *)
        match rt.rt_route_scan ~lo ~hi with
        | Some o ->
          if o = rt.rt_self then handle_local ~may_park:true t client req
          else begin
            Obs.Counter.incr rt.rm_forward_out;
            match rt.rt_call o req with
            | resp -> Some resp
            | exception e -> Some (sibling_error e)
          end
        | None -> (
          let still_unmet =
            match Server.stamp_unsatisfied t.engine min with
            | [] -> []
            | unmet ->
              Obs.Counter.incr t.m_stale_waits;
              heal_demand t unmet min
          in
          match still_unmet with
          | _ :: _ as still ->
            Obs.Counter.incr t.m_stale_errors;
            Some (Message.Stale still)
          | [] -> (
          match handle_local t client (Message.Scan { lo; hi }) with
          | Some (Message.Pairs local) ->
            let err = ref None in
            let stale = ref [] in
            let remote =
              List.map
                (fun o ->
                  Obs.Counter.incr rt.rm_forward_out;
                  match rt.rt_call o req with
                  | Message.Pairs ps -> ps
                  | Message.Stale st ->
                    stale := st @ !stale;
                    []
                  | Message.Error m ->
                    if !err = None then err := Some m;
                    []
                  | _ ->
                    if !err = None then err := Some "unexpected scan response";
                    []
                  | exception e ->
                    (if !err = None then
                       match sibling_error e with
                       | Message.Error m -> err := Some m
                       | _ -> ());
                    [])
                rt.rt_siblings
            in
            (match (!stale, !err) with
            | _ :: _, _ -> Some (Message.Stale !stale)
            | [], Some m -> Some (Message.Error m)
            | [], None -> Some (Message.Pairs (List.fold_left merge_dedup local remote)))
          | other -> other)))
      | Message.Hello _ | Message.Fetch _ | Message.Sub_check _ ->
        (* fetches and subscription checks are the intra-cluster
           protocol itself: always against this shard's own slice *)
        handle_local t client req
      | Message.Dir_get | Message.Dir_watch _ | Message.Dir_update _
      | Message.Migrate _ ->
        (* the partition directory is a whole-process concern (and is
           not enabled in sharded mode anyway) *)
        handle_local t client req
    end

(* one frame, decoded straight out of the receive buffer (no copy) *)
let handle_frame t client buf ~off ~len =
  Obs.Counter.incr t.m_rpcs;
  Obs.Histogram.observe t.m_req_bytes len;
  let resp =
    match Message.decode_request_view buf ~off ~len with
    | req ->
      (* per-kind RPC tally; pequod's whole evaluation counts messages *)
      if !Obs.enabled then
        Obs.Counter.incr
          (Obs.counter (Server.obs t.engine) ("rpc." ^ Message.request_kind req));
      dispatch t client req
    | exception Message.Protocol_error msg ->
      Some (Message.Error ("protocol error: " ^ msg))
    | exception e -> Some (Message.Error (Printexc.to_string e))
  in
  match resp with
  | None -> ()
  | Some response -> enqueue_response t client (Message.encode_response response)

(* receive buffers for [handle_readable]: a pool rather than one shared
   buffer because a nested step (serving while blocked on a sibling
   call) must not overwrite the outer step's in-flight frame views *)
let pop_read_buf t =
  match t.read_bufs with
  | b :: rest ->
    t.read_bufs <- rest;
    b
  | [] -> Bytes.create 65_536

let push_read_buf t b = t.read_bufs <- b :: t.read_bufs

let handle_readable t client =
  let buf = pop_read_buf t in
  Fun.protect ~finally:(fun () -> push_read_buf t buf) @@ fun () ->
  match Unix.read client.fd buf 0 (Bytes.length buf) with
  | 0 -> drop t client
  | n -> (
    Obs.Counter.add t.m_bytes_in n;
    client.busy <- true;
    match
      Fun.protect
        ~finally:(fun () -> client.busy <- false)
        (fun () ->
          (* all responses for one read are accumulated in the client's
             output buffer and flushed once: a pipelined batch (e.g. the
             CLI's --load chunks) costs one syscall out, not one per
             frame *)
          Frame.feed_bytes client.decoder buf 0 n ~frame:(handle_frame t client))
    with
    | () ->
      if Outbuf.length client.out > 0 then flush_output t client;
      (* after the whole batch: one coalesced push per subscriber *)
      flush_notifications t
    | exception Frame.Frame_too_large _ -> drop t client)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> drop t client

let register t fd ~injected =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let client =
    { fd; peer = peer_name fd; decoder = Frame.decoder (); out = Outbuf.create ();
      want_write = false; busy = false; injected; pending = Queue.create ();
      alive = true }
  in
  Log.info (fun m -> m "client %s connected%s" client.peer
      (if injected then " (via acceptor)" else ""));
  Hashtbl.replace t.conns fd client;
  Obs.Gauge.set t.m_conns (Hashtbl.length t.conns);
  Poller.set t.poller fd ~read:true ~write:false

let accept_clients t =
  let rec go () =
    match Unix.accept t.listener with
    | fd, _ ->
      register t fd ~injected:false;
      go ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Cross-domain entry points                                           *)

let wake t =
  try ignore (Unix.write_substring t.wakeup_w "x" 0 1)
  with Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EPIPE | Unix.EBADF), _, _) ->
    ()

(** Hand an accepted connection to this server's loop (thread-safe; the
    shard acceptor domain calls this). The loop adopts the fd on its
    next step. *)
let inject t fd =
  Mutex.lock t.inj_mu;
  Queue.add fd t.inj_q;
  Mutex.unlock t.inj_mu;
  wake t

(** Ask the loop to exit (thread-safe): {!run} returns after the current
    step. Resource teardown stays with the owning domain ({!stop}). *)
let request_stop t =
  Atomic.set t.shutdown true;
  wake t

let drain_wakeup t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wakeup_r b 0 (Bytes.length b) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  in
  go ()

let drain_injected t =
  Mutex.lock t.inj_mu;
  Obs.Gauge.set t.m_queue_depth (Queue.length t.inj_q);
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] t.inj_q in
  Queue.clear t.inj_q;
  Mutex.unlock t.inj_mu;
  List.iter (fun fd -> register t fd ~injected:true) (List.rev fds)

(* ------------------------------------------------------------------ *)
(* Migration pump: drives at most one live range handoff, one bounded
   batch of work per event-loop step, so the source keeps serving
   while the copy runs.                                                *)

exception Mig_fail of string

(* a blocking (no [on_wait]) client for the final replay-and-flip: while
   it is in flight this loop processes nothing, so no write can land
   between the last delta item and the epoch flip *)
let mig_client t addr =
  let chost, cport = split_addr addr in
  let config =
    { Net_client.connect_timeout = 2.0; call_timeout = 15.0; max_retries = 2;
      backoff = 0.05 }
  in
  Net_client.create ~obs:(Server.obs t.engine) ~config ~host:chost ~port:cport ()

let mig_barrier c =
  (* any synchronous, locally-handled call: the response proves every
     frame posted before it on this connection has been applied (frames
     are processed in order per connection). Dir_get is answered from
     the destination's own directory copy and never forwarded — a [Get]
     for a key in the moving range would bounce straight back to this
     (blocked) server, because the destination still routes the range
     here until the epoch flips. *)
  match Net_client.call c Message.Dir_get with
  | Message.Dir_state _ -> ()
  | Message.Error msg -> raise (Mig_fail msg)
  | _ -> raise (Mig_fail "unexpected barrier response")
  | exception Net_client.Net_error msg -> raise (Mig_fail msg)

(* feed [items] ((key, Some v | None) in write order) to [c] as posted
   Notify_batch frames. Notify — not Put — so the receiver applies them
   locally instead of re-forwarding through its own directory (which
   still names this server as the range's home until the flip). *)
let mig_feed c items =
  let rec chunks = function
    | [] -> ()
    | items ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (n - 1) (x :: acc) rest
      in
      let batch, rest = take 1024 [] items in
      (match Net_client.post c (Message.Notify_batch { items = batch; stamps = [] }) with
      | () -> ()
      | exception Net_client.Net_error msg -> raise (Mig_fail msg));
      chunks rest
  in
  chunks items

let finish_migration t ds mg resp =
  ds.ds_mig <- None;
  (match resp with
  | Message.Error msg ->
    Log.err (fun m ->
        m
          "migration of %s[%s,%s) to %s failed after %d keys: %s (directory unchanged; \
           re-run the migration)"
          mg.mg_table mg.mg_lo mg.mg_hi mg.mg_dest mg.mg_keys msg)
  | _ ->
    Log.app (fun m ->
        m "migration of %s[%s,%s) to %s complete: %d keys, %d delta writes" mg.mg_table
          mg.mg_lo mg.mg_hi mg.mg_dest mg.mg_keys mg.mg_deltas));
  match Hashtbl.find_opt t.conns mg.mg_reply with
  | None -> () (* the requesting ctl client went away *)
  | Some client ->
    enqueue_response t client (Message.encode_response resp);
    flush_output t client

(* the copy is done: atomically replay the delta, flip the directory
   epoch, hand over subscribers, and release local ownership *)
let complete_migration t ds mg =
  let { mg_table = table; mg_lo = lo; mg_hi = hi; mg_dest = dest; _ } = mg in
  let destc = mig_client t dest in
  Fun.protect ~finally:(fun () -> Net_client.close destc) @@ fun () ->
  (* 1. replay the write delta captured during the copy. [destc] never
     nested-steps this loop, so nothing can append to the delta (or
     write to the range at all) until the flip below is visible. *)
  let rec drain () =
    match mg.mg_delta with
    | [] -> ()
    | d ->
      mg.mg_delta <- [];
      let items = List.rev d in
      mg.mg_deltas <- mg.mg_deltas + List.length items;
      Obs.Counter.add ds.ds_m_delta (List.length items);
      mig_feed destc items;
      drain ()
  in
  drain ();
  (* hand the range's version stamps over before the flip: the new
     home's counter must continue where this one stops, or a session's
     acked stamp could exceed anything the new home ever issues *)
  (let stamp_trailer =
     List.filter_map
       (fun (tb, slo, shi, s) ->
         if
           String.equal tb table
           && String.compare slo hi < 0
           && String.compare lo shi < 0
         then
           Some
             ( tb,
               (if String.compare slo lo < 0 then lo else slo),
               (if String.compare hi shi < 0 then hi else shi),
               s )
         else None)
       (Server.stamp_ranges t.engine)
   in
   if stamp_trailer <> [] then
     match
       Net_client.post destc (Message.Notify_batch { items = []; stamps = stamp_trailer })
     with
     | () -> ()
     | exception Net_client.Net_error msg -> raise (Mig_fail msg));
  mig_barrier destc;
  (* 2. flip the directory epoch: from this version on the cluster
     routes the range to [dest]. The directory is only ever updated
     after the destination holds the complete range, so a migration
     killed at any earlier point leaves the epoch — and reads — exactly
     where they were. *)
  let assign_or_fail entries =
    match Directory.assign entries ~table ~lo ~hi ~home:dest with
    | Ok e -> e
    | Error msg -> raise (Mig_fail msg)
  in
  let epoch', entries' =
    match ds.ds_seed with
    | None ->
      let entries' = assign_or_fail (Directory.entries ds.ds_dir) in
      let epoch' = Directory.epoch ds.ds_dir + 1 in
      (match Directory.install ds.ds_dir ~epoch:epoch' ~entries:entries' with
      | Ok () -> Obs.Gauge.set ds.ds_m_epoch epoch'
      | Error msg -> raise (Mig_fail msg));
      (epoch', entries')
    | Some seed ->
      let seedc = mig_client t seed in
      Fun.protect ~finally:(fun () -> Net_client.close seedc) @@ fun () ->
      let epoch0, entries0 =
        match Net_client.call seedc Message.Dir_get with
        | Message.Dir_state { epoch; entries } -> (epoch, entries)
        | Message.Error msg -> raise (Mig_fail ("seed: " ^ msg))
        | _ -> raise (Mig_fail "seed: unexpected Dir_get response")
        | exception Net_client.Net_error msg -> raise (Mig_fail ("seed: " ^ msg))
      in
      let entries' = assign_or_fail entries0 in
      let epoch' = epoch0 + 1 in
      (match Net_client.call seedc (Message.Dir_update { epoch = epoch'; entries = entries' }) with
      | Message.Done -> ()
      | Message.Error msg -> raise (Mig_fail ("seed: " ^ msg))
      | _ -> raise (Mig_fail "seed: unexpected Dir_update response")
      | exception Net_client.Net_error msg -> raise (Mig_fail ("seed: " ^ msg)));
      (* flip our own follower copy in the same breath: the very next
         write to the moved range must forward, not apply locally *)
      (match Directory.install ds.ds_dir ~epoch:epoch' ~entries:entries' with
      | Ok () -> Obs.Gauge.set ds.ds_m_epoch epoch'
      | Error _ -> ());
      (epoch', entries')
  in
  (* 3. tell the new home directly — its poll would learn the flip
     anyway; this closes the window where it still routes the range
     back to us *)
  (try
     ignore (Net_client.call destc (Message.Dir_update { epoch = epoch'; entries = entries' }))
   with Net_client.Net_error _ -> ());
  (* 4. hand our subscribers over: the new home installs each one
     through the ordinary Fetch path (naming the subscriber's own
     callback address), so pushes keep flowing without waiting for each
     subscriber's Sub_check heal round to notice *)
  (match Hashtbl.find_opt t.subs table with
  | None -> ()
  | Some im ->
    let handles = ref [] in
    Interval_map.iter_overlapping im ~lo ~hi (fun h -> handles := h :: !handles);
    List.iter
      (fun h ->
        let slo, shi = Interval_map.handle_range h in
        let addr = Interval_map.handle_data h in
        if not (String.equal addr dest) then begin
          let clo = if String.compare lo slo < 0 then slo else lo in
          let chi = if String.compare shi hi < 0 then shi else hi in
          try
            ignore
              (Net_client.call destc
                 (Message.Fetch { table; lo = clo; hi = chi; subscriber = addr }))
          with Net_client.Net_error _ -> ()
        end;
        (* entries fully inside the moved range are dropped (their
           subscriber hears from the new home now); a straddling entry
           keeps serving its unmoved part — its moved part can never
           fire again, because writes there no longer apply locally *)
        if String.compare lo slo <= 0 && String.compare shi hi <= 0 then
          Interval_map.remove im h)
      !handles);
  (* 5. this server no longer owns the range; its own resolver (on the
     flipped routes) now fetches it from the new home on demand *)
  Server.unmark_present t.engine ~table ~lo ~hi;
  finish_migration t ds mg
    (Message.Pairs
       [ ("keys_moved", string_of_int mg.mg_keys);
         ("delta_replayed", string_of_int mg.mg_deltas);
         ("epoch", string_of_int epoch') ])

let mig_chunk = 512 (* keys per posted snapshot batch *)
let mig_chunks_per_step = 64

(* one step's worth of copying: up to [mig_chunks_per_step] chunks
   posted to the destination, then a barrier call (which nested-steps
   this loop, so clients keep getting served while the copy cruises) *)
let pump_migration t =
  match t.dirst with
  | None -> ()
  | Some ds -> (
    match ds.ds_mig with
    | None -> ()
    | Some mg -> (
      try
        let destc = call_client t ds mg.mg_dest in
        let copied_all = ref false in
        let budget = ref mig_chunks_per_step in
        while (not !copied_all) && !budget > 0 do
          decr budget;
          match
            Server.scan_result ~limit:mig_chunk t.engine ~lo:mg.mg_cursor ~hi:mg.mg_hi
          with
          | `Missing _ -> raise (Mig_fail "this server does not hold the range")
          | `Ok pairs ->
            let n = List.length pairs in
            if n > 0 then begin
              mig_feed destc (List.map (fun (k, v) -> (k, Some v)) pairs);
              mg.mg_keys <- mg.mg_keys + n;
              Obs.Counter.add ds.ds_m_keys n
            end;
            if n = mig_chunk then mg.mg_cursor <- fst (List.nth pairs (n - 1)) ^ "\x00"
            else copied_all := true
        done;
        mig_barrier destc;
        if !copied_all then complete_migration t ds mg
      with Mig_fail msg -> finish_migration t ds mg (Message.Error msg)))

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)

(* One metrics snapshot as a single JSON line on stdout, timestamped so
   dump streams can be correlated with external logs. *)
let dump_metrics t =
  let now = Unix.gettimeofday () in
  let extra = [ ("ts", Printf.sprintf "%.3f" now) ] in
  print_endline (Obs.json_of_snapshot ~extra (Server.metrics_snapshot t.engine));
  flush stdout

let maybe_dump_metrics t =
  match t.metrics_every with
  | None -> ()
  | Some every ->
    let now = Unix.gettimeofday () in
    if now >= t.next_dump then begin
      t.next_dump <- now +. every;
      dump_metrics t
    end

(** One iteration of the event loop: wait up to [timeout] seconds for
    readiness, then accept/read/write whatever is ready.

    Re-entrant by design: a shard blocked in a synchronous sibling call
    serves its own connections through nested steps (the Net_client
    [on_wait] hook), which is what makes symmetric cross-shard calls
    deadlock-free. A nested step skips accepting, adopting injected
    connections, tickers and persistence housekeeping — and never reads
    from a connection whose request is already on the stack ([busy]) or
    from acceptor-handed (public) connections, so while blocked a shard
    only advances sibling/peer traffic. *)
let rec step ?(timeout = 1.0) t =
  if t.nested_step == no_nested then
    t.nested_step <- (fun () -> step ~timeout:0.005 t);
  let nested = t.stepping in
  t.stepping <- true;
  Fun.protect ~finally:(fun () -> t.stepping <- nested) @@ fun () ->
  let timeout =
    (* a live migration wants the pump back promptly, idle or not *)
    match t.dirst with Some { ds_mig = Some _; _ } -> 0.0 | _ -> timeout
  in
  let timeout =
    (* so do parked stamped reads: their refetch/deadline clocks tick
       even when no frame arrives *)
    if t.stamp_waits <> [] then Float.min timeout 0.002 else timeout
  in
  let events = Poller.wait t.poller ~timeout in
  List.iter
    (fun (fd, readable, writable) ->
      if fd = t.wakeup_r then (if readable then drain_wakeup t)
      else if fd = t.listener then begin
        (* accepted even while nested: connections to a shard's own
           listener are always cluster-internal (a sibling's fetch or
           forward client connecting lazily) — refusing them while
           blocked on that very sibling would deadlock the pair. Public
           traffic only ever arrives through [inject], which nested
           steps do skip. *)
        if readable then accept_clients t
      end
      else
        match Hashtbl.find_opt t.externals fd with
        | Some on_ready ->
          (* fetcher peer sockets: serviced whenever the engine is
             off-stack — a fetch completion re-runs parked scans
             through the engine, which must not re-enter an engine call
             already on the stack, but a nested step taken while merely
             blocked on a sibling forward must service them, or a ring
             of shards all waiting on each other's parked scans never
             completes any of them *)
          if not t.in_engine then begin
            t.in_engine <- true;
            Fun.protect ~finally:(fun () -> t.in_engine <- false)
              (fun () -> on_ready ~readable ~writable)
          end
        | None -> (
          match Hashtbl.find_opt t.conns fd with
          | None -> () (* dropped earlier in this very event batch *)
          | Some client ->
            if writable then flush_output t client;
            if readable && not client.busy && not (nested && client.injected) then (
              (* [client] may have been dropped by the flush above *)
              match Hashtbl.find_opt t.conns fd with
              | Some c when c == client -> handle_readable t client
              | _ -> ())))
    events;
  if not nested then begin
    drain_injected t;
    pump_migration t;
    pump_stamp_waits t;
    Option.iter Persist.tick t.persist;
    List.iter (fun f -> f ()) t.tickers;
    maybe_dump_metrics t
  end

(** Serve until {!stop} or {!request_stop}. *)
let run t =
  while not (Atomic.get t.shutdown) do
    step t
  done

(** Close the listener, every client connection, and (after a final log
    sync) the durability manager. Must be called from the owning domain
    (after {!request_stop} + join when the loop runs elsewhere). *)
let stop t =
  Atomic.set t.shutdown true;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) t.externals;
  Hashtbl.reset t.externals;
  Hashtbl.iter (fun _ c -> Net_client.close c) t.peers;
  Hashtbl.reset t.peers;
  Option.iter Persist.close t.persist;
  Poller.close t.poller;
  (try Unix.close t.wakeup_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wakeup_w with Unix.Unix_error _ -> ());
  Mutex.lock t.inj_mu;
  Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.inj_q;
  Queue.clear t.inj_q;
  Mutex.unlock t.inj_mu;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
