(* Typed TCP client for the Pequod wire protocol: lazy connect +
   Hello/Welcome handshake, bounded reconnect retries with exponential
   backoff, per-request response deadlines, and request pipelining.
   Shared by pequod_cli and the server-to-server layer (Remote, the
   home-server notify push). *)

module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame

exception Net_error of string

(* internal: response deadline passed (mapped to Net_error at the API
   edge, after the timeout counter fires) *)
exception Timeout

(* internal: the server rejected the Hello, or spoke a different
   version — permanent, never retried *)
exception Handshake_failed of string

type config = {
  connect_timeout : float;
  call_timeout : float;
  max_retries : int;
  backoff : float;
}

let default_config =
  { connect_timeout = 5.0; call_timeout = 10.0; max_retries = 3; backoff = 0.05 }

type conn = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  mutable inbox : string list; (* decoded, unconsumed response frames, oldest first *)
}

type t = {
  chost : string;
  cport : int;
  config : config;
  (* [false] = push mode: the [Hello] is pipelined and the [Welcome] is
     never awaited, so establishing the connection cannot block on the
     peer's event loop (a home server pushing to a subscriber that is
     itself blocked in a synchronous [Fetch] back to this process must
     not deadlock). Push-mode clients are {!post}-only. *)
  handshake : bool;
  (* run between short waiting slices while blocked on a response: a
     shard parks here to serve its own event loop (nested step), which is
     what keeps symmetric shard-to-shard calls deadlock-free *)
  on_wait : (unit -> unit) option;
  (* a response wait is on the stack: re-entrant calls (the [on_wait]
     serving path needing the same peer) take a one-shot connection
     instead of interleaving frames on this one *)
  mutable in_flight : bool;
  mutable conn : conn option;
  buf : Bytes.t;
  m_rpcs : Obs.Counter.t; (* net.client.rpcs *)
  m_retries : Obs.Counter.t; (* net.client.retries *)
  m_timeouts : Obs.Counter.t; (* net.client.timeouts *)
}

let create ?obs ?(config = default_config) ?(handshake = true) ?on_wait ~host ~port () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    chost = host;
    cport = port;
    config;
    handshake;
    on_wait;
    in_flight = false;
    conn = None;
    buf = Bytes.create 65_536;
    m_rpcs = Obs.counter obs "net.client.rpcs";
    m_retries = Obs.counter obs "net.client.retries";
    m_timeouts = Obs.counter obs "net.client.timeouts";
  }

let host t = t.chost
let port t = t.cport
let connected t = t.conn <> None

(* the exact bytes [call]/[pipeline] put on the wire for one request;
   the asynchronous fetcher (Remote.Fetcher) builds its own pipelined
   bursts from these on sockets it drives itself *)
let encode_request_frame req = Frame.encode (Message.encode_request req)

let close t =
  match t.conn with
  | None -> ()
  | Some c ->
    t.conn <- None;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())

let addr_of host port =
  let inet =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception _ -> (
      match (Unix.gethostbyname host).Unix.h_addr_list with
      | [||] -> raise (Net_error ("unknown host " ^ host))
      | addrs -> addrs.(0)
      | exception Not_found -> raise (Net_error ("unknown host " ^ host)))
  in
  Unix.ADDR_INET (inet, port)

(* one TCP connect with its own deadline (non-blocking connect + select,
   then SO_ERROR to learn the outcome) *)
let connect_once t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd (addr_of t.chost t.cport)
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
       match Unix.select [] [ fd ] [] t.config.connect_timeout with
       | _, _ :: _, _ -> (
         match Unix.getsockopt_error fd with
         | None -> ()
         | Some err -> raise (Unix.Unix_error (err, "connect", "")))
       | _ -> raise Timeout));
    Unix.clear_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  with
  | () -> { fd; decoder = Frame.decoder (); inbox = [] }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* next response frame, waiting until [deadline]. With [on_wait], the
   wait is chopped into short slices and the hook runs between them, so
   the caller's own event loop keeps turning while this call blocks. The
   hook is only safe between reads: by then every received byte has been
   copied into the decoder, so re-entrant work may reuse [t.buf]. *)
let read_frame t conn ~deadline =
  let rec go () =
    match conn.inbox with
    | f :: rest ->
      conn.inbox <- rest;
      f
    | [] ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then raise Timeout;
      let slice =
        match t.on_wait with
        | None -> remaining
        | Some _ -> Float.min remaining 0.002
      in
      (match Unix.select [ conn.fd ] [] [] slice with
      | [], _, _ ->
        if t.on_wait = None then raise Timeout
        else begin
          (Option.get t.on_wait) ();
          go ()
        end
      | _ -> (
        match Unix.read conn.fd t.buf 0 (Bytes.length t.buf) with
        | 0 -> raise (Net_error "connection closed by server")
        | n ->
          conn.inbox <- conn.inbox @ Frame.feed conn.decoder (Bytes.sub_string t.buf 0 n);
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let handshake t conn =
  write_all conn.fd
    (Frame.encode
       (Message.encode_request (Message.Hello { version = Message.protocol_version })));
  let deadline = Unix.gettimeofday () +. t.config.call_timeout in
  match Message.decode_response (read_frame t conn ~deadline) with
  | Message.Welcome { version } when version = Message.protocol_version -> ()
  | Message.Welcome { version } ->
    raise
      (Handshake_failed
         (Printf.sprintf "server speaks protocol v%d, this client v%d" version
            Message.protocol_version))
  | Message.Error msg -> raise (Handshake_failed msg)
  | _ -> raise (Handshake_failed "unexpected handshake response")
  | exception Message.Protocol_error msg -> raise (Handshake_failed msg)

(* push mode: the server's answer to our pipelined [Hello] (and nothing
   else — push connections carry only one-way requests) arrives whenever
   its loop gets to it. Consume whatever is already buffered without ever
   blocking; a rejection or version mismatch surfaces on the next post. *)
let drain_push t conn =
  let rec pump () =
    match Unix.select [ conn.fd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read conn.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> raise (Net_error "connection closed by server")
      | n ->
        conn.inbox <- conn.inbox @ Frame.feed conn.decoder (Bytes.sub_string t.buf 0 n);
        pump ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  pump ();
  let frames = conn.inbox in
  conn.inbox <- [];
  List.iter
    (fun f ->
      match Message.decode_response f with
      | Message.Welcome { version } when version = Message.protocol_version -> ()
      | Message.Welcome { version } ->
        raise
          (Net_error
             (Printf.sprintf "server speaks protocol v%d, this client v%d" version
                Message.protocol_version))
      | Message.Error msg -> raise (Net_error ("push handshake rejected: " ^ msg))
      | _ -> ())
    frames

(* the connection, establishing (and handshaking) it if needed, with
   bounded backed-off retries. Version mismatches are permanent: they
   surface immediately, without burning retries on a hopeless peer. In
   push mode the [Hello] is written but its answer is not awaited. *)
let ensure_conn t =
  match t.conn with
  | Some c -> c
  | None ->
    let rec attempt n =
      match
        let c = connect_once t in
        (try
           if t.handshake then handshake t c
           else
             write_all c.fd
               (Frame.encode
                  (Message.encode_request
                     (Message.Hello { version = Message.protocol_version })))
         with e ->
           (try Unix.close c.fd with Unix.Unix_error _ -> ());
           raise e);
        c
      with
      | c ->
        t.conn <- Some c;
        c
      | exception Handshake_failed msg ->
        raise (Net_error ("handshake with " ^ t.chost ^ " failed: " ^ msg))
      | exception ((Unix.Unix_error _ | Timeout | Net_error _) as e) ->
        if n >= t.config.max_retries then
          let why =
            match e with
            | Unix.Unix_error (err, _, _) -> Unix.error_message err
            | Timeout -> "timed out"
            | Net_error msg -> msg
            | _ -> assert false
          in
          raise
            (Net_error
               (Printf.sprintf "connect to %s:%d failed after %d attempts: %s" t.chost
                  t.cport (n + 1) why))
        else begin
          Obs.Counter.force_add t.m_retries 1;
          Unix.sleepf (t.config.backoff *. (2.0 ** float_of_int n));
          attempt (n + 1)
        end
    in
    attempt 0

(* map an in-flight failure to Net_error, closing the (now unusable)
   connection so the next request reconnects *)
let broken t e =
  close t;
  match e with
  | Timeout ->
    Obs.Counter.force_add t.m_timeouts 1;
    raise (Net_error "request timed out")
  | Unix.Unix_error (err, _, _) -> raise (Net_error ("i/o error: " ^ Unix.error_message err))
  | Message.Protocol_error msg -> raise (Net_error ("protocol error: " ^ msg))
  | Net_error msg -> raise (Net_error msg)
  | e -> raise e

(* re-entrant call while the main connection has a response pending: a
   fresh connection for just this exchange, so the two request/response
   streams cannot interleave. Failures close only the one-shot socket. *)
let one_shot_call t ~timeout req =
  let conn = connect_once t in
  Fun.protect
    ~finally:(fun () -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  match
    if t.handshake then handshake t conn
    else
      write_all conn.fd
        (Frame.encode
           (Message.encode_request (Message.Hello { version = Message.protocol_version })));
    write_all conn.fd (Frame.encode (Message.encode_request req));
    let deadline = Unix.gettimeofday () +. timeout in
    Message.decode_response (read_frame t conn ~deadline)
  with
  | resp -> resp
  | exception Timeout ->
    Obs.Counter.force_add t.m_timeouts 1;
    raise (Net_error "request timed out")
  | exception Handshake_failed msg ->
    raise (Net_error ("handshake with " ^ t.chost ^ " failed: " ^ msg))
  | exception Unix.Unix_error (err, _, _) ->
    raise (Net_error ("i/o error: " ^ Unix.error_message err))
  | exception Message.Protocol_error msg -> raise (Net_error ("protocol error: " ^ msg))

let call ?timeout t req =
  if Message.is_oneway req then
    invalid_arg "Net_client.call: one-way request (use post)";
  if not t.handshake then invalid_arg "Net_client.call: push-mode client (post only)";
  let timeout = match timeout with Some s -> s | None -> t.config.call_timeout in
  Obs.Counter.incr t.m_rpcs;
  if t.in_flight then one_shot_call t ~timeout req
  else begin
    let conn = ensure_conn t in
    t.in_flight <- true;
    Fun.protect ~finally:(fun () -> t.in_flight <- false) @@ fun () ->
    match
      write_all conn.fd (Frame.encode (Message.encode_request req));
      let deadline = Unix.gettimeofday () +. timeout in
      Message.decode_response (read_frame t conn ~deadline)
    with
    | resp -> resp
    | exception e -> broken t e
  end

let post t req =
  if not (Message.is_oneway req) then
    invalid_arg "Net_client.post: request expects a response (use call)";
  let conn = ensure_conn t in
  Obs.Counter.incr t.m_rpcs;
  match
    if not t.handshake then drain_push t conn;
    write_all conn.fd (Frame.encode (Message.encode_request req))
  with
  | () -> ()
  | exception e -> broken t e

let pipeline ?timeout t reqs =
  if List.exists Message.is_oneway reqs then
    invalid_arg "Net_client.pipeline: one-way request (use post)";
  if not t.handshake then
    invalid_arg "Net_client.pipeline: push-mode client (post only)";
  let timeout = match timeout with Some s -> s | None -> t.config.call_timeout in
  if t.in_flight then
    (* re-entrant: serial one-shot exchanges; correctness over batching *)
    List.map (one_shot_call t ~timeout) reqs
  else begin
  let conn = ensure_conn t in
  t.in_flight <- true;
  Fun.protect ~finally:(fun () -> t.in_flight <- false) @@ fun () ->
  Obs.Counter.add t.m_rpcs (List.length reqs);
  match
    let out = Buffer.create 256 in
    List.iter
      (fun req -> Buffer.add_string out (Frame.encode (Message.encode_request req)))
      reqs;
    write_all conn.fd (Buffer.contents out);
    (* each response gets its own deadline window: a long pipeline is
       not punished for the server draining it serially *)
    List.map
      (fun _ ->
        let deadline = Unix.gettimeofday () +. timeout in
        Message.decode_response (read_frame t conn ~deadline))
      reqs
  with
  | resps -> resps
  | exception e -> broken t e
  end
