(* Session consistency client: accumulate write-ack stamp vectors, demand
   them back on every read. See session.mli and docs/SESSIONS.md. *)

module Message = Pequod_proto.Message

exception Stale of Message.stamp_entry list

type t = {
  sn_client : Net_client.t;
  (* the demand vector: (table, lo, hi) -> highest acked stamp *)
  sn_stamps : (string * string * string, int) Hashtbl.t;
  sn_max_entries : int;
}

let create ?(max_entries = 64) client =
  if max_entries < 1 then invalid_arg "Session.create: max_entries must be positive";
  { sn_client = client; sn_stamps = Hashtbl.create 32; sn_max_entries = max_entries }

let client t = t.sn_client

(* Merge the current entries into hulls keyed by [group], then put the
   result back. Over-demands keys between a hull's members — sound (the
   server refetches or proves freshness), never under-demands. *)
let merge_by t group =
  let hulls = Hashtbl.create 8 in
  Hashtbl.iter
    (fun ((_, lo, hi) as key) s ->
      let g = group key in
      match Hashtbl.find_opt hulls g with
      | None -> Hashtbl.replace hulls g (lo, hi, s)
      | Some (lo', hi', s') ->
        Hashtbl.replace hulls g (min lo lo', max hi hi', max s s'))
    t.sn_stamps;
  Hashtbl.reset t.sn_stamps;
  Hashtbl.iter
    (fun (table, _) (lo, hi, s) -> Hashtbl.replace t.sn_stamps (table, lo, hi) s)
    hulls

(* Pequod keys are ['|']-separated paths; the prefix up to the last
   separator of a narrow ack entry is its user slice (["p|bob|…"] →
   ["p|bob|"]). *)
let slice_of lo =
  match String.rindex_opt lo '|' with
  | Some i -> String.sub lo 0 (i + 1)
  | None -> lo

(* Past the cap, first collapse same-slice entries (a user's many posts
   become one demand on that user's slice); only if still over, fall all
   the way back to one convex hull per table. The narrower the demand,
   the fewer unrelated lagging copies a server must chase before
   answering. *)
let coalesce t =
  if Hashtbl.length t.sn_stamps > t.sn_max_entries then begin
    merge_by t (fun (table, lo, _) -> (table, slice_of lo));
    if Hashtbl.length t.sn_stamps > t.sn_max_entries then
      merge_by t (fun (table, _, _) -> (table, ""))
  end

let with_at_least t entries =
  List.iter
    (fun (table, lo, hi, s) ->
      if s > 0 && String.compare lo hi < 0 then begin
        let key = (table, lo, hi) in
        match Hashtbl.find_opt t.sn_stamps key with
        | Some s' when s' >= s -> ()
        | _ -> Hashtbl.replace t.sn_stamps key s
      end)
    entries;
  coalesce t

let stamp t =
  Hashtbl.fold (fun (table, lo, hi) s acc -> (table, lo, hi, s) :: acc) t.sn_stamps []
  |> List.sort compare

let fail msg = raise (Net_client.Net_error msg)

let write t req =
  match Net_client.call t.sn_client req with
  | Message.Stamps entries -> with_at_least t entries
  | Message.Done -> () (* a pre-v3 peer: nothing to demand, nothing lost *)
  | Message.Error msg -> fail msg
  | _ -> fail "unexpected write response"

let put t k v = write t (Message.Put (k, v))
let put_batch t pairs = if pairs <> [] then write t (Message.Put_batch pairs)
let remove t k = write t (Message.Remove k)

let get t key =
  let req =
    match stamp t with
    | [] -> Message.Get key
    | min -> Message.Get_at { key; min }
  in
  match Net_client.call t.sn_client req with
  | Message.Value v -> v
  | Message.Stale unmet -> raise (Stale unmet)
  | Message.Error msg -> fail msg
  | _ -> fail "unexpected get response"

let scan t ~lo ~hi =
  let req =
    match stamp t with
    | [] -> Message.Scan { lo; hi }
    | min -> Message.Scan_at { lo; hi; min }
  in
  match Net_client.call t.sn_client req with
  | Message.Pairs pairs -> pairs
  | Message.Stale unmet -> raise (Stale unmet)
  | Message.Error msg -> fail msg
  | _ -> fail "unexpected scan response"
