(** Live distributed deployment (§2.4/§3.3): wires a {!Net_client} into
    a cache engine as its missing-range resolver.

    A server started with [--partition] routes learns which peer is the
    {e home} for each base-table range. Ranges routed to this process are
    marked present (home ownership). Ranges routed to a peer are fetched
    on first need: the resolver sends [Fetch] naming this server's own
    address as the subscriber, the home replies [Subscribed] with a
    snapshot and starts pushing [Notify_batch] frames for every later
    write in the range — the protocol the simulator models, between live
    processes.

    A fetch that fails (peer down, after the client's bounded retries)
    resolves as [Deferred]: the scan reports the range as missing and the
    server answers that client with an [Error] instead of crashing; the
    next scan retries, so a respawned peer heals the route.

    Subscriptions self-heal: the tick returned by {!attach} periodically
    sends [Sub_check] to every home this server fetched from and compares
    the answer against the subscriptions it believes it holds. A range
    the home dropped (a failed push, a home restart) is refetched —
    [feed_base] reconciles the data and the [Fetch] re-subscribes — or,
    if the home is unreachable, un-marked present so the next scan goes
    back through the resolver. Losses are counted in [peer.sub.lost]. *)

(** One partition route. [r_addr = None] means this process is the home
    (the range is marked present); [Some "host:port"] names the owning
    peer.

    A {e wildcard} route has [r_table = "*"] and covers the same slice
    of every table not named by a specific route: its bounds are in
    component space — the part of the key after ["T|"] — with
    [r_lo = ""] meaning each table's start and [r_hi = ""] its end. The
    shard layer partitions the whole keyspace with one cut vector this
    way. Specific routes always win: a table any specific route names is
    governed only by specific routes. *)
type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(** Parse [--partition] specs, [TABLE\[:LO:HI\]\[@HOST:PORT\]], against
    the [--peer] list: an explicit [@HOST:PORT] wins; a bare spec is
    owned by the single [--peer] when exactly one is given, is local
    when none is, and is an error (ambiguous) with several. A bare
    [TABLE] covers the whole table. *)
val routes_of_specs :
  peers:string list -> string list -> (route list, string) result

(** How a missing [\[lo, hi)] of [table] maps onto the routes.
    [`Unrouted]: no route mentions the table — it is purely local.
    [`Gap]: routes mention the table but leave part of the range
    uncovered — a partition misconfiguration, surfaced as [Deferred]
    rather than silently served as present-and-empty.
    [`Fetch clamps]: the per-route clamps to fetch (remotely-owned
    overlapping routes only — an empty list means every overlapping
    route is local, so the range resolves [Local]). Wildcard routes are
    instantiated against [table] first. Exposed for tests. *)
val plan :
  routes:route list -> table:string -> lo:string -> hi:string ->
  [ `Unrouted | `Gap | `Fetch of (route * string * string) list ]

(** Install the routes on [engine]: local routes are marked present; if
    any remote routes exist, a resolver is set that fetches from the
    owning peers and subscribes as [self_addr]. Returns the
    subscription-healing tick — run it from the serving event loop
    ({!Net_server.add_ticker}); it rate-limits itself to one [Sub_check]
    round per [check_every] seconds (default 2) and is a no-op when
    there are no remote routes. Call once, before serving.

    [client_config] overrides the per-peer {!Net_client} retry/timeout
    policy; [on_wait] is threaded into every peer client (see
    {!Net_client.create}) so the owning event loop keeps serving while a
    fetch blocks — the shard layer passes a nested server step.
    [local_tables] names tables the resolver must treat as always-local
    regardless of routes: the shard layer's join outputs, which each
    shard recomputes from subscription-fresh sources (a fetched copy of
    a join output would freeze — join-derived writes are never pushed).
    Outbound fetches are counted in [peer.fetch.out]. *)
val attach :
  ?check_every:float ->
  ?client_config:Net_client.config ->
  ?on_wait:(unit -> unit) ->
  ?local_tables:(string -> bool) ->
  engine:Pequod_core.Server.t -> self_addr:string -> routes:route list -> unit ->
  unit -> unit
