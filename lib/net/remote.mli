(** Live distributed deployment (§2.4/§3.3): wires a {!Net_client} into
    a cache engine as its missing-range resolver.

    A server started with [--partition] routes learns which peer is the
    {e home} for each base-table range. Ranges routed to this process are
    marked present (home ownership). Ranges routed to a peer are fetched
    on first need: the resolver sends [Fetch] naming this server's own
    address as the subscriber, the home replies [Subscribed] with a
    snapshot and starts pushing [Notify_batch] frames for every later
    write in the range — the protocol the simulator models, between live
    processes.

    A fetch that fails (peer down, after the client's bounded retries)
    resolves as [Deferred]: the scan reports the range as missing and the
    server answers that client with an [Error] instead of crashing; the
    next scan retries, so a respawned peer heals the route.

    Subscriptions self-heal: the tick returned by {!attach} periodically
    sends [Sub_check] to every home this server fetched from and compares
    the answer against the subscriptions it believes it holds. A range
    the home dropped (a failed push, a home restart) is refetched —
    [feed_base] reconciles the data and the [Fetch] re-subscribes — or,
    if the home is unreachable, un-marked present so the next scan goes
    back through the resolver. Losses are counted in [peer.sub.lost]. *)

(** One partition route. [r_addr = None] means this process is the home
    (the range is marked present); [Some "host:port"] names the owning
    peer.

    A {e wildcard} route has [r_table = "*"] and covers the same slice
    of every table not named by a specific route: its bounds are in
    component space — the part of the key after ["T|"] — with
    [r_lo = ""] meaning each table's start and [r_hi = ""] its end. The
    shard layer partitions the whole keyspace with one cut vector this
    way. Specific routes always win: a table any specific route names is
    governed only by specific routes. *)
type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(** Parse [--partition] specs, [TABLE\[:LO:HI\]\[@HOST:PORT\]], against
    the [--peer] list: an explicit [@HOST:PORT] wins; a bare spec is
    owned by the single [--peer] when exactly one is given, is local
    when none is, and is an error (ambiguous) with several. A bare
    [TABLE] covers the whole table. *)
val routes_of_specs :
  peers:string list -> string list -> (route list, string) result

(** How a missing [\[lo, hi)] of [table] maps onto the routes.
    [`Unrouted]: no route mentions the table — it is purely local.
    [`Gap]: routes mention the table but leave part of the range
    uncovered — a partition misconfiguration, surfaced as [Deferred]
    rather than silently served as present-and-empty.
    [`Fetch clamps]: the per-route clamps to fetch (remotely-owned
    overlapping routes only — an empty list means every overlapping
    route is local, so the range resolves [Local]). Wildcard routes are
    instantiated against [table] first. Exposed for tests. *)
val plan :
  routes:route list -> table:string -> lo:string -> hi:string ->
  [ `Unrouted | `Gap | `Fetch of (route * string * string) list ]

(** Directory entries seen from [self_addr]: entries homed here become
    local routes, everything else names the home. *)
val routes_of_entries :
  self_addr:string -> Pequod_proto.Message.dir_entry list -> route list

(** The single configuration surface for wiring an engine into the
    cluster. One record names everything the old
    [attach]/[attach_directory]/[set_fetcher] sprawl took as scattered
    optional arguments; {!attach} is the one entry point. *)
module Config : sig
  (** Where routes come from: a static [--partition] route list, or a
      live partition directory (a {!Directory.t} shared with
      {!Net_server.set_directory}) re-planned on every epoch change.
      [seed = None] means this server {e is} the seed; [poll_every] is
      the follower's seed-poll period in seconds. *)
  type routing =
    | Static of route list
    | Directory of { dir : Directory.t; seed : string option; poll_every : float }

  type t = {
    engine : Pequod_core.Server.t;
    self_addr : string;  (** this server's advertised host:port *)
    routing : routing;
    server : Net_server.t option;
        (** the {!Net_server.t} serving [engine]: turns on the
            asynchronous read path (parked scans, batched single-flight
            fetches). [None]: the blocking resolver. Static routing
            only. *)
    check_every : float;  (** [Sub_check] healing period, seconds *)
    client_config : Net_client.config option;
        (** per-peer retry/timeout override *)
    on_wait : (unit -> unit) option;
        (** threaded into every peer client (see {!Net_client.create})
            so the owning loop keeps serving while a fetch blocks *)
    local_tables : string -> bool;
        (** tables the resolver treats as always-local regardless of
            routes (the shard layer's join outputs) *)
  }

  (** Build a config; defaults: [check_every = 2.0], no client-config
      override, no [on_wait], no always-local tables, blocking
      resolver. *)
  val make :
    ?check_every:float ->
    ?client_config:Net_client.config ->
    ?on_wait:(unit -> unit) ->
    ?local_tables:(string -> bool) ->
    ?server:Net_server.t ->
    engine:Pequod_core.Server.t -> self_addr:string -> routing -> t

  (** [directory ?poll_every ?seed dir] — shorthand for the
      {!Directory} routing case ([poll_every] defaults to 1s). *)
  val directory : ?poll_every:float -> ?seed:string -> Directory.t -> routing
end

(** Install the configured routing on the engine and return the
    maintenance tick — run it from the serving event loop
    ({!Net_server.add_ticker}). Call once, before serving.

    With {!Config.Static} routes: local routes are marked present;
    remote routes install a resolver that fetches from the owning peers
    and subscribes as [self_addr], and the tick heals subscriptions
    (one [Sub_check] round per [check_every] seconds, counted in
    [peer.sub.lost]). With [server] set, scans that miss park instead
    of blocking: the fetch engine issues a parked scan's whole missing
    set as one pipelined burst per owning peer, single-flighted across
    waiters ([fetch.coalesced], [fetch.inflight],
    [resolver.fetch.wait_ns]).

    With {!Config.Directory}: routes come from the directory and
    re-plan on every epoch change — newly owned ranges are marked
    present, formerly owned ones un-marked, orphaned subscriptions
    dropped, replica duty fetch+subscribed eagerly — and the tick also
    polls the seed ([dir.fetch], [dir.epoch]).

    Every [Subscribed] snapshot's version stamp is recorded against the
    fed range ({!Pequod_core.Server.set_range_stamp}), so stamped
    session reads (docs/SESSIONS.md) can tell a fresh copy from a stale
    one — on replicas exactly as on computes. *)
val attach : Config.t -> unit -> unit

(** Deprecated pre-{!Config} entry point (static routes); use
    {!Config.make} + {!attach}. *)
val attach_routes :
  ?check_every:float ->
  ?client_config:Net_client.config ->
  ?on_wait:(unit -> unit) ->
  ?local_tables:(string -> bool) ->
  ?server:Net_server.t ->
  engine:Pequod_core.Server.t -> self_addr:string -> routes:route list -> unit ->
  unit -> unit
  [@@deprecated "use Remote.Config.make + Remote.attach"]

(** Deprecated pre-{!Config} entry point (directory routing); use
    {!Config.make} + {!attach}. *)
val attach_directory :
  ?check_every:float ->
  ?poll_every:float ->
  ?client_config:Net_client.config ->
  ?on_wait:(unit -> unit) ->
  ?seed:string ->
  engine:Pequod_core.Server.t -> self_addr:string -> dir:Directory.t -> unit ->
  unit -> unit
  [@@deprecated "use Remote.Config.make + Remote.attach"]
