(** Live distributed deployment (§2.4/§3.3): wires a {!Net_client} into
    a cache engine as its missing-range resolver.

    A server started with [--partition] routes learns which peer is the
    {e home} for each base-table range. Ranges routed to this process are
    marked present (home ownership). Ranges routed to a peer are fetched
    on first need: the resolver sends [Fetch] naming this server's own
    address as the subscriber, the home replies [Subscribed] with a
    snapshot and starts pushing [Notify_batch] frames for every later
    write in the range — the protocol the simulator models, between live
    processes.

    A fetch that fails (peer down, after the client's bounded retries)
    resolves as [Deferred]: the scan reports the range as missing and the
    server answers that client with an [Error] instead of crashing; the
    next scan retries, so a respawned peer heals the route. *)

(** One partition route. [r_addr = None] means this process is the home
    (the range is marked present); [Some "host:port"] names the owning
    peer. *)
type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(** Parse [--partition] specs, [TABLE\[:LO:HI\]\[@HOST:PORT\]], against
    the [--peer] list: an explicit [@HOST:PORT] wins; a bare spec is
    owned by the single [--peer] when exactly one is given, is local
    when none is, and is an error (ambiguous) with several. A bare
    [TABLE] covers the whole table. *)
val routes_of_specs :
  peers:string list -> string list -> (route list, string) result

(** Install the routes on [engine]: local routes are marked present;
    if any remote routes exist, a resolver is set that fetches from the
    owning peers and subscribes as [self_addr]. Call once, before
    serving. *)
val attach :
  engine:Pequod_core.Server.t -> self_addr:string -> routes:route list -> unit
