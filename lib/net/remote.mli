(** Live distributed deployment (§2.4/§3.3): wires a {!Net_client} into
    a cache engine as its missing-range resolver.

    A server started with [--partition] routes learns which peer is the
    {e home} for each base-table range. Ranges routed to this process are
    marked present (home ownership). Ranges routed to a peer are fetched
    on first need: the resolver sends [Fetch] naming this server's own
    address as the subscriber, the home replies [Subscribed] with a
    snapshot and starts pushing [Notify_batch] frames for every later
    write in the range — the protocol the simulator models, between live
    processes.

    A fetch that fails (peer down, after the client's bounded retries)
    resolves as [Deferred]: the scan reports the range as missing and the
    server answers that client with an [Error] instead of crashing; the
    next scan retries, so a respawned peer heals the route.

    Subscriptions self-heal: the tick returned by {!attach} periodically
    sends [Sub_check] to every home this server fetched from and compares
    the answer against the subscriptions it believes it holds. A range
    the home dropped (a failed push, a home restart) is refetched —
    [feed_base] reconciles the data and the [Fetch] re-subscribes — or,
    if the home is unreachable, un-marked present so the next scan goes
    back through the resolver. Losses are counted in [peer.sub.lost]. *)

(** One partition route. [r_addr = None] means this process is the home
    (the range is marked present); [Some "host:port"] names the owning
    peer.

    A {e wildcard} route has [r_table = "*"] and covers the same slice
    of every table not named by a specific route: its bounds are in
    component space — the part of the key after ["T|"] — with
    [r_lo = ""] meaning each table's start and [r_hi = ""] its end. The
    shard layer partitions the whole keyspace with one cut vector this
    way. Specific routes always win: a table any specific route names is
    governed only by specific routes. *)
type route = {
  r_table : string;
  r_lo : string;
  r_hi : string;
  r_addr : string option;
}

(** Parse [--partition] specs, [TABLE\[:LO:HI\]\[@HOST:PORT\]], against
    the [--peer] list: an explicit [@HOST:PORT] wins; a bare spec is
    owned by the single [--peer] when exactly one is given, is local
    when none is, and is an error (ambiguous) with several. A bare
    [TABLE] covers the whole table. *)
val routes_of_specs :
  peers:string list -> string list -> (route list, string) result

(** How a missing [\[lo, hi)] of [table] maps onto the routes.
    [`Unrouted]: no route mentions the table — it is purely local.
    [`Gap]: routes mention the table but leave part of the range
    uncovered — a partition misconfiguration, surfaced as [Deferred]
    rather than silently served as present-and-empty.
    [`Fetch clamps]: the per-route clamps to fetch (remotely-owned
    overlapping routes only — an empty list means every overlapping
    route is local, so the range resolves [Local]). Wildcard routes are
    instantiated against [table] first. Exposed for tests. *)
val plan :
  routes:route list -> table:string -> lo:string -> hi:string ->
  [ `Unrouted | `Gap | `Fetch of (route * string * string) list ]

(** Directory entries seen from [self_addr]: entries homed here become
    local routes, everything else names the home. *)
val routes_of_entries :
  self_addr:string -> Pequod_proto.Message.dir_entry list -> route list

(** Directory-mode counterpart of {!attach}: routes come from [dir] (a
    {!Directory.t} shared with {!Net_server.set_directory}) instead of
    static specs, and re-plan on every epoch change. Returns the tick to
    run from the serving event loop ({!Net_server.add_ticker}); each run
    polls the seed (followers only — [seed = None] means this server
    {e is} the seed and sees installs directly), applies any new epoch,
    and heals subscriptions.

    Until the first epoch arrives every range resolves [Deferred] —
    resolving [Local] would mark it present and freeze it empty. On an
    epoch change: newly owned ranges are marked present (a migration
    destination adopts the fed snapshot as authoritative), formerly
    owned ones un-marked, subscriptions granted by a server the new
    version no longer names for their range are dropped (the next scan
    refetches from the current home), and ranges this server now serves
    as a replica are fetch+subscribed eagerly. Reads of a replicated
    range spread across the replicas (each server starts at a different
    candidate) and fall back to the home. Epoch applications set the
    [dir.epoch] gauge; seed polls count in [dir.fetch]. *)
val attach_directory :
  ?check_every:float ->
  ?poll_every:float ->
  ?client_config:Net_client.config ->
  ?on_wait:(unit -> unit) ->
  ?seed:string ->
  engine:Pequod_core.Server.t -> self_addr:string -> dir:Directory.t -> unit ->
  unit -> unit

(** Install the routes on [engine]: local routes are marked present; if
    any remote routes exist, a resolver is set that fetches from the
    owning peers and subscribes as [self_addr]. Returns the
    subscription-healing tick — run it from the serving event loop
    ({!Net_server.add_ticker}); it rate-limits itself to one [Sub_check]
    round per [check_every] seconds (default 2) and is a no-op when
    there are no remote routes. Call once, before serving.

    [client_config] overrides the per-peer {!Net_client} retry/timeout
    policy; [on_wait] is threaded into every peer client (see
    {!Net_client.create}) so the owning event loop keeps serving while a
    fetch blocks — the shard layer passes a nested server step.
    [local_tables] names tables the resolver must treat as always-local
    regardless of routes: the shard layer's join outputs, which each
    shard recomputes from subscription-fresh sources (a fetched copy of
    a join output would freeze — join-derived writes are never pushed).
    Outbound fetches are counted in [peer.fetch.out].

    [server] turns on the {e asynchronous} read path, and must be the
    {!Net_server.t} serving [engine]. A scan that misses then parks
    instead of blocking: the resolver answers [Deferred] for every
    missing range of a collect-mode scan ([Server.collecting]), the
    server parks the request ([scan.parked]) and keeps serving, and the
    fetch engine installed here issues the scan's whole missing set as
    one pipelined burst per owning peer — concurrently across peers, on
    nonblocking sockets driven by the serving loop itself. Concurrent
    parked scans missing the same range share one wire [Fetch] and one
    [feed_base] ([fetch.coalesced]; in-flight fetches gauge
    [fetch.inflight]); parked scans' wait is measured in
    [resolver.fetch.wait_ns]. Resolver calls with no retry loop above
    them (updater firings, bare [scan]/[get]) still fetch inline through
    the blocking client. *)
val attach :
  ?check_every:float ->
  ?client_config:Net_client.config ->
  ?on_wait:(unit -> unit) ->
  ?local_tables:(string -> bool) ->
  ?server:Net_server.t ->
  engine:Pequod_core.Server.t -> self_addr:string -> routes:route list -> unit ->
  unit -> unit
