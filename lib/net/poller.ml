(* Readiness polling: epoll(7) via C stubs on Linux, Unix.select
   elsewhere (or under PEQUOD_POLLER=select). See poller.mli. *)

external ep_create : unit -> int = "pequod_epoll_create" [@@noalloc]
external ep_close : int -> unit = "pequod_epoll_close" [@@noalloc]

external ep_ctl : int -> int -> Unix.file_descr -> int -> int = "pequod_epoll_ctl"
  [@@noalloc]

external ep_wait : int -> int array -> int -> int = "pequod_epoll_wait"

type backend = [ `Epoll | `Select ]

(* both backends keep the registered-interest table in OCaml: epoll needs
   it to pick add-vs-modify (and to make [set]/[remove] idempotent);
   select builds its fd lists from it *)
type t = {
  kind : [ `Epoll of int | `Select ];
  interest : (Unix.file_descr, bool * bool) Hashtbl.t;
  events : int array; (* epoll scratch: fd,flags pairs *)
}

let fd_int : Unix.file_descr -> int = Obj.magic (* an immediate int on Unix *)

let backend t = match t.kind with `Epoll _ -> `Epoll | `Select -> `Select

let create ?backend () =
  let wanted =
    match backend with
    | Some b -> b
    | None -> (
      match Sys.getenv_opt "PEQUOD_POLLER" with
      | Some ("select" | "SELECT") -> `Select
      | _ -> `Epoll)
  in
  let kind =
    match wanted with
    | `Select -> `Select
    | `Epoll -> (
      match ep_create () with
      | -1 ->
        if backend = Some `Epoll then failwith "Poller.create: epoll unavailable"
        else `Select (* non-Linux platform: quiet fallback *)
      | ep -> `Epoll ep)
  in
  { kind; interest = Hashtbl.create 16; events = Array.make 512 0 }

let flags_of ~read ~write = (if read then 1 else 0) lor if write then 2 else 0

let ctl_check op ep fd flags =
  match ep_ctl ep op fd flags with
  | 0 -> ()
  | errno -> failwith (Printf.sprintf "Poller: epoll_ctl failed (errno %d)" errno)

let remove t fd =
  if Hashtbl.mem t.interest fd then begin
    Hashtbl.remove t.interest fd;
    match t.kind with `Epoll ep -> ctl_check 2 ep fd 0 | `Select -> ()
  end

let set t fd ~read ~write =
  if (not read) && not write then remove t fd
  else begin
    let known = Hashtbl.find_opt t.interest fd in
    if known <> Some (read, write) then begin
      Hashtbl.replace t.interest fd (read, write);
      match t.kind with
      | `Select -> ()
      | `Epoll ep ->
        let op = if known = None then 0 else 1 in
        ctl_check op ep fd (flags_of ~read ~write)
    end
  end

let wait t ~timeout =
  match t.kind with
  | `Epoll ep -> (
    let ms =
      if timeout < 0.0 then -1
      else
        let ms = int_of_float (timeout *. 1000.0) in
        if ms = 0 && timeout > 0.0 then 1 else ms
    in
    match ep_wait ep t.events ms with
    | n when n >= 0 ->
      let acc = ref [] in
      for i = n - 1 downto 0 do
        let flags = t.events.((2 * i) + 1) in
        acc :=
          ((Obj.magic t.events.(2 * i) : Unix.file_descr), flags land 1 <> 0,
            flags land 2 <> 0)
          :: !acc
      done;
      !acc
    | _ -> failwith "Poller: epoll_wait failed")
  | `Select -> (
    let reads = Hashtbl.fold (fun fd (r, _) acc -> if r then fd :: acc else acc) t.interest [] in
    let writes =
      Hashtbl.fold (fun fd (_, w) acc -> if w then fd :: acc else acc) t.interest []
    in
    if reads = [] && writes = [] then begin
      (* select with three empty sets returns immediately on some
         systems; honor the timeout without spinning *)
      if timeout > 0.0 then Unix.sleepf timeout;
      []
    end
    else
      match Unix.select reads writes [] timeout with
      | readable, writable, _ ->
        let merged : (Unix.file_descr, bool * bool) Hashtbl.t = Hashtbl.create 8 in
        List.iter (fun fd -> Hashtbl.replace merged fd (true, false)) readable;
        List.iter
          (fun fd ->
            let r = match Hashtbl.find_opt merged fd with Some (r, _) -> r | None -> false in
            Hashtbl.replace merged fd (r, true))
          writable;
        Hashtbl.fold (fun fd (r, w) acc -> (fd, r, w) :: acc) merged []
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> [])

let close t =
  Hashtbl.reset t.interest;
  match t.kind with `Epoll ep -> ep_close ep | `Select -> ()

(* keep the unused warning away on platforms where fd_int is not needed
   elsewhere; it documents the representation assumption the stubs rely on *)
let _ = fd_int
