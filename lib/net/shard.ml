(* Shard-per-core Pequod: one acceptor domain feeding N shared-nothing
   engine shards, each a full single-threaded Net_server in its own
   domain with a disjoint slice of the keyspace.

   There is no shared mutable cache state between shards. The keyspace
   is cut once, in component space (the part of every key after "T|"),
   so one cut vector partitions every base table the same way. Writes
   and point reads that land on the wrong shard are forwarded to the
   owner over the sibling's own protocol port; scans and fetches are
   served where they arrive, pulling sibling-owned source slices through
   the engine's ordinary resolver — the same §2.4 fetch+subscribe path a
   compute server uses against a home server, so the data arrives once
   and stays fresh by push. Join outputs are not partitioned: every
   shard materializes the join ranges its own clients scan, from
   subscription-fresh sources.

   Deadlock-freedom: sibling calls are symmetric (A can fetch from B
   while B forwards to A), so a shard never blocks dead on a sibling —
   while waiting for a sibling's response it keeps serving its own
   internal traffic through nested event-loop steps (the Net_client
   [on_wait] hook; see Net_server.step). *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Pattern = Pequod_pattern.Pattern
module Joinspec = Pequod_pattern.Joinspec

let src = Logs.Src.create "pequod.shard"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  servers : Net_server.t array;
  sh_cuts : string array; (* shards-1 component-space cut points, ascending *)
  listener : Unix.file_descr; (* the public port all clients dial *)
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t array;
  mutable acceptor : unit Domain.t option;
}

let shards t = Array.length t.servers
let cuts t = Array.to_list t.sh_cuts
let servers t = Array.to_list t.servers
let engines t = List.map Net_server.engine (servers t)
let shard_ports t = List.map Net_server.port (servers t)

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> invalid_arg "Shard.port"

(* the key's position in component space: everything after the first
   '|'; keys without a component ("T}"-style bounds never reach here as
   single keys) sort with the empty component, i.e. shard 0 *)
let component key =
  match String.index_opt key '|' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> ""

let owner_of_cuts sh_cuts key =
  let c = component key in
  let n = Array.length sh_cuts in
  let i = ref 0 in
  while !i < n && String.compare sh_cuts.(!i) c <= 0 do
    incr i
  done;
  !i

let owner t key = owner_of_cuts t.sh_cuts key

(* Scan routing: a range whose bounds share one table prefix and whose
   component span stays inside one shard's slice is served entirely by
   that shard; anything wider (a whole-table scan, a cross-table scan)
   is scattered to every shard and merged. [hi] is exclusive, so a span
   ending exactly on the owner's upper cut still routes. *)
let route_scan sh_cuts ~shards ~lo ~hi =
  match (String.index_opt lo '|', String.index_opt hi '|') with
  | Some i, Some j
    when i = j && String.equal (String.sub lo 0 i) (String.sub hi 0 j) ->
    let o = owner_of_cuts sh_cuts lo in
    if o = shards - 1 || String.compare (component hi) sh_cuts.(o) <= 0 then Some o
    else None
  | _ -> None

(* Default cuts when none are given: evenly spaced over printable
   component space (two base-94 digits). Uniform only for uniformly
   distributed component bytes — real deployments pass cuts matched to
   their key population (the load harness derives them from the user-id
   format). *)
let default_cuts n =
  List.init (n - 1) (fun i ->
      let f = float_of_int (i + 1) /. float_of_int n in
      let x = int_of_float (f *. float_of_int (94 * 94)) in
      Printf.sprintf "%c%c" (Char.chr (33 + (x / 94))) (Char.chr (33 + (x mod 94))))

let mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* A sharded data directory is sliced state: reopening it with a
   different shard count would scatter each slice's WAL over the wrong
   engines. Refuse loudly instead of recovering garbage. *)
let check_shard_marker dir shards =
  mkdir_p dir;
  let path = Filename.concat dir "SHARDS" in
  if Sys.file_exists path then begin
    let ic = open_in path in
    let recorded = int_of_string (String.trim (input_line ic)) in
    close_in ic;
    if recorded <> shards then
      failwith
        (Printf.sprintf
           "data dir %s was written with --shards %d; refusing to open it with --shards %d"
           dir recorded shards)
  end
  else begin
    let oc = open_out path in
    output_string oc (string_of_int shards ^ "\n");
    close_out oc
  end

(* per-shard copy of the template config: shard [i] logs under
   [dir/shard-i] and gets an equal slice of the memory budget *)
let shard_config template ~shards ~i =
  let c = { template with Config.now = template.Config.now } in
  (match template.Config.persist with
  | None -> ()
  | Some p ->
    let dir = Filename.concat p.Config.p_dir (Printf.sprintf "shard-%d" i) in
    mkdir_p dir;
    c.Config.persist <-
      Some
        { p with Config.p_dir = dir });
  (match template.Config.memory_limit with
  | None -> ()
  | Some m -> c.Config.memory_limit <- Some (max 1 (m / shards)));
  c

let is_sink engine table =
  List.exists
    (fun spec -> String.equal (Pattern.table (Joinspec.output spec)) table)
    (Server.joins engine)

(* Stats_full, aggregated: sum counters and gauges across shards under
   their own names, and additionally expose every shard.* counter per
   shard as shard.<i>.<suffix> (shard.ops -> shard.0.ops). Histogram
   percentiles cannot be summed, so histograms appear only per shard, as
   shard.<i>.<full name>. *)
let merge_stats snaps =
  let totals : (string, Obs.value) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let add name v =
    match (Hashtbl.find_opt totals name, v) with
    | None, _ ->
      order := name :: !order;
      Hashtbl.add totals name v
    | Some (Obs.Counter a), Obs.Counter b -> Hashtbl.replace totals name (Obs.Counter (a + b))
    | Some (Obs.Gauge a), Obs.Gauge b -> Hashtbl.replace totals name (Obs.Gauge (a + b))
    | Some _, _ -> () (* cross-shard kind clash: keep the first *)
  in
  List.iter
    (fun (i, snap) ->
      List.iter
        (fun (name, v) ->
          match v with
          | Obs.Histogram _ -> add (Printf.sprintf "shard.%d.%s" i name) v
          | _ ->
            add name v;
            if String.length name > 6 && String.equal (String.sub name 0 6) "shard." then
              add
                (Printf.sprintf "shard.%d.%s" i (String.sub name 6 (String.length name - 6)))
                v)
        snap)
    snaps;
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order)

let create ?config ?backend ?metrics_every ?(sub_check_every = 2.0)
    ?(advertise = "127.0.0.1") ?cuts ~port ~joins ~memory_limit ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  let template = match config with Some c -> c | None -> Config.default () in
  let sh_cuts =
    match cuts with
    | None -> Array.of_list (default_cuts shards)
    | Some cs ->
      let a = Array.of_list cs in
      if Array.length a <> shards - 1 then
        invalid_arg
          (Printf.sprintf "Shard.create: %d shards need %d cuts, got %d" shards (shards - 1)
             (Array.length a));
      Array.iteri
        (fun i c ->
          if i > 0 && String.compare a.(i - 1) c >= 0 then
            invalid_arg "Shard.create: cuts must be strictly increasing")
        a;
      a
  in
  (match template.Config.persist with
  | Some p -> check_shard_marker p.Config.p_dir shards
  | None -> ());
  (* bind every shard's own listener first (ephemeral ports), so sibling
     addresses are known before any routing is installed *)
  let servers =
    Array.init shards (fun i ->
        let config = shard_config template ~shards ~i in
        (* one shard dumps for the whole process; per-shard dumps would
           interleave JSON lines on stdout *)
        let metrics_every = if i = 0 then metrics_every else None in
        Net_server.create ~config ?metrics_every ?backend ~port:0 ~joins ~memory_limit ())
  in
  let addr i = Printf.sprintf "%s:%d" advertise (Net_server.port servers.(i)) in
  let slice j =
    ( (if j = 0 then "" else sh_cuts.(j - 1)),
      (if j = shards - 1 then "" else sh_cuts.(j)) )
  in
  Array.iteri
    (fun i srv ->
      let engine = Net_server.engine srv in
      (* serving while blocked: drive a zero-timeout step of this
         shard's own loop between waiting slices *)
      let on_wait () = Net_server.step ~timeout:0.0 srv in
      if shards > 1 then begin
        let routes =
          List.init shards (fun j ->
              let r_lo, r_hi = slice j in
              { Remote.r_table = "*"; r_lo; r_hi;
                r_addr = (if j = i then None else Some (addr j)) })
        in
        let heal =
          Remote.attach
            (Remote.Config.make ~check_every:sub_check_every ~on_wait
               ~local_tables:(is_sink engine) ~server:srv ~engine ~self_addr:(addr i)
               (Remote.Config.Static routes))
        in
        Net_server.add_ticker srv heal;
        (* forwarding clients, one per sibling, separate from the
           resolver's fetch clients so a slow fetch never queues behind
           point-write traffic *)
        let clients =
          Array.init shards (fun j ->
              if j = i then None
              else
                let h, p = (advertise, Net_server.port servers.(j)) in
                Some (Net_client.create ~obs:(Server.obs engine) ~on_wait ~host:h ~port:p ()))
        in
        let client j =
          match clients.(j) with Some c -> c | None -> invalid_arg "Shard: self call"
        in
        Net_server.set_router srv ~self:i
          ~owner:(owner_of_cuts sh_cuts)
          ~route_scan:(fun ~lo ~hi -> route_scan sh_cuts ~shards ~lo ~hi)
          ~call:(fun j req -> Net_client.call (client j) req)
          ~post:(fun j req -> Net_client.post (client j) req)
          ~siblings:(List.filter (fun j -> j <> i) (List.init shards Fun.id))
          ~stats:(fun () ->
            merge_stats
              (List.init shards (fun j ->
                   if j = i then (j, Server.metrics_snapshot engine)
                   else
                     match Net_client.call (client j) Message.Stats_full with
                     | Message.Metrics m -> (j, m)
                     | _ -> (j, [])
                     | exception Net_client.Net_error msg ->
                       Log.warn (fun m -> m "stats from shard %d failed: %s" j msg);
                       (j, []))))
      end)
    servers;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (match Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port)) with
  | () -> ()
  | exception e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    Array.iter Net_server.stop servers;
    raise e);
  Unix.listen listener 128;
  { servers; sh_cuts; listener; stopping = Atomic.make false; domains = [||];
    acceptor = None }

(* the acceptor: blocking accepts on the public port, connections dealt
   to shards round-robin. Stopped by shutting the listener down, which
   wakes the blocked accept with an error. *)
let accept_loop t =
  let n = Array.length t.servers in
  let rec loop rr =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listener with
      | fd, _ ->
        Net_server.inject t.servers.(rr) fd;
        loop ((rr + 1) mod n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop rr
      | exception Unix.Unix_error _ -> ()
  in
  loop 0

let start t =
  if Array.length t.domains > 0 then invalid_arg "Shard.start: already started";
  t.domains <-
    Array.mapi
      (fun i srv ->
        Domain.spawn (fun () ->
            (* an exception escaping a shard loop would otherwise stay
               invisible until join: log it before the domain dies *)
            try Net_server.run srv
            with e ->
              Log.err (fun m ->
                  m "shard %d loop died: %s\n%s" i (Printexc.to_string e)
                    (Printexc.get_backtrace ()));
              raise e))
      t.servers;
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t))

(** Signal every domain, join them, then release sockets and
    durability state. Idempotent. *)
let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Array.iter Net_server.request_stop t.servers;
    Option.iter Domain.join t.acceptor;
    t.acceptor <- None;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    Array.iter Net_server.stop t.servers
  end

(** [start] + block until {!stop} is called from elsewhere (a signal
    handler, another domain). *)
let run t =
  start t;
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.2
  done
