(** The partition directory: a versioned mapping [table range -> home
    (+ replicas)] that replaces static [--partition] flags as the
    cluster's source of routing truth.

    One server (the {e seed}, [--dir-host]) holds the authoritative
    copy and serves it over [Dir_get]/[Dir_watch]; every other server
    keeps a follower copy refreshed by polling. Each version is stamped
    with a monotonically increasing {e epoch}; an update ([Dir_update],
    sent by [pequod_ctl] or by a migration flipping ownership) is
    accepted only when its epoch is strictly newer, so replayed or
    crossed updates cannot roll the directory back.

    Epoch 0 means "no directory yet": followers treat every range as
    unresolved until their first successful fetch, so a half-started
    cluster defers reads instead of serving empty ranges as truth. *)

type entry = Pequod_proto.Message.dir_entry

type t

(** An empty directory at epoch 0. *)
val create : unit -> t

val epoch : t -> int
val entries : t -> entry list

(** Structural validity: ranges non-empty ([lo < hi]), homes non-empty
    strings, and no two entries of the same table overlapping. Gaps are
    allowed (an uncovered range simply stays unresolved at computes). *)
val validate : entry list -> (unit, string) result

(** Install a new version iff [epoch] is strictly newer than the
    current one and [entries] validate; entries are normalized (sorted,
    adjacent same-home same-replica ranges coalesced). *)
val install : t -> epoch:int -> entries:entry list -> (unit, string) result

(** The home of the range containing [key], if any entry covers it. *)
val home_of : t -> key:string -> string option

(** The entry covering [key], if any. *)
val entry_of : t -> key:string -> entry option

(** A new entry list reassigning [table [lo,hi)] to [home] (the
    migration flip): overlapping entries are split around the range,
    the reassigned piece carries no replicas. Fails if the range is
    empty or not fully covered by existing entries of one home. *)
val assign :
  entry list -> table:string -> lo:string -> hi:string -> home:string ->
  (entry list, string) result

(** A new entry list with [addr] added as a read replica of every entry
    of [table] overlapping [[lo,hi)]. Fails if nothing overlaps or
    [addr] is already the home of an overlapping entry. *)
val add_replica :
  entry list -> table:string -> lo:string -> hi:string -> addr:string ->
  (entry list, string) result

(** One human-readable line per entry ([pequod_ctl dir]). *)
val to_lines : t -> string list
