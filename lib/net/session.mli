(** Session consistency on top of {!Net_client}: read-your-writes
    across the cluster (docs/SESSIONS.md).

    Every v3 write ack carries a {e stamp vector} — one
    [(table, lo, hi, stamp)] entry per written key, naming the version
    of the owned range the write landed in. A session accumulates these
    vectors; its reads go out as [Get_at]/[Scan_at] demanding at least
    the accumulated stamps, so any server answering — the owner, a
    replica warmed by [pequod_ctl replicate], a compute holding a
    fetched copy — must prove its copy has caught up to the session's
    own writes (refetching if its push feed lags) or answer [Stale]
    after the bounded wait.

    Demand entries name {e base-table} ranges: a session that writes
    [p|bob|…] and then scans the joined timeline [t|ann|…] demands
    freshness of the [p] range it wrote, which is exactly what the
    timeline's join sources must reflect. A server that holds no copy
    of a demanded range ignores that entry — it will fetch fresh from
    the owner, which trivially satisfies any acked stamp.

    Sessions are not transactions: no atomicity across keys, no
    isolation — only the ordering promise that this session's reads
    reflect this session's writes (and any writes folded in through
    {!with_at_least}).

    Not thread-safe, like the underlying client. *)

(** A stamped read could not be satisfied within the server's bounded
    wait: the payload is the unmet portion of the demand (same shape as
    the vector). The session state is unchanged; retrying later — or
    against the owner — is safe. *)
exception Stale of Pequod_proto.Message.stamp_entry list

type t

(** [create client] — a fresh session speaking through [client], with
    an empty stamp vector (its first read demands nothing).

    [max_entries] bounds the vector: past it, entries coalesce into
    convex hulls — first per user slice (the ['|']-prefix of the key),
    then, if still over, per table — at the hull's max stamp.
    Over-demanding is sound (at worst a spurious refetch on some other
    key in the hull), under-demanding never happens. Default 64. *)
val create : ?max_entries:int -> Net_client.t -> t

val client : t -> Net_client.t

(** The accumulated stamp vector, for handing a session's
    read-your-writes guarantee to another session (a different process,
    a different entry server): ship it out-of-band and
    {!with_at_least} it into the receiver. *)
val stamp : t -> Pequod_proto.Message.stamp_entry list

(** Fold an external vector into this session's demand — the receiving
    half of the {!stamp} handoff. Monotone; unknown ranges are added,
    known ones keep the larger stamp. *)
val with_at_least : t -> Pequod_proto.Message.stamp_entry list -> unit

(** Writes: as {!Net_client.call} with [Put]/[Put_batch]/[Remove], with
    the ack's stamp vector folded into the session. Raise
    {!Net_client.Net_error} on failure. *)

val put : t -> string -> string -> unit

val put_batch : t -> (string * string) list -> unit

val remove : t -> string -> unit

(** Reads: [Get_at]/[Scan_at] demanding the accumulated vector (plain
    [Get]/[Scan] while the vector is empty). Raise {!Stale} when the
    server's bounded wait expires, {!Net_client.Net_error} on transport
    failure. *)

val get : t -> string -> string option

val scan : t -> lo:string -> hi:string -> (string * string) list
