(** Typed TCP client for the Pequod wire protocol: the one way out of
    this process. Both user-facing tools ([pequod_cli]) and the
    server-to-server layer ([Remote], the home-server push path) speak
    through it, so connection management, the version handshake, retry
    policy and timeouts live in exactly one place.

    A client is bound to one [host:port] and connects lazily: the first
    {!call} (or {!post}/{!pipeline}) opens the socket and performs the
    [Hello]/[Welcome] protocol handshake. A connection lost to an I/O
    error or timeout is closed and re-established on the next call, with
    bounded, backed-off reconnect attempts ([net.client.retries]); a
    protocol version mismatch is permanent and never retried.

    Not thread-safe: one client, one caller (the servers are
    single-threaded event loops, as is the CLI). *)

(** Any client-visible failure: connect/retry exhaustion, handshake
    rejection, request timeout, I/O error, or an undecodable response.
    The connection is already closed when this is raised; a later call
    reconnects. *)
exception Net_error of string

type config = {
  connect_timeout : float;  (** seconds to wait for one TCP connect *)
  call_timeout : float;  (** default per-request response deadline, seconds *)
  max_retries : int;  (** reconnect attempts after the first failure *)
  backoff : float;  (** initial reconnect delay, seconds; doubles per retry *)
}

(** 5s connect, 10s call, 3 retries, 50ms initial backoff. *)
val default_config : config

type t

(** A client for the server at [host:port]; no I/O happens until the
    first request. [obs] is the registry receiving the client's metrics
    ([net.client.rpcs], [net.client.retries], [net.client.timeouts]) —
    pass the engine's registry when the client serves an engine (the
    [Remote] resolver does), omit it for standalone tools.

    [handshake:false] creates a {e push-mode} client (the home-server
    notify path): the [Hello] is pipelined and the [Welcome] never
    awaited, so establishing the connection cannot block on the peer's
    event loop — a home pushing to a subscriber that is itself blocked
    in a synchronous [Fetch] back to it must not deadlock. The peer's
    handshake answer is drained without blocking on each {!post}; a
    rejection or version mismatch surfaces there as {!Net_error}.
    Push-mode clients are {!post}-only: {!call} and {!pipeline} raise
    [Invalid_argument].

    [on_wait] runs repeatedly (every couple of milliseconds) while a
    {!call} or {!pipeline} waits for its response, so an event-loop
    owner can keep serving while blocked — the shard layer passes a
    nested server step here. The hook must not issue a request on
    {e this} client's main connection; if re-entrant work does call back
    into the same client, that inner exchange transparently runs on a
    dedicated one-shot connection so response streams never interleave. *)
val create :
  ?obs:Obs.t ->
  ?config:config ->
  ?handshake:bool ->
  ?on_wait:(unit -> unit) ->
  host:string ->
  port:int ->
  unit ->
  t

val host : t -> string
val port : t -> int

(** Send one request and wait for its response. [timeout] overrides
    [config.call_timeout]. Raises {!Net_error}; a request that timed out
    may still have been applied by the server (the connection is closed,
    but the send happened). One-way requests are refused — use {!post}. *)
val call : ?timeout:float -> t -> Pequod_proto.Message.request -> Pequod_proto.Message.response

(** Send a one-way request (the [Notify_*] family): written to the
    socket, no response expected or read. Raises {!Net_error} on
    connection failure. *)
val post : t -> Pequod_proto.Message.request -> unit

(** Pipeline: write every request in one buffer flush, then read the
    responses in order. Equivalent to [List.map (call t)] but one
    syscall out and no per-request round-trip wait. [timeout] bounds
    each response read. One-way requests are refused. *)
val pipeline :
  ?timeout:float -> t -> Pequod_proto.Message.request list -> Pequod_proto.Message.response list

(** The exact on-the-wire bytes (length-prefixed frame) {!call} and
    {!pipeline} would write for [req]. For callers that drive their own
    sockets — the asynchronous fetcher pipelines these on nonblocking
    connections owned by the serving event loop. *)
val encode_request_frame : Pequod_proto.Message.request -> string

(** Is the underlying connection currently established? *)
val connected : t -> bool

(** Close the connection (idempotent). The client remains usable: the
    next request reconnects. *)
val close : t -> unit
