(* The partition directory (see directory.mli): epoch-stamped routing
   truth, held authoritatively by the seed and as follower copies
   everywhere else. *)

module Message = Pequod_proto.Message

type entry = Message.dir_entry

type t = { mutable epoch : int; mutable entries : entry list (* sorted (table, lo) *) }

let create () = { epoch = 0; entries = [] }
let epoch t = t.epoch
let entries t = t.entries

let compare_entry (a : entry) (b : entry) =
  match String.compare a.Message.de_table b.Message.de_table with
  | 0 -> String.compare a.Message.de_lo b.Message.de_lo
  | c -> c

let normalize entries =
  let sorted = List.sort compare_entry entries in
  (* coalesce adjacent ranges of one table with identical placement, so
     repeated migrations don't fragment the directory forever *)
  let rec go acc = function
    | [] -> List.rev acc
    | (e : entry) :: rest -> (
      match acc with
      | (p : entry) :: acc'
        when String.equal p.Message.de_table e.Message.de_table
             && String.equal p.Message.de_hi e.Message.de_lo
             && String.equal p.Message.de_home e.Message.de_home
             && p.Message.de_replicas = e.Message.de_replicas ->
        go ({ p with Message.de_hi = e.Message.de_hi } :: acc') rest
      | _ -> go (e :: acc) rest)
  in
  go [] sorted

let validate entries =
  let sorted = List.sort compare_entry entries in
  let rec go = function
    | [] -> Ok ()
    | (e : entry) :: rest ->
      if e.Message.de_table = "" then Error "directory entry with empty table"
      else if String.compare e.Message.de_lo e.Message.de_hi >= 0 then
        Error
          (Printf.sprintf "directory entry %s[%s,%s) is empty or inverted"
             e.Message.de_table e.Message.de_lo e.Message.de_hi)
      else if e.Message.de_home = "" then
        Error
          (Printf.sprintf "directory entry %s[%s,%s) has no home" e.Message.de_table
             e.Message.de_lo e.Message.de_hi)
      else
        match rest with
        | (n : entry) :: _
          when String.equal n.Message.de_table e.Message.de_table
               && String.compare n.Message.de_lo e.Message.de_hi < 0 ->
          Error
            (Printf.sprintf "directory entries overlap in table %s at %s"
               e.Message.de_table n.Message.de_lo)
        | _ -> go rest
  in
  go sorted

let install t ~epoch ~entries =
  if epoch <= t.epoch then
    Error (Printf.sprintf "stale directory epoch %d (current is %d)" epoch t.epoch)
  else
    match validate entries with
    | Error _ as e -> e
    | Ok () ->
      t.epoch <- epoch;
      t.entries <- normalize entries;
      Ok ()

let entry_of t ~key =
  let table = Pequod_store.Store.table_name_of key in
  List.find_opt
    (fun (e : entry) ->
      String.equal e.Message.de_table table
      && String.compare e.Message.de_lo key <= 0
      && String.compare key e.Message.de_hi < 0)
    t.entries

let home_of t ~key = Option.map (fun (e : entry) -> e.Message.de_home) (entry_of t ~key)

let assign entries ~table ~lo ~hi ~home =
  if String.compare lo hi >= 0 then Error "empty migration range"
  else if home = "" then Error "empty destination address"
  else begin
    let overlapping, others =
      List.partition
        (fun (e : entry) ->
          String.equal e.Message.de_table table
          && String.compare e.Message.de_lo hi < 0
          && String.compare lo e.Message.de_hi < 0)
        entries
    in
    let overlapping = List.sort compare_entry overlapping in
    (* the range must be fully covered, by entries of a single current
       home: a migration moves data from one source server *)
    let cursor = ref lo in
    let gap = ref false in
    let sources = ref [] in
    List.iter
      (fun (e : entry) ->
        if String.compare !cursor e.Message.de_lo < 0 then gap := true;
        if String.compare !cursor e.Message.de_hi < 0 then cursor := e.Message.de_hi;
        if not (List.mem e.Message.de_home !sources) then
          sources := e.Message.de_home :: !sources)
      overlapping;
    if !gap || String.compare !cursor hi < 0 then
      Error (Printf.sprintf "range %s[%s,%s) is not fully covered by the directory" table lo hi)
    else
      match !sources with
      | [ _ ] ->
        let pieces =
          List.concat_map
            (fun (e : entry) ->
              let keep_left =
                if String.compare e.Message.de_lo lo < 0 then
                  [ { e with Message.de_hi = lo } ]
                else []
              in
              let keep_right =
                if String.compare hi e.Message.de_hi < 0 then
                  [ { e with Message.de_lo = hi } ]
                else []
              in
              keep_left @ keep_right)
            overlapping
        in
        let moved =
          { Message.de_table = table; de_lo = lo; de_hi = hi; de_home = home;
            de_replicas = [] }
        in
        Ok (normalize (moved :: pieces @ others))
      | srcs ->
        Error
          (Printf.sprintf "range %s[%s,%s) spans several homes (%s); migrate per home"
             table lo hi (String.concat ", " srcs))
  end

let add_replica entries ~table ~lo ~hi ~addr =
  if addr = "" then Error "empty replica address"
  else begin
    let touched = ref false in
    let conflict = ref false in
    let entries' =
      List.map
        (fun (e : entry) ->
          if
            String.equal e.Message.de_table table
            && String.compare e.Message.de_lo hi < 0
            && String.compare lo e.Message.de_hi < 0
          then begin
            touched := true;
            if String.equal e.Message.de_home addr then begin
              conflict := true;
              e
            end
            else if List.mem addr e.Message.de_replicas then e
            else { e with Message.de_replicas = e.Message.de_replicas @ [ addr ] }
          end
          else e)
        entries
    in
    if !conflict then
      Error (Printf.sprintf "%s is the home of part of %s[%s,%s)" addr table lo hi)
    else if not !touched then
      Error (Printf.sprintf "no directory entry overlaps %s[%s,%s)" table lo hi)
    else Ok (normalize entries')
  end

let to_lines t =
  Printf.sprintf "epoch %d, %d entries" t.epoch (List.length t.entries)
  :: List.map
       (fun (e : entry) ->
         Printf.sprintf "  %s[%s,%s) @ %s%s" e.Message.de_table e.Message.de_lo
           e.Message.de_hi e.Message.de_home
           (match e.Message.de_replicas with
           | [] -> ""
           | rs -> " replicas " ^ String.concat "," rs))
       t.entries
