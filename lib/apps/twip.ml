(** Twip, the paper's Twitter model (§2.1), implemented on five systems
    (§5.2): Pequod with cache joins, "client Pequod" (no joins, clients
    maintain timelines), a Redis model, a memcached model, and the mini
    relational database with triggers standing in for PostgreSQL.

    All five expose the same operations behind a record of closures and
    are driven through a {!Pequod_baselines.Meter} channel. Under the
    [Separate_process] deployment (used by the benchmark harness) each
    system's state lives in a forked server process and every operation is
    a genuine loopback-TCP RPC, as in the paper's setup; the [In_process]
    deployment (used by tests) keeps the handler local but still moves all
    bytes through the kernel. All five produce identical timeline contents
    — the test suite checks that — so measured differences come from the
    systems' architectures. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Meter = Pequod_baselines.Meter
module Redis = Pequod_baselines.Redis_model
module Memcached = Pequod_baselines.Memcached_model
module Db = Pequod_db.Db
module Query = Pequod_db.Query
module Relation = Pequod_db.Relation

let timeline_join =
  "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let time_str t = Strkey.encode_time t
(* tweet-sized values (~140 bytes): value sharing's memory effect (§4.3)
   is proportional to payload size *)
let tweet_text poster time =
  let base = Printf.sprintf "tweet by %s at %d " poster time in
  base ^ String.make (max 0 (140 - String.length base)) 'x'

type deployment = In_process | Separate_process

(** One Twip deployment: the uniform backend interface. [timeline] returns
    (time, poster, tweet) ascending; [bulk_subscribe] loads the social
    graph without paying per-subscription client fan-out (used for
    pre-experiment loading only); [shutdown] releases the channel (and the
    forked server, when there is one). *)
type backend = {
  name : string;
  subscribe : user:string -> poster:string -> unit;
  bulk_subscribe : user:string -> poster:string -> unit;
  post : poster:string -> time:string -> tweet:string -> unit;
  timeline : user:string -> since:string -> (string * string * string) list;
  rpcs : unit -> int;
  wire_bytes : unit -> int;
  memory_bytes : unit -> int;
  shutdown : unit -> unit;
}

(* parse a Pequod timeline key t|user|time|poster *)
let parse_tkey key tweet =
  match String.split_on_char '|' key with
  | [ _t; _user; time; poster ] -> Some (time, poster, tweet)
  | _ -> None

let make_channel deployment serve =
  match deployment with
  | In_process -> Meter.create ~handler:serve ()
  | Separate_process -> Meter.create_forked ~serve ()

(* ------------------------------------------------------------------ *)
(* Pequod and client Pequod share the engine-backed channel            *)

let pequod_channel ?config ~deployment ~joins () =
  let serve () =
    (* state is created lazily inside the closure so a forked child owns
       its engine exclusively *)
    let server = Server.create ?config () in
    List.iter (Server.add_join_exn server) joins;
    fun request ->
      Message.encode_response (Message.apply_to_server server (Message.decode_request request))
  in
  make_channel deployment (serve ())

let engine_backend ~name ~meter ~subscribe ~bulk_subscribe ~post ~timeline =
  let metrics_of meter =
    match
      Message.decode_response (Meter.call meter (Message.encode_request Message.Stats_full))
    with
    | Message.Metrics metrics -> metrics
    | _ -> []
  in
  {
    name;
    subscribe;
    bulk_subscribe;
    post;
    timeline;
    rpcs = (fun () -> meter.Meter.rpcs);
    wire_bytes = (fun () -> meter.Meter.bytes_sent + meter.Meter.bytes_received);
    memory_bytes =
      (fun () ->
        match List.assoc_opt "memory.bytes" (metrics_of meter) with
        | Some (Obs.Gauge n) | Some (Obs.Counter n) -> n
        | _ -> 0);
    shutdown = (fun () -> Meter.close meter);
  }

let rpc meter req = Message.decode_response (Meter.call meter (Message.encode_request req))

let put_rpc meter k v =
  match rpc meter (Message.Put (k, v)) with
  | Message.Done | Message.Stamps _ -> ()
  | _ -> assert false

let scan_rpc meter lo hi =
  match rpc meter (Message.Scan { lo; hi }) with Message.Pairs p -> p | _ -> assert false

(* the paper's Twip deployment marks timeline/post/subscription boundaries
   as subtables (§4.1) *)
let twip_config () =
  let c = Config.default () in
  c.Config.table_config <- (fun name -> match name with "t" | "p" | "s" -> Some 2 | _ -> None);
  c

(** 1. Pequod with the timeline cache join. *)
let pequod ?config ?(deployment = In_process) () =
  let config = match config with Some c -> c | None -> twip_config () in
  let meter = pequod_channel ~config ~deployment ~joins:[ timeline_join ] () in
  let subscribe ~user ~poster = put_rpc meter (Printf.sprintf "s|%s|%s" user poster) "1" in
  engine_backend ~name:"Pequod" ~meter ~subscribe ~bulk_subscribe:subscribe
    ~post:(fun ~poster ~time ~tweet -> put_rpc meter (Printf.sprintf "p|%s|%s" poster time) tweet)
    ~timeline:(fun ~user ~since ->
      let lo = Printf.sprintf "t|%s|%s" user since in
      let hi = Strkey.prefix_upper (Printf.sprintf "t|%s|" user) in
      List.filter_map (fun (k, v) -> parse_tkey k v) (scan_rpc meter lo hi))

(** 2. Client Pequod: same store, no joins; clients fan posts out and
    backfill new subscriptions themselves, paying an RPC per update. *)
let client_pequod ?config ?(deployment = In_process) () =
  let meter = pequod_channel ?config ~deployment ~joins:[] () in
  let bulk_subscribe ~user ~poster =
    put_rpc meter (Printf.sprintf "s|%s|%s" user poster) "1";
    (* reverse index so posting clients can find followers *)
    put_rpc meter (Printf.sprintf "rs|%s|%s" poster user) "1"
  in
  let subscribe ~user ~poster =
    bulk_subscribe ~user ~poster;
    (* backfill: copy the poster's existing posts into the timeline *)
    let posts =
      scan_rpc meter
        (Printf.sprintf "p|%s|" poster)
        (Strkey.prefix_upper (Printf.sprintf "p|%s|" poster))
    in
    List.iter
      (fun (k, tweet) ->
        match String.split_on_char '|' k with
        | [ _p; _poster; time ] ->
          put_rpc meter (Printf.sprintf "t|%s|%s|%s" user time poster) tweet
        | _ -> ())
      posts
  in
  engine_backend ~name:"Client Pequod" ~meter ~subscribe ~bulk_subscribe
    ~post:(fun ~poster ~time ~tweet ->
      put_rpc meter (Printf.sprintf "p|%s|%s" poster time) tweet;
      let followers =
        scan_rpc meter
          (Printf.sprintf "rs|%s|" poster)
          (Strkey.prefix_upper (Printf.sprintf "rs|%s|" poster))
      in
      List.iter
        (fun (k, _) ->
          match String.split_on_char '|' k with
          | [ _rs; _poster; user ] ->
            put_rpc meter (Printf.sprintf "t|%s|%s|%s" user time poster) tweet
          | _ -> ())
        followers)
    ~timeline:(fun ~user ~since ->
      let lo = Printf.sprintf "t|%s|%s" user since in
      let hi = Strkey.prefix_upper (Printf.sprintf "t|%s|" user) in
      List.filter_map (fun (k, v) -> parse_tkey k v) (scan_rpc meter lo hi))

(* ------------------------------------------------------------------ *)
(* 3. Redis model                                                      *)

let redis ?(deployment = In_process) () =
  let serve () =
    let r = Redis.create () in
    fun request -> Meter.encode_parts (Redis.dispatch r (Meter.decode_parts request))
  in
  let meter = make_channel deployment (serve ()) in
  let cmd parts = Meter.command meter parts in
  let bulk_subscribe ~user ~poster =
    ignore (cmd [ "SADD"; "following:" ^ user; poster ]);
    ignore (cmd [ "SADD"; "followers:" ^ poster; user ])
  in
  let pairs_of = function
    | [] -> []
    | flat ->
      let rec go = function
        | s :: m :: rest -> (s, m) :: go rest
        | _ -> []
      in
      go flat
  in
  let subscribe ~user ~poster =
    bulk_subscribe ~user ~poster;
    let posts = pairs_of (cmd [ "ZRANGEBYSCORE"; "posts:" ^ poster; ""; "\xfe" ]) in
    List.iter
      (fun (score, tweet) ->
        ignore (cmd [ "ZADD"; "timeline:" ^ user; score ^ "|" ^ poster; tweet ]))
      posts
  in
  {
    name = "Redis";
    subscribe;
    bulk_subscribe;
    post =
      (fun ~poster ~time ~tweet ->
        ignore (cmd [ "ZADD"; "posts:" ^ poster; time; tweet ]);
        let followers = cmd [ "SMEMBERS"; "followers:" ^ poster ] in
        List.iter
          (fun user -> ignore (cmd [ "ZADD"; "timeline:" ^ user; time ^ "|" ^ poster; tweet ]))
          followers);
    timeline =
      (fun ~user ~since ->
        let entries = pairs_of (cmd [ "ZRANGEBYSCORE"; "timeline:" ^ user; since; "\xfe" ]) in
        List.filter_map
          (fun (score, tweet) ->
            match String.split_on_char '|' score with
            | [ time; poster ] -> Some (time, poster, tweet)
            | _ -> None)
          entries);
    rpcs = (fun () -> meter.Meter.rpcs);
    wire_bytes = (fun () -> meter.Meter.bytes_sent + meter.Meter.bytes_received);
    memory_bytes =
      (fun () -> match cmd [ "MEMORY" ] with [ n ] -> int_of_string n | _ -> 0);
    shutdown = (fun () -> Meter.close meter);
  }

(* ------------------------------------------------------------------ *)
(* 4. memcached model                                                  *)

let memcached ?(deployment = In_process) () =
  let serve () =
    let m = Memcached.create () in
    fun request -> Meter.encode_parts (Memcached.dispatch m (Meter.decode_parts request))
  in
  let meter = make_channel deployment (serve ()) in
  let cmd parts = Meter.command meter parts in
  let append_entry key entry =
    match cmd [ "append"; key; entry ] with
    | [ "STORED" ] -> ()
    | _ -> ignore (cmd [ "set"; key; entry ])
  in
  let get key = match cmd [ "get"; key ] with [ v ] -> Some v | _ -> None in
  let parse_lines v =
    String.split_on_char '\n' v
    |> List.filter_map (fun line ->
           match String.split_on_char '|' line with
           | [ time; poster; tweet ] -> Some (time, poster, tweet)
           | _ -> None)
  in
  let get_members key =
    match get key with
    | Some v -> String.split_on_char ' ' v |> List.filter (fun s -> s <> "")
    | None -> []
  in
  let bulk_subscribe ~user ~poster =
    (* read-modify-write keeps the follower list duplicate-free *)
    let followers = get_members ("followers:" ^ poster) in
    if not (List.mem user followers) then append_entry ("followers:" ^ poster) (user ^ " ");
    let following = get_members ("following:" ^ user) in
    if not (List.mem poster following) then append_entry ("following:" ^ user) (poster ^ " ")
  in
  let subscribe ~user ~poster =
    bulk_subscribe ~user ~poster;
    match get ("posts:" ^ poster) with
    | None -> ()
    | Some v ->
      List.iter
        (fun (time, poster, tweet) ->
          append_entry ("timeline:" ^ user) (Printf.sprintf "%s|%s|%s\n" time poster tweet))
        (parse_lines v)
  in
  {
    name = "memcached";
    subscribe;
    bulk_subscribe;
    post =
      (fun ~poster ~time ~tweet ->
        append_entry ("posts:" ^ poster) (Printf.sprintf "%s|%s|%s\n" time poster tweet);
        List.iter
          (fun user ->
            append_entry ("timeline:" ^ user) (Printf.sprintf "%s|%s|%s\n" time poster tweet))
          (get_members ("followers:" ^ poster)));
    timeline =
      (fun ~user ~since ->
        let v = Option.value ~default:"" (get ("timeline:" ^ user)) in
        parse_lines v
        |> List.filter (fun (time, _, _) -> String.compare time since >= 0)
        |> List.sort compare);
    rpcs = (fun () -> meter.Meter.rpcs);
    wire_bytes = (fun () -> meter.Meter.bytes_sent + meter.Meter.bytes_received);
    memory_bytes =
      (fun () -> match cmd [ "MEMORY" ] with [ n ] -> int_of_string n | _ -> 0);
    shutdown = (fun () -> Meter.close meter);
  }

(* ------------------------------------------------------------------ *)
(* 5. PostgreSQL model: relational tables, triggers maintain timelines *)

let make_twip_db () =
  let db = Db.create () in
  let _p = Db.create_table db ~name:"p" ~columns:[ "poster"; "time"; "tweet" ] ~key:[ "poster"; "time" ] in
  let _s = Db.create_table db ~name:"s" ~columns:[ "user"; "poster" ] ~key:[ "user"; "poster" ] in
  let _tl =
    Db.create_table db ~name:"tl"
      ~columns:[ "user"; "time"; "poster"; "tweet" ]
      ~key:[ "user"; "time"; "poster" ]
  in
  Db.add_index db ~table:"s" ~columns:[ "poster" ];
  (* trigger: a new post fans out into follower timelines *)
  Db.create_trigger db ~table:"p" (fun change row ->
      match change with
      | Db.Row_insert ->
        Relation.scan_index (Db.table db "s") ~columns:[ "poster" ] ~values:[ row.(0) ]
          (fun srow -> Db.insert db ~table:"tl" [ srow.(0); row.(1); row.(0); row.(2) ])
      | Db.Row_delete ->
        Relation.scan_index (Db.table db "s") ~columns:[ "poster" ] ~values:[ row.(0) ]
          (fun srow -> ignore (Db.delete db ~table:"tl" [ srow.(0); row.(1); row.(0) ])));
  (* trigger: a new subscription backfills the follower's timeline *)
  Db.create_trigger db ~table:"s" (fun change row ->
      match change with
      | Db.Row_insert ->
        Relation.scan_prefix (Db.table db "p") [ row.(1) ] (fun prow ->
            Db.insert db ~table:"tl" [ row.(0); prow.(1); prow.(0); prow.(2) ])
      | Db.Row_delete ->
        Relation.scan_prefix (Db.table db "p") [ row.(1) ] (fun prow ->
            ignore (Db.delete db ~table:"tl" [ row.(0); prow.(1); prow.(0) ])));
  (* real PostgreSQL pays tens of microseconds of parse/plan/MVCC work per
     statement even tuned for memory; model that honestly *)
  Db.set_statement_overhead db 120;
  db

let pg_dispatch db parts =
  match parts with
  | [ "INSERT"; "s"; user; poster ] ->
    Db.insert db ~table:"s" [ user; poster ];
    [ "INSERT 0 1" ]
  | [ "INSERT"; "p"; poster; time; tweet ] ->
    Db.insert db ~table:"p" [ poster; time; tweet ];
    [ "INSERT 0 1" ]
  | [ "SELECT"; "tl"; user; since ] ->
    Db.statement_begin db;
    let q =
      Query.make
        ~terms:[ { Query.relation = Db.table db "tl"; alias = "tl" } ]
        ~preds:[ Query.Const ("tl", "user", user); Query.Ge ("tl", "time", since) ]
        ~select:[ ("tl", "time"); ("tl", "poster"); ("tl", "tweet") ]
    in
    Query.exec_list q |> List.concat_map (fun r -> [ r.(0); r.(1); r.(2) ])
  | [ "MEMORY" ] -> [ string_of_int (Db.total_rows db * 96) ]
  | _ -> [ "ERROR" ]

let postgres ?(deployment = In_process) () =
  let serve () =
    let db = make_twip_db () in
    fun request -> Meter.encode_parts (pg_dispatch db (Meter.decode_parts request))
  in
  let meter = make_channel deployment (serve ()) in
  let cmd parts = Meter.command meter parts in
  let subscribe ~user ~poster = ignore (cmd [ "INSERT"; "s"; user; poster ]) in
  {
    name = "PostgreSQL";
    subscribe;
    bulk_subscribe = subscribe;
    post = (fun ~poster ~time ~tweet -> ignore (cmd [ "INSERT"; "p"; poster; time; tweet ]));
    timeline =
      (fun ~user ~since ->
        let rec triple = function
          | time :: poster :: tweet :: rest -> (time, poster, tweet) :: triple rest
          | _ -> []
        in
        triple (cmd [ "SELECT"; "tl"; user; since ]));
    rpcs = (fun () -> meter.Meter.rpcs);
    wire_bytes = (fun () -> meter.Meter.bytes_sent + meter.Meter.bytes_received);
    memory_bytes =
      (fun () -> match cmd [ "MEMORY" ] with [ n ] -> int_of_string n | _ -> 0);
    shutdown = (fun () -> Meter.close meter);
  }

(* ------------------------------------------------------------------ *)
(* Workload driver                                                     *)

type run_result = {
  system : string;
  elapsed : float;
  rpcs : int;
  wire_bytes : int;
  memory : int;
  entries_read : int;
}

(** Load the social graph (bulk, uniform across systems). *)
let load_graph (backend : backend) graph =
  let n = Social_graph.nusers graph in
  for u = 0 to n - 1 do
    let user = Social_graph.user_name u in
    Array.iter
      (fun p -> backend.bulk_subscribe ~user ~poster:(Social_graph.user_name p))
      (Social_graph.following graph u)
  done

(** Pre-populate post history (times [0..nposts)), before the graph is
    loaded: a paper-style corpus of old tweets that reads rarely touch.
    Run this BEFORE [load_graph] so client-managed systems do not fan the
    history out (no subscriptions exist yet). *)
let preload_posts (backend : backend) graph ~rng ~nposts =
  let weights = Social_graph.posting_weights graph in
  let posting = Rng.Alias.create weights in
  for time = 0 to nposts - 1 do
    let poster = Social_graph.user_name (Rng.Alias.sample posting rng) in
    backend.post ~poster ~time:(time_str time) ~tweet:(tweet_text poster time)
  done

(** Run a Twip op stream to completion, tracking per-user last-seen times
    so Check ops are incremental, as in §5.1: logins fetch "a list of many
    recent tweets" (a window of recent history), checks fetch what is new
    since the user last looked. *)
let run ?login_window ?(initial_clock = 0) (backend : backend) graph (w : Workload.t) =
  let n = Social_graph.nusers graph in
  let window =
    match login_window with Some w -> w | None -> max 1 (w.Workload.nposts / 4)
  in
  let last_seen = Array.make n initial_clock in
  let clock = ref initial_clock in
  let entries = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun op ->
      match op with
      | Workload.Login u ->
        let since = time_str (max 0 (!clock - window)) in
        let tl = backend.timeline ~user:(Social_graph.user_name u) ~since in
        entries := !entries + List.length tl;
        last_seen.(u) <- !clock
      | Workload.Check u ->
        let since = time_str (last_seen.(u) + 1) in
        let tl = backend.timeline ~user:(Social_graph.user_name u) ~since in
        entries := !entries + List.length tl;
        last_seen.(u) <- !clock
      | Workload.Subscribe (u, p) ->
        backend.subscribe ~user:(Social_graph.user_name u) ~poster:(Social_graph.user_name p)
      | Workload.Post (p, time) ->
        clock := max !clock time;
        let poster = Social_graph.user_name p in
        backend.post ~poster ~time:(time_str time) ~tweet:(tweet_text poster time))
    w.Workload.ops;
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    system = backend.name;
    elapsed;
    rpcs = backend.rpcs ();
    wire_bytes = backend.wire_bytes ();
    memory = backend.memory_bytes ();
    entries_read = !entries;
  }
