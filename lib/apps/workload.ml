(** Twip workload generation (§5.1).

    The op mix models the paper's client behaviour: 5% initial timeline
    scans (logins), 9% new subscriptions, 85% incremental timeline checks,
    1% posts. A fraction of users is active; each active user logs in,
    repeatedly checks, and posts with probability proportional to the log
    of their follower count. Times are a global logical counter encoded
    fixed-width so they sort correctly.

    Ops come from a {e streaming} iterator ({!stream}/{!next}): state is
    one Rng, the active-user sample and the posting alias table, so a
    million-user, ten-million-op run needs no op array. {!generate}
    materializes a stream into the classic [op array] for the in-process
    benchmarks; both produce the identical sequence for equal seeds. *)

type op =
  | Login of int (* initial timeline scan: everything recent *)
  | Check of int (* incremental scan since last check *)
  | Subscribe of int * int (* user follows poster *)
  | Post of int * int (* poster, time *)

type t = {
  ops : op array;
  nposts : int;
  nchecks : int;
  nlogins : int;
  nsubs : int;
}

let mix_default = (0.05, 0.09, 0.85, 0.01)

(* ------------------------------------------------------------------ *)
(* Streaming iterator                                                  *)

type stream = {
  st_rng : Rng.t;
  st_active : int array;
  st_posting : Rng.Alias.dist;
  st_nusers : int;
  st_mix : float * float * float * float;
  st_stride : int;
  mutable st_time : int;
  st_logged_in : (int, unit) Hashtbl.t;
  mutable st_nposts : int;
  mutable st_nchecks : int;
  mutable st_nlogins : int;
  mutable st_nsubs : int;
}

(** An unbounded op stream over [active_fraction] of the graph's users.
    [mix] is (login, subscribe, check, post), default the paper's
    5/9/85/1. Posts receive strictly increasing times starting at
    [first_time + time_stride]; a multi-worker driver gives worker [i]
    of [n] [~first_time:(base + i) ~time_stride:n] so concurrent
    workers never collide on a post key. *)
let stream ~rng ~graph ?(active_fraction = 0.7) ?(mix = mix_default)
    ?(first_time = 1_000_000) ?(time_stride = 1) () =
  if time_stride < 1 then invalid_arg "Workload.stream: time_stride < 1";
  let nusers = Social_graph.nusers graph in
  let nactive = max 1 (int_of_float (float_of_int nusers *. active_fraction)) in
  (* active users are a random sample *)
  let ids = Array.init nusers (fun i -> i) in
  Rng.shuffle rng ids;
  let active = Array.sub ids 0 nactive in
  let posting = Rng.Alias.create (Social_graph.posting_weights graph) in
  { st_rng = rng; st_active = active; st_posting = posting; st_nusers = nusers;
    st_mix = mix; st_stride = time_stride; st_time = first_time;
    st_logged_in = Hashtbl.create nactive; st_nposts = 0; st_nchecks = 0; st_nlogins = 0;
    st_nsubs = 0 }

let next st =
  let rng = st.st_rng in
  let nactive = Array.length st.st_active in
  let l, s, c, _p = st.st_mix in
  let r = Rng.float rng in
  if r < l then begin
    st.st_nlogins <- st.st_nlogins + 1;
    let u = st.st_active.(Rng.int rng nactive) in
    Hashtbl.replace st.st_logged_in u ();
    Login u
  end
  else if r < l +. s then begin
    st.st_nsubs <- st.st_nsubs + 1;
    let u = st.st_active.(Rng.int rng nactive) in
    let p = Rng.Alias.sample st.st_posting rng in
    let p = if p = u then (p + 1) mod st.st_nusers else p in
    Subscribe (u, p)
  end
  else if r < l +. s +. c then begin
    st.st_nchecks <- st.st_nchecks + 1;
    Check (st.st_active.(Rng.int rng nactive))
  end
  else begin
    st.st_nposts <- st.st_nposts + 1;
    st.st_time <- st.st_time + st.st_stride;
    Post (Rng.Alias.sample st.st_posting rng, st.st_time)
  end

(* ------------------------------------------------------------------ *)
(* Materialized workloads (the in-process benchmarks)                  *)

(** Generate [total_ops] operations over [active] users of the graph:
    the stream above, materialized. *)
let generate ~rng ~graph ?(active_fraction = 0.7) ?(mix = mix_default) ~total_ops
    ?(first_time = 1_000_000) () =
  let st = stream ~rng ~graph ~active_fraction ~mix ~first_time () in
  let ops = Array.init total_ops (fun _ -> next st) in
  { ops; nposts = st.st_nposts; nchecks = st.st_nchecks; nlogins = st.st_nlogins;
    nsubs = st.st_nsubs }

(** A check+post-only workload for the materialization experiment (Fig 8):
    [nchecks] timeline checks spread uniformly over the active users,
    interleaved with [nposts] posts. *)
let checks_and_posts ~rng ~graph ~active_fraction ~nchecks ~nposts ?(first_time = 1_000_000) () =
  let nusers = Social_graph.nusers graph in
  let nactive = max 1 (int_of_float (float_of_int nusers *. active_fraction)) in
  let ids = Array.init nusers (fun i -> i) in
  Rng.shuffle rng ids;
  let active = Array.sub ids 0 nactive in
  let posting = Rng.Alias.create (Social_graph.posting_weights graph) in
  let total = nchecks + nposts in
  let time = ref first_time in
  let ops =
    Array.init total (fun i ->
        (* deterministic interleave with the right ratio *)
        if nposts > 0 && i mod (max 1 (total / nposts)) = 0 && !time - first_time < nposts then begin
          incr time;
          Post (Rng.Alias.sample posting rng, !time)
        end
        else Check (active.(Rng.int rng nactive)))
  in
  { ops; nposts; nchecks; nlogins = 0; nsubs = 0 }
