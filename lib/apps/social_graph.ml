(** Synthetic Twitter-like social graph.

    Stands in for the 2009 crawl the paper samples (§5.1): follower counts
    follow a Zipf distribution (a few celebrities with enormous audiences,
    a long tail of small accounts), and each user follows a dispersed,
    popularity-biased set of accounts. Generation is deterministic in the
    seed, so experiments are reproducible and all backends see the same
    graph.

    The representation is CSR (compressed sparse row): both directions of
    the graph live in four flat int arrays — an offset index of length
    [nusers + 1] and a packed edge array per direction — with no per-user
    boxes. A million-user graph with ~e edges costs [2e + 2(nusers + 1)]
    words, which is what lets the cluster load harness drive 1M+ users
    from one coordinator process. *)

type t = {
  nusers : int;
  f_idx : int array;  (* user u follows f_edges.[f_idx.(u) .. f_idx.(u+1)) *)
  f_edges : int array;  (* sorted within each user's segment *)
  r_idx : int array;  (* poster p is followed by r_edges.[r_idx.(p) .. r_idx.(p+1)) *)
  r_edges : int array;  (* sorted within each poster's segment *)
}

let nusers t = t.nusers
let edge_count t = t.f_idx.(t.nusers)
let follow_count t u = t.f_idx.(u + 1) - t.f_idx.(u)
let follower_count t p = t.r_idx.(p + 1) - t.r_idx.(p)

(* materialized segment copies, for small-graph callers; the load path
   uses the iterators below and never allocates *)
let following t u = Array.sub t.f_edges t.f_idx.(u) (follow_count t u)
let followers t p = Array.sub t.r_edges t.r_idx.(p) (follower_count t p)

let iter_following t u f =
  for i = t.f_idx.(u) to t.f_idx.(u + 1) - 1 do
    f t.f_edges.(i)
  done

let iter_followers t p f =
  for i = t.r_idx.(p) to t.r_idx.(p + 1) - 1 do
    f t.r_edges.(i)
  done

(** Words of live heap the CSR arrays hold (headers included): the
    memory contract the scale tests assert against. *)
let memory_words t =
  let arr a = Array.length a + 1 in
  arr t.f_idx + arr t.f_edges + arr t.r_idx + arr t.r_edges + 6 (* record + fields *)

(** Canonical user name: fixed width so names sort like ids (valid for
    ids below 1e6; the generator refuses larger graphs). *)
let user_name u = Printf.sprintf "u%06d" u

let max_users = 1_000_000

(* in-place insertion sort of a.[lo, hi) — segments are tiny (a user's
   follow list), so no allocation beats Array.sort's closure *)
let sort_segment a lo hi =
  for i = lo + 1 to hi - 1 do
    let v = a.(i) in
    let j = ref i in
    while !j > lo && a.(!j - 1) > v do
      a.(!j) <- a.(!j - 1);
      decr j
    done;
    a.(!j) <- v
  done

let segment_mem a lo hi v =
  let found = ref false in
  for i = lo to hi - 1 do
    if a.(i) = v then found := true
  done;
  !found

let generate ~rng ~nusers ~avg_follows ?(zipf_s = 1.0) () =
  if nusers <= 1 then invalid_arg "Social_graph.generate: need at least 2 users";
  if nusers > max_users then
    invalid_arg "Social_graph.generate: user names are fixed-width below 1e6";
  let popularity = Rng.Zipf.create ~n:nusers ~s:zipf_s in
  (* pass 1: target out-degrees (skewed: most users follow a few, some
     follow many), prefix-summed into the forward index *)
  let degrees =
    Array.init nusers (fun _ ->
        max 1 (int_of_float (float_of_int avg_follows *. (0.25 +. (1.5 *. Rng.float rng)))))
  in
  let f_idx = Array.make (nusers + 1) 0 in
  for u = 0 to nusers - 1 do
    f_idx.(u + 1) <- f_idx.(u) + degrees.(u)
  done;
  let f_edges = Array.make f_idx.(nusers) 0 in
  (* pass 2: popularity-biased distinct targets, drawn straight into
     each user's segment; a duplicate-heavy user may fall short of its
     target degree once the rejection guard runs out *)
  for u = 0 to nusers - 1 do
    let base = f_idx.(u) and k = degrees.(u) in
    let filled = ref 0 and guard = ref 0 in
    while !filled < k && !guard < 20 * k do
      let p = Rng.Zipf.sample popularity rng in
      if p <> u && not (segment_mem f_edges base (base + !filled) p) then begin
        f_edges.(base + !filled) <- p;
        incr filled
      end
      else incr guard
    done;
    degrees.(u) <- !filled
  done;
  (* compact away the shortfall (forward shift keeps segment order) *)
  let write = ref 0 in
  for u = 0 to nusers - 1 do
    let base = f_idx.(u) in
    for i = 0 to degrees.(u) - 1 do
      f_edges.(!write + i) <- f_edges.(base + i)
    done;
    f_idx.(u) <- !write;
    write := !write + degrees.(u);
    sort_segment f_edges f_idx.(u) !write
  done;
  f_idx.(nusers) <- !write;
  let f_edges = if !write = Array.length f_edges then f_edges else Array.sub f_edges 0 !write in
  (* reverse CSR by counting sort; scanning users in order leaves every
     follower segment sorted for free *)
  let r_idx = Array.make (nusers + 1) 0 in
  Array.iter (fun p -> r_idx.(p + 1) <- r_idx.(p + 1) + 1) f_edges;
  for p = 0 to nusers - 1 do
    r_idx.(p + 1) <- r_idx.(p + 1) + r_idx.(p)
  done;
  let r_edges = Array.make !write 0 in
  let cursor = Array.init nusers (fun p -> r_idx.(p)) in
  for u = 0 to nusers - 1 do
    for i = f_idx.(u) to f_idx.(u + 1) - 1 do
      let p = f_edges.(i) in
      r_edges.(cursor.(p)) <- u;
      cursor.(p) <- cursor.(p) + 1
    done
  done;
  { nusers; f_idx; f_edges; r_idx; r_edges }

(** Per-user posting weight: proportional to log(follower count), as in
    §5.1 ("more popular users tweet more often"). *)
let posting_weights t =
  Array.init t.nusers (fun u -> log (float_of_int (follower_count t u) +. 2.0))
