(** Newp, the paper's Hacker-News model (§2.3, §5.4).

    Users author articles, comment, and vote; an article page shows the
    article, its vote count (rank), its comments, and each commenter's
    karma (count of votes on articles that commenter authored).

    Two variants compare the §5.4 join choices:
    - {e non-interleaved}: karma and rank live in their own ranges; a page
      read issues several RPCs in two round trips (the second fetches each
      commenter's karma);
    - {e interleaved}: the Fig 1 joins colocate everything under one
      [page|author|id|] range; a page read is a single scan, but every
      vote does more server-side work. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Meter = Pequod_baselines.Meter

let base_joins =
  [
    "karma|<author> = count vote|<author>|<id>|<voter>";
    "rank|<author>|<id> = count vote|<author>|<id>|<voter>";
  ]

let interleave_joins =
  [
    "page|<author>|<id>|a = copy article|<author>|<id>";
    "page|<author>|<id>|r = copy rank|<author>|<id>";
    "page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>";
    "page|<author>|<id>|k|<cid>|<commenter> = check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>";
  ]

type page = {
  article : string;
  rank : int;
  comments : (string * string * string) list; (* cid, commenter, text *)
  karma : (string * int) list; (* commenter -> karma, per comment, deduped *)
}

type backend = {
  name : string;
  add_article : author:string -> id:string -> text:string -> unit;
  add_comment : author:string -> id:string -> cid:string -> commenter:string -> text:string -> unit;
  vote : author:string -> id:string -> voter:string -> unit;
  read_page : author:string -> id:string -> page;
  rpcs : unit -> int;
  wire_bytes : unit -> int;
  memory_bytes : unit -> int;
  shutdown : unit -> unit;
}

type deployment = Twip.deployment = In_process | Separate_process

let make ~interleaved ?config ?(deployment = In_process) () =
  let serve () =
    let server = Server.create ?config () in
    List.iter (Server.add_join_exn server) base_joins;
    if interleaved then List.iter (Server.add_join_exn server) interleave_joins;
    fun request ->
      Message.encode_response (Message.apply_to_server server (Message.decode_request request))
  in
  let meter =
    match deployment with
    | In_process -> Meter.create ~handler:(serve ()) ()
    | Separate_process -> Meter.create_forked ~serve:(serve ()) ()
  in
  let rpc req = Message.decode_response (Meter.call meter (Message.encode_request req)) in
  let put k v =
    match rpc (Message.Put (k, v)) with
    | Message.Done | Message.Stamps _ -> ()
    | _ -> assert false
  in
  let get k = match rpc (Message.Get k) with Message.Value v -> v | _ -> assert false in
  let scan lo hi =
    match rpc (Message.Scan { lo; hi }) with Message.Pairs p -> p | _ -> assert false
  in
  let add_article ~author ~id ~text = put (Printf.sprintf "article|%s|%s" author id) text in
  let add_comment ~author ~id ~cid ~commenter ~text =
    put (Printf.sprintf "comment|%s|%s|%s|%s" author id cid commenter) text
  in
  let vote ~author ~id ~voter = put (Printf.sprintf "vote|%s|%s|%s" author id voter) "1" in
  let read_page_interleaved ~author ~id =
    let prefix = Printf.sprintf "page|%s|%s|" author id in
    let pairs = scan prefix (Strkey.prefix_upper prefix) in
    let article = ref "" and rank = ref 0 and comments = ref [] and karma = ref [] in
    List.iter
      (fun (k, v) ->
        match String.split_on_char '|' k with
        | [ _page; _a; _i; "a" ] -> article := v
        | [ _page; _a; _i; "r" ] -> rank := int_of_string v
        | [ _page; _a; _i; "c"; cid; commenter ] -> comments := (cid, commenter, v) :: !comments
        | [ _page; _a; _i; "k"; _cid; commenter ] ->
          if not (List.mem_assoc commenter !karma) then
            karma := (commenter, int_of_string v) :: !karma
        | _ -> ())
      pairs;
    { article = !article; rank = !rank; comments = List.rev !comments;
      karma = List.sort compare !karma }
  in
  let read_page_separate ~author ~id =
    (* round trip 1: article, rank, comments *)
    let article = Option.value ~default:"" (get (Printf.sprintf "article|%s|%s" author id)) in
    let rank =
      match get (Printf.sprintf "rank|%s|%s" author id) with
      | Some v -> int_of_string v
      | None -> 0
    in
    let cprefix = Printf.sprintf "comment|%s|%s|" author id in
    let comments =
      scan cprefix (Strkey.prefix_upper cprefix)
      |> List.filter_map (fun (k, v) ->
             match String.split_on_char '|' k with
             | [ _c; _a; _i; cid; commenter ] -> Some (cid, commenter, v)
             | _ -> None)
    in
    (* round trip 2: karma of each distinct commenter *)
    let commenters =
      List.sort_uniq compare (List.map (fun (_, commenter, _) -> commenter) comments)
    in
    (* a commenter with no karma key has no karma row, matching the
       interleaved join's semantics (count emits nothing for zero) *)
    let karma =
      List.filter_map
        (fun commenter ->
          match get ("karma|" ^ commenter) with
          | Some v -> Some (commenter, int_of_string v)
          | None -> None)
        commenters
    in
    { article; rank; comments; karma }
  in
  {
    name = (if interleaved then "Interleaved" else "Non-interleaved");
    add_article;
    add_comment;
    vote;
    read_page = (if interleaved then read_page_interleaved else read_page_separate);
    rpcs = (fun () -> meter.Meter.rpcs);
    wire_bytes = (fun () -> meter.Meter.bytes_sent + meter.Meter.bytes_received);
    memory_bytes =
      (fun () ->
        match rpc Message.Stats_full with
        | Message.Metrics metrics -> (
          match List.assoc_opt "memory.bytes" metrics with
          | Some (Obs.Gauge n) | Some (Obs.Counter n) -> n
          | _ -> 0)
        | _ -> 0);
    shutdown = (fun () -> Meter.close meter);
  }

(* ------------------------------------------------------------------ *)
(* Workload (§5.4)                                                     *)

type dataset = {
  narticles : int;
  nusers : int;
  ncomments : int;
  nvotes : int;
}

(* article authors come from the same user pool as commenters and
   voters: a user's karma (votes on their articles) then feeds the page
   ranges of every article they commented on, as in the paper *)
let article_of ~nusers i =
  (Printf.sprintf "u%05d" (i * 7919 mod nusers), Printf.sprintf "a%06d" i)

(** Pre-populate articles, comments and votes; deterministic in [rng]. *)
let populate (backend : backend) ~rng (d : dataset) =
  for i = 0 to d.narticles - 1 do
    let author, id = article_of ~nusers:d.nusers i in
    backend.add_article ~author ~id ~text:(Printf.sprintf "article %d body" i)
  done;
  for c = 0 to d.ncomments - 1 do
    let author, id = article_of ~nusers:d.nusers (Rng.int rng d.narticles) in
    backend.add_comment ~author ~id
      ~cid:(Printf.sprintf "c%07d" c)
      ~commenter:(Printf.sprintf "u%05d" (Rng.int rng d.nusers))
      ~text:(Printf.sprintf "comment %d" c)
  done;
  for _v = 0 to d.nvotes - 1 do
    let author, id = article_of ~nusers:d.nusers (Rng.int rng d.narticles) in
    backend.vote ~author ~id ~voter:(Printf.sprintf "u%05d" (Rng.int rng d.nusers))
  done

type session_result = {
  system : string;
  elapsed : float;
  rpcs : int;
  wire_bytes : int;
  pages_read : int;
}

(** Run [nsessions] user sessions: each reads a random article, votes with
    probability [vote_rate], and comments with probability 1%. *)
let run_sessions (backend : backend) ~rng (d : dataset) ~nsessions ~vote_rate =
  let rpcs0 = backend.rpcs () and bytes0 = backend.wire_bytes () in
  let pages = ref 0 in
  let next_cid = ref 10_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to nsessions do
    let i = Rng.int rng d.narticles in
    let author, id = article_of ~nusers:d.nusers i in
    let _page = backend.read_page ~author ~id in
    incr pages;
    if Rng.bool rng vote_rate then
      backend.vote ~author ~id ~voter:(Printf.sprintf "u%05d" (Rng.int rng d.nusers));
    if Rng.bool rng 0.01 then begin
      incr next_cid;
      backend.add_comment ~author ~id
        ~cid:(Printf.sprintf "c%07d" !next_cid)
        ~commenter:(Printf.sprintf "u%05d" (Rng.int rng d.nusers))
        ~text:"session comment"
    end
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    system = backend.name;
    elapsed;
    rpcs = backend.rpcs () - rpcs0;
    wire_bytes = backend.wire_bytes () - bytes0;
    pages_read = !pages;
  }
