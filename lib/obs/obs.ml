(** Metrics registry + operation trace. See obs.mli for the contract.

    Everything here is designed for a single-threaded server: metric
    handles are records with mutable fields, so a pre-resolved handle
    makes recording one load, one branch, and one store. *)

let enabled =
  ref
    (match Sys.getenv_opt "PEQUOD_OBS" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)

module Counter = struct
  type t = { c_name : string; mutable c_value : int }

  let incr c = if !enabled then c.c_value <- c.c_value + 1
  let add c n = if !enabled then c.c_value <- c.c_value + n
  let force_add c n = c.c_value <- c.c_value + n
  let set c n = c.c_value <- n
  let value c = c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = { g_name : string; mutable g_value : int }

  let set g n = g.g_value <- n
  let add g n = g.g_value <- g.g_value + n
  let value g = g.g_value
  let name g = g.g_name
end

module Histogram = struct
  (* Log-scaled buckets: 0..15 hold their value exactly; from 16 up,
     four sub-buckets per power of two, so bucket width / lower bound
     <= 1/4 and a midpoint representative is within ~12% of any sample
     in the bucket. 256 slots cover the whole 63-bit range. *)
  let nbuckets = 256

  type t = {
    h_name : string;
    h_buckets : int array;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
  }

  let make name =
    { h_name = name; h_buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0;
      h_min = 0; h_max = 0 }

  let bucket_of v =
    if v < 16 then if v < 0 then 0 else v
    else begin
      (* m = position of the highest set bit (>= 4 here) *)
      let m = ref 4 and x = ref (v lsr 5) in
      while !x > 0 do
        incr m;
        x := !x lsr 1
      done;
      16 + ((!m - 4) * 4) + ((v lsr (!m - 2)) land 3)
    end

  (* inclusive [lo, hi] of one bucket *)
  let bounds_of idx =
    if idx < 16 then (idx, idx)
    else begin
      let k = idx - 16 in
      let m = 4 + (k / 4) and sub = k mod 4 in
      let step = 1 lsl (m - 2) in
      let lo = (1 lsl m) + (sub * step) in
      (lo, lo + step - 1)
    end

  let observe h v =
    if !enabled then begin
      let v = if v < 0 then 0 else v in
      h.h_buckets.(bucket_of v) <- h.h_buckets.(bucket_of v) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      if h.h_count = 1 || v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end

  let quantile h q =
    if h.h_count = 0 then 0
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let idx = ref 0 and cum = ref 0 in
      (try
         for i = 0 to nbuckets - 1 do
           cum := !cum + h.h_buckets.(i);
           if !cum >= rank then begin
             idx := i;
             raise Exit
           end
         done
       with Exit -> ());
      let lo, hi = bounds_of !idx in
      let mid = lo + ((hi - lo) / 2) in
      (* never report outside the observed extremes *)
      if mid < h.h_min then h.h_min else if mid > h.h_max then h.h_max else mid
    end

  type snapshot = {
    count : int;
    sum : int;
    min : int;
    max : int;
    p50 : int;
    p95 : int;
    p99 : int;
  }

  let snapshot h =
    { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
      p50 = quantile h 0.50; p95 = quantile h 0.95; p99 = quantile h 0.99 }

  let reset h =
    Array.fill h.h_buckets 0 nbuckets 0;
    h.h_count <- 0;
    h.h_sum <- 0;
    h.h_min <- 0;
    h.h_max <- 0

  let name h = h.h_name

  (* ---------------------------------------------------------------- *)
  (* Dense snapshots: the full bucket-resolution state, as shipped
     between processes and merged for cluster-wide percentiles. The
     p50/p95/p99 in [snapshot] cannot be combined after the fact;
     bucket counts can — merging is exact at bucket resolution. *)

  type dense = {
    d_buckets : int array;
    d_count : int;
    d_sum : int;
    d_min : int;
    d_max : int;
  }

  let dense h =
    { d_buckets = Array.copy h.h_buckets; d_count = h.h_count; d_sum = h.h_sum;
      d_min = h.h_min; d_max = h.h_max }

  let merge a b =
    if a.d_count = 0 then b
    else if b.d_count = 0 then a
    else
      { d_buckets = Array.init nbuckets (fun i -> a.d_buckets.(i) + b.d_buckets.(i));
        d_count = a.d_count + b.d_count;
        d_sum = a.d_sum + b.d_sum;
        d_min = min a.d_min b.d_min;
        d_max = max a.d_max b.d_max }

  (* aggregation is harness work, never gated on [enabled] *)
  let absorb h d =
    if d.d_count > 0 then begin
      Array.iteri (fun i c -> h.h_buckets.(i) <- h.h_buckets.(i) + c) d.d_buckets;
      if h.h_count = 0 || d.d_min < h.h_min then h.h_min <- d.d_min;
      if d.d_max > h.h_max then h.h_max <- d.d_max;
      h.h_count <- h.h_count + d.d_count;
      h.h_sum <- h.h_sum + d.d_sum
    end

  (* compact single-line wire form for worker->coordinator pipes:
     "count sum min max idx:n,idx:n,..." with empty buckets elided *)
  let dense_to_string d =
    let buf = Buffer.create 128 in
    Printf.bprintf buf "%d %d %d %d " d.d_count d.d_sum d.d_min d.d_max;
    let first = ref true in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          if not !first then Buffer.add_char buf ',';
          first := false;
          Printf.bprintf buf "%d:%d" i c
        end)
      d.d_buckets;
    Buffer.contents buf

  let dense_of_string s =
    let fail () = failwith ("Obs.Histogram.dense_of_string: malformed " ^ s) in
    let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
    match String.split_on_char ' ' (String.trim s) with
    | count :: sum :: mn :: mx :: rest ->
      let buckets = Array.make nbuckets 0 in
      (match rest with
      | [] | [ "" ] -> ()
      | [ spec ] ->
        List.iter
          (fun pair ->
            match String.split_on_char ':' pair with
            | [ i; c ] ->
              let i = int_of i in
              if i < 0 || i >= nbuckets then fail ();
              buckets.(i) <- int_of c
            | _ -> fail ())
          (String.split_on_char ',' spec)
      | _ -> fail ());
      { d_buckets = buckets; d_count = int_of count; d_sum = int_of sum;
        d_min = int_of mn; d_max = int_of mx }
    | _ -> fail ()
end

(* ------------------------------------------------------------------ *)
(* Trace events                                                        *)

type event = {
  ev_seq : int;
  ev_kind : string;
  ev_table : string;
  ev_lo : string;
  ev_hi : string;
  ev_dur_ns : int;
  ev_bytes : int;
}

let null_event =
  { ev_seq = -1; ev_kind = ""; ev_table = ""; ev_lo = ""; ev_hi = ""; ev_dur_ns = 0;
    ev_bytes = 0 }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type t = {
  metrics : (string, metric) Hashtbl.t;
  mutable ring : event array;
  mutable recorded : int; (* total events ever recorded *)
}

let default_trace_capacity = 256

let create () =
  { metrics = Hashtbl.create 64; ring = Array.make default_trace_capacity null_event;
    recorded = 0 }

let default = create ()

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let clash name m want =
  invalid_arg
    (Printf.sprintf "Obs: metric %S is a %s, requested as a %s" name (kind_name m) want)

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_counter c) -> c
  | Some m -> clash name m "counter"
  | None ->
    let c = { Counter.c_name = name; c_value = 0 } in
    Hashtbl.add t.metrics name (M_counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_gauge g) -> g
  | Some m -> clash name m "gauge"
  | None ->
    let g = { Gauge.g_name = name; g_value = 0 } in
    Hashtbl.add t.metrics name (M_gauge g);
    g

let histogram t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_histogram h) -> h
  | Some m -> clash name m "histogram"
  | None ->
    let h = Histogram.make name in
    Hashtbl.add t.metrics name (M_histogram h);
    h

let counter_value t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_counter c) -> Counter.value c
  | _ -> 0

let histograms t =
  Hashtbl.fold
    (fun name m acc -> match m with M_histogram h -> (name, h) :: acc | _ -> acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of Histogram.snapshot

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter c -> Counter (Counter.value c)
        | M_gauge g -> Gauge (Gauge.value g)
        | M_histogram h -> Histogram (Histogram.snapshot h)
      in
      (name, v) :: acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let int_snapshot t =
  List.concat_map
    (fun (name, v) ->
      match v with
      | Counter n | Gauge n -> [ (name, n) ]
      | Histogram h ->
        [ (name ^ ".count", h.Histogram.count); (name ^ ".sum", h.Histogram.sum);
          (name ^ ".min", h.Histogram.min); (name ^ ".max", h.Histogram.max);
          (name ^ ".p50", h.Histogram.p50); (name ^ ".p95", h.Histogram.p95);
          (name ^ ".p99", h.Histogram.p99) ])
    (snapshot t)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Counter.set c 0
      | M_gauge g -> Gauge.set g 0
      | M_histogram h -> Histogram.reset h)
    t.metrics;
  Array.fill t.ring 0 (Array.length t.ring) null_event;
  t.recorded <- 0

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_snapshot ?(extra = []) snap =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  let first = ref true in
  let member name raw =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_char buf '"';
    Buffer.add_string buf (json_escape name);
    Buffer.add_string buf "\":";
    Buffer.add_string buf raw
  in
  List.iter (fun (name, raw) -> member name raw) extra;
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n | Gauge n -> member name (string_of_int n)
      | Histogram h ->
        member name
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d}"
             h.Histogram.count h.Histogram.sum h.Histogram.min h.Histogram.max
             h.Histogram.p50 h.Histogram.p95 h.Histogram.p99))
    snap;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* A parser for exactly the subset json_of_snapshot emits: one object
   whose members are integers or flat objects of integer members. *)
let snapshot_of_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Obs.snapshot_of_json: %s at byte %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some x when x = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "dangling escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'u' ->
               if !pos + 4 >= n then fail "short \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
               | Some _ -> Buffer.add_char buf '?'
               | None -> fail "bad \\u escape");
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad integer"
  in
  let parse_members parse_value =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      []
    end
    else begin
      let acc = ref [] in
      let rec go () =
        skip_ws ();
        let name = parse_string () in
        expect ':';
        acc := (name, parse_value ()) :: !acc;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go ()
        | Some '}' -> incr pos
        | _ -> fail "expected , or }"
      in
      go ();
      List.rev !acc
    end
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      let members = parse_members (fun () -> parse_int ()) in
      let field f = match List.assoc_opt f members with Some v -> v | None -> 0 in
      Histogram
        { Histogram.count = field "count"; sum = field "sum"; min = field "min";
          max = field "max"; p50 = field "p50"; p95 = field "p95"; p99 = field "p99" }
    | _ -> Gauge (parse_int ())
  in
  let members = parse_members parse_value in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  members

(* ------------------------------------------------------------------ *)
(* Trace ring                                                          *)

let set_trace_capacity t cap =
  if cap < 1 then invalid_arg "Obs.set_trace_capacity: capacity must be positive";
  t.ring <- Array.make cap null_event;
  t.recorded <- 0

let trace t ~kind ?(table = "") ?(lo = "") ?(hi = "") ?(dur_ns = 0) ?(bytes = 0) () =
  if !enabled then begin
    let cap = Array.length t.ring in
    t.ring.(t.recorded mod cap) <-
      { ev_seq = t.recorded; ev_kind = kind; ev_table = table; ev_lo = lo; ev_hi = hi;
        ev_dur_ns = dur_ns; ev_bytes = bytes };
    t.recorded <- t.recorded + 1
  end

let recent_events ?n t =
  let cap = Array.length t.ring in
  let available = min t.recorded cap in
  let wanted = match n with Some n -> min n available | None -> available in
  List.init wanted (fun i -> t.ring.((t.recorded - 1 - i) mod cap))

let events_recorded t = t.recorded

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let tick () = if !enabled then now_ns () else 0
let tock t0 = if t0 = 0 then 0 else now_ns () - t0
