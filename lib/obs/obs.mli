(** Observability: a metrics registry and an operation trace.

    Every layer of the system records its work here — store operations,
    join maintenance, durability, RPCs, simulated cluster traffic — so
    that one snapshot describes a whole server, the way [stats] does for
    memcached or [INFO] for Redis. The paper's evaluation (§5) is driven
    entirely by counted work; this module is its runtime substrate.

    A {e registry} ({!t}) holds named metrics of three kinds:

    - {e counters}: monotonically increasing event tallies;
    - {e gauges}: instantaneous values, overwritten at will (resident
      bytes, queue depths);
    - {e histograms}: log-scaled frequency distributions of durations or
      sizes, with p50/p95/p99 estimates in the snapshot.

    and a fixed-size ring buffer of structured {e trace events} (op kind,
    table, key range, duration, bytes) recording the most recent
    operations in order.

    {2 The [enabled] switch}

    Hot-path recording ({!Counter.incr}, {!Counter.add},
    {!Histogram.observe}, {!trace}, {!tick}) is gated on the global
    {!enabled} flag: when it is [false] each call is a load and a branch,
    so fuzzing and benchmark loops pay ~zero. Cold-path mirroring
    ({!Counter.set}, {!Counter.force_add}, {!Gauge.set}) is {e not}
    gated: values that feed the evaluation harness itself (memory
    footprints, simulated wire bytes) stay correct even with recording
    off. [enabled] starts [false] only when the [PEQUOD_OBS] environment
    variable is ["0"], ["false"] or ["off"].

    Metrics never change engine results: with [enabled] forced off, a
    fuzz scenario produces byte-identical output (tested in
    [test/test_obs.ml]). *)

(** Global hot-path recording switch; see the module preamble. *)
val enabled : bool ref

(** A metrics registry. Each server ([Server.t]) owns one;
    every subsystem attached to that server (persist, net, sim node)
    records into it, so one snapshot covers the whole process. *)
type t

(** A fresh, empty registry with the default trace capacity (256
    events). *)
val create : unit -> t

(** A process-global registry for code with no server at hand
    (benchmarks, scratch tooling). The engine does not use it. *)
val default : t

(** Monotonic event counters. *)
module Counter : sig
  type t

  (** Add one; no-op while {!enabled} is false. *)
  val incr : t -> unit

  (** Add [n] (n >= 0); no-op while {!enabled} is false. *)
  val add : t -> int -> unit

  (** Add [n] regardless of {!enabled} — for tallies that feed the
      evaluation harness (e.g. simulated wire bytes), not just
      observability. *)
  val force_add : t -> int -> unit

  (** Overwrite the total regardless of {!enabled} — for mirroring a
      monotonic count maintained elsewhere (e.g. the store layer's
      per-table operation statistics) into the registry at snapshot
      time. *)
  val set : t -> int -> unit

  val value : t -> int
  val name : t -> string
end

(** Instantaneous values; {!Gauge.set} is never gated on {!enabled}. *)
module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

(** Log-scaled histograms of non-negative integer samples (durations in
    nanoseconds, sizes in bytes or pairs).

    Values below 16 are bucketed exactly; above that, four sub-buckets
    per power of two bound the relative quantile error by ~12%. *)
module Histogram : sig
  type t

  (** Record one sample (negative samples clamp to 0); no-op while
      {!enabled} is false. *)
  val observe : t -> int -> unit

  (** A histogram as frozen for a snapshot. Quantiles are bucket
      midpoints clamped to [\[min, max\]]; all fields are 0 when
      [count] is 0. *)
  type snapshot = {
    count : int;
    sum : int;
    min : int;
    max : int;
    p50 : int;
    p95 : int;
    p99 : int;
  }

  val snapshot : t -> snapshot

  (** Quantile estimate for [q] in [\[0, 1\]]; 0 when empty. *)
  val quantile : t -> float -> int

  val name : t -> string

  (** {2 Cross-process aggregation}

      The p50/p95/p99 of a {!snapshot} cannot be combined across
      processes; bucket counts can. A [dense] value is the full
      bucket-resolution state of a histogram: workers ship theirs over
      a pipe ({!dense_to_string}/{!dense_of_string}), the coordinator
      {!merge}s them and {!absorb}s the result into a registry
      histogram, whose {!snapshot} then reports percentiles of the
      pooled samples, exact at bucket resolution. *)

  (** A mergeable full-resolution histogram snapshot. *)
  type dense

  (** Freeze the current state (copies the buckets). *)
  val dense : t -> dense

  (** Pool two dense snapshots: bucket counts, counts and sums add;
      min/max combine. Exact — merging then reading quantiles equals
      reading quantiles of the pooled samples, at bucket resolution. *)
  val merge : dense -> dense -> dense

  (** Add every sample summarized by the dense snapshot into the
      histogram. Aggregation is harness work: never gated on
      {!enabled}. *)
  val absorb : t -> dense -> unit

  (** Compact single-line encoding (for worker pipes). *)
  val dense_to_string : dense -> string

  (** Inverse of {!dense_to_string}.
      @raise Failure on malformed input. *)
  val dense_of_string : string -> dense
end

(** [counter t name] returns the counter registered under [name],
    creating it at zero if absent.
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : t -> string -> Counter.t

(** Like {!counter}, for gauges. *)
val gauge : t -> string -> Gauge.t

(** Like {!counter}, for histograms. *)
val histogram : t -> string -> Histogram.t

(** Current total of the counter named [name]; 0 when absent (does not
    create it). *)
val counter_value : t -> string -> int

(** Every registered histogram, sorted by name — the aggregation
    surface: a worker walks this to ship dense snapshots to its
    coordinator. *)
val histograms : t -> (string * Histogram.t) list

(** {2 Snapshots} *)

(** One metric's value as frozen for a snapshot. *)
type value =
  | Counter of int
  | Gauge of int
  | Histogram of Histogram.snapshot

(** Every registered metric, sorted by name. *)
val snapshot : t -> (string * value) list

(** {!snapshot} flattened to integers for in-process consumers and
    text tables (the wire carries only the typed {!snapshot}, via
    [Stats_full]): counters and gauges map to one entry; a histogram [h]
    expands to [h.count], [h.sum], [h.min], [h.max], [h.p50], [h.p95]
    and [h.p99]. *)
val int_snapshot : t -> (string * int) list

(** Zero every counter and histogram, clear every gauge, and empty the
    trace ring. Registered names survive. *)
val reset : t -> unit

(** {2 JSON}

    The [--metrics-dump] wire format: one single-line JSON object per
    snapshot, counters/gauges as integers and histograms as nested
    objects, e.g.
    [{"op.scan":12,"op.scan.ns":{"count":12,"sum":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}}]. *)

(** Render a snapshot as one JSON line. [extra] prepends raw
    (name, already-encoded-value) members, e.g. a timestamp. *)
val json_of_snapshot : ?extra:(string * string) list -> (string * value) list -> string

(** Parse a {!json_of_snapshot} line back (members from [extra] are
    returned as [Gauge]s when integers). Accepts exactly the subset
    {!json_of_snapshot} emits.
    @raise Failure on malformed input. *)
val snapshot_of_json : string -> (string * value) list

(** {2 Tracing} *)

(** One traced operation. Unused string fields are [""]; unused numeric
    fields are 0. *)
type event = {
  ev_seq : int;  (** 0-based position in the recording order *)
  ev_kind : string;  (** e.g. ["scan"], ["evict"], ["wal.sync"] *)
  ev_table : string;
  ev_lo : string;
  ev_hi : string;
  ev_dur_ns : int;
  ev_bytes : int;
}

(** Resize the trace ring (discarding current contents). Capacity must
    be positive. *)
val set_trace_capacity : t -> int -> unit

(** Record a trace event; no-op while {!enabled} is false. The ring
    keeps the most recent [capacity] events. *)
val trace :
  t ->
  kind:string ->
  ?table:string ->
  ?lo:string ->
  ?hi:string ->
  ?dur_ns:int ->
  ?bytes:int ->
  unit ->
  unit

(** The most recent (up to) [n] events, newest first. Default: the whole
    ring. *)
val recent_events : ?n:int -> t -> event list

(** Total events ever recorded, including those overwritten. *)
val events_recorded : t -> int

(** {2 Timing} *)

(** Wall-clock nanoseconds (for [dur_ns] arithmetic; not related to the
    engine's logical clock). *)
val now_ns : unit -> int

(** Start a duration measurement: a timestamp while {!enabled}, else 0.
    Pair with {!tock}. *)
val tick : unit -> int

(** Elapsed nanoseconds since [tick ()]'s result; 0 if recording was
    off at tick time. *)
val tock : int -> int
