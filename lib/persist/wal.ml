(** The append-only write-ahead log of client-level store mutations.

    One log file holds a run of {!Record}-framed entries with strictly
    increasing sequence numbers; the file name ([wal-%016d.pql]) carries
    the sequence number of its first entry, so recovery can order files
    and compaction can tell when a whole file is behind a snapshot.

    Entry payloads use the wire codec ({!Pequod_proto.Codec}): a tag
    byte, the varint sequence number, then the operation's strings. *)

module Codec = Pequod_proto.Codec
module Server = Pequod_core.Server

type op =
  | Put of string * string
  | Remove of string
  | Add_join of string
  | Present of string * string * string
      (* table, lo, hi owned via mark_present (home partitions). The
         engine never reports resolver-fetched presence, so a recovered
         compute server refetches — and re-subscribes — instead of
         serving a frozen copy of a remote range. *)
  | Put_batch of (string * string) list
      (* one client batch = one record = one fsync under Sync_always *)

let op_of_mutation = function
  | Server.M_put (k, v) -> Put (k, v)
  | Server.M_remove k -> Remove k
  | Server.M_put_batch pairs -> Put_batch pairs
  | Server.M_add_join text -> Add_join text
  | Server.M_present (table, lo, hi) -> Present (table, lo, hi)

let encode_entry ~seq op =
  let buf = Buffer.create 64 in
  (match op with
  | Put (k, v) ->
    Buffer.add_char buf '\x01';
    Codec.put_varint buf seq;
    Codec.put_string buf k;
    Codec.put_string buf v
  | Remove k ->
    Buffer.add_char buf '\x02';
    Codec.put_varint buf seq;
    Codec.put_string buf k
  | Add_join text ->
    Buffer.add_char buf '\x03';
    Codec.put_varint buf seq;
    Codec.put_string buf text
  | Present (table, lo, hi) ->
    Buffer.add_char buf '\x04';
    Codec.put_varint buf seq;
    Codec.put_string buf table;
    Codec.put_string buf lo;
    Codec.put_string buf hi
  | Put_batch pairs ->
    Buffer.add_char buf '\x05';
    Codec.put_varint buf seq;
    Codec.put_pair_list buf pairs);
  Buffer.contents buf

(** Raises [Codec.Decode_error] on malformed payloads (recovery treats
    that like a corrupt record). *)
let decode_entry payload =
  let r = Codec.reader payload in
  let tag = Codec.get_byte r in
  let seq = Codec.get_varint r in
  let op =
    match tag with
    | 0x01 ->
      let k = Codec.get_string r in
      let v = Codec.get_string r in
      Put (k, v)
    | 0x02 -> Remove (Codec.get_string r)
    | 0x03 -> Add_join (Codec.get_string r)
    | 0x04 ->
      let table = Codec.get_string r in
      let lo = Codec.get_string r in
      let hi = Codec.get_string r in
      Present (table, lo, hi)
    | 0x05 -> Put_batch (Codec.get_pair_list r)
    | t -> raise (Codec.Decode_error (Printf.sprintf "bad wal tag %#x" t))
  in
  if not (Codec.at_end r) then raise (Codec.Decode_error "trailing wal bytes");
  (seq, op)

(* ------------------------------------------------------------------ *)
(* File naming                                                         *)

let file_name ~first_seq = Printf.sprintf "wal-%016d.pql" first_seq

(** [Some first_seq] when the basename looks like a log file. *)
let parse_file_name name =
  if String.length name = 24 && String.sub name 0 4 = "wal-" && Filename.check_suffix name ".pql"
  then int_of_string_opt (String.sub name 4 16)
  else None

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  mutable bytes : int; (* file size, for the rotation threshold *)
  mutable dirty : bool; (* bytes written since the last fsync *)
}

let create_writer ~dir ~first_seq =
  let path = Filename.concat dir (file_name ~first_seq) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let bytes = (Unix.fstat fd).Unix.st_size in
  { path; fd; bytes; dirty = false }

let append w ~seq op =
  let wire = Record.encode (encode_entry ~seq op) in
  let n = String.length wire in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring w.fd wire !written (n - !written)
  done;
  w.bytes <- w.bytes + n;
  w.dirty <- true

let sync w =
  if w.dirty then begin
    Unix.fsync w.fd;
    w.dirty <- false
  end

let close w =
  sync w;
  (try Unix.close w.fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

(** Every decodable entry of one log file in order, plus how the file
    ends ([Record.Corrupt] also covers a payload the codec rejects). *)
let read_file path =
  let payloads, ending = Record.read_file path in
  let rec go acc = function
    | [] -> (List.rev acc, ending)
    | p :: rest -> (
      match decode_entry p with
      | entry -> go (entry :: acc) rest
      | exception Codec.Decode_error _ -> (List.rev acc, Record.Corrupt))
  in
  go [] payloads
