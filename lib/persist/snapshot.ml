(** Full-state snapshots: one file ([snap-%016d.pqs], named by the last
    log sequence number it covers) holding the engine's base tables and
    join-source metadata.

    The file is a stream of {!Record}-framed, CRC-checked payloads:
    a header (magic + format version + covered sequence number), the
    installed joins as canonical text, every base-table pair, the
    present-range bookkeeping, the per-range version stamps (v2), and a
    footer carrying the record counts so a truncated stream is detected
    even when it tears exactly between records. Materialized sink ranges are deliberately {e not} stored:
    dropping them leaves their status Unknown after recovery, so the
    first scan lazily revalidates (recomputes) them from the restored
    base data — the "marked for lazy revalidation" design.

    Writes go to a temp file that is fsynced and renamed into place, so a
    crash mid-snapshot leaves the previous snapshot untouched. *)

module Codec = Pequod_proto.Codec
module Server = Pequod_core.Server
module Store = Pequod_store.Store

let magic = "PQSNAP"

(* v2 added per-range version stamps (session consistency); v1 files
   still load, restoring with no stamps — reads demand nothing of a
   freshly recovered server until new writes mint new stamps. *)
let version = 2

let file_name ~seq = Printf.sprintf "snap-%016d.pqs" seq

(** [Some seq] when the basename looks like a snapshot file. *)
let parse_file_name name =
  if String.length name = 25 && String.sub name 0 5 = "snap-" && Filename.check_suffix name ".pqs"
  then int_of_string_opt (String.sub name 5 16)
  else None

type contents = {
  seq : int; (* every log record with seq <= this is reflected *)
  joins : string list; (* canonical join text, install order *)
  pairs : (string * string) list; (* base-table data, store order *)
  presents : (string * string * string) list; (* table, lo, hi *)
  stamps : (string * string * string * int) list; (* table, lo, hi, stamp *)
}

(* record payload tags *)
let tag_header = '\x10'
let tag_join = '\x11'
let tag_pair = '\x12'
let tag_present = '\x13'
let tag_stamp = '\x14'
let tag_footer = '\x1F'

let payload tag f =
  let buf = Buffer.create 64 in
  Buffer.add_char buf tag;
  f buf;
  Buffer.contents buf

(** Serialize the durable part of [server] (everything except sink-table
    output) covering log records up to [seq], atomically replacing any
    same-named file. *)
let write ~dir ~seq server =
  let sinks = Server.sink_tables server in
  let is_sink key = List.mem (Store.table_name_of key) sinks in
  let tmp = Filename.concat dir (Printf.sprintf ".snap-%016d.tmp" seq) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let emit p =
    let wire = Record.encode p in
    let n = String.length wire in
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write_substring fd wire !written (n - !written)
    done
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      emit
        (payload tag_header (fun buf ->
             Codec.put_string buf magic;
             Codec.put_varint buf version;
             Codec.put_varint buf seq));
      let njoins = ref 0 and npairs = ref 0 and npresents = ref 0 in
      List.iter
        (fun text ->
          incr njoins;
          emit (payload tag_join (fun buf -> Codec.put_string buf text)))
        (Server.join_texts server);
      Server.iter_pairs server (fun k v ->
          if not (is_sink k) then begin
            incr npairs;
            emit
              (payload tag_pair (fun buf ->
                   Codec.put_string buf k;
                   Codec.put_string buf v))
          end);
      List.iter
        (fun (table, lo, hi) ->
          incr npresents;
          emit
            (payload tag_present (fun buf ->
                 Codec.put_string buf table;
                 Codec.put_string buf lo;
                 Codec.put_string buf hi)))
        (Server.present_ranges server);
      let nstamps = ref 0 in
      List.iter
        (fun (table, lo, hi, stamp) ->
          incr nstamps;
          emit
            (payload tag_stamp (fun buf ->
                 Codec.put_string buf table;
                 Codec.put_string buf lo;
                 Codec.put_string buf hi;
                 Codec.put_varint buf stamp)))
        (Server.stamp_ranges server);
      emit
        (payload tag_footer (fun buf ->
             Codec.put_varint buf !njoins;
             Codec.put_varint buf !npairs;
             Codec.put_varint buf !npresents;
             Codec.put_varint buf !nstamps));
      Unix.fsync fd);
  let path = Filename.concat dir (file_name ~seq) in
  Unix.rename tmp path;
  path

(** Parse and fully verify one snapshot file: framing, CRCs, header
    magic/version, and footer counts must all check out, else [Error]
    (recovery then falls back to an older snapshot). *)
let load path =
  match Record.read_file path with
  | exception Sys_error msg -> Error msg
  | payloads, ending -> (
    try
      if ending <> Record.Clean then failwith "snapshot not cleanly terminated";
      let seq = ref 0 in
      let file_version = ref version in
      let joins = ref [] and pairs = ref [] and presents = ref [] in
      let stamps = ref [] in
      let saw_header = ref false and saw_footer = ref false in
      List.iter
        (fun p ->
          if !saw_footer then failwith "records after snapshot footer";
          let r = Codec.reader p in
          let tag = Char.chr (Codec.get_byte r) in
          if (not !saw_header) && tag <> tag_header then failwith "missing snapshot header";
          if tag = tag_header then begin
            if !saw_header then failwith "duplicate snapshot header";
            saw_header := true;
            if Codec.get_string r <> magic then failwith "bad snapshot magic";
            let v = Codec.get_varint r in
            if v < 1 || v > version then
              failwith (Printf.sprintf "unsupported snapshot version %d" v);
            file_version := v;
            seq := Codec.get_varint r
          end
          else if tag = tag_join then joins := Codec.get_string r :: !joins
          else if tag = tag_pair then begin
            let k = Codec.get_string r in
            let v = Codec.get_string r in
            pairs := (k, v) :: !pairs
          end
          else if tag = tag_present then begin
            let table = Codec.get_string r in
            let lo = Codec.get_string r in
            let hi = Codec.get_string r in
            presents := (table, lo, hi) :: !presents
          end
          else if tag = tag_stamp then begin
            if !file_version < 2 then failwith "stamp record in a v1 snapshot";
            let table = Codec.get_string r in
            let lo = Codec.get_string r in
            let hi = Codec.get_string r in
            let stamp = Codec.get_varint r in
            stamps := (table, lo, hi, stamp) :: !stamps
          end
          else if tag = tag_footer then begin
            saw_footer := true;
            let nj = Codec.get_varint r in
            let np = Codec.get_varint r in
            let npr = Codec.get_varint r in
            let nst = if !file_version >= 2 then Codec.get_varint r else 0 in
            if nj <> List.length !joins || np <> List.length !pairs
               || npr <> List.length !presents
               || nst <> List.length !stamps
            then failwith "snapshot footer counts mismatch"
          end
          else failwith (Printf.sprintf "bad snapshot tag %#x" (Char.code tag));
          if not (Codec.at_end r) then failwith "trailing snapshot bytes")
        payloads;
      if not !saw_footer then failwith "snapshot missing footer";
      Ok { seq = !seq; joins = List.rev !joins; pairs = List.rev !pairs;
           presents = List.rev !presents; stamps = List.rev !stamps }
    with
    | Failure msg -> Error msg
    | Codec.Decode_error msg -> Error msg)
