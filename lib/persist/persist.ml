(** The durability manager: glues the engine's mutation hook to the
    write-ahead log ({!Wal}), takes periodic {!Snapshot}s, and recovers a
    fresh engine from the data directory.

    Recovery loads the newest snapshot that fully verifies (falling back
    to older ones — up to two are retained — and to nothing), then
    replays every log record with a higher sequence number, in order,
    stopping at the first torn or corrupt record: that record is the
    durable horizon; everything before it is served, everything after it
    was never acknowledged as durable. A new log file is always started
    after recovery so appends never land beyond a torn tail.

    Compaction runs whenever a snapshot is taken (explicitly, after
    [p_snapshot_every] log records, or when the log outgrows
    [p_wal_max_bytes]): log files wholly covered by the older retained
    snapshot are deleted, as are snapshots older than the two newest. *)

module Config = Pequod_core.Config
module Server = Pequod_core.Server

let src = Logs.Src.create "pequod.persist"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  server : Server.t;
  cfg : Config.persist;
  mutable seq : int; (* last assigned sequence number *)
  mutable writer : Wal.writer;
  mutable records_since_snapshot : int;
  mutable last_sync : float;
  mutable closed : bool;
  (* recovery + runtime statistics, surfaced through [stats] *)
  mutable st_snapshot_seq : int; (* seq restored from snapshot; 0 = none *)
  mutable st_replayed : int; (* log records applied during recovery *)
  mutable st_tail_lost : bool; (* replay stopped at a torn/corrupt record *)
  mutable st_logged : int; (* records appended since attach *)
  mutable st_snapshots : int; (* snapshots written since attach *)
  (* registry handles into the engine's metrics registry *)
  m_appends : Obs.Counter.t; (* wal.appends *)
  m_append_bytes : Obs.Histogram.t; (* wal.append.bytes *)
  m_syncs : Obs.Counter.t; (* wal.syncs *)
  m_sync_ns : Obs.Histogram.t; (* wal.sync.ns *)
  m_snapshots : Obs.Counter.t; (* snapshot.writes *)
  m_snapshot_ns : Obs.Histogram.t; (* snapshot.write.ns *)
}

let list_dir dir =
  match Sys.readdir dir with
  | names -> Array.to_list names
  | exception Sys_error _ -> []

let snapshots_in dir =
  List.filter_map
    (fun n -> Option.map (fun seq -> (seq, Filename.concat dir n)) (Snapshot.parse_file_name n))
    (list_dir dir)
  |> List.sort (fun (a, _) (b, _) -> compare b a) (* newest first *)

let wals_in dir =
  List.filter_map
    (fun n -> Option.map (fun seq -> (seq, Filename.concat dir n)) (Wal.parse_file_name n))
    (list_dir dir)
  |> List.sort compare (* oldest first *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let apply_op server = function
  | Wal.Put (k, v) -> Server.put server k v
  | Wal.Remove k -> Server.remove server k
  | Wal.Put_batch pairs -> Server.put_batch server pairs
  | Wal.Add_join text -> (
    match Server.add_join_text server text with
    | Ok () -> ()
    | Error msg -> Log.warn (fun m -> m "recovery: skipping join %S: %s" text msg))
  | Wal.Present (table, lo, hi) -> Server.mark_present server ~table ~lo ~hi

(* Load the newest verifiable snapshot into [server]; [0] when starting
   empty. *)
let recover_snapshot ~server ~dir =
  let rec try_load = function
    | [] -> 0
    | (seq, path) :: rest -> (
      match Snapshot.load path with
      | Error msg ->
        Log.warn (fun m -> m "recovery: snapshot %s invalid (%s); trying older" path msg);
        try_load rest
      | Ok c ->
        List.iter (fun text -> apply_op server (Wal.Add_join text)) c.Snapshot.joins;
        List.iter (fun (k, v) -> Server.put server k v) c.Snapshot.pairs;
        List.iter
          (fun (table, lo, hi) -> Server.mark_present server ~table ~lo ~hi)
          c.Snapshot.presents;
        (* stamps restore last: the pair replay above already bumped
           per-range counters, and [set_range_stamp] is monotone, so the
           result is at least the stamp any pre-crash write ack carried *)
        List.iter
          (fun (table, lo, hi, stamp) -> Server.set_range_stamp server ~table ~lo ~hi stamp)
          c.Snapshot.stamps;
        Log.info (fun m ->
            m "recovery: snapshot %s restored %d pairs, %d joins (seq %d)" path
              (List.length c.Snapshot.pairs) (List.length c.Snapshot.joins) c.Snapshot.seq);
        seq)
  in
  try_load (snapshots_in dir)

(* Replay every log record newer than [base]; returns the last applied
   sequence number, how many records were applied, and whether any
   torn/corrupt record was hit. A bad record ends its own file's replay
   (the decoder cannot resynchronise past it), but later files still
   apply as long as their records continue exactly at [last + 1]: a log
   rotated after an earlier recovery observed the tear legitimately
   resumes the sequence. A sequence gap means durably-lost records, so
   replay stops there — applying anything beyond the gap could resurrect
   state the lost records had overwritten. *)
let recover_wal ~server ~dir ~base =
  let last = ref base in
  let replayed = ref 0 in
  let tail_lost = ref false in
  let stop = ref false in
  List.iter
    (fun (_, path) ->
      if not !stop then begin
        let entries, ending = Wal.read_file path in
        List.iter
          (fun (seq, op) ->
            if not !stop then
              if seq > !last + 1 then begin
                stop := true;
                tail_lost := true;
                Log.warn (fun m ->
                    m "recovery: %s jumps from seq %d to %d; stopping at the gap" path !last
                      seq)
              end
              else if seq > !last then begin
                apply_op server op;
                incr replayed;
                last := seq
              end)
          entries;
        match ending with
        | Record.Clean -> ()
        | Record.Torn | Record.Corrupt ->
          tail_lost := true;
          Log.warn (fun m ->
              m "recovery: log %s ends %s after seq %d; rest of the file discarded" path
                (if ending = Record.Torn then "torn" else "corrupt")
                !last)
      end)
    (wals_in dir);
  (!last, !replayed, !tail_lost)

let now () = Unix.gettimeofday ()

let sync t =
  let t0 = Obs.tick () in
  Wal.sync t.writer;
  t.last_sync <- now ();
  Obs.Counter.incr t.m_syncs;
  if !Obs.enabled then begin
    let d = Obs.tock t0 in
    Obs.Histogram.observe t.m_sync_ns d;
    Obs.trace (Server.obs t.server) ~kind:"wal.sync" ~dur_ns:d ()
  end

(* Delete snapshots beyond the two newest, and log files wholly covered
   by the older retained snapshot. *)
let compact t =
  let dir = t.cfg.Config.p_dir in
  let snaps = snapshots_in dir in
  let retained, doomed_snaps =
    match snaps with a :: b :: rest -> ([ a; b ], rest) | l -> (l, [])
  in
  List.iter (fun (_, path) -> try Sys.remove path with Sys_error _ -> ()) doomed_snaps;
  let keep_seq = match List.rev retained with (seq, _) :: _ -> seq | [] -> 0 in
  (* a log file's records all precede the next file's first sequence
     number, so it is deletable when that bound is covered by [keep_seq];
     the file backing the live writer is never deleted *)
  let wals = wals_in dir in
  let rec doom = function
    | (_, path) :: ((next_first, _) :: _ as rest) ->
      if next_first - 1 <= keep_seq && path <> t.writer.Wal.path then begin
        (try Sys.remove path with Sys_error _ -> ());
        doom rest
      end
    | _ -> ()
  in
  doom wals

(** Write a snapshot covering everything logged so far, rotate to a fresh
    log file, and compact. *)
let snapshot_now t =
  sync t;
  let t0 = Obs.tick () in
  let path = Snapshot.write ~dir:t.cfg.Config.p_dir ~seq:t.seq t.server in
  t.st_snapshots <- t.st_snapshots + 1;
  Obs.Counter.incr t.m_snapshots;
  if !Obs.enabled then begin
    let d = Obs.tock t0 in
    Obs.Histogram.observe t.m_snapshot_ns d;
    Obs.trace (Server.obs t.server) ~kind:"snapshot" ~dur_ns:d ()
  end;
  t.records_since_snapshot <- 0;
  Log.info (fun m -> m "snapshot %s written at seq %d" path t.seq);
  Wal.close t.writer;
  t.writer <- Wal.create_writer ~dir:t.cfg.Config.p_dir ~first_seq:(t.seq + 1);
  compact t

let on_mutation t m =
  if not t.closed then begin
    t.seq <- t.seq + 1;
    let bytes_before = t.writer.Wal.bytes in
    Wal.append t.writer ~seq:t.seq (Wal.op_of_mutation m);
    t.st_logged <- t.st_logged + 1;
    Obs.Counter.incr t.m_appends;
    Obs.Histogram.observe t.m_append_bytes (t.writer.Wal.bytes - bytes_before);
    t.records_since_snapshot <- t.records_since_snapshot + 1;
    (match t.cfg.Config.p_sync with
    | Config.Sync_always -> sync t
    | Config.Sync_interval secs -> if now () -. t.last_sync >= secs then sync t
    | Config.Sync_never -> ());
    if
      t.writer.Wal.bytes > t.cfg.Config.p_wal_max_bytes
      || (t.cfg.Config.p_snapshot_every > 0
         && t.records_since_snapshot >= t.cfg.Config.p_snapshot_every)
    then snapshot_now t
  end

(** Recover [server] from [cfg.p_dir] (creating it if needed), then
    subscribe to the engine's mutation hook so every client-level write
    is logged. The server must be freshly created (empty). *)
let attach server cfg =
  let dir = cfg.Config.p_dir in
  mkdir_p dir;
  let base = recover_snapshot ~server ~dir in
  let seq, replayed, tail_lost = recover_wal ~server ~dir ~base in
  (* always start a fresh log: never append beyond a torn tail *)
  let writer = Wal.create_writer ~dir ~first_seq:(seq + 1) in
  let obs = Server.obs server in
  let t =
    { server; cfg; seq; writer; records_since_snapshot = 0; last_sync = now ();
      closed = false; st_snapshot_seq = base; st_replayed = replayed;
      st_tail_lost = tail_lost; st_logged = 0; st_snapshots = 0;
      m_appends = Obs.counter obs "wal.appends";
      m_append_bytes = Obs.histogram obs "wal.append.bytes";
      m_syncs = Obs.counter obs "wal.syncs";
      m_sync_ns = Obs.histogram obs "wal.sync.ns";
      m_snapshots = Obs.counter obs "snapshot.writes";
      m_snapshot_ns = Obs.histogram obs "snapshot.write.ns" }
  in
  (* recovery figures are facts, not hot-path tallies: record them
     regardless of the [Obs.enabled] switch *)
  Obs.Counter.set (Obs.counter obs "recovery.replayed") replayed;
  Obs.Counter.set (Obs.counter obs "recovery.tail_lost") (if tail_lost then 1 else 0);
  Server.set_mutation_hook server (fun m -> on_mutation t m);
  t

(** Periodic maintenance from the host's event loop: flushes an overdue
    interval-mode sync. *)
let tick t =
  if not t.closed then
    match t.cfg.Config.p_sync with
    | Config.Sync_interval secs ->
      if t.writer.Wal.dirty && now () -. t.last_sync >= secs then sync t
    | Config.Sync_always | Config.Sync_never -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Server.clear_mutation_hook t.server;
    Wal.close t.writer
  end

(** Simulate a crash, for fault-injection tests: detach from the engine
    and abandon the log writer {e without} the final sync that {!close}
    performs, so anything the sync policy had not yet flushed is lost
    exactly as it would be when the process dies. The data directory is
    left as-is for a subsequent {!attach} to recover from. *)
let crash t =
  if not t.closed then begin
    t.closed <- true;
    Server.clear_mutation_hook t.server;
    try Unix.close t.writer.Wal.fd with Unix.Unix_error _ -> ()
  end

(** Counters for the server's stats snapshot. *)
let stats t =
  [ ("persist.seq", t.seq); ("persist.logged", t.st_logged);
    ("persist.replayed", t.st_replayed); ("persist.snapshots", t.st_snapshots);
    ("persist.snapshot_seq", t.st_snapshot_seq);
    ("persist.wal_bytes", t.writer.Wal.bytes);
    ("persist.tail_lost", if t.st_tail_lost then 1 else 0) ]
