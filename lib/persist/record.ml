(** On-disk record layer shared by the write-ahead log and snapshots.

    Each record is the wire protocol's frame ({!Pequod_proto.Frame}: a
    4-byte big-endian length prefix) whose body is a 4-byte big-endian
    CRC-32 of the payload followed by the payload itself. The reader is a
    forgiving scan of a whole file image: it yields every verified payload
    up to the first problem and reports how the file ends — cleanly, in a
    torn (incomplete) trailing record, or at a corrupt record. Recovery
    treats [`Torn] on the newest log as the expected result of a crash
    mid-append and anything [`Corrupt] as the durable horizon. *)

module Frame = Pequod_proto.Frame

let encode payload =
  let buf = Buffer.create (String.length payload + 8) in
  Crc32.add_be buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Frame.encode (Buffer.contents buf)

type ending =
  | Clean (* file ends exactly at a record boundary *)
  | Torn (* trailing record incomplete (crash mid-append) *)
  | Corrupt (* CRC mismatch or impossible length *)

(** All verified payloads in order, and how the scan ended. *)
let read_all data =
  let n = String.length data in
  let rec go acc pos =
    if pos = n then (List.rev acc, Clean)
    else if pos + 4 > n then (List.rev acc, Torn)
    else begin
      let len =
        (Char.code data.[pos] lsl 24)
        lor (Char.code data.[pos + 1] lsl 16)
        lor (Char.code data.[pos + 2] lsl 8)
        lor Char.code data.[pos + 3]
      in
      if len < 4 || len > Frame.max_frame then (List.rev acc, Corrupt)
      else if pos + 4 + len > n then (List.rev acc, Torn)
      else begin
        let crc = Crc32.get_be data (pos + 4) in
        let payload = String.sub data (pos + 8) (len - 4) in
        if Crc32.string payload = crc then go (payload :: acc) (pos + 4 + len)
        else (List.rev acc, Corrupt)
      end
    end
  in
  go [] 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read_all (really_input_string ic (in_channel_length ic)))
