(** Disjoint cover of key space by half-open ranges carrying values — the
    join status structure (§3.2). Absence of coverage is the implicit
    Unknown state. Values may be mutable; [dup] (given at creation) gives
    split pieces their own value. *)

type 'a t

(** An empty map (no key is covered). *)
val create : ?dup:('a -> 'a) -> unit -> 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

(** The explicit range containing the key, if any. *)
val find : 'a t -> string -> (string * string * 'a) option

(** Explicit ranges intersecting [\[lo, hi)], in order.
    O(log n + matches). *)
val overlapping : 'a t -> lo:string -> hi:string -> (string * string * 'a) list

(** Consecutive pieces exactly covering [\[lo, hi)]; [None] marks gaps. *)
val iter_cover : 'a t -> lo:string -> hi:string -> (string -> string -> 'a option -> unit) -> unit

(** Remove all coverage of [\[lo, hi)], trimming straddling ranges. *)
val clear_range : 'a t -> lo:string -> hi:string -> unit

(** Assign [v] to exactly [\[lo, hi)], overwriting any overlap. *)
val set : 'a t -> lo:string -> hi:string -> 'a -> unit

(** Rewrite the cover of [\[lo, hi)] piecewise; [None] clears a piece.
    Straddling ranges are split first. *)
val update_range :
  'a t -> lo:string -> hi:string -> (string -> string -> 'a option -> 'a option) -> unit

(** Merge runs of adjacent ranges with [eq]-equal values around
    [\[lo, hi)] (fights split/heal fragmentation). *)
val coalesce : 'a t -> lo:string -> hi:string -> eq:('a -> 'a -> bool) -> unit

val iter : 'a t -> (string -> string -> 'a -> unit) -> unit
val to_list : 'a t -> (string * string * 'a) list

(** Ranges non-empty, sorted, pairwise disjoint; raises [Failure]. *)
val validate : 'a t -> unit
