(** The multi-table store facade (paper Fig 6, top layer). The first
    ['|']-separated component of a key names its table; tables are created
    on demand with per-table subtable configuration; the whole store is
    one ordered key space and scans may cross tables. *)

type 'v t

(** An empty store; [table_config] maps a table name to its subtable
    depth ([None] for a single tree). *)
val create : ?table_config:(string -> int option) -> dummy:'v -> unit -> 'v t

(** Table name of a key: everything before the first ['|']. *)
val table_name_of : string -> string

val table : 'v t -> string -> 'v Table.t
val table_of_key : 'v t -> string -> 'v Table.t

(** @raise Strkey.Invalid_key on keys containing [0xff]. *)
val get : 'v t -> string -> 'v option

val put : ?hint:'v Table.handle -> 'v t -> string -> 'v -> 'v Table.handle * 'v option
val remove : 'v t -> string -> 'v option

(** Ordered iteration over [\[lo, hi)] across all tables. *)
val iter_range : 'v t -> lo:string -> hi:string -> (string -> 'v -> unit) -> unit

val fold_range : 'v t -> lo:string -> hi:string -> init:'a -> ('a -> string -> 'v -> 'a) -> 'a

(** Early-terminating fold over [\[lo, hi)] across tables: return
    [`Stop acc] to cut the walk short. *)
val fold_range_stop :
  'v t ->
  lo:string ->
  hi:string ->
  init:'a ->
  ('a -> string -> 'v -> [ `Continue of 'a | `Stop of 'a ]) ->
  'a
val range_to_list : 'v t -> lo:string -> hi:string -> (string * 'v) list
val count_range : 'v t -> lo:string -> hi:string -> int
val size : 'v t -> int
val memory_bytes : 'v t -> int
val tables : 'v t -> 'v Table.t list

(** Summed operation statistics across tables (the simulator's CPU cost
    model). *)
val total_ops : 'v t -> int

(** Aggregate of every table's {!Table.stats} as a fresh record; the
    per-table records keep accumulating independently. The engine mirrors
    this into its metrics registry at snapshot time. *)
val stats_totals : 'v t -> Table.stats

val validate : 'v t -> unit
