(** The multi-table store facade (Fig 6's top layer).

    The first ['|']-separated component of every key names its table
    ([p|bob|100] lives in table [p]). Tables are created on demand; a
    configuration callback decides each new table's subtable depth. The
    whole store is still one ordered key space: cross-table scans walk the
    tables in name order. *)

module Smap = Map.Make (String)

type 'v t = {
  by_name : (string, 'v Table.t) Hashtbl.t;
  mutable ordered : 'v Table.t Smap.t;
  table_config : string -> int option; (* table name -> subtable depth *)
  dummy : 'v;
}

let create ?(table_config = fun _ -> None) ~dummy () =
  { by_name = Hashtbl.create 16; ordered = Smap.empty; table_config; dummy }

(** Table name of a key: everything before the first ['|'] (or the whole
    key if it has no separator). *)
let table_name_of key =
  match String.index_opt key '|' with
  | Some i -> String.sub key 0 i
  | None -> key

let table t name =
  match Hashtbl.find_opt t.by_name name with
  | Some tbl -> tbl
  | None ->
    let tbl = Table.create ?subtable_depth:(t.table_config name) ~name ~dummy:t.dummy () in
    Hashtbl.add t.by_name name tbl;
    t.ordered <- Smap.add name tbl t.ordered;
    tbl

let table_of_key t key = table t (table_name_of key)

let get t key =
  Strkey.validate key;
  Table.get (table_of_key t key) key

let put ?hint t key value =
  Strkey.validate key;
  Table.put ?hint (table_of_key t key) key value

let remove t key = Table.remove (table_of_key t key) key

(** Ordered iteration over [\[lo, hi)] across all tables. *)
let iter_range t ~lo ~hi f =
  if String.compare lo hi < 0 then begin
    let nlo = table_name_of lo in
    if String.equal nlo (table_name_of hi) then begin
      (* fast path: the range stays within one table *)
      match Hashtbl.find_opt t.by_name nlo with
      | Some tbl -> Table.iter_range tbl ~lo ~hi f
      | None -> ()
    end
    else
      Seq.iter
        (fun (name, tbl) ->
          if String.compare name hi < 0 then Table.iter_range tbl ~lo ~hi f)
        (Seq.take_while
           (fun (name, _) -> String.compare name hi < 0)
           (Smap.to_seq_from nlo t.ordered))
  end

let fold_range t ~lo ~hi ~init f =
  let acc = ref init in
  iter_range t ~lo ~hi (fun k v -> acc := f !acc k v);
  !acc

exception Stopped

(* Early-terminating fold across tables; see Table.fold_range_stop. *)
let fold_range_stop t ~lo ~hi ~init f =
  let acc = ref init in
  (try
     iter_range t ~lo ~hi (fun k v ->
         match f !acc k v with
         | `Continue a -> acc := a
         | `Stop a ->
           acc := a;
           raise_notrace Stopped)
   with Stopped -> ());
  !acc

let range_to_list t ~lo ~hi =
  List.rev (fold_range t ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))

let count_range t ~lo ~hi = fold_range t ~lo ~hi ~init:0 (fun acc _ _ -> acc + 1)

let size t = Hashtbl.fold (fun _ tbl acc -> acc + Table.size tbl) t.by_name 0

let memory_bytes t = Hashtbl.fold (fun _ tbl acc -> acc + Table.memory_bytes tbl) t.by_name 0

let tables t = Smap.bindings t.ordered |> List.map snd

(** Summed operation statistics across tables. *)
let total_ops t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.total_ops (Table.stats tbl)) t.by_name 0

(** Aggregate of every table's operation statistics (a fresh record; the
    per-table records keep accumulating independently). *)
let stats_totals t =
  let acc = { Table.lookups = 0; inserts = 0; removes = 0; steps = 0 } in
  Hashtbl.iter
    (fun _ tbl ->
      let s = Table.stats tbl in
      acc.Table.lookups <- acc.Table.lookups + s.Table.lookups;
      acc.Table.inserts <- acc.Table.inserts + s.Table.inserts;
      acc.Table.removes <- acc.Table.removes + s.Table.removes;
      acc.Table.steps <- acc.Table.steps + s.Table.steps)
    t.by_name;
  acc

let validate t = Hashtbl.iter (fun _ tbl -> Table.validate tbl) t.by_name
