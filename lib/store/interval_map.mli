(** Interval tree over half-open string ranges [\[lo, hi)] — the index of
    updaters (§3.2): each write stabs the tree to find every updater whose
    source range contains the key, in O(log n + matches). *)

type 'a t
type 'a handle

(** An empty interval map. *)
val create : unit -> 'a t
val size : 'a t -> int
val handle_data : 'a handle -> 'a
val handle_range : 'a handle -> string * string

(** Add the interval [\[lo, hi)] carrying [data]; empty intervals are
    rejected. The handle removes it later. *)
val add : 'a t -> lo:string -> hi:string -> 'a -> 'a handle

(** Remove a previously added entry. Idempotent. *)
val remove : 'a t -> 'a handle -> unit

(** [stab t k f] calls [f] on every entry whose interval contains [k]. *)
val stab : 'a t -> string -> ('a handle -> unit) -> unit

(** Every entry whose interval intersects [\[lo, hi)]. *)
val iter_overlapping : 'a t -> lo:string -> hi:string -> ('a handle -> unit) -> unit

val iter : 'a t -> ('a handle -> unit) -> unit
val to_list : 'a t -> 'a handle list

(** Structural validation (balance, augmentation); raises [Failure]. *)
val validate : 'a t -> unit
