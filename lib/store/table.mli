(** One logical table of the store: ordered pairs, optionally subdivided
    into {e subtables} at marked key boundaries (§4.1). Operations within
    one boundary jump to its tree through a hash index (with a last-group
    cache); the table remains a single ordered key space, and scans that
    cross boundaries walk the subtables in order. *)

type stats = {
  mutable lookups : int;
  mutable inserts : int;
  mutable removes : int;
  mutable steps : int;
}

(** [lookups + inserts + removes + steps]: the store-op work measure the
    Fig 10 throughput model divides by. *)
val total_ops : stats -> int

type 'v t

(** Handle to a stored pair: the node plus the tree holding it (used as
    the §4.2 output hint). *)
type 'v handle = { node : 'v Rbtree.node; tree : 'v Rbtree.t }

(** [create ?subtable_depth ~name ~dummy ()]: [subtable_depth] is the
    number of ['|']-separated components forming a boundary (e.g. 2 for
    one Twip timeline [t|user|]). *)
val create : ?subtable_depth:int -> name:string -> dummy:'v -> unit -> 'v t

val name : 'v t -> string
val stats : 'v t -> stats
val size : 'v t -> int

(** Approximate resident bytes for keys and nodes (values are accounted by
    the engine, which knows about sharing). Equals the summed key lengths
    plus {!node_overhead} per resident pair. *)
val memory_bytes : 'v t -> int

(** Bytes charged per stored pair on top of its key (tree node, pointers,
    headers) when estimating {!memory_bytes}. *)
val node_overhead : int

val subtable_count : 'v t -> int
val get : 'v t -> string -> 'v option
val get_handle : 'v t -> string -> 'v handle option

(** Insert or overwrite; O(1) amortized with an adjacent [hint]. Returns
    the handle and the previous value ([None] when new). *)
val put : ?hint:'v handle -> 'v t -> string -> 'v -> 'v handle * 'v option

val remove : 'v t -> string -> 'v option

(** Ordered iteration over [\[lo, hi)], across subtables as needed. *)
val iter_range : 'v t -> lo:string -> hi:string -> (string -> 'v -> unit) -> unit

val fold_range : 'v t -> lo:string -> hi:string -> init:'a -> ('a -> string -> 'v -> 'a) -> 'a

(** Early-terminating fold over [\[lo, hi)]: return [`Stop acc] to cut
    the walk short (bounded scans stop at their limit instead of
    materializing the whole range). *)
val fold_range_stop :
  'v t ->
  lo:string ->
  hi:string ->
  init:'a ->
  ('a -> string -> 'v -> [ `Continue of 'a | `Stop of 'a ]) ->
  'a
val count_range : 'v t -> lo:string -> hi:string -> int
val range_to_list : 'v t -> lo:string -> hi:string -> (string * 'v) list

(** Remove every pair in [\[lo, hi)]; returns how many were removed. *)
val remove_range : 'v t -> lo:string -> hi:string -> int

val iter : 'v t -> (string -> 'v -> unit) -> unit
val validate : 'v t -> unit
