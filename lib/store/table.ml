(** A logical table of the store: ordered key-value pairs, optionally
    subdivided into {e subtables} (§4.1).

    Applications can mark natural key boundaries (e.g. one Twip timeline)
    with a component depth; the table then keeps one red-black tree per
    boundary prefix, indexed by a hash table, so operations entirely within
    one subtable reach it in O(1) instead of O(log N). The table remains a
    single ordered key space: operations that cross subtable boundaries
    walk the subtables in order (a [Map] keeps them sorted).

    The table also keeps operation statistics used by the ablation
    benchmarks and the distributed simulator's CPU cost model. *)

module Smap = Map.Make (String)

type stats = {
  mutable lookups : int;
  mutable inserts : int;
  mutable removes : int;
  mutable steps : int; (* iteration steps *)
}

let fresh_stats () = { lookups = 0; inserts = 0; removes = 0; steps = 0 }

let total_ops s = s.lookups + s.inserts + s.removes + s.steps

type 'v t = {
  name : string;
  subtable_depth : int option; (* None: single tree *)
  single : 'v Rbtree.t; (* used when subtable_depth = None *)
  by_prefix : (string, 'v Rbtree.t) Hashtbl.t; (* O(1) subtable jump *)
  mutable ordered : 'v Rbtree.t Smap.t; (* subtables in key order *)
  dummy : 'v;
  stats : stats;
  mutable key_bytes : int;
  mutable pair_count : int;
  (* consecutive operations usually hit the same boundary (e.g. appends
     into one timeline); cache the last group to skip hashing *)
  mutable last_group : string;
  mutable last_tree : 'v Rbtree.t option;
}

type 'v handle = { node : 'v Rbtree.node; tree : 'v Rbtree.t }

(* Overhead charged per stored pair when estimating memory: tree node,
   pointers, headers. Roughly what the C++ implementation pays. *)
let node_overhead = 64

let create ?subtable_depth ~name ~dummy () =
  (match subtable_depth with
  | Some d when d < 1 -> invalid_arg "Table.create: subtable_depth < 1"
  | _ -> ());
  {
    name;
    subtable_depth;
    single = Rbtree.create ~dummy ();
    by_prefix = Hashtbl.create 64;
    ordered = Smap.empty;
    dummy;
    stats = fresh_stats ();
    key_bytes = 0;
    pair_count = 0;
    last_group = "";
    last_tree = None;
  }

let name t = t.name
let stats t = t.stats
let size t = t.pair_count

(** Approximate resident bytes for keys and bookkeeping (values are
    accounted separately by the server, which knows about sharing). *)
let memory_bytes t = t.key_bytes + (t.pair_count * node_overhead)

(* The subtable group of [key]: the prefix covering the first
   [depth] components, including the trailing separator when the key
   continues past the boundary. *)
let group_of t key =
  match t.subtable_depth with
  | None -> key (* unused *)
  | Some depth ->
    let n = String.length key in
    let rec scan i seen =
      if i >= n then key
      else if key.[i] = '|' then
        if seen + 1 = depth then String.sub key 0 (i + 1) else scan (i + 1) (seen + 1)
      else scan (i + 1) seen
    in
    scan 0 0

(* does [key]'s group equal [g] (a complete boundary prefix ending in
   '|')? true iff key starts with g — then key's first components are
   exactly g — without allocating the group substring *)
let group_matches g key =
  let gl = String.length g in
  gl > 0
  && String.length key >= gl
  &&
  let rec eq i = i = gl || (String.unsafe_get key i = String.unsafe_get g i && eq (i + 1)) in
  eq 0

let subtable_for t key ~create_missing =
  match t.subtable_depth with
  | None -> Some t.single
  | Some _ -> (
    match t.last_tree with
    | Some tree when group_matches t.last_group key -> Some tree
    | _ -> (
      let g = group_of t key in
      match Hashtbl.find_opt t.by_prefix g with
      | Some tree ->
        if String.length g > 0 && g.[String.length g - 1] = '|' then begin
          t.last_group <- g;
          t.last_tree <- Some tree
        end;
        Some tree
      | None ->
        if create_missing then begin
          let tree = Rbtree.create ~dummy:t.dummy () in
          Hashtbl.add t.by_prefix g tree;
          t.ordered <- Smap.add g tree t.ordered;
          if String.length g > 0 && g.[String.length g - 1] = '|' then begin
            t.last_group <- g;
            t.last_tree <- Some tree
          end;
          Some tree
        end
        else None))

let subtable_count t =
  match t.subtable_depth with None -> 1 | Some _ -> Hashtbl.length t.by_prefix

let get t key =
  t.stats.lookups <- t.stats.lookups + 1;
  match subtable_for t key ~create_missing:false with
  | None -> None
  | Some tree -> (
    match Rbtree.find tree key with Some node -> Some node.Rbtree.value | None -> None)

let get_handle t key =
  t.stats.lookups <- t.stats.lookups + 1;
  match subtable_for t key ~create_missing:false with
  | None -> None
  | Some tree -> (
    match Rbtree.find tree key with Some node -> Some { node; tree } | None -> None)

(** Insert or overwrite. When [hint] points at the predecessor of [key]
    (§4.2 output hints) insertion is O(1) amortized. Returns the handle and
    the previous value ([None] when the key is new). *)
let put ?hint t key value =
  t.stats.inserts <- t.stats.inserts + 1;
  let tree =
    match subtable_for t key ~create_missing:true with
    | Some tree -> tree
    | None -> assert false
  in
  let node, old =
    match hint with
    | Some h when h.tree == tree && Rbtree.is_live h.node ->
      Rbtree.insert_after tree ~hint:h.node key value
    | _ -> Rbtree.insert tree key value
  in
  if old = None then begin
    t.key_bytes <- t.key_bytes + String.length key;
    t.pair_count <- t.pair_count + 1
  end;
  ({ node; tree }, old)

let remove t key =
  t.stats.removes <- t.stats.removes + 1;
  match subtable_for t key ~create_missing:false with
  | None -> None
  | Some tree -> (
    match Rbtree.find tree key with
    | None -> None
    | Some node ->
      let v = node.Rbtree.value in
      Rbtree.remove_node tree node;
      t.key_bytes <- t.key_bytes - String.length key;
      t.pair_count <- t.pair_count - 1;
      Some v)

(* Subtables whose group could hold keys in [lo, hi): any key k in the
   range satisfies group(lo) <= group(k) <= k < hi, because groups are
   component-boundary prefixes of their keys. So we walk groups in
   [group_of lo, hi) in order; each tree filters precisely. *)
let iter_range t ~lo ~hi f =
  if String.compare lo hi < 0 then begin
    let visit tree =
      Rbtree.iter_range tree ~lo ~hi (fun node ->
          t.stats.steps <- t.stats.steps + 1;
          f node.Rbtree.key node.Rbtree.value)
    in
    match t.subtable_depth with
    | None -> visit t.single
    | Some _ ->
      let glo = group_of t lo in
      let depth = match t.subtable_depth with Some d -> d | None -> assert false in
      let confined =
        (* every key in [lo, hi) shares lo's group when the group is a
           complete boundary prefix (all [depth] components, trailing
           separator) and hi stays under its upper bound *)
        String.length glo > 0
        && glo.[String.length glo - 1] = '|'
        && String.fold_left (fun acc c -> if c = '|' then acc + 1 else acc) 0 glo = depth
        && String.compare hi (Strkey.prefix_upper glo) <= 0
      in
      if confined then begin
        (* fast path: range confined to one subtable, O(1) jump *)
        match Hashtbl.find_opt t.by_prefix glo with
        | Some tree -> visit tree
        | None -> ()
      end
      else
        Seq.iter
          (fun (g, tree) -> if String.compare g hi < 0 then visit tree)
          (Seq.take_while
             (fun (g, _) -> String.compare g hi < 0)
             (Smap.to_seq_from glo t.ordered))
  end

let fold_range t ~lo ~hi ~init f =
  let acc = ref init in
  iter_range t ~lo ~hi (fun k v -> acc := f !acc k v);
  !acc

exception Stopped

(* Early-terminating fold: the callback decides per pair whether to keep
   going, so bounded scans stop walking the tree at their limit instead
   of materializing the whole range. *)
let fold_range_stop t ~lo ~hi ~init f =
  let acc = ref init in
  (try
     iter_range t ~lo ~hi (fun k v ->
         match f !acc k v with
         | `Continue a -> acc := a
         | `Stop a ->
           acc := a;
           raise_notrace Stopped)
   with Stopped -> ());
  !acc

let count_range t ~lo ~hi = fold_range t ~lo ~hi ~init:0 (fun acc _ _ -> acc + 1)

let range_to_list t ~lo ~hi =
  List.rev (fold_range t ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))

(** Remove every pair in [\[lo, hi)]; returns how many were removed. *)
let remove_range t ~lo ~hi =
  let doomed = List.map fst (range_to_list t ~lo ~hi) in
  List.iter (fun k -> ignore (remove t k)) doomed;
  List.length doomed

let iter t f = iter_range t ~lo:"" ~hi:"\xff" f

let validate t =
  match t.subtable_depth with
  | None -> Rbtree.validate t.single
  | Some _ ->
    Hashtbl.iter (fun _ tree -> Rbtree.validate tree) t.by_prefix;
    if Hashtbl.length t.by_prefix <> Smap.cardinal t.ordered then
      failwith "Table.validate: index mismatch"
