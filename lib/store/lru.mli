(** Intrusive doubly-linked LRU list for eviction (§2.5): entries enter at
    the most-recently-used end, are [touch]ed on access, and are harvested
    from the LRU end. *)

type 'a t
type 'a entry

(** An empty LRU list. *)
val create : unit -> 'a t
val length : 'a t -> int
val data : 'a entry -> 'a
val is_linked : 'a entry -> bool

(** Insert at the MRU end. *)
val add : 'a t -> 'a -> 'a entry

(** Move to the MRU end (no-op if unlinked). *)
val touch : 'a t -> 'a entry -> unit

val remove : 'a t -> 'a entry -> unit

(** Detach and return the least recently used entry. *)
val pop_lru : 'a t -> 'a option

val iter_mru_to_lru : 'a t -> ('a -> unit) -> unit
