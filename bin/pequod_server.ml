(* pequod-server: a real network-facing Pequod cache server.

   Single-threaded and event-driven, like the paper's implementation: a
   Unix.select readiness loop multiplexes any number of client
   connections, each speaking the length-prefixed wire protocol of
   Pequod_proto. Cache joins can be installed at startup (--join) or by
   clients at runtime (add-join requests).

   With --data-dir the server is durable: every mutation is appended to a
   CRC-checked write-ahead log, snapshots bound recovery time, and a
   restart replays its way back to the last durable record.

   Usage:
     dune exec bin/pequod_server.exe -- --port 7077 \
       --data-dir /var/lib/pequod --sync interval --snapshot-every 100000 \
       --join 't|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>'

   Distributed: --partition routes declare which server is the home for
   each base-table range; a compute server fetches missing ranges from
   the owning peer and subscribes to updates (see DESIGN.md):
     pequod_server --port 7001                                # home for s
     pequod_server --port 7002                                # home for p
     pequod_server --port 7077 \
       --partition 's@127.0.0.1:7001' --partition 'p@127.0.0.1:7002' \
       --join 't|<u>|<t>|<p> = check s|<u>|<p> copy p|<p>|<t>'
*)

module Net_server = Pequod_server_lib.Net_server
module Remote = Pequod_server_lib.Remote
module Shard = Pequod_server_lib.Shard
module Config = Pequod_core.Config

open Cmdliner

let port =
  Arg.(value & opt int 7077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")

let joins =
  Arg.(
    value & opt_all string []
    & info [ "j"; "join" ] ~docv:"JOIN" ~doc:"Cache join to install at startup (repeatable).")

let memory_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "memory-limit" ] ~docv:"BYTES" ~doc:"Evict computed ranges above this footprint.")

let data_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durability directory (write-ahead log + snapshots). Prior state is recovered from \
           it on startup; without this flag the server is a pure in-memory cache.")

let sync_mode =
  let parse s =
    match Config.sync_mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "bad sync mode %S (always|interval|never)" s))
  in
  let print ppf m = Format.pp_print_string ppf (Config.sync_mode_to_string m) in
  Arg.(
    value
    & opt (conv (parse, print)) (Config.Sync_interval 1.0)
    & info [ "sync" ] ~docv:"MODE"
        ~doc:
          "When to fsync the write-ahead log: $(b,always) (every record), $(b,interval) (at \
           most once per --sync-interval seconds), or $(b,never).")

let sync_interval =
  Arg.(
    value & opt float 1.0
    & info [ "sync-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between log fsyncs under --sync interval.")

let snapshot_every =
  Arg.(
    value & opt int 0
    & info [ "snapshot-every" ] ~docv:"RECORDS"
        ~doc:
          "Take a snapshot (and compact the log) every N logged mutations; 0 snapshots only \
           when the log exceeds --wal-max-bytes.")

let wal_max_bytes =
  Arg.(
    value
    & opt int (64 * 1024 * 1024)
    & info [ "wal-max-bytes" ] ~docv:"BYTES"
        ~doc:"Rotate the log through a snapshot once it exceeds this size.")

let metrics_dump =
  Arg.(
    value
    & opt (some float) None
    & info [ "metrics-dump" ] ~docv:"SECONDS"
        ~doc:
          "Print the full metrics registry as one JSON line on stdout every $(docv) seconds \
           (counters and gauges as integers, histograms as objects with p50/p95/p99).")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log client connections and joins.")

let peers =
  Arg.(
    value & opt_all string []
    & info [ "peer" ] ~docv:"HOST:PORT"
        ~doc:
          "A peer pequod-server (repeatable). A $(b,--partition) without an explicit owner \
           is fetched from the single peer when exactly one is given.")

let partitions =
  Arg.(
    value & opt_all string []
    & info [ "partition" ] ~docv:"TABLE[:LO:HI][@HOST:PORT]"
        ~doc:
          "Base-table partition route (repeatable). Bare $(b,TABLE) covers the whole table. \
           With $(b,@HOST:PORT) (or a single $(b,--peer)) the range is owned by that home \
           server and fetched+subscribed on first need; otherwise this process is its home.")

let advertise =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "advertise" ] ~docv:"HOST"
        ~doc:
          "Host peers use to push subscription updates back to this server (with the bound \
           port); set it when 127.0.0.1 is not reachable from the peers.")

let shards =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard-per-core mode: run $(docv) shared-nothing engine shards, each in its own \
           domain with its own event loop and a disjoint slice of the keyspace, behind one \
           acceptor on --port. 0 (the default) runs the classic single-loop server. \
           Incompatible with --partition/--peer.")

let shard_cuts =
  Arg.(
    value & opt_all string []
    & info [ "shard-cut" ] ~docv:"CUT"
        ~doc:
          "Keyspace cut point between consecutive shards, in component space (the part of \
           every key after \"TABLE|\"); give exactly $(b,--shards) minus one, strictly \
           increasing (repeatable). Defaults interpolate evenly over printable strings — \
           pass cuts matched to your key population for balanced shards.")

let dir_host =
  Arg.(
    value & flag
    & info [ "dir-host" ]
        ~doc:
          "Serve the authoritative partition directory (the $(b,seed) role). The directory \
           is seeded at epoch 1 from this process's $(b,--partition) specs (each spec must \
           name its home with @HOST:PORT, or defaults to this server); an empty spec list \
           starts at epoch 0, waiting for $(b,pequod_ctl dir-seed). Incompatible with \
           $(b,--directory) and $(b,--shards).")

let directory =
  Arg.(
    value
    & opt (some string) None
    & info [ "directory" ] ~docv:"HOST:PORT"
        ~doc:
          "Join a directory-routed cluster as a follower of the given seed server: fetch \
           the partition directory at startup, poll it for epoch changes, and route \
           reads/writes by it instead of by static $(b,--partition) flags. Incompatible \
           with $(b,--dir-host), $(b,--partition) and $(b,--shards).")

let dir_poll_every =
  Arg.(
    value & opt float 1.0
    & info [ "dir-poll-every" ] ~docv:"SECONDS"
        ~doc:"Seconds between directory polls to the seed (followers only).")

let hot_threshold =
  Arg.(
    value & opt float 0.
    & info [ "hot-threshold" ] ~docv:"READS_PER_SEC"
        ~doc:
          "Directory mode: flag an owned range as a hotspot when its read rate crosses \
           $(docv) (measured over 5-second windows), counting it in $(b,hotspot.detected) \
           and logging the $(b,pequod_ctl replicate) command that would stand up a read \
           replica. 0 disables detection.")

let sub_check_every =
  Arg.(
    value & opt float 2.0
    & info [ "sub-check-every" ] ~docv:"SECONDS"
        ~doc:
          "Seconds between subscription-healing heartbeats to the homes. Each round costs \
           the homes a walk of this server's live subscriptions, so large deployments \
           should slow it down.")

(* follower bootstrap: one blocking directory fetch from the seed, with
   a short retry budget. Failure is not fatal — the server starts at
   epoch 0 (every range deferred) and the poll tick keeps trying. *)
let initial_dir_fetch dir seed_addr =
  let module Net_client = Pequod_server_lib.Net_client in
  let module Message = Pequod_proto.Message in
  match String.rindex_opt seed_addr ':' with
  | None -> Logs.err (fun m -> m "bad --directory address %S" seed_addr)
  | Some i -> (
    match
      int_of_string_opt (String.sub seed_addr (i + 1) (String.length seed_addr - i - 1))
    with
    | None -> Logs.err (fun m -> m "bad --directory address %S" seed_addr)
    | Some cport ->
      let chost = String.sub seed_addr 0 i in
      let client =
        Net_client.create
          ~config:
            { Net_client.connect_timeout = 1.0; call_timeout = 3.0; max_retries = 3;
              backoff = 0.2 }
          ~host:chost ~port:cport ()
      in
      Fun.protect
        ~finally:(fun () -> Net_client.close client)
        (fun () ->
          match Net_client.call client Message.Dir_get with
          | Message.Dir_state { epoch; entries } -> (
            if epoch = 0 then
              Logs.warn (fun m ->
                  m "directory seed %s has no entries yet (epoch 0)" seed_addr)
            else
              match Pequod_server_lib.Directory.install dir ~epoch ~entries with
              | Ok () -> ()
              | Error msg ->
                Logs.err (fun m -> m "directory from seed %s rejected: %s" seed_addr msg))
          | Message.Error msg ->
            Logs.warn (fun m -> m "directory seed %s refused Dir_get: %s" seed_addr msg)
          | _ -> Logs.warn (fun m -> m "directory seed %s: unexpected response" seed_addr)
          | exception Net_client.Net_error msg ->
            Logs.warn (fun m ->
                m "directory seed %s unreachable (%s); starting at epoch 0" seed_addr msg)))

let main port joins memory_limit data_dir sync sync_interval snapshot_every wal_max_bytes
    metrics_dump verbose peers partitions advertise sub_check_every shards shard_cuts
    dir_host directory dir_poll_every hot_threshold =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  (* Warning, not App: Some App would filter out Logs.err itself, and a
     server that refuses to start must say why *)
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  let config = Config.default () in
  (match data_dir with
  | None -> ()
  | Some dir ->
    let p = Config.default_persist ~dir in
    p.Config.p_sync <-
      (match sync with Config.Sync_interval _ -> Config.Sync_interval sync_interval | m -> m);
    p.Config.p_snapshot_every <- snapshot_every;
    p.Config.p_wal_max_bytes <- wal_max_bytes;
    config.Config.persist <- Some p);
  if shards > 0 then begin
    if partitions <> [] || peers <> [] then begin
      Logs.err (fun m -> m "--shards is incompatible with --partition/--peer");
      1
    end
    else if dir_host || directory <> None then begin
      Logs.err (fun m -> m "--shards is incompatible with --dir-host/--directory");
      1
    end
    else
      match
        Shard.create ~config ?metrics_every:metrics_dump ~sub_check_every ~advertise
          ?cuts:(match shard_cuts with [] -> None | cs -> Some cs)
          ~port ~joins ~memory_limit ~shards ()
      with
      | t ->
        Logs.app (fun m ->
            m "pequod-server listening on port %d with %d joins, %d shards on ports [%s]%s"
              (Shard.port t) (List.length joins) shards
              (String.concat "; " (List.map string_of_int (Shard.shard_ports t)))
              (match data_dir with
              | Some dir -> Printf.sprintf " (durable in %s)" dir
              | None -> ""));
        Shard.run t;
        0
      | exception (Failure msg | Invalid_argument msg) ->
        Logs.err (fun m -> m "%s" msg);
        1
  end
  else if dir_host && directory <> None then begin
    Logs.err (fun m -> m "--dir-host and --directory are mutually exclusive");
    1
  end
  else if directory <> None && (partitions <> [] || peers <> []) then begin
    Logs.err (fun m ->
        m "--directory followers take all routes from the seed; drop --partition/--peer");
    1
  end
  else if dir_host || directory <> None then begin
    (* directory mode: routing truth lives in the partition directory,
       seeded here (--dir-host) or polled from the seed (--directory) *)
    let module Directory = Pequod_server_lib.Directory in
    let module Message = Pequod_proto.Message in
    match
      Net_server.create ~config ?metrics_every:metrics_dump ~port ~joins ~memory_limit ()
    with
    | t -> (
      let self_addr = Printf.sprintf "%s:%d" advertise (Net_server.port t) in
      let dir = Directory.create () in
      let seeded =
        if not dir_host then Ok ()
        else
          match Remote.routes_of_specs ~peers partitions with
          | Error _ as e -> e
          | Ok [] -> Ok () (* epoch 0 until pequod_ctl dir-seed *)
          | Ok routes ->
            if List.exists (fun r -> String.equal r.Remote.r_table "*") routes then
              Error "wildcard --partition specs cannot seed the directory"
            else
              let entries =
                List.map
                  (fun (r : Remote.route) ->
                    { Message.de_table = r.r_table; de_lo = r.r_lo; de_hi = r.r_hi;
                      de_home = Option.value r.r_addr ~default:self_addr;
                      de_replicas = [] })
                  routes
              in
              Directory.install dir ~epoch:1 ~entries
      in
      match seeded with
      | Error msg ->
        Logs.err (fun m -> m "%s" msg);
        1
      | Ok () ->
        Option.iter (initial_dir_fetch dir) directory;
        Net_server.set_directory t ?seed:directory ~hot_threshold ~dir ~self_addr ();
        let tick =
          Remote.attach
            (Remote.Config.make ~check_every:sub_check_every
               ~on_wait:(Net_server.on_wait t) ~engine:(Net_server.engine t) ~self_addr
               (Remote.Config.directory ~poll_every:dir_poll_every ?seed:directory dir))
        in
        Net_server.add_ticker t tick;
        Logs.app (fun m ->
            m "pequod-server listening on port %d with %d joins, directory %s (epoch %d)%s"
              (Net_server.port t)
              (List.length (Pequod_core.Server.joins (Net_server.engine t)))
              (match directory with
              | None -> "seed"
              | Some s -> "follower of " ^ s)
              (Directory.epoch dir)
              (match data_dir with
              | Some dir -> Printf.sprintf " (durable in %s)" dir
              | None -> ""));
        Net_server.run t;
        0)
    | exception Failure msg ->
      Logs.err (fun m -> m "%s" msg);
      1
  end
  else
  match Remote.routes_of_specs ~peers partitions with
  | Error msg ->
    Logs.err (fun m -> m "%s" msg);
    1
  | Ok routes -> (
    match
      Net_server.create ~config ?metrics_every:metrics_dump ~port ~joins ~memory_limit ()
    with
    | t ->
      let self_addr = Printf.sprintf "%s:%d" advertise (Net_server.port t) in
      let heal =
        Remote.attach
          (Remote.Config.make ~check_every:sub_check_every ~server:t
             ~engine:(Net_server.engine t) ~self_addr (Remote.Config.Static routes))
      in
      Net_server.add_ticker t heal;
      Logs.app (fun m ->
          m "pequod-server listening on port %d with %d joins, %d partition routes%s"
            (Net_server.port t)
            (List.length (Pequod_core.Server.joins (Net_server.engine t)))
            (List.length routes)
            (match data_dir with
            | Some dir -> Printf.sprintf " (durable in %s)" dir
            | None -> ""));
      Net_server.run t;
      0
    | exception Failure msg ->
      Logs.err (fun m -> m "%s" msg);
      1)

let cmd =
  Cmd.v
    (Cmd.info "pequod-server" ~doc:"A Pequod cache server speaking the binary wire protocol")
    Term.(
      const main $ port $ joins $ memory_limit $ data_dir $ sync_mode $ sync_interval
      $ snapshot_every $ wal_max_bytes $ metrics_dump $ verbose $ peers $ partitions
      $ advertise $ sub_check_every $ shards $ shard_cuts $ dir_host $ directory
      $ dir_poll_every $ hot_threshold)

let () = if not !Sys.interactive then exit (Cmd.eval' cmd)
