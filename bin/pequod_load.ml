(* pequod-load: the live-cluster load harness.

   Generates a Zipf-skewed social graph (a million users fit — the graph
   is flat CSR arrays), forks a real pequod_server cluster (home servers
   owning the base-table slices, compute servers running the timeline
   join over --partition routes), preloads the subscriptions, then
   drives the Twip op mix (5% login / 9% subscribe / 85% check / 1%
   post) from deadline-paced multi-process workers over TCP. Per-op
   latencies land in log histograms that are merged across workers, and
   the run is emitted as a provenance-stamped BENCH_cluster.json.

   Usage:
     dune exec bin/pequod_load.exe -- \
       --users 1000000 --ops 2000000 --workers 4 --homes 2 --computes 2

   CI runs the same path tiny via `make cluster-smoke`, clamping the op
   count with PEQUOD_LOAD_QUOTA. *)

module Coord = Pequod_load_lib.Coord

open Cmdliner

let users =
  Arg.(
    value
    & opt int Coord.default.users
    & info [ "u"; "users" ] ~docv:"N" ~doc:"Users in the generated social graph.")

let ops =
  Arg.(
    value
    & opt int Coord.default.ops
    & info [ "n"; "ops" ] ~docv:"N"
        ~doc:
          "Total ops across all workers ($(b,PEQUOD_LOAD_QUOTA) clamps this from the \
           environment).")

let workers =
  Arg.(
    value
    & opt int Coord.default.workers
    & info [ "w"; "workers" ] ~docv:"N" ~doc:"Load-generating worker processes.")

let homes =
  Arg.(
    value
    & opt int Coord.default.homes
    & info [ "homes" ] ~docv:"N" ~doc:"Home servers (base-table owners).")

let computes =
  Arg.(
    value
    & opt int Coord.default.computes
    & info [ "computes" ] ~docv:"N" ~doc:"Compute servers (timeline join).")

let shards =
  Arg.(
    value
    & opt int Coord.default.shards
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Drive one shard-per-core server ($(b,pequod_server --shards) $(docv)) instead of \
           the homes+computes cluster; 2 or more also measures a $(b,--shards 1) baseline \
           pass for the speedup comparison. 0 (the default) keeps the classic topology.")

let avg_follows =
  Arg.(
    value
    & opt int Coord.default.avg_follows
    & info [ "avg-follows" ] ~docv:"N" ~doc:"Mean out-degree of the generated graph.")

let active =
  Arg.(
    value
    & opt float Coord.default.active
    & info [ "active" ] ~docv:"FRAC" ~doc:"Fraction of users that log in and check.")

let rate =
  Arg.(
    value
    & opt float Coord.default.rate
    & info [ "rate" ] ~docv:"OPS_PER_SEC"
        ~doc:
          "Total open-loop arrival rate across workers; 0 runs closed-loop at pipeline \
           depth.")

let window =
  Arg.(
    value
    & opt int Coord.default.window
    & info [ "pipeline" ] ~docv:"N" ~doc:"Per-worker pipeline depth.")

let login_window =
  Arg.(
    value
    & opt int Coord.default.login_window
    & info [ "login-window" ] ~docv:"TICKS"
        ~doc:"Logical time a login's timeline scan reaches back.")

let seed =
  Arg.(
    value
    & opt int Coord.default.seed
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Root seed; graph and every worker's op stream derive from it.")

let preload_posts =
  Arg.(
    value
    & opt int Coord.default.preload_posts
    & info [ "preload-posts" ] ~docv:"N"
        ~doc:"Posts to bulk-load before the timed run (times 0..N-1).")

let migrate_mid_run =
  Arg.(
    value & flag
    & info [ "migrate-mid-run" ]
        ~doc:
          "Boot the cluster directory-routed (home 0 seeds the partition directory), then \
           live-migrate home 0's $(b,p) slice to home 1 while the workers drive load, \
           probing read latency of the moving range before/during/after the handoff. \
           Needs $(b,--homes) >= 2; incompatible with $(b,--shards).")

let sessions =
  Arg.(
    value & flag
    & info [ "sessions" ]
        ~doc:
          "Thread a session stamp vector through every worker: write acks accumulate and \
           reads demand them (read-your-writes). $(b,derived.stale_read_rate) in the \
           result JSON must come out 0; without this flag it measures whatever staleness \
           subscription-push lag produces.")

let memory_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "memory-limit" ] ~docv:"BYTES"
        ~doc:"Eviction cap handed to the compute servers.")

let out =
  Arg.(
    value
    & opt string Coord.default.out
    & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Where to write the stamped result JSON.")

let server_exe =
  Arg.(
    value
    & opt (some string) None
    & info [ "server-exe" ] ~docv:"PATH"
        ~doc:"pequod_server binary (default: found beside this binary or in _build).")

let run users ops workers homes computes shards avg_follows active rate window login_window
    seed preload_posts memory_limit migrate_mid_run sessions out server_exe =
  if users < 1 then `Error (false, "--users must be positive")
  else if workers < 1 then `Error (false, "--workers must be positive")
  else if homes < 1 || computes < 1 then
    `Error (false, "need at least one home and one compute server")
  else if shards < 0 || shards > users then
    `Error (false, "--shards must be between 0 and --users")
  else if window < 1 then `Error (false, "--pipeline must be positive")
  else if migrate_mid_run && shards > 0 then
    `Error (false, "--migrate-mid-run is incompatible with --shards")
  else if migrate_mid_run && homes < 2 then
    `Error (false, "--migrate-mid-run needs at least two home servers")
  else
    let cfg =
      { Coord.users; ops; workers; homes; computes; shards; avg_follows; active; rate;
        window; login_window; seed; preload_posts; memory_limit; migrate_mid_run;
        sessions; out; server_exe }
    in
    `Ok (Coord.run cfg)

let cmd =
  let doc = "drive a live Pequod cluster with the Twip workload" in
  Cmd.v
    (Cmd.info "pequod-load" ~doc)
    Term.(
      ret
        (const run $ users $ ops $ workers $ homes $ computes $ shards $ avg_follows
       $ active $ rate $ window $ login_window $ seed $ preload_posts $ memory_limit
       $ migrate_mid_run $ sessions $ out $ server_exe))

let () = exit (Cmd.eval' cmd)
