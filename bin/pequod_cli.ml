(* pequod-cli: command-line client for a running pequod-server.

   Keyed commands (get / put / remove / scan / load) speak through a
   {!Session}: write acks fold their stamp vector into the session and
   are printed for handoff; reads can demand a vector back with
   repeatable --at-least flags (read-your-writes across invocations):

     pequod_cli.exe put 'p|bob|0000000100' 'hello'
       ok
       stamp p	[p|bob|0000000100,p|bob|0000000100\x00)	7
     pequod_cli.exe --at-least 'p,p|bob|,p|bob},7' scan 't|ann|' 't|ann}'

   With --directory HOST:PORT the CLI asks the partition directory who
   owns the command's key and connects there — the same routing surface
   servers use, following live migrations instead of a hardwired --host.

   Other examples:
     pequod_cli.exe scan 't|ann|' 't|ann}'
     pequod_cli.exe add-join 't|<u>|<t>|<p> = check s|<u>|<p> copy p|<p>|<t>'
     pequod_cli.exe stats        # or: pequod_cli.exe --stats
*)

module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client
module Session = Pequod_server_lib.Session

let print_stamps stamps =
  List.iter
    (fun (table, lo, hi, s) -> Printf.printf "stamp %s\t[%s,%s)\t%d\n" table lo hi s)
    stamps

(* [Stale] is a retryable, typed condition, not a generic failure:
   give scripts a distinct status (generic errors exit 1, usage 124+) *)
let stale_exit_code = 4

let stale_exit unmet =
  List.iter
    (fun (table, lo, hi, s) ->
      Printf.eprintf "stale: %s [%s,%s) still below %d\n" table lo hi s)
    unmet;
  exit stale_exit_code

(* all traffic goes through the typed client: connection management,
   the protocol handshake, timeouts, and retries live there, not here *)
let with_client ~host ~port f =
  let client = Net_client.create ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Net_client.close client)
    (fun () ->
      try f client
      with Net_client.Net_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)

let split_addr addr =
  match String.rindex_opt addr ':' with
  | Some i ->
    (try
       ( String.sub addr 0 i,
         int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) )
     with Failure _ ->
       Printf.eprintf "error: bad address %s (want HOST:PORT)\n" addr;
       exit 2)
  | None ->
    Printf.eprintf "error: bad address %s (want HOST:PORT)\n" addr;
    exit 2

let table_of_key key =
  match String.index_opt key '|' with Some i -> String.sub key 0 i | None -> key

(* --directory: ask the partition directory who owns [key] and connect
   there. Wildcard entries partition every table in component space
   (the part of the key after "T|"), mirroring the route semantics in
   [Remote]. Falls back to --host/--port when no entry covers the key. *)
let resolve_home ~host ~port directory key =
  match directory with
  | None -> (host, port)
  | Some addr ->
    let dhost, dport = split_addr addr in
    with_client ~host:dhost ~port:dport (fun c ->
        match Net_client.call c Message.Dir_get with
        | Message.Dir_state { entries; _ } ->
          let table = table_of_key key in
          let component =
            match String.index_opt key '|' with
            | Some i -> String.sub key (i + 1) (String.length key - i - 1)
            | None -> ""
          in
          let covers (e : Message.dir_entry) =
            if String.equal e.de_table "*" then
              String.compare e.de_lo component <= 0
              && (e.de_hi = "" || String.compare component e.de_hi < 0)
            else
              String.equal e.de_table table
              && String.compare e.de_lo key <= 0
              && String.compare key e.de_hi < 0
          in
          (match List.find_opt covers entries with
          | Some e -> split_addr e.de_home
          | None -> (host, port))
        | Message.Error msg ->
          Printf.eprintf "error: directory: %s\n" msg;
          exit 1
        | _ -> (host, port))

(* keyed commands run in a session: --at-least entries seed the demand
   vector, write acks grow it, and [Stale] becomes a typed failure *)
let with_session ~host ~port ~directory ~at_least ~key f =
  let host, port = resolve_home ~host ~port directory key in
  with_client ~host ~port (fun client ->
      let session = Session.create client in
      Session.with_at_least session at_least;
      try f session with Session.Stale unmet -> stale_exit unmet)

let print_response = function
  | Message.Done -> print_endline "ok"
  | Message.Value None -> print_endline "(nil)"
  | Message.Value (Some v) -> print_endline v
  | Message.Pairs pairs | Message.Subscribed { pairs; _ } ->
    List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) pairs;
    Printf.printf "(%d pairs)\n" (List.length pairs)
  | Message.Stamps stamps ->
    (* v3 write ack: the stamp vector for the written keys *)
    print_endline "ok";
    print_stamps stamps
  | Message.Stale unmet -> stale_exit unmet
  | Message.Welcome { version } -> Printf.printf "protocol v%d\n" version
  | Message.Sub_ranges ranges ->
    List.iter (fun (table, lo, hi) -> Printf.printf "%s\t%s\t%s\n" table lo hi) ranges;
    Printf.printf "(%d subscriptions)\n" (List.length ranges)
  | Message.Metrics metrics ->
    (* the full registry: histograms render their quantile summary *)
    let tbl =
      Tablefmt.create ~title:"server metrics"
        ~headers:[ "metric"; "kind"; "value"; "p50"; "p95"; "p99"; "max" ]
        ~aligns:
          [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
            Tablefmt.Right; Tablefmt.Right ]
    in
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Counter n ->
          Tablefmt.add_row tbl [ name; "counter"; string_of_int n; ""; ""; ""; "" ]
        | Obs.Gauge n -> Tablefmt.add_row tbl [ name; "gauge"; string_of_int n; ""; ""; ""; "" ]
        | Obs.Histogram h ->
          Tablefmt.add_row tbl
            [ name; "histogram"; string_of_int h.Obs.Histogram.count;
              string_of_int h.Obs.Histogram.p50; string_of_int h.Obs.Histogram.p95;
              string_of_int h.Obs.Histogram.p99; string_of_int h.Obs.Histogram.max ])
      metrics;
    Tablefmt.print tbl
  | Message.Dir_state { epoch; entries } ->
    Printf.printf "directory epoch %d\n" epoch;
    List.iter
      (fun (e : Message.dir_entry) ->
        Printf.printf "%s\t[%s,%s)\t%s%s\n" e.de_table e.de_lo e.de_hi e.de_home
          (match e.de_replicas with
          | [] -> ""
          | rs -> "\treplicas " ^ String.concat "," rs))
      entries
  | Message.Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc:"Server host.")

let port = Arg.(value & opt int 7077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let directory =
  Arg.(
    value
    & opt (some string) None
    & info [ "directory" ] ~docv:"HOST:PORT"
        ~doc:
          "Partition directory to consult: the command's key is routed to the home the \
           directory names, following live migrations (falls back to --host/--port when \
           no entry covers the key).")

(* TABLE,LO,HI,STAMP — the printed `stamp` lines of an earlier write,
   handed back as a freshness demand *)
let at_least_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ table; lo; hi; stamp ] -> (
      match int_of_string_opt stamp with
      | Some n when n > 0 -> Ok (table, lo, hi, n)
      | _ -> Error (`Msg ("bad stamp in --at-least: " ^ s)))
    | _ -> Error (`Msg ("--at-least wants TABLE,LO,HI,STAMP, got: " ^ s))
  in
  let print ppf (table, lo, hi, s) = Format.fprintf ppf "%s,%s,%s,%d" table lo hi s in
  Arg.conv (parse, print)

let at_least =
  Arg.(
    value
    & opt_all at_least_conv []
    & info [ "at-least" ] ~docv:"TABLE,LO,HI,STAMP"
        ~doc:
          "Demand the server's copy of [LO,HI) in TABLE be at version STAMP or newer \
           before answering (repeatable). Pass the $(b,stamp) lines an earlier write \
           printed; the read waits, refetches, or fails $(b,stale) — it never silently \
           answers older data.")

let run_command host port req =
  with_client ~host ~port (fun client -> print_response (Net_client.call client req));
  0

let key_arg n doc = Arg.(required & pos n (some string) None & info [] ~docv:"KEY" ~doc)

let get_cmd =
  Cmd.v (Cmd.info "get" ~doc:"Fetch one key (computing joins if needed)")
    Term.(
      const (fun host port directory at_least key ->
          with_session ~host ~port ~directory ~at_least ~key (fun session ->
              match Session.get session key with
              | None -> print_endline "(nil)"
              | Some v -> print_endline v);
          0)
      $ host $ port $ directory $ at_least $ key_arg 0 "Key to fetch.")

let put_cmd =
  Cmd.v (Cmd.info "put" ~doc:"Store a key-value pair")
    Term.(
      const (fun host port directory key value ->
          with_session ~host ~port ~directory ~at_least:[] ~key (fun session ->
              Session.put session key value;
              print_endline "ok";
              print_stamps (Session.stamp session));
          0)
      $ host $ port $ directory $ key_arg 0 "Key to store."
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE" ~doc:"Value."))

let remove_cmd =
  Cmd.v (Cmd.info "remove" ~doc:"Remove a key")
    Term.(
      const (fun host port directory key ->
          with_session ~host ~port ~directory ~at_least:[] ~key (fun session ->
              Session.remove session key;
              print_endline "ok";
              print_stamps (Session.stamp session));
          0)
      $ host $ port $ directory $ key_arg 0 "Key to remove.")

let scan_cmd =
  Cmd.v (Cmd.info "scan" ~doc:"Ordered scan of [LO, HI)")
    Term.(
      const (fun host port directory at_least lo hi ->
          with_session ~host ~port ~directory ~at_least ~key:lo (fun session ->
              let pairs = Session.scan session ~lo ~hi in
              List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) pairs;
              Printf.printf "(%d pairs)\n" (List.length pairs));
          0)
      $ host $ port $ directory $ at_least
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"LO" ~doc:"Range start.")
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"HI" ~doc:"Range end (exclusive)."))

let add_join_cmd =
  Cmd.v (Cmd.info "add-join" ~doc:"Install a cache join")
    Term.(
      const (fun host port text -> run_command host port (Message.Add_join text))
      $ host $ port
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"JOIN" ~doc:"Join text."))

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Full server metrics registry (counters, gauges, histograms)")
    Term.(const (fun host port -> run_command host port Message.Stats_full) $ host $ port)

(* Bulk load: KEY<TAB>VALUE lines, framed as Put_batch chunks so the
   server pays its per-batch costs (sort, stab, fsync) once per chunk
   instead of once per key. The final stamp vector covers every chunk —
   hand it to a later stamped read to observe the whole load. *)
let run_load host port directory path batch =
  if batch < 1 then begin
    prerr_endline "pequod-cli: --batch must be at least 1";
    exit 2
  end;
  let ic = if path = "-" then stdin else open_in path in
  Fun.protect
    ~finally:(fun () -> if path <> "-" then close_in ic)
    (fun () ->
      with_session ~host ~port ~directory ~at_least:[] ~key:"" (fun session ->
          let total = ref 0 and batches = ref 0 in
          let send = function
            | [] -> ()
            | rev_pairs ->
              let pairs = List.rev rev_pairs in
              Session.put_batch session pairs;
              total := !total + List.length pairs;
              incr batches
          in
          let pending = ref [] and n = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if line <> "" then
                 match String.index_opt line '\t' with
                 | None -> Printf.eprintf "skipping line without a TAB: %s\n" line
                 | Some i ->
                   let key = String.sub line 0 i in
                   let value = String.sub line (i + 1) (String.length line - i - 1) in
                   pending := (key, value) :: !pending;
                   incr n;
                   if !n >= batch then begin
                     send !pending;
                     pending := [];
                     n := 0
                   end
             done
           with End_of_file -> ());
          send !pending;
          Printf.printf "loaded %d pairs in %d batches\n" !total !batches;
          print_stamps (Session.stamp session));
      0)

let batch_size =
  Arg.(
    value & opt int 1000
    & info [ "batch" ] ~docv:"N" ~doc:"Pairs per Put_batch frame (default 1000).")

let load_cmd =
  Cmd.v
    (Cmd.info "load"
       ~doc:"Bulk-load KEY<TAB>VALUE lines from FILE (or stdin) using batched writes")
    Term.(
      const run_load $ host $ port $ directory
      $ Arg.(
          value & pos 0 string "-"
          & info [] ~docv:"FILE" ~doc:"Input file of KEY<TAB>VALUE lines; - reads stdin.")
      $ batch_size)

(* bare `pequod-cli --stats` and `pequod-cli --load FILE` work too, as
   shorthands for the subcommands *)
let default_term =
  Term.(
    const (fun host port directory stats load batch ->
        match load with
        | Some path -> run_load host port directory path batch
        | None ->
          if stats then run_command host port Message.Stats_full
          else begin
            prerr_endline "pequod-cli: missing command (try --help or --stats)";
            2
          end)
    $ host $ port $ directory
    $ Arg.(value & flag & info [ "stats" ] ~doc:"Print the server's full metrics registry and exit.")
    $ Arg.(
        value & opt (some string) None
        & info [ "load" ] ~docv:"FILE"
            ~doc:"Bulk-load KEY<TAB>VALUE lines from FILE (- for stdin) with batched writes.")
    $ batch_size)

let cmd =
  Cmd.group ~default:default_term
    (Cmd.info "pequod-cli" ~doc:"Client for a pequod-server")
    [ get_cmd; put_cmd; remove_cmd; scan_cmd; add_join_cmd; stats_cmd; load_cmd ]

let () = if not !Sys.interactive then exit (Cmd.eval' cmd)
