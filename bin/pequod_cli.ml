(* pequod-cli: command-line client for a running pequod-server.

   Examples:
     pequod_cli.exe put  s|ann|bob 1
     pequod_cli.exe put  'p|bob|0000000100' 'hello'
     pequod_cli.exe scan 't|ann|' 't|ann}'
     pequod_cli.exe get  't|ann|0000000100|bob'
     pequod_cli.exe add-join 't|<u>|<t>|<p> = check s|<u>|<p> copy p|<p>|<t>'
     pequod_cli.exe stats        # or: pequod_cli.exe --stats
*)

module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

(* all traffic goes through the typed client: connection management,
   the protocol handshake, timeouts, and retries live there, not here *)
let with_client ~host ~port f =
  let client = Net_client.create ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Net_client.close client)
    (fun () ->
      try f client
      with Net_client.Net_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)

let print_response = function
  | Message.Done -> print_endline "ok"
  | Message.Value None -> print_endline "(nil)"
  | Message.Value (Some v) -> print_endline v
  | Message.Pairs pairs | Message.Subscribed pairs ->
    List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) pairs;
    Printf.printf "(%d pairs)\n" (List.length pairs)
  | Message.Welcome { version } -> Printf.printf "protocol v%d\n" version
  | Message.Sub_ranges ranges ->
    List.iter (fun (table, lo, hi) -> Printf.printf "%s\t%s\t%s\n" table lo hi) ranges;
    Printf.printf "(%d subscriptions)\n" (List.length ranges)
  | Message.Metrics metrics ->
    (* the full registry: histograms render their quantile summary *)
    let tbl =
      Tablefmt.create ~title:"server metrics"
        ~headers:[ "metric"; "kind"; "value"; "p50"; "p95"; "p99"; "max" ]
        ~aligns:
          [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
            Tablefmt.Right; Tablefmt.Right ]
    in
    List.iter
      (fun (name, v) ->
        match v with
        | Obs.Counter n ->
          Tablefmt.add_row tbl [ name; "counter"; string_of_int n; ""; ""; ""; "" ]
        | Obs.Gauge n -> Tablefmt.add_row tbl [ name; "gauge"; string_of_int n; ""; ""; ""; "" ]
        | Obs.Histogram h ->
          Tablefmt.add_row tbl
            [ name; "histogram"; string_of_int h.Obs.Histogram.count;
              string_of_int h.Obs.Histogram.p50; string_of_int h.Obs.Histogram.p95;
              string_of_int h.Obs.Histogram.p99; string_of_int h.Obs.Histogram.max ])
      metrics;
    Tablefmt.print tbl
  | Message.Dir_state { epoch; entries } ->
    Printf.printf "directory epoch %d\n" epoch;
    List.iter
      (fun (e : Message.dir_entry) ->
        Printf.printf "%s\t[%s,%s)\t%s%s\n" e.de_table e.de_lo e.de_hi e.de_home
          (match e.de_replicas with
          | [] -> ""
          | rs -> "\treplicas " ^ String.concat "," rs))
      entries
  | Message.Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

open Cmdliner

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc:"Server host.")

let port = Arg.(value & opt int 7077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let run_command host port req =
  with_client ~host ~port (fun client -> print_response (Net_client.call client req));
  0

let key_arg n doc = Arg.(required & pos n (some string) None & info [] ~docv:"KEY" ~doc)

let get_cmd =
  Cmd.v (Cmd.info "get" ~doc:"Fetch one key (computing joins if needed)")
    Term.(
      const (fun host port key -> run_command host port (Message.Get key))
      $ host $ port $ key_arg 0 "Key to fetch.")

let put_cmd =
  Cmd.v (Cmd.info "put" ~doc:"Store a key-value pair")
    Term.(
      const (fun host port key value -> run_command host port (Message.Put (key, value)))
      $ host $ port $ key_arg 0 "Key to store."
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE" ~doc:"Value."))

let remove_cmd =
  Cmd.v (Cmd.info "remove" ~doc:"Remove a key")
    Term.(
      const (fun host port key -> run_command host port (Message.Remove key))
      $ host $ port $ key_arg 0 "Key to remove.")

let scan_cmd =
  Cmd.v (Cmd.info "scan" ~doc:"Ordered scan of [LO, HI)")
    Term.(
      const (fun host port lo hi -> run_command host port (Message.Scan { lo; hi }))
      $ host $ port
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"LO" ~doc:"Range start.")
      $ Arg.(required & pos 1 (some string) None & info [] ~docv:"HI" ~doc:"Range end (exclusive)."))

let add_join_cmd =
  Cmd.v (Cmd.info "add-join" ~doc:"Install a cache join")
    Term.(
      const (fun host port text -> run_command host port (Message.Add_join text))
      $ host $ port
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"JOIN" ~doc:"Join text."))

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Full server metrics registry (counters, gauges, histograms)")
    Term.(const (fun host port -> run_command host port Message.Stats_full) $ host $ port)

(* Bulk load: KEY<TAB>VALUE lines, framed as Put_batch chunks so the
   server pays its per-batch costs (sort, stab, fsync) once per chunk
   instead of once per key. *)
let run_load host port path batch =
  if batch < 1 then begin
    prerr_endline "pequod-cli: --batch must be at least 1";
    exit 2
  end;
  let ic = if path = "-" then stdin else open_in path in
  Fun.protect
    ~finally:(fun () -> if path <> "-" then close_in ic)
    (fun () ->
      with_client ~host ~port (fun client ->
          let total = ref 0 and batches = ref 0 in
          let send = function
            | [] -> ()
            | rev_pairs -> (
              let pairs = List.rev rev_pairs in
              match Net_client.call client (Message.Put_batch pairs) with
              | Message.Done ->
                total := !total + List.length pairs;
                incr batches
              | Message.Error msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1
              | _ ->
                prerr_endline "error: unexpected response to Put_batch";
                exit 1)
          in
          let pending = ref [] and n = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if line <> "" then
                 match String.index_opt line '\t' with
                 | None -> Printf.eprintf "skipping line without a TAB: %s\n" line
                 | Some i ->
                   let key = String.sub line 0 i in
                   let value = String.sub line (i + 1) (String.length line - i - 1) in
                   pending := (key, value) :: !pending;
                   incr n;
                   if !n >= batch then begin
                     send !pending;
                     pending := [];
                     n := 0
                   end
             done
           with End_of_file -> ());
          send !pending;
          Printf.printf "loaded %d pairs in %d batches\n" !total !batches;
          0))

let batch_size =
  Arg.(
    value & opt int 1000
    & info [ "batch" ] ~docv:"N" ~doc:"Pairs per Put_batch frame (default 1000).")

let load_cmd =
  Cmd.v
    (Cmd.info "load"
       ~doc:"Bulk-load KEY<TAB>VALUE lines from FILE (or stdin) using batched writes")
    Term.(
      const run_load $ host $ port
      $ Arg.(
          value & pos 0 string "-"
          & info [] ~docv:"FILE" ~doc:"Input file of KEY<TAB>VALUE lines; - reads stdin.")
      $ batch_size)

(* bare `pequod-cli --stats` and `pequod-cli --load FILE` work too, as
   shorthands for the subcommands *)
let default_term =
  Term.(
    const (fun host port stats load batch ->
        match load with
        | Some path -> run_load host port path batch
        | None ->
          if stats then run_command host port Message.Stats_full
          else begin
            prerr_endline "pequod-cli: missing command (try --help or --stats)";
            2
          end)
    $ host $ port
    $ Arg.(value & flag & info [ "stats" ] ~doc:"Print the server's full metrics registry and exit.")
    $ Arg.(
        value & opt (some string) None
        & info [ "load" ] ~docv:"FILE"
            ~doc:"Bulk-load KEY<TAB>VALUE lines from FILE (- for stdin) with batched writes.")
    $ batch_size)

let cmd =
  Cmd.group ~default:default_term
    (Cmd.info "pequod-cli" ~doc:"Client for a pequod-server")
    [ get_cmd; put_cmd; remove_cmd; scan_cmd; add_join_cmd; stats_cmd; load_cmd ]

let () = if not !Sys.interactive then exit (Cmd.eval' cmd)
