(* pequod-ctl: cluster-control client for directory-mode pequod-servers.

   Talks to the partition directory (held by the seed server) and to the
   migration driver in the homes. See docs/PARTITIONING.md.

   Examples:
     pequod_ctl.exe dir 127.0.0.1:7001
     pequod_ctl.exe dir-seed 127.0.0.1:7001 's@127.0.0.1:7001' 'p@127.0.0.1:7002'
     pequod_ctl.exe migrate 127.0.0.1:7001 s 's|m' 's}' 127.0.0.1:7002
     pequod_ctl.exe replicate 127.0.0.1:7001 s 's|' 's|m' 127.0.0.1:7003
*)

module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client
module Directory = Pequod_server_lib.Directory
module Remote = Pequod_server_lib.Remote

let split_addr addr =
  match String.rindex_opt addr ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" addr)
  | Some i -> (
    match int_of_string_opt (String.sub addr (i + 1) (String.length addr - i - 1)) with
    | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" addr)
    | Some port -> Ok (String.sub addr 0 i, port))

let with_client ?(call_timeout = 10.0) addr f =
  match split_addr addr with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok (host, port) ->
    let client =
      Net_client.create
        ~config:
          { Net_client.connect_timeout = 2.0; call_timeout; max_retries = 1;
            backoff = 0.1 }
        ~host ~port ()
    in
    Fun.protect
      ~finally:(fun () -> Net_client.close client)
      (fun () ->
        try f client
        with Net_client.Net_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

let fail msg =
  Printf.eprintf "error: %s\n" msg;
  exit 1

let print_dir ~epoch ~entries =
  let d = Directory.create () in
  (match Directory.install d ~epoch:(max epoch 1) ~entries with
  | Ok () ->
    Printf.printf "epoch %d, %d entries\n" epoch (List.length entries);
    List.iter print_endline (List.tl (Directory.to_lines d))
  | Error _ ->
    (* show whatever the seed holds even if it would not validate *)
    Printf.printf "epoch %d, %d entries\n" epoch (List.length entries);
    List.iter
      (fun (e : Message.dir_entry) ->
        Printf.printf "  %s[%s,%s) @ %s%s\n" e.de_table e.de_lo e.de_hi e.de_home
          (match e.de_replicas with
          | [] -> ""
          | rs -> " replicas " ^ String.concat "," rs))
      entries)

(* fetch the current directory from [addr] *)
let dir_get client =
  match Net_client.call client Message.Dir_get with
  | Message.Dir_state { epoch; entries } -> (epoch, entries)
  | Message.Error msg -> fail msg
  | _ -> fail "unexpected response to Dir_get"

(* push [entries] at the next epoch; the seed rejects stale versions, so
   a concurrent update (another ctl, a migration flip) loses cleanly *)
let dir_update client ~epoch ~entries =
  match Net_client.call client (Message.Dir_update { epoch; entries }) with
  | Message.Done -> ()
  | Message.Error msg -> fail msg
  | _ -> fail "unexpected response to Dir_update"

open Cmdliner

let addr_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SEED" ~doc:"Seed server (HOST:PORT) holding the directory.")

let dir_cmd =
  let run addr = with_client addr (fun c ->
      let epoch, entries = dir_get c in
      print_dir ~epoch ~entries)
  in
  Cmd.v
    (Cmd.info "dir" ~doc:"Show the partition directory held by a server")
    Term.(const run $ addr_arg)

let dir_seed_cmd =
  let specs =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"SPEC"
          ~doc:
            "Partition spec TABLE[:LO:HI]@HOST:PORT (repeatable); every spec must name its \
             home explicitly.")
  in
  let run addr specs =
    match Remote.routes_of_specs ~peers:[] specs with
    | Error msg -> fail msg
    | Ok routes ->
      let entries =
        List.map
          (fun (r : Remote.route) ->
            match r.r_addr with
            | None ->
              fail
                (Printf.sprintf "partition %s[%s,%s) names no home; add @HOST:PORT"
                   r.r_table r.r_lo r.r_hi)
            | Some home ->
              { Message.de_table = r.r_table; de_lo = r.r_lo; de_hi = r.r_hi;
                de_home = home; de_replicas = [] })
          routes
      in
      (match Directory.validate entries with
      | Error msg -> fail msg
      | Ok () -> ());
      with_client addr (fun c ->
          let epoch, _ = dir_get c in
          dir_update c ~epoch:(epoch + 1) ~entries;
          Printf.printf "directory seeded at epoch %d (%d entries)\n" (epoch + 1)
            (List.length entries))
  in
  Cmd.v
    (Cmd.info "dir-seed"
       ~doc:"Install a full directory (replacing the current entries) at the next epoch")
    Term.(const run $ addr_arg $ specs)

let range_args =
  let table =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TABLE" ~doc:"Base table.")
  in
  let lo = Arg.(required & pos 2 (some string) None & info [] ~docv:"LO" ~doc:"Range start (inclusive).") in
  let hi = Arg.(required & pos 3 (some string) None & info [] ~docv:"HI" ~doc:"Range end (exclusive).") in
  (table, lo, hi)

let migrate_cmd =
  let table, lo, hi = range_args in
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE" ~doc:"The range's current home server (HOST:PORT).")
  in
  let dest =
    Arg.(
      required
      & pos 4 (some string) None
      & info [] ~docv:"DEST" ~doc:"Destination home server (HOST:PORT).")
  in
  let run source table lo hi dest =
    (* the call returns only once the source has copied the range,
       replayed the write delta, and flipped the directory epoch *)
    with_client ~call_timeout:600.0 source (fun c ->
        match Net_client.call c (Message.Migrate { table; lo; hi; dest }) with
        | Message.Pairs stats ->
          List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) stats
        | Message.Error msg -> fail msg
        | _ -> fail "unexpected response to Migrate")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Live-migrate TABLE [LO,HI) from its current home to DEST: snapshot-copy under \
          load, replay the write delta, flip the directory epoch")
    Term.(const run $ source $ table $ lo $ hi $ dest)

let replicate_cmd =
  let table, lo, hi = range_args in
  let replica =
    Arg.(
      required
      & pos 4 (some string) None
      & info [] ~docv:"REPLICA" ~doc:"Server to add as a read replica (HOST:PORT).")
  in
  let run addr table lo hi replica =
    with_client addr (fun c ->
        let epoch, entries = dir_get c in
        match Directory.add_replica entries ~table ~lo ~hi ~addr:replica with
        | Error msg -> fail msg
        | Ok entries' ->
          dir_update c ~epoch:(epoch + 1) ~entries:entries';
          Printf.printf "epoch %d: %s added as a read replica of %s[%s,%s)\n" (epoch + 1)
            replica table lo hi)
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:
         "Advertise REPLICA as a read replica of TABLE [LO,HI): the replica \
          fetch+subscribes the range from its home and serves reads for it")
    Term.(const run $ addr_arg $ table $ lo $ hi $ replica)

let cmd =
  Cmd.group
    (Cmd.info "pequod-ctl"
       ~doc:"Cluster control for directory-mode pequod-servers (see docs/PARTITIONING.md)")
    [ dir_cmd; dir_seed_cmd; migrate_cmd; replicate_cmd ]

let () = if not !Sys.interactive then exit (Cmd.eval cmd)
