# One-command tier-1 verification: build everything, then run the full
# test suite (unit, integration, property-based, and the persist
# fault-injection tests in test/test_persist.ml).

.PHONY: check build test bench micro fuzz fuzz-replay clean

check: ; dune build && dune runtest

build: ; dune build

test: ; dune runtest

# regenerate the paper figures / microbenchmarks (micro also writes
# BENCH_micro.json for cross-PR perf tracking)
bench: ; dune exec bench/main.exe

micro: ; dune exec bench/main.exe -- micro

# model-based differential fuzzing: replay seeded op sequences against
# the engine and the naive oracle (test/fuzz/).  Deterministic given
# FUZZ_SEED; on divergence a shrunk repro file is written, replayable
# with `make fuzz-replay REPRO=fuzz-repro-N.txt`.
FUZZ_SEED ?= 42
FUZZ_ITERS ?= 1000
FUZZ_OPS ?= 40

fuzz: ; dune exec test/fuzz/fuzz_main.exe -- \
	--seed $(FUZZ_SEED) --iters $(FUZZ_ITERS) --max-ops $(FUZZ_OPS)

fuzz-replay: ; dune exec test/fuzz/fuzz_main.exe -- --verbose --replay $(REPRO)

clean: ; dune clean
