# One-command tier-1 verification: build everything, then run the full
# test suite (unit, integration, property-based, and the persist
# fault-injection tests in test/test_persist.ml).

.PHONY: check build test bench micro micro-smoke net-smoke fuzz fuzz-replay doc linkcheck clean

check: ; dune build && dune runtest

build: ; dune build

test: ; dune runtest

# regenerate the paper figures / microbenchmarks (micro also writes
# BENCH_micro.json for cross-PR perf tracking)
bench: ; dune exec bench/main.exe

micro: ; dune exec bench/main.exe -- micro

# CI smoke: same benchmarks with a tiny per-case quota, so the bench
# harness (and its BENCH_micro.json emitter) is exercised on every push
# without burning minutes on statistical quality
micro-smoke: ; PEQUOD_MICRO_QUOTA=0.02 dune exec bench/main.exe -- micro

# live-cluster smoke: the forked 3-process integration test (2 home
# servers + 1 compute server over real TCP, kill/respawn included),
# bounded so a wedged process cannot hang CI
net-smoke: ; timeout 120 dune exec test/test_net_cluster.exe

# model-based differential fuzzing: replay seeded op sequences against
# the engine and the naive oracle (test/fuzz/).  Deterministic given
# FUZZ_SEED; on divergence a shrunk repro file is written, replayable
# with `make fuzz-replay REPRO=fuzz-repro-N.txt`.
FUZZ_SEED ?= 42
FUZZ_ITERS ?= 1000
FUZZ_OPS ?= 40

fuzz: ; dune exec test/fuzz/fuzz_main.exe -- \
	--seed $(FUZZ_SEED) --iters $(FUZZ_ITERS) --max-ops $(FUZZ_OPS)

fuzz-replay: ; dune exec test/fuzz/fuzz_main.exe -- --verbose --replay $(REPRO)

# API documentation from the .mli odoc comments. The libraries are
# internal (no public_name), so the private-doc alias is the one that
# covers them; odoc warnings are fatal (see the root `dune` env stanza).
# Requires odoc on the switch (CI installs it).
doc: ; dune build @doc-private

# check that every relative markdown link in *.md / docs/*.md resolves
linkcheck: ; sh tools/check_md_links.sh

clean: ; dune clean
