# One-command tier-1 verification: build everything, then run the full
# test suite (unit, integration, property-based, and the persist
# fault-injection tests in test/test_persist.ml).

.PHONY: check build test bench micro clean

check: ; dune build && dune runtest

build: ; dune build

test: ; dune runtest

# regenerate the paper figures / microbenchmarks (micro also writes
# BENCH_micro.json for cross-PR perf tracking)
bench: ; dune exec bench/main.exe

micro: ; dune exec bench/main.exe -- micro

clean: ; dune clean
