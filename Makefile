# One-command tier-1 verification: build everything, then run the full
# test suite (unit, integration, property-based, and the persist
# fault-injection tests in test/test_persist.ml).

.PHONY: check build test bench micro micro-smoke net-smoke cluster-bench cluster-smoke fuzz fuzz-replay doc linkcheck clean

check: ; dune build && dune runtest

build: ; dune build

test: ; dune runtest

# regenerate the paper figures / microbenchmarks (micro also writes
# BENCH_micro.json for cross-PR perf tracking)
bench: ; dune exec bench/main.exe

micro: ; dune exec bench/main.exe -- micro

# CI smoke: same benchmarks with a tiny per-case quota, so the bench
# harness (and its BENCH_micro.json emitter) is exercised on every push
# without burning minutes on statistical quality
micro-smoke: ; PEQUOD_MICRO_QUOTA=0.02 dune exec bench/main.exe -- micro

# live-cluster smoke: the forked multi-process integration tests (home
# + compute servers over real TCP: kill/respawn, directory-routed
# migrate-then-verify, and the kill -9-mid-migration crash-safety
# case), bounded so a wedged process cannot hang CI
net-smoke: ; timeout 240 dune exec test/test_net_cluster.exe

# full-scale cluster benchmark: a million-user Zipf graph driven
# through a live multi-process server cluster over TCP; writes the
# stamped BENCH_cluster.json (see docs/BENCHMARKS.md). Variables are
# overridable: make cluster-bench LOAD_OPS=5000000 LOAD_RATE=20000
LOAD_USERS ?= 1000000
LOAD_OPS ?= 1000000
LOAD_WORKERS ?= 4
LOAD_HOMES ?= 2
LOAD_COMPUTES ?= 2
LOAD_SHARDS ?= 0
LOAD_RATE ?= 0

cluster-bench: ; dune exec bin/pequod_load.exe -- \
	--users $(LOAD_USERS) --ops $(LOAD_OPS) --workers $(LOAD_WORKERS) \
	--homes $(LOAD_HOMES) --computes $(LOAD_COMPUTES) --shards $(LOAD_SHARDS) \
	--rate $(LOAD_RATE)

# CI smoke for the same path: a tiny graph and op quota through a real
# 3-server cluster (2 homes + 1 compute) and 2 worker processes, then
# the same workload against the shard-per-core server at every point of
# the shard matrix (a --shards N run >= 2 also measures its --shards 1
# baseline pass); each BENCH json is asserted whole, and each run is
# timeout-bounded so a wedged server cannot hang CI
cluster-smoke:
	PEQUOD_LOAD_QUOTA=2000 timeout 180 dune exec bin/pequod_load.exe -- \
		--users 10000 --ops 1000000 --workers 2 --homes 2 --computes 1 \
		--pipeline 16
	sh tools/check_bench_cluster.sh BENCH_cluster.json
	grep -Eq '"fetch_coalesced": [1-9]' BENCH_cluster.json \
		|| { echo "FAIL: no single-flight coalescing under pipelined load" >&2; exit 1; }
	grep -Eq '"scan_parked": [1-9]' BENCH_cluster.json \
		|| { echo "FAIL: no scans parked under pipelined load" >&2; exit 1; }
	for n in 1 2 4; do \
		PEQUOD_LOAD_QUOTA=2000 timeout 180 dune exec bin/pequod_load.exe -- \
			--users 10000 --ops 1000000 --workers 2 --shards $$n \
			--out BENCH_cluster_shards$$n.json \
		&& sh tools/check_bench_cluster.sh BENCH_cluster_shards$$n.json \
		|| exit 1; \
	done
	rm -f BENCH_cluster_shards1.json BENCH_cluster_shards2.json BENCH_cluster_shards4.json
	PEQUOD_LOAD_QUOTA=2000 timeout 180 dune exec bin/pequod_load.exe -- \
		--users 10000 --ops 1000000 --workers 2 --homes 2 --computes 1 \
		--pipeline 16 --sessions --out BENCH_cluster_sessions.json
	sh tools/check_bench_cluster.sh BENCH_cluster_sessions.json
	grep -Eq '"stale_read_rate": 0(\.0+)?[,}]' BENCH_cluster_sessions.json \
		|| { echo "FAIL: sessions run observed stale reads" >&2; exit 1; }
	grep -Eq '"session_reads": [1-9]' BENCH_cluster_sessions.json \
		|| { echo "FAIL: sessions run sent no stamped reads" >&2; exit 1; }
	rm -f BENCH_cluster_sessions.json
	PEQUOD_LOAD_QUOTA=2000 timeout 300 dune exec bin/pequod_load.exe -- \
		--users 10000 --ops 1000000 --workers 2 --homes 2 --computes 1 \
		--preload-posts 5000 --migrate-mid-run --out BENCH_cluster_migrate.json
	sh tools/check_bench_cluster.sh BENCH_cluster_migrate.json
	grep -q '"keys_moved"' BENCH_cluster_migrate.json \
		|| { echo "FAIL: migrate run lacks keys_moved" >&2; exit 1; }
	rm -f BENCH_cluster_migrate.json

# model-based differential fuzzing: replay seeded op sequences against
# the engine and the naive oracle (test/fuzz/).  Deterministic given
# FUZZ_SEED; on divergence a shrunk repro file is written, replayable
# with `make fuzz-replay REPRO=fuzz-repro-N.txt`.
FUZZ_SEED ?= 42
FUZZ_ITERS ?= 1000
FUZZ_OPS ?= 40

fuzz: ; dune exec test/fuzz/fuzz_main.exe -- \
	--seed $(FUZZ_SEED) --iters $(FUZZ_ITERS) --max-ops $(FUZZ_OPS)

fuzz-replay: ; dune exec test/fuzz/fuzz_main.exe -- --verbose --replay $(REPRO)

# API documentation from the .mli odoc comments. The libraries are
# internal (no public_name), so the private-doc alias is the one that
# covers them; odoc warnings are fatal (see the root `dune` env stanza).
# Requires odoc on the switch (CI installs it).
doc: ; dune build @doc-private

# check that every relative markdown link in *.md / docs/*.md resolves
linkcheck: ; sh tools/check_md_links.sh

clean: ; dune clean
