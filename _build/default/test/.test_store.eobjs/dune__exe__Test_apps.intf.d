test/test_apps.mli:
