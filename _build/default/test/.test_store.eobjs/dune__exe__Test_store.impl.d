test/test_store.ml: Alcotest Array Gen Hashtbl List Map Option Pequod_store Printf QCheck2 QCheck_alcotest Rng String Strkey Test
