test/test_extra.ml: Alcotest Array Hashtbl List Pequod_apps Pequod_baselines Pequod_core Pequod_pattern Printf Rng String Strkey
