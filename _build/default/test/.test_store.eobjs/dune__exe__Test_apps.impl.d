test/test_apps.ml: Alcotest Array Gen Hashtbl List Option Pequod_apps Pequod_baselines Printf QCheck2 QCheck_alcotest Rng Strkey Test
