test/test_sim.ml: Alcotest Array Gen Hashtbl List Pequod_core Pequod_sim Printf QCheck2 QCheck_alcotest String Strkey Test
