test/test_db.ml: Alcotest Array List Pequod_core Pequod_db Printf
