test/test_net.ml: Alcotest Bytes Fun Pequod_proto Pequod_server_lib String Unix
