test/test_join.ml: Alcotest Array Gen List Map Pequod_core Pequod_pattern Printf QCheck2 QCheck_alcotest Stats String Strkey Test
