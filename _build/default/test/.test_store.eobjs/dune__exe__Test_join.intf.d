test/test_join.mli:
