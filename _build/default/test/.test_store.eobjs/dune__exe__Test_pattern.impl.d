test/test_pattern.ml: Alcotest Array Gen List Pequod_pattern Printf QCheck2 QCheck_alcotest String Strkey Test
