test/test_proto.ml: Alcotest Buffer Gen List Pequod_core Pequod_proto QCheck2 QCheck_alcotest String Test
