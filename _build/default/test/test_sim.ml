(* Tests for the discrete-event simulator and the distributed cluster:
   fetch + subscribe, push notifications, eventual consistency, replication
   for load balancing, read-your-own-writes, and work accounting. *)

module Event = Pequod_sim.Event
module Cluster = Pequod_sim.Cluster
module Server = Pequod_core.Server

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_pairs = Alcotest.(check (list (pair string string)))

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)

let test_event_ordering () =
  let ev = Event.create () in
  let log = ref [] in
  Event.schedule ev ~delay:0.3 (fun () -> log := "c" :: !log);
  Event.schedule ev ~delay:0.1 (fun () -> log := "a" :: !log);
  Event.schedule ev ~delay:0.2 (fun () -> log := "b" :: !log);
  Event.run ev;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.0001)) "clock" 0.3 (Event.now ev)

let test_event_fifo_ties () =
  let ev = Event.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Event.schedule_at ev ~time:1.0 (fun () -> log := i :: !log)
  done;
  Event.run ev;
  Alcotest.(check (list int)) "fifo at same time" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_event_cascade () =
  let ev = Event.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Event.schedule ev ~delay:0.1 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 5;
  Event.run ev;
  check_int "cascaded" 5 !count;
  Alcotest.(check (float 0.001)) "time advanced" 0.5 (Event.now ev)

let prop_event_order =
  let open QCheck2 in
  Test.make ~name:"events run in nondecreasing time order" ~count:200
    Gen.(list_size (int_range 0 50) (float_bound_inclusive 10.0))
    (fun delays ->
      let ev = Event.create () in
      let times = ref [] in
      List.iter
        (fun d -> Event.schedule_at ev ~time:d (fun () -> times := Event.now ev :: !times))
        delays;
      Event.run ev;
      let ts = List.rev !times in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted ts && List.length ts = List.length delays)

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

(* partition p| and s| keys by their second component *)
let partition ~nbase ~table ~lo =
  match table with
  | "p" | "s" -> (
    match String.split_on_char '|' lo with
    | _ :: who :: _ -> Some (Hashtbl.hash who mod nbase)
    | _ -> Some 0)
  | _ -> None

let make_cluster ?(nbase = 2) ?(ncompute = 2) () =
  let event = Event.create () in
  let cluster =
    Cluster.create ~event ~nbase ~ncompute
      ~partition:(fun ~table ~lo -> partition ~nbase ~table ~lo)
      ()
  in
  Cluster.add_join cluster timeline_join;
  (event, cluster)

let scan_tl cluster ~via user =
  let result = ref None in
  Cluster.client_scan cluster ~via ~lo:(Printf.sprintf "t|%s|" user)
    ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))
    (fun pairs -> result := Some pairs);
  result

let test_cluster_fetch_and_compute () =
  let event, cluster = make_cluster () in
  Cluster.client_put cluster "s|ann|bob" "1";
  Cluster.client_put cluster "p|bob|0100" "hello";
  Event.run event;
  let c = List.hd (Cluster.compute_ids cluster) in
  let result = scan_tl cluster ~via:c "ann" in
  Event.run event;
  (match !result with
  | Some pairs -> check_pairs "computed remotely" [ ("t|ann|0100|bob", "hello") ] pairs
  | None -> Alcotest.fail "scan never completed");
  check_bool "fetches happened" true (Cluster.fetch_rounds cluster > 0);
  check_bool "subscriptions installed" true (Cluster.subscription_count cluster > 0)

let test_cluster_push_notifications () =
  let event, cluster = make_cluster () in
  Cluster.client_put cluster "s|ann|bob" "1";
  Cluster.client_put cluster "p|bob|0100" "first";
  Event.run event;
  let c = List.hd (Cluster.compute_ids cluster) in
  ignore (scan_tl cluster ~via:c "ann");
  Event.run event;
  let rounds = Cluster.fetch_rounds cluster in
  (* a new post flows through the subscription without new fetches *)
  Cluster.client_put cluster "p|bob|0200" "second";
  Event.run event;
  let result = scan_tl cluster ~via:c "ann" in
  Event.run event;
  (match !result with
  | Some pairs ->
    check_pairs "pushed update arrived"
      [ ("t|ann|0100|bob", "first"); ("t|ann|0200|bob", "second") ]
      pairs
  | None -> Alcotest.fail "scan never completed");
  check_int "no new fetch rounds" rounds (Cluster.fetch_rounds cluster)

let test_cluster_eventual_consistency () =
  let event, cluster = make_cluster () in
  Cluster.client_put cluster "s|ann|bob" "1";
  Cluster.client_put cluster "p|bob|0100" "first";
  Event.run event;
  let c = List.hd (Cluster.compute_ids cluster) in
  ignore (scan_tl cluster ~via:c "ann");
  Event.run event;
  (* issue a write but do not let the network deliver it yet *)
  Cluster.client_put cluster "p|bob|0200" "second";
  let stale = scan_tl cluster ~via:c "ann" in
  (match !stale with
  | Some pairs -> check_pairs "stale read before delivery" [ ("t|ann|0100|bob", "first") ] pairs
  | None -> Alcotest.fail "warm scan should complete synchronously");
  (* after delivery, the update is visible: eventual consistency *)
  Event.run event;
  let fresh = scan_tl cluster ~via:c "ann" in
  Event.run event;
  match !fresh with
  | Some pairs ->
    check_pairs "fresh after delivery"
      [ ("t|ann|0100|bob", "first"); ("t|ann|0200|bob", "second") ]
      pairs
  | None -> Alcotest.fail "scan never completed"

let test_cluster_replication_load_balancing () =
  (* §2.4: directing reads for popular data to several servers creates
     incrementally-maintained replicas *)
  let event, cluster = make_cluster ~ncompute:2 () in
  Cluster.client_put cluster "s|ann|bob" "1";
  Cluster.client_put cluster "p|bob|0100" "x";
  Event.run event;
  let cs = Cluster.compute_ids cluster in
  List.iter (fun c -> ignore (scan_tl cluster ~via:c "ann")) cs;
  Event.run event;
  (* both replicas receive the update *)
  Cluster.client_put cluster "p|bob|0200" "y";
  Event.run event;
  List.iter
    (fun c ->
      let r = scan_tl cluster ~via:c "ann" in
      Event.run event;
      match !r with
      | Some pairs ->
        check_pairs
          (Printf.sprintf "replica on node %d" c)
          [ ("t|ann|0100|bob", "x"); ("t|ann|0200|bob", "y") ]
          pairs
      | None -> Alcotest.fail "scan never completed")
    cs

let test_cluster_read_your_writes () =
  let event, cluster = make_cluster () in
  Cluster.client_put cluster "s|ann|bob" "1";
  Event.run event;
  let c = List.hd (Cluster.compute_ids cluster) in
  ignore (scan_tl cluster ~via:c "ann");
  Event.run event;
  (* a write through the compute node is visible to its own clients
     immediately, before the home server even hears about it *)
  Cluster.client_put ~via:c cluster "p|bob|0100" "mine";
  let r = scan_tl cluster ~via:c "ann" in
  (match !r with
  | Some pairs -> check_pairs "own write visible" [ ("t|ann|0100|bob", "mine") ] pairs
  | None -> Alcotest.fail "warm scan should complete synchronously");
  Event.run event

let test_cluster_work_accounting () =
  let event, cluster = make_cluster () in
  Cluster.client_put cluster "s|ann|bob" "1";
  for i = 0 to 9 do
    Cluster.client_put cluster (Printf.sprintf "p|bob|%04d" i) "x"
  done;
  Event.run event;
  Cluster.mark_epoch cluster;
  check_int "epoch resets bottleneck" 1 (Cluster.bottleneck_work cluster);
  let c = List.hd (Cluster.compute_ids cluster) in
  ignore (scan_tl cluster ~via:c "ann");
  Event.run event;
  check_bool "work recorded" true (Cluster.bottleneck_work cluster > 10);
  check_bool "server bytes counted" true (Cluster.server_bytes cluster > 0);
  check_bool "client bytes counted" true (Cluster.client_bytes cluster > 0);
  check_bool "memory accounted" true
    (Cluster.total_memory cluster (Cluster.compute_ids cluster) > 0)

let test_cluster_partitioned_writes_by_home () =
  (* different posters may live on different base nodes; computation still
     assembles a single timeline *)
  let event, cluster = make_cluster ~nbase:3 () in
  Cluster.client_put cluster "s|ann|bob" "1";
  Cluster.client_put cluster "s|ann|liz" "1";
  Cluster.client_put cluster "s|ann|jim" "1";
  Cluster.client_put cluster "p|bob|0100" "b";
  Cluster.client_put cluster "p|liz|0200" "l";
  Cluster.client_put cluster "p|jim|0300" "j";
  Event.run event;
  let c = List.hd (Cluster.compute_ids cluster) in
  let r = scan_tl cluster ~via:c "ann" in
  Event.run event;
  match !r with
  | Some pairs ->
    check_pairs "assembled across homes"
      [ ("t|ann|0100|bob", "b"); ("t|ann|0200|liz", "l"); ("t|ann|0300|jim", "j") ]
      pairs
  | None -> Alcotest.fail "scan never completed"

(* The distributed invariant: after the network quiesces, every compute
   replica answers exactly like a single Pequod server holding the same
   base data — eventual consistency converges to the centralized
   semantics. *)
let prop_cluster_converges_to_single_server =
  let open QCheck2 in
  let users = [| "ann"; "bob"; "cal"; "dee"; "eve" |] in
  let user = Gen.map (fun i -> users.(i)) (Gen.int_bound 4) in
  let time = Gen.map (fun n -> Strkey.encode_int ~width:4 n) (Gen.int_bound 40) in
  let op_gen =
    Gen.oneof
      [
        Gen.map2 (fun u p -> `Sub (u, p)) user user;
        Gen.map2 (fun u p -> `Unsub (u, p)) user user;
        Gen.map2 (fun p t -> `Post (p, t)) user time;
        Gen.map2 (fun p t -> `Unpost (p, t)) user time;
        Gen.map (fun u -> `Scan u) user;
      ]
  in
  Test.make ~name:"cluster converges to single-server semantics" ~count:60
    (Gen.list_size (Gen.int_range 1 60) op_gen)
    (fun ops ->
      let event = Event.create () in
      let nbase = 2 in
      let cluster =
        Cluster.create ~event ~nbase ~ncompute:2
          ~partition:(fun ~table ~lo -> partition ~nbase ~table ~lo)
          ()
      in
      Cluster.add_join cluster timeline_join;
      let reference = Server.create () in
      Server.add_join_exn reference timeline_join;
      List.iter
        (fun op ->
          (match op with
          | `Sub (u, p) ->
            let k = Printf.sprintf "s|%s|%s" u p in
            Cluster.client_put cluster k "1";
            Server.put reference k "1"
          | `Unsub (u, p) ->
            let k = Printf.sprintf "s|%s|%s" u p in
            Cluster.client_remove cluster k;
            Server.remove reference k
          | `Post (p, t) ->
            let k = Printf.sprintf "p|%s|%s" p t in
            Cluster.client_put cluster k ("m" ^ t);
            Server.put reference k ("m" ^ t)
          | `Unpost (p, t) ->
            let k = Printf.sprintf "p|%s|%s" p t in
            Cluster.client_remove cluster k;
            Server.remove reference k
          | `Scan u ->
            List.iter
              (fun c ->
                Cluster.client_scan cluster ~via:c ~lo:(Printf.sprintf "t|%s|" u)
                  ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" u))
                  (fun _ -> ()))
              (Cluster.compute_ids cluster));
          (* quiesce the network between operations *)
          Event.run event)
        ops;
      Event.run event;
      (* after quiescence, every compute replica agrees with the reference *)
      Array.for_all
        (fun u ->
          let lo = Printf.sprintf "t|%s|" u in
          let hi = Strkey.prefix_upper lo in
          let expect = Server.scan reference ~lo ~hi in
          List.for_all
            (fun c ->
              let got = ref None in
              Cluster.client_scan cluster ~via:c ~lo ~hi (fun pairs -> got := Some pairs);
              Event.run event;
              (* the scan may have needed a fetch round; re-issue warm *)
              let got2 = ref None in
              Cluster.client_scan cluster ~via:c ~lo ~hi (fun pairs -> got2 := Some pairs);
              Event.run event;
              !got2 = Some expect || !got = Some expect)
            (Cluster.compute_ids cluster))
        users)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "sim"
    [
      ( "event",
        [
          Alcotest.test_case "ordering" `Quick test_event_ordering;
          Alcotest.test_case "fifo ties" `Quick test_event_fifo_ties;
          Alcotest.test_case "cascade" `Quick test_event_cascade;
        ] );
      ("event-props", qsuite [ prop_event_order ]);
      ("cluster-props", qsuite [ prop_cluster_converges_to_single_server ]);
      ( "cluster",
        [
          Alcotest.test_case "fetch and compute" `Quick test_cluster_fetch_and_compute;
          Alcotest.test_case "push notifications" `Quick test_cluster_push_notifications;
          Alcotest.test_case "eventual consistency" `Quick test_cluster_eventual_consistency;
          Alcotest.test_case "replication" `Quick test_cluster_replication_load_balancing;
          Alcotest.test_case "read your writes" `Quick test_cluster_read_your_writes;
          Alcotest.test_case "work accounting" `Quick test_cluster_work_accounting;
          Alcotest.test_case "cross-home assembly" `Quick test_cluster_partitioned_writes_by_home;
        ] );
    ]
