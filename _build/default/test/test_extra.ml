(* Additional coverage: aggregate operator semantics, the forked server
   deployment, eviction interacting with pending logs, snapshot+pull
   interplay, and workload generators. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Operator = Pequod_core.Operator
module Joinspec = Pequod_pattern.Joinspec
module Twip = Pequod_apps.Twip
module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload
module Meter = Pequod_baselines.Meter

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_pairs = Alcotest.(check (list (pair string string)))

(* ------------------------------------------------------------------ *)
(* Operator semantics                                                  *)

let test_fold_aggregate () =
  let fold op vs = Operator.fold_aggregate op vs in
  Alcotest.(check (option string)) "count" (Some "3") (fold Joinspec.Count [ "a"; "b"; "c" ]);
  Alcotest.(check (option string)) "sum" (Some "60") (fold Joinspec.Sum [ "10"; "20"; "30" ]);
  Alcotest.(check (option string)) "min" (Some "10") (fold Joinspec.Min [ "30"; "10"; "20" ]);
  Alcotest.(check (option string)) "max" (Some "30") (fold Joinspec.Max [ "30"; "10"; "20" ]);
  Alcotest.(check (option string)) "empty" None (fold Joinspec.Count []);
  check_bool "copy rejected" true
    (match fold Joinspec.Copy [ "x" ] with exception Invalid_argument _ -> true | _ -> false)

let test_incremental_count () =
  let inc ~current ~change ~old_value ~new_value =
    Operator.incremental Joinspec.Count ~current ~change ~old_value ~new_value
  in
  check_bool "insert from none" true
    (inc ~current:None ~change:Operator.Insert ~old_value:None ~new_value:(Some "1")
    = Operator.Set "1");
  check_bool "insert increments" true
    (inc ~current:(Some "4") ~change:Operator.Insert ~old_value:None ~new_value:(Some "1")
    = Operator.Set "5");
  check_bool "remove decrements" true
    (inc ~current:(Some "4") ~change:Operator.Remove ~old_value:(Some "1") ~new_value:None
    = Operator.Set "3");
  check_bool "remove to zero deletes" true
    (inc ~current:(Some "1") ~change:Operator.Remove ~old_value:(Some "1") ~new_value:None
    = Operator.Delete);
  check_bool "update is noop" true
    (inc ~current:(Some "4") ~change:Operator.Update ~old_value:(Some "1") ~new_value:(Some "2")
    = Operator.Nothing)

let test_incremental_min_max () =
  let inc op ~current ~change ~old_value ~new_value =
    Operator.incremental op ~current ~change ~old_value ~new_value
  in
  check_bool "lower min wins" true
    (inc Joinspec.Min ~current:(Some "5") ~change:Operator.Insert ~old_value:None
       ~new_value:(Some "3")
    = Operator.Set "3");
  check_bool "higher min ignored" true
    (inc Joinspec.Min ~current:(Some "5") ~change:Operator.Insert ~old_value:None
       ~new_value:(Some "7")
    = Operator.Nothing);
  check_bool "removing the min forces recompute" true
    (inc Joinspec.Min ~current:(Some "5") ~change:Operator.Remove ~old_value:(Some "5")
       ~new_value:None
    = Operator.Recompute);
  check_bool "removing a non-extremum is free" true
    (inc Joinspec.Max ~current:(Some "9") ~change:Operator.Remove ~old_value:(Some "5")
       ~new_value:None
    = Operator.Nothing)

(* ------------------------------------------------------------------ *)
(* Forked deployment equivalence                                       *)

let test_forked_pequod_equivalent () =
  let run deployment =
    let b = Twip.pequod ~deployment () in
    b.Twip.subscribe ~user:"ann" ~poster:"bob";
    b.Twip.post ~poster:"bob" ~time:(Strkey.encode_time 100) ~tweet:"hi";
    b.Twip.post ~poster:"bob" ~time:(Strkey.encode_time 200) ~tweet:"again";
    let tl = b.Twip.timeline ~user:"ann" ~since:(Strkey.encode_time 0) in
    let mem = b.Twip.memory_bytes () in
    b.Twip.shutdown ();
    (tl, mem > 0)
  in
  let local = run Twip.In_process in
  let forked = run Twip.Separate_process in
  check_bool "same timelines" true (fst local = fst forked);
  check_bool "memory over the wire" true (snd forked)

let test_forked_redis_equivalent () =
  let run deployment =
    let b = Twip.redis ~deployment () in
    b.Twip.subscribe ~user:"ann" ~poster:"bob";
    b.Twip.post ~poster:"bob" ~time:(Strkey.encode_time 100) ~tweet:"hi";
    let tl = b.Twip.timeline ~user:"ann" ~since:(Strkey.encode_time 0) in
    b.Twip.shutdown ();
    tl
  in
  check_bool "redis forked == in-process" true
    (run Twip.In_process = run Twip.Separate_process)

let test_meter_accounting () =
  let echoes = ref 0 in
  let meter =
    Meter.create
      ~handler:(fun req ->
        incr echoes;
        req)
      ()
  in
  let resp = Meter.call meter "hello" in
  Alcotest.(check string) "echoed" "hello" resp;
  check_int "rpcs" 1 meter.Meter.rpcs;
  check_int "sent" 5 meter.Meter.bytes_sent;
  check_int "received" 5 meter.Meter.bytes_received;
  check_int "handled" 1 !echoes;
  Meter.close meter

(* ------------------------------------------------------------------ *)
(* Eviction interacting with pending logs                              *)

let test_eviction_with_pending_log () =
  let config = Config.default () in
  config.Config.memory_limit <- Some 4_000;
  let s = Server.create ~config () in
  Server.add_join_exn s Twip.timeline_join;
  Server.put s "s|ann|bob" "1";
  for i = 0 to 20 do
    Server.put s (Printf.sprintf "p|bob|%s" (Strkey.encode_time i)) (String.make 60 'x')
  done;
  ignore (Server.scan s ~lo:"t|ann|" ~hi:"t|ann}");
  (* log a change, then force eviction pressure via other users *)
  Server.put s "s|ann|liz" "1";
  Server.put s "p|liz|0000000099" "from liz";
  for u = 0 to 14 do
    let user = Printf.sprintf "u%02d" u in
    Server.put s (Printf.sprintf "s|%s|bob" user) "1";
    ignore
      (Server.scan s
         ~lo:(Printf.sprintf "t|%s|" user)
         ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user)))
  done;
  (* whatever was evicted, results must still be exact *)
  let tl = Server.scan s ~lo:"t|ann|" ~hi:"t|ann}" in
  check_int "21 bob posts + 1 liz post" 22 (List.length tl);
  check_bool "liz post present" true (List.mem_assoc "t|ann|0000000099|liz" tl);
  Server.validate s

let test_snapshot_with_pull_sources () =
  (* a snapshot join reading a push join's output *)
  let clock = ref 0.0 in
  let config = Config.default () in
  config.Config.now <- (fun () -> !clock);
  let s = Server.create ~config () in
  Server.add_join_exn s "mid|<x> = copy base|<x>";
  Server.add_join_exn s "snap|<x> = snapshot 10 copy mid|<x>";
  Server.put s "base|a" "v1";
  check_pairs "computed through chain" [ ("snap|a", "v1") ] (Server.scan s ~lo:"snap|" ~hi:"snap}");
  Server.put s "base|a" "v2";
  check_pairs "mid updates eagerly" [ ("mid|a", "v2") ] (Server.scan s ~lo:"mid|" ~hi:"mid}");
  check_pairs "snapshot still stale" [ ("snap|a", "v1") ] (Server.scan s ~lo:"snap|" ~hi:"snap}");
  clock := 11.0;
  check_pairs "snapshot refreshed" [ ("snap|a", "v2") ] (Server.scan s ~lo:"snap|" ~hi:"snap}")

(* ------------------------------------------------------------------ *)
(* Workload generators                                                 *)

let test_checks_and_posts () =
  let rng = Rng.create 3 in
  let g = Social_graph.generate ~rng ~nusers:100 ~avg_follows:5 () in
  let w = Workload.checks_and_posts ~rng ~graph:g ~active_fraction:0.5 ~nchecks:900 ~nposts:100 () in
  let posts = Array.to_list w.Workload.ops |> List.filter (function Workload.Post _ -> true | _ -> false) in
  let checks = Array.to_list w.Workload.ops |> List.filter (function Workload.Check _ -> true | _ -> false) in
  check_int "total" 1000 (Array.length w.Workload.ops);
  check_bool "post count approx" true (abs (List.length posts - 100) <= 10);
  check_bool "mostly checks" true (List.length checks >= 890);
  (* checks target only active users *)
  let active = Hashtbl.create 64 in
  Array.iter (function Workload.Check u -> Hashtbl.replace active u () | _ -> ()) w.Workload.ops;
  check_bool "about half the users" true (Hashtbl.length active <= 55)

let test_preload_no_fanout () =
  (* preload before the graph is loaded must not fan out in client systems *)
  let b = Twip.client_pequod () in
  let rng = Rng.create 4 in
  let g = Social_graph.generate ~rng ~nusers:20 ~avg_follows:3 () in
  Twip.preload_posts b g ~rng ~nposts:50;
  let rpcs_per_post = float_of_int (b.Twip.rpcs ()) /. 50.0 in
  check_bool "one RPC per preloaded post" true (rpcs_per_post < 2.5);
  b.Twip.shutdown ()

let () =
  Alcotest.run "extra"
    [
      ( "operators",
        [
          Alcotest.test_case "fold" `Quick test_fold_aggregate;
          Alcotest.test_case "incremental count" `Quick test_incremental_count;
          Alcotest.test_case "incremental min/max" `Quick test_incremental_min_max;
        ] );
      ( "forked-deployment",
        [
          Alcotest.test_case "pequod equivalent" `Quick test_forked_pequod_equivalent;
          Alcotest.test_case "redis equivalent" `Quick test_forked_redis_equivalent;
          Alcotest.test_case "meter accounting" `Quick test_meter_accounting;
        ] );
      ( "engine-edge-cases",
        [
          Alcotest.test_case "eviction with pending log" `Quick test_eviction_with_pending_log;
          Alcotest.test_case "snapshot over chain" `Quick test_snapshot_with_pull_sources;
        ] );
      ( "workload",
        [
          Alcotest.test_case "checks and posts" `Quick test_checks_and_posts;
          Alcotest.test_case "preload no fanout" `Quick test_preload_no_fanout;
        ] );
    ]
