(* Tests for the pattern/slot machinery and the cache-join language. *)

module Pattern = Pequod_pattern.Pattern
module Joinspec = Pequod_pattern.Joinspec

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_range = Alcotest.(check (pair string string))

(* A tiny interner for standalone pattern tests. *)
let make_intern () =
  let names = ref [] in
  let intern name =
    let rec idx i = function
      | [] ->
        names := !names @ [ name ];
        i
      | n :: rest -> if String.equal n name then i else idx (i + 1) rest
    in
    idx 0 !names
  in
  (intern, fun () -> List.length !names)

let timeline_pattern () =
  let intern, count = make_intern () in
  let p = Pattern.parse ~intern "t|<user>|<time>|<poster>" in
  (p, count ())

let test_parse () =
  let p, nslots = timeline_pattern () in
  check_str "table" "t" (Pattern.table p);
  Alcotest.(check int) "nslots" 3 nslots;
  Alcotest.(check (list int)) "slots" [ 0; 1; 2 ] (Pattern.slots p);
  check_bool "mentions" true (Pattern.mentions_slot p 1);
  check_bool "not mentions" false (Pattern.mentions_slot p 9)

let test_parse_errors () =
  let intern, _ = make_intern () in
  let bad text =
    match Pattern.parse ~intern text with
    | exception Pattern.Parse_error _ -> true
    | _ -> false
  in
  check_bool "empty" true (bad "");
  check_bool "empty slot" true (bad "t|<>");
  check_bool "leading slot" true (bad "<user>|x");
  check_bool "stray bracket" true (bad "t|us<er");
  check_bool "empty segment" true (bad "t||x");
  check_bool "good" false (bad "t|<a>|lit|<b>")

let test_match_key () =
  let p, n = timeline_pattern () in
  let empty = Array.make n None in
  (match Pattern.match_key p "t|ann|100|bob" ~bindings:empty with
  | Some b ->
    Alcotest.(check (option string)) "user" (Some "ann") b.(0);
    Alcotest.(check (option string)) "time" (Some "100") b.(1);
    Alcotest.(check (option string)) "poster" (Some "bob") b.(2)
  | None -> Alcotest.fail "should match");
  check_bool "wrong table" true (Pattern.match_key p "p|ann|100|bob" ~bindings:empty = None);
  check_bool "wrong arity" true (Pattern.match_key p "t|ann|100" ~bindings:empty = None);
  check_bool "empty slot value" true (Pattern.match_key p "t||100|bob" ~bindings:empty = None);
  (* consistency with prior bindings *)
  let pre = Array.make n None in
  pre.(0) <- Some "liz";
  check_bool "conflict" true (Pattern.match_key p "t|ann|100|bob" ~bindings:pre = None);
  pre.(0) <- Some "ann";
  check_bool "consistent" true (Pattern.match_key p "t|ann|100|bob" ~bindings:pre <> None);
  (* input bindings are not mutated *)
  ignore (Pattern.match_key p "t|ann|100|bob" ~bindings:empty);
  check_bool "no mutation" true (Array.for_all (( = ) None) empty)

let test_build_key () =
  let p, n = timeline_pattern () in
  let b = Array.make n None in
  b.(0) <- Some "ann";
  b.(1) <- Some "100";
  b.(2) <- Some "bob";
  check_str "build" "t|ann|100|bob" (Pattern.build_key p b);
  b.(1) <- None;
  check_bool "unbound raises" true
    (match Pattern.build_key p b with exception Invalid_argument _ -> true | _ -> false)

let test_interleaved_literals () =
  let intern, count = make_intern () in
  let p = Pattern.parse ~intern "page|<author>|<id>|k|<cid>|<commenter>" in
  let empty = Array.make (count ()) None in
  check_bool "matches tagged" true
    (Pattern.match_key p "page|bob|101|k|c7|liz" ~bindings:empty <> None);
  check_bool "wrong tag" true (Pattern.match_key p "page|bob|101|c|c7|liz" ~bindings:empty = None)

let test_containing_range_full () =
  let p, n = timeline_pattern () in
  let b = Array.make n None in
  b.(0) <- Some "ann";
  b.(1) <- Some "100";
  b.(2) <- Some "bob";
  let lo, hi = Pattern.containing_range p ~bindings:b ~residual:None in
  check_str "exact key" "t|ann|100|bob" lo;
  check_bool "tight" true (String.compare lo hi < 0 && hi = lo ^ "\x00")

let test_containing_range_prefix () =
  let p, n = timeline_pattern () in
  let b = Array.make n None in
  b.(0) <- Some "ann";
  check_range "prefix" ("t|ann|", "t|ann}") (Pattern.containing_range p ~bindings:b ~residual:None)

let test_containing_range_residual () =
  (* the paper's example: scan [t|ann|100, t|ann|200) narrows posts to
     [p|bob|100, p|bob|200) *)
  let intern, _ = make_intern () in
  let tl = Pattern.parse ~intern "t|<user>|<time>|<poster>" in
  let posts = Pattern.parse ~intern "p|<poster>|<time>" in
  ignore tl;
  let b = Array.make 3 None in
  b.(2) <- Some "bob";
  let residual = Some Pattern.{ slot = 1; rlo = Some "100"; rhi = Some "200" } in
  check_range "narrowed" ("p|bob|100", "p|bob|200")
    (Pattern.containing_range posts ~bindings:b ~residual);
  (* residual on a different slot is ignored *)
  let residual = Some Pattern.{ slot = 0; rlo = Some "x"; rhi = None } in
  check_range "other slot" ("p|bob|", "p|bob}")
    (Pattern.containing_range posts ~bindings:b ~residual)

let test_bind_range_timeline () =
  let p, n = timeline_pattern () in
  (* the canonical timeline check: [t|ann|100, t|ann}) *)
  match Pattern.bind_range p ~lo:"t|ann|100" ~hi:(Strkey.prefix_upper "t|ann|") ~nslots:n with
  | Some (b, Some r) ->
    Alcotest.(check (option string)) "user bound" (Some "ann") b.(0);
    Alcotest.(check (option string)) "time unbound" None b.(1);
    Alcotest.(check int) "residual slot is time" 1 r.Pattern.slot;
    Alcotest.(check (option string)) "rlo" (Some "100") r.Pattern.rlo;
    Alcotest.(check (option string)) "rhi" None r.Pattern.rhi
  | _ -> Alcotest.fail "expected bindings with residual"

let test_bind_range_both_bounds () =
  let p, n = timeline_pattern () in
  match Pattern.bind_range p ~lo:"t|ann|100" ~hi:"t|ann|200" ~nslots:n with
  | Some (b, Some r) ->
    Alcotest.(check (option string)) "user" (Some "ann") b.(0);
    Alcotest.(check (option string)) "rlo" (Some "100") r.Pattern.rlo;
    Alcotest.(check (option string)) "rhi" (Some "200") r.Pattern.rhi
  | _ -> Alcotest.fail "expected residual with both bounds"

let test_bind_range_exact_key () =
  let p, n = timeline_pattern () in
  match Pattern.bind_range p ~lo:"t|ann|100|bob" ~hi:"t|ann|100|bob\x00" ~nslots:n with
  | Some (b, residual) ->
    Alcotest.(check (option string)) "user" (Some "ann") b.(0);
    Alcotest.(check (option string)) "time" (Some "100") b.(1);
    Alcotest.(check (option string)) "poster" (Some "bob") b.(2);
    check_bool "no residual" true (residual = None)
  | None -> Alcotest.fail "expected full binding"

let test_bind_range_disjoint () =
  let p, n = timeline_pattern () in
  check_bool "different table" true (Pattern.bind_range p ~lo:"x|a" ~hi:"x|b" ~nslots:n = None);
  check_bool "empty range" true (Pattern.bind_range p ~lo:"t|b" ~hi:"t|a" ~nslots:n = None);
  check_bool "above table" true (Pattern.bind_range p ~lo:"u|" ~hi:"zz" ~nslots:n = None)

let test_bind_range_whole_table () =
  let p, n = timeline_pattern () in
  match Pattern.bind_range p ~lo:"t|" ~hi:"t}" ~nslots:n with
  | Some (b, residual) ->
    check_bool "nothing bound" true (Array.for_all (( = ) None) b);
    check_bool "no residual" true (residual = None)
  | None -> Alcotest.fail "whole table should bind"

let test_bind_range_cross_user () =
  let p, n = timeline_pattern () in
  (* the paper's [t|a, t|b) cross-timeline scan *)
  match Pattern.bind_range p ~lo:"t|a" ~hi:"t|b" ~nslots:n with
  | Some (b, Some r) ->
    check_bool "user unbound" true (b.(0) = None);
    Alcotest.(check int) "residual on user" 0 r.Pattern.slot;
    Alcotest.(check (option string)) "rlo" (Some "a") r.Pattern.rlo;
    Alcotest.(check (option string)) "rhi" (Some "b") r.Pattern.rhi
  | _ -> Alcotest.fail "expected residual on user"

let test_bind_range_literal_tag () =
  let intern, count = make_intern () in
  let p = Pattern.parse ~intern "page|<author>|<id>|k|<cid>|<commenter>" in
  let n = count () in
  (* a scan of the whole article page covers the k-tagged join *)
  (match Pattern.bind_range p ~lo:"page|bob|101|" ~hi:"page|bob|101}" ~nslots:n with
  | Some (b, _) ->
    Alcotest.(check (option string)) "author" (Some "bob") b.(0);
    Alcotest.(check (option string)) "id" (Some "101") b.(1)
  | None -> Alcotest.fail "page scan should bind");
  (* a scan of only the comment tag region excludes the karma join *)
  check_bool "tag c excludes k-join" true
    (Pattern.bind_range p ~lo:"page|bob|101|c|" ~hi:"page|bob|101|c}" ~nslots:n = None);
  check_bool "tag k includes k-join" true
    (Pattern.bind_range p ~lo:"page|bob|101|k|" ~hi:"page|bob|101|k}" ~nslots:n <> None)

(* Property: bind_range + containing_range produce a cover that contains
   every pattern key in the requested range (soundness). *)
let prop_bind_range_sound =
  let open QCheck2 in
  let user = Gen.map (fun i -> [| "ann"; "bob"; "liz"; "jim" |].(i)) (Gen.int_bound 3) in
  let time = Gen.map (fun n -> Printf.sprintf "%04d" n) (Gen.int_bound 40) in
  let keygen =
    Gen.map2 (fun u (tm, p) -> Printf.sprintf "t|%s|%s|%s" u tm p) user
      (Gen.pair time user)
  in
  let boundgen =
    Gen.oneof
      [
        keygen;
        Gen.map (fun u -> "t|" ^ u ^ "|") user;
        Gen.map2 (fun u tm -> Printf.sprintf "t|%s|%s" u tm) user time;
        Gen.pure "t|";
        Gen.pure "t}";
        Gen.pure "s|x";
      ]
  in
  Test.make ~name:"bind_range covers all pattern keys in range" ~count:500
    Gen.(triple (list_size (int_range 0 40) keygen) boundgen boundgen)
    (fun (keys, b1, b2) ->
      let lo = Strkey.min_str b1 b2 and hi = Strkey.max_str b1 b2 in
      let intern, count = make_intern () in
      let p = Pattern.parse ~intern "t|<user>|<time>|<poster>" in
      let n = count () in
      let in_request = List.filter (fun k -> Strkey.in_range ~lo ~hi k) keys in
      match Pattern.bind_range p ~lo ~hi ~nslots:n with
      | None -> in_request = [] (* declared disjoint: nothing may be lost *)
      | Some (b, residual) ->
        let clo, chi = Pattern.containing_range p ~bindings:b ~residual in
        List.for_all (fun k -> Strkey.in_range ~lo:clo ~hi:chi k) in_request
        (* and the bindings must agree with every key in range *)
        && List.for_all
             (fun k -> Pattern.match_key p k ~bindings:b <> None)
             in_request)

(* Property: containing_range never loses keys that match under extensions
   of the bindings (source narrowing soundness). *)
let prop_containing_sound =
  let open QCheck2 in
  let user = Gen.map (fun i -> [| "ann"; "bob"; "liz" |].(i)) (Gen.int_bound 2) in
  let time = Gen.map (fun n -> Printf.sprintf "%04d" n) (Gen.int_bound 30) in
  Test.make ~name:"containing_range sound for sources" ~count:500
    Gen.(triple (list_size (int_range 0 30) (pair user time)) user (pair time time))
    (fun (posts, poster, (tlo, thi)) ->
      let intern, count = make_intern () in
      let _tl = Pattern.parse ~intern "t|<user>|<time>|<poster>" in
      let pp = Pattern.parse ~intern "p|<poster>|<time>" in
      let n = count () in
      let b = Array.make n None in
      (* slots: user=0, time=1, poster=2 *)
      b.(2) <- Some poster;
      let tlo, thi = (Strkey.min_str tlo thi, Strkey.max_str tlo thi) in
      let residual = Some Pattern.{ slot = 1; rlo = Some tlo; rhi = Some thi } in
      let slo, shi = Pattern.containing_range pp ~bindings:b ~residual in
      List.for_all
        (fun (u, tm) ->
          let key = Printf.sprintf "p|%s|%s" u tm in
          let matches =
            String.equal u poster && String.compare tlo tm <= 0 && String.compare tm thi < 0
          in
          (* every key that should contribute must be inside [slo, shi) *)
          (not matches) || Strkey.in_range ~lo:slo ~hi:shi key)
        posts)

(* ------------------------------------------------------------------ *)
(* Joinspec                                                            *)

let test_joinspec_timeline () =
  match Joinspec.parse "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
    Alcotest.(check int) "nslots" 3 (Joinspec.nslots spec);
    check_bool "push default" true (Joinspec.maintenance spec = Joinspec.Push);
    Alcotest.(check int) "two sources" 2 (List.length (Joinspec.sources spec));
    Alcotest.(check int) "value source idx" 1 (Joinspec.value_source_index spec);
    check_bool "value op copy" true (Joinspec.value_op spec = Joinspec.Copy);
    check_bool "not ambiguous" false (Joinspec.is_ambiguous spec);
    check_str "slot name" "user" (Joinspec.slot_name spec 0)

let test_joinspec_annotations () =
  let get text = match Joinspec.parse text with Ok s -> s | Error m -> Alcotest.fail m in
  check_bool "pull" true
    (Joinspec.maintenance (get "a|<x> = pull copy b|<x>") = Joinspec.Pull);
  check_bool "push" true
    (Joinspec.maintenance (get "a|<x> = push copy b|<x>") = Joinspec.Push);
  (match Joinspec.maintenance (get "a|<x> = snapshot 30 copy b|<x>") with
  | Joinspec.Snapshot secs -> Alcotest.(check (float 0.01)) "30s" 30.0 secs
  | _ -> Alcotest.fail "expected snapshot");
  check_bool "bad snapshot" true
    (match Joinspec.parse "a|<x> = snapshot -1 copy b|<x>" with Error _ -> true | _ -> false)

let test_joinspec_aggregate () =
  match Joinspec.parse "karma|<author> = count vote|<author>|<id>|<voter>;" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
    check_bool "count op" true (Joinspec.value_op spec = Joinspec.Count);
    check_bool "aggregate" true (Joinspec.is_aggregate (Joinspec.value_op spec));
    (* aggregated-away slots are not "ambiguous" *)
    check_bool "not flagged" false (Joinspec.is_ambiguous spec)

let test_joinspec_validation () =
  let err text = match Joinspec.parse text with Error _ -> true | Ok _ -> false in
  check_bool "no sources" true (err "a|<x> =");
  check_bool "all check" true (err "a|<x> = check b|<x>");
  check_bool "two value sources" true (err "a|<x> = copy b|<x> copy c|<x>");
  check_bool "direct recursion" true (err "a|<x> = copy a|<x>");
  check_bool "unbound output slot" true (err "a|<x>|<y> = copy b|<x>");
  check_bool "unknown operator" true (err "a|<x> = clone b|<x>");
  check_bool "dangling token" true (err "a|<x> = copy");
  check_bool "no equals" true (err "a|<x> copy b|<x>")

let test_joinspec_ambiguous () =
  (* the paper's example: dropping |poster makes outputs collide *)
  match Joinspec.parse "t|<user>|<time> = check s|<user>|<poster> copy p|<poster>|<time>" with
  | Error msg -> Alcotest.fail msg
  | Ok spec -> check_bool "flagged ambiguous" true (Joinspec.is_ambiguous spec)

let test_joinspec_celebrity () =
  (* source order is a performance annotation and must be preserved *)
  match Joinspec.parse "t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>" with
  | Error msg -> Alcotest.fail msg
  | Ok spec ->
    check_bool "pull" true (Joinspec.maintenance spec = Joinspec.Pull);
    Alcotest.(check int) "value source first" 0 (Joinspec.value_source_index spec)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "pattern"
    [
      ( "pattern",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "match_key" `Quick test_match_key;
          Alcotest.test_case "build_key" `Quick test_build_key;
          Alcotest.test_case "interleaved literals" `Quick test_interleaved_literals;
        ] );
      ( "containing-range",
        [
          Alcotest.test_case "fully bound" `Quick test_containing_range_full;
          Alcotest.test_case "prefix" `Quick test_containing_range_prefix;
          Alcotest.test_case "residual narrowing" `Quick test_containing_range_residual;
        ] );
      ( "bind-range",
        [
          Alcotest.test_case "timeline" `Quick test_bind_range_timeline;
          Alcotest.test_case "both bounds" `Quick test_bind_range_both_bounds;
          Alcotest.test_case "exact key" `Quick test_bind_range_exact_key;
          Alcotest.test_case "disjoint" `Quick test_bind_range_disjoint;
          Alcotest.test_case "whole table" `Quick test_bind_range_whole_table;
          Alcotest.test_case "cross user" `Quick test_bind_range_cross_user;
          Alcotest.test_case "literal tags" `Quick test_bind_range_literal_tag;
        ] );
      ("props", qsuite [ prop_bind_range_sound; prop_containing_sound ]);
      ( "joinspec",
        [
          Alcotest.test_case "timeline" `Quick test_joinspec_timeline;
          Alcotest.test_case "annotations" `Quick test_joinspec_annotations;
          Alcotest.test_case "aggregate" `Quick test_joinspec_aggregate;
          Alcotest.test_case "validation" `Quick test_joinspec_validation;
          Alcotest.test_case "ambiguous flagged" `Quick test_joinspec_ambiguous;
          Alcotest.test_case "celebrity order" `Quick test_joinspec_celebrity;
        ] );
    ]
