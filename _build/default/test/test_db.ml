(* Tests for the mini relational database: relations, indexes, the SPJ
   query executor, triggers, and notification channels. *)

module Db = Pequod_db.Db
module Relation = Pequod_db.Relation
module Query = Pequod_db.Query

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_rows = Alcotest.(check (list (list string)))

let rows_to_list rows = List.map Array.to_list rows

let make_twip_db () =
  let db = Db.create () in
  let _ = Db.create_table db ~name:"p" ~columns:[ "poster"; "time"; "tweet" ] ~key:[ "poster"; "time" ] in
  let _ = Db.create_table db ~name:"s" ~columns:[ "user"; "poster" ] ~key:[ "user"; "poster" ] in
  Db.add_index db ~table:"s" ~columns:[ "poster" ];
  db

let test_insert_find_delete () =
  let db = make_twip_db () in
  Db.insert db ~table:"p" [ "bob"; "0100"; "hi" ];
  (match Db.find db ~table:"p" [ "bob"; "0100" ] with
  | Some row -> Alcotest.(check string) "tweet" "hi" row.(2)
  | None -> Alcotest.fail "row missing");
  (* replace on same pk *)
  Db.insert db ~table:"p" [ "bob"; "0100"; "hi again" ];
  check_int "one row" 1 (Relation.row_count (Db.table db "p"));
  check_bool "delete" true (Db.delete db ~table:"p" [ "bob"; "0100" ]);
  check_bool "delete again" false (Db.delete db ~table:"p" [ "bob"; "0100" ]);
  check_int "empty" 0 (Relation.row_count (Db.table db "p"))

let test_arity_and_missing_table () =
  let db = make_twip_db () in
  check_bool "arity" true
    (match Db.insert db ~table:"p" [ "bob" ] with exception Invalid_argument _ -> true | _ -> false);
  check_bool "missing table" true
    (match Db.insert db ~table:"zzz" [ "x" ] with exception Invalid_argument _ -> true | _ -> false)

let test_secondary_index () =
  let db = make_twip_db () in
  Db.insert db ~table:"s" [ "ann"; "bob" ];
  Db.insert db ~table:"s" [ "cal"; "bob" ];
  Db.insert db ~table:"s" [ "ann"; "liz" ];
  let got = ref [] in
  Relation.scan_index (Db.table db "s") ~columns:[ "poster" ] ~values:[ "bob" ] (fun row ->
      got := row.(0) :: !got);
  Alcotest.(check (list string)) "followers of bob" [ "ann"; "cal" ] (List.sort compare !got);
  (* index stays consistent after delete *)
  ignore (Db.delete db ~table:"s" [ "ann"; "bob" ]);
  let got = ref [] in
  Relation.scan_index (Db.table db "s") ~columns:[ "poster" ] ~values:[ "bob" ] (fun row ->
      got := row.(0) :: !got);
  Alcotest.(check (list string)) "after delete" [ "cal" ] !got

let test_index_backfills_existing_rows () =
  let db = Db.create () in
  let _ = Db.create_table db ~name:"x" ~columns:[ "a"; "b" ] ~key:[ "a" ] in
  Db.insert db ~table:"x" [ "1"; "one" ];
  Db.insert db ~table:"x" [ "2"; "one" ];
  Db.add_index db ~table:"x" ~columns:[ "b" ];
  let got = ref 0 in
  Relation.scan_index (Db.table db "x") ~columns:[ "b" ] ~values:[ "one" ] (fun _ -> incr got);
  check_int "backfilled" 2 !got

let test_scan_prefix_and_pk () =
  let db = make_twip_db () in
  Db.insert db ~table:"p" [ "bob"; "0100"; "a" ];
  Db.insert db ~table:"p" [ "bob"; "0200"; "b" ];
  Db.insert db ~table:"p" [ "liz"; "0150"; "c" ];
  let got = ref [] in
  Relation.scan_prefix (Db.table db "p") [ "bob" ] (fun row -> got := row.(2) :: !got);
  Alcotest.(check (list string)) "bob's posts" [ "a"; "b" ] (List.rev !got);
  let got = ref [] in
  Relation.scan_pk (Db.table db "p") ~lo:"bob|0150" ~hi:"liz|0200" (fun row -> got := row.(2) :: !got);
  Alcotest.(check (list string)) "pk range" [ "b"; "c" ] (List.rev !got)

(* the paper's §2 timeline query through the SPJ executor *)
let test_spj_timeline_query () =
  let db = make_twip_db () in
  Db.insert db ~table:"s" [ "ann"; "bob" ];
  Db.insert db ~table:"s" [ "ann"; "liz" ];
  Db.insert db ~table:"p" [ "bob"; "0100"; "hello" ];
  Db.insert db ~table:"p" [ "bob"; "0050"; "too old" ];
  Db.insert db ~table:"p" [ "liz"; "0150"; "hi" ];
  Db.insert db ~table:"p" [ "jim"; "0160"; "not followed" ];
  let q =
    Query.make
      ~terms:
        [ { Query.relation = Db.table db "s"; alias = "s" };
          { Query.relation = Db.table db "p"; alias = "p" } ]
      ~preds:
        [ Query.Const ("s", "user", "ann");
          Query.Join ("s", "poster", "p", "poster");
          Query.Ge ("p", "time", "0100") ]
      ~select:[ ("p", "time"); ("p", "poster"); ("p", "tweet") ]
  in
  let rows = Query.exec_list q |> rows_to_list |> List.sort compare in
  check_rows "timeline query"
    [ [ "0100"; "bob"; "hello" ]; [ "0150"; "liz"; "hi" ] ]
    rows

let test_query_range_pred () =
  let db = make_twip_db () in
  for i = 0 to 9 do
    Db.insert db ~table:"p" [ "bob"; Printf.sprintf "%04d" (i * 10); string_of_int i ]
  done;
  let q =
    Query.make
      ~terms:[ { Query.relation = Db.table db "p"; alias = "p" } ]
      ~preds:
        [ Query.Const ("p", "poster", "bob"); Query.Ge ("p", "time", "0030");
          Query.Lt ("p", "time", "0060") ]
      ~select:[ ("p", "tweet") ]
  in
  check_rows "range" [ [ "3" ]; [ "4" ]; [ "5" ] ] (rows_to_list (Query.exec_list q))

let test_triggers_maintain_view () =
  (* a trigger-maintained timeline table, as in the PostgreSQL baseline *)
  let db = make_twip_db () in
  let _ = Db.create_table db ~name:"tl" ~columns:[ "user"; "time"; "poster"; "tweet" ]
      ~key:[ "user"; "time"; "poster" ] in
  Db.create_trigger db ~table:"p" (fun change row ->
      match change with
      | Db.Row_insert ->
        Relation.scan_index (Db.table db "s") ~columns:[ "poster" ] ~values:[ row.(0) ]
          (fun srow -> Db.insert db ~table:"tl" [ srow.(0); row.(1); row.(0); row.(2) ])
      | Db.Row_delete ->
        Relation.scan_index (Db.table db "s") ~columns:[ "poster" ] ~values:[ row.(0) ]
          (fun srow -> ignore (Db.delete db ~table:"tl" [ srow.(0); row.(1); row.(0) ])));
  Db.insert db ~table:"s" [ "ann"; "bob" ];
  Db.insert db ~table:"p" [ "bob"; "0100"; "hi" ];
  check_int "tl row" 1 (Relation.row_count (Db.table db "tl"));
  (match Db.find db ~table:"tl" [ "ann"; "0100"; "bob" ] with
  | Some row -> Alcotest.(check string) "copied tweet" "hi" row.(3)
  | None -> Alcotest.fail "trigger did not fire");
  ignore (Db.delete db ~table:"p" [ "bob"; "0100" ]);
  check_int "tl cleaned" 0 (Relation.row_count (Db.table db "tl"))

let test_notify_listeners () =
  (* the write-around deployment: a database notification feeds Pequod *)
  let db = make_twip_db () in
  let events = ref [] in
  Db.listen db ~table:"p" (fun change row ->
      events := (change, Array.to_list row) :: !events);
  Db.insert db ~table:"p" [ "bob"; "0100"; "hi" ];
  ignore (Db.delete db ~table:"p" [ "bob"; "0100" ]);
  Alcotest.(check int) "two events" 2 (List.length !events);
  check_bool "insert first" true
    (match List.rev !events with
    | (Db.Row_insert, [ "bob"; "0100"; "hi" ]) :: _ -> true
    | _ -> false)

let test_wal_accounting () =
  let db = make_twip_db () in
  let w0 = Db.wal_bytes db in
  Db.insert db ~table:"p" [ "bob"; "0100"; "hello world" ];
  check_bool "wal grows" true (Db.wal_bytes db > w0);
  check_int "statements" 1 (Db.statements db)

(* write-around: database -> notify -> Pequod cache stays fresh *)
let test_write_around_deployment () =
  let module Server = Pequod_core.Server in
  let db = make_twip_db () in
  let cache = Server.create () in
  Server.add_join_exn cache
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>";
  let forward table change row =
    let key =
      match table with
      | "p" -> Printf.sprintf "p|%s|%s" row.(0) row.(1)
      | "s" -> Printf.sprintf "s|%s|%s" row.(0) row.(1)
      | _ -> assert false
    in
    match change with
    | Db.Row_insert ->
      Server.put cache key (if table = "p" then row.(2) else "1")
    | Db.Row_delete -> Server.remove cache key
  in
  Db.listen db ~table:"p" (forward "p");
  Db.listen db ~table:"s" (forward "s");
  (* application writes go to the database only *)
  Db.insert db ~table:"s" [ "ann"; "bob" ];
  Db.insert db ~table:"p" [ "bob"; "0100"; "hello" ];
  Alcotest.(check (list (pair string string)))
    "cache sees db writes"
    [ ("t|ann|0100|bob", "hello") ]
    (Server.scan cache ~lo:"t|ann|" ~hi:"t|ann}");
  Db.insert db ~table:"p" [ "bob"; "0200"; "more" ];
  Alcotest.(check (list (pair string string)))
    "incremental through notify"
    [ ("t|ann|0100|bob", "hello"); ("t|ann|0200|bob", "more") ]
    (Server.scan cache ~lo:"t|ann|" ~hi:"t|ann}")

let () =
  Alcotest.run "db"
    [
      ( "relation",
        [
          Alcotest.test_case "insert/find/delete" `Quick test_insert_find_delete;
          Alcotest.test_case "arity and missing table" `Quick test_arity_and_missing_table;
          Alcotest.test_case "secondary index" `Quick test_secondary_index;
          Alcotest.test_case "index backfill" `Quick test_index_backfills_existing_rows;
          Alcotest.test_case "scan prefix and pk" `Quick test_scan_prefix_and_pk;
        ] );
      ( "query",
        [
          Alcotest.test_case "timeline SPJ" `Quick test_spj_timeline_query;
          Alcotest.test_case "range predicates" `Quick test_query_range_pred;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "view maintenance" `Quick test_triggers_maintain_view;
          Alcotest.test_case "notify" `Quick test_notify_listeners;
          Alcotest.test_case "wal accounting" `Quick test_wal_accounting;
          Alcotest.test_case "write-around deployment" `Quick test_write_around_deployment;
        ] );
    ]
