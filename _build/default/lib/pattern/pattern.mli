(** Key patterns with named slots — the vocabulary of cache joins.

    A pattern like [t|<user>|<time>|<poster>] describes a family of keys:
    ['|']-separated segments that are either literals or {e slots} (angle
    brackets). Slot names are interned to integer ids shared across the
    patterns of one join, so a plain [string option array] describes a
    {e slot set} (§3.1 of the paper) for the whole join.

    Numeric slots that participate in range narrowing should use
    fixed-width encodings ({!Strkey.encode_int}); with variable-width
    values, containing ranges remain correct over-approximations for
    aligned scans but exotic cross-boundary scans may be imprecise. *)

type t

(** Residual constraint on one slot: value in [\[rlo, rhi)], [None] being
    unconstrained on that side. Produced by {!bind_range} for the first
    partially-constrained slot; consumed by {!containing_range}. *)
type residual = { slot : int; rlo : string option; rhi : string option }

exception Parse_error of string

(** [parse ~intern text] compiles a pattern; [intern] maps slot names to
    shared ids. Raises {!Parse_error} on malformed text (empty segments,
    stray brackets, leading slot). *)
val parse : intern:(string -> int) -> string -> t

(** The pattern's source text. *)
val text : t -> string

(** Number of segments. *)
val nsegs : t -> int

(** The leading literal segment: the pattern's table. *)
val table : t -> string

(** Ids of the slots the pattern mentions, in order of appearance. *)
val slots : t -> int list

val mentions_slot : t -> int -> bool

(** [match_key t key ~bindings] matches [key] against the pattern,
    returning bindings extended with newly bound slots — or [None] on a
    shape mismatch, literal mismatch, or conflict with an existing
    binding. The input array is never mutated. *)
val match_key : t -> string -> bindings:string option array -> string option array option

(** Build the key denoted by the pattern under full bindings.
    @raise Invalid_argument if a mentioned slot is unbound. *)
val build_key : t -> string option array -> string

val fully_bound : t -> string option array -> bool

(** The minimal key range containing every key the pattern can produce
    under the slot set (§3.1). The residual's bounds narrow the range when
    its slot is the first unbound one. *)
val containing_range :
  t -> bindings:string option array -> residual:residual option -> string * string

(** Derive a slot set from a requested key range (§3.1's
    [join.slotset(table, first, last)]): exact bindings for the segments
    every key in the range agrees on, plus a residual for the first
    partially-constrained slot. [None] when the range can contain no key
    of this pattern. *)
val bind_range :
  t -> lo:string -> hi:string -> nslots:int -> (string option array * residual option) option
