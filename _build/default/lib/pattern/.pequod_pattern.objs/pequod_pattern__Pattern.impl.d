lib/pattern/pattern.ml: Array Buffer List String Strkey
