lib/pattern/joinspec.ml: Array List Pattern Printf String
