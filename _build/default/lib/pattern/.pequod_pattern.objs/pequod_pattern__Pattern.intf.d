lib/pattern/pattern.mli:
