lib/pattern/joinspec.mli: Pattern
