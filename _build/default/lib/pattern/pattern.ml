(** Key patterns with named slots.

    A pattern like [t|<user>|<time>|<poster>] describes a family of keys:
    ['|']-separated segments that are either literals (the table name [t],
    Newp's tag literals [a], [k], ...) or {e slots} (in angle brackets).
    Slot names are interned to integer ids shared across all patterns of one
    cache join, so a binding array describes a {e slot set} (§3.1) for the
    whole join.

    Beyond matching and building keys, patterns support the two §3.1 query
    planning operations:
    - [bind_range]: derive a slot set (bindings plus a residual bound on the
      first unbound slot) from a requested output key range, and
    - [containing_range]: the minimal range of keys a pattern can produce
      under a slot set — used both to narrow source scans and to determine
      the output range a join execution will cover.

    Residual narrowing is minimal for fixed-width slot encodings
    ({!Strkey.encode_int}); for variable-width values it remains a correct
    over-approximation. *)

type seg = Lit of string | Slot of int

type t = { segs : seg array; text : string }

(** Residual constraint on one slot: value in [\[rlo, rhi)] where [None]
    means unconstrained on that side. *)
type residual = { slot : int; rlo : string option; rhi : string option }

exception Parse_error of string

(** [parse ~intern text]: [intern] maps slot names to shared ids. *)
let parse ~intern text =
  if text = "" then raise (Parse_error "empty pattern");
  let segs =
    String.split_on_char '|' text
    |> List.map (fun seg ->
           let n = String.length seg in
           if n >= 2 && seg.[0] = '<' && seg.[n - 1] = '>' then
             let name = String.sub seg 1 (n - 2) in
             if name = "" then raise (Parse_error "empty slot name")
             else Slot (intern name)
           else begin
             if String.exists (fun c -> c = '<' || c = '>') seg then
               raise (Parse_error ("malformed segment: " ^ seg));
             if seg = "" then raise (Parse_error ("empty segment in: " ^ text));
             Lit seg
           end)
  in
  let segs = Array.of_list segs in
  (match segs.(0) with
  | Slot _ -> raise (Parse_error ("pattern must start with a table literal: " ^ text))
  | Lit _ -> ());
  { segs; text }

let text t = t.text
let nsegs t = Array.length t.segs

(** The pattern's table: its leading literal segment. *)
let table t = match t.segs.(0) with Lit s -> s | Slot _ -> assert false

(** Ids of the slots the pattern mentions, in order of appearance. *)
let slots t =
  Array.to_list t.segs
  |> List.filter_map (function Slot i -> Some i | Lit _ -> None)

let mentions_slot t i = List.mem i (slots t)

(* [piece_eq key pos len v]: does key[pos .. pos+len) equal [v]? *)
let piece_eq key pos len v =
  String.length v = len
  &&
  let rec go i = i = len || (String.unsafe_get key (pos + i) = String.unsafe_get v i && go (i + 1)) in
  go 0

(** Match [key] against the pattern, extending [bindings] (without mutating
    it). Returns the extended bindings, or [None] if the key has the wrong
    shape, a literal mismatch, or conflicts with an existing binding. The
    input array is only copied on a successful match with new bindings. *)
let match_key t key ~bindings =
  let n = String.length key in
  let nsegs = Array.length t.segs in
  let out = ref bindings in
  let copied = ref false in
  let bind s v =
    if not !copied then begin
      out := Array.copy bindings;
      copied := true
    end;
    !out.(s) <- Some v
  in
  let rec go i pos =
    if i = nsegs then pos = n + 1 (* consumed exactly the whole key *)
    else if pos > n then false
    else begin
      let e = match String.index_from_opt key pos '|' with Some j -> j | None -> n in
      let len = e - pos in
      let ok =
        match t.segs.(i) with
        | Lit l -> piece_eq key pos len l
        | Slot s -> (
          len > 0
          &&
          match !out.(s) with
          | Some v -> piece_eq key pos len v
          | None ->
            bind s (String.sub key pos len);
            true)
      in
      ok && go (i + 1) (e + 1)
    end
  in
  if go 0 0 then Some (if !copied then !out else Array.copy bindings) else None

(** Build the key the pattern denotes under [bindings]. Raises
    [Invalid_argument] if a slot is unbound. *)
let build_key t bindings =
  let parts =
    Array.to_list t.segs
    |> List.map (function
         | Lit l -> l
         | Slot i -> (
           match bindings.(i) with
           | Some v -> v
           | None -> invalid_arg ("Pattern.build_key: unbound slot in " ^ t.text)))
  in
  String.concat "|" parts

let fully_bound t bindings =
  Array.for_all (function Lit _ -> true | Slot i -> bindings.(i) <> None) t.segs

(** [containing_range t ~bindings ~residual]: the minimal key range that can
    contain every key matching [t] under the slot set (§3.1). When the first
    unbound slot carries the residual, its bounds narrow the range. *)
let containing_range t ~bindings ~residual =
  let n = Array.length t.segs in
  let buf = Buffer.create 32 in
  let rec go i =
    if i = n then begin
      (* fully bound: exactly one candidate key *)
      let k = Buffer.contents buf in
      (k, Strkey.key_after k)
    end
    else begin
      match t.segs.(i) with
      | Lit l ->
        if i > 0 then Buffer.add_char buf '|';
        Buffer.add_string buf l;
        go (i + 1)
      | Slot s -> (
        match bindings.(s) with
        | Some v ->
          if i > 0 then Buffer.add_char buf '|';
          Buffer.add_string buf v;
          go (i + 1)
        | None ->
          if i > 0 then Buffer.add_char buf '|';
          let prefix = Buffer.contents buf in
          let rlo, rhi =
            match residual with
            | Some r when r.slot = s -> (r.rlo, r.rhi)
            | _ -> (None, None)
          in
          let lo = match rlo with Some b -> prefix ^ b | None -> prefix in
          let hi =
            match rhi with Some b -> prefix ^ b | None -> Strkey.prefix_upper prefix
          in
          (lo, hi))
    end
  in
  go 0

(** Derive a slot set from a requested key range (§3.1's
    [join.slotset(table, first, last)]).

    Walks segments left to right. A segment is exactly bound when every key
    in [\[lo, hi)] must agree on it; the first segment that is only
    partially constrained becomes the residual (if it is a slot) or is
    checked for overlap (if it is a literal). Returns [None] when the range
    can contain no key of this pattern at all. *)
let bind_range t ~lo ~hi ~nslots =
  if String.compare lo hi >= 0 then None
  else begin
    let bindings = Array.make nslots None in
    let n = Array.length t.segs in
    (* q is the accumulated prefix, ending with '|' (or "" initially) *)
    let rec go i q =
      (* keys of this pattern from segment i on live in [branch_lo, branch_hi) *)
      let overlap_branch q' last_seg =
        let branch_lo = if last_seg then String.sub q' 0 (String.length q' - 1) else q' in
        Strkey.range_overlaps (branch_lo, Strkey.prefix_upper q') (lo, hi)
      in
      if i = n then begin
        (* fully bound: single key = q without its trailing '|' *)
        let k = String.sub q 0 (String.length q - 1) in
        if Strkey.in_range ~lo ~hi k || Strkey.range_overlaps (k, Strkey.key_after k) (lo, hi)
        then Some (bindings, None)
        else None
      end
      else begin
        let consume v =
          let q' = q ^ v ^ "|" in
          if overlap_branch q' (i = n - 1) then go (i + 1) q' else None
        in
        match t.segs.(i) with
        | Lit l -> consume l
        | Slot s -> (
          match bindings.(s) with
          | Some v -> consume v
          | None ->
            (* can the range pin this slot to one exact value? *)
            let lo_starts = String.length lo > String.length q && String.starts_with ~prefix:q lo in
            let exact =
              if not lo_starts then None
              else begin
                let rest = String.sub lo (String.length q) (String.length lo - String.length q) in
                match String.index_opt rest '|' with
                | Some j ->
                  let v = String.sub rest 0 j in
                  let q' = q ^ v ^ "|" in
                  if v <> "" && String.compare hi (Strkey.prefix_upper q') <= 0 then Some v
                  else None
                | None ->
                  (* lo ends inside this segment; the range pins the slot
                     only when hi admits no other value *)
                  if rest <> "" && String.compare hi (Strkey.key_after (q ^ rest)) <= 0 then
                    Some rest
                  else None
              end
            in
            (match exact with
            | Some v ->
              bindings.(s) <- Some v;
              consume v
            | None ->
              (* slot is the first partially-constrained segment: residual *)
              if not lo_starts && String.compare lo q > 0 then
                (* lo is above everything with prefix q *)
                None
              else if String.compare hi q <= 0 then None
              else begin
                let rlo =
                  if lo_starts then begin
                    let rest = String.sub lo (String.length q) (String.length lo - String.length q) in
                    (* a remainder spanning segments over-constrains the slot
                       value; truncate to the slot's own segment (minimal and
                       correct for fixed-width slot encodings) *)
                    match String.index_opt rest '|' with
                    | Some j -> Some (String.sub rest 0 j)
                    | None -> Some rest
                  end
                  else None
                in
                let rhi =
                  if
                    String.length hi > String.length q && String.starts_with ~prefix:q hi
                  then begin
                    let rest = String.sub hi (String.length q) (String.length hi - String.length q) in
                    (* multi-segment remainders name *output* segments that
                       need not line up with another source's segments;
                       weaken to an inclusive bound on this slot's value *)
                    match String.index_opt rest '|' with
                    | Some 0 -> None
                    | Some j -> Some (Strkey.prefix_upper (String.sub rest 0 j))
                    | None -> Some rest
                  end
                  else if String.compare hi (Strkey.prefix_upper q) >= 0 then None
                  else
                    (* hi <= q handled above; between q and prefix_upper q
                       without the prefix is impossible for '|'-terminated q *)
                    None
                in
                let rlo = match rlo with Some "" -> None | r -> r in
                let residual =
                  if rlo = None && rhi = None then None else Some { slot = s; rlo; rhi }
                in
                Some (bindings, residual)
              end))
      end
    in
    (* the first segment has no preceding separator; treat uniformly by
       checking overlap with the whole-pattern branch first *)
    match t.segs.(0) with
    | Lit table ->
      let q0 = table ^ "|" in
      if n = 1 then
        if Strkey.in_range ~lo ~hi table then Some (bindings, None) else None
      else if Strkey.range_overlaps (table, Strkey.prefix_upper q0) (lo, hi) then go 1 q0
      else None
    | Slot _ -> assert false
  end
