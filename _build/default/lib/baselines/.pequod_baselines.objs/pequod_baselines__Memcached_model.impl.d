lib/baselines/memcached_model.ml: Hashtbl String
