lib/baselines/redis_model.ml: Hashtbl List Sorted_vec String
