lib/baselines/sorted_vec.ml: Array List String
