lib/baselines/meter.ml: Buffer Bytes List Pequod_proto String Unix
