lib/baselines/meter.mli: Bytes Unix
