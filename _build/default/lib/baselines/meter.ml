(** Metered RPC channels for the comparison systems.

    Every system in the §5.2 comparison is driven through one of these
    channels, so measured runtimes include real RPC costs and the byte/RPC
    counts are exact. Two deployments:

    - {e in-process} (the default, used by the test suite): request and
      response bytes bounce through a connected loopback TCP pair (the
      paper's transport, §5.1) and the handler runs in the same process;
    - {e forked} (used by the benchmark harness): the handler — and all
      system state — lives in a forked child process serving framed
      requests, so each RPC is a genuine cross-process round trip with
      scheduler wakeups, exactly like the paper's client/server setup.

    The channel API is bytes-to-bytes; helpers encode command-style
    requests (Redis/memcached/SQL wire shapes) as string arrays. *)

module Frame = Pequod_proto.Frame
module Codec = Pequod_proto.Codec

type mode =
  | In_process of { handler : string -> string; a : Unix.file_descr; b : Unix.file_descr }
  | Forked of { fd : Unix.file_descr; pid : int; decoder : Frame.decoder }

type t = {
  mutable rpcs : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mode : mode;
  scratch : Bytes.t;
}

(* a connected TCP pair over the loopback interface (§5.1) *)
let tcp_loopback_pair () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 1;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let client = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect client (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let server, _ = Unix.accept listener in
  Unix.close listener;
  Unix.setsockopt client Unix.TCP_NODELAY true;
  Unix.setsockopt server Unix.TCP_NODELAY true;
  (client, server)

let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(** In-process channel: [handler] maps request bytes to response bytes. *)
let create ~handler () =
  let a, b = tcp_loopback_pair () in
  { rpcs = 0; bytes_sent = 0; bytes_received = 0; mode = In_process { handler; a; b };
    scratch = Bytes.create 65_536 }

(** Forked channel: [serve] runs in a child process; all state it closes
    over is the child's alone from this point on. *)
let create_forked ~serve () =
  let parent_fd, child_fd = tcp_loopback_pair () in
  match Unix.fork () with
  | 0 ->
    (* child: serve framed requests until EOF, then exit *)
    Unix.close parent_fd;
    let decoder = Frame.decoder () in
    let buf = Bytes.create 65_536 in
    (try
       let rec loop () =
         let n = Unix.read child_fd buf 0 (Bytes.length buf) in
         if n > 0 then begin
           List.iter
             (fun req -> write_all child_fd (Frame.encode (serve req)))
             (Frame.feed decoder (Bytes.sub_string buf 0 n));
           loop ()
         end
       in
       loop ()
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close child_fd;
    { rpcs = 0; bytes_sent = 0; bytes_received = 0;
      mode = Forked { fd = parent_fd; pid; decoder = Frame.decoder () };
      scratch = Bytes.create 65_536 }

let close t =
  match t.mode with
  | In_process { a; b; _ } ->
    Unix.close a;
    Unix.close b
  | Forked { fd; pid; _ } ->
    Unix.close fd;
    ignore (Unix.waitpid [] pid)

(* push [wire] through the kernel pair and read it back: the two copies,
   two syscalls and the readiness wait of a loopback RPC direction *)
let bounce t a b wire =
  let n = String.length wire in
  if n > 0 && n < 60_000 then begin
    let written = Unix.write_substring a wire 0 n in
    (match Unix.select [ b ] [] [] 0.0 with _ -> ());
    let got = ref 0 in
    while !got < written do
      got := !got + Unix.read b t.scratch !got (written - !got)
    done
  end

(** One RPC: request bytes in, response bytes out, through the channel's
    transport. *)
let call t request =
  t.rpcs <- t.rpcs + 1;
  t.bytes_sent <- t.bytes_sent + String.length request;
  let response =
    match t.mode with
    | In_process { handler; a; b } ->
      bounce t a b request;
      let response = handler request in
      bounce t a b response;
      response
    | Forked { fd; decoder; _ } -> (
      write_all fd (Frame.encode request);
      let rec read_frame () =
        let n = Unix.read fd t.scratch 0 (Bytes.length t.scratch) in
        if n = 0 then failwith "Meter.call: server process closed the connection";
        match Frame.feed decoder (Bytes.sub_string t.scratch 0 n) with
        | [] -> read_frame ()
        | [ frame ] -> frame
        | _ -> failwith "Meter.call: pipelined response"
      in
      read_frame ())
  in
  t.bytes_received <- t.bytes_received + String.length response;
  response

(* ------------------------------------------------------------------ *)
(* Command-style payloads (Redis / memcached / SQL wire shapes)        *)

let encode_parts parts =
  let buf = Buffer.create 64 in
  Codec.put_varint buf (List.length parts);
  List.iter (Codec.put_string buf) parts;
  Buffer.contents buf

let decode_parts wire =
  let r = Codec.reader wire in
  let n = Codec.get_varint r in
  List.init n (fun _ -> Codec.get_string r)

(** Send one command (array of strings), receive reply parts. *)
let command t parts = decode_parts (call t (encode_parts parts))
