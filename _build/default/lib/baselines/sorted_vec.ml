(** A growable sorted vector of (score, member) pairs — the data structure
    behind the Redis-model sorted set. Appends at the tail (the common case
    for time-ordered timelines) are amortized O(1); out-of-order inserts
    shift, as an array-backed structure does. Range queries by score use
    binary search. *)

type t = {
  mutable scores : string array;
  mutable members : string array;
  mutable len : int;
}

let create () = { scores = Array.make 8 ""; members = Array.make 8 ""; len = 0 }

let length t = t.len

let ensure_capacity t =
  if t.len = Array.length t.scores then begin
    let n = 2 * t.len in
    let scores = Array.make n "" and members = Array.make n "" in
    Array.blit t.scores 0 scores 0 t.len;
    Array.blit t.members 0 members 0 t.len;
    t.scores <- scores;
    t.members <- members
  end

let cmp_at t i score member =
  let c = String.compare t.scores.(i) score in
  if c <> 0 then c else String.compare t.members.(i) member

(* first index with element >= (score, member) *)
let lower_bound t score member =
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp_at t mid score member < 0 then bs (mid + 1) hi else bs lo mid
  in
  bs 0 t.len

(** Insert keeping order; replaces an existing identical (score, member). *)
let add t ~score ~member =
  ensure_capacity t;
  if t.len > 0 && cmp_at t (t.len - 1) score member < 0 then begin
    (* fast path: append at tail *)
    t.scores.(t.len) <- score;
    t.members.(t.len) <- member;
    t.len <- t.len + 1
  end
  else begin
    let i = lower_bound t score member in
    if i < t.len && cmp_at t i score member = 0 then t.members.(i) <- member
    else begin
      Array.blit t.scores i t.scores (i + 1) (t.len - i);
      Array.blit t.members i t.members (i + 1) (t.len - i);
      t.scores.(i) <- score;
      t.members.(i) <- member;
      t.len <- t.len + 1
    end
  end

let remove t ~score ~member =
  let i = lower_bound t score member in
  if i < t.len && cmp_at t i score member = 0 then begin
    Array.blit t.scores (i + 1) t.scores i (t.len - i - 1);
    Array.blit t.members (i + 1) t.members i (t.len - i - 1);
    t.len <- t.len - 1;
    true
  end
  else false

(** All pairs with [min_score <= score < max_score], ascending. *)
let range_by_score t ~min_score ~max_score =
  let start = lower_bound t min_score "" in
  let acc = ref [] in
  let i = ref start in
  while !i < t.len && String.compare t.scores.(!i) max_score < 0 do
    acc := (t.scores.(!i), t.members.(!i)) :: !acc;
    incr i
  done;
  List.rev !acc

let to_list t = range_by_score t ~min_score:"" ~max_score:"\xff"

(** Approximate resident bytes. *)
let memory_bytes t =
  let acc = ref (16 + (2 * 8 * Array.length t.scores)) in
  for i = 0 to t.len - 1 do
    acc := !acc + String.length t.scores.(i) + String.length t.members.(i)
  done;
  !acc
