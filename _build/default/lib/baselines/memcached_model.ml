(** A model of memcached as used in the paper's comparison (§5.2): a
    hash-table store of plain strings, with [get]/[set]/[append]/[delete].
    Clients store timelines as strings of concatenated entries and update
    them with [append] — which, as in the C implementation's
    reallocate-and-copy behaviour, costs O(current size) per append. That
    cost is why memcached suffers under the write-heavy Twip mix. *)

type t = {
  store : (string, string) Hashtbl.t;
  mutable commands : int;
  mutable bytes_copied : int;
}

let create () = { store = Hashtbl.create 4096; commands = 0; bytes_copied = 0 }

let commands t = t.commands
let bytes_copied t = t.bytes_copied

let set t key v =
  t.commands <- t.commands + 1;
  Hashtbl.replace t.store key v

let get t key =
  t.commands <- t.commands + 1;
  Hashtbl.find_opt t.store key

(** Append to an existing value; fails (like memcached) when absent. *)
let append t key suffix =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some v ->
    (* model the slab reallocate-and-copy *)
    let v' = v ^ suffix in
    t.bytes_copied <- t.bytes_copied + String.length v';
    Hashtbl.replace t.store key v';
    true
  | None -> false

let delete t key =
  t.commands <- t.commands + 1;
  let existed = Hashtbl.mem t.store key in
  Hashtbl.remove t.store key;
  existed

let memory_bytes t =
  Hashtbl.fold (fun k v acc -> acc + String.length k + String.length v + 64) t.store 0

(** Command dispatcher (server side of the model as a process). *)
let dispatch t parts =
  match parts with
  | [ "set"; k; v ] ->
    set t k v;
    [ "STORED" ]
  | [ "get"; k ] -> ( match get t k with Some v -> [ v ] | None -> [])
  | [ "append"; k; v ] -> [ (if append t k v then "STORED" else "NOT_STORED") ]
  | [ "delete"; k ] -> [ (if delete t k then "DELETED" else "NOT_FOUND") ]
  | [ "MEMORY" ] -> [ string_of_int (memory_bytes t) ]
  | _ -> [ "ERROR" ]
