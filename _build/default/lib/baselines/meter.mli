(** Metered RPC channels for the comparison systems (§5.2).

    Two deployments: {e in-process} (request/response bytes bounce through
    a connected loopback-TCP pair — the paper's transport, §5.1 — and the
    handler runs locally; used by the tests) and {e forked} (the handler
    and all state it closes over live in a forked child process serving
    framed requests; every call is a genuine cross-process RPC; used by
    the benchmark harness). *)

type t = {
  mutable rpcs : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mode : mode;
  scratch : Bytes.t;
}

and mode

(** A connected TCP pair over the loopback interface. *)
val tcp_loopback_pair : unit -> Unix.file_descr * Unix.file_descr

(** In-process channel: [handler] maps request bytes to response bytes. *)
val create : handler:(string -> string) -> unit -> t

(** Forked channel: [serve] runs in a child process. *)
val create_forked : serve:(string -> string) -> unit -> t

(** Close the transport (and reap the child, for forked channels). *)
val close : t -> unit

(** One RPC: request bytes in, response bytes out. *)
val call : t -> string -> string

(** Command-style payloads (Redis/memcached/SQL wire shapes): an array of
    strings each way. *)
val encode_parts : string list -> string

val decode_parts : string -> string list
val command : t -> string list -> string list
