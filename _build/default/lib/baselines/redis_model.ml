(** A faithful model of the Redis usage in the paper's comparison (§5.2):
    an unordered hash-table store with O(1) key lookup, holding strings,
    sets, and sorted sets. Clients manage timelines themselves (Redis has
    no server-side computation): timelines are sorted sets keyed by time.

    Commands mirror the Redis ones the Retwis-style client needs. *)

type value =
  | Str of string
  | Set of (string, unit) Hashtbl.t
  | Zset of Sorted_vec.t

type t = {
  store : (string, value) Hashtbl.t;
  mutable commands : int;
}

let create () = { store = Hashtbl.create 4096; commands = 0 }

let commands t = t.commands

let wrong_type () = invalid_arg "redis: wrong value type"

let set t key v =
  t.commands <- t.commands + 1;
  Hashtbl.replace t.store key (Str v)

let get t key =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some (Str v) -> Some v
  | Some _ -> wrong_type ()
  | None -> None

let del t key =
  t.commands <- t.commands + 1;
  let existed = Hashtbl.mem t.store key in
  Hashtbl.remove t.store key;
  existed

let sadd t key member =
  t.commands <- t.commands + 1;
  let set =
    match Hashtbl.find_opt t.store key with
    | Some (Set s) -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.store key (Set s);
      s
    | Some _ -> wrong_type ()
  in
  Hashtbl.replace set member ()

let srem t key member =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some (Set s) -> Hashtbl.remove s member
  | Some _ -> wrong_type ()
  | None -> ()

let smembers t key =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some (Set s) -> Hashtbl.fold (fun m () acc -> m :: acc) s []
  | Some _ -> wrong_type ()
  | None -> []

let zadd t key ~score ~member =
  t.commands <- t.commands + 1;
  let z =
    match Hashtbl.find_opt t.store key with
    | Some (Zset z) -> z
    | None ->
      let z = Sorted_vec.create () in
      Hashtbl.replace t.store key (Zset z);
      z
    | Some _ -> wrong_type ()
  in
  Sorted_vec.add z ~score ~member

let zrem t key ~score ~member =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some (Zset z) -> ignore (Sorted_vec.remove z ~score ~member)
  | Some _ -> wrong_type ()
  | None -> ()

let zrangebyscore t key ~min_score ~max_score =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some (Zset z) -> Sorted_vec.range_by_score z ~min_score ~max_score
  | Some _ -> wrong_type ()
  | None -> []

let zcard t key =
  t.commands <- t.commands + 1;
  match Hashtbl.find_opt t.store key with
  | Some (Zset z) -> Sorted_vec.length z
  | Some _ -> wrong_type ()
  | None -> 0

let memory_bytes t =
  Hashtbl.fold
    (fun k v acc ->
      acc + String.length k + 64
      +
      match v with
      | Str s -> String.length s
      | Set s -> Hashtbl.fold (fun m () a -> a + String.length m + 32) s 64
      | Zset z -> Sorted_vec.memory_bytes z)
    t.store 0

(** Command dispatcher: execute one RESP-style command (array of strings)
    and return the reply parts. This is the server side of the Redis
    model when it runs as a separate process. *)
let dispatch t parts =
  match parts with
  | [ "SET"; k; v ] ->
    set t k v;
    [ "OK" ]
  | [ "GET"; k ] -> ( match get t k with Some v -> [ v ] | None -> [])
  | [ "DEL"; k ] -> [ (if del t k then "1" else "0") ]
  | [ "SADD"; k; m ] ->
    sadd t k m;
    [ "1" ]
  | [ "SREM"; k; m ] ->
    srem t k m;
    [ "1" ]
  | [ "SMEMBERS"; k ] -> smembers t k
  | [ "ZADD"; k; score; member ] ->
    zadd t k ~score ~member;
    [ "1" ]
  | [ "ZREM"; k; score; member ] ->
    zrem t k ~score ~member;
    [ "1" ]
  | [ "ZRANGEBYSCORE"; k; min_score; max_score ] ->
    zrangebyscore t k ~min_score ~max_score
    |> List.concat_map (fun (s, m) -> [ s; m ])
  | [ "ZCARD"; k ] -> [ string_of_int (zcard t k) ]
  | [ "MEMORY" ] -> [ string_of_int (memory_bytes t) ]
  | [ "COMMANDS" ] -> [ string_of_int (commands t) ]
  | _ -> [ "ERR"; "unknown command" ]
