(** Disjoint cover of key space by half-open ranges carrying values.

    Join status ranges (§3.2) "form a disjoint cover of key space": every key
    belongs to at most one explicit range; keys outside any explicit range
    are implicitly in the Unknown state, which this structure represents as
    absence. Supports point lookup, covering iteration (reporting gaps), and
    range assignment with splitting of straddling ranges.

    Values may be mutable; when a range is split, the [dup] function
    supplied at creation is used to give each piece its own value. *)

module M = Map.Make (String)

type 'a t = {
  mutable m : (string * 'a) M.t; (* lo -> (hi, value) *)
  dup : 'a -> 'a;
}

let create ?(dup = fun v -> v) () = { m = M.empty; dup }

let is_empty t = M.is_empty t.m
let cardinal t = M.cardinal t.m

(** The explicit range containing [k], if any. *)
let find t k =
  match M.find_last_opt (fun lo -> String.compare lo k <= 0) t.m with
  | Some (lo, (hi, v)) when String.compare k hi < 0 -> Some (lo, hi, v)
  | _ -> None

(** All explicit ranges intersecting [\[lo, hi)], in order.
    O(log n + matches). *)
let overlapping t ~lo ~hi =
  if String.compare lo hi >= 0 then []
  else begin
    let straddle =
      (* a range starting before lo may straddle into [lo, hi) *)
      match M.find_last_opt (fun l -> String.compare l lo < 0) t.m with
      | Some (l, (h, v)) when String.compare h lo > 0 -> [ (l, h, v) ]
      | _ -> []
    in
    let rest =
      M.to_seq_from lo t.m
      |> Seq.take_while (fun (l, _) -> String.compare l hi < 0)
      |> Seq.map (fun (l, (h, v)) -> (l, h, v))
      |> List.of_seq
    in
    straddle @ rest
  end

(** [iter_cover t ~lo ~hi f] calls [f sublo subhi v_opt] on consecutive
    pieces exactly covering [\[lo, hi)]; [None] marks implicit gaps. *)
let iter_cover t ~lo ~hi f =
  let pieces = overlapping t ~lo ~hi in
  let cursor = ref lo in
  List.iter
    (fun (l, h, v) ->
      let l' = Strkey.max_str l lo and h' = Strkey.min_str h hi in
      if String.compare !cursor l' < 0 then f !cursor l' None;
      if String.compare l' h' < 0 then f l' h' (Some v);
      cursor := Strkey.max_str !cursor h')
    pieces;
  if String.compare !cursor hi < 0 then f !cursor hi None

(** Remove all coverage of [\[lo, hi)], trimming straddling ranges (the
    trimmed remainders keep duplicates of their values). *)
let clear_range t ~lo ~hi =
  if String.compare lo hi < 0 then begin
    let pieces = overlapping t ~lo ~hi in
    List.iter
      (fun (l, h, v) ->
        t.m <- M.remove l t.m;
        if String.compare l lo < 0 then t.m <- M.add l (lo, t.dup v) t.m;
        if String.compare hi h < 0 then t.m <- M.add hi (h, t.dup v) t.m)
      pieces
  end

(** Assign value [v] to exactly [\[lo, hi)], overwriting any overlap. *)
let set t ~lo ~hi v =
  if String.compare lo hi >= 0 then invalid_arg "Range_map.set: empty range";
  clear_range t ~lo ~hi;
  t.m <- M.add lo (hi, v) t.m

(** [update_range t ~lo ~hi f] rewrites the cover of [\[lo, hi)] piecewise:
    [f sublo subhi v_opt] returns the piece's new value ([None] clears it).
    Straddling ranges are split first. *)
let update_range t ~lo ~hi f =
  if String.compare lo hi < 0 then begin
    let pieces = ref [] in
    iter_cover t ~lo ~hi (fun l h v -> pieces := (l, h, v) :: !pieces);
    let pieces = List.rev !pieces in
    clear_range t ~lo ~hi;
    List.iter
      (fun (l, h, v) ->
        match f l h v with None -> () | Some v' -> t.m <- M.add l (h, v') t.m)
      pieces
  end

(** Merge runs of adjacent ranges with [eq]-equal values in the
    neighbourhood of [\[lo, hi)] (fights fragmentation from repeated
    split/heal cycles). The merged run keeps the leftmost value. *)
let coalesce t ~lo ~hi ~eq =
  let start =
    match M.find_last_opt (fun l -> String.compare l lo <= 0) t.m with
    | Some (l, _) -> l
    | None -> lo
  in
  let snapshot =
    M.to_seq_from start t.m
    |> Seq.take_while (fun (l, _) -> String.compare l hi <= 0)
    |> List.of_seq
  in
  let cur = ref None in
  List.iter
    (fun (l, (h, v)) ->
      match !cur with
      | Some (cl, ch, cv) when String.equal ch l && eq cv v ->
        t.m <- M.remove l t.m;
        t.m <- M.add cl (h, cv) t.m;
        cur := Some (cl, h, cv)
      | _ -> cur := Some (l, h, v))
    snapshot

let iter t f = M.iter (fun lo (hi, v) -> f lo hi v) t.m

let to_list t = M.fold (fun lo (hi, v) acc -> (lo, hi, v) :: acc) t.m [] |> List.rev

(** Validation for tests: ranges non-empty, sorted, pairwise disjoint. *)
let validate t =
  let fail msg = failwith ("Range_map.validate: " ^ msg) in
  let prev_hi = ref "" in
  M.iter
    (fun lo (hi, _) ->
      if String.compare lo hi >= 0 then fail "empty range";
      if String.compare !prev_hi lo > 0 then fail "overlap";
      prev_hi := hi)
    t.m
