lib/store/table.ml: Hashtbl List Map Rbtree Seq String Strkey
