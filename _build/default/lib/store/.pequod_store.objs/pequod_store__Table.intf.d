lib/store/table.mli: Rbtree
