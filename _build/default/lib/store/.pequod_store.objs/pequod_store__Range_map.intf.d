lib/store/range_map.mli:
