lib/store/lru.mli:
