lib/store/rbtree.mli:
