lib/store/range_map.ml: List Map Seq String Strkey
