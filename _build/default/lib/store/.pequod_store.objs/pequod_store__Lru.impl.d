lib/store/lru.ml:
