lib/store/interval_map.ml: List String Strkey
