lib/store/store.mli: Table
