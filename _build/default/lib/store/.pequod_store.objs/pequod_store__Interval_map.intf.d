lib/store/interval_map.mli:
