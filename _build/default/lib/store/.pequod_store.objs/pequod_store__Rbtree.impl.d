lib/store/rbtree.ml: List String
