lib/store/store.ml: Hashtbl List Map Seq String Strkey Table
