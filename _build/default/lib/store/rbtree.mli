(** Mutable red-black tree with parent pointers, specialized to string
    keys (the paper's §4 store structure).

    Three properties matter beyond balanced-tree behaviour: {b node
    identity} (deletion splices nodes without moving contents, so output
    hints — §4.2 — stay meaningful; removed nodes are marked dead),
    {b hinted insertion} ([insert_after] is O(1) amortized for accurate
    hints), and {b ordered iteration} over half-open ranges. *)

type 'v node = private {
  mutable key : string;
  mutable value : 'v;
  mutable left : 'v node;
  mutable right : 'v node;
  mutable parent : 'v node;
  mutable red : bool;
  mutable live : bool;
}

type 'v t

(** [create ~dummy ()] makes an empty tree; [dummy] seeds the sentinel and
    is never observable. *)
val create : dummy:'v -> unit -> 'v t

val is_empty : 'v t -> bool
val size : 'v t -> int

(** False once the node has been unlinked (guards stale hints). *)
val is_live : 'v node -> bool

val min_node : 'v t -> 'v node option
val max_node : 'v t -> 'v node option

(** In-order successor / predecessor, or [None] at the ends. *)
val next : 'v t -> 'v node -> 'v node option

val prev : 'v t -> 'v node -> 'v node option
val find : 'v t -> string -> 'v node option

(** First node with key >= the argument. *)
val lower_bound : 'v t -> string -> 'v node option

(** Insert or overwrite in place; returns the node and the previous value
    ([None] when freshly inserted). *)
val insert : 'v t -> string -> 'v -> 'v node * 'v option

(** O(1) amortized when the key belongs immediately after [hint] (the
    §4.2 output-hint fast path); falls back to {!insert} when the hint is
    dead, equal, or not adjacent. *)
val insert_after : 'v t -> hint:'v node -> string -> 'v -> 'v node * 'v option

(** Unlink the node; it keeps its contents but becomes dead. Other nodes
    keep their identity. *)
val remove_node : 'v t -> 'v node -> unit

val remove : 'v t -> string -> bool

(** Ascending iteration over keys in [\[lo, hi)]. The callback must not
    mutate the tree. *)
val iter_range : 'v t -> lo:string -> hi:string -> ('v node -> unit) -> unit

val fold_range : 'v t -> lo:string -> hi:string -> init:'a -> ('a -> 'v node -> 'a) -> 'a

(** Nodes in range, collected first (safe to mutate afterwards). *)
val nodes_in_range : 'v t -> lo:string -> hi:string -> 'v node list

val iter : 'v t -> ('v node -> unit) -> unit
val to_list : 'v t -> (string * 'v) list
val count_range : 'v t -> lo:string -> hi:string -> int

(** Check BST order, red-black invariants, parent pointers and size;
    raises [Failure] on violation (tests). *)
val validate : 'v t -> unit
