(** Interval tree over half-open string ranges [\[lo, hi)].

    Pequod stores updaters in an interval tree (§3.2): every modification to
    a key [k] must find all updaters whose source range contains [k]
    (a stabbing query) in O(log n + matches). This is an AVL tree keyed by
    [lo], with a per-subtree maximum [hi] augmentation; entries sharing a
    [lo] are bucketed in the node. Entries are removable by handle. *)

type 'a entry = { lo : string; hi : string; id : int; data : 'a }

type 'a handle = 'a entry

type 'a tree =
  | Leaf
  | Node of {
      l : 'a tree;
      lo : string;
      entries : 'a entry list;
      max_hi : string;
      r : 'a tree;
      height : int;
    }

type 'a t = { mutable root : 'a tree; mutable next_id : int; mutable count : int }

let create () = { root = Leaf; next_id = 0; count = 0 }

let size t = t.count
let handle_data (h : 'a handle) = h.data
let handle_range (h : 'a handle) = (h.lo, h.hi)

let height = function Leaf -> 0 | Node n -> n.height
let max_hi_of = function Leaf -> "" | Node n -> n.max_hi

let entries_max_hi entries =
  List.fold_left (fun acc e -> Strkey.max_str acc e.hi) "" entries

let mk l lo entries r =
  let max_hi =
    Strkey.max_str (entries_max_hi entries) (Strkey.max_str (max_hi_of l) (max_hi_of r))
  in
  Node { l; lo; entries; max_hi; r; height = 1 + max (height l) (height r) }

let balance l lo entries r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then
    match l with
    | Leaf -> assert false
    | Node ln ->
      if height ln.l >= height ln.r then mk ln.l ln.lo ln.entries (mk ln.r lo entries r)
      else (
        match ln.r with
        | Leaf -> assert false
        | Node lrn ->
          mk (mk ln.l ln.lo ln.entries lrn.l) lrn.lo lrn.entries (mk lrn.r lo entries r))
  else if hr > hl + 1 then
    match r with
    | Leaf -> assert false
    | Node rn ->
      if height rn.r >= height rn.l then mk (mk l lo entries rn.l) rn.lo rn.entries rn.r
      else (
        match rn.l with
        | Leaf -> assert false
        | Node rln ->
          mk (mk l lo entries rln.l) rln.lo rln.entries (mk rln.r rn.lo rn.entries rn.r))
  else mk l lo entries r

let rec insert_tree tree entry =
  match tree with
  | Leaf -> mk Leaf entry.lo [ entry ] Leaf
  | Node n ->
    let c = String.compare entry.lo n.lo in
    if c = 0 then mk n.l n.lo (entry :: n.entries) n.r
    else if c < 0 then balance (insert_tree n.l entry) n.lo n.entries n.r
    else balance n.l n.lo n.entries (insert_tree n.r entry)

let rec pop_min = function
  | Leaf -> invalid_arg "Interval_map.pop_min"
  | Node { l = Leaf; lo; entries; r; _ } -> ((lo, entries), r)
  | Node n ->
    let m, l' = pop_min n.l in
    (m, balance l' n.lo n.entries n.r)

let rec remove_tree tree lo id =
  match tree with
  | Leaf -> (Leaf, false)
  | Node n ->
    let c = String.compare lo n.lo in
    if c < 0 then
      let l', removed = remove_tree n.l lo id in
      (balance l' n.lo n.entries n.r, removed)
    else if c > 0 then
      let r', removed = remove_tree n.r lo id in
      (balance n.l n.lo n.entries r', removed)
    else
      let remaining = List.filter (fun e -> e.id <> id) n.entries in
      let removed = List.length remaining <> List.length n.entries in
      if remaining <> [] then (mk n.l n.lo remaining n.r, removed)
      else if n.r = Leaf then (n.l, removed)
      else
        let (mlo, mentries), r' = pop_min n.r in
        (balance n.l mlo mentries r', removed)

(** Add the interval [\[lo, hi)] carrying [data]; returns a handle for
    removal. Empty intervals are rejected. *)
let add t ~lo ~hi data =
  if String.compare lo hi >= 0 then invalid_arg "Interval_map.add: empty interval";
  let entry = { lo; hi; id = t.next_id; data } in
  t.next_id <- t.next_id + 1;
  t.root <- insert_tree t.root entry;
  t.count <- t.count + 1;
  entry

(** Remove a previously added entry. Idempotent. *)
let remove t (h : 'a handle) =
  let root', removed = remove_tree t.root h.lo h.id in
  if removed then begin
    t.root <- root';
    t.count <- t.count - 1
  end

(** [stab t k f] calls [f] on every entry whose interval contains [k]. *)
let stab t k f =
  let rec go = function
    | Leaf -> ()
    | Node n ->
      if String.compare (max_hi_of n.l) k > 0 then go n.l;
      if String.compare n.lo k <= 0 then begin
        List.iter (fun e -> if String.compare e.hi k > 0 then f e) n.entries;
        go n.r
      end
  in
  go t.root

(** [iter_overlapping t ~lo ~hi f] calls [f] on every entry whose interval
    intersects [\[lo, hi)]. *)
let iter_overlapping t ~lo ~hi f =
  if String.compare lo hi < 0 then begin
    let rec go = function
      | Leaf -> ()
      | Node n ->
        if String.compare (max_hi_of n.l) lo > 0 then go n.l;
        if String.compare n.lo hi < 0 then begin
          List.iter
            (fun e -> if String.compare e.hi lo > 0 && String.compare e.lo hi < 0 then f e)
            n.entries;
          go n.r
        end
    in
    go t.root
  end

let iter t f =
  let rec go = function
    | Leaf -> ()
    | Node n ->
      go n.l;
      List.iter f n.entries;
      go n.r
  in
  go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

(** Structural validation for tests. *)
let validate t =
  let fail msg = failwith ("Interval_map.validate: " ^ msg) in
  let count = ref 0 in
  let rec go tree lo hi =
    match tree with
    | Leaf -> ()
    | Node n ->
      if abs (height n.l - height n.r) > 1 then fail "unbalanced";
      if n.height <> 1 + max (height n.l) (height n.r) then fail "height";
      if n.entries = [] then fail "empty bucket";
      List.iter
        (fun e ->
          incr count;
          if e.lo <> n.lo then fail "bucket lo";
          if String.compare e.lo e.hi >= 0 then fail "empty interval")
        n.entries;
      (match lo with
      | Some l -> if String.compare n.lo l <= 0 then fail "order lo"
      | None -> ());
      (match hi with
      | Some h -> if String.compare n.lo h >= 0 then fail "order hi"
      | None -> ());
      let expect =
        Strkey.max_str (entries_max_hi n.entries)
          (Strkey.max_str (max_hi_of n.l) (max_hi_of n.r))
      in
      if n.max_hi <> expect then fail "max_hi";
      go n.l lo (Some n.lo);
      go n.r (Some n.lo) hi
  in
  go t.root None None;
  if !count <> t.count then fail "count"
