(** Mutable red-black tree with parent pointers, specialized to string keys.

    This is the paper's §4 store structure. Three properties matter beyond
    ordinary balanced-tree behaviour:

    - {b node identity}: [remove] splices nodes without moving key/value
      between nodes (transplant-based deletion), so a pointer to a node —
      an {e output hint}, §4.2 — stays meaningful; removed nodes are marked
      dead rather than recycled.
    - {b hinted insertion}: [insert_after] links a key as the in-order
      successor of a hint node in O(1) amortized time when the hint is
      accurate, falling back to a normal insert when it is not.
    - {b ordered iteration} over half-open key ranges, the basis of [scan].

    The implementation follows CLRS with a per-tree [nil] sentinel. *)

type 'v node = {
  mutable key : string;
  mutable value : 'v;
  mutable left : 'v node;
  mutable right : 'v node;
  mutable parent : 'v node;
  mutable red : bool;
  mutable live : bool; (* false once unlinked; guards stale hints *)
}

type 'v t = { nil : 'v node; mutable root : 'v node; mutable size : int }

let make_nil dummy =
  let rec nil =
    { key = ""; value = dummy; left = nil; right = nil; parent = nil; red = false; live = false }
  in
  nil

(** [create ~dummy ()] makes an empty tree. [dummy] is an arbitrary value of
    the value type used to seed the sentinel; it is never observable. *)
let create ~dummy () =
  let nil = make_nil dummy in
  { nil; root = nil; size = 0 }

let is_empty t = t.root == t.nil
let size t = t.size
let is_live node = node.live

let rec subtree_min t x = if x.left == t.nil then x else subtree_min t x.left
let rec subtree_max t x = if x.right == t.nil then x else subtree_max t x.right

let min_node t = if t.root == t.nil then None else Some (subtree_min t t.root)
let max_node t = if t.root == t.nil then None else Some (subtree_max t t.root)

(** In-order successor, or [None] at the maximum. *)
let next t x =
  if x.right != t.nil then Some (subtree_min t x.right)
  else
    let rec up x p = if p != t.nil && x == p.right then up p p.parent else p in
    let p = up x x.parent in
    if p == t.nil then None else Some p

let prev t x =
  if x.left != t.nil then Some (subtree_max t x.left)
  else
    let rec up x p = if p != t.nil && x == p.left then up p p.parent else p in
    let p = up x x.parent in
    if p == t.nil then None else Some p

let find t k =
  let rec go x =
    if x == t.nil then None
    else
      let c = String.compare k x.key in
      if c = 0 then Some x else if c < 0 then go x.left else go x.right
  in
  go t.root

(** First node with key >= [k], in O(log n). *)
let lower_bound t k =
  let rec go x best =
    if x == t.nil then best
    else if String.compare x.key k >= 0 then go x.left (Some x)
    else go x.right best
  in
  go t.root None

let left_rotate t x =
  let y = x.right in
  x.right <- y.left;
  if y.left != t.nil then y.left.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.left then x.parent.left <- y
  else x.parent.right <- y;
  y.left <- x;
  x.parent <- y

let right_rotate t x =
  let y = x.left in
  x.left <- y.right;
  if y.right != t.nil then y.right.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.right then x.parent.right <- y
  else x.parent.left <- y;
  y.right <- x;
  x.parent <- y

let insert_fixup t z0 =
  let z = ref z0 in
  while !z.parent.red do
    let zp = !z.parent in
    let zpp = zp.parent in
    if zp == zpp.left then begin
      let y = zpp.right in
      if y.red then begin
        zp.red <- false;
        y.red <- false;
        zpp.red <- true;
        z := zpp
      end
      else begin
        if !z == zp.right then begin
          z := zp;
          left_rotate t !z
        end;
        !z.parent.red <- false;
        !z.parent.parent.red <- true;
        right_rotate t !z.parent.parent
      end
    end
    else begin
      let y = zpp.left in
      if y.red then begin
        zp.red <- false;
        y.red <- false;
        zpp.red <- true;
        z := zpp
      end
      else begin
        if !z == zp.left then begin
          z := zp;
          right_rotate t !z
        end;
        !z.parent.red <- false;
        !z.parent.parent.red <- true;
        left_rotate t !z.parent.parent
      end
    end
  done;
  t.root.red <- false

(* Link fresh node [z] as the [`Left] or [`Right] child of [parent] (which
   must have a nil child there, or be nil for an empty tree). *)
let link_child t parent side k v =
  let z =
    { key = k; value = v; left = t.nil; right = t.nil; parent; red = true; live = true }
  in
  if parent == t.nil then t.root <- z
  else begin
    match side with `Left -> parent.left <- z | `Right -> parent.right <- z
  end;
  t.size <- t.size + 1;
  insert_fixup t z;
  z

(** Insert [k -> v]; if [k] is present, overwrite its value in place.
    Returns the node and the previous value ([None] when freshly
    inserted). *)
let insert t k v =
  let rec descend x =
    let c = String.compare k x.key in
    if c = 0 then begin
      let old = x.value in
      x.value <- v;
      (x, Some old)
    end
    else if c < 0 then
      if x.left == t.nil then (link_child t x `Left k v, None) else descend x.left
    else if x.right == t.nil then (link_child t x `Right k v, None)
    else descend x.right
  in
  if t.root == t.nil then (link_child t t.nil `Left k v, None) else descend t.root

(** [insert_after t ~hint k v]: O(1) amortized insertion when [k] belongs
    immediately after [hint] in key order (the paper's output-hint fast
    path). Falls back to [insert] whenever the hint is dead, equal, or not
    actually adjacent. *)
let insert_after t ~hint k v =
  (* k fits strictly between hint and its successor: link it there *)
  let attach () =
    if hint.right == t.nil then (link_child t hint `Right k v, None)
    else
      (* the successor is the leftmost node of hint.right and has no left
         child; the new node becomes that left child *)
      let s = subtree_min t hint.right in
      (link_child t s `Left k v, None)
  in
  if (not hint.live) || String.compare hint.key k >= 0 then insert t k v
  else
    match next t hint with
    | None -> attach ()
    | Some succ ->
      let c = String.compare k succ.key in
      if c > 0 then insert t k v (* hint not adjacent to k *)
      else if c = 0 then begin
        let old = succ.value in
        succ.value <- v;
        (succ, Some old)
      end
      else attach ()

let transplant t u v =
  if u.parent == t.nil then t.root <- v
  else if u == u.parent.left then u.parent.left <- v
  else u.parent.right <- v;
  v.parent <- u.parent

let delete_fixup t x0 =
  let x = ref x0 in
  while !x != t.root && not !x.red do
    if !x == !x.parent.left then begin
      let w = ref !x.parent.right in
      if !w.red then begin
        !w.red <- false;
        !x.parent.red <- true;
        left_rotate t !x.parent;
        w := !x.parent.right
      end;
      if (not !w.left.red) && not !w.right.red then begin
        !w.red <- true;
        x := !x.parent
      end
      else begin
        if not !w.right.red then begin
          !w.left.red <- false;
          !w.red <- true;
          right_rotate t !w;
          w := !x.parent.right
        end;
        !w.red <- !x.parent.red;
        !x.parent.red <- false;
        !w.right.red <- false;
        left_rotate t !x.parent;
        x := t.root
      end
    end
    else begin
      let w = ref !x.parent.left in
      if !w.red then begin
        !w.red <- false;
        !x.parent.red <- true;
        right_rotate t !x.parent;
        w := !x.parent.left
      end;
      if (not !w.right.red) && not !w.left.red then begin
        !w.red <- true;
        x := !x.parent
      end
      else begin
        if not !w.left.red then begin
          !w.right.red <- false;
          !w.red <- true;
          left_rotate t !w;
          w := !x.parent.left
        end;
        !w.red <- !x.parent.red;
        !x.parent.red <- false;
        !w.left.red <- false;
        right_rotate t !x.parent;
        x := t.root
      end
    end
  done;
  !x.red <- false

(** Unlink [z] from the tree. [z] keeps its key/value but becomes dead;
    other nodes keep their identity (hints to them stay valid). *)
let remove_node t z =
  if not z.live then invalid_arg "Rbtree.remove_node: dead node";
  let y_original_red = ref z.red in
  let x =
    if z.left == t.nil then begin
      let x = z.right in
      transplant t z x;
      x
    end
    else if z.right == t.nil then begin
      let x = z.left in
      transplant t z x;
      x
    end
    else begin
      let y = subtree_min t z.right in
      y_original_red := y.red;
      let x = y.right in
      if y.parent == z then x.parent <- y
      else begin
        transplant t y x;
        y.right <- z.right;
        y.right.parent <- y
      end;
      transplant t z y;
      y.left <- z.left;
      y.left.parent <- y;
      y.red <- z.red;
      x
    end
  in
  if not !y_original_red then delete_fixup t x;
  (* scrub the sentinel's parent, which delete_fixup may have read *)
  t.nil.parent <- t.nil;
  t.nil.red <- false;
  z.live <- false;
  z.left <- t.nil;
  z.right <- t.nil;
  z.parent <- t.nil;
  t.size <- t.size - 1

let remove t k =
  match find t k with
  | Some node ->
    remove_node t node;
    true
  | None -> false

(** Iterate nodes with [lo <= key < hi] in ascending order. The callback
    must not mutate the tree. *)
let iter_range t ~lo ~hi f =
  let rec go = function
    | None -> ()
    | Some node ->
      if String.compare node.key hi < 0 then begin
        f node;
        go (next t node)
      end
  in
  go (lower_bound t lo)

let fold_range t ~lo ~hi ~init f =
  let acc = ref init in
  iter_range t ~lo ~hi (fun node -> acc := f !acc node);
  !acc

(** Collect nodes in range; safe to mutate the tree afterwards. *)
let nodes_in_range t ~lo ~hi =
  List.rev (fold_range t ~lo ~hi ~init:[] (fun acc n -> n :: acc))

let iter t f =
  match min_node t with
  | None -> ()
  | Some first ->
    let rec go node =
      f node;
      match next t node with None -> () | Some n -> go n
    in
    go first

let to_list t = List.rev (fold_range t ~lo:"" ~hi:"\xff" ~init:[] (fun acc n -> (n.key, n.value) :: acc))

(** Count of keys in [lo, hi) — O(range size). *)
let count_range t ~lo ~hi = fold_range t ~lo ~hi ~init:0 (fun acc _ -> acc + 1)

(** Structural validation for tests: BST order, red-black invariants,
    parent pointers, size. Raises [Failure] with a description on
    violation. *)
let validate t =
  let fail msg = failwith ("Rbtree.validate: " ^ msg) in
  if t.root.red then fail "red root";
  if t.root != t.nil && t.root.parent != t.nil then fail "root parent";
  let count = ref 0 in
  let rec go node lo hi =
    if node == t.nil then 1
    else begin
      incr count;
      if not node.live then fail "dead node in tree";
      (match lo with Some l -> if String.compare node.key l <= 0 then fail "order lo" | None -> ());
      (match hi with Some h -> if String.compare node.key h >= 0 then fail "order hi" | None -> ());
      if node.red && (node.left.red || node.right.red) then fail "red child of red";
      if node.left != t.nil && node.left.parent != node then fail "left parent";
      if node.right != t.nil && node.right.parent != node then fail "right parent";
      let bl = go node.left lo (Some node.key) in
      let br = go node.right (Some node.key) hi in
      if bl <> br then fail "black height";
      bl + if node.red then 0 else 1
    end
  in
  ignore (go t.root None None);
  if !count <> t.size then fail "size mismatch"
