(** Intrusive doubly-linked LRU list.

    Pequod's eviction policy (§2.5) discards the least recently used data
    ranges under memory pressure. Entries are created at the
    most-recently-used end, [touch]ed on access, and harvested from the LRU
    end by [pop_lru]. *)

type 'a entry = {
  data : 'a;
  mutable next : 'a entry option; (* towards LRU end *)
  mutable prev : 'a entry option; (* towards MRU end *)
  mutable linked : bool;
}

type 'a t = {
  mutable mru : 'a entry option;
  mutable lru : 'a entry option;
  mutable count : int;
}

let create () = { mru = None; lru = None; count = 0 }

let length t = t.count
let data e = e.data
let is_linked e = e.linked

let unlink t e =
  if e.linked then begin
    (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
    (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
    e.prev <- None;
    e.next <- None;
    e.linked <- false;
    t.count <- t.count - 1
  end

let push_mru t e =
  e.prev <- None;
  e.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e;
  e.linked <- true;
  t.count <- t.count + 1

(** Insert fresh data at the MRU end, returning its entry. *)
let add t data =
  let e = { data; next = None; prev = None; linked = false } in
  push_mru t e;
  e

(** Move an entry to the MRU end (no-op if unlinked). *)
let touch t e =
  if e.linked then begin
    unlink t e;
    push_mru t e
  end

(** Remove an entry from the list. *)
let remove t e = unlink t e

(** Detach and return the least recently used entry. *)
let pop_lru t =
  match t.lru with
  | None -> None
  | Some e ->
    unlink t e;
    Some e.data

let iter_mru_to_lru t f =
  let rec go = function
    | None -> ()
    | Some e ->
      f e.data;
      go e.next
  in
  go t.mru
