lib/sim/cluster.ml: Array Event Hashtbl List Pequod_core Pequod_proto Pequod_store String
