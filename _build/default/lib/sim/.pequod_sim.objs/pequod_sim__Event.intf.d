lib/sim/event.mli:
