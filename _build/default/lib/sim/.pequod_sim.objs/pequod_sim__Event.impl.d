lib/sim/event.ml: Array Float
