(** Discrete-event simulation core: a time-ordered queue of thunks.

    Events at equal times run in scheduling order (a sequence number breaks
    ties), so simulations are deterministic. *)

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : event array;
  mutable len : int;
  mutable now : float;
  mutable next_seq : int;
  mutable executed : int;
}

let create () =
  { heap = Array.make 64 { time = 0.0; seq = 0; thunk = ignore };
    len = 0; now = 0.0; next_seq = 0; executed = 0 }

let now t = t.now
let pending t = t.len
let executed t = t.executed

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(** Schedule [thunk] to run at absolute time [time] (clamped to now). *)
let schedule_at t ~time thunk =
  let time = Float.max time t.now in
  if t.len = Array.length t.heap then begin
    let bigger = Array.make (2 * t.len) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  t.heap.(t.len) <- { time; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

(** Schedule [thunk] after [delay] simulated seconds. *)
let schedule t ~delay thunk = schedule_at t ~time:(t.now +. delay) thunk

(** Run the earliest event; false when the queue is empty. *)
let step t =
  if t.len = 0 then false
  else begin
    let ev = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    sift_down t 0;
    t.now <- ev.time;
    t.executed <- t.executed + 1;
    ev.thunk ();
    true
  end

(** Drain the queue (bounded by [max_events] as a runaway guard). *)
let run ?(max_events = max_int) t =
  let n = ref 0 in
  while !n < max_events && step t do
    incr n
  done;
  if t.len > 0 then failwith "Event.run: event budget exhausted"
