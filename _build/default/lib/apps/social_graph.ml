(** Synthetic Twitter-like social graph.

    Stands in for the 2009 crawl the paper samples (§5.1): follower counts
    follow a Zipf distribution (a few celebrities with enormous audiences,
    a long tail of small accounts), and each user follows a dispersed,
    popularity-biased set of accounts. Generation is deterministic in the
    seed, so experiments are reproducible and all backends see the same
    graph. *)

type t = {
  nusers : int;
  following : int array array; (* user -> sorted posters they follow *)
  followers : int array array; (* poster -> sorted followers *)
}

let nusers t = t.nusers
let following t u = t.following.(u)
let followers t p = t.followers.(p)
let follower_count t p = Array.length t.followers.(p)

(** Canonical user name: fixed width so names sort like ids. *)
let user_name u = Printf.sprintf "u%06d" u

let generate ~rng ~nusers ~avg_follows ?(zipf_s = 1.0) () =
  if nusers <= 1 then invalid_arg "Social_graph.generate: need at least 2 users";
  let popularity = Rng.Zipf.create ~n:nusers ~s:zipf_s in
  let following = Array.make nusers [||] in
  let follower_lists = Array.make nusers [] in
  for u = 0 to nusers - 1 do
    (* skewed out-degree: most users follow a few, some follow many *)
    let k = max 1 (int_of_float (float_of_int avg_follows *. (0.25 +. (1.5 *. Rng.float rng)))) in
    let seen = Hashtbl.create (2 * k) in
    let rec draw remaining guard =
      if remaining > 0 && guard < 20 * k then begin
        let p = Rng.Zipf.sample popularity rng in
        if p <> u && not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          follower_lists.(p) <- u :: follower_lists.(p);
          draw (remaining - 1) guard
        end
        else draw remaining (guard + 1)
      end
    in
    draw k 0;
    let fs = Hashtbl.fold (fun p () acc -> p :: acc) seen [] in
    let fs = Array.of_list fs in
    Array.sort compare fs;
    following.(u) <- fs
  done;
  let followers =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      follower_lists
  in
  { nusers; following; followers }

let edge_count t = Array.fold_left (fun acc f -> acc + Array.length f) 0 t.following

(** Per-user posting weight: proportional to log(follower count), as in
    §5.1 ("more popular users tweet more often"). *)
let posting_weights t =
  Array.init t.nusers (fun u -> log (float_of_int (follower_count t u) +. 2.0))
