lib/apps/twip.ml: Array List Option Pequod_baselines Pequod_core Pequod_db Pequod_proto Printf Rng Social_graph String Strkey Unix Workload
