lib/apps/workload.ml: Array Hashtbl Rng Social_graph
