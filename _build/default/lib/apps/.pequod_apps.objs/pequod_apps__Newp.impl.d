lib/apps/newp.ml: List Option Pequod_baselines Pequod_core Pequod_proto Printf Rng String Strkey Twip Unix
