lib/apps/social_graph.ml: Array Hashtbl Printf Rng
