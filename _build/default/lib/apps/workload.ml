(** Twip workload generation (§5.1).

    The op mix models the paper's client behaviour: 5% initial timeline
    scans (logins), 9% new subscriptions, 85% incremental timeline checks,
    1% posts. A fraction of users is active; each active user logs in,
    repeatedly checks, and posts with probability proportional to the log
    of their follower count. Times are a global logical counter encoded
    fixed-width so they sort correctly. *)

type op =
  | Login of int (* initial timeline scan: everything recent *)
  | Check of int (* incremental scan since last check *)
  | Subscribe of int * int (* user follows poster *)
  | Post of int * int (* poster, time *)

type t = {
  ops : op array;
  nposts : int;
  nchecks : int;
  nlogins : int;
  nsubs : int;
}

let mix_default = (0.05, 0.09, 0.85, 0.01)

(** Generate [total_ops] operations over [active] users of the graph.
    [mix] is (login, subscribe, check, post) and defaults to the paper's
    5/9/85/1. Posts receive strictly increasing times starting at
    [first_time]. *)
let generate ~rng ~graph ?(active_fraction = 0.7) ?(mix = mix_default) ~total_ops
    ?(first_time = 1_000_000) () =
  let nusers = Social_graph.nusers graph in
  let nactive = max 1 (int_of_float (float_of_int nusers *. active_fraction)) in
  (* active users are a random sample *)
  let ids = Array.init nusers (fun i -> i) in
  Rng.shuffle rng ids;
  let active = Array.sub ids 0 nactive in
  let posting = Rng.Alias.create (Array.map (fun u -> (Social_graph.posting_weights graph).(u))
                                    (Array.init nusers (fun i -> i))) in
  let l, s, c, _p = mix in
  let time = ref first_time in
  let nposts = ref 0 and nchecks = ref 0 and nlogins = ref 0 and nsubs = ref 0 in
  let logged_in = Hashtbl.create nactive in
  let ops =
    Array.init total_ops (fun _ ->
        let r = Rng.float rng in
        if r < l then begin
          incr nlogins;
          let u = active.(Rng.int rng nactive) in
          Hashtbl.replace logged_in u ();
          Login u
        end
        else if r < l +. s then begin
          incr nsubs;
          let u = active.(Rng.int rng nactive) in
          let p = Rng.Alias.sample posting rng in
          let p = if p = u then (p + 1) mod nusers else p in
          Subscribe (u, p)
        end
        else if r < l +. s +. c then begin
          incr nchecks;
          Check (active.(Rng.int rng nactive))
        end
        else begin
          incr nposts;
          incr time;
          Post (Rng.Alias.sample posting rng, !time)
        end)
  in
  { ops; nposts = !nposts; nchecks = !nchecks; nlogins = !nlogins; nsubs = !nsubs }

(** A check+post-only workload for the materialization experiment (Fig 8):
    [nchecks] timeline checks spread uniformly over the active users,
    interleaved with [nposts] posts. *)
let checks_and_posts ~rng ~graph ~active_fraction ~nchecks ~nposts ?(first_time = 1_000_000) () =
  let nusers = Social_graph.nusers graph in
  let nactive = max 1 (int_of_float (float_of_int nusers *. active_fraction)) in
  let ids = Array.init nusers (fun i -> i) in
  Rng.shuffle rng ids;
  let active = Array.sub ids 0 nactive in
  let posting = Rng.Alias.create (Social_graph.posting_weights graph) in
  let total = nchecks + nposts in
  let time = ref first_time in
  let ops =
    Array.init total (fun i ->
        (* deterministic interleave with the right ratio *)
        if nposts > 0 && i mod (max 1 (total / nposts)) = 0 && !time - first_time < nposts then begin
          incr time;
          Post (Rng.Alias.sample posting rng, !time)
        end
        else Check (active.(Rng.int rng nactive)))
  in
  { ops; nposts; nchecks; nlogins = 0; nsubs = 0 }
