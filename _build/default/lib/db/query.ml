(** A select-project-join query executor over {!Relation}s.

    Queries are built programmatically (no SQL parser): a list of table
    terms joined by column equalities, with constant and range predicates.
    Execution is nested-loop in term order; each inner term is accessed
    through its primary key prefix or a matching secondary index when the
    already-bound join columns allow it, otherwise by filtered scan. This
    mirrors how the paper's timeline query

    {v select p.time, p.poster, p.tweet from s, p
       where s.user='ann' and s.poster=p.poster and p.time>=100 v}

    runs on an indexed relational engine. *)

type term = {
  relation : Relation.t;
  alias : string;
}

type pred =
  | Const of string * string * string (* alias.col = value *)
  | Join of string * string * string * string (* a1.c1 = a2.c2 *)
  | Ge of string * string * string (* alias.col >= value *)
  | Lt of string * string * string (* alias.col < value *)

type t = {
  terms : term list;
  preds : pred list;
  select : (string * string) list; (* (alias, column) projection *)
}

type binding = (string * string array) list (* alias -> row *)

let make ~terms ~preds ~select = { terms; preds; select }

let col_value (binding : binding) alias col_idx =
  match List.assoc_opt alias binding with
  | Some row -> Some row.(col_idx)
  | None -> None

(* Predicates fully decided by the rows bound so far. *)
let pred_applies q binding pred =
  let resolve alias col =
    match List.find_opt (fun t -> String.equal t.alias alias) q.terms with
    | None -> invalid_arg ("unknown alias " ^ alias)
    | Some t -> col_value binding alias (Relation.column_index (Relation.schema t.relation) col)
  in
  match pred with
  | Const (a, c, v) -> (
    match resolve a c with Some x -> Some (String.equal x v) | None -> None)
  | Ge (a, c, v) -> (
    match resolve a c with Some x -> Some (String.compare x v >= 0) | None -> None)
  | Lt (a, c, v) -> (
    match resolve a c with Some x -> Some (String.compare x v < 0) | None -> None)
  | Join (a1, c1, a2, c2) -> (
    match (resolve a1 c1, resolve a2 c2) with
    | Some x, Some y -> Some (String.equal x y)
    | _ -> None)

(* Constant and join-derived equalities on [term]'s columns, given the
   current binding: used to pick an access path. *)
let known_equalities q binding term =
  List.filter_map
    (fun pred ->
      match pred with
      | Const (a, c, v) when String.equal a term.alias -> Some (c, v)
      | Join (a1, c1, a2, c2) when String.equal a1 term.alias -> (
        match
          List.find_opt (fun t -> String.equal t.alias a2) q.terms
        with
        | Some t2 -> (
          match col_value binding a2 (Relation.column_index (Relation.schema t2.relation) c2) with
          | Some v -> Some (c1, v)
          | None -> None)
        | None -> None)
      | Join (a2, c2, a1, c1) when String.equal a1 term.alias -> (
        match
          List.find_opt (fun t -> String.equal t.alias a2) q.terms
        with
        | Some t2 -> (
          match col_value binding a2 (Relation.column_index (Relation.schema t2.relation) c2) with
          | Some v -> Some (c1, v)
          | None -> None)
        | None -> None)
      | _ -> None)
    q.preds

(* Access rows of [term] consistent with the known equalities: primary key
   prefix when the equalities cover a pk prefix (extended by range
   predicates on the next key column), else a secondary index, else a
   scan. *)
let access q term (eqs : (string * string) list) f =
  let rel = term.relation in
  let schema = Relation.schema rel in
  let lookup c = List.assoc_opt schema.Relation.columns.(c) eqs in
  (* longest pk prefix covered by equalities *)
  let rec pk_prefix i acc =
    if i >= Array.length schema.Relation.key then List.rev acc
    else
      match lookup schema.Relation.key.(i) with
      | Some v -> pk_prefix (i + 1) (v :: acc)
      | None -> List.rev acc
  in
  (* range predicates on the pk column right after the prefix narrow the
     scan (the timeline check's "time >= since") *)
  let range_on col =
    List.fold_left
      (fun (ge, lt) pred ->
        match pred with
        | Ge (a, c, v) when String.equal a term.alias && String.equal c col -> (Some v, lt)
        | Lt (a, c, v) when String.equal a term.alias && String.equal c col -> (ge, Some v)
        | _ -> (ge, lt))
      (None, None) q.preds
  in
  match pk_prefix 0 [] with
  | _ :: _ as prefix ->
    let nprefix = List.length prefix in
    let base = String.concat "|" prefix ^ "|" in
    if nprefix < Array.length schema.Relation.key then begin
      let next_col = schema.Relation.columns.(schema.Relation.key.(nprefix)) in
      match range_on next_col with
      | None, None -> Relation.scan_prefix rel prefix f
      | ge, lt ->
        let lo = match ge with Some v -> base ^ v | None -> base in
        let hi = match lt with Some v -> base ^ v | None -> Strkey.prefix_upper base in
        Relation.scan_pk rel ~lo ~hi f
    end
    else Relation.scan_prefix rel prefix f
  | [] -> (
    (* try any secondary index fully covered by equalities *)
    let indexed =
      List.find_map
        (fun (cols, _) ->
          let names = Array.to_list (Array.map (fun i -> schema.Relation.columns.(i)) cols) in
          let values = List.map (fun n -> List.assoc_opt n eqs) names in
          if List.for_all Option.is_some values then
            Some (names, List.map Option.get values)
          else None)
        rel.Relation.indexes
    in
    match indexed with
    | Some (columns, values) -> Relation.scan_index rel ~columns ~values f
    | None -> Relation.iter rel f)

(** Run the query, calling [f] with each projected result row. *)
let exec q f =
  let rec loop terms binding =
    match terms with
    | [] ->
      let result =
        Array.of_list
          (List.map
             (fun (alias, col) ->
               match List.find_opt (fun t -> String.equal t.alias alias) q.terms with
               | None -> invalid_arg ("unknown alias " ^ alias)
               | Some t -> (
                 match
                   col_value binding alias (Relation.column_index (Relation.schema t.relation) col)
                 with
                 | Some v -> v
                 | None -> invalid_arg "unbound projection"))
             q.select)
      in
      f result
    | term :: rest ->
      let eqs = known_equalities q binding term in
      access q term eqs (fun row ->
          let binding' = (term.alias, row) :: binding in
          let ok =
            List.for_all
              (fun pred ->
                match pred_applies q binding' pred with Some b -> b | None -> true)
              q.preds
          in
          if ok then loop rest binding')
  in
  loop q.terms []

let exec_list q =
  let acc = ref [] in
  exec q (fun row -> acc := row :: !acc);
  List.rev !acc
