lib/db/db.ml: Array Bytes Char Hashtbl List Relation String
