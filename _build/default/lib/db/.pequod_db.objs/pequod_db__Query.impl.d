lib/db/query.ml: Array List Option Relation String Strkey
