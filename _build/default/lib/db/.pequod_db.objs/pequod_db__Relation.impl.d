lib/db/relation.ml: Array List Option Pequod_store Printf String Strkey
