(** The mini relational database: named relations, row triggers, and
    Postgres-style notification channels.

    Triggers provide the paper's "materialized views by trigger" baseline
    (§5.2): application code registers row-level callbacks that maintain
    derived tables. Notification channels model [notify]-based cache
    invalidation (§2): a Pequod deployment subscribes to a channel and the
    database forwards every change to relevant tables, which is how the
    write-around deployment keeps the cache fresh.

    A write-ahead-log byte counter models the logging work a durable
    engine performs even with fsync disabled, as in the paper's tuned
    PostgreSQL setup. *)

type change = Row_insert | Row_delete

type trigger = change -> string array -> unit

type t = {
  relations : (string, Relation.t) Hashtbl.t;
  triggers : (string, trigger list ref) Hashtbl.t;
  listeners : (string, (change -> string array -> unit) list ref) Hashtbl.t;
  mutable wal_bytes : int;
  mutable statements : int;
  mutable overhead_loops : int;
  scratchpad : Bytes.t;
  mutable overhead_sink : int;
}

let create () =
  {
    relations = Hashtbl.create 16;
    triggers = Hashtbl.create 16;
    listeners = Hashtbl.create 16;
    wal_bytes = 0;
    statements = 0;
    overhead_loops = 0;
    scratchpad = Bytes.make 128 'x';
    overhead_sink = 0;
  }

(** Configure the per-statement overhead model: real hashing work standing
    in for the parse/plan/MVCC/WAL-checksum cost a durable relational
    engine pays on every statement even with relaxed durability (the
    paper's tuned-PostgreSQL setup). 0 (the default) disables it. *)
let set_statement_overhead t loops = t.overhead_loops <- loops

(** Account one statement: bump counters and perform the modeled
    per-statement work. Called internally by [insert]/[delete]; query
    layers call it once per executed query. *)
let statement_begin t =
  t.statements <- t.statements + 1;
  if t.overhead_loops > 0 then begin
    let h = ref 5381 in
    for _ = 1 to t.overhead_loops do
      for i = 0 to Bytes.length t.scratchpad - 1 do
        h := (!h * 33) lxor Char.code (Bytes.unsafe_get t.scratchpad i)
      done
    done;
    t.overhead_sink <- !h
  end

(** Create a relation. [key] names the primary key columns. *)
let create_table t ~name ~columns ~key =
  if Hashtbl.mem t.relations name then invalid_arg ("duplicate table " ^ name);
  let rel = Relation.create ~name ~columns ~key in
  Hashtbl.add t.relations name rel;
  rel

let table t name =
  match Hashtbl.find_opt t.relations name with
  | Some rel -> rel
  | None -> invalid_arg ("no such table: " ^ name)

let add_index t ~table:name ~columns = Relation.add_index (table t name) columns

(** Register a row-level trigger (fires after the change is applied). *)
let create_trigger t ~table:name fn =
  let cell =
    match Hashtbl.find_opt t.triggers name with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.add t.triggers name c;
      c
  in
  cell := fn :: !cell

(** Subscribe to changes of a table (Postgres listen/notify analogue). *)
let listen t ~table:name fn =
  let cell =
    match Hashtbl.find_opt t.listeners name with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.add t.listeners name c;
      c
  in
  cell := fn :: !cell

let fire t name change row =
  (match Hashtbl.find_opt t.triggers name with
  | Some fns -> List.iter (fun fn -> fn change row) !fns
  | None -> ());
  match Hashtbl.find_opt t.listeners name with
  | Some fns -> List.iter (fun fn -> fn change row) !fns
  | None -> ()

let row_bytes row = Array.fold_left (fun acc c -> acc + String.length c + 4) 16 row

(** Insert a row (replacing any row with the same primary key), firing
    triggers and notifications. *)
let insert t ~table:name row =
  statement_begin t;
  let rel = table t name in
  let row = Array.of_list row in
  t.wal_bytes <- t.wal_bytes + row_bytes row;
  (match Relation.insert rel row with
  | Some old -> fire t name Row_delete old
  | None -> ());
  fire t name Row_insert row

(** Delete a row by primary key values. *)
let delete t ~table:name key_values =
  statement_begin t;
  let rel = table t name in
  match Relation.delete rel key_values with
  | None -> false
  | Some row ->
    t.wal_bytes <- t.wal_bytes + row_bytes row;
    fire t name Row_delete row;
    true

let find t ~table:name key_values = Relation.find (table t name) key_values

let wal_bytes t = t.wal_bytes
let statements t = t.statements

let total_rows t = Hashtbl.fold (fun _ rel acc -> acc + Relation.row_count rel) t.relations 0
