(** A relation: schema, rows, primary key, secondary indexes.

    This is the storage layer of the mini relational database used as the
    paper's PostgreSQL stand-in (§5.2) and as the persistent backing store
    of a write-around deployment (§2). Rows are arrays of strings. The
    primary key is an ordered B-tree-like index (our red-black tree);
    secondary indexes map column prefixes to primary keys, also ordered.

    The deliberate heaviness — generic tuples, per-row index maintenance,
    encoded keys — is the point: it reproduces the machinery a relational
    engine pays on every operation. *)

module Rbtree = Pequod_store.Rbtree

type schema = {
  name : string;
  columns : string array;
  key : int array; (* indexes of primary key columns, in order *)
}

type t = {
  schema : schema;
  rows : string array Rbtree.t; (* pk-encoded -> row *)
  mutable indexes : (int array * unit Rbtree.t) list; (* cols -> (encoded -> ()) *)
  mutable row_count : int;
}

let encode_cols row cols =
  String.concat "|" (Array.to_list (Array.map (fun i -> row.(i)) cols))

let pk_of t row = encode_cols row t.schema.key

let column_index schema name =
  let rec go i =
    if i >= Array.length schema.columns then
      invalid_arg (Printf.sprintf "relation %s has no column %s" schema.name name)
    else if String.equal schema.columns.(i) name then i
    else go (i + 1)
  in
  go 0

let create ~name ~columns ~key =
  let schema = { name; columns = Array.of_list columns; key = [||] } in
  let key = Array.of_list (List.map (column_index schema) key) in
  let schema = { schema with key } in
  { schema; rows = Rbtree.create ~dummy:[||] (); indexes = []; row_count = 0 }

let schema t = t.schema
let row_count t = t.row_count

(** Add a secondary index on the named columns (ordered, supports prefix
    and range scans). Existing rows are indexed immediately. *)
let add_index t columns =
  let cols = Array.of_list (List.map (column_index t.schema) columns) in
  let idx = Rbtree.create ~dummy:() () in
  Rbtree.iter t.rows (fun node ->
      let row = node.Rbtree.value in
      ignore (Rbtree.insert idx (encode_cols row cols ^ "|" ^ pk_of t row) ()));
  t.indexes <- (cols, idx) :: t.indexes

let index_for t cols =
  let cols = Array.of_list (List.map (column_index t.schema) cols) in
  List.find_opt (fun (ic, _) -> ic = cols) t.indexes

(** Insert or replace by primary key. Returns the replaced row, if any. *)
let insert t row =
  if Array.length row <> Array.length t.schema.columns then
    invalid_arg ("arity mismatch inserting into " ^ t.schema.name);
  let pk = pk_of t row in
  let old = Option.map (fun n -> n.Rbtree.value) (Rbtree.find t.rows pk) in
  ignore (Rbtree.insert t.rows pk row);
  (match old with
  | Some orow ->
    List.iter
      (fun (cols, idx) -> ignore (Rbtree.remove idx (encode_cols orow cols ^ "|" ^ pk)))
      t.indexes
  | None -> t.row_count <- t.row_count + 1);
  List.iter
    (fun (cols, idx) -> ignore (Rbtree.insert idx (encode_cols row cols ^ "|" ^ pk) ()))
    t.indexes;
  old

(** Delete by primary key values. Returns the deleted row, if any. *)
let delete t key_values =
  let pk = String.concat "|" key_values in
  match Rbtree.find t.rows pk with
  | None -> None
  | Some node ->
    let row = node.Rbtree.value in
    Rbtree.remove_node t.rows node;
    t.row_count <- t.row_count - 1;
    List.iter
      (fun (cols, idx) -> ignore (Rbtree.remove idx (encode_cols row cols ^ "|" ^ pk)))
      t.indexes;
    Some row

let find t key_values =
  Option.map (fun n -> n.Rbtree.value) (Rbtree.find t.rows (String.concat "|" key_values))

(** Scan rows whose encoded primary key lies in [\[lo, hi)]. *)
let scan_pk t ~lo ~hi f = Rbtree.iter_range t.rows ~lo ~hi (fun n -> f n.Rbtree.value)

(** Scan rows whose primary key starts with the given column values. *)
let scan_prefix t prefix_values f =
  let p = String.concat "|" prefix_values in
  let lo = if p = "" then "" else p ^ "|" in
  let hi = if p = "" then "\xfe" else Strkey.prefix_upper lo in
  (* a row whose whole pk equals the prefix also matches *)
  (match Rbtree.find t.rows p with Some n -> f n.Rbtree.value | None -> ());
  scan_pk t ~lo ~hi f

(** Scan via a secondary index: rows whose indexed columns equal the given
    values. Falls back to a full scan when no index matches (counted so
    benchmarks can report it). *)
let scan_index t ~columns ~values f =
  match index_for t columns with
  | Some (_, idx) ->
    let p = String.concat "|" values in
    let lo = p ^ "|" in
    let hi = Strkey.prefix_upper lo in
    Rbtree.iter_range idx ~lo ~hi (fun n ->
        let key = n.Rbtree.key in
        (* strip "values|" to recover the pk *)
        let pk = String.sub key (String.length lo) (String.length key - String.length lo) in
        match Rbtree.find t.rows pk with
        | Some rn -> f rn.Rbtree.value
        | None -> ())
  | None ->
    let cols = Array.of_list (List.map (column_index t.schema) columns) in
    let vals = Array.of_list values in
    Rbtree.iter t.rows (fun n ->
        let row = n.Rbtree.value in
        let ok = ref true in
        Array.iteri (fun i c -> if not (String.equal row.(c) vals.(i)) then ok := false) cols;
        if !ok then f row)

let iter t f = Rbtree.iter t.rows (fun n -> f n.Rbtree.value)

let to_list t =
  let acc = ref [] in
  iter t (fun row -> acc := row :: !acc);
  List.rev !acc
