(** Plain-text aligned tables for benchmark output, in the style of the
    paper's figures. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers ~aligns =
  if List.length headers <> List.length aligns then
    invalid_arg "Tablefmt.create: headers/aligns length mismatch";
  { title; headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- row :: t.rows

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let render t =
  let rows = List.rev t.rows in
  let cols = List.length t.headers in
  let widths = Array.make cols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure t.headers;
  List.iter measure rows;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row row =
    let cells = List.mapi (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell) row in
    "  " ^ String.concat "  " cells
  in
  let sep =
    "  " ^ String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)
