(** Measurement helpers for the benchmark harness. *)

(** Welford's online mean/variance. *)
module Running = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
end

(** Collected samples with percentile queries (sorts on demand). *)
module Samples = struct
  type t = { mutable data : float array; mutable len : int; mutable sorted : bool }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let slice = Array.sub t.data 0 t.len in
      Array.sort compare slice;
      Array.blit slice 0 t.data 0 t.len;
      t.sorted <- true
    end

  (** [percentile t 0.99] with linear interpolation; 0 if empty. *)
  let percentile t p =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      let rank = p *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
    end

  let mean t =
    if t.len = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.len - 1 do sum := !sum +. t.data.(i) done;
      !sum /. float_of_int t.len
    end

  let max t =
    if t.len = 0 then 0.0
    else begin
      ensure_sorted t;
      t.data.(t.len - 1)
    end
end

(** Named monotonic counters, used to account work (RPCs, bytes, tree ops). *)
module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let bump ?(n = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t name (ref n)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset t = Hashtbl.reset t
end

(** Wall-clock timing of a thunk, in seconds. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)
