lib/util/strkey.ml: Char String
