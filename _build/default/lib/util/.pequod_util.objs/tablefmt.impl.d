lib/util/tablefmt.ml: Array Buffer List Printf String
