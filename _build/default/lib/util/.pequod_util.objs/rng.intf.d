lib/util/rng.mli:
