lib/util/stats.ml: Array Float Hashtbl List String Unix
