lib/util/strkey.mli:
