(** Lexicographic key-space helpers.

    Pequod keys are byte strings ordered lexicographically, with the byte
    [0xff] reserved so that every prefix has a finite least upper bound
    and all ranges are half-open [\[lo, hi)] pairs of plain strings. *)

exception Invalid_key of string

(** Raise {!Invalid_key} if the key contains [0xff]. *)
val validate : string -> unit

val is_valid : string -> bool

(** Least string greater than every valid key with the given prefix (the
    paper's [t|ann|+] bound). *)
val prefix_upper : string -> string

(** Least key strictly greater than the argument. *)
val key_after : string -> string

(** [in_range ~lo ~hi k] tests [lo <= k < hi]. *)
val in_range : lo:string -> hi:string -> string -> bool

(** Do two half-open ranges intersect? Empty ranges never overlap. *)
val range_overlaps : string * string -> string * string -> bool

(** Intersection of two half-open ranges, if non-empty. *)
val range_inter : string * string -> string * string -> (string * string) option

val max_str : string -> string -> string
val min_str : string -> string -> string
val common_prefix : string -> string -> string

(** Fixed-width zero-padded decimal: values of equal width compare
    lexicographically in numeric order (required of slots that
    participate in range narrowing). *)
val encode_int : width:int -> int -> string

val decode_int : string -> int
val time_width : int
val encode_time : int -> string

(** Split on / join with ['|']. *)
val split : string -> string list

val join : string list -> string
