(** Lexicographic key-space helpers.

    Pequod keys are byte strings ordered lexicographically. Keys must not
    contain the byte [0xff]; this guarantees that every prefix has a finite
    least upper bound, so all ranges can be represented as half-open
    [\[lo, hi)] pairs of plain strings (the paper's [t|ann|+] notation). *)

exception Invalid_key of string

(** Raise [Invalid_key] if [k] contains the reserved byte [0xff]. *)
let validate k =
  String.iter (fun c -> if Char.code c = 0xff then raise (Invalid_key k)) k

let is_valid k =
  match validate k with () -> true | exception Invalid_key _ -> false

(** [prefix_upper p] is the least string greater than every valid key having
    prefix [p]: the last byte of [p] incremented. Raises [Invalid_key] on the
    empty string or a string of [0xff] bytes (not a valid key prefix). *)
let prefix_upper p =
  let n = String.length p in
  let rec bump i =
    if i < 0 then raise (Invalid_key p)
    else
      let c = Char.code p.[i] in
      if c < 0xff then String.sub p 0 i ^ String.make 1 (Char.chr (c + 1))
      else bump (i - 1)
  in
  bump (n - 1)

(** Least key strictly greater than [k]: append a NUL byte. Used to express
    [get k] as the scan [\[k, key_after k)]. *)
let key_after k = k ^ "\x00"

(** [in_range ~lo ~hi k] tests [lo <= k < hi]. *)
let in_range ~lo ~hi k = String.compare lo k <= 0 && String.compare k hi < 0

(** [range_overlaps (a, b) (c, d)] tests whether the half-open ranges
    intersect. Empty ranges never overlap anything. *)
let range_overlaps (a, b) (c, d) =
  String.compare a b < 0 && String.compare c d < 0
  && String.compare a d < 0 && String.compare c b < 0

(** Intersection of two half-open ranges, if non-empty. *)
let range_inter (a, b) (c, d) =
  let lo = if String.compare a c >= 0 then a else c in
  let hi = if String.compare b d <= 0 then b else d in
  if String.compare lo hi < 0 then Some (lo, hi) else None

let max_str a b = if String.compare a b >= 0 then a else b
let min_str a b = if String.compare a b <= 0 then a else b

(** [common_prefix a b] is the longest common prefix of [a] and [b]. *)
let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  String.sub a 0 (go 0)

(** Fixed-width, zero-padded decimal encoding. All values encoded with the
    same [width] compare lexicographically in numeric order, which is what
    pattern range narrowing requires of numeric slots. *)
let encode_int ~width n =
  if n < 0 then invalid_arg "Strkey.encode_int: negative";
  let s = string_of_int n in
  let pad = width - String.length s in
  if pad < 0 then invalid_arg "Strkey.encode_int: width too small"
  else String.make pad '0' ^ s

let decode_int s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> invalid_arg ("Strkey.decode_int: " ^ s)

(** Standard widths used by the example applications. *)
let time_width = 10

let encode_time t = encode_int ~width:time_width t

(** Split a key on the ['|'] separator. *)
let split k = String.split_on_char '|' k

(** Join components with ['|']. *)
let join parts = String.concat "|" parts
