lib/proto/frame.ml: Bytes Char List String
