lib/proto/message.ml: Buffer Codec List Pequod_core Printf String
