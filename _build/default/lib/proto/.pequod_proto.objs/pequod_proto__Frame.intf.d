lib/proto/frame.mli:
