lib/proto/codec.ml: Buffer Char List String
