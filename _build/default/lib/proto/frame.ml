(** Length-prefixed framing for the TCP transport.

    Each frame is a 4-byte big-endian length followed by the message body.
    The decoder is incremental: feed it whatever bytes arrived and it
    yields every completed frame, keeping the remainder buffered — exactly
    what a readiness-driven ([select]) event loop needs. *)

let max_frame = 64 * 1024 * 1024

exception Frame_too_large of int

let encode body =
  let n = String.length body in
  if n > max_frame then raise (Frame_too_large n);
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (n land 0xff);
  Bytes.to_string header ^ body

type decoder = { mutable pending : string }

let decoder () = { pending = "" }

let feed t chunk =
  t.pending <- t.pending ^ chunk;
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    let buf = t.pending in
    if String.length buf < 4 then continue := false
    else begin
      let n =
        (Char.code buf.[0] lsl 24) lor (Char.code buf.[1] lsl 16) lor (Char.code buf.[2] lsl 8)
        lor Char.code buf.[3]
      in
      if n > max_frame then raise (Frame_too_large n);
      if String.length buf < 4 + n then continue := false
      else begin
        frames := String.sub buf 4 n :: !frames;
        t.pending <- String.sub buf (4 + n) (String.length buf - 4 - n)
      end
    end
  done;
  List.rev !frames

let buffered t = String.length t.pending
