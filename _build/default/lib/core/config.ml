(** Server configuration knobs.

    The optimization toggles exist so the §4 ablation experiments can
    measure each mechanism: output hints (§4.2), value sharing (§4.3),
    updater combining (§3.2), subtables (§4.1, via [table_config]) and the
    check-source maintenance policy (§3.2). Production use keeps the
    defaults, which match the paper's prototype. *)

type t = {
  mutable output_hints : bool; (* O(1) appends via last-update pointer *)
  mutable value_sharing : bool; (* copy joins share the source string *)
  mutable combine_updaters : bool; (* merge same-range updaters *)
  mutable lazy_checks : bool; (* check sources invalidate lazily (paper default) *)
  mutable pending_log_limit : int; (* partial-invalidation log cap; beyond it
                                      escalate to complete invalidation *)
  mutable memory_limit : int option; (* eviction high-water mark, bytes *)
  mutable now : unit -> float; (* clock, for snapshot joins *)
  mutable table_config : string -> int option; (* table -> subtable depth *)
}

let default () =
  {
    output_hints = true;
    value_sharing = true;
    combine_updaters = true;
    lazy_checks = true;
    pending_log_limit = 64;
    memory_limit = None;
    now = Unix.gettimeofday;
    table_config = (fun _ -> None);
  }
