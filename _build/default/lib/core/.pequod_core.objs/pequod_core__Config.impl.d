lib/core/config.ml: Unix
