lib/core/server.mli: Config Pequod_pattern Stats
