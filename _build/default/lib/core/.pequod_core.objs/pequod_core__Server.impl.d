lib/core/server.ml: Array Buffer Config Float Hashtbl List Operator Option Pequod_pattern Pequod_store Printf Stats String Strkey
