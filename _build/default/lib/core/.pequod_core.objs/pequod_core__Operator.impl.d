lib/core/operator.ml: List Pequod_pattern String Strkey
