lib/net/net_server.ml: Bytes List Logs Pequod_core Pequod_proto Printexc Printf String Unix
