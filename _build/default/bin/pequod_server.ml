(* pequod-server: a real network-facing Pequod cache server.

   Single-threaded and event-driven, like the paper's implementation: a
   Unix.select readiness loop multiplexes any number of client
   connections, each speaking the length-prefixed wire protocol of
   Pequod_proto. Cache joins can be installed at startup (--join) or by
   clients at runtime (add-join requests).

   Usage:
     dune exec bin/pequod_server.exe -- --port 7077 \
       --join 't|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>'
*)

module Net_server = Pequod_server_lib.Net_server

open Cmdliner

let port =
  Arg.(value & opt int 7077 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")

let joins =
  Arg.(
    value & opt_all string []
    & info [ "j"; "join" ] ~docv:"JOIN" ~doc:"Cache join to install at startup (repeatable).")

let memory_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "memory-limit" ] ~docv:"BYTES" ~doc:"Evict computed ranges above this footprint.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log client connections and joins.")

let main port joins memory_limit verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.App));
  match Net_server.create ~port ~joins ~memory_limit with
  | t ->
    Logs.app (fun m ->
        m "pequod-server listening on port %d with %d joins" (Net_server.port t)
          (List.length joins));
    Net_server.run t;
    0
  | exception Failure msg ->
    Logs.err (fun m -> m "%s" msg);
    1

let cmd =
  Cmd.v
    (Cmd.info "pequod-server" ~doc:"A Pequod cache server speaking the binary wire protocol")
    Term.(const main $ port $ joins $ memory_limit $ verbose)

let () = if not !Sys.interactive then exit (Cmd.eval' cmd)
