bin/pequod_server.mli:
