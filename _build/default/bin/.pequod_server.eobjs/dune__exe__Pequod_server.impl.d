bin/pequod_server.ml: Arg Cmd Cmdliner Fmt_tty List Logs Logs_fmt Pequod_server_lib Sys Term
