bin/pequod_cli.mli:
