bin/pequod_cli.ml: Arg Array Bytes Cmd Cmdliner Fun List Pequod_proto Printf String Sys Term Unix
