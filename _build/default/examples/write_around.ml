(* The write-around deployment (§2): applications write to the persistent
   database; the database forwards changes to Pequod (Postgres
   notify-style); applications read computed data from the cache.

   Run with: dune exec examples/write_around.exe *)

module Db = Pequod_db.Db
module Server = Pequod_core.Server

let () =
  (* the persistent store: posts and subscriptions as relations *)
  let db = Db.create () in
  let _ = Db.create_table db ~name:"posts" ~columns:[ "poster"; "time"; "tweet" ] ~key:[ "poster"; "time" ] in
  let _ = Db.create_table db ~name:"subs" ~columns:[ "user"; "poster" ] ~key:[ "user"; "poster" ] in

  (* the cache, with the timeline join *)
  let cache = Server.create () in
  Server.add_join_exn cache
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>";

  (* wire the database's notifications into the cache *)
  Db.listen db ~table:"posts" (fun change row ->
      let key = Printf.sprintf "p|%s|%s" row.(0) row.(1) in
      match change with
      | Db.Row_insert -> Server.put cache key row.(2)
      | Db.Row_delete -> Server.remove cache key);
  Db.listen db ~table:"subs" (fun change row ->
      let key = Printf.sprintf "s|%s|%s" row.(0) row.(1) in
      match change with
      | Db.Row_insert -> Server.put cache key "1"
      | Db.Row_delete -> Server.remove cache key);

  (* the application only ever writes to the database... *)
  Db.insert db ~table:"subs" [ "ann"; "bob" ];
  Db.insert db ~table:"posts" [ "bob"; "0000000100"; "hello through the database" ];

  (* ...and reads computed timelines from the cache *)
  let timeline () = Server.scan cache ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|") in
  print_endline "timeline read from the cache:";
  List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) (timeline ());

  Db.insert db ~table:"posts" [ "bob"; "0000000200"; "still write-around" ];
  ignore (Db.delete db ~table:"posts" [ "bob"; "0000000100" ]);
  print_endline "\nafter one more insert and one delete in the database:";
  List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) (timeline ());

  Printf.printf "\ndatabase: %d rows, %d statements, %d WAL bytes\n" (Db.total_rows db)
    (Db.statements db) (Db.wal_bytes db)
