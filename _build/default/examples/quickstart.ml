(* Quickstart: the paper's §2.2 walk-through.

   A cache join relates computed timelines to base posts and
   subscriptions; Pequod materializes on demand and keeps results fresh.

   Run with: dune exec examples/quickstart.exe *)

module Server = Pequod_core.Server

let show title pairs =
  Printf.printf "%s\n" title;
  List.iter (fun (k, v) -> Printf.printf "  %-24s -> %s\n" k v) pairs;
  print_newline ()

let () =
  let cache = Server.create () in

  (* the Twip timeline join: t|user|time|poster copies p|poster|time
     whenever s|user|poster exists *)
  Server.add_join_exn cache
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>";

  (* base data: subscriptions and posts *)
  Server.put cache "s|ann|bob" "1";
  Server.put cache "s|ann|liz" "1";
  Server.put cache "p|bob|0000000100" "hello, world!";
  Server.put cache "p|liz|0000000124" "i'm hungry";
  Server.put cache "p|jim|0000000130" "(ann doesn't follow jim)";

  (* the first scan computes ann's timeline and materializes it *)
  show "ann's timeline (computed on demand):"
    (Server.scan cache ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|"));

  (* a new post flows into the materialized timeline incrementally *)
  Server.put cache "p|bob|0000000150" "back again";
  show "after bob posts again (incremental maintenance):"
    (Server.scan cache ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|"));

  (* subscription changes are applied lazily at the next read *)
  Server.put cache "s|ann|jim" "1";
  show "after ann follows jim (lazy log application):"
    (Server.scan cache ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|"));

  Server.remove cache "s|ann|liz";
  show "after ann unfollows liz:"
    (Server.scan cache ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|"));

  (* time-bounded checks use the key order: scan [t|ann|0000000140, t|ann|+) *)
  show "timeline since time 140:"
    (Server.scan cache ~lo:"t|ann|0000000140" ~hi:(Strkey.prefix_upper "t|ann|"))
