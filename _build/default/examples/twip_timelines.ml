(* Twip at (small) scale: generate a power-law social graph, run the
   paper's §5.1 workload mix against the Pequod backend over the metered
   loopback channel, and report what the cache did.

   Run with: dune exec examples/twip_timelines.exe *)

module Twip = Pequod_apps.Twip
module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload

let () =
  let rng = Rng.create 7 in
  let graph = Social_graph.generate ~rng ~nusers:500 ~avg_follows:12 () in
  Printf.printf "social graph: %d users, %d edges; most-followed user has %d followers\n"
    (Social_graph.nusers graph) (Social_graph.edge_count graph)
    (let best = ref 0 in
     for u = 0 to Social_graph.nusers graph - 1 do
       best := max !best (Social_graph.follower_count graph u)
     done;
     !best);

  let backend = Twip.pequod () in
  Twip.load_graph backend graph;

  let workload = Workload.generate ~rng ~graph ~total_ops:20_000 () in
  Printf.printf "workload: %d logins, %d subscribes, %d checks, %d posts\n"
    workload.Workload.nlogins workload.Workload.nsubs workload.Workload.nchecks
    workload.Workload.nposts;

  let result = Twip.run backend graph workload in
  Printf.printf "ran in %.2fs: %d RPCs, %.1f MB wire traffic, %.1f MB cache memory\n"
    result.Twip.elapsed result.Twip.rpcs
    (float_of_int result.Twip.wire_bytes /. 1048576.0)
    (float_of_int result.Twip.memory /. 1048576.0);
  Printf.printf "timeline entries served: %d\n\n" result.Twip.entries_read;

  (* peek at one user's timeline *)
  let user = Social_graph.user_name 3 in
  let tl = backend.Twip.timeline ~user ~since:(Strkey.encode_time 0) in
  Printf.printf "%s follows %d users; last 5 timeline entries:\n" user
    (Array.length (Social_graph.following graph 3));
  List.iteri
    (fun i (time, poster, tweet) ->
      if i >= max 0 (List.length tl - 5) then
        Printf.printf "  t=%s %s: %s\n" time poster
          (String.sub tweet 0 (min 40 (String.length tweet))))
    tl;
  backend.Twip.shutdown ()
