(* Newp (§2.3): interleaved cache joins bring an article, its vote count,
   its comments, and each commenter's karma into one contiguous range, so
   one scan renders a page.

   Run with: dune exec examples/newp_pages.exe *)

module Server = Pequod_core.Server
module Newp = Pequod_apps.Newp

let () =
  let cache = Server.create () in
  List.iter (Server.add_join_exn cache) Newp.base_joins;
  List.iter (Server.add_join_exn cache) Newp.interleave_joins;

  (* bob writes an article; liz and jim comment; votes arrive *)
  Server.put cache "article|bob|101" "Pequod: easy freshness with cache joins";
  Server.put cache "comment|bob|101|c1|liz" "great read!";
  Server.put cache "comment|bob|101|c2|jim" "needs more benchmarks";
  Server.put cache "vote|bob|101|ann" "1";
  Server.put cache "vote|bob|101|liz" "1";
  Server.put cache "vote|bob|101|jim" "1";

  (* liz has karma because people voted on her own article *)
  Server.put cache "article|liz|202" "Liz on ordered stores";
  Server.put cache "vote|liz|202|bob" "1";
  Server.put cache "vote|liz|202|ann" "1";

  (* one scan returns everything needed to render the page, interleaved *)
  let page = Server.scan cache ~lo:"page|bob|101|" ~hi:(Strkey.prefix_upper "page|bob|101|") in
  print_endline "raw page|bob|101| range (one scan):";
  List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) page;
  print_newline ();

  (* votes keep rank and karma fresh through the chained joins *)
  Server.put cache "vote|liz|202|jim" "1";
  let karma_row = Server.get cache "page|bob|101|k|c1|liz" in
  Printf.printf "liz's karma on bob's page after another vote on her article: %s\n"
    (Option.value ~default:"?" karma_row);

  (* the same data is also queryable in its own ranges *)
  Printf.printf "karma|liz = %s, rank|bob|101 = %s\n"
    (Option.value ~default:"?" (Server.get cache "karma|liz"))
    (Option.value ~default:"?" (Server.get cache "rank|bob|101"))
