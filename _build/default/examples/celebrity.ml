(* The celebrity joins (§2.3): most users' posts are eagerly copied into
   follower timelines, but celebrities with huge followings would waste
   memory that way. Their posts go to cp|, a push helper join collects
   them time-ordered in ct|, and a pull join filters per user at read
   time — computed on demand, never cached.

   Run with: dune exec examples/celebrity.exe *)

module Server = Pequod_core.Server

let () =
  let cache = Server.create () in
  (* (1) non-celebrity: eager, materialized *)
  Server.add_join_exn cache
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>";
  (* helper range: all celebrity posts in time-primary order *)
  Server.add_join_exn cache "ct|<time>|<poster> = copy cp|<poster>|<time>";
  (* (2) celebrity: pull — recomputed per request, not cached *)
  Server.add_join_exn cache
    "t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>";

  Server.put cache "s|ann|bob" "1";
  Server.put cache "s|ann|superstar" "1";
  Server.put cache "s|cal|superstar" "1";

  Server.put cache "p|bob|0000000100" "bob's regular tweet";
  Server.put cache "cp|superstar|0000000110" "hello to my 40M followers";
  Server.put cache "cp|superstar|0000000130" "another celebrity tweet";

  let timeline user =
    Server.scan cache
      ~lo:(Printf.sprintf "t|%s|" user)
      ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))
  in
  print_endline "ann's timeline (eager + pull results merged):";
  List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) (timeline "ann");
  print_newline ();

  print_endline "cal's timeline (follows only the celebrity):";
  List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) (timeline "cal");
  print_newline ();

  (* memory saving: celebrity tweets are not materialized per follower *)
  let stored_copies =
    Server.scan cache ~lo:"t|" ~hi:(Strkey.prefix_upper "t|")
    |> List.filter (fun (k, _) ->
           match String.split_on_char '|' k with
           | [ _; _; _; "superstar" ] -> true
           | _ -> false)
  in
  Printf.printf "celebrity tweets materialized in t| across %d followers: %d copies\n"
    2 (List.length stored_copies);
  Printf.printf "(the ct| helper holds them once: %d entries)\n"
    (List.length (Server.scan cache ~lo:"ct|" ~hi:(Strkey.prefix_upper "ct|")))
