examples/celebrity.mli:
