examples/twip_timelines.ml: Array List Pequod_apps Printf Rng String Strkey
