examples/write_around.mli:
