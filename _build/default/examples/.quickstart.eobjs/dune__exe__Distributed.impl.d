examples/distributed.ml: Hashtbl List Pequod_sim Printf String Strkey
