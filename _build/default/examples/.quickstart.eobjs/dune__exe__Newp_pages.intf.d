examples/newp_pages.mli:
