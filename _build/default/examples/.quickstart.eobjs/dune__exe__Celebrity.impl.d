examples/celebrity.ml: List Pequod_core Printf String Strkey
