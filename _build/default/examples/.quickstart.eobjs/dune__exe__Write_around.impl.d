examples/write_around.ml: Array List Pequod_core Pequod_db Printf Strkey
