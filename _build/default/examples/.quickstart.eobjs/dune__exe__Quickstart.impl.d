examples/quickstart.ml: List Pequod_core Printf Strkey
