examples/twip_timelines.mli:
