examples/newp_pages.ml: List Option Pequod_apps Pequod_core Printf Strkey
