examples/distributed.mli:
