examples/quickstart.mli:
