(** Figure 10: distributed scalability (§5.5).

    A fixed Twip workload runs against a cluster with a fixed backing
    store and a growing set of compute servers. The paper scales 12 -> 48
    compute servers for a 3x throughput gain (4x would be ideal); base
    memory grows slightly with duplicated subscription state, compute
    memory grows with base-data duplication, and the inter-server
    subscription share of network traffic rises from ~10% to ~16%.

    Throughput here is client operations divided by the bottleneck compute
    node's accumulated work units (store operations + message handling) —
    the same CPU bottleneck the paper measures. *)

module Event = Pequod_sim.Event
module Cluster = Pequod_sim.Cluster
module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload
module Twip = Pequod_apps.Twip

type row = {
  ncompute : int;
  qps : float;
  speedup : float;
  base_memory : int;
  compute_memory : int;
  subscription_share : float;
}

let partition_of nbase ~table ~lo =
  match table with
  | "p" | "s" -> (
    match String.split_on_char '|' lo with
    | _ :: who :: _ -> Some (Hashtbl.hash who mod nbase)
    | _ -> Some 0)
  | _ -> None

(* work units per second of server CPU: one unit is one store operation
   or equivalent message-handling work; ~2.5us each as measured for this
   engine. Only relative throughput matters for the scaling shape. *)
let units_per_second = 400_000.0

let run_point ~graph ~ops ~nbase ~ncompute ~seed =
  ignore seed;
  let event = Event.create () in
  let cluster =
    Cluster.create ~event ~nbase ~ncompute ~partition:(fun ~table ~lo ->
        partition_of nbase ~table ~lo)
      ()
  in
  Cluster.add_join cluster Twip.timeline_join;
  let nusers = Social_graph.nusers graph in
  let compute_ids = Array.of_list (Cluster.compute_ids cluster) in
  let compute_of u = compute_ids.(u mod Array.length compute_ids) in
  (* load the graph into the backing store *)
  for u = 0 to nusers - 1 do
    let user = Social_graph.user_name u in
    Array.iter
      (fun p ->
        Cluster.client_put cluster (Printf.sprintf "s|%s|%s" user (Social_graph.user_name p)) "1")
      (Social_graph.following graph u)
  done;
  Event.run event;
  (* warm the caches: log every user in on its compute server (§5.5) *)
  for u = 0 to nusers - 1 do
    let user = Social_graph.user_name u in
    Cluster.client_scan cluster ~via:(compute_of u) ~lo:(Printf.sprintf "t|%s|" user)
      ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))
      (fun _ -> ())
  done;
  Event.run event;
  Cluster.mark_epoch cluster;
  let checks = ref 0 in
  Array.iter
    (fun op ->
      (match op with
      | Workload.Login u | Workload.Check u ->
        incr checks;
        let user = Social_graph.user_name u in
        Cluster.client_scan cluster ~via:(compute_of u) ~lo:(Printf.sprintf "t|%s|" user)
          ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))
          (fun _ -> ())
      | Workload.Subscribe (u, p) ->
        Cluster.client_put cluster
          (Printf.sprintf "s|%s|%s" (Social_graph.user_name u) (Social_graph.user_name p))
          "1"
      | Workload.Post (p, time) ->
        let poster = Social_graph.user_name p in
        Cluster.client_put cluster
          (Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time))
          (Twip.tweet_text poster time));
      Event.run event)
    ops;
  Event.run event;
  let work = Cluster.bottleneck_work cluster in
  let qps = float_of_int !checks /. (float_of_int work /. units_per_second) in
  let sb = Cluster.server_bytes cluster and cb = Cluster.client_bytes cluster in
  ( qps,
    Cluster.total_memory cluster (Cluster.base_ids cluster),
    Cluster.total_memory cluster (Cluster.compute_ids cluster),
    float_of_int sb /. float_of_int (max 1 (sb + cb)) )

let default_points = [ 12; 24; 36; 48 ]

let run ?(points = default_points) (scale : Scale.t) =
  let rng = Rng.create scale.Scale.seed in
  let nusers = Scale.i scale 2_000 in
  let graph = Social_graph.generate ~rng ~nusers ~avg_follows:10 () in
  let w =
    Workload.generate ~rng:(Rng.create (scale.Scale.seed + 3)) ~graph ~active_fraction:1.0
      ~total_ops:(Scale.i scale 30_000) ()
  in
  let nbase = 6 in
  let rows =
    List.map
      (fun ncompute ->
        let qps, base_memory, compute_memory, subscription_share =
          run_point ~graph ~ops:w.Workload.ops ~nbase ~ncompute ~seed:scale.Scale.seed
        in
        Gc.full_major ();
        (ncompute, qps, base_memory, compute_memory, subscription_share))
      points
  in
  let base_qps = match rows with (_, q, _, _, _) :: _ -> q | [] -> 1.0 in
  List.map
    (fun (ncompute, qps, base_memory, compute_memory, subscription_share) ->
      { ncompute; qps; speedup = qps /. base_qps; base_memory; compute_memory;
        subscription_share })
    rows

let print rows =
  let t =
    Tablefmt.create ~title:"Figure 10: distributed Twip scalability"
      ~headers:
        [ "Compute servers"; "QPS (k/s)"; "Speedup"; "Base mem (MB)"; "Compute mem (MB)";
          "Subscr. traffic" ]
      ~aligns:[ Tablefmt.Right; Right; Right; Right; Right; Right ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          string_of_int r.ncompute;
          Tablefmt.fmt_float ~decimals:1 (r.qps /. 1000.0);
          Printf.sprintf "%.2fx" r.speedup;
          Tablefmt.fmt_float ~decimals:1 (float_of_int r.base_memory /. 1048576.0);
          Tablefmt.fmt_float ~decimals:1 (float_of_int r.compute_memory /. 1048576.0);
          Printf.sprintf "%.1f%%" (100.0 *. r.subscription_share);
        ])
    rows;
  Tablefmt.print t
