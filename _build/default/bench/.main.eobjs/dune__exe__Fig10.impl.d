bench/fig10.ml: Array Gc Hashtbl List Pequod_apps Pequod_sim Printf Rng Scale String Strkey Tablefmt
