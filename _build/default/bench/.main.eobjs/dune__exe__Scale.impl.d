bench/scale.ml:
