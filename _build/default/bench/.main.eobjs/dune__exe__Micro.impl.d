bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Pequod_pattern Pequod_proto Pequod_store Printf Staged Strkey Tablefmt Test Time Toolkit
