bench/fig7.ml: Gc List Pequod_apps Printf Rng Scale Tablefmt
