bench/main.ml: Ablations Array Fig10 Fig7 Fig8 Fig9 List Micro Printf Scale Stats Sys
