bench/main.mli:
