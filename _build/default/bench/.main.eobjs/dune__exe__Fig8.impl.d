bench/fig8.ml: Array Gc List Pequod_apps Pequod_core Printf Rng Scale Strkey Tablefmt Unix
