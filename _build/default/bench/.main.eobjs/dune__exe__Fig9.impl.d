bench/fig9.ml: Gc List Pequod_apps Rng Scale Tablefmt
