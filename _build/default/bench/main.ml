(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (§5) plus the §3/§4 ablations.

    {v
    dune exec bench/main.exe                    # everything, default scale
    dune exec bench/main.exe -- fig7 fig9       # selected experiments
    dune exec bench/main.exe -- all --scale 2.0 # bigger workloads
    v} *)

let usage =
  "usage: main.exe [fig7|fig8|fig9|fig10|ablations|micro|all]... [--scale F] [--seed N]"

type selection = {
  mutable fig7 : bool;
  mutable fig8 : bool;
  mutable fig9 : bool;
  mutable fig10 : bool;
  mutable ablations : bool;
  mutable micro : bool;
}

let () =
  let sel =
    { fig7 = false; fig8 = false; fig9 = false; fig10 = false; ablations = false; micro = false }
  in
  let scale = ref Scale.default.Scale.factor in
  let seed = ref Scale.default.Scale.seed in
  let any = ref false in
  let rec parse = function
    | [] -> ()
    | "fig7" :: rest ->
      any := true;
      sel.fig7 <- true;
      parse rest
    | "fig8" :: rest ->
      any := true;
      sel.fig8 <- true;
      parse rest
    | "fig9" :: rest ->
      any := true;
      sel.fig9 <- true;
      parse rest
    | "fig10" :: rest ->
      any := true;
      sel.fig10 <- true;
      parse rest
    | "ablations" :: rest ->
      any := true;
      sel.ablations <- true;
      parse rest
    | "micro" :: rest ->
      any := true;
      sel.micro <- true;
      parse rest
    | "all" :: rest ->
      any := true;
      sel.fig7 <- true;
      sel.fig8 <- true;
      sel.fig9 <- true;
      sel.fig10 <- true;
      sel.ablations <- true;
      parse rest
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | arg :: _ ->
      prerr_endline ("unknown argument: " ^ arg);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not !any then begin
    sel.fig7 <- true;
    sel.fig8 <- true;
    sel.fig9 <- true;
    sel.fig10 <- true;
    sel.ablations <- true
  end;
  let scale = { Scale.factor = !scale; seed = !seed } in
  Printf.printf "Pequod benchmark harness (scale %.2f, seed %d)\n" scale.Scale.factor
    scale.Scale.seed;
  Printf.printf
    "Paper scales are cluster-sized; these runs reproduce each result's shape locally.\n\n";
  let section name f =
    Printf.printf "--- %s ---\n%!" name;
    let (), elapsed = Stats.time f in
    Printf.printf "(%s took %.1fs)\n\n%!" name elapsed
  in
  if sel.fig7 then section "fig7" (fun () -> Fig7.print (Fig7.run scale));
  if sel.fig8 then section "fig8" (fun () -> Fig8.print (Fig8.run scale));
  if sel.fig9 then section "fig9" (fun () -> Fig9.print (Fig9.run scale));
  if sel.fig10 then section "fig10" (fun () -> Fig10.print (Fig10.run scale));
  if sel.ablations then section "ablations" (fun () -> Ablations.print (Ablations.run scale));
  if sel.micro then section "micro" (fun () -> Micro.run_and_print ())
