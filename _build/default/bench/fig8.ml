(** Figure 8: materialization strategy comparison (§5.3).

    A check+post-only Twip workload with p% active users (check:post ratio
    p:1). Three strategies:
    - {e none}: the timeline join is installed [pull]; every check
      recomputes from base data and nothing is cached;
    - {e full}: every user's timeline is materialized up front and kept up
      to date, active or not;
    - {e dynamic}: Pequod's default — materialize on first access, then
      maintain incrementally.

    The paper's shape: no-materialization is competitive only at very low
    p and blows up as checks dominate; dynamic beats full until ~90%
    active; full is slightly better (1.08x) at 100%. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload
module Twip = Pequod_apps.Twip

type strategy = None_ | Full | Dynamic

let strategy_name = function None_ -> "none" | Full -> "full" | Dynamic -> "dynamic"

type row = { active_pct : int; runtimes : (strategy * float) list }

let join_text = function
  | None_ -> "t|<user>|<time>|<poster> = pull check s|<user>|<poster> copy p|<poster>|<time>"
  | Full | Dynamic -> Twip.timeline_join

let run_one ~graph ~strategy ~active_pct ~posts ~seed =
  let s = Server.create () in
  Server.add_join_exn s (join_text strategy);
  (* load subscriptions *)
  for u = 0 to Social_graph.nusers graph - 1 do
    let user = Social_graph.user_name u in
    Array.iter
      (fun p -> Server.put s (Printf.sprintf "s|%s|%s" user (Social_graph.user_name p)) "1")
      (Social_graph.following graph u)
  done;
  let w =
    Workload.checks_and_posts ~rng:(Rng.create seed) ~graph
      ~active_fraction:(float_of_int active_pct /. 100.0)
      ~nchecks:(posts * active_pct) ~nposts:posts ()
  in
  let timeline user since =
    Server.scan s
      ~lo:(Printf.sprintf "t|%s|%s" user since)
      ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))
  in
  let t0 = Unix.gettimeofday () in
  (* full materialization: compute every timeline up front *)
  if strategy = Full then
    for u = 0 to Social_graph.nusers graph - 1 do
      ignore (timeline (Social_graph.user_name u) (Strkey.encode_time 0))
    done;
  let last_seen = Array.make (Social_graph.nusers graph) 0 in
  let clock = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | Workload.Check u ->
        ignore (timeline (Social_graph.user_name u) (Strkey.encode_time (last_seen.(u) + 1)));
        last_seen.(u) <- !clock
      | Workload.Post (p, time) ->
        clock := max !clock time;
        let poster = Social_graph.user_name p in
        Server.put s
          (Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time))
          (Twip.tweet_text poster time)
      | Workload.Login _ | Workload.Subscribe _ -> ())
    w.Workload.ops;
  Unix.gettimeofday () -. t0

let default_points = [ 1; 5; 10; 25; 50; 75; 90; 100 ]

let run ?(points = default_points) (scale : Scale.t) =
  let rng = Rng.create scale.Scale.seed in
  let nusers = Scale.i scale 1_500 in
  let graph = Social_graph.generate ~rng ~nusers ~avg_follows:10 () in
  let posts = Scale.i scale 400 in
  List.map
    (fun active_pct ->
      let runtimes =
        List.map
          (fun strategy ->
            let t = run_one ~graph ~strategy ~active_pct ~posts ~seed:(scale.Scale.seed + 7) in
            Gc.full_major ();
            (strategy, t))
          [ None_; Full; Dynamic ]
      in
      { active_pct; runtimes })
    points

let print rows =
  let t =
    Tablefmt.create
      ~title:"Figure 8: materialization strategy, runtime (s) vs % active users"
      ~headers:[ "% active"; "No materialization"; "Full"; "Dynamic"; "Best" ]
      ~aligns:[ Tablefmt.Right; Right; Right; Right; Left ]
  in
  List.iter
    (fun r ->
      let get s = List.assoc s r.runtimes in
      let best, _ =
        List.fold_left
          (fun (bs, bt) (s, rt) -> if rt < bt then (s, rt) else (bs, bt))
          (None_, get None_) r.runtimes
      in
      Tablefmt.add_row t
        [
          string_of_int r.active_pct;
          Tablefmt.fmt_float ~decimals:3 (get None_);
          Tablefmt.fmt_float ~decimals:3 (get Full);
          Tablefmt.fmt_float ~decimals:3 (get Dynamic);
          strategy_name best;
        ])
    rows;
  Tablefmt.print t
