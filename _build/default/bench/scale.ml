(** Experiment scales. The paper runs at cluster scale (1.8M–40M users);
    these defaults reproduce every experiment's *shape* on one machine in
    minutes. [--scale] multiplies the workload sizes. *)

type t = {
  factor : float;
  seed : int;
}

let default = { factor = 1.0; seed = 42 }

let i t n = max 1 (int_of_float (t.factor *. float_of_int n))
