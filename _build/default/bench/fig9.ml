(** Figure 9: Newp interleaved vs non-interleaved cache joins across vote
    rates (§5.4).

    Paper shape: the interleaved joins (one scan per article page) beat
    separate ranges (many gets in two round trips) at every vote rate
    until writes are very common; the crossover sits around a 90% vote
    rate, where the per-vote precomputation outweighs saved gets. *)

module Newp = Pequod_apps.Newp

type row = {
  vote_rate : int;
  interleaved : float;
  separate : float;
  rpcs_inter : int;
  rpcs_sep : int;
}

let default_rates = [ 0; 10; 25; 50; 75; 90; 100 ]

let run ?(rates = default_rates) (scale : Scale.t) =
  (* the paper's ratios: 10 comments and 20 votes per article, 20
     comments per user (100K articles, 50K users, 1M comments, 2M votes) *)
  let d =
    {
      Newp.narticles = Scale.i scale 2_000;
      nusers = Scale.i scale 500;
      ncomments = Scale.i scale 20_000;
      nvotes = Scale.i scale 40_000;
    }
  in
  let nsessions = Scale.i scale 15_000 in
  List.map
    (fun vote_rate ->
      let run_variant interleaved =
        let b = Newp.make ~interleaved ~deployment:Newp.Separate_process () in
        Newp.populate b ~rng:(Rng.create scale.Scale.seed) d;
        let r =
          Newp.run_sessions b ~rng:(Rng.create (scale.Scale.seed + vote_rate)) d ~nsessions
            ~vote_rate:(float_of_int vote_rate /. 100.0)
        in
        b.Newp.shutdown ();
        Gc.full_major ();
        r
      in
      let ri = run_variant true in
      let rs = run_variant false in
      {
        vote_rate;
        interleaved = ri.Newp.elapsed;
        separate = rs.Newp.elapsed;
        rpcs_inter = ri.Newp.rpcs;
        rpcs_sep = rs.Newp.rpcs;
      })
    rates

let print rows =
  let t =
    Tablefmt.create ~title:"Figure 9: Newp page construction, runtime (s) vs vote rate"
      ~headers:[ "Vote rate %"; "Interleaved"; "Non-interleaved"; "RPCs (int)"; "RPCs (sep)" ]
      ~aligns:[ Tablefmt.Right; Right; Right; Right; Right ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          string_of_int r.vote_rate;
          Tablefmt.fmt_float ~decimals:3 r.interleaved;
          Tablefmt.fmt_float ~decimals:3 r.separate;
          string_of_int r.rpcs_inter;
          string_of_int r.rpcs_sep;
        ])
    rows;
  Tablefmt.print t
