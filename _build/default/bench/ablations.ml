(** Ablations for the §3.2/§4 mechanisms, on the Twip workload:
    subtables (§4.1: paper 1.55x faster, 1.17x more memory), output hints
    (§4.2: 1.11x faster), value sharing (§4.3: 1.14x less memory), updater
    combining (§3.2: "large factors"), and the lazy check-source
    maintenance policy. Each row disables one mechanism and reports its
    cost relative to the full configuration.

    The engine is driven directly (no RPC layer) so the measured deltas
    isolate the mechanisms themselves. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Twip = Pequod_apps.Twip
module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload

type row = {
  variant : string;
  runtime : float;
  runtime_ratio : float; (* variant / baseline: > 1 means mechanism helps speed *)
  memory : int;
  memory_ratio : float;
}

let subtable_config () =
  let c = Config.default () in
  c.Config.table_config <-
    (fun name -> match name with "t" | "p" | "s" -> Some 2 | _ -> None);
  c

let variants : (string * (unit -> Config.t)) list =
  [
    ("baseline (all on)", subtable_config);
    ("no subtables", Config.default);
    ( "no output hints",
      fun () ->
        let c = subtable_config () in
        c.Config.output_hints <- false;
        c );
    ( "no value sharing",
      fun () ->
        let c = subtable_config () in
        c.Config.value_sharing <- false;
        c );
    ( "no updater combining",
      fun () ->
        let c = subtable_config () in
        c.Config.combine_updaters <- false;
        c );
    ( "eager check maintenance",
      fun () ->
        let c = subtable_config () in
        c.Config.lazy_checks <- false;
        c );
    ( "complete invalidation only",
      fun () ->
        let c = subtable_config () in
        c.Config.pending_log_limit <- 0;
        c );
  ]

let run_one ~graph ~config ~total_ops ~seed =
  let s = Server.create ~config () in
  Server.add_join_exn s Twip.timeline_join;
  (* old-post corpus, mostly never read (exercises lazy maintenance) *)
  let posting = Rng.Alias.create (Social_graph.posting_weights graph) in
  let rng0 = Rng.create (seed + 9) in
  for time = 0 to 9_999 do
    let poster = Social_graph.user_name (Rng.Alias.sample posting rng0) in
    Server.put s
      (Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time))
      (Twip.tweet_text poster time)
  done;
  for u = 0 to Social_graph.nusers graph - 1 do
    let user = Social_graph.user_name u in
    Array.iter
      (fun p -> Server.put s (Printf.sprintf "s|%s|%s" user (Social_graph.user_name p)) "1")
      (Social_graph.following graph u)
  done;
  let w = Workload.generate ~rng:(Rng.create seed) ~graph ~total_ops () in
  let window = max 1 (w.Workload.nposts / 4) in
  let nusers = Social_graph.nusers graph in
  let last_seen = Array.make nusers 1_000_000 in
  let clock = ref 1_000_000 in
  let timeline u since =
    let user = Social_graph.user_name u in
    Server.scan s
      ~lo:(Printf.sprintf "t|%s|%s" user (Strkey.encode_time since))
      ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))
  in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun op ->
      match op with
      | Workload.Login u ->
        ignore (timeline u (max 0 (!clock - window)));
        last_seen.(u) <- !clock
      | Workload.Check u ->
        ignore (timeline u (last_seen.(u) + 1));
        last_seen.(u) <- !clock
      | Workload.Subscribe (u, p) ->
        Server.put s
          (Printf.sprintf "s|%s|%s" (Social_graph.user_name u) (Social_graph.user_name p))
          "1"
      | Workload.Post (p, time) ->
        clock := max !clock time;
        let poster = Social_graph.user_name p in
        Server.put s
          (Printf.sprintf "p|%s|%s" poster (Strkey.encode_time time))
          (Twip.tweet_text poster time))
    w.Workload.ops;
  let elapsed = Unix.gettimeofday () -. t0 in
  (elapsed, Server.memory_bytes s)

let run (scale : Scale.t) =
  let rng = Rng.create scale.Scale.seed in
  let nusers = Scale.i scale 1_500 in
  let graph = Social_graph.generate ~rng ~nusers ~avg_follows:25 () in
  let total_ops = Scale.i scale 150_000 in
  (* minimum of three runs: the mechanism deltas are ~10%, below single-run
     noise on a busy machine *)
  let best_of_three f =
    let runs = List.init 3 (fun _ -> let r = f () in Gc.full_major (); r) in
    List.fold_left
      (fun (bt, bm) (t, m) -> if t < bt then (t, m) else (bt, bm))
      (List.hd runs) (List.tl runs)
  in
  let results =
    List.map
      (fun (variant, mk_config) ->
        let r =
          best_of_three (fun () ->
              run_one ~graph ~config:(mk_config ()) ~total_ops ~seed:(scale.Scale.seed + 2))
        in
        (variant, r))
      variants
  in
  let base_time, base_mem =
    match results with (_, (t, m)) :: _ -> (t, m) | [] -> (1.0, 1)
  in
  List.map
    (fun (variant, (runtime, memory)) ->
      {
        variant;
        runtime;
        runtime_ratio = runtime /. base_time;
        memory;
        memory_ratio = float_of_int memory /. float_of_int base_mem;
      })
    results

let print rows =
  let t =
    Tablefmt.create ~title:"Ablations: each mechanism disabled (vs full configuration)"
      ~headers:[ "Variant"; "Runtime (s)"; "Ratio"; "Memory (MB)"; "Ratio" ]
      ~aligns:[ Tablefmt.Left; Right; Right; Right; Right ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.variant;
          Tablefmt.fmt_float ~decimals:3 r.runtime;
          Printf.sprintf "%.2fx" r.runtime_ratio;
          Tablefmt.fmt_float ~decimals:1 (float_of_int r.memory /. 1048576.0);
          Printf.sprintf "%.2fx" r.memory_ratio;
        ])
    rows;
  Tablefmt.print t
