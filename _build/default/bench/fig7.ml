(** Figure 7: time to process a Twip experiment to completion on Pequod,
    Redis, client Pequod, memcached, and PostgreSQL (§5.2).

    Paper result (multicore, 1.8M users, 62M checks):
      Pequod 197.06s (1.00x), Redis 1.33x, Client Pequod 1.64x,
      memcached 3.98x, PostgreSQL 9.55x.

    The shape to reproduce: Pequod fastest; Redis close behind; client
    Pequod penalized by extra RPCs and lack of server-side optimizations;
    memcached far behind on the write-heavy mix (append copies); the
    relational engine slowest by a large factor. *)

module Twip = Pequod_apps.Twip
module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload

type row = {
  system : string;
  runtime : float;
  factor : float;
  rpcs : int;
  memory : int;
}

let run (scale : Scale.t) =
  let rng = Rng.create scale.Scale.seed in
  (* denser graph and more checks per user, closer to the paper's regime
     (Twitter users average >100 followees; checks outnumber posts 100:1) *)
  let nusers = Scale.i scale 1_200 in
  let graph = Social_graph.generate ~rng ~nusers ~avg_follows:30 () in
  let total_ops = Scale.i scale 240_000 in
  let make_workload () =
    (* same seed: every system sees the identical op stream *)
    Workload.generate ~rng:(Rng.create (scale.Scale.seed + 1)) ~graph ~total_ops ()
  in
  (* every system runs as a forked server process; each op is a real
     loopback-TCP RPC, as in the paper's deployment *)
  let systems =
    [
      (fun () -> Twip.pequod ~deployment:Twip.Separate_process ());
      (fun () -> Twip.redis ~deployment:Twip.Separate_process ());
      (fun () -> Twip.client_pequod ~deployment:Twip.Separate_process ());
      (fun () -> Twip.memcached ~deployment:Twip.Separate_process ());
      (fun () -> Twip.postgres ~deployment:Twip.Separate_process ());
    ]
  in
  let preload = Scale.i scale 10_000 in
  let results =
    List.map
      (fun mk ->
        let b = mk () in
        (* old-post corpus first (no fan-out: graph not loaded yet),
           then the social graph *)
        Twip.preload_posts b graph ~rng:(Rng.create (scale.Scale.seed + 9)) ~nposts:preload;
        Twip.load_graph b graph;
        let r = Twip.run ~initial_clock:1_000_000 b graph (make_workload ()) in
        b.Twip.shutdown ();
        Gc.full_major ();
        r)
      systems
  in
  let base =
    match results with r :: _ -> r.Twip.elapsed | [] -> 1.0
  in
  let rows =
    List.map
      (fun (r : Twip.run_result) ->
        { system = r.Twip.system; runtime = r.Twip.elapsed; factor = r.Twip.elapsed /. base;
          rpcs = r.Twip.rpcs; memory = r.Twip.memory })
      results
  in
  (* present sorted by runtime like the paper's table *)
  List.sort (fun a b -> compare a.runtime b.runtime) rows

let print rows =
  let t =
    Tablefmt.create ~title:"Figure 7: Twip system comparison (smaller is better)"
      ~headers:[ "System"; "Runtime (s)"; "Factor"; "RPCs"; "Memory (MB)" ]
      ~aligns:[ Tablefmt.Left; Right; Right; Right; Right ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.system;
          Tablefmt.fmt_float ~decimals:2 r.runtime;
          Printf.sprintf "(%.2fx)" r.factor;
          string_of_int r.rpcs;
          Tablefmt.fmt_float ~decimals:1 (float_of_int r.memory /. 1048576.0);
        ])
    rows;
  Tablefmt.print t
