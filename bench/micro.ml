(** Bechamel microbenchmarks of the store primitives: the red-black tree
    against the stdlib containers, interval-tree stabbing, pattern
    matching, and the wire codec. These quantify the §6 discussion that
    ordered stores pay versus hash tables, and what the per-operation
    costs underlying the macro results are. *)

open Bechamel
open Toolkit

module Rbtree = Pequod_store.Rbtree
module Interval_map = Pequod_store.Interval_map
module Pattern = Pequod_pattern.Pattern
module Message = Pequod_proto.Message

let nkeys = 10_000

let keys = Array.init nkeys (fun i -> Printf.sprintf "t|u%05d|%010d|p%03d" (i mod 97) i (i mod 31))

let make_rbtree () =
  let t = Rbtree.create ~dummy:0 () in
  Array.iteri (fun i k -> ignore (Rbtree.insert t k i)) keys;
  t

let make_hashtbl () =
  let h = Hashtbl.create nkeys in
  Array.iteri (fun i k -> Hashtbl.replace h k i) keys;
  h

let bench_rbtree_insert =
  Test.make ~name:"rbtree insert 10k" (Staged.stage (fun () -> ignore (make_rbtree ())))

let bench_hashtbl_insert =
  Test.make ~name:"hashtbl insert 10k" (Staged.stage (fun () -> ignore (make_hashtbl ())))

let bench_rbtree_lookup =
  let t = make_rbtree () in
  let i = ref 0 in
  Test.make ~name:"rbtree lookup"
    (Staged.stage (fun () ->
         i := (!i + 7) mod nkeys;
         ignore (Rbtree.find t keys.(!i))))

let bench_hashtbl_lookup =
  let h = make_hashtbl () in
  let i = ref 0 in
  Test.make ~name:"hashtbl lookup"
    (Staged.stage (fun () ->
         i := (!i + 7) mod nkeys;
         ignore (Hashtbl.find_opt h keys.(!i))))

let bench_rbtree_hinted_append =
  Test.make ~name:"rbtree hinted append 1k"
    (Staged.stage (fun () ->
         let t = Rbtree.create ~dummy:0 () in
         let hint = ref None in
         for i = 0 to 999 do
           let k = Printf.sprintf "t|u|%010d" i in
           let node, _ =
             match !hint with
             | Some h -> Rbtree.insert_after t ~hint:h k i
             | None -> Rbtree.insert t k i
           in
           hint := Some node
         done))

(* §4.1: subtables turn whole-table O(log N) descents into an O(1) hash
   jump plus a descent of a tiny per-boundary tree. The effect needs a
   big table: 400k keys across 4k boundaries. *)
let big_nkeys = 400_000

let big_keys =
  Array.init big_nkeys (fun i ->
      Printf.sprintf "t|u%05d|%010d|p%03d" (i mod 4001) i (i mod 31))

let make_table ~subtables =
  let t =
    Pequod_store.Table.create
      ?subtable_depth:(if subtables then Some 2 else None)
      ~name:"t" ~dummy:0 ()
  in
  Array.iteri (fun i k -> ignore (Pequod_store.Table.put t k i)) big_keys;
  t

let bench_table_get_subtables =
  let t = make_table ~subtables:true in
  let i = ref 0 in
  Test.make ~name:"table get, 400k keys (subtables)"
    (Staged.stage (fun () ->
         i := (!i + 7919) mod big_nkeys;
         ignore (Pequod_store.Table.get t big_keys.(!i))))

let bench_table_get_flat =
  let t = make_table ~subtables:false in
  let i = ref 0 in
  Test.make ~name:"table get, 400k keys (one tree)"
    (Staged.stage (fun () ->
         i := (!i + 7919) mod big_nkeys;
         ignore (Pequod_store.Table.get t big_keys.(!i))))

let bench_rbtree_fresh_insert_1k =
  Test.make ~name:"rbtree unhinted insert 1k"
    (Staged.stage (fun () ->
         let t = Rbtree.create ~dummy:0 () in
         for i = 0 to 999 do
           ignore (Rbtree.insert t (Printf.sprintf "t|u|%010d" i) i)
         done))

let bench_interval_stab =
  let im = Interval_map.create () in
  let () =
    for i = 0 to 999 do
      let lo = Printf.sprintf "p|u%04d|" (i mod 200) in
      ignore (Interval_map.add im ~lo ~hi:(Strkey.prefix_upper lo) i)
    done
  in
  let i = ref 0 in
  Test.make ~name:"interval stab (1k updaters)"
    (Staged.stage (fun () ->
         i := (!i + 13) mod 200;
         let k = Printf.sprintf "p|u%04d|0100" !i in
         Interval_map.stab im k (fun _ -> ())))

let bench_pattern_match =
  let names = ref [] in
  let intern n =
    let rec go i = function
      | [] ->
        names := !names @ [ n ];
        i
      | x :: r -> if x = n then i else go (i + 1) r
    in
    go 0 !names
  in
  let p = Pattern.parse ~intern "t|<user>|<time>|<poster>" in
  let bindings = Array.make 3 None in
  Test.make ~name:"pattern match_key"
    (Staged.stage (fun () -> ignore (Pattern.match_key p "t|u00042|0000001234|p007" ~bindings)))

let bench_codec_roundtrip =
  let req = Message.Scan { lo = "t|u00042|0000001234"; hi = "t|u00042}" } in
  Test.make ~name:"message encode+decode"
    (Staged.stage (fun () -> ignore (Message.decode_request (Message.encode_request req))))

(* The batched write pipeline, measured at the engine level: sequential
   puts pay table resolution, a full tree descent and an updater stab per
   key; put_batch sorts once, threads insertion hints across each run and
   coalesces the stabs. Sorted vs shuffled separates the hint win from
   the stab/resolution win; the updater variants add a live copy join so
   the coalesced-stab path is on the measured path. *)
module Engine = Pequod_core.Server

let batch_pairs n = List.init n (fun i -> (Printf.sprintf "b|u%03d|%010d" (i / 256) i, "v"))

let shuffled_pairs n =
  let a = Array.of_list (batch_pairs n) in
  let rng = Rng.create 0xBA7C4 in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let bench_put_path ~name ~batched ~updater pairs =
  Test.make ~name
    (Staged.stage (fun () ->
         let s = Engine.create () in
         if updater then begin
           Engine.add_join_exn s "bb|<u>|<i> = copy b|<u>|<i>";
           (* materialize the (empty) output range so its updater is
              installed before the writes arrive *)
           ignore (Engine.scan s ~lo:"bb|" ~hi:"bb}")
         end;
         if batched then Engine.put_batch s pairs
         else List.iter (fun (k, v) -> Engine.put s k v) pairs))

let put_seq_10k_sorted = "server put 10k sequential (sorted)"
let put_batch_10k_sorted = "server put 10k batched (sorted)"

let batch_tests =
  let p1k = batch_pairs 1_000 in
  let p10k = batch_pairs 10_000 in
  let s10k = shuffled_pairs 10_000 in
  [
    bench_put_path ~name:"server put 1k sequential (sorted)" ~batched:false ~updater:false p1k;
    bench_put_path ~name:"server put 1k batched (sorted)" ~batched:true ~updater:false p1k;
    bench_put_path ~name:put_seq_10k_sorted ~batched:false ~updater:false p10k;
    bench_put_path ~name:put_batch_10k_sorted ~batched:true ~updater:false p10k;
    bench_put_path ~name:"server put 10k sequential (shuffled)" ~batched:false ~updater:false s10k;
    bench_put_path ~name:"server put 10k batched (shuffled)" ~batched:true ~updater:false s10k;
    bench_put_path ~name:"server put 1k sequential (sorted, updater)" ~batched:false ~updater:true
      p1k;
    bench_put_path ~name:"server put 1k batched (sorted, updater)" ~batched:true ~updater:true p1k;
  ]

let all_tests =
  [
    bench_rbtree_insert;
    bench_hashtbl_insert;
    bench_rbtree_lookup;
    bench_hashtbl_lookup;
    bench_rbtree_hinted_append;
    bench_rbtree_fresh_insert_1k;
    bench_table_get_subtables;
    bench_table_get_flat;
    bench_interval_stab;
    bench_pattern_match;
    bench_codec_roundtrip;
  ]
  @ batch_tests

(** Measured ns/run per benchmark, in declaration order ([None] when the
    OLS fit fails). *)
let run () =
  (* PEQUOD_MICRO_QUOTA (seconds per benchmark) lets CI run a smoke pass
     in a few seconds; unset keeps the full-fidelity default *)
  let quota =
    match Sys.getenv_opt "PEQUOD_MICRO_QUOTA" with
    | Some s -> ( match float_of_string_opt s with Some q when q > 0.0 -> q | _ -> 0.25)
    | None -> 0.25
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.fold
        (fun name result acc ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> (name, Some est) :: acc
          | _ -> (name, None) :: acc)
        analyzed [])
    all_tests

(* A small canned engine workload (the paper's Twip shape) whose registry
   snapshot is embedded in BENCH_micro.json: the perf trajectory then
   carries op/maintenance counts alongside ns/run figures, so a regression
   can be attributed (more work? or slower work?). Deterministic, so the
   counts are comparable across runs. *)
let registry_snapshot () =
  let module Server = Pequod_core.Server in
  let s = Server.create () in
  Server.add_join_exn s "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>";
  for u = 0 to 19 do
    for v = 0 to 4 do
      Server.put s
        (Printf.sprintf "s|u%03d|u%03d" u ((u + v) mod 20))
        "1"
    done
  done;
  for p = 0 to 19 do
    for i = 0 to 9 do
      Server.put s (Printf.sprintf "p|u%03d|%010d" p i) (Printf.sprintf "post %d by %d" i p)
    done
  done;
  for u = 0 to 19 do
    ignore (Server.scan s ~lo:(Printf.sprintf "t|u%03d|" u) ~hi:(Printf.sprintf "t|u%03d}" u))
  done;
  for p = 0 to 19 do
    Server.put s (Printf.sprintf "p|u%03d|%010d" p 10) "fresh post"
  done;
  Obs.json_of_snapshot (Server.metrics_snapshot s)

(* ratios worth tracking as first-class numbers, recomputed from the
   measured results so the JSON carries the claim, not just the inputs *)
let derived_of results =
  let find name = match List.assoc_opt name results with Some (Some v) -> Some v | _ -> None in
  match (find put_seq_10k_sorted, find put_batch_10k_sorted) with
  | Some seq, Some batch when batch > 0.0 ->
    [ ("put_batch 10k sorted speedup", seq /. batch) ]
  | _ -> []

(* provenance stamping (commit + ISO date + derived entries) is shared
   with BENCH_cluster.json through Benchstamp, so the files cannot
   drift in schema *)
let write_json ~path ?registry results =
  Benchstamp.write_file ~path ~benchmark:"micro" ~derived:(derived_of results)
    ([ ("unit", Benchstamp.String "ns/run");
       ( "results",
         Benchstamp.Obj
           (List.map
              (fun (name, est) ->
                (name, match est with Some v -> Benchstamp.Float v | None -> Benchstamp.Null))
              results) ) ]
    @ match registry with Some json -> [ ("registry", Benchstamp.Raw json) ] | None -> [])

let run_and_print () =
  let results = run () in
  let tbl =
    Tablefmt.create ~title:"Microbenchmarks (store primitives)"
      ~headers:[ "Benchmark"; "ns/run" ] ~aligns:[ Tablefmt.Left; Right ]
  in
  List.iter
    (fun (name, est) ->
      Tablefmt.add_row tbl
        [ name; (match est with Some v -> Tablefmt.fmt_float ~decimals:1 v | None -> "n/a") ])
    results;
  Tablefmt.print tbl;
  let json = "BENCH_micro.json" in
  write_json ~path:json ~registry:(registry_snapshot ()) results;
  Printf.printf "(wrote %s)\n" json
