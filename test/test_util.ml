(** Helpers shared across the executable test suite (linked into each
    test executable; not a test itself).

    {b Seed derivation.} Randomized tests draw generators through
    {!derive_seed} (re-exported from the fuzz harness, which documents
    the splitmix64 construction): stream [i] of root [r] is the
    splitmix64 finalization of [r + (i + 1) * 0x9E3779B97F4A7C15],
    masked to a non-negative int. Tests that need several independent
    generators should take streams [0, 1, 2, ...] of one fixed root via
    {!rng_of} instead of inventing ad-hoc seed constants — streams never
    collide across roots, and any failure is reproducible from
    [(root, stream)] alone. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_pairs = Alcotest.(check (list (pair string string)))

(** Fixed-width timestamp component for timeline keys, matching the
    paper's [p|<poster>|<time>] examples. *)
let tm i = Strkey.encode_int ~width:4 i

let derive_seed = Pequod_fuzz.Fuzz.derive_seed
let rng_of root i = Rng.create (derive_seed root i)

(** Fresh scratch directory under the system temp dir, recursively
    cleared first if a previous run left it behind. *)
let fresh_dir ?(prefix = "pequod-test") () = Pequod_fuzz.Fuzz.fresh_dir ~prefix ()
