(* Tests for the model-based correctness harness itself: the reference
   oracle against hand-computed values, the repro file format, the
   greedy shrinker, the seed-derivation scheme, and a bounded
   differential sweep covering every scenario x config-variant pair. *)

module F = Pequod_fuzz.Fuzz
module Oracle = Pequod_oracle.Oracle

let check_bool = Test_util.check_bool
let check_int = Test_util.check_int
let check_pairs = Test_util.check_pairs

let oracle_with joins =
  let o = Oracle.create () in
  List.iter
    (fun j ->
      match Oracle.add_join_text o j with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "join %S rejected: %s" j msg)
    joins;
  o

(* ------------------------------------------------------------------ *)
(* Oracle vs hand-computed values                                      *)

let test_oracle_timeline () =
  let o =
    oracle_with [ "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>" ]
  in
  Oracle.put o "s|ann|bob" "1";
  Oracle.put o "p|bob|0005" "hi";
  Oracle.put o "p|bob|0010" "yo";
  Oracle.put o "p|liz|0002" "unsubscribed";
  check_pairs "timeline"
    [ ("t|ann|0005|bob", "hi"); ("t|ann|0010|bob", "yo") ]
    (Oracle.scan o ~lo:"t|" ~hi:"t}");
  Oracle.remove o "s|ann|bob";
  check_pairs "unsubscribe drops everything" [] (Oracle.scan o ~lo:"t|" ~hi:"t}");
  check_int "base untouched" 3 (List.length (Oracle.base_pairs o))

let test_oracle_count () =
  let o = oracle_with [ "karma|<author> = count vote|<author>|<id>|<voter>" ] in
  List.iter
    (fun k -> Oracle.put o k "1")
    [ "vote|ann|01|x"; "vote|ann|01|y"; "vote|ann|02|z"; "vote|bob|01|x" ];
  check_pairs "karma counts"
    [ ("karma|ann", "3"); ("karma|bob", "1") ]
    (Oracle.scan o ~lo:"karma|" ~hi:"karma}");
  Oracle.remove o "vote|bob|01|x";
  check_bool "empty group disappears" true (Oracle.get o "karma|bob" = None)

let test_oracle_chain () =
  let o =
    oracle_with [ "mid|<x>|<y> = copy base|<x>|<y>"; "topp|<y>|<x> = copy mid|<x>|<y>" ]
  in
  Oracle.put o "base|a|1" "v";
  Oracle.put o "base|b|2" "w";
  check_pairs "second hop sees first"
    [ ("topp|1|a", "v"); ("topp|2|b", "w") ]
    (Oracle.scan o ~lo:"topp|" ~hi:"topp}")

let test_oracle_pull () =
  let o =
    oracle_with
      [ "ct|<time>|<poster> = copy cp|<poster>|<time>";
        "t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>" ]
  in
  Oracle.put o "s|ann|bob" "1";
  Oracle.put o "cp|bob|0004" "celeb post";
  Oracle.put o "cp|liz|0009" "not followed";
  check_pairs "pull over pushed helper"
    [ ("t|ann|0004|bob", "celeb post") ]
    (Oracle.scan o ~lo:"t|" ~hi:"t}")

let test_join_tables () =
  let module Joinspec = Pequod_pattern.Joinspec in
  let spec =
    match
      Joinspec.parse "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
    with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  check_bool "output table" true (Joinspec.output_table spec = "t");
  check_bool "source tables in order" true (Joinspec.source_tables spec = [ "s"; "p" ])

(* ------------------------------------------------------------------ *)
(* Seed derivation                                                     *)

let test_derive_seed () =
  check_int "deterministic" (F.derive_seed 42 7) (F.derive_seed 42 7);
  check_bool "streams differ" true (F.derive_seed 42 0 <> F.derive_seed 42 1);
  check_bool "roots differ" true (F.derive_seed 42 0 <> F.derive_seed 43 0);
  for i = 0 to 99 do
    check_bool "non-negative" true (F.derive_seed 42 i >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Repro file roundtrip                                                *)

let test_repro_roundtrip () =
  let dir = Test_util.fresh_dir ~prefix:"pequod-fuzz-test" () in
  let path = Filename.concat dir "repro.txt" in
  let ops =
    [ F.Put ("a|b", "v with \"quotes\" and \xfe bytes");
      F.Remove "a|b";
      F.Scan ("", "\xfe");
      F.Count ("a|", "a}");
      F.Add_join 1;
      F.Tick;
      F.Crash ]
  in
  let scenario = Option.get (F.find_scenario "mixed") in
  let variant = Option.get (F.find_variant "persist") in
  F.write_repro ~path ~seed:1 ~iter:2 scenario variant ops;
  (match F.load_repro path with
  | Error msg -> Alcotest.fail msg
  | Ok (s, v, ops') ->
    check_bool "scenario name" true (s.F.sc_name = "mixed");
    check_bool "variant name" true (v.F.va_name = "persist");
    check_bool "ops roundtrip" true (ops = ops'));
  let bogus = Filename.concat dir "bogus.txt" in
  let oc = open_out bogus in
  output_string oc "scenario \"no-such-scenario\"\nvariant \"default\"\nop tick\n";
  close_out oc;
  check_bool "unknown scenario rejected" true (Result.is_error (F.load_repro bogus))

let test_gen_determinism () =
  (* the same (root, stream) regenerates the same op sequence *)
  let scenario = Option.get (F.find_scenario "twip") in
  let gen () = F.gen_ops scenario (Rng.create (F.derive_seed 7 3)) ~max_ops:40 in
  check_bool "same stream, same ops" true (gen () = gen ())

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)

let test_shrinker () =
  (* synthetic predicate: "fails" iff both culprit ops are present; the
     greedy pass must strip all 18 bystanders *)
  let ops = List.init 20 (fun i -> F.Put (Printf.sprintf "k|%02d" i, "v")) in
  let has k ops = List.exists (function F.Put (k', _) -> k' = k | _ -> false) ops in
  let still_fails ops = has "k|03" ops && has "k|13" ops in
  let small = F.shrink ~still_fails ops in
  check_int "shrunk to the culprits" 2 (List.length small);
  check_bool "culprits kept in order" true
    (small = [ F.Put ("k|03", "v"); F.Put ("k|13", "v") ])

(* ------------------------------------------------------------------ *)
(* Bounded differential sweep                                          *)

let test_bounded_sweep () =
  (* two full laps over every scenario x variant pair; any divergence
     fails the test (run `make fuzz` for the long version) *)
  let pairs = Array.length F.scenarios * Array.length F.variants in
  let dir = Test_util.fresh_dir ~prefix:"pequod-fuzz-test" () in
  let failures =
    F.run_sweep ~repro_dir:dir ~seed:20260806 ~iters:(2 * pairs) ~max_ops:25 ()
  in
  check_int "no divergences" 0 failures

let () =
  Alcotest.run "fuzz"
    [
      ( "oracle",
        [
          Alcotest.test_case "timeline join" `Quick test_oracle_timeline;
          Alcotest.test_case "count aggregate" `Quick test_oracle_count;
          Alcotest.test_case "chained joins" `Quick test_oracle_chain;
          Alcotest.test_case "pull join" `Quick test_oracle_pull;
          Alcotest.test_case "join table accessors" `Quick test_join_tables;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seed derivation" `Quick test_derive_seed;
          Alcotest.test_case "repro roundtrip" `Quick test_repro_roundtrip;
          Alcotest.test_case "generator determinism" `Quick test_gen_determinism;
          Alcotest.test_case "shrinker" `Quick test_shrinker;
        ] );
      ("sweep", [ Alcotest.test_case "all pairs, twice" `Quick test_bounded_sweep ]);
    ]
