(* Tests for the applications and baselines: graph generation, the workload
   mix, the Redis/memcached models — and the cross-system equivalence test:
   all five Twip backends must return identical timelines. *)

module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload
module Twip = Pequod_apps.Twip
module Newp = Pequod_apps.Newp
module Redis = Pequod_baselines.Redis_model
module Memcached = Pequod_baselines.Memcached_model
module Sorted_vec = Pequod_baselines.Sorted_vec

let check_bool = Test_util.check_bool
let check_int = Test_util.check_int

(* ------------------------------------------------------------------ *)
(* Social graph                                                        *)

let test_graph_shape () =
  let rng = Rng.create 11 in
  let g = Social_graph.generate ~rng ~nusers:500 ~avg_follows:10 () in
  check_int "users" 500 (Social_graph.nusers g);
  let edges = Social_graph.edge_count g in
  check_bool "enough edges" true (edges > 2000);
  (* follower counts are skewed: the most-followed user has far more
     followers than the median *)
  let counts =
    Array.init 500 (fun u -> Social_graph.follower_count g u) |> Array.to_list
    |> List.sort compare |> Array.of_list
  in
  check_bool "skewed" true (counts.(499) > 10 * max 1 counts.(250));
  (* following/followers are consistent inverses *)
  let ok = ref true in
  for u = 0 to 499 do
    Array.iter
      (fun p -> if not (Array.mem u (Social_graph.followers g p)) then ok := false)
      (Social_graph.following g u)
  done;
  check_bool "inverse consistency" true !ok

let test_graph_deterministic () =
  let g1 = Social_graph.generate ~rng:(Rng.create 7) ~nusers:100 ~avg_follows:5 () in
  let g2 = Social_graph.generate ~rng:(Rng.create 7) ~nusers:100 ~avg_follows:5 () in
  check_bool "same graph" true
    (Array.for_all2 ( = ) (Array.init 100 (Social_graph.following g1))
       (Array.init 100 (Social_graph.following g2)))

let test_no_self_follow () =
  let rng = Rng.create 3 in
  let g = Social_graph.generate ~rng ~nusers:200 ~avg_follows:8 () in
  let ok = ref true in
  for u = 0 to 199 do
    if Array.mem u (Social_graph.following g u) then ok := false
  done;
  check_bool "no self follows" true !ok

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let test_workload_mix () =
  let rng = Rng.create 5 in
  let g = Social_graph.generate ~rng ~nusers:300 ~avg_follows:8 () in
  let w = Workload.generate ~rng ~graph:g ~total_ops:20_000 () in
  let frac n = float_of_int n /. 20_000.0 in
  check_bool "5% logins" true (abs_float (frac w.Workload.nlogins -. 0.05) < 0.01);
  check_bool "9% subs" true (abs_float (frac w.Workload.nsubs -. 0.09) < 0.01);
  check_bool "85% checks" true (abs_float (frac w.Workload.nchecks -. 0.85) < 0.015);
  check_bool "1% posts" true (abs_float (frac w.Workload.nposts -. 0.01) < 0.005);
  (* post times strictly increase *)
  let last = ref 0 in
  let ok = ref true in
  Array.iter
    (function
      | Workload.Post (_, t) ->
        if t <= !last then ok := false;
        last := t
      | _ -> ())
    w.Workload.ops;
  check_bool "times increase" true !ok

(* ------------------------------------------------------------------ *)
(* Baseline models                                                     *)

let test_sorted_vec () =
  let v = Sorted_vec.create () in
  Sorted_vec.add v ~score:"0100" ~member:"b";
  Sorted_vec.add v ~score:"0050" ~member:"a";
  Sorted_vec.add v ~score:"0200" ~member:"c";
  Alcotest.(check (list (pair string string)))
    "sorted" [ ("0050", "a"); ("0100", "b"); ("0200", "c") ] (Sorted_vec.to_list v);
  Alcotest.(check (list (pair string string)))
    "range" [ ("0100", "b") ]
    (Sorted_vec.range_by_score v ~min_score:"0060" ~max_score:"0150");
  (* duplicate (score, member) replaces *)
  Sorted_vec.add v ~score:"0100" ~member:"b";
  check_int "no dup" 3 (Sorted_vec.length v);
  check_bool "remove" true (Sorted_vec.remove v ~score:"0050" ~member:"a");
  check_bool "remove absent" false (Sorted_vec.remove v ~score:"0050" ~member:"a");
  check_int "len" 2 (Sorted_vec.length v)

let prop_sorted_vec_model =
  let open QCheck2 in
  let pair_gen = Gen.pair (Gen.map (Printf.sprintf "%03d") (Gen.int_bound 50)) (Gen.map (Printf.sprintf "m%d") (Gen.int_bound 10)) in
  Test.make ~name:"sorted_vec matches sorted-list model" ~count:300
    Gen.(list_size (int_range 0 100) pair_gen)
    (fun pairs ->
      let v = Sorted_vec.create () in
      List.iter (fun (s, m) -> Sorted_vec.add v ~score:s ~member:m) pairs;
      let model = List.sort_uniq compare pairs in
      Sorted_vec.to_list v = model)

let test_redis_model () =
  let r = Redis.create () in
  Redis.set r "k" "v";
  Alcotest.(check (option string)) "get" (Some "v") (Redis.get r "k");
  Redis.sadd r "s" "a";
  Redis.sadd r "s" "a";
  Redis.sadd r "s" "b";
  Alcotest.(check (list string)) "smembers" [ "a"; "b" ] (List.sort compare (Redis.smembers r "s"));
  Redis.zadd r "z" ~score:"2" ~member:"two";
  Redis.zadd r "z" ~score:"1" ~member:"one";
  check_int "zcard" 2 (Redis.zcard r "z");
  Alcotest.(check (list (pair string string)))
    "zrange" [ ("1", "one"); ("2", "two") ]
    (Redis.zrangebyscore r "z" ~min_score:"" ~max_score:"9");
  check_bool "wrong type" true
    (match Redis.get r "z" with exception Invalid_argument _ -> true | _ -> false);
  check_bool "del" true (Redis.del r "k");
  check_bool "del absent" false (Redis.del r "k")

let test_memcached_model () =
  let m = Memcached.create () in
  check_bool "append to missing fails" false (Memcached.append m "k" "x");
  Memcached.set m "k" "a";
  check_bool "append" true (Memcached.append m "k" "b");
  Alcotest.(check (option string)) "value" (Some "ab") (Memcached.get m "k");
  check_bool "copied bytes counted" true (Memcached.bytes_copied m >= 2);
  check_bool "delete" true (Memcached.delete m "k")

(* ------------------------------------------------------------------ *)
(* Cross-system equivalence: the heart of the Fig 7 comparison         *)

let all_backends () =
  [
    Twip.pequod ();
    Twip.client_pequod ();
    Twip.redis ();
    Twip.memcached ();
    Twip.postgres ();
  ]

let test_backends_equivalent () =
  let rng = Rng.create 21 in
  let g = Social_graph.generate ~rng ~nusers:40 ~avg_follows:5 () in
  let w = Workload.generate ~rng ~graph:g ~total_ops:800 () in
  let backends = all_backends () in
  List.iter (fun b -> Twip.load_graph b g) backends;
  let results = List.map (fun b -> Twip.run b g w) backends in
  (* every system read the same number of timeline entries *)
  (match results with
  | first :: rest ->
    List.iter
      (fun (r : Twip.run_result) ->
        Alcotest.(check int)
          (Printf.sprintf "%s matches %s" r.Twip.system first.Twip.system)
          first.Twip.entries_read r.Twip.entries_read)
      rest
  | [] -> Alcotest.fail "no backends");
  (* and identical full timelines for every user at the end *)
  let full b u = b.Twip.timeline ~user:(Social_graph.user_name u) ~since:(Strkey.encode_time 0) in
  (match backends with
  | first :: rest ->
    for u = 0 to Social_graph.nusers g - 1 do
      let expect = full first u in
      List.iter
        (fun b ->
          Alcotest.(check (list (triple string string string)))
            (Printf.sprintf "user %d on %s" u b.Twip.name)
            expect (full b u))
        rest
    done
  | [] -> ())

let test_pequod_fewer_rpcs_than_client () =
  let rng = Rng.create 33 in
  let g = Social_graph.generate ~rng ~nusers:60 ~avg_follows:6 () in
  let w = Workload.generate ~rng ~graph:g ~total_ops:1_500 () in
  let pq = Twip.pequod () and cp = Twip.client_pequod () in
  Twip.load_graph pq g;
  Twip.load_graph cp g;
  let rp = Twip.run pq g w and rc = Twip.run cp g w in
  check_bool "client pequod pays more RPCs" true (rc.Twip.rpcs > rp.Twip.rpcs)

(* ------------------------------------------------------------------ *)
(* Newp                                                                *)

let test_newp_variants_equivalent () =
  let d = { Newp.narticles = 30; nusers = 20; ncomments = 60; nvotes = 120 } in
  let inter = Newp.make ~interleaved:true () in
  let sep = Newp.make ~interleaved:false () in
  Newp.populate inter ~rng:(Rng.create 9) d;
  Newp.populate sep ~rng:(Rng.create 9) d;
  (* both variants render identical pages *)
  for i = 0 to d.Newp.narticles - 1 do
    let author, id = Newp.article_of ~nusers:d.Newp.nusers i in
    let p1 = inter.Newp.read_page ~author ~id in
    let p2 = sep.Newp.read_page ~author ~id in
    Alcotest.(check string) "article" p1.Newp.article p2.Newp.article;
    Alcotest.(check int) "rank" p1.Newp.rank p2.Newp.rank;
    Alcotest.(check (list (triple string string string))) "comments" p1.Newp.comments p2.Newp.comments;
    Alcotest.(check (list (pair string int))) "karma" p1.Newp.karma p2.Newp.karma
  done;
  (* sessions keep them equivalent *)
  let r1 = Newp.run_sessions inter ~rng:(Rng.create 10) d ~nsessions:200 ~vote_rate:0.3 in
  let r2 = Newp.run_sessions sep ~rng:(Rng.create 10) d ~nsessions:200 ~vote_rate:0.3 in
  check_int "pages" r1.Newp.pages_read r2.Newp.pages_read;
  for i = 0 to d.Newp.narticles - 1 do
    let author, id = Newp.article_of ~nusers:d.Newp.nusers i in
    let p1 = inter.Newp.read_page ~author ~id in
    let p2 = sep.Newp.read_page ~author ~id in
    Alcotest.(check int) "rank after sessions" p1.Newp.rank p2.Newp.rank;
    Alcotest.(check (list (pair string int))) "karma after sessions" p1.Newp.karma p2.Newp.karma
  done

let test_newp_rpc_structure () =
  let d = { Newp.narticles = 20; nusers = 10; ncomments = 60; nvotes = 50 } in
  let inter = Newp.make ~interleaved:true () in
  let sep = Newp.make ~interleaved:false () in
  Newp.populate inter ~rng:(Rng.create 4) d;
  Newp.populate sep ~rng:(Rng.create 4) d;
  (* read-only sessions: interleaved needs far fewer RPCs *)
  let r1 = Newp.run_sessions inter ~rng:(Rng.create 6) d ~nsessions:150 ~vote_rate:0.0 in
  let r2 = Newp.run_sessions sep ~rng:(Rng.create 6) d ~nsessions:150 ~vote_rate:0.0 in
  check_bool "interleaved uses fewer RPCs" true (r1.Newp.rpcs < r2.Newp.rpcs);
  (* one scan per page plus the ~1% session comments *)
  check_bool "about one RPC per page" true
    (r1.Newp.rpcs <= r1.Newp.pages_read + (r1.Newp.pages_read / 10))

(* Property: the interleaved Newp page always equals a from-scratch
   reference computed over the base data. *)
let prop_newp_page_reference =
  let open QCheck2 in
  let authors = [| "u1"; "u2"; "u3" |] in
  let author = Gen.map (fun i -> authors.(i)) (Gen.int_bound 2) in
  let art = Gen.map (fun i -> Printf.sprintf "a%d" i) (Gen.int_bound 3) in
  let op_gen =
    Gen.oneof
      [
        Gen.map2 (fun a i -> `Article (a, i)) author art;
        Gen.map2 (fun (a, i) (c, who) -> `Comment (a, i, c, who))
          (Gen.pair author art)
          (Gen.pair (Gen.map (Printf.sprintf "c%d") (Gen.int_bound 5)) author);
        Gen.map2 (fun (a, i) v -> `Vote (a, i, v)) (Gen.pair author art) author;
        Gen.map2 (fun a i -> `Read (a, i)) author art;
      ]
  in
  Test.make ~name:"interleaved page equals reference model" ~count:80
    (Gen.list_size (Gen.int_range 1 50) op_gen)
    (fun ops ->
      let b = Newp.make ~interleaved:true () in
      let articles = Hashtbl.create 8 and comments = ref [] and votes = ref [] in
      let ok = ref true in
      let check_page a i =
        let page = b.Newp.read_page ~author:a ~id:i in
        let expect_article =
          Option.value ~default:"" (Hashtbl.find_opt articles (a, i))
        in
        let expect_rank =
          List.length (List.sort_uniq compare (List.filter (fun (a', i', _) -> a' = a && i' = i) !votes))
        in
        let expect_comments =
          List.sort_uniq compare
            (List.filter_map
               (fun (a', i', c, who, text) ->
                 if a' = a && i' = i then Some (c, who, text) else None)
               !comments)
        in
        let karma_of who =
          List.length (List.sort_uniq compare (List.filter (fun (a', _, _) -> a' = who) !votes))
        in
        let expect_karma =
          expect_comments
          |> List.map (fun (_, who, _) -> who)
          |> List.sort_uniq compare
          |> List.filter_map (fun who ->
                 let k = karma_of who in
                 if k > 0 then Some (who, k) else None)
        in
        if
          page.Newp.article <> expect_article
          || page.Newp.rank <> expect_rank
          || List.sort compare page.Newp.comments <> expect_comments
          || page.Newp.karma <> expect_karma
        then ok := false
      in
      List.iter
        (fun op ->
          match op with
          | `Article (a, i) ->
            Hashtbl.replace articles (a, i) ("body " ^ a ^ i);
            b.Newp.add_article ~author:a ~id:i ~text:("body " ^ a ^ i)
          | `Comment (a, i, c, who) ->
            comments := (a, i, c, who, "txt") :: !comments;
            b.Newp.add_comment ~author:a ~id:i ~cid:c ~commenter:who ~text:"txt"
          | `Vote (a, i, v) ->
            votes := (a, i, v) :: !votes;
            b.Newp.vote ~author:a ~id:i ~voter:v
          | `Read (a, i) -> check_page a i)
        ops;
      List.iter (fun a -> List.iter (fun i -> check_page a i) [ "a0"; "a1"; "a2"; "a3" ])
        (Array.to_list authors);
      b.Newp.shutdown ();
      !ok)

let () =
  Alcotest.run "apps"
    [
      ( "social-graph",
        [
          Alcotest.test_case "shape" `Quick test_graph_shape;
          Alcotest.test_case "deterministic" `Quick test_graph_deterministic;
          Alcotest.test_case "no self-follow" `Quick test_no_self_follow;
        ] );
      ("workload", [ Alcotest.test_case "mix" `Quick test_workload_mix ]);
      ( "baseline-models",
        [
          Alcotest.test_case "sorted vec" `Quick test_sorted_vec;
          Alcotest.test_case "redis" `Quick test_redis_model;
          Alcotest.test_case "memcached" `Quick test_memcached_model;
        ] );
      ( "baseline-props",
        [ QCheck_alcotest.to_alcotest ~long:false prop_sorted_vec_model ] );
      ( "twip",
        [
          Alcotest.test_case "five backends equivalent" `Slow test_backends_equivalent;
          Alcotest.test_case "pequod fewer rpcs" `Quick test_pequod_fewer_rpcs_than_client;
        ] );
      ( "newp",
        [
          Alcotest.test_case "variants equivalent" `Slow test_newp_variants_equivalent;
          Alcotest.test_case "rpc structure" `Quick test_newp_rpc_structure;
        ] );
      ("newp-props", [ QCheck_alcotest.to_alcotest ~long:false prop_newp_page_reference ]);
    ]
