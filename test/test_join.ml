(* End-to-end tests of the cache-join engine: execution, incremental
   maintenance, lazy invalidation, aggregates, pull/snapshot annotations,
   chained joins, eviction, resolvers — plus the golden property that
   incremental maintenance always equals from-scratch evaluation. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Joinspec = Pequod_pattern.Joinspec

let check_bool = Test_util.check_bool
let check_int = Test_util.check_int
let check_pairs = Test_util.check_pairs
let tm = Test_util.tm

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let make_twip ?config () =
  let s = Server.create ?config () in
  Server.add_join_exn s timeline_join;
  s

let post s poster time text = Server.put s (Printf.sprintf "p|%s|%s" poster (tm time)) text
let subscribe s user poster = Server.put s (Printf.sprintf "s|%s|%s" user poster) "1"
let unsubscribe s user poster = Server.remove s (Printf.sprintf "s|%s|%s" user poster)

let timeline ?(from = 0) s user =
  Server.scan s
    ~lo:(Printf.sprintf "t|%s|%s" user (tm from))
    ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))

(* ------------------------------------------------------------------ *)
(* Basic timeline behaviour (§2.2)                                     *)

let test_timeline_basic () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  subscribe s "ann" "liz";
  post s "bob" 100 "hello, world!";
  post s "liz" 124 "i'm hungry";
  post s "jim" 130 "not followed";
  check_pairs "timeline"
    [ ("t|ann|0100|bob", "hello, world!"); ("t|ann|0124|liz", "i'm hungry") ]
    (timeline s "ann");
  Server.validate s

let test_timeline_time_bound () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  post s "bob" 90 "old";
  post s "bob" 110 "new";
  check_pairs "only recent" [ ("t|ann|0110|bob", "new") ] (timeline ~from:100 s "ann");
  (* a later scan from 0 extends the materialized range backwards *)
  check_pairs "full" [ ("t|ann|0090|bob", "old"); ("t|ann|0110|bob", "new") ] (timeline s "ann");
  Server.validate s

let test_incremental_post () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  post s "bob" 100 "first";
  ignore (timeline s "ann");
  let execs_before = Server.counter s "exec.recompute_region" in
  (* a new post must flow into the materialized timeline eagerly *)
  post s "bob" 120 "second";
  check_pairs "updated"
    [ ("t|ann|0100|bob", "first"); ("t|ann|0120|bob", "second") ]
    (timeline s "ann");
  let execs_after = Server.counter s "exec.recompute_region" in
  check_int "no recompute needed" execs_before execs_after;
  Server.validate s

let test_post_update_and_remove () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  post s "bob" 100 "v1";
  ignore (timeline s "ann");
  post s "bob" 100 "v2";
  check_pairs "updated in place" [ ("t|ann|0100|bob", "v2") ] (timeline s "ann");
  Server.remove s ("p|bob|" ^ tm 100);
  check_pairs "removed" [] (timeline s "ann");
  Server.validate s

let test_multiple_followers () =
  let s = make_twip () in
  subscribe s "ann" "liz";
  subscribe s "bob" "liz";
  ignore (timeline s "ann");
  ignore (timeline s "bob");
  post s "liz" 200 "fan out";
  check_pairs "ann" [ ("t|ann|0200|liz", "fan out") ] (timeline s "ann");
  check_pairs "bob" [ ("t|bob|0200|liz", "fan out") ] (timeline s "bob");
  Server.validate s

(* Lazy check-source maintenance (§3.2): subscription changes are logged
   and applied at the next query. *)
let test_subscription_insert () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  post s "bob" 100 "from bob";
  post s "liz" 110 "from liz";
  ignore (timeline s "ann");
  subscribe s "ann" "liz";
  check_pairs "liz's old post appears"
    [ ("t|ann|0100|bob", "from bob"); ("t|ann|0110|liz", "from liz") ]
    (timeline s "ann");
  (* and liz's future posts flow eagerly *)
  post s "liz" 120 "more liz";
  check_pairs "new post flows"
    [ ("t|ann|0100|bob", "from bob"); ("t|ann|0110|liz", "from liz");
      ("t|ann|0120|liz", "more liz") ]
    (timeline s "ann");
  Server.validate s

let test_subscription_remove () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  subscribe s "ann" "liz";
  post s "bob" 100 "from bob";
  post s "liz" 110 "from liz";
  ignore (timeline s "ann");
  unsubscribe s "ann" "liz";
  check_pairs "liz gone" [ ("t|ann|0100|bob", "from bob") ] (timeline s "ann");
  (* liz's future posts must not reappear *)
  post s "liz" 120 "ignored";
  check_pairs "still gone" [ ("t|ann|0100|bob", "from bob") ] (timeline s "ann");
  (* but bob is unaffected *)
  post s "bob" 130 "still here";
  check_pairs "bob flows"
    [ ("t|ann|0100|bob", "from bob"); ("t|ann|0130|bob", "still here") ]
    (timeline s "ann");
  Server.validate s

let test_get_on_join_output () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  post s "bob" 100 "hi";
  Alcotest.(check (option string)) "get computes" (Some "hi") (Server.get s "t|ann|0100|bob");
  Alcotest.(check (option string)) "get missing" None (Server.get s "t|ann|0999|bob")

let test_scan_includes_base_data () =
  (* a scan is a plain range read: raw keys interleave with join output *)
  let s = make_twip () in
  subscribe s "ann" "bob";
  post s "bob" 100 "hi";
  let all = Server.scan s ~lo:"" ~hi:"\xfe" in
  check_pairs "everything"
    [ ("p|bob|0100", "hi"); ("s|ann|bob", "1"); ("t|ann|0100|bob", "hi") ]
    all

let test_cross_user_scan () =
  let s = make_twip () in
  subscribe s "ann" "bob";
  subscribe s "cal" "bob";
  post s "bob" 100 "x";
  let got = Server.scan s ~lo:"t|a" ~hi:"t|d" in
  check_pairs "both timelines" [ ("t|ann|0100|bob", "x"); ("t|cal|0100|bob", "x") ] got;
  Server.validate s

(* ------------------------------------------------------------------ *)
(* Aggregates (§2.3)                                                   *)

let karma_join = "karma|<author> = count vote|<author>|<id>|<voter>"

let test_count_aggregate () =
  let s = Server.create () in
  Server.add_join_exn s karma_join;
  Server.put s "vote|ann|01|bob" "1";
  Server.put s "vote|ann|01|liz" "1";
  Server.put s "vote|ann|02|bob" "1";
  Alcotest.(check (option string)) "karma 3" (Some "3") (Server.get s "karma|ann");
  (* incremental *)
  Server.put s "vote|ann|02|jim" "1";
  Alcotest.(check (option string)) "karma 4" (Some "4") (Server.get s "karma|ann");
  Server.remove s "vote|ann|01|bob";
  Alcotest.(check (option string)) "karma 3 again" (Some "3") (Server.get s "karma|ann");
  (* empty group disappears *)
  Server.remove s "vote|ann|01|liz";
  Server.remove s "vote|ann|02|bob";
  Server.remove s "vote|ann|02|jim";
  Alcotest.(check (option string)) "karma gone" None (Server.get s "karma|ann");
  Server.validate s

let test_sum_aggregate () =
  let s = Server.create () in
  Server.add_join_exn s "total|<user> = sum amount|<user>|<id>";
  Server.put s "amount|ann|a" "10";
  Server.put s "amount|ann|b" "32";
  Alcotest.(check (option string)) "sum" (Some "42") (Server.get s "total|ann");
  Server.put s "amount|ann|a" "20";
  Alcotest.(check (option string)) "sum after update" (Some "52") (Server.get s "total|ann");
  Server.remove s "amount|ann|b";
  Alcotest.(check (option string)) "sum after remove" (Some "20") (Server.get s "total|ann")

let test_min_max_aggregate () =
  let s = Server.create () in
  Server.add_join_exn s "low|<user> = min score|<user>|<id>";
  Server.add_join_exn s "high|<user> = max score|<user>|<id>";
  Server.put s "score|ann|a" "5";
  Server.put s "score|ann|b" "3";
  Server.put s "score|ann|c" "9";
  Alcotest.(check (option string)) "min" (Some "3") (Server.get s "low|ann");
  Alcotest.(check (option string)) "max" (Some "9") (Server.get s "high|ann");
  (* removing the extremum forces a recompute *)
  Server.remove s "score|ann|b";
  Alcotest.(check (option string)) "min recomputed" (Some "5") (Server.get s "low|ann");
  Server.remove s "score|ann|c";
  Alcotest.(check (option string)) "max recomputed" (Some "5") (Server.get s "high|ann");
  Server.validate s

let test_aggregate_groups_isolated () =
  let s = Server.create () in
  Server.add_join_exn s karma_join;
  Server.put s "vote|ann|01|bob" "1";
  Server.put s "vote|bob|07|ann" "1";
  Server.put s "vote|bob|07|liz" "1";
  check_pairs "both groups"
    [ ("karma|ann", "1"); ("karma|bob", "2") ]
    (Server.scan s ~lo:"karma|" ~hi:"karma}")

(* ------------------------------------------------------------------ *)
(* Newp interleaved joins (§2.3, Fig 1)                                *)

let newp_joins =
  [
    "karma|<author> = count vote|<author>|<id>|<voter>";
    "rank|<author>|<id> = count vote|<author>|<id>|<voter>";
    "page|<author>|<id>|a = copy article|<author>|<id>";
    "page|<author>|<id>|r = copy rank|<author>|<id>";
    "page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>";
    "page|<author>|<id>|k|<cid>|<commenter> = check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>";
  ]

let make_newp () =
  let s = Server.create () in
  List.iter (Server.add_join_exn s) newp_joins;
  s

let test_newp_page () =
  let s = make_newp () in
  Server.put s "article|bob|101" "A great article";
  Server.put s "comment|bob|101|c1|liz" "nice!";
  Server.put s "vote|bob|101|ann" "1";
  Server.put s "vote|bob|101|jim" "1";
  (* liz has karma from votes on her own article *)
  Server.put s "article|liz|201" "Liz writes";
  Server.put s "vote|liz|201|bob" "1";
  let page = Server.scan s ~lo:"page|bob|101|" ~hi:(Strkey.prefix_upper "page|bob|101|") in
  check_pairs "interleaved page"
    [
      ("page|bob|101|a", "A great article");
      ("page|bob|101|c|c1|liz", "nice!");
      ("page|bob|101|k|c1|liz", "1");
      ("page|bob|101|r", "2");
    ]
    page;
  (* karma updates propagate through the chained join *)
  Server.put s "vote|liz|201|jim" "1";
  let page = Server.scan s ~lo:"page|bob|101|" ~hi:(Strkey.prefix_upper "page|bob|101|") in
  check_bool "karma updated" true (List.mem ("page|bob|101|k|c1|liz", "2") page);
  (* a new vote on the article updates the rank copy *)
  Server.put s "vote|bob|101|liz" "1";
  let page = Server.scan s ~lo:"page|bob|101|" ~hi:(Strkey.prefix_upper "page|bob|101|") in
  check_bool "rank updated" true (List.mem ("page|bob|101|r", "3") page);
  Server.validate s

let test_newp_new_comment () =
  let s = make_newp () in
  Server.put s "article|bob|101" "art";
  ignore (Server.scan s ~lo:"page|bob|101|" ~hi:(Strkey.prefix_upper "page|bob|101|"));
  (* comment arrives after materialization: copy is eager, karma join is
     check-on-comment so it applies lazily *)
  Server.put s "article|liz|201" "liz art";
  Server.put s "vote|liz|201|ann" "1";
  Server.put s "comment|bob|101|c1|liz" "first!";
  let page = Server.scan s ~lo:"page|bob|101|" ~hi:(Strkey.prefix_upper "page|bob|101|") in
  check_pairs "comment and karma appear"
    [ ("page|bob|101|a", "art"); ("page|bob|101|c|c1|liz", "first!");
      ("page|bob|101|k|c1|liz", "1") ]
    page;
  Server.validate s

(* ------------------------------------------------------------------ *)
(* Maintenance annotations (§3.4)                                      *)

let test_pull_join () =
  let s = Server.create () in
  Server.add_join_exn s "mirror|<x>|<y> = pull copy src|<x>|<y>";
  Server.put s "src|a|1" "v1";
  let before = Server.size s in
  check_pairs "pull computes" [ ("mirror|a|1", "v1") ] (Server.scan s ~lo:"mirror|" ~hi:"mirror}");
  check_int "nothing cached" before (Server.size s);
  Server.put s "src|a|2" "v2";
  check_pairs "pull always fresh"
    [ ("mirror|a|1", "v1"); ("mirror|a|2", "v2") ]
    (Server.scan s ~lo:"mirror|" ~hi:"mirror}")

let test_celebrity_joins () =
  (* §2.3: celebrities post under cp|, a push helper range ct| combines
     them in time order, and a pull join filters per user *)
  let s = make_twip () in
  Server.add_join_exn s "ct|<time>|<poster> = copy cp|<poster>|<time>";
  Server.add_join_exn s
    "t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>";
  subscribe s "ann" "bob";
  subscribe s "ann" "celeb";
  post s "bob" 100 "normal";
  Server.put s ("cp|celeb|" ^ tm 110) "celebrity tweet";
  check_pairs "merged timeline"
    [ ("t|ann|0100|bob", "normal"); ("t|ann|0110|celeb", "celebrity tweet") ]
    (timeline s "ann");
  (* the celebrity tweet is never materialized in t| *)
  check_bool "not cached" true (Server.get s "ct|0110|celeb" <> None);
  let stored = Server.scan s ~lo:"t|ann|0110|celeb" ~hi:"t|ann|0110|celeb\x00" in
  check_pairs "pull result served" [ ("t|ann|0110|celeb", "celebrity tweet") ] stored;
  Server.validate s

let test_snapshot_join () =
  let clock = ref 1000.0 in
  let config = Config.default () in
  config.Config.now <- (fun () -> !clock);
  let s = Server.create ~config () in
  Server.add_join_exn s "snap|<x> = snapshot 30 copy live|<x>";
  Server.put s "live|a" "v1";
  check_pairs "computed" [ ("snap|a", "v1") ] (Server.scan s ~lo:"snap|" ~hi:"snap}");
  (* within the snapshot window changes are not reflected *)
  Server.put s "live|a" "v2";
  clock := 1010.0;
  check_pairs "stale inside window" [ ("snap|a", "v1") ] (Server.scan s ~lo:"snap|" ~hi:"snap}");
  (* after expiry the snapshot is recomputed *)
  clock := 1031.0;
  check_pairs "fresh after expiry" [ ("snap|a", "v2") ] (Server.scan s ~lo:"snap|" ~hi:"snap}");
  Server.validate s

(* ------------------------------------------------------------------ *)
(* Chained joins and installation checks                               *)

let test_chained_join_maintenance () =
  let s = Server.create () in
  Server.add_join_exn s "mid|<x>|<y> = copy base|<x>|<y>";
  Server.add_join_exn s "topp|<y>|<x> = copy mid|<x>|<y>";
  Server.put s "base|a|1" "v";
  check_pairs "chained" [ ("topp|1|a", "v") ] (Server.scan s ~lo:"topp|" ~hi:"topp}");
  (* updates ripple through both joins *)
  Server.put s "base|a|1" "w";
  check_pairs "ripple" [ ("topp|1|a", "w") ] (Server.scan s ~lo:"topp|" ~hi:"topp}");
  Server.put s "base|b|2" "x";
  check_pairs "new key ripples"
    [ ("topp|1|a", "w"); ("topp|2|b", "x") ]
    (Server.scan s ~lo:"topp|" ~hi:"topp}");
  Server.validate s

let test_cycle_rejected () =
  let s = Server.create () in
  Server.add_join_exn s "b|<x> = copy a|<x>";
  (match Server.add_join_text s "a|<x> = copy b|<x>" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "indirect cycle accepted");
  match Server.add_join_text s "c|<x> = copy c|<x>" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "direct cycle accepted"

(* ------------------------------------------------------------------ *)
(* Eviction (§2.5)                                                     *)

let test_eviction_and_recovery () =
  let config = Config.default () in
  config.Config.memory_limit <- Some 6_000;
  let s = Server.create ~config () in
  Server.add_join_exn s timeline_join;
  for u = 0 to 9 do
    let user = Printf.sprintf "u%02d" u in
    subscribe s user "bob"
  done;
  for i = 0 to 19 do
    post s "bob" i (Printf.sprintf "tweet %d" i)
  done;
  (* materialize many timelines to trip the limit *)
  for u = 0 to 9 do
    ignore (timeline s (Printf.sprintf "u%02d" u))
  done;
  check_bool "eviction happened" true
    (Server.counter s "evict.cover" > 0);
  (* evicted timelines recompute correctly on demand *)
  let tl = timeline s "u00" in
  check_int "complete timeline" 20 (List.length tl);
  check_pairs "first entry" [ ("t|u00|0000|bob", "tweet 0") ] [ List.hd tl ];
  Server.validate s

let test_eviction_join_interplay () =
  (* evicting a materialized join range must be invisible to readers:
     the next scan recomputes the range and returns identical pairs,
     matching a from-scratch oracle evaluation of the same base data *)
  let module Oracle = Pequod_oracle.Oracle in
  let config = Config.default () in
  config.Config.memory_limit <- Some 6_000;
  let s = Server.create ~config () in
  Server.add_join_exn s timeline_join;
  let oracle = Oracle.create () in
  (match Oracle.add_join_text oracle timeline_join with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let put k v =
    Server.put s k v;
    Oracle.put oracle k v
  in
  let users = List.init 10 (fun u -> Printf.sprintf "u%02d" u) in
  List.iter (fun u -> put (Printf.sprintf "s|%s|bob" u) "1") users;
  for i = 0 to 19 do
    put (Printf.sprintf "p|bob|%s" (tm i)) (Printf.sprintf "tweet %d" i)
  done;
  (* materializing every timeline overruns the limit and evicts ranges *)
  let before = List.map (fun u -> timeline s u) users in
  check_bool "eviction happened" true
    (Server.counter s "evict.cover" > 0);
  let recomputes = Server.counter s "exec.recompute_region" in
  let after = List.map (fun u -> timeline s u) users in
  List.iter2 (fun b a -> check_pairs "identical after eviction" b a) before after;
  check_bool "re-scan recomputed evicted ranges" true
    (Server.counter s "exec.recompute_region" > recomputes);
  List.iter
    (fun u ->
      let lo = Printf.sprintf "t|%s|" u in
      check_pairs "oracle agrees"
        (Oracle.scan oracle ~lo ~hi:(Strkey.prefix_upper lo))
        (timeline s u))
    users;
  Server.check_invariants s

(* ------------------------------------------------------------------ *)
(* Resolver / missing data (§3.3)                                      *)

let test_sync_resolver () =
  (* base posts live in a "database"; Pequod fetches ranges on demand *)
  let db = [ ("p|bob|0100", "hello"); ("p|bob|0150", "again"); ("p|liz|0120", "liz here") ] in
  let fetches = ref 0 in
  let s = make_twip () in
  Server.set_resolver s (fun ~table ~lo ~hi ->
      if table = "p" then begin
        incr fetches;
        Server.Resolved (List.filter (fun (k, _) -> Strkey.in_range ~lo ~hi k) db)
      end
      else Server.Local);
  subscribe s "ann" "bob";
  check_pairs "timeline from db"
    [ ("t|ann|0100|bob", "hello"); ("t|ann|0150|bob", "again") ]
    (timeline s "ann");
  let f1 = !fetches in
  check_bool "fetched" true (f1 > 0);
  ignore (timeline s "ann");
  check_int "no refetch when present" f1 !fetches

let test_deferred_resolver () =
  (* asynchronous backing store: scan_result reports what to fetch; the
     host feeds it and retries without recomputing completed work *)
  let pending = ref None in
  let s = make_twip () in
  Server.set_resolver s (fun ~table ~lo ~hi ->
      if table = "p" then begin
        pending := Some (table, lo, hi);
        Server.Deferred
      end
      else Server.Local);
  subscribe s "ann" "bob";
  (match Server.scan_result s ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|") with
  | `Missing [ (table, _, _) ] -> Alcotest.(check string) "missing table" "p" table
  | `Missing _ | `Ok _ -> Alcotest.fail "expected one missing range");
  (match !pending with
  | Some (table, lo, hi) ->
    Server.feed_base s ~table ~lo ~hi [ ("p|bob|0100", "hello") ]
  | None -> Alcotest.fail "resolver not consulted");
  (match Server.scan_result s ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|") with
  | `Ok pairs -> check_pairs "after feed" [ ("t|ann|0100|bob", "hello") ] pairs
  | `Missing _ -> Alcotest.fail "should be resolved now");
  Server.validate s

(* ------------------------------------------------------------------ *)
(* Ambiguity (§3)                                                      *)

let test_ambiguous_join_last_wins () =
  let s = Server.create () in
  (* dropping |poster: two same-time posts collide; Pequod stores one *)
  Server.add_join_exn s "t|<user>|<time> = check s|<user>|<poster> copy p|<poster>|<time>";
  Server.put s "s|ann|bob" "1";
  Server.put s "s|ann|liz" "1";
  Server.put s "p|bob|0100" "from bob";
  Server.put s "p|liz|0100" "from liz";
  let tl = Server.scan s ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|") in
  check_int "single collapsed output" 1 (List.length tl);
  check_bool "one of the two" true
    (List.mem tl [ [ ("t|ann|0100", "from bob") ]; [ ("t|ann|0100", "from liz") ] ])

(* ------------------------------------------------------------------ *)
(* Golden property: incremental maintenance == from-scratch evaluation *)

module Smap = Map.Make (String)

(* Naive reference: evaluate the timeline join over current base data. *)
let reference_timeline base =
  Smap.fold
    (fun k _ acc ->
      match String.split_on_char '|' k with
      | [ "s"; user; poster ] ->
        Smap.fold
          (fun k' v acc ->
            match String.split_on_char '|' k' with
            | [ "p"; poster'; time ] when String.equal poster poster' ->
              Smap.add (Printf.sprintf "t|%s|%s|%s" user time poster) v acc
            | _ -> acc)
          base acc
      | _ -> acc)
    base Smap.empty

let prop_incremental_equals_scratch =
  let open QCheck2 in
  let users = [| "ann"; "bob"; "cal"; "dee" |] in
  let user = Gen.map (fun i -> users.(i)) (Gen.int_bound 3) in
  let time = Gen.map (fun n -> Strkey.encode_int ~width:4 n) (Gen.int_bound 30) in
  let op_gen =
    Gen.oneof
      [
        Gen.map2 (fun u p -> `Sub (u, p)) user user;
        Gen.map2 (fun u p -> `Unsub (u, p)) user user;
        Gen.map2 (fun p (t, i) -> `Post (p, t, i)) user (Gen.pair time (Gen.int_bound 99));
        Gen.map2 (fun p t -> `Unpost (p, t)) user time;
        Gen.map (fun u -> `Check u) user;
        Gen.map2 (fun u t -> `CheckFrom (u, t)) user time;
      ]
  in
  let print_op = function
    | `Sub (u, p) -> Printf.sprintf "Sub(%s,%s)" u p
    | `Unsub (u, p) -> Printf.sprintf "Unsub(%s,%s)" u p
    | `Post (p, t, i) -> Printf.sprintf "Post(%s,%s,%d)" p t i
    | `Unpost (p, t) -> Printf.sprintf "Unpost(%s,%s)" p t
    | `Check u -> Printf.sprintf "Check(%s)" u
    | `CheckFrom (u, t) -> Printf.sprintf "CheckFrom(%s,%s)" u t
  in
  Test.make ~name:"incremental timeline == from-scratch join" ~count:120
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    (Gen.list_size (Gen.int_range 1 80) op_gen)
    (fun ops ->
      let s = make_twip () in
      let base = ref Smap.empty in
      let ok = ref true in
      let verify user from =
        let lo = Printf.sprintf "t|%s|%s" user from in
        let hi = Strkey.prefix_upper (Printf.sprintf "t|%s|" user) in
        let got = Server.scan s ~lo ~hi in
        let expect =
          reference_timeline !base |> Smap.bindings
          |> List.filter (fun (k, _) -> Strkey.in_range ~lo ~hi k)
        in
        if got <> expect then ok := false
      in
      List.iter
        (fun op ->
          match op with
          | `Sub (u, p) ->
            Server.put s (Printf.sprintf "s|%s|%s" u p) "1";
            base := Smap.add (Printf.sprintf "s|%s|%s" u p) "1" !base
          | `Unsub (u, p) ->
            Server.remove s (Printf.sprintf "s|%s|%s" u p);
            base := Smap.remove (Printf.sprintf "s|%s|%s" u p) !base
          | `Post (p, t, i) ->
            let v = Printf.sprintf "tweet%d" i in
            Server.put s (Printf.sprintf "p|%s|%s" p t) v;
            base := Smap.add (Printf.sprintf "p|%s|%s" p t) v !base
          | `Unpost (p, t) ->
            Server.remove s (Printf.sprintf "p|%s|%s" p t);
            base := Smap.remove (Printf.sprintf "p|%s|%s" p t) !base
          | `Check u -> verify u (Strkey.encode_int ~width:4 0)
          | `CheckFrom (u, t) -> verify u t)
        ops;
      (* final full verification for every user *)
      Array.iter (fun u -> verify u (Strkey.encode_int ~width:4 0)) users;
      Server.validate s;
      !ok)

(* Same property for the count aggregate. *)
let prop_aggregate_equals_scratch =
  let open QCheck2 in
  let authors = [| "ann"; "bob" |] in
  let author = Gen.map (fun i -> authors.(i)) (Gen.int_bound 1) in
  let id = Gen.map (fun n -> Printf.sprintf "%02d" n) (Gen.int_bound 5) in
  let voter = Gen.map (fun i -> [| "x"; "y"; "z" |].(i)) (Gen.int_bound 2) in
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun (a, (i, v)) -> `Vote (a, i, v)) (Gen.pair author (Gen.pair id voter));
        Gen.map (fun (a, (i, v)) -> `Unvote (a, i, v)) (Gen.pair author (Gen.pair id voter));
        Gen.map (fun a -> `Check a) author;
      ]
  in
  Test.make ~name:"incremental karma == from-scratch count" ~count:120
    (Gen.list_size (Gen.int_range 1 60) op_gen)
    (fun ops ->
      let s = Server.create () in
      Server.add_join_exn s karma_join;
      let base = ref Smap.empty in
      let ok = ref true in
      let verify a =
        let got = Server.get s ("karma|" ^ a) in
        let n =
          Smap.fold
            (fun k _ acc ->
              if String.starts_with ~prefix:("vote|" ^ a ^ "|") k then acc + 1 else acc)
            !base 0
        in
        let expect = if n = 0 then None else Some (string_of_int n) in
        if got <> expect then ok := false
      in
      List.iter
        (fun op ->
          match op with
          | `Vote (a, i, v) ->
            let k = Printf.sprintf "vote|%s|%s|%s" a i v in
            Server.put s k "1";
            base := Smap.add k "1" !base
          | `Unvote (a, i, v) ->
            let k = Printf.sprintf "vote|%s|%s|%s" a i v in
            Server.remove s k;
            base := Smap.remove k !base
          | `Check a -> verify a)
        ops;
      Array.iter verify authors;
      Server.validate s;
      !ok)

(* The optimization toggles must never change results, only performance. *)
let prop_config_equivalence =
  let open QCheck2 in
  let users = [| "ann"; "bob"; "cal" |] in
  let user = Gen.map (fun i -> users.(i)) (Gen.int_bound 2) in
  let time = Gen.map (fun n -> Strkey.encode_int ~width:4 n) (Gen.int_bound 20) in
  let op_gen =
    Gen.oneof
      [
        Gen.map2 (fun u p -> `Sub (u, p)) user user;
        Gen.map2 (fun u p -> `Unsub (u, p)) user user;
        Gen.map2 (fun p t -> `Post (p, t)) user time;
        Gen.map (fun u -> `Check u) user;
      ]
  in
  let print_op = function
    | `Sub (u, p) -> Printf.sprintf "Sub(%s,%s)" u p
    | `Unsub (u, p) -> Printf.sprintf "Unsub(%s,%s)" u p
    | `Post (p, t) -> Printf.sprintf "Post(%s,%s)" p t
    | `Check u -> Printf.sprintf "Check(%s)" u
  in
  Test.make ~name:"optimization flags do not change results" ~count:60
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    (Gen.list_size (Gen.int_range 1 50) op_gen)
    (fun ops ->
      let mk_config variant =
        let c = Config.default () in
        (match variant with
        | 0 -> ()
        | 1 -> c.Config.output_hints <- false
        | 2 -> c.Config.value_sharing <- false
        | 3 -> c.Config.combine_updaters <- false
        | 4 -> c.Config.lazy_checks <- false
        | 5 -> c.Config.pending_log_limit <- 1 (* force escalation *)
        | _ -> c.Config.table_config <- (fun _ -> Some 2));
        c
      in
      let run config =
        let s = make_twip ~config () in
        let outputs = ref [] in
        List.iter
          (fun op ->
            match op with
            | `Sub (u, p) -> Server.put s (Printf.sprintf "s|%s|%s" u p) "1"
            | `Unsub (u, p) -> Server.remove s (Printf.sprintf "s|%s|%s" u p)
            | `Post (p, t) -> Server.put s (Printf.sprintf "p|%s|%s" p t) ("m" ^ t)
            | `Check u -> outputs := timeline s u :: !outputs)
          ops;
        Array.iter (fun u -> outputs := timeline s u :: !outputs) users;
        Server.validate s;
        !outputs
      in
      let baseline = run (mk_config 0) in
      List.for_all (fun v -> run (mk_config v) = baseline) [ 1; 2; 3; 4; 5; 6 ])

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "join-engine"
    [
      ( "timeline",
        [
          Alcotest.test_case "basic" `Quick test_timeline_basic;
          Alcotest.test_case "time bound" `Quick test_timeline_time_bound;
          Alcotest.test_case "incremental post" `Quick test_incremental_post;
          Alcotest.test_case "update and remove" `Quick test_post_update_and_remove;
          Alcotest.test_case "multiple followers" `Quick test_multiple_followers;
          Alcotest.test_case "subscription insert" `Quick test_subscription_insert;
          Alcotest.test_case "subscription remove" `Quick test_subscription_remove;
          Alcotest.test_case "get on output" `Quick test_get_on_join_output;
          Alcotest.test_case "scan includes base" `Quick test_scan_includes_base_data;
          Alcotest.test_case "cross-user scan" `Quick test_cross_user_scan;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "count" `Quick test_count_aggregate;
          Alcotest.test_case "sum" `Quick test_sum_aggregate;
          Alcotest.test_case "min/max" `Quick test_min_max_aggregate;
          Alcotest.test_case "groups isolated" `Quick test_aggregate_groups_isolated;
        ] );
      ( "newp",
        [
          Alcotest.test_case "interleaved page" `Quick test_newp_page;
          Alcotest.test_case "new comment" `Quick test_newp_new_comment;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "pull" `Quick test_pull_join;
          Alcotest.test_case "celebrity" `Quick test_celebrity_joins;
          Alcotest.test_case "snapshot" `Quick test_snapshot_join;
        ] );
      ( "composition",
        [
          Alcotest.test_case "chained maintenance" `Quick test_chained_join_maintenance;
          Alcotest.test_case "cycles rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "ambiguous collapses" `Quick test_ambiguous_join_last_wins;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "evict and recover" `Quick test_eviction_and_recovery;
          Alcotest.test_case "evict x join interplay" `Quick test_eviction_join_interplay;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "sync" `Quick test_sync_resolver;
          Alcotest.test_case "deferred" `Quick test_deferred_resolver;
        ] );
      ( "properties",
        qsuite
          [
            prop_incremental_equals_scratch;
            prop_aggregate_equals_scratch;
            prop_config_equivalence;
          ] );
    ]
