(* CLI driver for the model-based fuzzer; see fuzz.ml and `make fuzz`. *)

let () =
  let seed = ref 42 in
  let iters = ref 1000 in
  let max_ops = ref 40 in
  let scenario = ref "" in
  let variant = ref "" in
  let replay = ref "" in
  let verbose = ref false in
  let spec =
    [ ("--seed", Arg.Set_int seed, "N  root seed (default 42)");
      ("--iters", Arg.Set_int iters, "N  number of op sequences (default 1000)");
      ("--max-ops", Arg.Set_int max_ops, "N  max ops per sequence (default 40)");
      ("--scenario", Arg.Set_string scenario, "NAME  run only this scenario");
      ("--variant", Arg.Set_string variant, "NAME  run only this config variant");
      ("--replay", Arg.Set_string replay, "FILE  replay a repro file instead of sweeping");
      ("--verbose", Arg.Set verbose, "  print per-iteration / per-op detail") ]
  in
  let usage = "fuzz_main [options]\nDifferential fuzzer: engine vs oracle." in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let module F = Pequod_fuzz.Fuzz in
  if !replay <> "" then
    match F.replay_file ~verbose:!verbose !replay with
    | Ok () ->
      print_endline "replay: no divergence";
      exit 0
    | Error f ->
      Printf.printf "replay: FAILED at step %d:\n  %s\n" f.F.f_step f.F.f_reason;
      exit 1
  else begin
    let opt s = if s = "" then None else Some s in
    let failures =
      F.run_sweep ~verbose:!verbose ?scenario_filter:(opt !scenario)
        ?variant_filter:(opt !variant) ~seed:!seed ~iters:!iters ~max_ops:!max_ops ()
    in
    exit (if failures = 0 then 0 else 1)
  end
