(** Model-based fuzz harness: replay deterministic op sequences against
    both the optimized engine ({!Pequod_core.Server}) and the naive
    reference model ({!Pequod_oracle.Oracle}) under a sweep of
    {!Config.t} variants, asserting result equality on every read and
    re-checking every structural invariant after every op.

    One {e case} is (scenario, variant, op sequence):

    - a {e scenario} fixes the installed joins and the op generator's
      key vocabulary (timelines, aggregates, chained joins, pull,
      snapshot, the Newp page, ...);
    - a {e variant} fixes the engine configuration (each §3/§4
      optimization toggled, subtables, eviction pressure, durability
      with crash-recovery, remote mode, where a second in-process
      engine plays the home server behind the resolver, or migrate
      mode, where two home engines sit behind a mutable range directory
      and slices of the live keyspace are periodically live-migrated
      between them mid-sequence);
    - the op sequence is derived from one root seed via {!derive_seed},
      so every run, failure, and shrink is reproducible byte-for-byte.

    [Crash] ops (meaningful under the persist variants) kill the engine
    through {!Persist.crash}, recover a fresh one from the data
    directory, and keep going — the oracle never crashes, so recovered
    state is differentially checked like any other.

    On divergence the driver greedily shrinks the sequence (ddmin-style
    chunk removal) and writes a replayable repro file; see
    [fuzz_main.ml] or `make fuzz` / `make fuzz-replay`. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Persist = Pequod_persist.Persist
module Oracle = Pequod_oracle.Oracle
module Shard = Pequod_server_lib.Shard
module Net_server = Pequod_server_lib.Net_server

(* ------------------------------------------------------------------ *)
(* Seed derivation                                                     *)

(** Stream [i] of root seed [root], by splitmix64 finalization of
    [root + (i+1) * golden-gamma]. Every randomized component derives
    its stream this way (see also [test/test_util.ml]), so op sequence
    [i] of a fuzz run is regenerable from the root seed alone and
    neighbouring streams are statistically independent. *)
let derive_seed root i =
  let open Int64 in
  let z = add (of_int root) (mul 0x9E3779B97F4A7C15L (of_int (i + 1))) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)

type op =
  | Put of string * string
  | Put_batch of (string * string) list (* Server.put_batch, argument order *)
  | Remove of string
  | Scan of string * string (* compare engine vs oracle over [lo, hi) *)
  | Count of string * string (* compare result cardinality only *)
  | Add_join of int (* install scenario.sc_extra.(i), once *)
  | Tick (* advance the logical clock by 1s *)
  | Crash (* persist variants: kill + recover the engine *)

let op_to_line = function
  | Put (k, v) -> Printf.sprintf "op put %S %S" k v
  | Put_batch pairs ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "op putbatch";
    List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %S %S" k v)) pairs;
    Buffer.contents buf
  | Remove k -> Printf.sprintf "op remove %S" k
  | Scan (lo, hi) -> Printf.sprintf "op scan %S %S" lo hi
  | Count (lo, hi) -> Printf.sprintf "op count %S %S" lo hi
  | Add_join i -> Printf.sprintf "op addjoin %d" i
  | Tick -> "op tick"
  | Crash -> "op crash"

(* "op putbatch" followed by any number of %S %S pairs on one line *)
let parse_putbatch rest =
  let sc = Scanf.Scanning.from_string rest in
  let acc = ref [] in
  let bad = ref false in
  (try
     while not (Scanf.Scanning.end_of_input sc) do
       Scanf.bscanf sc " %S %S" (fun k v -> acc := (k, v) :: !acc)
     done
   with Scanf.Scan_failure _ | End_of_file | Failure _ -> bad := true);
  if !bad then None else Some (Put_batch (List.rev !acc))

let op_of_line line =
  let try_scan fmt build = try Some (Scanf.sscanf line fmt build) with _ -> None in
  match String.trim line with
  | "op tick" -> Some Tick
  | "op crash" -> Some Crash
  | line when String.length line >= 11 && String.sub line 0 11 = "op putbatch" ->
    parse_putbatch (String.sub line 11 (String.length line - 11))
  | _ -> (
    match try_scan "op put %S %S" (fun k v -> Put (k, v)) with
    | Some _ as r -> r
    | None -> (
      match try_scan "op remove %S" (fun k -> Remove k) with
      | Some _ as r -> r
      | None -> (
        match try_scan "op scan %S %S" (fun lo hi -> Scan (lo, hi)) with
        | Some _ as r -> r
        | None -> (
          match try_scan "op count %S %S" (fun lo hi -> Count (lo, hi)) with
          | Some _ as r -> r
          | None -> try_scan "op addjoin %d" (fun i -> Add_join i)))))

(* ------------------------------------------------------------------ *)
(* Scenarios: joins + an op generator over a small key vocabulary      *)

type scenario = {
  sc_name : string;
  sc_joins : string list; (* installed before the first op *)
  sc_extra : string list; (* pool for Add_join ops *)
  sc_tick : float; (* clock advance before every compared read; snapshot
                      scenarios set it past the period so staleness never
                      enters the comparison (the oracle is always fresh) *)
  sc_gen : Rng.t -> op;
}

let users = [| "ann"; "bob"; "cal"; "dee" |]
let tm n = Strkey.encode_int ~width:4 n
let ordered a b = if a <= b then (a, b) else (b, a)
let prefix_range p = (p, Strkey.prefix_upper p)
let exact_range k = (k, Strkey.key_after k)

let timeline_join =
  "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let karma_join = "karma|<author> = count vote|<author>|<id>|<voter>"

let twip_scenario =
  let sub rng = Printf.sprintf "s|%s|%s" (Rng.pick rng users) (Rng.pick rng users) in
  let post rng = Printf.sprintf "p|%s|%s" (Rng.pick rng users) (tm (Rng.int rng 25)) in
  let read rng =
    match Rng.int rng 4 with
    | 0 -> ("", "\xfe")
    | 1 -> prefix_range (Printf.sprintf "t|%s|" (Rng.pick rng users))
    | 2 ->
      let u = Rng.pick rng users in
      let a, b = ordered (Rng.int rng 25) (Rng.int rng 25) in
      (Printf.sprintf "t|%s|%s" u (tm a), Printf.sprintf "t|%s|%s" u (tm (b + 1)))
    | _ -> ("t|", "t}")
  in
  { sc_name = "twip";
    sc_joins = [ timeline_join ];
    sc_extra = [];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 22 -> Put (sub rng, "1")
        | n when n < 32 -> Remove (sub rng)
        | n when n < 52 -> Put (post rng, Printf.sprintf "m%d" (Rng.int rng 100))
        | n when n < 60 -> Remove (post rng)
        | n when n < 84 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let karma_scenario =
  let authors = [| "ann"; "bob" |] and ids = [| "01"; "02"; "03" |] in
  let voters = [| "x"; "y"; "z" |] in
  let vote rng =
    Printf.sprintf "vote|%s|%s|%s" (Rng.pick rng authors) (Rng.pick rng ids)
      (Rng.pick rng voters)
  in
  let read rng =
    match Rng.int rng 3 with
    | 0 -> prefix_range "karma|"
    | 1 -> exact_range ("karma|" ^ Rng.pick rng authors)
    | _ -> ("", "\xfe")
  in
  { sc_name = "karma";
    sc_joins = [ karma_join ];
    sc_extra = [];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 38 -> Put (vote rng, "1")
        | n when n < 60 -> Remove (vote rng)
        | n when n < 80 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let agg_scenario =
  (* min, max and sum over one numeric source; values are fixed-width so
     lexicographic min/max equals numeric min/max *)
  let ids = [| "a"; "b"; "c"; "d" |] in
  let score rng =
    Printf.sprintf "score|%s|%s" (Rng.pick rng users) (Rng.pick rng ids)
  in
  let read rng =
    match Rng.int rng 4 with
    | 0 -> prefix_range "low|"
    | 1 -> prefix_range "high|"
    | 2 -> exact_range ("total|" ^ Rng.pick rng users)
    | _ -> ("", "\xfe")
  in
  { sc_name = "agg";
    sc_joins =
      [ "low|<user> = min score|<user>|<id>";
        "high|<user> = max score|<user>|<id>";
        "total|<user> = sum score|<user>|<id>" ];
    sc_extra = [];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 36 -> Put (score rng, Strkey.encode_int ~width:2 (Rng.int rng 100))
        | n when n < 58 -> Remove (score rng)
        | n when n < 80 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let chain_scenario =
  let xs = [| "a"; "b"; "c" |] and ys = [| "1"; "2"; "3" |] in
  let base rng = Printf.sprintf "base|%s|%s" (Rng.pick rng xs) (Rng.pick rng ys) in
  let read rng =
    match Rng.int rng 4 with
    | 0 -> prefix_range "topp|"
    | 1 -> prefix_range "mid|"
    | 2 -> exact_range (Printf.sprintf "topp|%s|%s" (Rng.pick rng ys) (Rng.pick rng xs))
    | _ -> ("", "\xfe")
  in
  { sc_name = "chain";
    sc_joins = [ "mid|<x>|<y> = copy base|<x>|<y>"; "topp|<y>|<x> = copy mid|<x>|<y>" ];
    sc_extra = [];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 34 -> Put (base rng, Printf.sprintf "v%d" (Rng.int rng 50))
        | n when n < 52 -> Remove (base rng)
        | n when n < 78 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let newp_scenario =
  let authors = [| "ann"; "bob" |] and aids = [| "101"; "102" |] in
  let cids = [| "c1"; "c2" |] and people = [| "ann"; "bob"; "liz" |] in
  let article rng = Printf.sprintf "article|%s|%s" (Rng.pick rng authors) (Rng.pick rng aids) in
  let comment rng =
    Printf.sprintf "comment|%s|%s|%s|%s" (Rng.pick rng authors) (Rng.pick rng aids)
      (Rng.pick rng cids) (Rng.pick rng people)
  in
  let vote rng =
    Printf.sprintf "vote|%s|%s|%s" (Rng.pick rng authors) (Rng.pick rng aids)
      (Rng.pick rng people)
  in
  let read rng =
    match Rng.int rng 4 with
    | 0 ->
      prefix_range (Printf.sprintf "page|%s|%s|" (Rng.pick rng authors) (Rng.pick rng aids))
    | 1 -> prefix_range "karma|"
    | 2 -> prefix_range "page|"
    | _ -> ("", "\xfe")
  in
  { sc_name = "newp";
    sc_joins =
      [ karma_join;
        "rank|<author>|<id> = count vote|<author>|<id>|<voter>";
        "page|<author>|<id>|a = copy article|<author>|<id>";
        "page|<author>|<id>|r = copy rank|<author>|<id>";
        "page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>";
        "page|<author>|<id>|k|<cid>|<commenter> = check \
         comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>" ];
    sc_extra = [];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 12 -> Put (article rng, Printf.sprintf "art%d" (Rng.int rng 10))
        | n when n < 26 -> Put (comment rng, Printf.sprintf "c%d" (Rng.int rng 10))
        | n when n < 32 -> Remove (comment rng)
        | n when n < 48 -> Put (vote rng, "1")
        | n when n < 58 -> Remove (vote rng)
        | n when n < 82 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let pull_scenario =
  (* the celebrity split (§2.3): a push helper range in time order and a
     per-user pull filter over it *)
  let sub rng = Printf.sprintf "s|%s|%s" (Rng.pick rng users) (Rng.pick rng users) in
  let cpost rng = Printf.sprintf "cp|%s|%s" (Rng.pick rng users) (tm (Rng.int rng 25)) in
  let read rng =
    match Rng.int rng 4 with
    | 0 -> prefix_range (Printf.sprintf "t|%s|" (Rng.pick rng users))
    | 1 -> prefix_range "ct|"
    | 2 -> ("t|", "t}")
    | _ -> ("", "\xfe")
  in
  { sc_name = "pull";
    sc_joins =
      [ "ct|<time>|<poster> = copy cp|<poster>|<time>";
        "t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>" ];
    sc_extra = [];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 22 -> Put (sub rng, "1")
        | n when n < 32 -> Remove (sub rng)
        | n when n < 50 -> Put (cpost rng, Printf.sprintf "c%d" (Rng.int rng 50))
        | n when n < 58 -> Remove (cpost rng)
        | n when n < 82 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let snapshot_scenario =
  let xs = [| "a"; "b"; "c"; "d" |] in
  let live rng = "live|" ^ Rng.pick rng xs in
  let read rng =
    match Rng.int rng 3 with
    | 0 -> prefix_range "snap|"
    | 1 -> exact_range ("snap|" ^ Rng.pick rng xs)
    | _ -> ("", "\xfe")
  in
  { sc_name = "snapshot";
    sc_joins = [ "snap|<x> = snapshot 30 copy live|<x>" ];
    sc_extra = [];
    (* past the 30s period: every compared read sees an expired snapshot
       and must recompute, which is the semantics the oracle models *)
    sc_tick = 31.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 36 -> Put (live rng, Printf.sprintf "m%d" (Rng.int rng 50))
        | n when n < 54 -> Remove (live rng)
        | n when n < 80 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let mixed_scenario =
  (* timelines up front, aggregates installed mid-sequence over both a
     dedicated source table and the timeline's own check table *)
  let sub rng = Printf.sprintf "s|%s|%s" (Rng.pick rng users) (Rng.pick rng users) in
  let post rng = Printf.sprintf "p|%s|%s" (Rng.pick rng users) (tm (Rng.int rng 25)) in
  let vote rng =
    Printf.sprintf "vote|%s|%s|%s" (Rng.pick rng users) (Rng.pick rng [| "01"; "02" |])
      (Rng.pick rng users)
  in
  let read rng =
    match Rng.int rng 4 with
    | 0 -> prefix_range (Printf.sprintf "t|%s|" (Rng.pick rng users))
    | 1 -> prefix_range "karma|"
    | 2 -> prefix_range "fcount|"
    | _ -> ("", "\xfe")
  in
  { sc_name = "mixed";
    sc_joins = [ timeline_join ];
    sc_extra = [ karma_join; "fcount|<user> = count s|<user>|<poster>" ];
    sc_tick = 1.0;
    sc_gen =
      (fun rng ->
        match Rng.int rng 100 with
        | n when n < 18 -> Put (sub rng, "1")
        | n when n < 26 -> Remove (sub rng)
        | n when n < 40 -> Put (post rng, Printf.sprintf "m%d" (Rng.int rng 100))
        | n when n < 46 -> Remove (post rng)
        | n when n < 56 -> Put (vote rng, "1")
        | n when n < 62 -> Remove (vote rng)
        | n when n < 68 -> Add_join (Rng.int rng 2)
        | n when n < 84 -> let lo, hi = read rng in Scan (lo, hi)
        | n when n < 92 -> let lo, hi = read rng in Count (lo, hi)
        | n when n < 97 -> Tick
        | _ -> Crash) }

let scenarios =
  [| twip_scenario; karma_scenario; agg_scenario; chain_scenario; newp_scenario;
     pull_scenario; snapshot_scenario; mixed_scenario |]

(* ------------------------------------------------------------------ *)
(* Config variants                                                     *)

type persist_kind = No_persist | Persist_always of { snapshot_every : int }

type variant = {
  va_name : string;
  va_tweak : Config.t -> unit;
  va_persist : persist_kind;
  va_remote : bool;
      (** a second plain engine plays the home server for every base
          table; the engine under test resolves missing ranges from it
          (§3.3), with writes forwarded only for subscribed ranges *)
  va_migrate : bool;
      (** remote mode with TWO home engines behind a mutable range
          directory: a periodic migration event snapshot-copies part of
          the live keyspace to the other home and flips the directory,
          modelling live range migration — reads must follow the
          directory only, and the compute side's subscriptions survive
          the move (the Fetch handoff) *)
  va_shards : int;
      (** 0 = off; k >= 2 models the shard-per-core server: k engines,
          each owning a component-space slice of every base table (the
          same cut semantics as [Shard.owner_of_cuts]), writes routed to
          the owner and forwarded to subscribed siblings, sink tables
          computed by whichever engine serves the scan from fetched,
          subscription-fresh source slices *)
  va_async_feed : bool;
      (** remote mode driven like the asynchronous read path: each
          [`Missing] round feeds a random nonempty subset of the
          reported ranges, in a random order, before retrying — the
          fetch completions of a parked scan land in arbitrary order,
          and a dropped range models a failed fetch the retry reissues.
          Convergence to the same transcript as the in-order feed is
          exactly the §3.3 restart property the net layer relies on *)
  va_session : bool;
      (** remote mode with a {e lagged} push: subscribed writes land on
          the home immediately but queue toward the compute with the
          stamp trailer their ack carried, released in random prefixes —
          so the compute's copies are genuinely stale between flushes.
          Every write folds its ack into a model session vector, every
          compared read demands that vector and, when the compute's
          recorded stamps fall short, catches up exactly like
          [serve_stamped]: drain the push, then refetch what is still
          behind. The oracle is always fresh, so a stamped read that
          serves stale data despite the demand is a divergence *)
}

let base_variant =
  { va_name = ""; va_tweak = (fun _ -> ()); va_persist = No_persist;
    va_remote = false; va_migrate = false; va_shards = 0; va_async_feed = false;
    va_session = false }

let variants =
  [| { base_variant with va_name = "default" };
     { base_variant with va_name = "no-hints";
       va_tweak = (fun c -> c.Config.output_hints <- false) };
     { base_variant with va_name = "no-sharing";
       va_tweak = (fun c -> c.Config.value_sharing <- false) };
     { base_variant with va_name = "no-combine";
       va_tweak = (fun c -> c.Config.combine_updaters <- false) };
     { base_variant with va_name = "eager-checks";
       va_tweak = (fun c -> c.Config.lazy_checks <- false) };
     { base_variant with va_name = "log-limit-1";
       va_tweak = (fun c -> c.Config.pending_log_limit <- 1) };
     { base_variant with va_name = "subtables";
       va_tweak = (fun c -> c.Config.table_config <- (fun _ -> Some 2)) };
     { base_variant with va_name = "evict";
       va_tweak = (fun c -> c.Config.memory_limit <- Some 8192) };
     { base_variant with va_name = "evict-no-combine";
       va_tweak =
         (fun c ->
           c.Config.memory_limit <- Some 8192;
           c.Config.combine_updaters <- false) };
     { base_variant with va_name = "persist";
       va_persist = Persist_always { snapshot_every = 0 } };
     { base_variant with va_name = "persist-snap";
       va_persist = Persist_always { snapshot_every = 7 } };
     { base_variant with va_name = "remote"; va_remote = true };
     { base_variant with va_name = "remote-evict";
       va_tweak = (fun c -> c.Config.memory_limit <- Some 8192);
       va_remote = true };
     { base_variant with va_name = "remote-async";
       va_remote = true; va_async_feed = true };
     { base_variant with va_name = "remote-async-evict";
       va_tweak = (fun c -> c.Config.memory_limit <- Some 8192);
       va_remote = true; va_async_feed = true };
     { base_variant with va_name = "session";
       va_remote = true; va_session = true };
     { base_variant with va_name = "session-evict";
       va_tweak = (fun c -> c.Config.memory_limit <- Some 8192);
       va_remote = true; va_session = true };
     { base_variant with va_name = "migrate"; va_migrate = true };
     { base_variant with va_name = "migrate-evict";
       va_tweak = (fun c -> c.Config.memory_limit <- Some 8192);
       va_migrate = true };
     { base_variant with va_name = "shards-2"; va_shards = 2 };
     { base_variant with va_name = "shards-3"; va_shards = 3 };
     { base_variant with va_name = "shards-2-evict";
       va_tweak = (fun c -> c.Config.memory_limit <- Some 8192);
       va_shards = 2 } |]

let find_scenario name = Array.find_opt (fun s -> s.sc_name = name) scenarios
let find_variant name = Array.find_opt (fun v -> v.va_name = name) variants

(* ------------------------------------------------------------------ *)
(* Case execution                                                      *)

type failure = { f_step : int; f_reason : string }

exception Case_failed of failure

(* cumulative across the process; reported by the sweep summary *)
let stat_cases = ref 0
let stat_ops = ref 0
let stat_compares = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let fresh_dir =
  let counter = ref 0 in
  fun ~prefix () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)
    in
    rm_rf dir;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let show_pairs pairs =
  let shown = List.filteri (fun i _ -> i < 6) pairs in
  let body = String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%S=%S" k v) shown) in
  Printf.sprintf "[%s%s] (%d)" body (if List.length pairs > 6 then "; ..." else "")
    (List.length pairs)

let first_diff got want =
  let rec go i g w =
    match (g, w) with
    | [], [] -> "(equal?)"
    | (k, v) :: _, [] -> Printf.sprintf "index %d: engine has extra %S=%S" i k v
    | [], (k, v) :: _ -> Printf.sprintf "index %d: engine misses %S=%S" i k v
    | (gk, gv) :: g', (wk, wv) :: w' ->
      if gk = wk && gv = wv then go (i + 1) g' w'
      else Printf.sprintf "index %d: engine %S=%S, oracle %S=%S" i gk gv wk wv
  in
  go 0 got want

(** Run one (scenario, variant, ops) case from scratch. [Ok ()] when
    every compared read agreed, every invariant held, and the final
    whole-keyspace scan matched; [Error f] pinpoints the first bad
    step. Always cleans up its persist directory. *)
let run_case scenario variant ops =
  incr stat_cases;
  let clock = ref 1_000_000.0 in
  let config = Config.default () in
  variant.va_tweak config;
  config.Config.now <- (fun () -> !clock);
  let dir =
    match variant.va_persist with
    | No_persist -> None
    | Persist_always _ -> Some (fresh_dir ~prefix:"pequod-fuzz" ())
  in
  let server = ref (Server.create ~config ()) in
  let persist = ref None in
  let attach () =
    match (variant.va_persist, dir) with
    | Persist_always { snapshot_every }, Some d ->
      let p = Config.default_persist ~dir:d in
      p.Config.p_sync <- Config.Sync_always;
      p.Config.p_snapshot_every <- snapshot_every;
      p.Config.p_wal_max_bytes <- 1 lsl 20;
      persist := Some (Persist.attach !server p)
    | _ -> persist := None
  in
  let oracle = Oracle.create () in
  let step = ref (-1) in
  let fail fmt =
    Printf.ksprintf
      (fun reason -> raise (Case_failed { f_step = !step; f_reason = reason }))
      fmt
  in
  (* shard mode: [va_shards] sibling engines each own a disjoint
     component-space slice of every table — the shard layer's wildcard
     routes, modelled in-process and synchronously. Each engine's
     resolver serves missing source ranges from the sibling stores,
     clamped to each sibling's slice; a range inside the engine's own
     slice — and any join-output table, which every shard recomputes
     from subscription-fresh sources — is Local, which terminates the
     recursion (sibling scans are always slice-clamped, so they resolve
     Local on the sibling). Every resolved range is a subscription:
     writes land on the owner and are forwarded to subscribed siblings,
     modelling the Notify push. Uses the real [Shard.owner_of_cuts] and
     [Shard.route_scan] so the fuzzer exercises the shipped routing. *)
  let shards_arr =
    if variant.va_shards < 2 then None
    else begin
      (* component-space cuts sized to the generators' vocabulary:
         users ann..dee, digit-led timestamps, voters x/y/z *)
      let cuts =
        match variant.va_shards with 2 -> [| "c" |] | _ -> [| "b"; "d" |]
      in
      Some (Array.init variant.va_shards (fun _ -> Server.create ~config ()), cuts)
    end
  in
  let shard_subs =
    match shards_arr with
    | None -> [||]
    | Some (arr, _) -> Array.map (fun _ -> ref []) arr
  in
  let shard_subscribed j k =
    List.exists
      (fun (lo, hi) -> String.compare lo k <= 0 && String.compare k hi < 0)
      !(shard_subs.(j))
  in
  (match shards_arr with
  | None -> ()
  | Some (arr, cuts) ->
    let n = Array.length arr in
    let slice_lo j table = if j = 0 then table ^ "|" else table ^ "|" ^ cuts.(j - 1) in
    let slice_hi j table = if j = n - 1 then table ^ "}" else table ^ "|" ^ cuts.(j) in
    let smax a b = if String.compare a b >= 0 then a else b in
    let smin a b = if String.compare a b <= 0 then a else b in
    Array.iteri
      (fun k _ ->
        Server.set_resolver arr.(k) (fun ~table ~lo ~hi ->
            let sink =
              List.exists
                (fun sp -> Pequod_pattern.Joinspec.output_table sp = table)
                (Server.joins arr.(k))
            in
            if sink then Server.Local
            else if
              String.compare (slice_lo k table) lo <= 0
              && String.compare hi (slice_hi k table) <= 0
            then Server.Local
            else begin
              shard_subs.(k) := (lo, hi) :: !(shard_subs.(k));
              (* [Resolved] pairs are applied additively over the range,
                 so the engine's own slice survives the feed *)
              let pairs = ref [] in
              for j = n - 1 downto 0 do
                if j <> k then begin
                  let clo = smax lo (slice_lo j table)
                  and chi = smin hi (slice_hi j table) in
                  if String.compare clo chi < 0 then
                    pairs := Server.scan arr.(j) ~lo:clo ~hi:chi @ !pairs
                end
              done;
              Server.Resolved !pairs
            end))
      arr);
  let install_join text =
    let on_engine srv =
      match Server.add_join_text srv text with
      | Ok () -> ()
      | Error msg -> fail "engine rejected join %S: %s" text msg
    in
    (match shards_arr with
    | Some (arr, _) -> Array.iter on_engine arr
    | None -> on_engine !server);
    match Oracle.add_join_text oracle text with
    | Ok () -> ()
    | Error msg -> fail "oracle rejected join %S: %s" text msg
  in
  (* remote/migrate modes: [homes] are the home servers for every base
     table — one in remote mode, two behind a mutable range directory in
     migrate mode — and the engine under test is the compute side. Its
     resolver alternates between the synchronous fast path (Resolved, as
     over a healthy TCP peer) and Deferred, which forces the read loop
     below through the feed_base-and-retry restart path (§3.3). Every
     resolved range is a subscription: later writes land on the home
     first and are forwarded only when subscribed, modelling the Notify
     push (which in migrate mode also models the Fetch handoff — the
     subscription keeps delivering across a move). *)
  let homes =
    if variant.va_remote then Some [| Server.create () |]
    else if variant.va_migrate then Some [| Server.create (); Server.create () |]
    else None
  in
  (* the model directory: sorted boundaries, entry (lo, j) homes keys in
     [lo, next boundary) at homes.(j); everything starts at home 0 *)
  let dirb = ref [ ("", 0) ] in
  let dir_segments lo hi =
    let rec go = function
      | [] -> []
      | (slo, j) :: rest ->
        let shi = match rest with (nlo, _) :: _ -> nlo | [] -> "\xff" in
        let clo = if String.compare lo slo > 0 then lo else slo in
        let chi = if String.compare hi shi < 0 then hi else shi in
        if String.compare clo chi < 0 then (clo, chi, j) :: go rest else go rest
    in
    go !dirb
  in
  let home_of k =
    List.fold_left
      (fun acc (slo, j) -> if String.compare slo k <= 0 then j else acc)
      0 !dirb
  in
  let home_scan lo hi =
    match homes with
    | None -> []
    | Some arr ->
      List.concat_map
        (fun (clo, chi, j) -> Server.scan arr.(j) ~lo:clo ~hi:chi)
        (dir_segments lo hi)
  in
  let home_put k v =
    match homes with Some arr -> Server.put arr.(home_of k) k v | None -> ()
  in
  let home_remove k =
    match homes with Some arr -> Server.remove arr.(home_of k) k | None -> ()
  in
  (* split like the net layer's dispatch: each home sees, in argument
     order, exactly the pairs the directory routes to it *)
  let home_put_batch pairs =
    match homes with
    | None -> ()
    | Some arr ->
      Array.iteri
        (fun j eng ->
          match List.filter (fun (k, _) -> home_of k = j) pairs with
          | [] -> ()
          | mine -> Server.put_batch eng mine)
        arr
  in
  (* migrate mode: hand a slice of the live keyspace to the other home —
     snapshot-copy through ordinary writes (the Notify_batch feed), flip
     the directory, then clear the source's copy (the real server
     unmarks presence; the model deletes so every pair lives at exactly
     one home and a later migration back cannot resurrect stale data) *)
  let migrations = ref 0 in
  let dir_assign lo hi dest =
    let hi_home = home_of hi in
    let before = List.filter (fun (slo, _) -> String.compare slo lo < 0) !dirb in
    let after = List.filter (fun (slo, _) -> String.compare slo hi > 0) !dirb in
    dirb :=
      before
      @ (lo, dest)
        :: (if String.compare hi "\xfe" >= 0 then [] else (hi, hi_home) :: after)
  in
  let migrate_event () =
    match homes with
    | Some arr when Array.length arr = 2 ->
      let live = home_scan "" "\xfe" in
      let n = List.length live in
      if n >= 2 then begin
        incr migrations;
        (* alternate between handing off the tail and a middle slice *)
        let lo, hi =
          if !migrations mod 2 = 1 then (fst (List.nth live (n / 2)), "\xfe")
          else (fst (List.nth live (n / 4)), fst (List.nth live (3 * n / 4)))
        in
        if String.compare lo hi < 0 then begin
          let dest = 1 - home_of lo in
          let sources = dir_segments lo hi in
          List.iter
            (fun (clo, chi, j) ->
              if j <> dest then
                List.iter
                  (fun (k, v) -> Server.put arr.(dest) k v)
                  (Server.scan arr.(j) ~lo:clo ~hi:chi))
            sources;
          dir_assign lo hi dest;
          List.iter
            (fun (clo, chi, j) ->
              if j <> dest then
                List.iter
                  (fun (k, _) -> Server.remove arr.(j) k)
                  (Server.scan arr.(j) ~lo:clo ~hi:chi))
            sources
        end
      end
    | _ -> ()
  in
  let subs = ref [] in
  let defer_next = ref false in
  (match homes with
  | None -> ()
  | Some _ ->
    Server.set_resolver !server (fun ~table:_ ~lo ~hi ->
        subs := (lo, hi) :: !subs;
        defer_next := not !defer_next;
        (* session mode resolves everything through the feed loop below,
           which models the FIFO fetch (drain the queued push first) and
           records the fetched range's stamp — a synchronous Resolved
           would bypass both *)
        if !defer_next || variant.va_session then Server.Deferred
        else Server.Resolved (home_scan lo hi)))
  ;
  let subscribed k =
    List.exists
      (fun (lo, hi) -> String.compare lo k <= 0 && String.compare k hi < 0)
      !subs
  in
  let table_of k =
    match String.index_opt k '|' with Some i -> String.sub k 0 i | None -> k
  in
  (* session mode: the push lags. A subscribed write queues here with
     the stamp entries its ack carried instead of being applied to the
     compute immediately; [session_lag] releases random prefixes, so
     between flushes the compute's subscribed copies are genuinely
     behind the home. Flushing an item applies the pair AND records its
     stamp trailer, mirroring [Notify_batch]'s stamps — so the
     compute's recorded stamps measure exactly how far the push has
     caught up, which is what [stamp_unsatisfied] gates on. *)
  let session_vec : (string * string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let session_fold entries =
    List.iter
      (fun (t, slo, shi, s) ->
        let key = (t, slo, shi) in
        match Hashtbl.find_opt session_vec key with
        | Some s' when s' >= s -> ()
        | _ -> Hashtbl.replace session_vec key s)
      entries
  in
  let push_q :
      ((string * string option) list * (string * string * string * int) list) Queue.t =
    Queue.create ()
  in
  let session_flush n =
    for _ = 1 to n do
      match Queue.take_opt push_q with
      | None -> ()
      | Some (items, stamps) ->
        List.iter
          (fun (k, v) ->
            match v with
            | Some v -> Server.put !server k v
            | None -> Server.remove !server k)
          items;
        List.iter
          (fun (t, slo, shi, s) ->
            Server.set_range_stamp !server ~table:t ~lo:slo ~hi:shi s)
          stamps
    done
  in
  (* every session write: the home applies it at once (it is the
     authority), the ack's stamp entries fold into the session vector,
     and the subscribed keys queue as ONE push item — a batch is
     delivered as a single [Notify_batch] with one stamp trailer, never
     split, so duplicate keys inside it cannot be observed mid-batch *)
  let session_write items =
    match homes with
    | None -> ()
    | Some arr ->
      let stamped =
        List.map
          (fun (k, v) -> ((k, v), Server.stamps_for_keys arr.(home_of k) [ k ]))
          items
      in
      List.iter (fun (_, s) -> session_fold s) stamped;
      (match List.filter (fun ((k, _), _) -> subscribed k) stamped with
      | [] -> ()
      | fwd -> Queue.add (List.map fst fwd, List.concat_map snd fwd) push_q)
  in
  (* a fetched copy records the owner's stamp over the fetched range,
     like [Remote.fetch_one] (the replica-warming fix); and because the
     home's connection is FIFO, a fetch response is ordered after every
     notify already emitted — so the queued push drains first *)
  let session_feed table mlo mhi =
    session_flush (Queue.length push_q);
    Server.feed_base !server ~table ~lo:mlo ~hi:mhi (home_scan mlo mhi);
    match homes with
    | None -> ()
    | Some arr ->
      List.iter
        (fun (clo, chi, j) ->
          let s = Server.range_stamp arr.(j) ~table ~lo:clo ~hi:chi in
          if s > 0 then Server.set_range_stamp !server ~table ~lo:clo ~hi:chi s)
        (dir_segments mlo mhi)
  in
  (* the read-side gate, mirroring [Net_server.serve_stamped]: demand
     the session's whole vector; if the compute's copies are behind,
     drain the push (the parked read's pump), then unmark whatever is
     still short so the converge loop refetches it fresh from the home *)
  let session_gate () =
    let demand =
      Hashtbl.fold (fun (t, slo, shi) s acc -> (t, slo, shi, s) :: acc) session_vec []
    in
    if demand <> [] then
      match Server.stamp_unsatisfied !server demand with
      | [] -> ()
      | _ ->
        session_flush (Queue.length push_q);
        List.iter
          (fun (t, ulo, uhi, _) ->
            Server.unmark_present !server ~table:t ~lo:ulo ~hi:uhi)
          (Server.stamp_unsatisfied !server demand)
  in
  (* deterministic lag schedule: after op [i], maybe release a random
     prefix of the queued push — seeded from the step index alone, so a
     shrunk repro replays the exact same flush pattern *)
  let session_lag i =
    let rng = Rng.create (Hashtbl.hash ("session-lag", i)) in
    if Rng.int rng 2 = 0 then session_flush (Rng.int rng (Queue.length push_q + 1))
  in
  let scan_rr = ref 0 in
  let engine_scan lo hi =
    match shards_arr with
    | Some (arr, cuts) -> (
      let n = Array.length arr in
      (* mirror the net layer's dispatch: a single-slice range is served
         entirely by its owner; anything wider is scattered — a rotating
         shard serves first (so successive reads exercise different
         fetch/subscription states), merged with every sibling's slice
         through the shipped dedup *)
      match Shard.route_scan cuts ~shards:n ~lo ~hi with
      | Some o -> Server.scan arr.(o) ~lo ~hi
      | None ->
        let s = !scan_rr mod n in
        incr scan_rr;
        let rec gather acc j =
          if j >= n then acc
          else if j = s then gather acc (j + 1)
          else
            gather (Net_server.merge_dedup acc (Server.scan arr.(j) ~lo ~hi)) (j + 1)
        in
        gather (Server.scan arr.(s) ~lo ~hi) 0)
    | None -> (
    match homes with
    | None -> Server.scan !server ~lo ~hi
    | Some _ ->
      let max_attempts = if variant.va_async_feed then 64 else 32 in
      let rec converge attempts =
        match Server.scan_result !server ~lo ~hi with
        | `Ok pairs -> pairs
        | `Missing ranges ->
          if attempts >= max_attempts then
            fail "remote scan [%S, %S) still missing ranges after %d feeds" lo hi attempts;
          let to_feed =
            if not variant.va_async_feed then ranges
            else begin
              (* async-feed modelling: a parked scan's fetches complete
                 in arbitrary order, and some fail — feed a random
                 nonempty subset of the missing set, shuffled, and let
                 the retry reissue the rest. Seeded from the read's
                 identity so a repro file replays identically. *)
              let rng =
                Rng.create (Hashtbl.hash (lo, hi, attempts, !stat_compares))
              in
              let arr = Array.of_list ranges in
              for i = Array.length arr - 1 downto 1 do
                let j = Rng.int rng (i + 1) in
                let t = arr.(i) in
                arr.(i) <- arr.(j);
                arr.(j) <- t
              done;
              Array.to_list (Array.sub arr 0 (1 + Rng.int rng (Array.length arr)))
            end
          in
          List.iter
            (fun (table, mlo, mhi) ->
              if variant.va_session then session_feed table mlo mhi
              else
                Server.feed_base !server ~table ~lo:mlo ~hi:mhi (home_scan mlo mhi))
            to_feed;
          converge (attempts + 1)
      in
      (* session mode: every compared read is a stamped read demanding
         the whole session vector — catch the compute up first *)
      if variant.va_session then session_gate ();
      (* route by table, like a deployed client: join outputs are
         materialized on the compute engine (which pulls any missing
         source ranges first), base tables live on their home *)
      let sinks =
        List.map Pequod_pattern.Joinspec.output_table (Oracle.joins oracle)
      in
      let is_sink k = List.mem (table_of k) sinks in
      let front = List.filter (fun (k, _) -> is_sink k) (converge 0) in
      let base = List.filter (fun (k, _) -> not (is_sink k)) (home_scan lo hi) in
      List.merge (fun (a, _) (b, _) -> String.compare a b) front base)
  in
  let compare_scan lo hi =
    incr stat_compares;
    clock := !clock +. scenario.sc_tick;
    let got = engine_scan lo hi in
    let want = Oracle.scan oracle ~lo ~hi in
    if got <> want then
      fail "scan [%S, %S) diverges — %s\n    engine %s\n    oracle %s" lo hi
        (first_diff got want) (show_pairs got) (show_pairs want)
  in
  let extra = Array.of_list scenario.sc_extra in
  let installed = Array.map (fun _ -> false) extra in
  (* writes into a join's output table have undefined semantics (the
     oracle documents them out of scope), so a generator producing one
     is a scenario bug — fail loudly rather than report a divergence *)
  let guard_sink k =
    let table =
      match String.index_opt k '|' with Some i -> String.sub k 0 i | None -> k
    in
    List.iter
      (fun j ->
        if Pequod_pattern.Joinspec.output_table j = table then
          fail "scenario bug: base write %S targets sink table %S" k table)
      (Oracle.joins oracle)
  in
  let apply op =
    incr stat_ops;
    match op with
    | Put (k, v) -> (
      guard_sink k;
      (match shards_arr with
      | Some (arr, cuts) ->
        let o = Shard.owner_of_cuts cuts k in
        Server.put arr.(o) k v;
        Array.iteri
          (fun j eng -> if j <> o && shard_subscribed j k then Server.put eng k v)
          arr
      | None -> (
        match homes with
        | None -> Server.put !server k v
        | Some _ ->
          home_put k v;
          if variant.va_session then session_write [ (k, Some v) ]
          else if subscribed k then Server.put !server k v));
      Oracle.put oracle k v)
    | Put_batch pairs ->
      List.iter (fun (k, _) -> guard_sink k) pairs;
      (match shards_arr with
      | Some (arr, cuts) ->
        (* split like the net layer's dispatch: each shard sees, in
           argument order, the pairs it owns plus those it subscribes to *)
        Array.iteri
          (fun j eng ->
            match
              List.filter
                (fun (k, _) -> Shard.owner_of_cuts cuts k = j || shard_subscribed j k)
                pairs
            with
            | [] -> ()
            | mine -> Server.put_batch eng mine)
          arr
      | None -> (
      match homes with
      | None -> Server.put_batch !server pairs
      | Some _ ->
        home_put_batch pairs;
        if variant.va_session then
          session_write (List.map (fun (k, v) -> (k, Some v)) pairs)
        else (
          match List.filter (fun (k, _) -> subscribed k) pairs with
          | [] -> ()
          | fwd -> Server.put_batch !server fwd)));
      (* put_batch is specified as equivalent to sequential puts; the
         oracle applies the same pairs one at a time (argument order —
         the batch's stable sort keeps duplicate keys in argument order,
         so last-write-wins agrees) *)
      List.iter (fun (k, v) -> Oracle.put oracle k v) pairs
    | Remove k -> (
      guard_sink k;
      (match shards_arr with
      | Some (arr, cuts) ->
        let o = Shard.owner_of_cuts cuts k in
        Server.remove arr.(o) k;
        Array.iteri
          (fun j eng -> if j <> o && shard_subscribed j k then Server.remove eng k)
          arr
      | None -> (
        match homes with
        | None -> Server.remove !server k
        | Some _ ->
          home_remove k;
          if variant.va_session then session_write [ (k, None) ]
          else if subscribed k then Server.remove !server k));
      Oracle.remove oracle k)
    | Scan (lo, hi) -> compare_scan lo hi
    | Count (lo, hi) ->
      incr stat_compares;
      clock := !clock +. scenario.sc_tick;
      let got = List.length (engine_scan lo hi) in
      let want = Oracle.count oracle ~lo ~hi in
      if got <> want then fail "count [%S, %S): engine %d, oracle %d" lo hi got want
    | Tick -> clock := !clock +. 1.0
    | Add_join i ->
      if i < Array.length extra && not installed.(i) then begin
        installed.(i) <- true;
        install_join extra.(i)
      end
    | Crash -> (
      match !persist with
      | None -> () (* no durability: crashing is out of scope *)
      | Some p ->
        Persist.crash p;
        server := Server.create ~config ();
        attach ())
  in
  let body () =
    attach ();
    List.iter install_join scenario.sc_joins;
    List.iteri
      (fun i op ->
        step := i;
        (try apply op with
        | Case_failed _ as e -> raise e
        | e -> fail "op %s raised %s" (op_to_line op) (Printexc.to_string e));
        (* migrate mode: periodically live-migrate part of the keyspace
           between the two homes, deterministically mid-sequence *)
        if variant.va_migrate && i mod 13 = 7 then begin
          try migrate_event () with
          | Case_failed _ as e -> raise e
          | e -> fail "migration event raised %s" (Printexc.to_string e)
        end;
        if variant.va_session then session_lag i;
        try
          match shards_arr with
          | Some (arr, _) -> Array.iter Server.check_invariants arr
          | None -> (
            Server.check_invariants !server;
            match homes with
            | Some arr -> Array.iter Server.check_invariants arr
            | None -> ())
        with
        | Case_failed _ as e -> raise e
        | e -> fail "invariants after %s: %s" (op_to_line op) (Printexc.to_string e))
      ops;
    step := List.length ops;
    compare_scan "" "\xfe"
  in
  let finish () =
    (match !persist with Some p -> (try Persist.close p with _ -> ()) | None -> ());
    match dir with Some d -> rm_rf d | None -> ()
  in
  match body () with
  | () ->
    finish ();
    Ok ()
  | exception Case_failed f ->
    finish ();
    Error f
  | exception e ->
    finish ();
    Error { f_step = !step; f_reason = "harness exception: " ^ Printexc.to_string e }

(* ------------------------------------------------------------------ *)
(* Generation and shrinking                                            *)

let gen_ops scenario rng ~max_ops =
  let base = min 8 max_ops in
  let n = base + if max_ops > base then Rng.int rng (max_ops - base + 1) else 0 in
  (* one in eight generated Puts becomes a Put_batch of 2-8 Puts drawn
     from the same generator, so batches inherit the scenario's key
     shapes (and span source tables wherever the scenario has several);
     a quarter of batches repeat one key — with a value taken from
     another pair, keeping values scenario-shaped — to exercise the
     batch's last-write-wins rule *)
  let gen_batch rng first =
    let target = 2 + Rng.int rng 7 in
    let pairs = ref [ first ] and count = ref 1 and tries = ref 0 in
    while !count < target && !tries < 64 do
      incr tries;
      match scenario.sc_gen rng with
      | Put (k, v) ->
        pairs := (k, v) :: !pairs;
        incr count
      | _ -> ()
    done;
    let pairs = List.rev !pairs in
    let pairs =
      if List.length pairs >= 2 && Rng.int rng 4 = 0 then begin
        let arr = Array.of_list pairs in
        let k, _ = arr.(Rng.int rng (Array.length arr)) in
        let _, v = arr.(Rng.int rng (Array.length arr)) in
        pairs @ [ (k, v) ]
      end
      else pairs
    in
    Put_batch pairs
  in
  let gen_one rng =
    match scenario.sc_gen rng with
    | Put _ as p when Rng.int rng 8 = 0 -> gen_batch rng (match p with Put (k, v) -> (k, v) | _ -> assert false)
    | op -> op
  in
  let rec go acc k = if k = 0 then List.rev acc else go (gen_one rng :: acc) (k - 1) in
  go [] n

(** Greedy ddmin-style shrink: repeatedly delete the largest op chunks
    that keep [still_fails] true, halving the chunk size down to single
    ops, until a whole pass removes nothing. Deterministic, and every
    probe replays from scratch, so the result is a genuine minimal-ish
    failing sequence, not an artifact of stale state. *)
let shrink ~still_fails ops =
  let current = ref (Array.of_list ops) in
  let try_without lo len =
    let a = !current in
    let n = Array.length a in
    if lo >= n || len = 0 then false
    else begin
      let len = min len (n - lo) in
      let cand = Array.append (Array.sub a 0 lo) (Array.sub a (lo + len) (n - lo - len)) in
      if still_fails (Array.to_list cand) then begin
        current := cand;
        true
      end
      else false
    end
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let chunk = ref (max 1 (Array.length !current / 2)) in
    while !chunk >= 1 do
      let i = ref 0 in
      while !i < Array.length !current do
        if try_without !i !chunk then progress := true else i := !i + !chunk
      done;
      chunk := (if !chunk = 1 then 0 else !chunk / 2)
    done
  done;
  Array.to_list !current

(* ------------------------------------------------------------------ *)
(* Repro files                                                         *)

let write_repro ~path ~seed ~iter scenario variant ops =
  let oc = open_out path in
  Printf.fprintf oc "# pequod fuzz repro: seed=%d iter=%d\n" seed iter;
  Printf.fprintf oc "scenario %S\n" scenario.sc_name;
  Printf.fprintf oc "variant %S\n" variant.va_name;
  List.iter (fun op -> output_string oc (op_to_line op ^ "\n")) ops;
  close_out oc

let load_repro path =
  let ic = open_in path in
  let scenario = ref None and variant = ref None and ops = ref [] in
  let bad = ref None in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else if String.length line > 9 && String.sub line 0 9 = "scenario " then
         Scanf.sscanf line "scenario %S" (fun n -> scenario := find_scenario n)
       else if String.length line > 8 && String.sub line 0 8 = "variant " then
         Scanf.sscanf line "variant %S" (fun n -> variant := find_variant n)
       else
         match op_of_line line with
         | Some op -> ops := op :: !ops
         | None -> if !bad = None then bad := Some line
     done
   with End_of_file -> ());
  close_in ic;
  match (!bad, !scenario, !variant) with
  | Some line, _, _ -> Error (Printf.sprintf "unparsable line %S" line)
  | None, None, _ -> Error "missing or unknown scenario"
  | None, _, None -> Error "missing or unknown variant"
  | None, Some s, Some v -> Ok (s, v, List.rev !ops)

let replay_file ~verbose path =
  match load_repro path with
  | Error msg -> Error { f_step = -1; f_reason = "bad repro file: " ^ msg }
  | Ok (scenario, variant, ops) ->
    Printf.printf "replaying %d ops: scenario %s, variant %s\n%!" (List.length ops)
      scenario.sc_name variant.va_name;
    if verbose then List.iter (fun op -> print_endline ("  " ^ op_to_line op)) ops;
    run_case scenario variant ops

(* ------------------------------------------------------------------ *)
(* The sweep driver                                                    *)

(** Run [iters] cases from [seed]: case [i] pairs scenario [i mod |S|]
    with variant [(i / |S|) mod |V|] and replays ops generated from
    stream {!derive_seed}[ seed i], so every (scenario, variant) pair
    recurs with fresh sequences. Stops at the first divergence, shrinks
    it, writes a repro under [repro_dir], and returns the failure count
    (0 on a clean sweep). *)
let run_sweep ?(verbose = false) ?scenario_filter ?variant_filter ?(repro_dir = ".")
    ~seed ~iters ~max_ops () =
  let failures = ref 0 in
  let ran = ref 0 in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < iters do
    let idx = !i in
    let scenario = scenarios.(idx mod Array.length scenarios) in
    let variant = variants.(idx / Array.length scenarios mod Array.length variants) in
    let skip =
      (match scenario_filter with Some n -> n <> scenario.sc_name | None -> false)
      || match variant_filter with Some n -> n <> variant.va_name | None -> false
    in
    if not skip then begin
      incr ran;
      let rng = Rng.create (derive_seed seed idx) in
      let ops = gen_ops scenario rng ~max_ops in
      if verbose then
        Printf.printf "iter %d: %s x %s (%d ops)\n%!" idx scenario.sc_name variant.va_name
          (List.length ops);
      match run_case scenario variant ops with
      | Ok () -> ()
      | Error f ->
        incr failures;
        stop := true;
        Printf.printf "FAIL iter %d (scenario %s, variant %s, seed %d) at step %d:\n  %s\n%!"
          idx scenario.sc_name variant.va_name seed f.f_step f.f_reason;
        Printf.printf "shrinking %d ops...\n%!" (List.length ops);
        let still_fails ops' = Result.is_error (run_case scenario variant ops') in
        let small = shrink ~still_fails ops in
        let path = Filename.concat repro_dir (Printf.sprintf "fuzz-repro-%d.txt" idx) in
        write_repro ~path ~seed ~iter:idx scenario variant small;
        (match run_case scenario variant small with
        | Error f' ->
          Printf.printf "shrunk to %d ops, failing at step %d:\n  %s\n" (List.length small)
            f'.f_step f'.f_reason;
          List.iter (fun op -> print_endline ("    " ^ op_to_line op)) small
        | Ok () -> ());
        Printf.printf "repro written to %s; replay with:\n  make fuzz-replay REPRO=%s\n%!" path
          path
    end;
    if (idx + 1) mod 200 = 0 && not !stop then
      Printf.printf "  ... %d/%d sequences, %d ops, %d comparisons\n%!" (idx + 1) iters
        !stat_ops !stat_compares;
    incr i
  done;
  if !failures = 0 then
    Printf.printf
      "fuzz: %d sequences over %d scenarios x %d config variants, %d ops, %d compared \
       reads, 0 divergences\n\
       %!"
      !ran (Array.length scenarios) (Array.length variants) !stat_ops !stat_compares;
  !failures
