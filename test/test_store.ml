(* Tests for the ordered-store substrate: red-black tree, interval map,
   range map, tables/subtables, LRU. Property tests check each structure
   against a naive reference model. *)

module Rbtree = Pequod_store.Rbtree
module Interval_map = Pequod_store.Interval_map
module Range_map = Pequod_store.Range_map
module Table = Pequod_store.Table
module Store = Pequod_store.Store
module Lru = Pequod_store.Lru
module Smap = Map.Make (String)

let check_list = Alcotest.(check (list (pair string int)))
let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

(* ------------------------------------------------------------------ *)
(* Rbtree unit tests                                                   *)

let tree_of_list pairs =
  let t = Rbtree.create ~dummy:0 () in
  List.iter (fun (k, v) -> ignore (Rbtree.insert t k v)) pairs;
  t

let test_rb_basic () =
  let t = tree_of_list [ ("b", 2); ("a", 1); ("c", 3) ] in
  Rbtree.validate t;
  check_int "size" 3 (Rbtree.size t);
  check_list "inorder" [ ("a", 1); ("b", 2); ("c", 3) ] (Rbtree.to_list t);
  check_bool "find" true (Rbtree.find t "b" <> None);
  check_bool "find missing" true (Rbtree.find t "bb" = None)

let test_rb_overwrite () =
  let t = tree_of_list [ ("a", 1) ] in
  let _, old = Rbtree.insert t "a" 9 in
  Alcotest.(check (option int)) "old value returned" (Some 1) old;
  check_int "size" 1 (Rbtree.size t);
  check_list "value" [ ("a", 9) ] (Rbtree.to_list t)

let test_rb_remove () =
  let t = tree_of_list [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ] in
  check_bool "removed" true (Rbtree.remove t "b");
  check_bool "absent" false (Rbtree.remove t "b");
  Rbtree.validate t;
  check_list "after" [ ("a", 1); ("c", 3); ("d", 4) ] (Rbtree.to_list t)

let test_rb_lower_bound () =
  let t = tree_of_list [ ("b", 2); ("d", 4); ("f", 6) ] in
  let lb k = Option.map (fun n -> n.Rbtree.key) (Rbtree.lower_bound t k) in
  Alcotest.(check (option string)) "exact" (Some "b") (lb "b");
  Alcotest.(check (option string)) "between" (Some "d") (lb "c");
  Alcotest.(check (option string)) "before" (Some "b") (lb "");
  Alcotest.(check (option string)) "past end" None (lb "g")

let test_rb_iter_range () =
  let t = tree_of_list [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ] in
  let got = ref [] in
  Rbtree.iter_range t ~lo:"b" ~hi:"d" (fun n -> got := (n.Rbtree.key, n.Rbtree.value) :: !got);
  check_list "range" [ ("b", 2); ("c", 3) ] (List.rev !got)

let test_rb_node_identity_after_remove () =
  (* transplant-based delete must not relocate surviving nodes' contents *)
  let t = tree_of_list [ ("a", 1); ("b", 2); ("c", 3); ("d", 4); ("e", 5) ] in
  let c = Option.get (Rbtree.find t "c") in
  check_bool "live" true (Rbtree.is_live c);
  ignore (Rbtree.remove t "b");
  ignore (Rbtree.remove t "d");
  Rbtree.validate t;
  check_bool "still live" true (Rbtree.is_live c);
  Alcotest.(check string) "same key" "c" c.Rbtree.key;
  let b = Option.get (Rbtree.find t "a") in
  ignore (Rbtree.remove_node t b);
  check_bool "dead after removal" false (Rbtree.is_live b)

let test_rb_insert_after_fast_path () =
  let t = tree_of_list [ ("m|1", 1); ("m|3", 3); ("z", 99) ] in
  let hint = Option.get (Rbtree.find t "m|3") in
  (* genuine append-after case *)
  let n, old = Rbtree.insert_after t ~hint "m|4" 4 in
  check_bool "fresh" true (old = None);
  check_bool "live" true (Rbtree.is_live n);
  Rbtree.validate t;
  (* bogus hint (not adjacent) falls back to correct insert *)
  let hint2 = Option.get (Rbtree.find t "m|1") in
  ignore (Rbtree.insert_after t ~hint:hint2 "m|9" 9);
  Rbtree.validate t;
  check_list "order"
    [ ("m|1", 1); ("m|3", 3); ("m|4", 4); ("m|9", 9); ("z", 99) ]
    (Rbtree.to_list t);
  (* hint pointing at a dead node falls back *)
  let dead = Option.get (Rbtree.find t "m|4") in
  ignore (Rbtree.remove t "m|4");
  ignore (Rbtree.insert_after t ~hint:dead "m|5" 5);
  Rbtree.validate t;
  check_bool "m|5 present" true (Rbtree.find t "m|5" <> None);
  (* hint equal to inserted key falls back to overwrite *)
  let h = Option.get (Rbtree.find t "m|5") in
  let n2, old2 = Rbtree.insert_after t ~hint:h "m|5" 50 in
  check_bool "overwrote" true (old2 = Some 5);
  check_int "value" 50 n2.Rbtree.value;
  (* insert_after where successor exists in hint's right subtree *)
  let h3 = Option.get (Rbtree.find t "m|3") in
  ignore (Rbtree.insert_after t ~hint:h3 "m|35" 35);
  Rbtree.validate t

let test_rb_sequential_append () =
  (* the timeline pattern: always append at the end via the last hint *)
  let t = Rbtree.create ~dummy:0 () in
  let hint = ref None in
  for i = 0 to 999 do
    let k = Printf.sprintf "t|%04d" i in
    let node, _ =
      match !hint with
      | Some h -> Rbtree.insert_after t ~hint:h k i
      | None -> Rbtree.insert t k i
    in
    hint := Some node
  done;
  Rbtree.validate t;
  check_int "size" 1000 (Rbtree.size t);
  let expect = List.init 1000 (fun i -> (Printf.sprintf "t|%04d" i, i)) in
  check_list "order" expect (Rbtree.to_list t)

let test_rb_empty () =
  let t = Rbtree.create ~dummy:0 () in
  Rbtree.validate t;
  check_bool "empty" true (Rbtree.is_empty t);
  check_bool "min" true (Rbtree.min_node t = None);
  check_bool "max" true (Rbtree.max_node t = None);
  check_bool "remove" false (Rbtree.remove t "x")

let test_rb_succ_pred () =
  let t = tree_of_list [ ("a", 1); ("b", 2); ("c", 3) ] in
  let b = Option.get (Rbtree.find t "b") in
  Alcotest.(check (option string)) "next" (Some "c")
    (Option.map (fun n -> n.Rbtree.key) (Rbtree.next t b));
  Alcotest.(check (option string)) "prev" (Some "a")
    (Option.map (fun n -> n.Rbtree.key) (Rbtree.prev t b));
  let c = Option.get (Rbtree.find t "c") in
  check_bool "next of max" true (Rbtree.next t c = None)

(* Property: random interleaving of inserts/removes matches Map, and
   red-black invariants hold throughout. *)
let prop_rb_model =
  let open QCheck2 in
  let key_gen = Gen.map (fun n -> Printf.sprintf "k%02d" n) (Gen.int_bound 40) in
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun k -> `Insert k) key_gen;
        Gen.map (fun k -> `Remove k) key_gen;
        Gen.map (fun k -> `InsertAfterHint k) key_gen;
      ]
  in
  Test.make ~name:"rbtree matches Map model" ~count:300 (Gen.list_size (Gen.int_range 0 200) op_gen)
    (fun ops ->
      let t = Rbtree.create ~dummy:0 () in
      let model = ref Smap.empty in
      let last_node = ref None in
      let step = ref 0 in
      List.iter
        (fun op ->
          incr step;
          (match op with
          | `Insert k ->
            let node, _ = Rbtree.insert t k !step in
            model := Smap.add k !step !model;
            last_node := Some node
          | `InsertAfterHint k -> (
            match !last_node with
            | Some hint ->
              let node, _ = Rbtree.insert_after t ~hint k !step in
              model := Smap.add k !step !model;
              last_node := Some node
            | None ->
              let node, _ = Rbtree.insert t k !step in
              model := Smap.add k !step !model;
              last_node := Some node)
          | `Remove k ->
            let removed = Rbtree.remove t k in
            if removed <> Smap.mem k !model then failwith "remove result mismatch";
            model := Smap.remove k !model);
          Rbtree.validate t)
        ops;
      Rbtree.to_list t = Smap.bindings !model)

let prop_rb_range =
  let open QCheck2 in
  let key_gen = Gen.map (fun n -> Printf.sprintf "k%02d" n) (Gen.int_bound 40) in
  Test.make ~name:"rbtree iter_range matches Map filter" ~count:200
    Gen.(triple (list_size (int_range 0 100) key_gen) key_gen key_gen)
    (fun (keys, lo, hi) ->
      let t = Rbtree.create ~dummy:0 () in
      let model = ref Smap.empty in
      List.iteri
        (fun i k ->
          ignore (Rbtree.insert t k i);
          model := Smap.add k i !model)
        keys;
      let got = ref [] in
      Rbtree.iter_range t ~lo ~hi (fun n -> got := (n.Rbtree.key, n.Rbtree.value) :: !got);
      let expect =
        Smap.bindings !model
        |> List.filter (fun (k, _) -> String.compare lo k <= 0 && String.compare k hi < 0)
      in
      List.rev !got = expect)

(* ------------------------------------------------------------------ *)
(* Interval map                                                        *)

let test_imap_basic () =
  let im = Interval_map.create () in
  let h1 = Interval_map.add im ~lo:"a" ~hi:"m" 1 in
  let _h2 = Interval_map.add im ~lo:"f" ~hi:"z" 2 in
  let _h3 = Interval_map.add im ~lo:"a" ~hi:"c" 3 in
  Interval_map.validate im;
  let stab k =
    let acc = ref [] in
    Interval_map.stab im k (fun e -> acc := Interval_map.handle_data e :: !acc);
    List.sort compare !acc
  in
  check_list "stab b" [] [];
  Alcotest.(check (list int)) "stab b" [ 1; 3 ] (stab "b");
  Alcotest.(check (list int)) "stab g" [ 1; 2 ] (stab "g");
  Alcotest.(check (list int)) "stab x" [ 2 ] (stab "x");
  Alcotest.(check (list int)) "stab empty" [] (stab "zz");
  Interval_map.remove im h1;
  Interval_map.validate im;
  Alcotest.(check (list int)) "after remove" [ 3 ] (stab "b");
  check_int "size" 2 (Interval_map.size im)

let test_imap_boundaries () =
  let im = Interval_map.create () in
  ignore (Interval_map.add im ~lo:"b" ~hi:"d" 1);
  let stab k =
    let acc = ref [] in
    Interval_map.stab im k (fun e -> acc := Interval_map.handle_data e :: !acc);
    !acc
  in
  Alcotest.(check (list int)) "inclusive lo" [ 1 ] (stab "b");
  Alcotest.(check (list int)) "exclusive hi" [] (stab "d");
  Alcotest.check_raises "empty interval rejected" (Invalid_argument "Interval_map.add: empty interval")
    (fun () -> ignore (Interval_map.add im ~lo:"x" ~hi:"x" 9))

let prop_imap_stab =
  let open QCheck2 in
  let key_gen = Gen.map (fun n -> Printf.sprintf "%02d" n) (Gen.int_bound 30) in
  let ival_gen =
    Gen.map
      (fun (a, b) -> if String.compare a b < 0 then (a, b) else (b, a ^ "0"))
      (Gen.pair key_gen key_gen)
  in
  Test.make ~name:"interval stab matches naive" ~count:300
    Gen.(pair (list_size (int_range 0 60) ival_gen) key_gen)
    (fun (ivals, probe) ->
      let im = Interval_map.create () in
      let naive = ref [] in
      List.iteri
        (fun i (lo, hi) ->
          if String.compare lo hi < 0 then begin
            ignore (Interval_map.add im ~lo ~hi i);
            naive := (lo, hi, i) :: !naive
          end)
        ivals;
      Interval_map.validate im;
      let got = ref [] in
      Interval_map.stab im probe (fun e -> got := Interval_map.handle_data e :: !got);
      let expect =
        List.filter_map
          (fun (lo, hi, i) ->
            if String.compare lo probe <= 0 && String.compare probe hi < 0 then Some i else None)
          !naive
      in
      List.sort compare !got = List.sort compare expect)

let prop_imap_overlap =
  let open QCheck2 in
  let key_gen = Gen.map (fun n -> Printf.sprintf "%02d" n) (Gen.int_bound 30) in
  let ival_gen = Gen.pair key_gen key_gen in
  Test.make ~name:"interval overlap matches naive" ~count:300
    Gen.(pair (list_size (int_range 0 60) ival_gen) ival_gen)
    (fun (ivals, (qlo, qhi)) ->
      let im = Interval_map.create () in
      let naive = ref [] in
      List.iteri
        (fun i (lo, hi) ->
          if String.compare lo hi < 0 then begin
            ignore (Interval_map.add im ~lo ~hi i);
            naive := (lo, hi, i) :: !naive
          end)
        ivals;
      let got = ref [] in
      Interval_map.iter_overlapping im ~lo:qlo ~hi:qhi (fun e ->
          got := Interval_map.handle_data e :: !got);
      let expect =
        List.filter_map
          (fun (lo, hi, i) ->
            if Strkey.range_overlaps (lo, hi) (qlo, qhi) then Some i else None)
          !naive
      in
      List.sort compare !got = List.sort compare expect)

(* removal under load keeps the tree consistent *)
let prop_imap_remove =
  let open QCheck2 in
  let key_gen = Gen.map (fun n -> Printf.sprintf "%02d" n) (Gen.int_bound 20) in
  Test.make ~name:"interval add/remove keeps invariants" ~count:200
    Gen.(list_size (int_range 0 80) (pair key_gen key_gen))
    (fun ivals ->
      let im = Interval_map.create () in
      let handles = ref [] in
      List.iteri
        (fun i (lo, hi) ->
          if String.compare lo hi < 0 then handles := Interval_map.add im ~lo ~hi i :: !handles)
        ivals;
      (* remove every other handle *)
      List.iteri (fun i h -> if i mod 2 = 0 then Interval_map.remove im h) !handles;
      Interval_map.validate im;
      (* removing again is a no-op *)
      List.iteri (fun i h -> if i mod 2 = 0 then Interval_map.remove im h) !handles;
      Interval_map.validate im;
      let kept = List.filteri (fun i _ -> i mod 2 = 1) !handles in
      Interval_map.size im = List.length kept)

(* ------------------------------------------------------------------ *)
(* Range map                                                           *)

let test_rmap_basic () =
  let rm = Range_map.create () in
  Range_map.set rm ~lo:"a" ~hi:"m" 1;
  Range_map.set rm ~lo:"m" ~hi:"z" 2;
  Range_map.validate rm;
  let find k = Option.map (fun (_, _, v) -> v) (Range_map.find rm k) in
  Alcotest.(check (option int)) "in first" (Some 1) (find "b");
  Alcotest.(check (option int)) "boundary" (Some 2) (find "m");
  Alcotest.(check (option int)) "outside" None (find "zz")

let test_rmap_split_overwrite () =
  let rm = Range_map.create () in
  Range_map.set rm ~lo:"a" ~hi:"z" 1;
  Range_map.set rm ~lo:"f" ~hi:"m" 2;
  Range_map.validate rm;
  Alcotest.(check (list (triple string string int)))
    "split pieces"
    [ ("a", "f", 1); ("f", "m", 2); ("m", "z", 1) ]
    (Range_map.to_list rm)

let test_rmap_iter_cover_gaps () =
  let rm = Range_map.create () in
  Range_map.set rm ~lo:"c" ~hi:"f" 1;
  Range_map.set rm ~lo:"h" ~hi:"k" 2;
  let pieces = ref [] in
  Range_map.iter_cover rm ~lo:"a" ~hi:"z" (fun lo hi v -> pieces := (lo, hi, v) :: !pieces);
  Alcotest.(check (list (triple string string (option int))))
    "cover with gaps"
    [ ("a", "c", None); ("c", "f", Some 1); ("f", "h", None); ("h", "k", Some 2); ("k", "z", None) ]
    (List.rev !pieces)

let test_rmap_clear_range () =
  let rm = Range_map.create () in
  Range_map.set rm ~lo:"a" ~hi:"z" 7;
  Range_map.clear_range rm ~lo:"f" ~hi:"m";
  Range_map.validate rm;
  Alcotest.(check (list (triple string string int)))
    "trimmed" [ ("a", "f", 7); ("m", "z", 7) ] (Range_map.to_list rm)

let test_rmap_update_range () =
  let rm = Range_map.create () in
  Range_map.set rm ~lo:"a" ~hi:"m" 1;
  Range_map.update_range rm ~lo:"f" ~hi:"r" (fun _ _ v ->
      match v with Some x -> Some (x + 10) | None -> Some 99);
  Range_map.validate rm;
  Alcotest.(check (list (triple string string int)))
    "updated"
    [ ("a", "f", 1); ("f", "m", 11); ("m", "r", 99) ]
    (Range_map.to_list rm)

let prop_rmap_model =
  let open QCheck2 in
  let key_gen = Gen.map (fun n -> Printf.sprintf "%02d" n) (Gen.int_bound 20) in
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun (a, b) -> `Set (a, b)) (Gen.pair key_gen key_gen);
        Gen.map (fun (a, b) -> `Clear (a, b)) (Gen.pair key_gen key_gen);
      ]
  in
  Test.make ~name:"range map matches point-wise model" ~count:300
    (Gen.list_size (Gen.int_range 0 40) op_gen)
    (fun ops ->
      let rm = Range_map.create () in
      (* model: value at each probe point *)
      let probes = List.init 22 (fun i -> Printf.sprintf "%02d" i) in
      let model = Hashtbl.create 32 in
      List.iteri
        (fun step op ->
          match op with
          | `Set (a, b) when String.compare a b < 0 ->
            Range_map.set rm ~lo:a ~hi:b step;
            List.iter
              (fun p -> if Strkey.in_range ~lo:a ~hi:b p then Hashtbl.replace model p step)
              probes
          | `Clear (a, b) ->
            Range_map.clear_range rm ~lo:a ~hi:b;
            List.iter
              (fun p -> if Strkey.in_range ~lo:a ~hi:b p then Hashtbl.remove model p)
              probes
          | `Set _ -> ())
        ops;
      Range_map.validate rm;
      List.for_all
        (fun p ->
          let got = Option.map (fun (_, _, v) -> v) (Range_map.find rm p) in
          got = Hashtbl.find_opt model p)
        probes)

(* splitting a range must duplicate mutable state, not share it *)
let test_rmap_dup_on_split () =
  let rm = Range_map.create ~dup:(fun r -> ref !r) () in
  Range_map.set rm ~lo:"a" ~hi:"z" (ref 1);
  Range_map.clear_range rm ~lo:"f" ~hi:"m";
  (match Range_map.to_list rm with
  | [ (_, _, left); (_, _, right) ] ->
    left := 42;
    check_int "right unaffected" 1 !right
  | _ -> Alcotest.fail "expected two pieces")

(* ------------------------------------------------------------------ *)
(* Table and Store                                                     *)

let test_table_basic () =
  let tbl = Table.create ~name:"p" ~dummy:"" () in
  ignore (Table.put tbl "p|bob|100" "hi");
  ignore (Table.put tbl "p|ann|120" "yo");
  Alcotest.(check (option string)) "get" (Some "hi") (Table.get tbl "p|bob|100");
  check_int "size" 2 (Table.size tbl);
  Alcotest.(check (option string)) "remove" (Some "yo") (Table.remove tbl "p|ann|120");
  check_int "size after" 1 (Table.size tbl);
  check_bool "memory positive" true (Table.memory_bytes tbl > 0)

let test_table_subtables () =
  let tbl = Table.create ~subtable_depth:2 ~name:"t" ~dummy:"" () in
  ignore (Table.put tbl "t|ann|100|bob" "x");
  ignore (Table.put tbl "t|ann|200|liz" "y");
  ignore (Table.put tbl "t|bob|150|ann" "z");
  check_int "two subtables" 2 (Table.subtable_count tbl);
  (* scan within one subtable *)
  Alcotest.(check (list (pair string string)))
    "within"
    [ ("t|ann|100|bob", "x"); ("t|ann|200|liz", "y") ]
    (Table.range_to_list tbl ~lo:"t|ann|" ~hi:"t|ann}");
  (* scan crossing subtables stays globally ordered *)
  Alcotest.(check (list (pair string string)))
    "across"
    [ ("t|ann|100|bob", "x"); ("t|ann|200|liz", "y"); ("t|bob|150|ann", "z") ]
    (Table.range_to_list tbl ~lo:"t|" ~hi:"t}");
  Table.validate tbl

let prop_table_subtable_scan =
  let open QCheck2 in
  let key_gen =
    Gen.map
      (fun (a, b, c) -> Printf.sprintf "t|u%d|%02d|p%d" a b c)
      (Gen.triple (Gen.int_bound 5) (Gen.int_bound 30) (Gen.int_bound 5))
  in
  let bound_gen =
    Gen.oneof
      [ key_gen; Gen.map (fun a -> Printf.sprintf "t|u%d|" a) (Gen.int_bound 6); Gen.pure "t|" ]
  in
  Test.make ~name:"subtable scan equals flat scan" ~count:300
    Gen.(triple (list_size (int_range 0 80) key_gen) bound_gen bound_gen)
    (fun (keys, b1, b2) ->
      let lo = Strkey.min_str b1 b2 and hi = Strkey.max_str b1 b2 in
      let sub = Table.create ~subtable_depth:2 ~name:"t" ~dummy:0 () in
      let flat = Table.create ~name:"t" ~dummy:0 () in
      List.iteri
        (fun i k ->
          ignore (Table.put sub k i);
          ignore (Table.put flat k i))
        keys;
      Table.range_to_list sub ~lo ~hi = Table.range_to_list flat ~lo ~hi)

let test_table_put_hint () =
  let tbl = Table.create ~subtable_depth:2 ~name:"t" ~dummy:"" () in
  let h1, _ = Table.put tbl "t|ann|100|bob" "a" in
  let h2, old = Table.put ~hint:h1 tbl "t|ann|120|bob" "b" in
  check_bool "fresh" true (old = None);
  (* hint from a different subtable must not corrupt anything *)
  let _h3, _ = Table.put ~hint:h2 tbl "t|bob|050|ann" "c" in
  Table.validate tbl;
  Alcotest.(check (list (pair string string)))
    "order"
    [ ("t|ann|100|bob", "a"); ("t|ann|120|bob", "b"); ("t|bob|050|ann", "c") ]
    (Table.range_to_list tbl ~lo:"t|" ~hi:"t}")

let test_table_remove_range () =
  let tbl = Table.create ~name:"p" ~dummy:0 () in
  for i = 0 to 9 do
    ignore (Table.put tbl (Printf.sprintf "p|u|%d" i) i)
  done;
  check_int "removed" 4 (Table.remove_range tbl ~lo:"p|u|3" ~hi:"p|u|7");
  check_int "left" 6 (Table.size tbl)

let test_store_routing () =
  let st = Store.create ~dummy:"" () in
  ignore (Store.put st "p|bob|1" "post");
  ignore (Store.put st "s|ann|bob" "1");
  ignore (Store.put st "t|ann|1|bob" "post");
  check_int "three tables" 3 (List.length (Store.tables st));
  Alcotest.(check string) "table name" "p" (Store.table_name_of "p|bob|1");
  (* cross-table scan in global order *)
  Alcotest.(check (list (pair string string)))
    "global scan"
    [ ("p|bob|1", "post"); ("s|ann|bob", "1"); ("t|ann|1|bob", "post") ]
    (Store.range_to_list st ~lo:"" ~hi:"\xfe");
  Alcotest.(check (option string)) "get" (Some "1") (Store.get st "s|ann|bob");
  check_bool "invalid key rejected" true
    (match Store.put st "bad\xffkey" "v" with
    | exception Strkey.Invalid_key _ -> true
    | _ -> false)

let test_fold_range_stop () =
  (* early-exit fold at both layers, including ranges that cross
     subtable and table boundaries *)
  let tbl = Table.create ~subtable_depth:2 ~name:"t" ~dummy:"" () in
  ignore (Table.put tbl "t|ann|100" "a");
  ignore (Table.put tbl "t|ann|200" "b");
  ignore (Table.put tbl "t|bob|100" "c");
  ignore (Table.put tbl "t|bob|200" "d");
  let visited = ref 0 in
  let first n =
    visited := 0;
    List.rev
      (snd
         (Table.fold_range_stop tbl ~lo:"t|" ~hi:"t}" ~init:(0, []) (fun (c, acc) k _ ->
              incr visited;
              let st = (c + 1, k :: acc) in
              if c + 1 >= n then `Stop st else `Continue st)))
  in
  Alcotest.(check (list string)) "limit 1" [ "t|ann|100" ] (first 1);
  check_int "stop visits nothing extra" 1 !visited;
  (* limit 3 crosses the ann/bob subtable boundary *)
  Alcotest.(check (list string))
    "limit 3 across subtables"
    [ "t|ann|100"; "t|ann|200"; "t|bob|100" ]
    (first 3);
  check_int "visited exactly 3" 3 !visited;
  Alcotest.(check (list string))
    "limit past end returns all"
    [ "t|ann|100"; "t|ann|200"; "t|bob|100"; "t|bob|200" ]
    (first 10);
  let st = Store.create ~dummy:"" () in
  List.iter
    (fun (k, v) -> ignore (Store.put st k v))
    [ ("a|1", "1"); ("a|2", "2"); ("b|1", "3"); ("b|2", "4") ];
  (* limit 3 crosses the a/b table boundary at the facade *)
  Alcotest.(check (list string))
    "store limit across tables"
    [ "a|1"; "a|2"; "b|1" ]
    (List.rev
       (snd
          (Store.fold_range_stop st ~lo:"" ~hi:"\xfe" ~init:(0, []) (fun (c, acc) k _ ->
               let s = (c + 1, k :: acc) in
               if c + 1 >= 3 then `Stop s else `Continue s))))

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let test_lru_order () =
  let l = Lru.create () in
  let a = Lru.add l "a" in
  let _b = Lru.add l "b" in
  let _c = Lru.add l "c" in
  check_int "len" 3 (Lru.length l);
  Lru.touch l a;
  Alcotest.(check (option string)) "lru is b" (Some "b") (Lru.pop_lru l);
  Alcotest.(check (option string)) "then c" (Some "c") (Lru.pop_lru l);
  Alcotest.(check (option string)) "then a" (Some "a") (Lru.pop_lru l);
  Alcotest.(check (option string)) "empty" None (Lru.pop_lru l)

let test_lru_remove () =
  let l = Lru.create () in
  let a = Lru.add l 1 in
  let b = Lru.add l 2 in
  Lru.remove l a;
  check_bool "unlinked" false (Lru.is_linked a);
  Lru.remove l a;
  check_int "len" 1 (Lru.length l);
  Lru.touch l a;
  check_int "touch of removed is noop" 1 (Lru.length l);
  check_bool "b still linked" true (Lru.is_linked b)

(* ------------------------------------------------------------------ *)
(* Strkey                                                              *)

let test_strkey () =
  Alcotest.(check string) "prefix_upper" "t|ann}" (Strkey.prefix_upper "t|ann|");
  check_bool "upper bound works" true (String.compare "t|ann|zzzz" (Strkey.prefix_upper "t|ann|") < 0);
  (* like the paper's t|ann} bound, non-prefix keys may sort inside the
     range; pattern matching filters them. What matters is coverage: *)
  check_bool "all prefixed keys covered" true
    (String.compare "t|ann|\x00" (Strkey.prefix_upper "t|ann|") < 0);
  Alcotest.(check string) "prefix_upper bumps last byte" "t|ann\xff" (Strkey.prefix_upper "t|ann\xfe");
  Alcotest.(check string) "prefix_upper carries past 0xff" "t|ano" (Strkey.prefix_upper "t|ann\xff");
  Alcotest.(check string) "encode" "0000000042" (Strkey.encode_time 42);
  check_int "decode" 42 (Strkey.decode_int "0000000042");
  check_bool "fixed width sorts" true
    (String.compare (Strkey.encode_time 99) (Strkey.encode_time 100) < 0);
  check_bool "overlap" true (Strkey.range_overlaps ("a", "c") ("b", "d"));
  check_bool "no overlap touching" false (Strkey.range_overlaps ("a", "b") ("b", "c"));
  Alcotest.(check (option (pair string string))) "inter" (Some ("b", "c"))
    (Strkey.range_inter ("a", "c") ("b", "d"));
  Alcotest.(check (option (pair string string))) "inter empty" None
    (Strkey.range_inter ("a", "b") ("c", "d"));
  Alcotest.(check string) "key_after orders" "a\x00" (Strkey.key_after "a");
  Alcotest.(check string) "common_prefix" "t|a" (Strkey.common_prefix "t|ann" "t|abe")

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let c = Rng.create 43 in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  check_bool "different seed differs" true (xs <> zs)

let test_rng_zipf_skew () =
  let rng = Rng.create 7 in
  let dist = Rng.Zipf.create ~n:1000 ~s:1.0 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20000 do
    let r = Rng.Zipf.sample dist rng in
    counts.(r) <- counts.(r) + 1
  done;
  check_bool "rank 0 beats rank 100" true (counts.(0) > counts.(100));
  check_bool "rank 0 well populated" true (counts.(0) > 1000)

let test_rng_alias () =
  let rng = Rng.create 9 in
  let dist = Rng.Alias.create [| 0.0; 1.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10000 do
    let i = Rng.Alias.sample dist rng in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "zero weight never drawn" 0 counts.(0);
  check_bool "3:1 ratio approx" true (counts.(2) > 2 * counts.(1))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "store"
    [
      ( "rbtree",
        [
          Alcotest.test_case "basic" `Quick test_rb_basic;
          Alcotest.test_case "overwrite" `Quick test_rb_overwrite;
          Alcotest.test_case "remove" `Quick test_rb_remove;
          Alcotest.test_case "lower_bound" `Quick test_rb_lower_bound;
          Alcotest.test_case "iter_range" `Quick test_rb_iter_range;
          Alcotest.test_case "node identity" `Quick test_rb_node_identity_after_remove;
          Alcotest.test_case "insert_after" `Quick test_rb_insert_after_fast_path;
          Alcotest.test_case "sequential append" `Quick test_rb_sequential_append;
          Alcotest.test_case "empty" `Quick test_rb_empty;
          Alcotest.test_case "succ/pred" `Quick test_rb_succ_pred;
        ] );
      ("rbtree-props", qsuite [ prop_rb_model; prop_rb_range ]);
      ( "interval_map",
        [
          Alcotest.test_case "basic" `Quick test_imap_basic;
          Alcotest.test_case "boundaries" `Quick test_imap_boundaries;
        ] );
      ("interval_map-props", qsuite [ prop_imap_stab; prop_imap_overlap; prop_imap_remove ]);
      ( "range_map",
        [
          Alcotest.test_case "basic" `Quick test_rmap_basic;
          Alcotest.test_case "split overwrite" `Quick test_rmap_split_overwrite;
          Alcotest.test_case "cover gaps" `Quick test_rmap_iter_cover_gaps;
          Alcotest.test_case "clear range" `Quick test_rmap_clear_range;
          Alcotest.test_case "update range" `Quick test_rmap_update_range;
          Alcotest.test_case "dup on split" `Quick test_rmap_dup_on_split;
        ] );
      ("range_map-props", qsuite [ prop_rmap_model ]);
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "subtables" `Quick test_table_subtables;
          Alcotest.test_case "put hint" `Quick test_table_put_hint;
          Alcotest.test_case "remove range" `Quick test_table_remove_range;
        ] );
      ("table-props", qsuite [ prop_table_subtable_scan ]);
      ( "store",
        [
          Alcotest.test_case "routing" `Quick test_store_routing;
          Alcotest.test_case "fold_range_stop" `Quick test_fold_range_stop;
        ] );
      ( "lru",
        [
          Alcotest.test_case "order" `Quick test_lru_order;
          Alcotest.test_case "remove" `Quick test_lru_remove;
        ] );
      ( "util",
        [
          Alcotest.test_case "strkey" `Quick test_strkey;
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "alias sampler" `Quick test_rng_alias;
        ] );
    ]
